module Depeq = Dlz_deptest.Depeq
module Problem = Dlz_deptest.Problem

(* Greedy deterministic minimization: generate simplification
   candidates in a fixed schedule, restart from the first one the
   caller's predicate still fails on, and stop at a fixpoint.  No
   randomness anywhere, so the same input and predicate always shrink
   to the same canonical counterexample. *)

(* Rebuild a numeric problem from equation rows, recomputing the common
   bounds from the surviving variables (keeping the original bound at a
   level that lost all its variables). *)
let rebuild ~n_common ~orig_ubs ~opaque eqs =
  let ubs = Array.copy orig_ubs in
  let seen = Array.make n_common false in
  List.iter
    (fun (eq : Depeq.t) ->
      List.iter
        (fun (t : Depeq.term) ->
          let l = t.Depeq.var.v_level in
          if l >= 1 && l <= n_common then
            if seen.(l - 1) then
              ubs.(l - 1) <- max ubs.(l - 1) t.Depeq.var.v_ub
            else begin
              seen.(l - 1) <- true;
              ubs.(l - 1) <- t.Depeq.var.v_ub
            end)
        eq.Depeq.terms)
    eqs;
  { Problem.n_common; common_ubs = ubs; eqs; opaque_dims = opaque }

(* Replacement magnitudes for an integer, most aggressive first. *)
let steps v =
  if v = 0 then []
  else
    List.filter (fun c -> c <> v)
      (List.sort_uniq Stdlib.compare
         [ 0; v / 2; (if v > 0 then v - 1 else v + 1) ])

let terms_of (eq : Depeq.t) =
  List.map (fun (t : Depeq.term) -> (t.Depeq.coeff, t.Depeq.var)) eq.Depeq.terms

(* All one-step simplifications of [np], in schedule order. *)
let candidates (np : Problem.numeric) =
  let { Problem.n_common; common_ubs; eqs; opaque_dims } = np in
  let rb eqs' = rebuild ~n_common ~orig_ubs:common_ubs ~opaque:opaque_dims eqs' in
  let with_eq i eq' = List.mapi (fun k e -> if k = i then eq' else e) eqs in
  let out = ref [] in
  let emit np' = out := np' :: !out in
  (* 1. Drop whole equations (down to the empty system, which is a
     legitimate minimal problem: trivially satisfiable). *)
  List.iteri (fun i _ -> emit (rb (List.filteri (fun j _ -> j <> i) eqs))) eqs;
  (* 2. Drop single terms. *)
  List.iteri
    (fun i (eq : Depeq.t) ->
      List.iteri
        (fun j _ ->
          let terms' = List.filteri (fun k _ -> k <> j) (terms_of eq) in
          emit (rb (with_eq i (Depeq.make eq.Depeq.c0 terms'))))
        eq.Depeq.terms)
    eqs;
  (* 3. Shrink the constant term. *)
  List.iteri
    (fun i (eq : Depeq.t) ->
      List.iter
        (fun c0' -> emit (rb (with_eq i (Depeq.make c0' (terms_of eq)))))
        (steps eq.Depeq.c0))
    eqs;
  (* 4. Shrink coefficients (zero is covered by the term drop). *)
  List.iteri
    (fun i (eq : Depeq.t) ->
      List.iteri
        (fun j (t : Depeq.term) ->
          List.iter
            (fun c' ->
              if c' <> 0 then
                let terms' =
                  List.mapi
                    (fun k (c, v) -> if k = j then (c', v) else (c, v))
                    (terms_of eq)
                in
                emit (rb (with_eq i (Depeq.make eq.Depeq.c0 terms'))))
            (steps t.Depeq.coeff))
        eq.Depeq.terms)
    eqs;
  (* 5. Shrink variable bounds. *)
  List.iteri
    (fun i (eq : Depeq.t) ->
      List.iteri
        (fun j (t : Depeq.term) ->
          List.iter
            (fun ub' ->
              if ub' >= 0 then
                let terms' =
                  List.mapi
                    (fun k (c, (v : Depeq.var)) ->
                      if k = j then (c, { v with v_ub = ub' }) else (c, v))
                    (terms_of eq)
                in
                emit (rb (with_eq i (Depeq.make eq.Depeq.c0 terms'))))
            (steps t.Depeq.var.v_ub))
        eq.Depeq.terms)
    eqs;
  List.rev !out

let minimize ?(max_attempts = 4_000) ~still_fails (np : Problem.numeric) =
  let attempts = ref 0 in
  let keep np' =
    incr attempts;
    !attempts <= max_attempts
    && (match still_fails np' with r -> r | exception _ -> false)
  in
  let rec fix np =
    match List.find_opt keep (candidates np) with
    | Some np' -> fix np'
    | None -> np
  in
  fix np
