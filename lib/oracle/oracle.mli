(** Bounded brute-force ground truth for numeric dependence problems.

    The oracle decides a constrained dependence system by exhaustive
    integer search over the variable box — deliberately naive, sharing
    no code with any strategy under test.  Every left-hand side is
    evaluated with {!Dlz_base.Intx} checked arithmetic; a point whose
    evaluation overflows has unknown membership and taints completeness
    rather than silently corrupting the answer.

    Enumeration is bounded three ways: a point-count [limit] (boxes
    larger than it are rejected up front), an optional {!Dlz_base.Budget}
    (one unit per point), and the overflow taint.  Whenever any bound
    bites without a witness having been found, the oracle says
    {e unknown} — it never guesses. *)

module Budget = Dlz_base.Budget
module Depeq = Dlz_deptest.Depeq
module Problem = Dlz_deptest.Problem
module Dirvec = Dlz_deptest.Dirvec

type point = (Depeq.var * int) list
(** One assignment: a value for every distinct [(side, level)] variable
    of the system. *)

type outcome =
  | Sat of point  (** Witnessed integer solution. *)
  | Unsat  (** Exhaustively refuted: no solution exists. *)
  | Unknown of string
      (** Could not complete: ["limit"], ["overflow"], or
          ["budget:<why>"]. *)

val decide : ?budget:Budget.t -> ?limit:int -> Problem.numeric -> outcome
(** Search the box for any simultaneous integer solution.  The default
    [limit] is 2,000,000 points. *)

type violation = {
  v_kind : [ `Verdict | `Dirvec | `Distance ];
  v_point : point;  (** The solution realizing the violation. *)
  v_detail : string;
}

type verification = Consistent | Violated of violation | Inconclusive of string

val verify :
  ?budget:Budget.t ->
  ?limit:int ->
  Problem.numeric ->
  verdict:Dlz_deptest.Verdict.t ->
  dirvecs:Dirvec.t list ->
  distances:(int * int) list ->
  verification
(** Check a strategy's full claim against every solution of the box:
    an [Independent] verdict must meet no solution at all; every
    realized direction vector must be admitted by some claimed vector
    (an empty claim list checks nothing); every claimed per-level
    distance must hold universally.  Levels a solution leaves unbound
    are skipped — they admit any direction, so no claim about them can
    be refuted pointwise. *)

val delta_at : point -> int -> int option
(** [delta_at p level] is [β − α] at the 1-based common [level], when
    the point binds both instances. *)

val pp_point : Format.formatter -> point -> unit
val point_to_string : point -> string
