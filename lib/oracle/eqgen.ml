module Prng = Dlz_base.Prng
module Poly = Dlz_symbolic.Poly
module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Depeq = Dlz_deptest.Depeq
module Symeq = Dlz_deptest.Symeq
module Problem = Dlz_deptest.Problem

type case = {
  id : string;
  family : string;
  problem : Problem.t;  (** What the strategies see. *)
  ground : Problem.numeric;  (** What the oracle decides. *)
  env : Assume.t;
}

let mk_case ~family ~idx ?(env = Assume.empty) ?problem ground =
  let problem =
    match problem with Some p -> p | None -> Problem.synthetic ground
  in
  { id = Printf.sprintf "%s:%d" family idx; family; problem; ground; env }

(* A symbolic problem over placeholder accesses, for families whose
   coefficients are genuinely polynomial (Problem.synthetic only lifts
   numerics). *)
let mk_symbolic_problem ~n_common ~common_ubs equations =
  let loops =
    List.mapi
      (fun i ub -> { Access.l_var = Printf.sprintf "z%d" (i + 1); l_ub = ub })
      common_ubs
  in
  let access acc_id stmt_name rw =
    { Access.acc_id; stmt_id = acc_id; stmt_name; array = "synthetic";
      rw; loops; subs = [] }
  in
  {
    Problem.src = access 0 "Ssrc" `Write;
    dst = access 1 "Sdst" `Read;
    n_common;
    common_ubs;
    equations;
    opaque_dims = 0;
  }

(* --- random numeric systems --------------------------------------------- *)

let random_ground g =
  let n_common = Prng.int_in g 1 3 in
  let common_ubs = Array.init n_common (fun _ -> Prng.int_in g 0 6) in
  let var side level =
    Depeq.var ~side ~level
      (Printf.sprintf "%c%d" (match side with `Src -> 'i' | `Dst -> 'j') level)
      common_ubs.(level - 1)
  in
  let neqs = Prng.int_in g 1 2 in
  let eqs =
    List.init neqs (fun _ ->
        let terms =
          List.concat
            (List.init n_common (fun l ->
                 let lvl = l + 1 in
                 let term side =
                   let c = Prng.int_in g (-8) 8 in
                   if c = 0 then [] else [ (c, var side lvl) ]
                 in
                 term `Src @ term `Dst))
        in
        Depeq.make (Prng.int_in g (-40) 40) terms)
  in
  Problem.numeric_of_equations ~n_common ~common_ubs eqs

let random ~seed ~count =
  let g = Prng.create seed in
  List.init count (fun idx -> mk_case ~family:"random" ~idx (random_ground g))

(* --- linearized references ---------------------------------------------- *)

(* A(i + N*j) against A(i' + N*j') [+ c]: the paper's target shape.  The
   row extent is sometimes smaller than the stride N (no aliasing across
   rows — delinearization separates the dimensions) and sometimes
   crosses it (true wraparound coupling, the case naive per-dimension
   reasoning gets wrong). *)
let linearized_ground g =
  let n = Prng.int_in g 2 7 in
  let iub = if Prng.bool g then n - 1 else Prng.int_in g 1 (n + 2) in
  let jub = Prng.int_in g 0 4 in
  let three = Prng.int g 4 = 0 in
  let m = Prng.int_in g 2 4 in
  let n_common = if three then 3 else 2 in
  let kub = Prng.int_in g 0 2 in
  let common_ubs =
    if three then [| iub; jub; kub |] else [| iub; jub |]
  in
  let var side level ub =
    Depeq.var ~side ~level
      (Printf.sprintf "%c%d" (match side with `Src -> 'i' | `Dst -> 'j') level)
      ub
  in
  let c0 =
    let k = Prng.int_in g (-3) 3 in
    if Prng.bool g then k else k * n
  in
  let base =
    [ (1, var `Src 1 iub); (n, var `Src 2 jub);
      (-1, var `Dst 1 iub); (-n, var `Dst 2 jub) ]
  in
  let terms =
    if three then
      base @ [ (n * m, var `Src 3 kub); (-n * m, var `Dst 3 kub) ]
    else base
  in
  Problem.numeric_of_equations ~n_common ~common_ubs
    [ Depeq.make c0 terms ]

let linearized ~seed ~count =
  let g = Prng.create seed in
  List.init count (fun idx ->
      mk_case ~family:"linearized" ~idx (linearized_ground g))

(* --- symbolic coefficients ---------------------------------------------- *)

(* Coefficients and bounds over a symbol N with only a lower bound
   assumed; the ground truth instantiates N at a concrete value the
   assumptions admit, so an Independent claim must survive it. *)
let symbolic_case g idx =
  let lb = Prng.int_in g 1 4 in
  let env = Assume.assume_ge "N" lb Assume.empty in
  let n = Poly.sym "N" in
  let iub = Poly.sub n (Poly.const 1) in
  let jubc = Prng.int_in g 0 3 in
  let jub = Poly.const jubc in
  let svar side level name ub = Symeq.var ~side ~level name ub in
  let c0 =
    let k = Prng.int_in g (-3) 3 in
    if Prng.bool g then Poly.const k else Poly.scale k n
  in
  let eq =
    Symeq.make c0
      [ (Poly.one, svar `Src 1 "i1" iub);
        (n, svar `Src 2 "j1" jub);
        (Poly.const (-1), svar `Dst 1 "i2" iub);
        (Poly.neg n, svar `Dst 2 "j2" jub) ]
  in
  let problem =
    mk_symbolic_problem ~n_common:2 ~common_ubs:[ iub; jub ] [ eq ]
  in
  let nval = lb + Prng.int g 4 in
  let ground = Problem.instantiate (fun _ -> nval) problem in
  { id = Printf.sprintf "symbolic:%d" idx; family = "symbolic"; problem;
    ground; env }

let symbolic ~seed ~count =
  let g = Prng.create seed in
  List.init count (fun idx -> symbolic_case g idx)

(* --- near-overflow magnitudes ------------------------------------------- *)

(* Coefficients within a few bits of the native-int edge over tiny
   boxes: the family that punishes any remaining raw arithmetic.  Some
   systems are balanced (equal huge coefficients on both sides, so a
   solution exists at equal indices) and some are not. *)
let near_overflow_ground g =
  let huge =
    [| max_int / 2; (max_int / 2) - 1; max_int / 3; 1 lsl 58; 1 lsl 60;
       max_int - 2 |]
  in
  let pick () =
    let h = Prng.choose g huge in
    if Prng.bool g then h else -h
  in
  let n_common = Prng.int_in g 1 2 in
  let common_ubs = Array.init n_common (fun _ -> Prng.int_in g 0 2) in
  let var side level =
    Depeq.var ~side ~level
      (Printf.sprintf "%c%d" (match side with `Src -> 'i' | `Dst -> 'j') level)
      common_ubs.(level - 1)
  in
  let balanced = Prng.bool g in
  let terms =
    List.concat
      (List.init n_common (fun l ->
           let lvl = l + 1 in
           let c = pick () in
           let c' = if balanced then -c else pick () in
           [ (c, var `Src lvl); (c', var `Dst lvl) ]))
  in
  let c0 =
    match Prng.int g 3 with
    | 0 -> 0
    | 1 -> Prng.int_in g (-2) 2
    | _ -> pick ()
  in
  Problem.numeric_of_equations ~n_common ~common_ubs
    [ Depeq.make c0 terms ]

let near_overflow ~seed ~count =
  let g = Prng.create seed in
  List.init count (fun idx ->
      mk_case ~family:"overflow" ~idx (near_overflow_ground g))

(* --- whole random programs through the real pipeline --------------------- *)

let cases_of_program ~family ~env ~start prog =
  let accs, env = Access.of_program ~env prog in
  let idx = ref (start - 1) in
  List.filter_map
    (fun (pr : Dlz_engine.Engine.pair) ->
      let p = pr.Dlz_engine.Engine.problem in
      match Problem.to_numeric p with
      | Some np ->
          incr idx;
          Some { id = Printf.sprintf "%s:%d" family !idx; family;
                 problem = p; ground = np; env }
      | None -> (
          (* Symbolic pair: ground it at the assumption lower bounds. *)
          let syms =
            List.sort_uniq String.compare
              (List.concat_map Symeq.symbols p.Problem.equations
              @ List.concat_map Poly.vars p.Problem.common_ubs)
          in
          if syms = [] then None
          else
            let vals = Assume.sample env ~extra:2 syms in
            let lookup s =
              match List.assoc_opt s vals with Some v -> v | None -> 2
            in
            match Problem.instantiate lookup p with
            | np ->
                incr idx;
                Some { id = Printf.sprintf "%s:%d" family !idx; family;
                       problem = p; ground = np; env }
            | exception Invalid_argument _ -> None))
    (Dlz_engine.Engine.pairs accs)

let progen ~seed ~count =
  let g = Prng.create seed in
  let rec gather acc idx =
    if idx >= count then List.rev acc
    else
      let prog =
        Dlz_passes.Pipeline.prepare_program
          (Dlz_driver.Progen.random_profiled Dlz_driver.Progen.linearized_profile
             g)
      in
      let cases =
        cases_of_program ~family:"progen" ~env:Assume.empty ~start:idx prog
      in
      let taken = List.filteri (fun i _ -> idx + i < count) cases in
      gather (List.rev_append taken acc) (idx + List.length taken)
  in
  gather [] 0

(* --- the synthetic corpus ------------------------------------------------ *)

let corpus () =
  List.concat_map
    (fun spec ->
      let prog =
        Dlz_passes.Pipeline.prepare_program (Dlz_corpus.Corpus.generate spec)
      in
      let family =
        "corpus-" ^ String.lowercase_ascii spec.Dlz_corpus.Corpus.name
      in
      cases_of_program ~family ~env:Assume.empty ~start:0 prog)
    Dlz_corpus.Corpus.riceps

let polybench () =
  List.concat_map
    (fun (k : Dlz_corpus.Polybench.kernel) ->
      let prog =
        Dlz_passes.Pipeline.prepare_program
          (Dlz_passes.Pointers.lower
             (Dlz_frontend.C_parser.parse k.Dlz_corpus.Polybench.k_source))
      in
      let family = "polybench-" ^ k.Dlz_corpus.Polybench.k_name in
      cases_of_program ~family ~env:Assume.empty ~start:0 prog)
    Dlz_corpus.Polybench.kernels

(* --- the default mixed batch --------------------------------------------- *)

let all ~seed ~count =
  let g = Prng.create seed in
  let sub () = Prng.next64 g in
  let s_random = sub () and s_lin = sub () and s_sym = sub ()
  and s_ovf = sub () and s_prog = sub () in
  let share ppm = count * ppm / 100 in
  let n_random = share 40 in
  let n_lin = share 25 in
  let n_sym = share 15 in
  let n_ovf = share 10 in
  let n_prog = count - n_random - n_lin - n_sym - n_ovf in
  random ~seed:s_random ~count:n_random
  @ linearized ~seed:s_lin ~count:n_lin
  @ symbolic ~seed:s_sym ~count:n_sym
  @ near_overflow ~seed:s_ovf ~count:n_ovf
  @ progen ~seed:s_prog ~count:n_prog
