(** Deterministic counterexample minimization.

    Greedy fixpoint search over a fixed simplification schedule — drop
    equations, drop terms, then shrink constants, coefficients and
    bounds toward zero — keeping each candidate on which [still_fails]
    still holds.  The schedule contains no randomness, so identical
    inputs minimize to byte-identical canonical counterexamples. *)

val minimize :
  ?max_attempts:int ->
  still_fails:(Dlz_deptest.Problem.numeric -> bool) ->
  Dlz_deptest.Problem.numeric ->
  Dlz_deptest.Problem.numeric
(** [minimize ~still_fails np] requires [still_fails np = true] to be
    meaningful (otherwise it just returns a fixpoint of nothing);
    predicates that raise are treated as "no longer fails".
    [max_attempts] (default 4000) caps total predicate calls. *)
