module Budget = Dlz_base.Budget
module Intx = Dlz_base.Intx
module Depeq = Dlz_deptest.Depeq
module Problem = Dlz_deptest.Problem
module Dirvec = Dlz_deptest.Dirvec

type point = (Depeq.var * int) list

type outcome = Sat of point | Unsat | Unknown of string

type violation = {
  v_kind : [ `Verdict | `Dirvec | `Distance ];
  v_point : point;
  v_detail : string;
}

type verification = Consistent | Violated of violation | Inconclusive of string

let default_limit = 2_000_000

(* The distinct variables of a numeric problem, keyed the way every
   test pairs them: (side, level).  The same key appearing in several
   equations with different bounds keeps the tightest one — that is the
   true iteration range of the shared loop variable, and every
   per-equation test sees a superset box, so independence verdicts stay
   comparable. *)
let variables (np : Problem.numeric) =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (eq : Depeq.t) ->
      List.iter
        (fun (t : Depeq.term) ->
          let v = t.Depeq.var in
          let key = (v.Depeq.v_side, v.Depeq.v_level) in
          match Hashtbl.find_opt tbl key with
          | Some (u : Depeq.var) ->
              if v.v_ub < u.v_ub then Hashtbl.replace tbl key { u with v_ub = v.v_ub }
          | None ->
              Hashtbl.add tbl key v;
              order := key :: !order)
        eq.Depeq.terms)
    np.Problem.eqs;
  Array.of_list (List.rev_map (Hashtbl.find tbl) !order)

(* Per-equation coefficient rows over the shared variable indexing. *)
let compile vars (np : Problem.numeric) =
  let n = Array.length vars in
  let index =
    let tbl = Hashtbl.create 16 in
    Array.iteri
      (fun i (v : Depeq.var) -> Hashtbl.replace tbl (v.v_side, v.v_level) i)
      vars;
    tbl
  in
  List.map
    (fun (eq : Depeq.t) ->
      let cs = Array.make n 0 in
      List.iter
        (fun (t : Depeq.term) ->
          let i = Hashtbl.find index (t.Depeq.var.v_side, t.Depeq.var.v_level) in
          cs.(i) <- cs.(i) + t.Depeq.coeff)
        eq.Depeq.terms;
      (eq.Depeq.c0, cs))
    np.Problem.eqs

let point_of vars vals =
  Array.to_list (Array.mapi (fun i v -> (v, vals.(i))) vars)

(* Number of box points, or [None] past [cap]. *)
let box_points vars cap =
  let rec go i acc =
    if i >= Array.length vars then Some acc
    else
      let w = vars.(i).Depeq.v_ub + 1 in
      if acc > cap / w then None else go (i + 1) (acc * w)
  in
  go 0 1

type scan = {
  s_found : point option;  (** set when [f] stopped the scan *)
  s_skipped : int;  (** points whose evaluation overflowed *)
  s_complete : bool;
  s_reason : string;  (** why incomplete (when [s_complete = false]) *)
}

(* Exhaustive odometer scan.  [f] receives each integer solution and
   returns [true] to continue; returning [false] records the point and
   stops.  A point whose left-hand side overflows native ints is
   counted in [s_skipped]: its membership is unknown, so completeness
   claims must account for it. *)
let scan ?(budget = Budget.unlimited) ?(limit = default_limit) np ~f =
  let vars = variables np in
  let rows = compile vars np in
  match box_points vars limit with
  | None -> { s_found = None; s_skipped = 0; s_complete = false; s_reason = "limit" }
  | Some _ ->
      let n = Array.length vars in
      let vals = Array.make n 0 in
      let skipped = ref 0 in
      let found = ref None in
      let eval_all () =
        (* [`Sol | `No | `Over] for this assignment. *)
        try
          if
            List.for_all
              (fun (c0, cs) ->
                let acc = ref c0 in
                for i = 0 to n - 1 do
                  if cs.(i) <> 0 then
                    acc := Intx.add !acc (Intx.mul cs.(i) vals.(i))
                done;
                !acc = 0)
              rows
          then `Sol
          else `No
        with Intx.Overflow _ -> `Over
      in
      let rec bump i =
        (* Advance the odometer; [false] when the box is exhausted. *)
        if i < 0 then false
        else if vals.(i) < vars.(i).Depeq.v_ub then begin
          vals.(i) <- vals.(i) + 1;
          true
        end
        else begin
          vals.(i) <- 0;
          bump (i - 1)
        end
      in
      let result =
        try
          let continue = ref true in
          while !continue do
            Budget.spend budget;
            (match eval_all () with
            | `Sol ->
                if not (f (point_of vars vals)) then begin
                  found := Some (point_of vars vals);
                  continue := false
                end
            | `Over -> incr skipped
            | `No -> ());
            if !continue then continue := bump (n - 1)
          done;
          { s_found = !found; s_skipped = !skipped; s_complete = true;
            s_reason = "" }
        with Budget.Exhausted why ->
          { s_found = None; s_skipped = !skipped; s_complete = false;
            s_reason = "budget:" ^ why }
      in
      result

let decide ?budget ?limit np =
  let r = scan ?budget ?limit np ~f:(fun _ -> false) in
  match r.s_found with
  | Some w -> Sat w
  | None ->
      if not r.s_complete then Unknown r.s_reason
      else if r.s_skipped > 0 then Unknown "overflow"
      else Unsat

(* Realized direction/distance of one solution at one 1-based common
   level: [β − α] with β the destination instance.  [None] when the
   solution does not bind both instances (an unconstrained level admits
   any direction, so nothing can be checked against it). *)
let delta_at point level =
  let value side =
    List.find_map
      (fun ((v : Depeq.var), x) ->
        if v.v_side = side && v.v_level = level then Some x else None)
      point
  in
  match (value `Src, value `Dst) with
  | Some a, Some b -> Some (b - a)
  | _ -> None

let admitted_by dirvecs point n_common =
  dirvecs = []
  || List.exists
       (fun (dv : Dirvec.t) ->
         let ok = ref true in
         Array.iteri
           (fun i d ->
             if i < n_common then
               match delta_at point (i + 1) with
               | Some delta -> if not (Dirvec.admits d delta) then ok := false
               | None -> ())
           dv;
         !ok)
       dirvecs

let distances_hold distances point =
  List.for_all
    (fun (level, d) ->
      match delta_at point level with
      | Some delta -> delta = d
      | None -> true)
    distances

let pp_point ppf point =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf ((v : Depeq.var), x) ->
         Format.fprintf ppf "%s=%d" v.v_name x))
    point

let point_to_string point = Format.asprintf "%a" pp_point point

let verify ?budget ?limit np ~verdict ~dirvecs ~distances =
  let module Verdict = Dlz_deptest.Verdict in
  let violation = ref None in
  let check point =
    if verdict = Verdict.Independent then begin
      violation :=
        Some
          {
            v_kind = `Verdict;
            v_point = point;
            v_detail = "claimed independent, solution " ^ point_to_string point;
          };
      false
    end
    else if not (admitted_by dirvecs point np.Problem.n_common) then begin
      violation :=
        Some
          {
            v_kind = `Dirvec;
            v_point = point;
            v_detail =
              "solution " ^ point_to_string point
              ^ " admitted by no claimed direction vector";
          };
      false
    end
    else if not (distances_hold distances point) then begin
      violation :=
        Some
          {
            v_kind = `Distance;
            v_point = point;
            v_detail =
              "solution " ^ point_to_string point
              ^ " contradicts a claimed distance";
          };
      false
    end
    else true
  in
  let r = scan ?budget ?limit np ~f:check in
  match !violation with
  | Some v -> Violated v
  | None ->
      if not r.s_complete then Inconclusive r.s_reason
      else if r.s_skipped > 0 then Inconclusive "overflow"
      else Consistent
