module Budget = Dlz_base.Budget
module Intx = Dlz_base.Intx
module Pool = Dlz_base.Pool
module Trace = Dlz_base.Trace
module Poly = Dlz_symbolic.Poly
module Verdict = Dlz_deptest.Verdict
module Problem = Dlz_deptest.Problem
module Strategy = Dlz_engine.Strategy
module Registry = Dlz_engine.Registry
module Stats = Dlz_engine.Stats
module Chaos = Dlz_engine.Chaos

type cls = Unsound | Imprecise | Internal

let cls_to_string = function
  | Unsound -> "UNSOUND"
  | Imprecise -> "IMPRECISE"
  | Internal -> "INTERNAL"

let stats_cls = function
  | Unsound -> "unsound"
  | Imprecise -> "imprecise"
  | Internal -> "internal"

type divergence = {
  d_case : string;
  d_family : string;
  d_strategy : string;
  d_class : cls;
  d_detail : string;
  d_ground : Problem.numeric;  (** Minimized when shrinking was on. *)
  d_replay : string;  (** S-expression of [d_ground]. *)
}

type tally = {
  t_checks : int;
  t_agreements : int;
  t_imprecise : int;
  t_unknown : int;
  t_faults : int;
}

let zero_tally =
  { t_checks = 0; t_agreements = 0; t_imprecise = 0; t_unknown = 0;
    t_faults = 0 }

let add_tally a b =
  {
    t_checks = a.t_checks + b.t_checks;
    t_agreements = a.t_agreements + b.t_agreements;
    t_imprecise = a.t_imprecise + b.t_imprecise;
    t_unknown = a.t_unknown + b.t_unknown;
    t_faults = a.t_faults + b.t_faults;
  }

type report = {
  r_cases : int;
  r_tally : tally;
  r_divergences : divergence list;
      (** UNSOUND and INTERNAL only, sorted by (case, strategy). *)
}

(* The PR 3 fault taxonomy: anything a cascade is allowed to contain.
   A strategy raising outside this set is an INTERNAL divergence. *)
let taxonomy_fault = function
  | Intx.Overflow _ | Intx.Div_by_zero _ | Budget.Exhausted _
  | Stack_overflow | Chaos.Injected _ ->
      true
  | _ -> false

(* Witness-claiming strategies: their Dependent verdict asserts realized
   solutions, so exhaustive unsatisfiability contradicts it outright. *)
let claims_witness name = String.equal name "exact"

let numeric_distances distances =
  List.filter_map
    (fun (l, p) -> Option.map (fun c -> (l, c)) (Poly.to_const p))
    distances

(* Run one strategy on one case and classify the result against the
   oracle.  [oracle] is the case-level satisfiability verdict, computed
   once and shared; the full claim check re-enumerates only when the
   strategy actually decided. *)
let check_strategy ~budget_fuel ~limit ~oracle (case : Eqgen.case)
    (s : Strategy.t) =
  let budget = Budget.create ~fuel:budget_fuel () in
  let run () = s.run ~env:case.Eqgen.env ~budget case.Eqgen.problem in
  match run () with
  | Strategy.Pass -> (`Agree, None)
  | Strategy.Decided (verdict, dirvecs, distances) -> (
      let verdict = Verdict.conservative verdict in
      match (verdict, Lazy.force oracle) with
      | Verdict.Independent, Oracle.Sat w ->
          ( `Diverge,
            Some
              ( Unsound,
                "claimed independent; oracle solution "
                ^ Oracle.point_to_string w ) )
      | Verdict.Independent, Oracle.Unsat -> (`Agree, None)
      | Verdict.Independent, Oracle.Unknown _ ->
          (`Independent_unknown, None)
      | _, Oracle.Unsat ->
          if claims_witness s.Strategy.name then
            ( `Diverge,
              Some
                ( Internal,
                  "claims realized solutions but the system is exhaustively \
                   unsatisfiable" ) )
          else (`Imprecise, None)
      | _, Oracle.Sat _ -> (
          (* Verdicts agree; the direction and distance claims must
             admit every realized solution. *)
          match
            Oracle.verify ~budget:(Budget.create ~fuel:budget_fuel ())
              ~limit case.Eqgen.ground ~verdict ~dirvecs
              ~distances:(numeric_distances distances)
          with
          | Oracle.Consistent -> (`Agree, None)
          | Oracle.Violated v -> (`Diverge, Some (Unsound, v.Oracle.v_detail))
          | Oracle.Inconclusive _ -> (`Unknown, None))
      | _, Oracle.Unknown _ -> (`Unknown, None))
  | exception ((Out_of_memory | Sys.Break) as e) -> raise e
  | exception e when taxonomy_fault e -> (`Fault, None)
  | exception e ->
      ( `Diverge,
        Some (Internal, "exn:" ^ Printexc.to_string e) )

type outcome = {
  o_strategy : string;
  o_status : [ `Agree | `Imprecise | `Unknown | `Independent_unknown
             | `Fault | `Diverge ];
  o_diag : (cls * string) option;
}

let check_case ?stats ~budget_fuel ~limit (case : Eqgen.case) =
  let oracle =
    lazy
      (Oracle.decide ~budget:(Budget.create ~fuel:(budget_fuel * 4) ())
         ~limit case.Eqgen.ground)
  in
  let outcomes =
    List.filter_map
      (fun (s : Strategy.t) ->
        if not (s.applies ~env:case.Eqgen.env case.Eqgen.problem) then None
        else
          Trace.with_span ~cat:"oracle"
            ~args:[ ("case", case.Eqgen.id); ("strategy", s.Strategy.name) ]
            "oracle.check"
          @@ fun () ->
          (match stats with Some st -> Stats.record_oracle_check st | None -> ());
          let status, diag = check_strategy ~budget_fuel ~limit ~oracle case s in
          Some { o_strategy = s.Strategy.name; o_status = status; o_diag = diag })
      (Registry.all ())
  in
  (* Cross-check: when the oracle could not decide, a witnessed
     Dependent from the exact solver still convicts any Independent
     claim — the strategies are checked against each other. *)
  let outcomes =
    let oracle_unknown =
      match Lazy.force oracle with Oracle.Unknown _ -> true | _ -> false
    in
    if not oracle_unknown then outcomes
    else
      (* Probe the exact backtracking solver (smarter than the plain
         box scan: interval + gcd pruning) for a concrete witness. *)
      let ground_witness =
        match
          Dlz_deptest.Exact.solve
            ~budget:(Budget.create ~fuel:budget_fuel ())
            case.Eqgen.ground.Problem.eqs
        with
        | Dlz_deptest.Exact.Feasible w -> Some w
        | Dlz_deptest.Exact.Infeasible | Dlz_deptest.Exact.Unknown -> None
        | exception _ -> None
      in
      match ground_witness with
      | None -> outcomes
      | Some w ->
          List.map
            (fun o ->
              if o.o_status = `Independent_unknown then
                {
                  o with
                  o_status = `Diverge;
                  o_diag =
                    Some
                      ( Unsound,
                        "claimed independent; exact solver witness "
                        ^ Oracle.point_to_string w );
                }
              else o)
            outcomes
  in
  let tally =
    List.fold_left
      (fun t o ->
        let t = { t with t_checks = t.t_checks + 1 } in
        match o.o_status with
        | `Agree -> { t with t_agreements = t.t_agreements + 1 }
        | `Imprecise -> { t with t_imprecise = t.t_imprecise + 1 }
        | `Unknown | `Independent_unknown ->
            { t with t_unknown = t.t_unknown + 1 }
        | `Fault -> { t with t_faults = t.t_faults + 1 }
        | `Diverge -> t)
      zero_tally outcomes
  in
  let divergences =
    List.filter_map
      (fun o ->
        match o.o_diag with
        | Some (cls, detail) ->
            (match stats with
            | Some st ->
                Stats.record_divergence st o.o_strategy ~cls:(stats_cls cls)
            | None -> ());
            Some
              {
                d_case = case.Eqgen.id;
                d_family = case.Eqgen.family;
                d_strategy = o.o_strategy;
                d_class = cls;
                d_detail = detail;
                d_ground = case.Eqgen.ground;
                d_replay = Sexp.problem_to_string case.Eqgen.ground;
              }
        | None -> None)
      outcomes
  in
  (tally, divergences)

(* The shrinking predicate replays the divergence classification on a
   candidate ground problem (lifted synthetically, empty assumptions):
   "still fails" means the same strategy diverges with the same class. *)
let replays_divergence ~budget_fuel ~limit (d : divergence) np =
  match Registry.find d.d_strategy with
  | None -> false
  | Some s -> (
      let case =
        {
          Eqgen.id = d.d_case; family = d.d_family;
          problem = Problem.synthetic np; ground = np;
          env = Dlz_symbolic.Assume.empty;
        }
      in
      let oracle =
        lazy
          (Oracle.decide ~budget:(Budget.create ~fuel:(budget_fuel * 4) ())
             ~limit np)
      in
      s.Strategy.applies ~env:case.Eqgen.env case.Eqgen.problem
      &&
      match check_strategy ~budget_fuel ~limit ~oracle case s with
      | `Diverge, Some (cls, _) -> cls = d.d_class
      | _ -> false)

let shrink_divergence ~budget_fuel ~limit (d : divergence) =
  let still_fails = replays_divergence ~budget_fuel ~limit d in
  if not (still_fails d.d_ground) then d
  else
    let ground = Shrink.minimize ~still_fails d.d_ground in
    { d with d_ground = ground; d_replay = Sexp.problem_to_string ground }

let default_fuel = 200_000
let default_limit = 20_000

let run ?stats ?(jobs = 1) ?(fuel = default_fuel) ?(limit = default_limit)
    ?(shrink = false) cases =
  let arr = Array.of_list cases in
  let check case = check_case ?stats ~budget_fuel:fuel ~limit case in
  let results =
    Pool.with_jobs ~jobs (fun pool ->
        match pool with
        | None -> Array.map check arr
        | Some p -> Pool.map p ~chunk:4 check arr)
  in
  let tally =
    Array.fold_left (fun acc (t, _) -> add_tally acc t) zero_tally results
  in
  let divergences =
    Array.to_list results |> List.concat_map snd
    |> List.map (fun d ->
           if shrink && (d.d_class = Unsound || d.d_class = Internal) then
             shrink_divergence ~budget_fuel:fuel ~limit d
           else d)
    |> List.sort (fun a b ->
           match String.compare a.d_case b.d_case with
           | 0 -> String.compare a.d_strategy b.d_strategy
           | c -> c)
  in
  { r_cases = Array.length arr; r_tally = tally; r_divergences = divergences }

let count_class report cls =
  List.length (List.filter (fun d -> d.d_class = cls) report.r_divergences)

let report_to_string report =
  let buf = Buffer.create 1024 in
  let t = report.r_tally in
  Buffer.add_string buf
    (Printf.sprintf
       "cases %d  checks %d  agree %d  imprecise %d  unknown %d  faults %d\n"
       report.r_cases t.t_checks t.t_agreements t.t_imprecise t.t_unknown
       t.t_faults);
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s: %s\n" (cls_to_string d.d_class) d.d_strategy
           d.d_case d.d_detail);
      Buffer.add_string buf d.d_replay;
      Buffer.add_char buf '\n')
    report.r_divergences;
  Buffer.add_string buf
    (Printf.sprintf "summary: %d UNSOUND, %d INTERNAL\n"
       (count_class report Unsound) (count_class report Internal));
  Buffer.contents buf
