(** The differential cross-check driver.

    Runs every registered strategy over a batch of generated cases and
    classifies each divergence from the brute-force oracle:

    - [Unsound] — the strategy claimed independence while an integer
      solution exists (or claimed direction vectors / distances some
      realized solution contradicts).  Never acceptable.
    - [Imprecise] — the strategy reported possible dependence on an
      exhaustively unsatisfiable system.  Allowed: every filter is
      conservative.
    - [Internal] — the strategy escaped the engine's fault taxonomy
      (raised an exception the cascade would not contain), or a
      witness-claiming strategy asserted solutions of an unsatisfiable
      system.

    When the oracle itself cannot decide (box too large, overflow), a
    witness from the exact backtracking solver still convicts an
    Independent claim — the strategies are cross-checked against each
    other, not only against the scan.

    The batch is checked with {!Dlz_base.Pool} parallelism; results
    land by case index, so the report is identical for any job count. *)

type cls = Unsound | Imprecise | Internal

val cls_to_string : cls -> string
(** ["UNSOUND"] / ["IMPRECISE"] / ["INTERNAL"]. *)

type divergence = {
  d_case : string;
  d_family : string;
  d_strategy : string;
  d_class : cls;
  d_detail : string;
  d_ground : Dlz_deptest.Problem.numeric;
      (** Minimized when shrinking was on. *)
  d_replay : string;  (** S-expression of [d_ground]. *)
}

type tally = {
  t_checks : int;
  t_agreements : int;
  t_imprecise : int;
  t_unknown : int;
  t_faults : int;  (** Taxonomy faults contained during a run. *)
}

type report = {
  r_cases : int;
  r_tally : tally;
  r_divergences : divergence list;
      (** UNSOUND and INTERNAL only, sorted by (case, strategy). *)
}

val default_fuel : int
(** 200,000 solver steps per strategy run. *)

val default_limit : int
(** 20,000 oracle box points. *)

val run :
  ?stats:Dlz_engine.Stats.t ->
  ?jobs:int ->
  ?fuel:int ->
  ?limit:int ->
  ?shrink:bool ->
  Eqgen.case list ->
  report
(** [fuel] bounds each strategy run and (×4) each oracle scan; [limit]
    caps the oracle's box size in points.  [shrink] minimizes every
    UNSOUND/INTERNAL divergence with {!Shrink.minimize} before
    reporting.  With [stats], records one oracle-check per strategy run
    and one divergence counter per classification. *)

val count_class : report -> cls -> int

val report_to_string : report -> string
(** Deterministic plain-text report (same batch ⇒ byte-identical). *)
