(** Replayable counterexamples: s-expression codec for numeric
    dependence problems.

    [vic fuzz] emits minimized counterexamples in this format and the
    regression suite reads them back; the writer is deterministic, so
    same input ⇒ byte-identical output. *)

val problem_to_string : Dlz_deptest.Problem.numeric -> string

val problem_of_string :
  string -> (Dlz_deptest.Problem.numeric, string) result
(** Inverse of {!problem_to_string} (whitespace-insensitive). *)
