(** Test-case generators for the differential oracle.

    Each case pairs the problem a strategy sees with the numeric ground
    problem the oracle decides.  For purely numeric families the two
    coincide (the problem is the {!Dlz_deptest.Problem.synthetic} lift
    of the ground); the symbolic family keeps polynomial coefficients
    on the strategy side and grounds them at a concrete instantiation
    its assumptions admit — a strategy claiming independence under the
    assumptions must survive every such instantiation.

    All generators are deterministic in [seed]. *)

module Assume = Dlz_symbolic.Assume
module Problem = Dlz_deptest.Problem

type case = {
  id : string;  (** ["family:index"], unique within a batch. *)
  family : string;
  problem : Problem.t;  (** What the strategies see. *)
  ground : Problem.numeric;  (** What the oracle decides. *)
  env : Assume.t;
}

val random : seed:int64 -> count:int -> case list
(** Random numeric systems: 1–3 common loops, bounds ≤ 6, coefficients
    in [-8, 8]. *)

val linearized : seed:int64 -> count:int -> case list
(** Row-major linearized pairs [i + N*j (+ N*M*k)], with the row extent
    sometimes crossing the stride. *)

val symbolic : seed:int64 -> count:int -> case list
(** Symbolic-coefficient equations over a symbol [N] with an assumed
    lower bound; grounded at an admissible [N]. *)

val near_overflow : seed:int64 -> count:int -> case list
(** Coefficients within a few bits of [max_int] over tiny boxes —
    punishes raw arithmetic in any strategy. *)

val progen : seed:int64 -> count:int -> case list
(** Whole random programs ({!Dlz_driver.Progen.linearized_profile})
    pushed through the real front-end pipeline; one case per testable
    reference pair. *)

val corpus : unit -> case list
(** Every testable pair of the synthetic RiCEPS corpus; symbolic pairs
    are grounded at their assumption lower bounds. *)

val polybench : unit -> case list
(** Every testable pair of the vendored polybench-style mini-C corpus
    ({!Dlz_corpus.Polybench}), lowered through the pointer-conversion
    pass and the real pipeline. *)

val all : seed:int64 -> count:int -> case list
(** The default mixed batch: 40% random, 25% linearized, 15% symbolic,
    10% near-overflow, the rest whole programs. *)
