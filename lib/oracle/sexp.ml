module Depeq = Dlz_deptest.Depeq
module Problem = Dlz_deptest.Problem

(* Replayable counterexamples: a tiny s-expression codec for
   [Problem.numeric], stable enough to check minimized equations into
   the test suite and read them back byte-for-byte.

     (problem
      (n-common 2)
      (common-ubs 4 9)
      (opaque 0)
      (eq (c0 -5)
       (term 1 src 1 4 i1)
       (term -10 dst 2 9 j2)))

   A term is [coeff side level ub name]. *)

let side_to_string = function `Src -> "src" | `Dst -> "dst"

let problem_to_string (np : Problem.numeric) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "(problem\n";
  Buffer.add_string buf (Printf.sprintf " (n-common %d)\n" np.Problem.n_common);
  Buffer.add_string buf " (common-ubs";
  Array.iter (fun u -> Buffer.add_string buf (Printf.sprintf " %d" u))
    np.Problem.common_ubs;
  Buffer.add_string buf ")\n";
  Buffer.add_string buf (Printf.sprintf " (opaque %d)\n" np.Problem.opaque_dims);
  List.iter
    (fun (eq : Depeq.t) ->
      Buffer.add_string buf (Printf.sprintf " (eq (c0 %d)" eq.Depeq.c0);
      List.iter
        (fun (t : Depeq.term) ->
          let v = t.Depeq.var in
          Buffer.add_string buf
            (Printf.sprintf "\n  (term %d %s %d %d %s)" t.Depeq.coeff
               (side_to_string v.v_side) v.v_level v.v_ub v.v_name))
        eq.Depeq.terms;
      Buffer.add_string buf ")\n")
    np.Problem.eqs;
  Buffer.add_string buf ")";
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

type sx = Atom of string | List of sx list

exception Bad of string

let tokenize s =
  let toks = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '(' -> toks := "(" :: !toks; incr i
    | ')' -> toks := ")" :: !toks; incr i
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | _ ->
        let j = ref !i in
        while
          !j < n
          && not (List.mem s.[!j] [ '('; ')'; ' '; '\t'; '\n'; '\r' ])
        do
          incr j
        done;
        toks := String.sub s !i (!j - !i) :: !toks;
        i := !j);
  done;
  List.rev !toks

let parse_sx toks =
  let rec one = function
    | [] -> raise (Bad "unexpected end of input")
    | "(" :: rest ->
        let items, rest = many [] rest in
        (List items, rest)
    | ")" :: _ -> raise (Bad "unexpected )")
    | a :: rest -> (Atom a, rest)
  and many acc = function
    | ")" :: rest -> (List.rev acc, rest)
    | [] -> raise (Bad "unterminated list")
    | toks ->
        let x, rest = one toks in
        many (x :: acc) rest
  in
  match one toks with
  | x, [] -> x
  | _, _ :: _ -> raise (Bad "trailing tokens")

let int_of = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some n -> n
      | None -> raise (Bad ("expected integer, got " ^ a)))
  | List _ -> raise (Bad "expected integer, got list")

let side_of = function
  | Atom "src" -> `Src
  | Atom "dst" -> `Dst
  | Atom a -> raise (Bad ("expected src/dst, got " ^ a))
  | List _ -> raise (Bad "expected src/dst, got list")

let field name = function
  | List (Atom k :: rest) when String.equal k name -> rest
  | _ -> raise (Bad ("expected (" ^ name ^ " ...)"))

let term_of sx =
  match field "term" sx with
  | [ coeff; side; level; ub; name ] ->
      let v_name = match name with Atom a -> a | List _ -> raise (Bad "term name") in
      ( int_of coeff,
        {
          Depeq.v_name;
          v_ub = int_of ub;
          v_side = side_of side;
          v_level = int_of level;
        } )
  | _ -> raise (Bad "term arity")

let eq_of sx =
  match field "eq" sx with
  | c0 :: terms ->
      let c0 = match field "c0" c0 with [ c ] -> int_of c | _ -> raise (Bad "c0") in
      Depeq.make c0 (List.map term_of terms)
  | [] -> raise (Bad "eq arity")

let problem_of_string s =
  try
    match parse_sx (tokenize s) with
    | List (Atom "problem" :: nc :: ubs :: opq :: eqs) ->
        let n_common =
          match field "n-common" nc with [ n ] -> int_of n | _ -> raise (Bad "n-common")
        in
        let common_ubs =
          Array.of_list (List.map int_of (field "common-ubs" ubs))
        in
        let opaque_dims =
          match field "opaque" opq with [ n ] -> int_of n | _ -> raise (Bad "opaque")
        in
        if Array.length common_ubs <> n_common then
          raise (Bad "common-ubs arity mismatch");
        Ok
          {
            Problem.n_common;
            common_ubs;
            eqs = List.map eq_of eqs;
            opaque_dims;
          }
    | _ -> Error "expected (problem ...)"
  with
  | Bad msg -> Error msg
  | Invalid_argument msg -> Error msg
