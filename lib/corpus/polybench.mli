(** Polybench-style mini-C kernel corpus.

    ~20 deterministic, self-contained kernels (gemm, syrk, seidel-2d,
    jacobi-1d/2d, adi, ... families) rendered as C source strings in
    the subset the mini-C frontend accepts, including hand-linearized
    [-linear] variants — the delinearization targets the paper is
    about — next to their multi-dimensional twins.  The vendored
    copies live under [corpus/polybench/]; [@corpus-ci] checks they
    byte-match this generator. *)

type kernel = {
  k_name : string;  (** File basename without the [.c] extension. *)
  k_family : string;  (** blas / tensor / stencil / datamining. *)
  k_source : string;  (** Full C source text, byte-deterministic. *)
}

val kernels : kernel list
(** Sorted by [k_name]. *)

val write_dir : string -> unit
(** [write_dir dir] writes each kernel to [dir/<name>.c], creating
    [dir] (and parents) as needed. *)
