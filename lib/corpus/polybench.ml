(* Polybench-style mini-C kernel corpus.

   Each kernel is a deterministic, self-contained C source string in
   the subset the mini-C frontend accepts: [#define] size macros,
   global multi-dimensional array declarations, a transparent
   [static void kernel_*() { ... }] wrapper, [/* */] comments, real
   literals and [+=]/[-=] compound assignments.  The [-linear]
   variants carry hand-linearized subscripts ([A[i * NJ + j]]) — the
   delinearization targets the paper is about — next to their
   multi-dimensional twins.  Sizes are polybench "mini"-scale so the
   whole corpus analyzes in well under a second. *)

type kernel = { k_name : string; k_family : string; k_source : string }

let ident_of_name name =
  String.map (fun c -> if c = '-' then '_' else c) name

let kernel ~family ~name ~comment ~defines ~decls ~ivars body =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "/* %s: %s\n   Generated polybench-style kernel for the delinearization \
     corpus. */\n"
    name comment;
  List.iter (fun (k, v) -> Printf.bprintf b "#define %s %d\n" k v) defines;
  Buffer.add_char b '\n';
  List.iter (fun d -> Printf.bprintf b "%s\n" d) decls;
  Buffer.add_char b '\n';
  Printf.bprintf b "static void kernel_%s() {\n" (ident_of_name name);
  Printf.bprintf b "  int %s;\n" (String.concat ", " ivars);
  List.iter (fun l -> Printf.bprintf b "  %s\n" l) body;
  Buffer.add_string b "}\n";
  { k_name = name; k_family = family; k_source = Buffer.contents b }

(* --- linear algebra (blas-like) ----------------------------------------- *)

let gemm =
  kernel ~family:"blas" ~name:"gemm" ~comment:"C = alpha*A*B + beta*C"
    ~defines:[ ("NI", 20); ("NJ", 25); ("NK", 30) ]
    ~decls:
      [
        "double C[NI][NJ];"; "double A[NI][NK];"; "double B[NK][NJ];";
        "double alpha, beta;";
      ]
    ~ivars:[ "i"; "j"; "k" ]
    [
      "alpha = 1.5;";
      "beta = 1.2;";
      "for (i = 0; i < NI; i++)";
      "  for (j = 0; j < NJ; j++) {";
      "    C[i][j] = C[i][j] * beta;";
      "    for (k = 0; k < NK; k++)";
      "      C[i][j] += alpha * A[i][k] * B[k][j];";
      "  }";
    ]

let gemm_linear =
  kernel ~family:"blas" ~name:"gemm-linear"
    ~comment:"gemm over hand-linearized 1-d arrays (delinearization target)"
    ~defines:[ ("NI", 20); ("NJ", 25); ("NK", 30) ]
    ~decls:
      [
        "double C[500]; /* NI*NJ, hand-linearized */";
        "double A[600]; /* NI*NK */";
        "double B[750]; /* NK*NJ */";
        "double alpha, beta;";
      ]
    ~ivars:[ "i"; "j"; "k" ]
    [
      "alpha = 1.5;";
      "beta = 1.2;";
      "for (i = 0; i < NI; i++)";
      "  for (j = 0; j < NJ; j++) {";
      "    C[i * NJ + j] = C[i * NJ + j] * beta;";
      "    for (k = 0; k < NK; k++)";
      "      C[i * NJ + j] += alpha * A[i * NK + k] * B[k * NJ + j];";
      "  }";
    ]

let syrk =
  kernel ~family:"blas" ~name:"syrk" ~comment:"C = alpha*A*A' + beta*C"
    ~defines:[ ("N", 24); ("M", 18) ]
    ~decls:
      [ "double C[N][N];"; "double A[N][M];"; "double alpha, beta;" ]
    ~ivars:[ "i"; "j"; "k" ]
    [
      "alpha = 1.5;";
      "beta = 1.2;";
      "for (i = 0; i < N; i++)";
      "  for (j = 0; j < N; j++)";
      "    C[i][j] = C[i][j] * beta;";
      "for (i = 0; i < N; i++)";
      "  for (j = 0; j < N; j++)";
      "    for (k = 0; k < M; k++)";
      "      C[i][j] += alpha * A[i][k] * A[j][k];";
    ]

let syr2k =
  kernel ~family:"blas" ~name:"syr2k"
    ~comment:"C = alpha*A*B' + alpha*B*A' + beta*C"
    ~defines:[ ("N", 20); ("M", 16) ]
    ~decls:
      [
        "double C[N][N];"; "double A[N][M];"; "double B[N][M];";
        "double alpha, beta;";
      ]
    ~ivars:[ "i"; "j"; "k" ]
    [
      "alpha = 1.5;";
      "beta = 1.2;";
      "for (i = 0; i < N; i++)";
      "  for (j = 0; j < N; j++)";
      "    C[i][j] = C[i][j] * beta;";
      "for (i = 0; i < N; i++)";
      "  for (j = 0; j < N; j++)";
      "    for (k = 0; k < M; k++)";
      "      C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];";
    ]

let two_mm =
  kernel ~family:"blas" ~name:"2mm" ~comment:"D = alpha*A*B*C + beta*D"
    ~defines:[ ("NI", 16); ("NJ", 18); ("NK", 20); ("NL", 22) ]
    ~decls:
      [
        "double tmp[NI][NJ];"; "double A[NI][NK];"; "double B[NK][NJ];";
        "double C[NJ][NL];"; "double D[NI][NL];"; "double alpha, beta;";
      ]
    ~ivars:[ "i"; "j"; "k" ]
    [
      "alpha = 1.5;";
      "beta = 1.2;";
      "for (i = 0; i < NI; i++)";
      "  for (j = 0; j < NJ; j++) {";
      "    tmp[i][j] = 0.0;";
      "    for (k = 0; k < NK; k++)";
      "      tmp[i][j] += alpha * A[i][k] * B[k][j];";
      "  }";
      "for (i = 0; i < NI; i++)";
      "  for (j = 0; j < NL; j++) {";
      "    D[i][j] = D[i][j] * beta;";
      "    for (k = 0; k < NJ; k++)";
      "      D[i][j] += tmp[i][k] * C[k][j];";
      "  }";
    ]

let three_mm =
  kernel ~family:"blas" ~name:"3mm" ~comment:"G = (A*B)*(C*D)"
    ~defines:[ ("NI", 12); ("NJ", 13); ("NK", 14); ("NL", 15); ("NM", 16) ]
    ~decls:
      [
        "double E[NI][NJ];"; "double A[NI][NK];"; "double B[NK][NJ];";
        "double F[NJ][NL];"; "double C[NJ][NM];"; "double D[NM][NL];";
        "double G[NI][NL];";
      ]
    ~ivars:[ "i"; "j"; "k" ]
    [
      "for (i = 0; i < NI; i++)";
      "  for (j = 0; j < NJ; j++) {";
      "    E[i][j] = 0.0;";
      "    for (k = 0; k < NK; k++)";
      "      E[i][j] += A[i][k] * B[k][j];";
      "  }";
      "for (i = 0; i < NJ; i++)";
      "  for (j = 0; j < NL; j++) {";
      "    F[i][j] = 0.0;";
      "    for (k = 0; k < NM; k++)";
      "      F[i][j] += C[i][k] * D[k][j];";
      "  }";
      "for (i = 0; i < NI; i++)";
      "  for (j = 0; j < NL; j++) {";
      "    G[i][j] = 0.0;";
      "    for (k = 0; k < NJ; k++)";
      "      G[i][j] += E[i][k] * F[k][j];";
      "  }";
    ]

let mvt =
  kernel ~family:"blas" ~name:"mvt"
    ~comment:"x1 = x1 + A*y1; x2 = x2 + A'*y2"
    ~defines:[ ("N", 40) ]
    ~decls:
      [
        "double A[N][N];"; "double x1[N];"; "double x2[N];";
        "double y1[N];"; "double y2[N];";
      ]
    ~ivars:[ "i"; "j" ]
    [
      "for (i = 0; i < N; i++)";
      "  for (j = 0; j < N; j++)";
      "    x1[i] = x1[i] + A[i][j] * y1[j];";
      "for (i = 0; i < N; i++)";
      "  for (j = 0; j < N; j++)";
      "    x2[i] = x2[i] + A[j][i] * y2[j];";
    ]

let atax =
  kernel ~family:"blas" ~name:"atax" ~comment:"y = A'*(A*x)"
    ~defines:[ ("M", 19); ("N", 21) ]
    ~decls:
      [
        "double A[M][N];"; "double x[N];"; "double y[N];"; "double tmp[M];";
      ]
    ~ivars:[ "i"; "j" ]
    [
      "for (i = 0; i < N; i++)";
      "  y[i] = 0.0;";
      "for (i = 0; i < M; i++) {";
      "  tmp[i] = 0.0;";
      "  for (j = 0; j < N; j++)";
      "    tmp[i] = tmp[i] + A[i][j] * x[j];";
      "  for (j = 0; j < N; j++)";
      "    y[j] = y[j] + A[i][j] * tmp[i];";
      "}";
    ]

let bicg =
  kernel ~family:"blas" ~name:"bicg" ~comment:"s = A'*r; q = A*p"
    ~defines:[ ("N", 21); ("M", 19) ]
    ~decls:
      [
        "double A[N][M];"; "double s[M];"; "double q[N];"; "double p[M];";
        "double r[N];";
      ]
    ~ivars:[ "i"; "j" ]
    [
      "for (i = 0; i < M; i++)";
      "  s[i] = 0.0;";
      "for (i = 0; i < N; i++) {";
      "  q[i] = 0.0;";
      "  for (j = 0; j < M; j++) {";
      "    s[j] = s[j] + r[i] * A[i][j];";
      "    q[i] = q[i] + A[i][j] * p[j];";
      "  }";
      "}";
    ]

let gesummv =
  kernel ~family:"blas" ~name:"gesummv" ~comment:"y = alpha*A*x + beta*B*x"
    ~defines:[ ("N", 30) ]
    ~decls:
      [
        "double A[N][N];"; "double B[N][N];"; "double x[N];"; "double y[N];";
        "double tmp[N];"; "double alpha, beta;";
      ]
    ~ivars:[ "i"; "j" ]
    [
      "alpha = 1.5;";
      "beta = 1.2;";
      "for (i = 0; i < N; i++) {";
      "  tmp[i] = 0.0;";
      "  y[i] = 0.0;";
      "  for (j = 0; j < N; j++) {";
      "    tmp[i] = A[i][j] * x[j] + tmp[i];";
      "    y[i] = B[i][j] * x[j] + y[i];";
      "  }";
      "  y[i] = alpha * tmp[i] + beta * y[i];";
      "}";
    ]

let gemver =
  kernel ~family:"blas" ~name:"gemver"
    ~comment:"A = A + u1*v1' + u2*v2'; x = beta*A'*y + z; w = alpha*A*x"
    ~defines:[ ("N", 26) ]
    ~decls:
      [
        "double A[N][N];"; "double u1[N];"; "double v1[N];";
        "double u2[N];"; "double v2[N];"; "double w[N];"; "double x[N];";
        "double y[N];"; "double z[N];"; "double alpha, beta;";
      ]
    ~ivars:[ "i"; "j" ]
    [
      "alpha = 1.5;";
      "beta = 1.2;";
      "for (i = 0; i < N; i++)";
      "  for (j = 0; j < N; j++)";
      "    A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];";
      "for (i = 0; i < N; i++)";
      "  for (j = 0; j < N; j++)";
      "    x[i] = x[i] + beta * A[j][i] * y[j];";
      "for (i = 0; i < N; i++)";
      "  x[i] = x[i] + z[i];";
      "for (i = 0; i < N; i++)";
      "  for (j = 0; j < N; j++)";
      "    w[i] = w[i] + alpha * A[i][j] * x[j];";
    ]

(* --- tensor kernels ------------------------------------------------------ *)

let doitgen =
  kernel ~family:"tensor" ~name:"doitgen"
    ~comment:"multiresolution sum: A[r][q][p] = sum_s A[r][q][s]*C4[s][p]"
    ~defines:[ ("NR", 8); ("NQ", 9); ("NP", 10) ]
    ~decls:
      [ "double A[NR][NQ][NP];"; "double C4[NP][NP];"; "double sum[NP];" ]
    ~ivars:[ "r"; "q"; "p"; "s" ]
    [
      "for (r = 0; r < NR; r++)";
      "  for (q = 0; q < NQ; q++) {";
      "    for (p = 0; p < NP; p++) {";
      "      sum[p] = 0.0;";
      "      for (s = 0; s < NP; s++)";
      "        sum[p] += A[r][q][s] * C4[s][p];";
      "    }";
      "    for (p = 0; p < NP; p++)";
      "      A[r][q][p] = sum[p];";
      "  }";
    ]

let doitgen_linear =
  kernel ~family:"tensor" ~name:"doitgen-linear"
    ~comment:"doitgen over a hand-linearized rank-3 array"
    ~defines:[ ("NR", 8); ("NQ", 9); ("NP", 10) ]
    ~decls:
      [
        "double A[720]; /* NR*NQ*NP, hand-linearized */";
        "double C4[NP][NP];";
        "double sum[NP];";
      ]
    ~ivars:[ "r"; "q"; "p"; "s" ]
    [
      "for (r = 0; r < NR; r++)";
      "  for (q = 0; q < NQ; q++) {";
      "    for (p = 0; p < NP; p++) {";
      "      sum[p] = 0.0;";
      "      for (s = 0; s < NP; s++)";
      "        sum[p] += A[(r * NQ + q) * NP + s] * C4[s][p];";
      "    }";
      "    for (p = 0; p < NP; p++)";
      "      A[(r * NQ + q) * NP + p] = sum[p];";
      "  }";
    ]

(* --- stencils ------------------------------------------------------------ *)

let jacobi_1d =
  kernel ~family:"stencil" ~name:"jacobi-1d" ~comment:"1-d jacobi relaxation"
    ~defines:[ ("N", 120); ("TSTEPS", 10) ]
    ~decls:[ "double A[N];"; "double B[N];" ]
    ~ivars:[ "t"; "i" ]
    [
      "for (t = 0; t < TSTEPS; t++) {";
      "  for (i = 1; i < N - 1; i++)";
      "    B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);";
      "  for (i = 1; i < N - 1; i++)";
      "    A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);";
      "}";
    ]

let jacobi_2d =
  kernel ~family:"stencil" ~name:"jacobi-2d" ~comment:"2-d jacobi relaxation"
    ~defines:[ ("N", 20); ("TSTEPS", 6) ]
    ~decls:[ "double A[N][N];"; "double B[N][N];" ]
    ~ivars:[ "t"; "i"; "j" ]
    [
      "for (t = 0; t < TSTEPS; t++) {";
      "  for (i = 1; i < N - 1; i++)";
      "    for (j = 1; j < N - 1; j++)";
      "      B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + \
       A[i + 1][j] + A[i - 1][j]);";
      "  for (i = 1; i < N - 1; i++)";
      "    for (j = 1; j < N - 1; j++)";
      "      A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][j + 1] + \
       B[i + 1][j] + B[i - 1][j]);";
      "}";
    ]

let jacobi_2d_linear =
  kernel ~family:"stencil" ~name:"jacobi-2d-linear"
    ~comment:"2-d jacobi over a hand-linearized 1-d array"
    ~defines:[ ("N", 20); ("TSTEPS", 6) ]
    ~decls:
      [
        "double A[400]; /* N*N, hand-linearized */";
        "double B[400]; /* N*N */";
      ]
    ~ivars:[ "t"; "i"; "j" ]
    [
      "for (t = 0; t < TSTEPS; t++) {";
      "  for (i = 1; i < N - 1; i++)";
      "    for (j = 1; j < N - 1; j++)";
      "      B[i * N + j] = 0.2 * (A[i * N + j] + A[i * N + j - 1] + \
       A[i * N + j + 1] + A[(i + 1) * N + j] + A[(i - 1) * N + j]);";
      "  for (i = 1; i < N - 1; i++)";
      "    for (j = 1; j < N - 1; j++)";
      "      A[i * N + j] = 0.2 * (B[i * N + j] + B[i * N + j - 1] + \
       B[i * N + j + 1] + B[(i + 1) * N + j] + B[(i - 1) * N + j]);";
      "}";
    ]

let seidel_2d =
  kernel ~family:"stencil" ~name:"seidel-2d"
    ~comment:"gauss-seidel 2-d sweep (loop-carried in both dimensions)"
    ~defines:[ ("N", 20); ("TSTEPS", 4) ]
    ~decls:[ "double A[N][N];" ]
    ~ivars:[ "t"; "i"; "j" ]
    [
      "for (t = 0; t <= TSTEPS - 1; t++)";
      "  for (i = 1; i <= N - 2; i++)";
      "    for (j = 1; j <= N - 2; j++)";
      "      A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1] + \
       A[i][j - 1] + A[i][j] + A[i][j + 1] + A[i + 1][j - 1] + A[i + 1][j] \
       + A[i + 1][j + 1]) / 9.0;";
    ]

let fdtd_2d =
  kernel ~family:"stencil" ~name:"fdtd-2d"
    ~comment:"2-d finite-difference time-domain"
    ~defines:[ ("TMAX", 8); ("NX", 24); ("NY", 28) ]
    ~decls:
      [
        "double ex[NX][NY];"; "double ey[NX][NY];"; "double hz[NX][NY];";
        "double fict[TMAX];";
      ]
    ~ivars:[ "t"; "i"; "j" ]
    [
      "for (t = 0; t < TMAX; t++) {";
      "  for (j = 0; j < NY; j++)";
      "    ey[0][j] = fict[t];";
      "  for (i = 1; i < NX; i++)";
      "    for (j = 0; j < NY; j++)";
      "      ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);";
      "  for (i = 0; i < NX; i++)";
      "    for (j = 1; j < NY; j++)";
      "      ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);";
      "  for (i = 0; i < NX - 1; i++)";
      "    for (j = 0; j < NY - 1; j++)";
      "      hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j] + \
       ey[i + 1][j] - ey[i][j]);";
      "}";
    ]

let heat_3d =
  kernel ~family:"stencil" ~name:"heat-3d" ~comment:"3-d heat equation"
    ~defines:[ ("N", 10); ("TSTEPS", 4) ]
    ~decls:[ "double A[N][N][N];"; "double B[N][N][N];" ]
    ~ivars:[ "t"; "i"; "j"; "k" ]
    [
      "for (t = 1; t <= TSTEPS; t++) {";
      "  for (i = 1; i < N - 1; i++)";
      "    for (j = 1; j < N - 1; j++)";
      "      for (k = 1; k < N - 1; k++)";
      "        B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2.0 * A[i][j][k] + \
       A[i - 1][j][k]) + 0.125 * (A[i][j + 1][k] - 2.0 * A[i][j][k] + \
       A[i][j - 1][k]) + 0.125 * (A[i][j][k + 1] - 2.0 * A[i][j][k] + \
       A[i][j][k - 1]) + A[i][j][k];";
      "  for (i = 1; i < N - 1; i++)";
      "    for (j = 1; j < N - 1; j++)";
      "      for (k = 1; k < N - 1; k++)";
      "        A[i][j][k] = 0.125 * (B[i + 1][j][k] - 2.0 * B[i][j][k] + \
       B[i - 1][j][k]) + 0.125 * (B[i][j + 1][k] - 2.0 * B[i][j][k] + \
       B[i][j - 1][k]) + 0.125 * (B[i][j][k + 1] - 2.0 * B[i][j][k] + \
       B[i][j][k - 1]) + B[i][j][k];";
      "}";
    ]

let adi =
  kernel ~family:"stencil" ~name:"adi"
    ~comment:"alternating-direction implicit sweeps (simplified)"
    ~defines:[ ("N", 18); ("TSTEPS", 4) ]
    ~decls:[ "double X[N][N];"; "double A[N][N];"; "double B[N][N];" ]
    ~ivars:[ "t"; "i"; "j" ]
    [
      "for (t = 1; t <= TSTEPS; t++) {";
      "  for (i = 0; i < N; i++)";
      "    for (j = 1; j < N; j++) {";
      "      X[i][j] = X[i][j] - X[i][j - 1] * A[i][j] / B[i][j - 1];";
      "      B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i][j - 1];";
      "    }";
      "  for (i = 1; i < N; i++)";
      "    for (j = 0; j < N; j++) {";
      "      X[i][j] = X[i][j] - X[i - 1][j] * A[i][j] / B[i - 1][j];";
      "      B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i - 1][j];";
      "    }";
      "}";
    ]

(* --- data mining --------------------------------------------------------- *)

let covariance =
  kernel ~family:"datamining" ~name:"covariance"
    ~comment:"column means and centering (rectangular part of covariance)"
    ~defines:[ ("N", 20); ("M", 24) ]
    ~decls:[ "double data[N][M];"; "double mean[M];"; "double fn;" ]
    ~ivars:[ "i"; "j" ]
    [
      "fn = 20.0;";
      "for (j = 0; j < M; j++) {";
      "  mean[j] = 0.0;";
      "  for (i = 0; i < N; i++)";
      "    mean[j] += data[i][j];";
      "  mean[j] = mean[j] / fn;";
      "}";
      "for (i = 0; i < N; i++)";
      "  for (j = 0; j < M; j++)";
      "    data[i][j] -= mean[j];";
    ]

let kernels =
  List.sort
    (fun a b -> String.compare a.k_name b.k_name)
    [
      gemm; gemm_linear; syrk; syr2k; two_mm; three_mm; mvt; atax; bicg;
      gesummv; gemver; doitgen; doitgen_linear; jacobi_1d; jacobi_2d;
      jacobi_2d_linear; seidel_2d; fdtd_2d; heat_3d; adi; covariance;
    ]

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write_dir dir =
  mkdir_p dir;
  List.iter
    (fun k ->
      let path = Filename.concat dir (k.k_name ^ ".c") in
      let oc = open_out_bin path in
      output_string oc k.k_source;
      close_out oc)
    kernels
