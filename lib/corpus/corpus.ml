module Ast = Dlz_ir.Ast
module Expr = Dlz_ir.Expr
module Access = Dlz_ir.Access
module Affine = Dlz_ir.Affine
module Poly = Dlz_symbolic.Poly
module Prng = Dlz_base.Prng

type spec = {
  name : string;
  domain : string;
  target_lines : int;
  reported : string;
  planted : int;
}

let riceps =
  [
    { name = "BOAST"; domain = "Reservoir Simulation"; target_lines = 7000;
      reported = ">28"; planted = 30 };
    { name = "CCM"; domain = "Atmospheric"; target_lines = 24000;
      reported = ">24"; planted = 26 };
    { name = "LINPACKD"; domain = "Linear Algebra"; target_lines = 400;
      reported = "0"; planted = 0 };
    { name = "QCD"; domain = "Quantum Chromodynamics"; target_lines = 2000;
      reported = "2"; planted = 2 };
    { name = "SIMPLE"; domain = "Fluid Flow"; target_lines = 1000;
      reported = "0"; planted = 0 };
    { name = "SPHOT"; domain = "Particle Transport"; target_lines = 1000;
      reported = "2"; planted = 2 };
    { name = "TRACK"; domain = "Trajectory Plot"; target_lines = 4000;
      reported = "5"; planted = 5 };
    { name = "WANAL1"; domain = "Wave Equation"; target_lines = 2000;
      reported = "4"; planted = 4 };
  ]

(* --- program generation ------------------------------------------------ *)

let v = Expr.var
let c = Expr.const

(* A plain (never linearized) computational nest. *)
let plain_nest g idx =
  let a = Printf.sprintf "P%dA" idx
  and b = Printf.sprintf "P%dB" idx
  and w = Printf.sprintf "P%dW" idx in
  let n1 = Prng.int_in g 8 40 and n2 = Prng.int_in g 8 40 in
  let decls =
    [
      Ast.Array { a_name = a; a_kind = Ast.Real;
                  a_dims = [ { lo = c 0; hi = c (n1 - 1) };
                             { lo = c 0; hi = c (n2 - 1) } ] };
      Ast.Array { a_name = b; a_kind = Ast.Real;
                  a_dims = [ { lo = c 0; hi = c (n1 - 1) };
                             { lo = c 0; hi = c (n2 - 1) } ] };
      Ast.Array { a_name = w; a_kind = Ast.Real;
                  a_dims = [ { lo = c 0; hi = c (n1 - 1) } ] };
    ]
  in
  let h1 = c (n1 - 1) and h2 = c (n2 - 1) in
  let open Expr in
  let body =
    [
      Ast.do_ "I" (c 0) h1
        [
          Ast.do_ "J" (c 0) h2
            [
              Ast.assign (Ast.ref_ a [ v "I"; v "J" ])
                (Call (b, [ v "I"; v "J" ]) + Call (w, [ v "I" ]));
              Ast.assign (Ast.ref_ b [ v "I"; v "J" ])
                (Call (a, [ v "I"; v "J" ]) * c 2);
            ];
          Ast.assign (Ast.ref_ w [ v "I" ]) (Call (w, [ v "I" ]) + c 1);
        ];
    ]
  in
  (decls, body)

(* Idiom 1: hand-linearized subscript with constant stride. *)
let explicit_linear_nest g idx =
  let w = Printf.sprintf "L%dW" idx in
  let n1 = Prng.int_in g 4 9 and n2 = Prng.int_in g 5 12 in
  let stride = n1 + 1 + Prng.int_in g 0 3 in
  let shift = Prng.int_in g 1 n1 in
  let total = (stride * (n2 + 1)) + n1 + shift in
  let decls =
    [ Ast.Array { a_name = w; a_kind = Ast.Real;
                  a_dims = [ { lo = c 0; hi = c total } ] } ]
  in
  let open Expr in
  let sub = v "I" + (c stride * v "J") in
  let body =
    [
      Ast.do_ "I" (c 0) (c n1)
        [
          Ast.do_ "J" (c 0) (c n2)
            [ Ast.assign (Ast.ref_ w [ sub ]) (Call (w, [ sub + c shift ]) + c 1) ];
        ];
    ]
  in
  (decls, body)

(* Idiom 2: run-time dimensioning — symbolic stride scalars. *)
let runtime_dim_nest g idx =
  let w = Printf.sprintf "R%dW" idx in
  let nd = Printf.sprintf "ND%d" idx in
  let n1 = Prng.int_in g 4 16 in
  let decls =
    [
      Ast.Array { a_name = w; a_kind = Ast.Real;
                  a_dims = [ { lo = c 0; hi = c 9999 } ] };
      Ast.Scalar (Ast.Integer, nd);
    ]
  in
  let open Expr in
  let sub = v "I" + (v nd * v "J") in
  let body =
    [
      Ast.do_ "I" (c 0) (v nd - c 1)
        [
          Ast.do_ "J" (c 0) (c n1)
            [ Ast.assign (Ast.ref_ w [ sub ]) (Call (w, [ sub ]) * c 3) ];
        ];
    ]
  in
  (decls, body)

(* Idiom 3: a multi-loop induction variable (linearized only after the
   induction pass substitutes the closed form). *)
let induction_nest g idx =
  let w = Printf.sprintf "V%dW" idx in
  let ib = Printf.sprintf "IV%d" idx in
  let n1 = Prng.int_in g 3 9 and n2 = Prng.int_in g 3 9 in
  let total = (n1 + 1) * (n2 + 1) in
  let decls =
    [
      Ast.Array { a_name = w; a_kind = Ast.Real;
                  a_dims = [ { lo = c 0; hi = c (total - 1) } ] };
      Ast.Scalar (Ast.Integer, ib);
    ]
  in
  let open Expr in
  let body =
    [
      Ast.assign (Ast.scalar_ref ib) (c (-1));
      Ast.do_ "I" (c 0) (c n1)
        [
          Ast.do_ "J" (c 0) (c n2)
            [
              Ast.assign (Ast.scalar_ref ib) (v ib + c 1);
              Ast.assign (Ast.ref_ w [ v ib ]) (Call (w, [ v ib ]) + c 7);
            ];
        ];
    ]
  in
  (decls, body)

(* Idiom 4: EQUIVALENCE aliasing of different shapes; linearized by the
   aliasing pass. *)
let equivalence_nest g idx =
  let a = Printf.sprintf "E%dA" idx and b = Printf.sprintf "E%dB" idx in
  let n = 2 * Prng.int_in g 2 5 in
  (* A is n x n, B is (n/2) x 2n: same total, different shape. *)
  let decls =
    [
      Ast.Array { a_name = a; a_kind = Ast.Real;
                  a_dims = [ { lo = c 0; hi = c (n - 1) };
                             { lo = c 0; hi = c (n - 1) } ] };
      Ast.Array { a_name = b; a_kind = Ast.Real;
                  a_dims = [ { lo = c 0; hi = c ((n / 2) - 1) };
                             { lo = c 0; hi = c ((2 * n) - 1) } ] };
      Ast.Equivalence [ [ (a, []); (b, []) ] ];
    ]
  in
  let h1 = c ((n / 2) - 1) and h2 = c (n - 1) in
  let open Expr in
  let body =
    [
      Ast.do_ "I" (c 0) h1
        [
          Ast.do_ "J" (c 0) h2
            [
              Ast.assign (Ast.ref_ a [ v "I"; v "J" ])
                (Call (b, [ v "I"; (c 2 * v "J") + c 1 ]));
            ];
        ];
    ]
  in
  (decls, body)

let generate spec =
  let g = Prng.create (Int64.of_int (Hashtbl.hash spec.name)) in
  let decls = ref [] and body = ref [] in
  let nest_idx = ref 0 in
  let lines = ref 2 (* PROGRAM + END *) in
  let add (ds, bs) =
    decls := List.rev_append ds !decls;
    body := List.rev_append bs !body;
    (* Count the chunk's rendered lines once, incrementally. *)
    let chunk = { Ast.p_name = spec.name; decls = ds; body = bs } in
    lines := !lines + Ast.count_lines chunk - 2
  in
  (* Plant the linearized nests, cycling over the four idioms. *)
  for k = 0 to spec.planted - 1 do
    incr nest_idx;
    let mk =
      match k mod 4 with
      | 0 -> explicit_linear_nest
      | 1 -> runtime_dim_nest
      | 2 -> induction_nest
      | _ -> equivalence_nest
    in
    add (mk g !nest_idx)
  done;
  (* Pad with plain nests up to the target size. *)
  while !lines < spec.target_lines do
    incr nest_idx;
    add (plain_nest g !nest_idx)
  done;
  { Ast.p_name = spec.name; decls = List.rev !decls; body = List.rev !body }

(* --- detection ---------------------------------------------------------- *)

(* Distinct "magnitude keys" among the loop-variable coefficients of an
   affine subscript: a nonneg-normalized polynomial per coefficient. *)
let coeff_keys f =
  List.map
    (fun (_, p) -> if Poly.leading_sign p < 0 then Poly.neg p else p)
    (Affine.terms f)
  |> List.sort_uniq Poly.compare

let is_linearized_access (a : Access.t) =
  List.exists
    (function
      | Access.Aff f ->
          List.length (Affine.loop_vars f) >= 2
          && List.length (coeff_keys f) >= 2
      | Access.Opaque -> false)
    a.Access.subs

let count_linearized_nests prog =
  let prog = Dlz_passes.Pipeline.prepare_program prog in
  (* One extraction per outermost loop nest, so nests are counted by
     position rather than by accidental structural equality. *)
  List.fold_left
    (fun acc stmt ->
      match stmt with
      | Ast.Do _ ->
          let sub = { prog with Ast.body = [ stmt ] } in
          let accs, _ = Access.of_program sub in
          if List.exists is_linearized_access accs then acc + 1 else acc
      | _ -> acc)
    0 prog.Ast.body

type row = { r_spec : spec; r_lines : int; r_counted : int }

type ablation_row = {
  a_name : string;
  a_nests : int;
  a_parallel_delin : int;
  a_parallel_classic : int;
}

let linearized_nests prog =
  let prog = Dlz_passes.Pipeline.prepare_program prog in
  List.filter_map
    (fun stmt ->
      match stmt with
      | Ast.Do _ ->
          let sub = { prog with Ast.body = [ stmt ] } in
          let accs, _ = Access.of_program sub in
          if List.exists is_linearized_access accs then Some sub else None
      | _ -> None)
    prog.Ast.body

let parallel_ablation () =
  List.filter_map
    (fun spec ->
      if spec.planted = 0 then None
      else begin
        let nests = linearized_nests (generate spec) in
        let count mode =
          List.length
            (List.filter
               (fun nest ->
                 Dlz_vec.Parallel.fully_parallel
                   (Dlz_vec.Parallel.report ~mode nest))
               nests)
        in
        Some
          {
            a_name = spec.name;
            a_nests = List.length nests;
            a_parallel_delin = count Dlz_engine.Analyze.Delinearize;
            a_parallel_classic = count Dlz_engine.Analyze.Classic;
          }
      end)
    riceps

let figure1 () =
  List.map
    (fun spec ->
      let prog = generate spec in
      {
        r_spec = spec;
        r_lines = Ast.count_lines prog;
        r_counted = count_linearized_nests prog;
      })
    riceps
