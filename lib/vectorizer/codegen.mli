(** Allen–Kennedy loop distribution and vectorization [AK87].

    [codegen(R, k)]: compute the SCCs of the dependence graph restricted
    to region [R] and to edges not carried by loops outer than [k]; emit
    them in topological order; a cyclic component becomes a sequential
    [DO] at level [k] around the code generated for level [k+1]; an
    acyclic statement is emitted in FORTRAN-90-style array syntax with
    all its remaining loops vectorized.  This is the substrate standing
    in for the paper's host vectorizer VIC: better direction vectors
    from delinearization directly translate into more vectorized
    dimensions. *)

type plan = {
  stmt_id : int;
  stmt_name : string;
  seq_levels : int list;  (** Loop levels emitted sequentially. *)
  vec_levels : int list;  (** Loop levels vectorized. *)
  interchangeable : int list;
      (** Sequential levels whose component carries no dependence at
          exactly that level — the cycle comes from deeper levels only,
          so interchanging this loop inward (an extension the basic
          Allen–Kennedy codegen does not perform) could expose more
          vector dimensions. *)
}

type result = {
  text : string;  (** The transformed program, pseudo-FORTRAN-90. *)
  plans : plan list;
  graph : Depgraph.t;
}

val run :
  ?mode:Dlz_engine.Analyze.mode ->
  ?cascade:Dlz_engine.Cascade.t ->
  ?env:Dlz_symbolic.Assume.t ->
  Dlz_ir.Ast.program ->
  result
(** Vectorizes a normalized program (run {!Dlz_passes} first).  [mode]
    selects the dependence tester (delinearization vs the classic
    baseline) — the E7/ablation comparisons flip it. *)
