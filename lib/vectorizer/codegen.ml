module Ast = Dlz_ir.Ast
module Expr = Dlz_ir.Expr
module Affine = Dlz_ir.Affine
module Poly = Dlz_symbolic.Poly

type plan = {
  stmt_id : int;
  stmt_name : string;
  seq_levels : int list;
  vec_levels : int list;
  interchangeable : int list;
}

type result = { text : string; plans : plan list; graph : Depgraph.t }

type stmt_info = {
  si_id : int;
  si_stmt : Ast.stmt;
  si_loops : (string * Expr.t) list; (* (var, hi), outermost first *)
}

let collect_stmts (p : Ast.program) =
  let infos = ref [] in
  let id = ref 0 in
  Ast.iter_assigns p ~f:(fun ~loops s ->
      let loop_info = List.map (fun (v, _, hi, _) -> (v, hi)) loops in
      infos := { si_id = !id; si_stmt = s; si_loops = loop_info } :: !infos;
      incr id);
  List.rev !infos

(* Render a subscript with the loop variables of levels >= k vectorized
   into array sections. *)
let section_of_sub ~vec_vars e =
  let is_vec v = List.mem_assoc v vec_vars in
  match Affine.of_expr ~is_loop_var:is_vec e with
  | None ->
      (* Fall back to plain text with a marker substitution. *)
      let e' =
        List.fold_left
          (fun e (v, hi) ->
            Expr.subst v
              (Expr.Var (Printf.sprintf "(0:%s)" (Expr.to_string hi)))
              e)
          e vec_vars
      in
      Expr.to_string e'
  | Some f -> (
      match Affine.terms f with
      | [] -> Expr.to_string (Expr.fold_consts e)
      | [ (v, c) ] -> (
          let hi = List.assoc v vec_vars in
          let base = Expr.of_poly (Affine.konst f) in
          match Poly.to_const c with
          | Some 1 ->
              let lo = Expr.to_string (Expr.fold_consts base) in
              let hi_e =
                Expr.to_string (Expr.fold_consts (Expr.Bin (Expr.Add, base, hi)))
              in
              Printf.sprintf "%s:%s" lo hi_e
          | Some ck ->
              let lo = Expr.to_string (Expr.fold_consts base) in
              let hi_e =
                Expr.to_string
                  (Expr.fold_consts
                     (Expr.Bin
                        ( Expr.Add,
                          base,
                          Expr.Bin (Expr.Mul, Expr.Const ck, hi) )))
              in
              Printf.sprintf "%s:%s:%d" lo hi_e ck
          | None ->
              let coeff = Expr.to_string (Expr.of_poly c) in
              Printf.sprintf "%s:%s+%s*(%s)"
                (Expr.to_string (Expr.fold_consts base))
                (Expr.to_string (Expr.fold_consts base))
                coeff
                (Expr.to_string (List.assoc v vec_vars)))
      | _ ->
          let e' =
            List.fold_left
              (fun e (v, hi) ->
                Expr.subst v
                  (Expr.Var (Printf.sprintf "(0:%s)" (Expr.to_string hi)))
                  e)
              e vec_vars
          in
          Expr.to_string e')

let render_vector_stmt buf indent info ~from_level =
  let vec_vars =
    List.filteri (fun i _ -> i + 1 >= from_level) info.si_loops
  in
  match info.si_stmt with
  | Ast.Assign { lhs; rhs; _ } ->
      let render_ref (r : Ast.aref) =
        if r.subs = [] then r.name
        else
          r.name ^ "("
          ^ String.concat "," (List.map (section_of_sub ~vec_vars) r.subs)
          ^ ")"
      in
      let rec render_expr e =
        match e with
        | Expr.Const c -> string_of_int c
        | Expr.Var v -> (
            match List.assoc_opt v vec_vars with
            | Some hi -> Printf.sprintf "(0:%s)" (Expr.to_string hi)
            | None -> v)
        | Expr.Neg a -> "-" ^ render_expr a
        | Expr.Bin (op, a, b) ->
            let sym =
              match op with
              | Expr.Add -> "+"
              | Expr.Sub -> "-"
              | Expr.Mul -> "*"
              | Expr.Div -> "/"
            in
            "(" ^ render_expr a ^ sym ^ render_expr b ^ ")"
        | Expr.Call (f, args) ->
            render_ref { Ast.name = f; subs = args }
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s = %s\n"
           (String.make indent ' ')
           (render_ref lhs) (render_expr rhs))
  | s ->
      Buffer.add_string buf
        (Format.asprintf "%s%a\n" (String.make indent ' ') Ast.pp_stmt s)

let run ?mode ?cascade ?env (p : Ast.program) =
  let graph = Depgraph.build ?mode ?cascade ?env p in
  let infos = collect_stmts p in
  let info_of = Array.of_list infos in
  let buf = Buffer.create 256 in
  let plans = ref [] in
  let rec codegen region k indent =
    let region_set = region in
    let edges =
      Depgraph.edges_at_level graph k
      |> List.filter (fun (e : Depgraph.edge) ->
             List.mem e.e_src region_set && List.mem e.e_dst region_set)
    in
    let pairs = List.map (fun (e : Depgraph.edge) -> (e.e_src, e.e_dst)) edges in
    let comps =
      Scc.compute ~n:graph.Depgraph.nstmts ~edges:pairs
      |> List.map (List.filter (fun v -> List.mem v region_set))
      |> List.filter (fun c -> c <> [])
    in
    List.iter
      (fun comp ->
        let cyclic = Scc.is_cyclic ~edges:pairs comp in
        let depth_ok =
          List.for_all
            (fun s -> List.length info_of.(s).si_loops >= k)
            comp
        in
        if cyclic && depth_ok then begin
          (* Sequential loop at level k around the component. *)
          let var, hi =
            match info_of.(List.hd comp).si_loops with
            | loops when List.length loops >= k -> List.nth loops (k - 1)
            | _ -> assert false
          in
          Buffer.add_string buf
            (Printf.sprintf "%sDO %s = 0, %s\n"
               (String.make indent ' ')
               var (Expr.to_string hi));
          (* Interchange hint: is the cycle actually carried here? *)
          let carried_here =
            List.exists
              (fun (e : Depgraph.edge) ->
                e.Depgraph.e_level = k
                && List.mem e.Depgraph.e_src comp
                && List.mem e.Depgraph.e_dst comp)
              edges
          in
          List.iter
            (fun s ->
              plans :=
                (s, if carried_here then `Seq k else `SeqFree k)
                :: !plans)
            comp;
          codegen comp (k + 1) (indent + 2);
          Buffer.add_string buf
            (Printf.sprintf "%sENDDO\n" (String.make indent ' '))
        end
        else
          List.iter
            (fun s ->
              let info = info_of.(s) in
              let depth = List.length info.si_loops in
              List.iteri
                (fun i _ ->
                  if i + 1 >= k then plans := (s, `Vec (i + 1)) :: !plans)
                info.si_loops;
              ignore depth;
              render_vector_stmt buf indent info ~from_level:k)
            comp)
      comps
  in
  let all = List.map (fun i -> i.si_id) infos in
  codegen all 1 0;
  let plan_of_stmt s =
    let entries = List.filter (fun (s', _) -> s' = s) !plans in
    {
      stmt_id = s;
      stmt_name = graph.Depgraph.stmt_names.(s);
      seq_levels =
        List.sort_uniq Int.compare
          (List.filter_map
             (function _, (`Seq k | `SeqFree k) -> Some k | _ -> None)
             entries);
      vec_levels =
        List.sort_uniq Int.compare
          (List.filter_map
             (function _, `Vec k -> Some k | _ -> None)
             entries);
      interchangeable =
        List.sort_uniq Int.compare
          (List.filter_map
             (function _, `SeqFree k -> Some k | _ -> None)
             entries);
    }
  in
  { text = Buffer.contents buf; plans = List.map plan_of_stmt all; graph }
