(** Per-loop parallelism report.

    The paper's opening question: "To decide whether loop iterations can
    be run in parallel or not the translator should know whether data
    are transferred between iterations or not."  A loop is parallel when
    no dependence between statements of its body is carried at its
    level.  This is the flat (DOALL) view the examples print; the
    Allen–Kennedy codegen is the transforming view. *)

type loop_report = {
  lr_var : string;  (** Loop variable. *)
  lr_level : int;  (** 1-based nesting depth. *)
  lr_path : string list;  (** Enclosing loop variables, outermost first. *)
  lr_parallel : bool;
  lr_carried : int;  (** Dependences carried at this level. *)
}

val report :
  ?mode:Dlz_engine.Analyze.mode ->
  ?cascade:Dlz_engine.Cascade.t ->
  ?budget:Dlz_base.Budget.t ->
  ?jobs:int ->
  ?pool:Dlz_base.Pool.t ->
  ?chunk:int ->
  ?env:Dlz_symbolic.Assume.t ->
  Dlz_ir.Ast.program ->
  loop_report list
(** One entry per loop of the (normalized) program, in source order.
    [jobs]/[pool]/[chunk] parallelize the underlying
    {!Depgraph.build}. *)

val fully_parallel : loop_report list -> bool
(** Every loop parallel (the verdict the corpus ablation counts). *)
