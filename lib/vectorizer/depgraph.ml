module Dirvec = Dlz_deptest.Dirvec
module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Verdict = Dlz_deptest.Verdict
module Classify = Dlz_deptest.Classify
module Analyze = Dlz_engine.Analyze
module Engine = Dlz_engine.Engine

type edge = {
  e_src : int;
  e_dst : int;
  e_vec : Dirvec.t;
  e_level : int;
  e_kind : Classify.kind;
}

type t = { nstmts : int; stmt_names : string array; edges : edge list }

(* First level whose component is not '=': the carrying level. *)
let classify_vec v =
  let n = Array.length v in
  let rec go i =
    if i >= n then `LoopIndependent
    else
      match v.(i) with
      | Dirvec.Eq -> go (i + 1)
      | Dirvec.Lt -> `Forward (i + 1)
      | Dirvec.Gt -> `Backward (i + 1)
      | _ -> `Forward (i + 1) (* non-basic: conservatively forward *)
  in
  go 0

(* Edges contributed by one candidate pair — the unit of work the pool
   fans out. *)
let edges_of_pair ?mode ?cascade ?budget ~env (pr : Engine.pair) =
  let a = pr.Engine.src and b = pr.Engine.dst in
  let r = Analyze.vectors ?mode ?cascade ?budget ~env pr.Engine.problem in
  if r.Analyze.verdict = Verdict.Independent then []
  else
    let basics =
      List.concat_map Analyze.decomposition r.Analyze.dirvecs
      |> List.sort_uniq Dirvec.compare
      |> List.filter (fun v ->
             (* The identity instance of a single reference is
                not a dependence. *)
             not (pr.Engine.self && Array.for_all (( = ) Dirvec.Eq) v))
    in
    List.concat_map
      (fun v ->
        let add src dst vec level =
          let kind = Classify.kind ~src:src.Access.rw ~dst:dst.Access.rw in
          [
            {
              e_src = src.Access.stmt_id;
              e_dst = dst.Access.stmt_id;
              e_vec = vec;
              e_level = level;
              e_kind = kind;
            };
          ]
        in
        match classify_vec v with
        | `Forward lvl -> add a b v lvl
        | `Backward lvl -> add b a (Dirvec.reverse v) lvl
        | `LoopIndependent ->
            (* Same statement: the read executes before the
               write; within-statement flow does not constrain
               loop rearrangement.  Across statements, orient
               by textual order. *)
            if a.Access.stmt_id < b.Access.stmt_id then add a b v max_int
            else if b.Access.stmt_id < a.Access.stmt_id then
              add b a v max_int
            else [])
      basics

let build ?mode ?cascade ?budget ?(jobs = 1) ?pool ?chunk ?(env = Assume.empty)
    prog =
  Dlz_base.Trace.with_span ~cat:"driver" "depgraph.build" @@ fun () ->
  let accs, env = Access.of_program ~env prog in
  let nstmts =
    List.fold_left (fun m a -> max m (a.Access.stmt_id + 1)) 0 accs
  in
  let stmt_names = Array.make nstmts "" in
  List.iter (fun a -> stmt_names.(a.Access.stmt_id) <- a.Access.stmt_name) accs;
  let edges =
    Dlz_base.Pool.with_jobs ?pool ~jobs (fun pool ->
        List.concat
          (Engine.map_pairs ?pool ?chunk
             (edges_of_pair ?mode ?cascade ?budget ~env)
             accs))
  in
  (* Deduplicate identical edges (also fixes the final order, so the
     graph is byte-identical for any job count). *)
  let edges = List.sort_uniq Stdlib.compare edges in
  { nstmts; stmt_names; edges }

let edges_at_level g level =
  List.filter (fun e -> e.e_level >= level) g.edges

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%s -> %s %s level %s [%s]@,"
        g.stmt_names.(e.e_src) g.stmt_names.(e.e_dst)
        (Dirvec.to_string e.e_vec)
        (if e.e_level = max_int then "inf" else string_of_int e.e_level)
        (Classify.to_string e.e_kind))
    g.edges;
  Format.fprintf ppf "@]"
