(** Statement-level dependence graph.

    Nodes are assignment statements; each edge carries the direction
    vector of one dependence, oriented from the instance that executes
    first to the one that executes later (lexicographically negative
    vectors are flipped; all-[=] vectors are oriented by textual order,
    reads before the write inside one statement).  This is the graph the
    Allen–Kennedy vectorizer consumes.

    Pair enumeration and dependence queries go through the shared
    {!Dlz_engine.Engine} path — the same pairs, orientation and memoized
    cascade answers the whole-program analyzer uses. *)

module Dirvec = Dlz_deptest.Dirvec
module Assume = Dlz_symbolic.Assume

type edge = {
  e_src : int;  (** Statement id of the earlier instance. *)
  e_dst : int;
  e_vec : Dirvec.t;  (** Over the common loops of the two statements. *)
  e_level : int;
      (** Carrying level: 1-based position of the first component that
          can be [<]; [max_int] for loop-independent edges. *)
  e_kind : Dlz_deptest.Classify.kind;
}

type t = {
  nstmts : int;
  stmt_names : string array;
  edges : edge list;
}

val build :
  ?mode:Dlz_engine.Analyze.mode ->
  ?cascade:Dlz_engine.Cascade.t ->
  ?budget:Dlz_base.Budget.t ->
  ?jobs:int ->
  ?pool:Dlz_base.Pool.t ->
  ?chunk:int ->
  ?env:Assume.t ->
  Dlz_ir.Ast.program ->
  t
(** Analyzes a normalized program.  Input (read-read) dependences are
    ignored; a same-statement all-[=] vector (the read feeding the write
    of one assignment) carries no constraint and is dropped.

    [jobs]/[pool]/[chunk] parallelize the pair queries exactly as in
    {!Dlz_engine.Analyze.deps_of_accesses}; the edge list is sorted, so
    the graph is identical for any job count or chunk size. *)

val edges_at_level : t -> int -> edge list
(** Edges not carried by loops outer than [level]: carrying level
    [>= level]. *)

val pp : Format.formatter -> t -> unit
