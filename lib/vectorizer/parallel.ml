module Ast = Dlz_ir.Ast

type loop_report = {
  lr_var : string;
  lr_level : int;
  lr_path : string list;
  lr_parallel : bool;
  lr_carried : int;
}

(* Statement ids (program order of assignments) inside each loop. *)
let loops_with_stmts (p : Ast.program) =
  let counter = ref 0 in
  let loops = ref [] in
  let rec go path level = function
    | Ast.Assign _ ->
        let id = !counter in
        incr counter;
        [ id ]
    | Ast.Continue _ -> []
    | Ast.Do d ->
        let inner =
          List.concat_map (go (path @ [ d.var ]) (level + 1)) d.body
        in
        loops := (d.var, level + 1, path, inner) :: !loops;
        inner
  in
  List.iter (fun s -> ignore (go [] 0 s)) p.body;
  List.rev !loops

let report ?mode ?cascade ?budget ?jobs ?pool ?chunk ?env p =
  let graph = Depgraph.build ?mode ?cascade ?budget ?jobs ?pool ?chunk ?env p in
  List.map
    (fun (var, level, path, stmts) ->
      let carried =
        List.length
          (List.filter
             (fun (e : Depgraph.edge) ->
               e.Depgraph.e_level = level
               && List.mem e.Depgraph.e_src stmts
               && List.mem e.Depgraph.e_dst stmts)
             graph.Depgraph.edges)
      in
      {
        lr_var = var;
        lr_level = level;
        lr_path = path;
        lr_parallel = carried = 0;
        lr_carried = carried;
      })
    (loops_with_stmts p)

let fully_parallel reports = List.for_all (fun r -> r.lr_parallel) reports
