(** Fourier–Motzkin elimination [DE73, MHL91], real and integer-tightened.

    The dependence equation plus its box constraints form a system of
    linear inequalities; eliminating every variable decides rational
    feasibility exactly.  In [`Tightened] mode every derived inequality
    is normalized as Pugh suggests [Pug91]: divide by the gcd [g] of the
    variable coefficients and replace the bound [b] by [floor(b/g)] —
    sound for integer solutions and strong enough to disprove the
    paper's equation (1), which real FM cannot.

    Elimination can square the constraint count at every step, so the
    entry points accept an optional {!Dlz_base.Budget.t}; one unit is
    spent per derived constraint. *)

type mode = Real | Tightened

type ineq = { cs : int array; bound : int }
(** [Σ cs.(i) * x_i <= bound]. *)

val feasible : ?budget:Dlz_base.Budget.t -> mode -> nvars:int -> ineq list -> bool
(** Eliminates all variables; [false] means no rational (resp. integer)
    solution exists.  In [Real] mode [true] is exact (a rational solution
    exists); in [Tightened] mode [true] is conservative.  Raises
    {!Dlz_base.Budget.Exhausted} when the budget runs out mid-elimination. *)

val system_of_equation : Depeq.t -> int * ineq list
(** The equation (as two inequalities) plus the box bounds, with
    variables numbered in term order. *)

val test : ?budget:Dlz_base.Budget.t -> mode -> Depeq.t -> Verdict.t
(** Budget exhaustion degrades to the conservative [Dependent]. *)

val eliminations : ?budget:Dlz_base.Budget.t -> mode -> nvars:int -> ineq list -> int
(** Number of constraints generated over the whole elimination — the
    cost measure used by the E8 efficiency benches. *)
