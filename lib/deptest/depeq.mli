(** Numeric dependence equations.

    The constrained equation (5) of the paper:
    [c0 + c1*z1 + ... + cn*zn = 0] with [zk ∈ [0, Zk]].  Each variable
    remembers which reference instance it came from ([`Src] or [`Dst])
    and its loop level, so that direction-vector reasoning can pair the
    two instances of a common loop. *)

type var = {
  v_name : string;  (** Display name, e.g. ["i1"]. *)
  v_ub : int;  (** The variable ranges over [[0, v_ub]]. *)
  v_side : [ `Src | `Dst ];
  v_level : int;  (** 1-based loop depth in its own nest. *)
}

type term = { coeff : int; var : var }
type t = { c0 : int; terms : term list }

val var : ?side:[ `Src | `Dst ] -> ?level:int -> string -> int -> var
(** [var name ub] builds a variable; [side] defaults to [`Src], [level]
    to [0] (unpaired). *)

val same_var : var -> var -> bool
(** Identity: same side and level (names are display only). *)

val make : int -> (int * var) list -> t
(** [make c0 terms] normalizes: merges duplicate variables, drops zero
    coefficients.  Raises [Invalid_argument] on a negative upper bound
    (an empty iteration space must be handled by the caller). *)

val nvars : t -> int
val coeffs : t -> int list

val lhs_interval : t -> Dlz_base.Ivl.t
(** Range of [c0 + Σ ck*zk] over the box. *)

val has_side : t -> level:int -> [ `Src | `Dst ] -> bool
(** Whether a term with that level and side occurs.  Allocation-free
    (so are the two finders below — the hot tests use them instead of
    the consing {!common_pairs} view). *)

val find_coeff : t -> level:int -> [ `Src | `Dst ] -> int
(** Coefficient of the (level, side) term; [0] when absent. *)

val find_ub : t -> level:int -> [ `Src | `Dst ] -> int
(** Bound of the (level, side) term's variable; [0] when absent. *)

val eval : t -> (var * int) list -> int
(** Value of the left-hand side under an assignment (variables matched
    with {!same_var}; missing variables default to 0). *)

val holds : t -> (var * int) list -> bool

val assignments : t -> (var * int) list Seq.t
(** All points of the box, for brute-force ground truth in tests.  The
    box size must be modest. *)

val common_pairs : t -> (int * (int * var) option * (int * var) option) list
(** For each loop level that occurs on either side, the level together
    with the [`Src] and [`Dst] terms at that level (coefficient 0 terms
    are absent). *)

val pp_var : Format.formatter -> var -> unit
val pp : Format.formatter -> t -> unit
(** E.g. [i1 + 10*j1 - i2 - 10*j2 - 5 = 0 ; i1,i2 in [0,4], j1,j2 in [0,9]]. *)

val to_string : t -> string
