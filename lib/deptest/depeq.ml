open Dlz_base

type var = {
  v_name : string;
  v_ub : int;
  v_side : [ `Src | `Dst ];
  v_level : int;
}

type term = { coeff : int; var : var }
type t = { c0 : int; terms : term list }

let var ?(side = `Src) ?(level = 0) name ub =
  { v_name = name; v_ub = ub; v_side = side; v_level = level }

let same_var a b =
  a.v_side = b.v_side && a.v_level = b.v_level
  && (a.v_level <> 0 || String.equal a.v_name b.v_name)

let make c0 terms =
  List.iter
    (fun (_, v) ->
      if v.v_ub < 0 then
        invalid_arg ("Depeq.make: negative bound for " ^ v.v_name))
    terms;
  let merged =
    List.fold_left
      (fun acc (c, v) ->
        let rec go = function
          | [] -> [ { coeff = c; var = v } ]
          | t :: rest when same_var t.var v ->
              { t with coeff = Intx.add t.coeff c } :: rest
          | t :: rest -> t :: go rest
        in
        go acc)
      [] terms
  in
  { c0; terms = List.filter (fun t -> t.coeff <> 0) merged }

let nvars eq = List.length eq.terms
let coeffs eq = List.map (fun t -> t.coeff) eq.terms

(* Allocation-free per-(level, side) lookups: [make] merged duplicate
   variables, so at most one term matches.  The option-returning
   [common_pairs] below stays for callers that want the paired view;
   these are for the hot tests, which must not cons per equation. *)

let has_side eq ~level side =
  let rec go = function
    | [] -> false
    | t :: rest ->
        (t.var.v_level = level && t.var.v_side = side) || go rest
  in
  go eq.terms

let find_coeff eq ~level side =
  let rec go = function
    | [] -> 0
    | t :: rest ->
        if t.var.v_level = level && t.var.v_side = side then t.coeff
        else go rest
  in
  go eq.terms

let find_ub eq ~level side =
  let rec go = function
    | [] -> 0
    | t :: rest ->
        if t.var.v_level = level && t.var.v_side = side then t.var.v_ub
        else go rest
  in
  go eq.terms

let lhs_interval eq =
  (* [c0 + Σ coeff*[0, ub]] accumulated on two plain ints — same hull
     as folding [Ivl.scale]/[Ivl.add], without a [Range] per step. *)
  let rec go lo hi = function
    | [] -> Ivl.make lo hi
    | t :: rest ->
        if t.coeff >= 0 then
          go lo (Intx.add hi (Intx.mul t.coeff t.var.v_ub)) rest
        else go (Intx.add lo (Intx.mul t.coeff t.var.v_ub)) hi rest
  in
  go eq.c0 eq.c0 eq.terms

let lookup asg v =
  match List.find_opt (fun (w, _) -> same_var w v) asg with
  | Some (_, x) -> x
  | None -> 0

let eval eq asg =
  List.fold_left
    (fun acc t -> Intx.add acc (Intx.mul t.coeff (lookup asg t.var)))
    eq.c0 eq.terms

let holds eq asg = eval eq asg = 0

let assignments eq =
  let rec go = function
    | [] -> Seq.return []
    | t :: rest ->
        let tails = go rest in
        Seq.concat_map
          (fun tail ->
            Seq.map
              (fun x -> (t.var, x) :: tail)
              (Seq.init (t.var.v_ub + 1) Fun.id))
          tails
  in
  go eq.terms

let common_pairs eq =
  let levels =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun t -> if t.var.v_level > 0 then Some t.var.v_level else None)
         eq.terms)
  in
  List.map
    (fun lvl ->
      let find side =
        List.find_map
          (fun t ->
            if t.var.v_level = lvl && t.var.v_side = side then
              Some (t.coeff, t.var)
            else None)
          eq.terms
      in
      (lvl, find `Src, find `Dst))
    levels

let pp_var ppf v = Format.pp_print_string ppf v.v_name

let pp ppf eq =
  let pp_term first ppf t =
    let sign = if t.coeff < 0 then "- " else if first then "" else "+ " in
    let mag = Intx.abs t.coeff in
    if mag = 1 then Format.fprintf ppf "%s%s" sign t.var.v_name
    else Format.fprintf ppf "%s%d*%s" sign mag t.var.v_name
  in
  (match eq.terms with
  | [] -> Format.fprintf ppf "%d" eq.c0
  | t0 :: rest ->
      pp_term true ppf t0;
      List.iter (fun t -> Format.fprintf ppf " %a" (pp_term false) t) rest;
      if eq.c0 <> 0 then
        Format.fprintf ppf " %s %d"
          (if eq.c0 < 0 then "-" else "+")
          (Intx.abs eq.c0));
  Format.fprintf ppf " = 0";
  if eq.terms <> [] then begin
    Format.fprintf ppf " ; ";
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf t -> Format.fprintf ppf "%s in [0,%d]" t.var.v_name t.var.v_ub)
      ppf eq.terms
  end

let to_string eq = Format.asprintf "%a" pp eq
