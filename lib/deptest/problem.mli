(** Dependence problems: everything known about one pair of references.

    A problem packages the two accesses, their common loops, and one
    (symbolic) dependence equation per analyzable subscript position —
    the system (2) of the paper.  Numeric projections feed the classic
    tests and the exact solver. *)

module Poly = Dlz_symbolic.Poly
module Access = Dlz_ir.Access

type t = {
  src : Access.t;
  dst : Access.t;
  n_common : int;
  common_ubs : Poly.t list;  (** Bounds of the common loops, outermost first. *)
  equations : Symeq.t list;
  opaque_dims : int;
      (** Subscript positions skipped because either side was
          unanalyzable; each skipped dimension weakens precision but
          never soundness. *)
}

type numeric = {
  n_common : int;
  common_ubs : int array;
  eqs : Depeq.t list;
  opaque_dims : int;
}

val of_accesses : Access.t -> Access.t -> t option
(** [None] when the accesses name different arrays (no dependence
    possible through distinct storage — aliasing must have been resolved
    by the linearization pass beforehand). *)

val to_numeric : t -> numeric option
(** Defined when all coefficients and bounds are integer constants. *)

val instantiate : (string -> int) -> t -> numeric
val numeric_of_equations : n_common:int -> common_ubs:int array -> Depeq.t list -> numeric

val synthetic : numeric -> t
(** Lifts a numeric problem into a full [t] with placeholder accesses
    (constant-polynomial coefficients and bounds), so generated
    equations can be fed to any strategy.  Round-trips:
    [to_numeric (synthetic np)] re-yields [np] up to term order. *)

(** Flat canonical encoding of a problem into a reusable byte buffer.

    Packs the same canonical form the memo cache keys on — terms
    sorted, global sign fixed, coefficients divided by their gcd,
    equations sorted — computed directly from the symbolic problem
    with no intermediate {!numeric}/list/option structures.  A buffer
    is meant to be long-lived (one per domain): after warm-up,
    {!Keybuf.encode} allocates nothing, which is what makes a memo
    cache {e hit} allocation-free. *)
module Keybuf : sig
  type buf

  val create : unit -> buf

  val encode : buf -> t -> bool
  (** [encode kb p] replaces [kb]'s contents with [p]'s canonical
      encoding; [false] when [p] has no canonical numeric form (some
      coefficient or bound is symbolic, a bound is negative, or
      normalization overflows) — exactly the problems {!to_numeric}
      rejects, which the cache treats as uncacheable. *)

  val contents : buf -> Bytes.t
  (** The backing buffer; valid up to {!length} until the next
      {!encode}.  Do not mutate. *)

  val length : buf -> int
end

val pp : Format.formatter -> t -> unit
