(** An Omega-style exact integer solver [Pug91] (simplified).

    The paper singles out Pugh's Omega test as the integer-exact
    alternative to the fast conservative tests.  This implementation
    follows the published structure:

    + equalities are eliminated exactly by unimodular changes of
      variables (pairwise extended-gcd reduction, then substitution of
      the solved variable);
    + the remaining inequalities go through Fourier–Motzkin with the
      {e real} and {e dark} shadows: a contradictory real shadow proves
      integer infeasibility, a satisfiable dark shadow proves integer
      feasibility, eliminations with a unit coefficient are exact;
    + the residual gray zone is decided by {e splintering}: case
      analysis on [b·x = β + i] for the finitely many offsets [i] the
      shadows leave open.

    Splintering can blow up, so the solver carries a work budget and
    reports {!Unknown} when it is exhausted — the callers (E1 table,
    benches, tests) treat that as "dependent".  The budget is a
    {!Dlz_base.Budget.t} sub-budget: an engine-wide [budget] caps the
    per-call [fuel]. *)

type result = Sat | Unsat | Unknown

val solve : ?budget:Dlz_base.Budget.t -> ?fuel:int -> Depeq.t list -> result
(** Decides whether the conjunction of the dependence equations (with
    their box bounds) has an integer solution.  The solver runs under a
    sub-budget of [budget] (default unlimited) capped at [fuel]
    elimination steps (default [50_000]); exhaustion of either yields
    [Unknown], never an exception. *)

val test : ?budget:Dlz_base.Budget.t -> ?fuel:int -> Depeq.t list -> Verdict.t
(** [Independent] iff {!solve} returns [Unsat]. *)
