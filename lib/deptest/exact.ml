open Dlz_base

type outcome = Feasible of (Depeq.var * int) list | Infeasible | Unknown

(* Collect the distinct variables of a system; a variable shared between
   equations keeps the tightest of its declared ranges. *)
let variables eqs =
  List.fold_left
    (fun acc (eq : Depeq.t) ->
      List.fold_left
        (fun acc (t : Depeq.term) ->
          let rec insert = function
            | [] -> [ t.var ]
            | v :: rest when Depeq.same_var v t.var ->
                (if t.var.v_ub < v.v_ub then t.var else v) :: rest
            | v :: rest -> v :: insert rest
          in
          insert acc)
        acc eq.terms)
    [] eqs

(* Residual constant and unassigned-term list of an equation under a
   partial assignment. *)
let residual (eq : Depeq.t) asg =
  List.fold_left
    (fun (c, pending) (t : Depeq.term) ->
      match List.find_opt (fun (v, _) -> Depeq.same_var v t.var) asg with
      | Some (_, x) -> (Intx.add c (Intx.mul t.coeff x), pending)
      | None -> (c, t :: pending))
    (eq.c0, []) eq.terms

(* Interval of Σ pending terms. *)
let pending_interval pending =
  List.fold_left
    (fun acc (t : Depeq.term) ->
      Ivl.add acc (Ivl.scale t.coeff (Ivl.make 0 t.var.v_ub)))
    Ivl.zero pending

let prune eqs asg =
  (* Returns [Some pruned_domains] as (var, lo, hi) hints, or [None] if
     some equation is already unsatisfiable. *)
  let ok = ref true in
  let hints = Hashtbl.create 8 in
  List.iter
    (fun eq ->
      if !ok then begin
        let c, pending = residual eq asg in
        let iv = pending_interval pending in
        if not (Ivl.mem (-c) iv) then ok := false
        else begin
          (* gcd prune: Σ pending = -c needs gcd | c. *)
          let g =
            Numth.gcd_list (List.map (fun (t : Depeq.term) -> t.coeff) pending)
          in
          if not (Numth.divides g c) then ok := false
          else
            (* Per-variable domain narrowing within this equation. *)
            List.iter
              (fun (t : Depeq.term) ->
                let others =
                  pending_interval
                    (List.filter (fun u -> not (Depeq.same_var u.Depeq.var t.Depeq.var)) pending)
                in
                (* t.coeff * z ∈ [-c - hi(others), -c - lo(others)] *)
                let lo_rhs = Intx.sub (Intx.neg c) (Ivl.hi others) in
                let hi_rhs = Intx.sub (Intx.neg c) (Ivl.lo others) in
                let zlo, zhi =
                  if t.coeff > 0 then
                    (Numth.cdiv lo_rhs t.coeff, Numth.fdiv hi_rhs t.coeff)
                  else
                    (Numth.cdiv hi_rhs t.coeff, Numth.fdiv lo_rhs t.coeff)
                in
                let key = (t.var.v_side, t.var.v_level, t.var.v_name) in
                let prev =
                  Option.value
                    (Hashtbl.find_opt hints key)
                    ~default:(0, t.var.v_ub)
                in
                let merged = (max (fst prev) zlo, min (snd prev) zhi) in
                if fst merged > snd merged then ok := false
                else Hashtbl.replace hints key merged)
              pending
        end
      end)
    eqs;
  if !ok then Some hints else None

let var_key (v : Depeq.var) = (v.v_side, v.v_level, v.v_name)

let search ?budget ?(max_nodes = 1_000_000) ?(extra_ok = fun _ -> true)
    ~on_solution eqs =
  let vars = variables eqs in
  let parent = match budget with Some b -> b | None -> Budget.unlimited in
  let b = Budget.sub ~fuel:max_nodes parent in
  let rec go remaining asg =
    Budget.spend b;
    match prune eqs asg with
    | None -> ()
    | Some hints -> (
        match remaining with
        | [] -> if extra_ok asg then on_solution asg
        | _ ->
            (* Branch on the variable with the smallest pruned domain. *)
            let measure v =
              match Hashtbl.find_opt hints (var_key v) with
              | Some (lo, hi) -> hi - lo
              | None -> v.Depeq.v_ub
            in
            let v =
              List.fold_left
                (fun best v -> if measure v < measure best then v else best)
                (List.hd remaining) (List.tl remaining)
            in
            let rest = List.filter (fun w -> not (Depeq.same_var w v)) remaining in
            let lo, hi =
              Option.value (Hashtbl.find_opt hints (var_key v)) ~default:(0, v.v_ub)
            in
            let lo = max lo 0 and hi = min hi v.v_ub in
            for x = lo to hi do
              go rest ((v, x) :: asg)
            done)
  in
  go vars []

let solve ?budget ?max_nodes ?extra_ok eqs =
  let result = ref Infeasible in
  let exception Found of (Depeq.var * int) list in
  try
    search ?budget ?max_nodes ?extra_ok
      ~on_solution:(fun asg -> raise (Found asg))
      eqs;
    !result
  with
  | Found asg -> Feasible asg
  | Budget.Exhausted _ -> Unknown

let test ?budget ?max_nodes eqs =
  match solve ?budget ?max_nodes eqs with
  | Infeasible -> Verdict.Independent
  | Feasible _ | Unknown -> Verdict.Dependent

let count_solutions ?(limit = 1_000_000) eqs =
  let n = ref 0 in
  let exception Done in
  (try
     search
       ~on_solution:(fun _ ->
         incr n;
         if !n >= limit then raise Done)
       eqs
   with Done | Budget.Exhausted _ -> ());
  !n

let level_delta asg level =
  let find side =
    List.find_map
      (fun ((v : Depeq.var), x) ->
        if v.v_level = level && v.v_side = side then Some x else None)
      asg
  in
  match (find `Src, find `Dst) with
  | Some a, Some b -> Some (b - a)
  | _ -> None

let direction_vectors ?budget ~n_common eqs =
  (* On budget exhaustion the collected set is partial; returning it
     would under-approximate (an empty partial set reads as proven
     independence), so exhaustion propagates to the caller. *)
  let seen = Hashtbl.create 16 in
  search ?budget
    ~on_solution:(fun asg ->
      let dv =
        Array.init n_common (fun i ->
            match level_delta asg (i + 1) with
            | Some d -> Dirvec.of_delta d
            | None -> Dirvec.Star)
      in
      Hashtbl.replace seen dv ())
    eqs;
  List.sort Dirvec.compare (Hashtbl.fold (fun dv () acc -> dv :: acc) seen [])

let level_values ?budget ~level ~side eqs =
  let seen = Hashtbl.create 16 in
  match
    search ?budget
      ~on_solution:(fun asg ->
        List.iter
          (fun ((v : Depeq.var), x) ->
            if v.v_level = level && v.v_side = side then
              Hashtbl.replace seen x ())
          asg)
      eqs
  with
  | () ->
      Some (List.sort Int.compare (Hashtbl.fold (fun d () acc -> d :: acc) seen []))
  | exception Budget.Exhausted _ -> None

let distance_set ?budget ~level eqs =
  let seen = Hashtbl.create 16 in
  match
    search ?budget
      ~on_solution:(fun asg ->
        match level_delta asg level with
        | Some d -> Hashtbl.replace seen d ()
        | None -> ())
      eqs
  with
  | () -> Some (List.sort Int.compare (Hashtbl.fold (fun d () acc -> d :: acc) seen []))
  | exception Budget.Exhausted _ -> None
