open Dlz_base

type mode = Real | Tightened
type ineq = { cs : int array; bound : int }

let normalize mode (q : ineq) =
  let g = Numth.gcd_list (Array.to_list q.cs) in
  if g <= 1 then q
  else
    match mode with
    | Tightened -> { cs = Array.map (fun c -> c / g) q.cs; bound = Numth.fdiv q.bound g }
    | Real ->
        if Numth.divides g q.bound then
          { cs = Array.map (fun c -> c / g) q.cs; bound = q.bound / g }
        else q

let is_trivial q = Array.for_all (fun c -> c = 0) q.cs

(* Keep, for each coefficient vector, only the tightest bound. *)
let dedupe qs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun q ->
      let key = Array.to_list q.cs in
      match Hashtbl.find_opt tbl key with
      | Some b when b <= q.bound -> ()
      | _ -> Hashtbl.replace tbl key q.bound)
    qs;
  Hashtbl.fold (fun key bound acc -> { cs = Array.of_list key; bound } :: acc) tbl []

let eliminate_var mode ~budget ~count v qs =
  let pos, rest = List.partition (fun q -> q.cs.(v) > 0) qs in
  let neg, zero = List.partition (fun q -> q.cs.(v) < 0) rest in
  let combos =
    List.concat_map
      (fun p ->
        List.map
          (fun n ->
            let cp = p.cs.(v) and cn = -n.cs.(v) in
            let g = Numth.gcd cp cn in
            let mp = cn / g and mn = cp / g in
            let cs =
              Array.init (Array.length p.cs) (fun i ->
                  Intx.add (Intx.mul mp p.cs.(i)) (Intx.mul mn n.cs.(i)))
            in
            let bound = Intx.add (Intx.mul mp p.bound) (Intx.mul mn n.bound) in
            Budget.spend budget;
            count := !count + 1;
            normalize mode { cs; bound })
          neg)
      pos
  in
  dedupe (zero @ combos)

let choose_var nvars qs =
  (* Eliminate small-coefficient variables first: combinations then keep
     the large common factors alive, which is what makes Pugh-style
     tightening bite (e.g. rows in 10*j survive the elimination of the
     unit-coefficient i's and tighten to a contradiction on eq. (1)).
     Ties break on the usual p*n growth estimate. *)
  let best = ref None in
  for v = 0 to nvars - 1 do
    let p = List.length (List.filter (fun q -> q.cs.(v) > 0) qs) in
    let n = List.length (List.filter (fun q -> q.cs.(v) < 0) qs) in
    if p + n > 0 then begin
      let maxc =
        List.fold_left
          (fun acc q -> max acc (Intx.abs q.cs.(v)))
          0 qs
      in
      let cost = (maxc, (p * n) - (p + n)) in
      match !best with
      | Some (_, c) when c <= cost -> ()
      | _ -> best := Some (v, cost)
    end
  done;
  Option.map fst !best

let run ?(budget = Budget.unlimited) mode ~nvars qs =
  let count = ref 0 in
  let rec go qs =
    if List.exists (fun q -> is_trivial q && q.bound < 0) qs then (false, !count)
    else
      match choose_var nvars qs with
      | None -> (true, !count)
      | Some v -> go (eliminate_var mode ~budget ~count v qs)
  in
  go (List.map (normalize mode) qs)

let feasible ?budget mode ~nvars qs = fst (run ?budget mode ~nvars qs)
let eliminations ?budget mode ~nvars qs = snd (run ?budget mode ~nvars qs)

let system_of_equation (eq : Depeq.t) =
  let n = List.length eq.terms in
  let coeffs = Array.of_list (Depeq.coeffs eq) in
  let row f = Array.init n f in
  let eq_le = { cs = row (fun i -> coeffs.(i)); bound = -eq.c0 } in
  let eq_ge = { cs = row (fun i -> -coeffs.(i)); bound = eq.c0 } in
  let bounds =
    List.concat
      (List.mapi
         (fun i (t : Depeq.term) ->
           [
             { cs = row (fun j -> if i = j then 1 else 0); bound = t.var.v_ub };
             { cs = row (fun j -> if i = j then -1 else 0); bound = 0 };
           ])
         eq.terms)
  in
  (n, (eq_le :: eq_ge :: bounds))

let test ?budget mode eq =
  let nvars, qs = system_of_equation eq in
  match feasible ?budget mode ~nvars qs with
  | true -> Verdict.Dependent
  | false -> Verdict.Independent
  | exception Budget.Exhausted _ -> Verdict.Dependent
