open Dlz_base

(* Extrema of a*α + b*β over the region of the (α, β) box selected by a
   direction, by evaluating at the region's vertices (the region is the
   intersection of a box with a half-plane, so it is a polygon whose
   vertices are integral; a linear form attains its extrema there). *)
let rec pair_interval a ub_a b ub_b (dir : Dirvec.dir) =
  let value (alpha, beta) = Intx.add (Intx.mul a alpha) (Intx.mul b beta) in
  let hull pts =
    List.fold_left
      (fun acc p -> Ivl.join acc (Ivl.point (value p)))
      Ivl.empty pts
  in
  match dir with
  | Dirvec.Star ->
      Ivl.add (Ivl.scale a (Ivl.make 0 ub_a)) (Ivl.scale b (Ivl.make 0 ub_b))
  | Dirvec.Eq ->
      let m = min ub_a ub_b in
      Ivl.scale (Intx.add a b) (Ivl.make 0 m)
  | Dirvec.Lt ->
      (* α < β: polygon {0 ≤ α ≤ ub_a, α < β ≤ ub_b}. *)
      if ub_b < 1 then Ivl.empty
      else
        let tmax = min ub_a (ub_b - 1) in
        hull [ (0, 1); (0, ub_b); (tmax, tmax + 1); (tmax, ub_b) ]
  | Dirvec.Gt ->
      if ub_a < 1 then Ivl.empty
      else
        let smax = min ub_b (ub_a - 1) in
        hull [ (1, 0); (ub_a, 0); (smax + 1, smax); (ub_a, smax) ]
  | Dirvec.Le | Dirvec.Ge | Dirvec.Ne ->
      List.fold_left
        (fun acc d -> Ivl.join acc (pair_interval a ub_a b ub_b d))
        Ivl.empty (Dirvec.refinements dir)

(* The closed-form direction bounds (Banerjee's c+/c- formulas), derived
   by the same case analysis the vertex method encodes geometrically:
   under α < β substitute β = α + d with d ∈ [1, B - α] and optimize the
   two linear pieces separately. *)
let rec pair_interval_closed a ub_a b ub_b (dir : Dirvec.dir) =
  let ( + ) = Intx.add and ( * ) = Intx.mul in
  match dir with
  | Dirvec.Star ->
      Ivl.make
        ((Intx.neg_part a * ub_a) + (Intx.neg_part b * ub_b))
        ((Intx.pos_part a * ub_a) + (Intx.pos_part b * ub_b))
  | Dirvec.Eq ->
      let m = min ub_a ub_b in
      Ivl.make (Intx.neg_part (a + b) * m) (Intx.pos_part (a + b) * m)
  | Dirvec.Lt ->
      if ub_b < 1 then Ivl.empty
      else
        let m = min ub_a (Stdlib.( - ) ub_b 1) in
        if b >= 0 then
          Ivl.make
            ((Intx.neg_part (a + b) * m) + b)
            ((Intx.pos_part a * m) + (b * ub_b))
        else
          Ivl.make
            ((Intx.neg_part a * m) + (b * ub_b))
            ((Intx.pos_part (a + b) * m) + b)
  | Dirvec.Gt ->
      if ub_a < 1 then Ivl.empty
      else
        let m = min ub_b (Stdlib.( - ) ub_a 1) in
        if a >= 0 then
          Ivl.make
            ((Intx.neg_part (a + b) * m) + a)
            ((Intx.pos_part b * m) + (a * ub_a))
        else
          Ivl.make
            ((Intx.neg_part b * m) + (a * ub_a))
            ((Intx.pos_part (a + b) * m) + a)
  | Dirvec.Le | Dirvec.Ge | Dirvec.Ne ->
      List.fold_left
        (fun acc d -> Ivl.join acc (pair_interval_closed a ub_a b ub_b d))
        Ivl.empty (Dirvec.refinements dir)

(* Accumulate the equation's range into [acc] (reset here), walking
   the terms directly: level-0 terms contribute their scaled box with
   no allocation at all, and each common level contributes one
   [pair_fn] interval, added at its [`Src] term (or at the [`Dst]
   term when the source instance is absent).  A missing side means the
   variable's coefficient is 0 in this equation; its bound is unknown
   here, so its instance is left unconstrained (conservative: never
   shrinks the range below what the true bound would give).  Level
   feasibility against real bounds is enforced by the hierarchy
   driver. *)
let accumulate_gen pair_fn dirs acc (eq : Depeq.t) =
  Ivl.Acc.set_point acc eq.c0;
  let rec go = function
    | [] -> ()
    | (t : Depeq.term) :: rest ->
        let v = t.var in
        (if v.v_level = 0 then Ivl.Acc.add_scaled acc t.coeff v.v_ub
         else
           let lvl = v.v_level in
           match v.v_side with
           | `Src ->
               Ivl.Acc.add_ivl acc
                 (if Depeq.has_side eq ~level:lvl `Dst then
                    pair_fn t.coeff v.v_ub
                      (Depeq.find_coeff eq ~level:lvl `Dst)
                      (Depeq.find_ub eq ~level:lvl `Dst)
                      (dirs lvl)
                  else pair_fn t.coeff v.v_ub 0 max_int (dirs lvl))
           | `Dst ->
               if not (Depeq.has_side eq ~level:lvl `Src) then
                 Ivl.Acc.add_ivl acc
                   (pair_fn 0 max_int t.coeff v.v_ub (dirs lvl)));
        go rest
  in
  go eq.terms

(* One reusable accumulator per domain: [test] decides containment on
   plain ints and allocates nothing beyond [pair_fn]'s intervals. *)
let acc_key = Domain.DLS.new_key (fun () -> Ivl.Acc.create ())

let interval_gen pair_fn ?(dirs = fun _ -> Dirvec.Star) (eq : Depeq.t) =
  let acc = Domain.DLS.get acc_key in
  accumulate_gen pair_fn dirs acc eq;
  Ivl.Acc.to_ivl acc

let interval ?dirs eq = interval_gen pair_interval ?dirs eq
let interval_closed ?dirs eq = interval_gen pair_interval_closed ?dirs eq

let test ?(dirs = fun _ -> Dirvec.Star) eq =
  let acc = Domain.DLS.get acc_key in
  accumulate_gen pair_interval dirs acc eq;
  if Ivl.Acc.contains_zero acc then Verdict.Dependent
  else Verdict.Independent
