module Poly = Dlz_symbolic.Poly
module Access = Dlz_ir.Access

type t = {
  src : Access.t;
  dst : Access.t;
  n_common : int;
  common_ubs : Poly.t list;
  equations : Symeq.t list;
  opaque_dims : int;
}

type numeric = {
  n_common : int;
  common_ubs : int array;
  eqs : Depeq.t list;
  opaque_dims : int;
}

let of_accesses (src : Access.t) (dst : Access.t) =
  if not (String.equal src.array dst.array) then None
  else begin
    let common = Access.common_loops src dst in
    let rec zip (eqs, opq) ss ds =
      match (ss, ds) with
      | [], [] -> (eqs, opq)
      | Access.Aff fs :: ss, Access.Aff fd :: ds ->
          zip
            ( Symeq.of_affine_pair ~src:fs ~src_loops:src.loops ~dst:fd
                ~dst_loops:dst.loops
              :: eqs,
              opq )
            ss ds
      | _ :: ss, _ :: ds -> zip (eqs, opq + 1) ss ds
      | rest, [] | [], rest -> (eqs, opq + List.length rest)
    in
    let equations, opaque = zip ([], 0) src.subs dst.subs in
    Some
      {
        src;
        dst;
        n_common = List.length common;
        common_ubs = List.map (fun (l : Access.loop) -> l.l_ub) common;
        equations = List.rev equations;
        opaque_dims = opaque;
      }
  end

let numeric_of_equations ~n_common ~common_ubs eqs =
  { n_common; common_ubs; eqs; opaque_dims = 0 }

let to_numeric (p : t) =
  let ( let* ) = Option.bind in
  let rec ubs acc = function
    | [] -> Some (List.rev acc)
    | u :: rest ->
        let* c = Poly.to_const u in
        ubs (c :: acc) rest
  in
  let* common_ubs = ubs [] p.common_ubs in
  let rec eqs acc = function
    | [] -> Some (List.rev acc)
    | e :: rest ->
        let* n = Symeq.to_numeric e in
        eqs (n :: acc) rest
  in
  let* eqs = eqs [] p.equations in
  Some
    {
      n_common = p.n_common;
      common_ubs = Array.of_list common_ubs;
      eqs;
      opaque_dims = p.opaque_dims;
    }

let synthetic (np : numeric) =
  let loops =
    List.init np.n_common (fun i ->
        {
          Access.l_var = Printf.sprintf "z%d" (i + 1);
          l_ub = Poly.const np.common_ubs.(i);
        })
  in
  let access acc_id stmt_name rw =
    { Access.acc_id; stmt_id = acc_id; stmt_name; array = "synthetic";
      rw; loops; subs = [] }
  in
  let lift_eq (eq : Depeq.t) =
    Symeq.make (Poly.const eq.Depeq.c0)
      (List.map
         (fun (t : Depeq.term) ->
           ( Poly.const t.Depeq.coeff,
             Symeq.var ~side:t.Depeq.var.v_side ~level:t.Depeq.var.v_level
               t.Depeq.var.v_name
               (Poly.const t.Depeq.var.v_ub) ))
         eq.Depeq.terms)
  in
  {
    src = access 0 "Ssrc" `Write;
    dst = access 1 "Sdst" `Read;
    n_common = np.n_common;
    common_ubs = List.map Poly.const (Array.to_list np.common_ubs);
    equations = List.map lift_eq np.eqs;
    opaque_dims = np.opaque_dims;
  }

let instantiate env (p : t) =
  {
    n_common = p.n_common;
    common_ubs = Array.of_list (List.map (Poly.eval env) p.common_ubs);
    eqs = List.map (Symeq.instantiate env) p.equations;
    opaque_dims = p.opaque_dims;
  }

let pp ppf (p : t) =
  Format.fprintf ppf "@[<v>%s:%s -> %s:%s, %d common loop(s)" p.src.stmt_name
    p.src.array p.dst.stmt_name p.dst.array p.n_common;
  List.iter (fun e -> Format.fprintf ppf "@,  %a" Symeq.pp e) p.equations;
  if p.opaque_dims > 0 then
    Format.fprintf ppf "@,  (%d opaque dimension(s))" p.opaque_dims;
  Format.fprintf ppf "@]"
