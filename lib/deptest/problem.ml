module Poly = Dlz_symbolic.Poly
module Access = Dlz_ir.Access
module Intx = Dlz_base.Intx
module Numth = Dlz_base.Numth

type t = {
  src : Access.t;
  dst : Access.t;
  n_common : int;
  common_ubs : Poly.t list;
  equations : Symeq.t list;
  opaque_dims : int;
}

type numeric = {
  n_common : int;
  common_ubs : int array;
  eqs : Depeq.t list;
  opaque_dims : int;
}

let of_accesses (src : Access.t) (dst : Access.t) =
  if not (String.equal src.array dst.array) then None
  else begin
    let common = Access.common_loops src dst in
    let rec zip (eqs, opq) ss ds =
      match (ss, ds) with
      | [], [] -> (eqs, opq)
      | Access.Aff fs :: ss, Access.Aff fd :: ds ->
          zip
            ( Symeq.of_affine_pair ~src:fs ~src_loops:src.loops ~dst:fd
                ~dst_loops:dst.loops
              :: eqs,
              opq )
            ss ds
      | _ :: ss, _ :: ds -> zip (eqs, opq + 1) ss ds
      | rest, [] | [], rest -> (eqs, opq + List.length rest)
    in
    let equations, opaque = zip ([], 0) src.subs dst.subs in
    Some
      {
        src;
        dst;
        n_common = List.length common;
        common_ubs = List.map (fun (l : Access.loop) -> l.l_ub) common;
        equations = List.rev equations;
        opaque_dims = opaque;
      }
  end

let numeric_of_equations ~n_common ~common_ubs eqs =
  { n_common; common_ubs; eqs; opaque_dims = 0 }

let to_numeric (p : t) =
  let ( let* ) = Option.bind in
  let rec ubs acc = function
    | [] -> Some (List.rev acc)
    | u :: rest ->
        let* c = Poly.to_const u in
        ubs (c :: acc) rest
  in
  let* common_ubs = ubs [] p.common_ubs in
  let rec eqs acc = function
    | [] -> Some (List.rev acc)
    | e :: rest ->
        let* n = Symeq.to_numeric e in
        eqs (n :: acc) rest
  in
  let* eqs = eqs [] p.equations in
  Some
    {
      n_common = p.n_common;
      common_ubs = Array.of_list common_ubs;
      eqs;
      opaque_dims = p.opaque_dims;
    }

let synthetic (np : numeric) =
  let loops =
    List.init np.n_common (fun i ->
        {
          Access.l_var = Printf.sprintf "z%d" (i + 1);
          l_ub = Poly.const np.common_ubs.(i);
        })
  in
  let access acc_id stmt_name rw =
    { Access.acc_id; stmt_id = acc_id; stmt_name; array = "synthetic";
      rw; loops; subs = [] }
  in
  let lift_eq (eq : Depeq.t) =
    Symeq.make (Poly.const eq.Depeq.c0)
      (List.map
         (fun (t : Depeq.term) ->
           ( Poly.const t.Depeq.coeff,
             Symeq.var ~side:t.Depeq.var.v_side ~level:t.Depeq.var.v_level
               t.Depeq.var.v_name
               (Poly.const t.Depeq.var.v_ub) ))
         eq.Depeq.terms)
  in
  {
    src = access 0 "Ssrc" `Write;
    dst = access 1 "Sdst" `Read;
    n_common = np.n_common;
    common_ubs = List.map Poly.const (Array.to_list np.common_ubs);
    equations = List.map lift_eq np.eqs;
    opaque_dims = np.opaque_dims;
  }

let instantiate env (p : t) =
  {
    n_common = p.n_common;
    common_ubs = Array.of_list (List.map (Poly.eval env) p.common_ubs);
    eqs = List.map (Symeq.instantiate env) p.equations;
    opaque_dims = p.opaque_dims;
  }

(* --- flat canonical encoding ---------------------------------------------- *)

(* [Keybuf] packs the canonical form of a problem — the same
   normalization [to_numeric] + term sorting + sign flip + gcd division
   used to perform, but computed directly from the symbolic form into a
   reusable [Bytes] buffer, with no intermediate [Depeq.t]/list/option
   structures.  One buffer per domain makes the encode step
   allocation-free after warm-up, which is what lets a cache hit cost
   ~0 minor words. *)
module Keybuf = struct
  type buf = {
    (* final encoding *)
    mutable buf : Bytes.t;
    mutable len : int;
    (* per-equation staging area (segments are sorted before landing
       in [buf], so equation order never leaks into the key) *)
    mutable eqbuf : Bytes.t;
    mutable eqlen : int;
    mutable eq_off : int array;
    mutable eq_len : int array;
    mutable eq_ord : int array;
    mutable neqs : int;
    (* term scratch for one equation *)
    mutable t_coeff : int array;
    mutable t_level : int array;
    mutable t_side : int array;
    mutable t_ub : int array;
    mutable t_name : string array;
    mutable nterms : int;
  }

  let create () =
    {
      buf = Bytes.create 256;
      len = 0;
      eqbuf = Bytes.create 256;
      eqlen = 0;
      eq_off = Array.make 8 0;
      eq_len = Array.make 8 0;
      eq_ord = Array.make 8 0;
      neqs = 0;
      t_coeff = Array.make 16 0;
      t_level = Array.make 16 0;
      t_side = Array.make 16 0;
      t_ub = Array.make 16 0;
      t_name = Array.make 16 "";
      nterms = 0;
    }

  let contents kb = kb.buf
  let length kb = kb.len

  (* growth is the only allocation; amortized away after the first few
     encodes on a domain *)
  let grow_bytes b needed =
    let cap = ref (2 * Bytes.length b) in
    while !cap < needed do
      cap := 2 * !cap
    done;
    let nb = Bytes.create !cap in
    Bytes.blit b 0 nb 0 (Bytes.length b);
    nb

  let reserve_main kb n =
    if kb.len + n > Bytes.length kb.buf then
      kb.buf <- grow_bytes kb.buf (kb.len + n)

  let reserve_eq kb n =
    if kb.eqlen + n > Bytes.length kb.eqbuf then
      kb.eqbuf <- grow_bytes kb.eqbuf (kb.eqlen + n)

  (* Eight bytes little-endian from the native int, written byte by
     byte: [Bytes.set_int64_le] would box an [Int64] per field, and the
     encoder runs on every query including cache hits.  Injective on
     63-bit ints (byte 7 carries bits 56-62 sign-extended), which is
     all a cache key needs. *)
  let set_le8 b off v =
    Bytes.unsafe_set b off (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v asr 8) land 0xff));
    Bytes.unsafe_set b (off + 2) (Char.unsafe_chr ((v asr 16) land 0xff));
    Bytes.unsafe_set b (off + 3) (Char.unsafe_chr ((v asr 24) land 0xff));
    Bytes.unsafe_set b (off + 4) (Char.unsafe_chr ((v asr 32) land 0xff));
    Bytes.unsafe_set b (off + 5) (Char.unsafe_chr ((v asr 40) land 0xff));
    Bytes.unsafe_set b (off + 6) (Char.unsafe_chr ((v asr 48) land 0xff));
    Bytes.unsafe_set b (off + 7) (Char.unsafe_chr ((v asr 56) land 0xff))

  let put_int kb v =
    reserve_main kb 8;
    set_le8 kb.buf kb.len v;
    kb.len <- kb.len + 8

  let put_eq_int kb v =
    reserve_eq kb 8;
    set_le8 kb.eqbuf kb.eqlen v;
    kb.eqlen <- kb.eqlen + 8

  let put_eq_string kb s =
    let n = String.length s in
    put_eq_int kb n;
    reserve_eq kb n;
    Bytes.blit_string s 0 kb.eqbuf kb.eqlen n;
    kb.eqlen <- kb.eqlen + n

  let grow_terms kb =
    let cap = Array.length kb.t_coeff in
    let g a z =
      let na = Array.make (2 * cap) z in
      Array.blit a 0 na 0 cap;
      na
    in
    kb.t_coeff <- g kb.t_coeff 0;
    kb.t_level <- g kb.t_level 0;
    kb.t_side <- g kb.t_side 0;
    kb.t_ub <- g kb.t_ub 0;
    kb.t_name <- g kb.t_name ""

  let grow_eqs kb =
    let cap = Array.length kb.eq_off in
    let g a =
      let na = Array.make (2 * cap) 0 in
      Array.blit a 0 na 0 cap;
      na
    in
    kb.eq_off <- g kb.eq_off;
    kb.eq_len <- g kb.eq_len;
    kb.eq_ord <- g kb.eq_ord

  (* Merge criterion of [Depeq.same_var]: side and level, with names
     distinguishing only level-0 variables (the canonical name of a
     paired loop variable is ""). *)
  let rec find_term kb side level name i =
    if i >= kb.nterms then -1
    else if
      kb.t_side.(i) = side
      && kb.t_level.(i) = level
      && (level <> 0 || String.equal kb.t_name.(i) name)
    then i
    else find_term kb side level name (i + 1)

  let add_term kb coeff level side ub name =
    let i = find_term kb side level name 0 in
    if i >= 0 then kb.t_coeff.(i) <- Intx.add kb.t_coeff.(i) coeff
    else begin
      if kb.nterms = Array.length kb.t_coeff then grow_terms kb;
      let i = kb.nterms in
      kb.t_coeff.(i) <- coeff;
      kb.t_level.(i) <- level;
      kb.t_side.(i) <- side;
      kb.t_ub.(i) <- ub;
      kb.t_name.(i) <- name;
      kb.nterms <- i + 1
    end

  (* Drop zero coefficients in place (the [Depeq.make] filter).
     Recursive with explicit indices: a [ref] here would be a fresh
     minor-heap cell on every encode. *)
  let rec drop_zeros_from kb i j =
    if i >= kb.nterms then kb.nterms <- j
    else if kb.t_coeff.(i) = 0 then drop_zeros_from kb (i + 1) j
    else begin
      if j <> i then begin
        kb.t_coeff.(j) <- kb.t_coeff.(i);
        kb.t_level.(j) <- kb.t_level.(i);
        kb.t_side.(j) <- kb.t_side.(i);
        kb.t_ub.(j) <- kb.t_ub.(i);
        kb.t_name.(j) <- kb.t_name.(i)
      end;
      drop_zeros_from kb (i + 1) (j + 1)
    end

  let drop_zeros kb = drop_zeros_from kb 0 0

  (* (level, side, name, ub, coeff) — the canonical term order. *)
  let term_less kb a b =
    let c = Int.compare kb.t_level.(a) kb.t_level.(b) in
    if c <> 0 then c < 0
    else
      let c = Int.compare kb.t_side.(a) kb.t_side.(b) in
      if c <> 0 then c < 0
      else
        let c = String.compare kb.t_name.(a) kb.t_name.(b) in
        if c <> 0 then c < 0
        else
          let c = Int.compare kb.t_ub.(a) kb.t_ub.(b) in
          if c <> 0 then c < 0 else kb.t_coeff.(a) < kb.t_coeff.(b)

  let swap_terms kb i j =
    let sw a =
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    in
    sw kb.t_coeff;
    sw kb.t_level;
    sw kb.t_side;
    sw kb.t_ub;
    let t = kb.t_name.(i) in
    kb.t_name.(i) <- kb.t_name.(j);
    kb.t_name.(j) <- t

  let rec sift_term kb j =
    if j > 0 && term_less kb j (j - 1) then begin
      swap_terms kb j (j - 1);
      sift_term kb (j - 1)
    end

  let sort_terms kb =
    (* insertion sort: term counts are tiny (loop depth x 2) *)
    for i = 1 to kb.nterms - 1 do
      sift_term kb i
    done

  let rec walk_terms kb = function
    | [] -> true
    | (c, (v : Symeq.svar)) :: rest ->
        if not (Poly.is_const c && Poly.is_const v.Symeq.s_ub) then false
        else begin
          let ub = Poly.const_value v.Symeq.s_ub in
          if ub < 0 then false
          else begin
            add_term kb (Poly.const_value c) v.Symeq.s_level
              (match v.Symeq.s_side with `Src -> 0 | `Dst -> 1)
              ub
              (if v.Symeq.s_level = 0 then v.Symeq.s_name else "");
            walk_terms kb rest
          end
        end

  let rec gcd_coeffs kb i g =
    if i >= kb.nterms then g
    else gcd_coeffs kb (i + 1) (Numth.gcd g kb.t_coeff.(i))

  (* One equation from its symbolic form; false = not all-constant. *)
  let encode_eq kb (eq : Symeq.t) =
    if not (Poly.is_const eq.Symeq.c0) then false
    else begin
      kb.nterms <- 0;
      if not (walk_terms kb eq.Symeq.terms) then false
      else begin
        drop_zeros kb;
        sort_terms kb;
        let c0 = Poly.const_value eq.Symeq.c0 in
        (* Global sign flip: first coefficient positive (the constant
           decides for the empty equation). *)
        let flip =
          if kb.nterms > 0 then kb.t_coeff.(0) < 0 else c0 < 0
        in
        let c0 = if flip then Intx.neg c0 else c0 in
        if flip then
          for i = 0 to kb.nterms - 1 do
            kb.t_coeff.(i) <- Intx.neg kb.t_coeff.(i)
          done;
        (* Divide through by the gcd of every coefficient and c0. *)
        let g = gcd_coeffs kb 0 (Intx.abs c0) in
        let c0 = if g > 1 then c0 / g else c0 in
        if g > 1 then
          for i = 0 to kb.nterms - 1 do
            kb.t_coeff.(i) <- kb.t_coeff.(i) / g
          done;
        if kb.neqs = Array.length kb.eq_off then grow_eqs kb;
        let off = kb.eqlen in
        put_eq_int kb c0;
        put_eq_int kb kb.nterms;
        for i = 0 to kb.nterms - 1 do
          put_eq_int kb kb.t_level.(i);
          put_eq_int kb kb.t_side.(i);
          put_eq_int kb kb.t_ub.(i);
          put_eq_int kb kb.t_coeff.(i);
          put_eq_string kb kb.t_name.(i)
        done;
        kb.eq_off.(kb.neqs) <- off;
        kb.eq_len.(kb.neqs) <- kb.eqlen - off;
        kb.eq_ord.(kb.neqs) <- kb.neqs;
        kb.neqs <- kb.neqs + 1;
        true
      end
    end

  (* Lexicographic compare of two staged segments (ties by length):
     any total order works, it just has to be content-determined. *)
  let seg_less kb a b =
    let oa = kb.eq_off.(a) and la = kb.eq_len.(a) in
    let ob = kb.eq_off.(b) and lb = kb.eq_len.(b) in
    let n = min la lb in
    let rec go i =
      if i >= n then la < lb
      else
        let ca = Bytes.unsafe_get kb.eqbuf (oa + i) in
        let cb = Bytes.unsafe_get kb.eqbuf (ob + i) in
        if ca <> cb then ca < cb else go (i + 1)
    in
    go 0

  let rec sift_eq kb j =
    if j > 0 && seg_less kb kb.eq_ord.(j) kb.eq_ord.(j - 1) then begin
      let t = kb.eq_ord.(j) in
      kb.eq_ord.(j) <- kb.eq_ord.(j - 1);
      kb.eq_ord.(j - 1) <- t;
      sift_eq kb (j - 1)
    end

  let sort_eqs kb =
    for i = 1 to kb.neqs - 1 do
      sift_eq kb i
    done

  (* Counting helpers return -1 for "not encodable" instead of an
     option so the success path builds no [Some]. *)
  let rec count_const_ubs n = function
    | [] -> n
    | u :: rest -> if Poly.is_const u then count_const_ubs (n + 1) rest else -1

  let rec put_const_ubs kb = function
    | [] -> ()
    | u :: rest ->
        put_int kb (Poly.const_value u);
        put_const_ubs kb rest

  let rec encode_eqs kb n = function
    | [] -> n
    | e :: rest -> if encode_eq kb e then encode_eqs kb (n + 1) rest else -1

  let encode kb (p : t) =
    kb.len <- 0;
    kb.eqlen <- 0;
    kb.neqs <- 0;
    try
      put_int kb p.n_common;
      put_int kb p.opaque_dims;
      let nubs = count_const_ubs 0 p.common_ubs in
      if nubs < 0 then false
      else begin
        put_int kb nubs;
        put_const_ubs kb p.common_ubs;
        let neqs = encode_eqs kb 0 p.equations in
        if neqs < 0 then false
        else begin
          put_int kb neqs;
          sort_eqs kb;
          for i = 0 to kb.neqs - 1 do
            let s = kb.eq_ord.(i) in
            let l = kb.eq_len.(s) in
            reserve_main kb l;
            Bytes.blit kb.eqbuf kb.eq_off.(s) kb.buf kb.len l;
            kb.len <- kb.len + l
          done;
          true
        end
      end
    with Intx.Overflow _ -> false
end

let pp ppf (p : t) =
  Format.fprintf ppf "@[<v>%s:%s -> %s:%s, %d common loop(s)" p.src.stmt_name
    p.src.array p.dst.stmt_name p.dst.array p.n_common;
  List.iter (fun e -> Format.fprintf ppf "@,  %a" Symeq.pp e) p.equations;
  if p.opaque_dims > 0 then
    Format.fprintf ppf "@,  (%d opaque dimension(s))" p.opaque_dims;
  Format.fprintf ppf "@]"
