open Dlz_base

(* The gcd of the effective coefficients, folded directly over the
   terms so the per-query hot path builds no lists: a level whose
   direction is '=' and which has both instances contributes the merged
   [a + b] once (at its [`Src] term); everything else contributes its
   own coefficient. *)
let effective_gcd dirs (eq : Depeq.t) =
  let rec go g = function
    | [] -> g
    | (t : Depeq.term) :: rest ->
        let lvl = t.var.Depeq.v_level in
        let g =
          if lvl = 0 then Numth.gcd g t.coeff
          else if dirs lvl <> Dirvec.Eq then Numth.gcd g t.coeff
          else
            match t.var.Depeq.v_side with
            | `Src ->
                if Depeq.has_side eq ~level:lvl `Dst then
                  Numth.gcd g
                    (Intx.add t.coeff (Depeq.find_coeff eq ~level:lvl `Dst))
                else Numth.gcd g t.coeff
            | `Dst ->
                if Depeq.has_side eq ~level:lvl `Src then g
                else Numth.gcd g t.coeff
        in
        go g rest
  in
  go 0 eq.terms

let test ?(dirs = fun _ -> Dirvec.Star) (eq : Depeq.t) =
  let g = effective_gcd dirs eq in
  if Numth.divides g eq.c0 then Verdict.Dependent else Verdict.Independent
