(** Banerjee inequalities [AK87, WB87], with direction-vector constraints.

    The test bounds the left-hand side [c0 + Σ ck*zk] over the (real
    relaxation of the) iteration box, optionally restricted by a
    direction for each common loop, and reports independence when the
    range excludes zero.  Direction regions are triangular; we compute
    their exact linear-programming extrema by vertex enumeration, which
    coincides with Banerjee's closed-form direction bounds. *)

val pair_interval : int -> int -> int -> int -> Dirvec.dir -> Dlz_base.Ivl.t
(** [pair_interval a ub_a b ub_b dir] is the exact range of
    [a*α + b*β] over the part of the box [0 ≤ α ≤ ub_a, 0 ≤ β ≤ ub_b]
    selected by [dir], by vertex enumeration. *)

val pair_interval_closed :
  int -> int -> int -> int -> Dirvec.dir -> Dlz_base.Ivl.t
(** The same range from Banerjee's closed-form [c⁺]/[c⁻] direction
    bounds.  Exposed, like {!pair_interval}, so the test suite can check
    the two derivations against each other exhaustively. *)

val interval : ?dirs:(int -> Dirvec.dir) -> Depeq.t -> Dlz_base.Ivl.t
(** Exact range of the left-hand side over the (integer-vertexed) region
    selected by [dirs]; the empty interval when some direction is
    infeasible (e.g. [<] inside a 1-trip loop). *)

val test : ?dirs:(int -> Dirvec.dir) -> Depeq.t -> Verdict.t
(** [Independent] iff {!interval} excludes zero. *)

val interval_closed : ?dirs:(int -> Dirvec.dir) -> Depeq.t -> Dlz_base.Ivl.t
(** The same range computed with Banerjee's closed-form direction bounds
    (the textbook [c⁺]/[c⁻] formulas) instead of vertex enumeration.
    The two must agree — a property the test suite checks; kept as an
    executable rendering of the published formulas. *)
