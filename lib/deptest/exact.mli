(** Exact integer solver for systems of dependence equations.

    A branch-and-bound search over the iteration box with interval and
    gcd pruning.  This is the "integer programming" the paper's fast
    tests approximate; it provides ground truth for the test suite, the
    exact baseline for the E8 cost benches, and exact direction/distance
    sets for small problems.  Complexity is exponential in the worst
    case — callers control the budget with [max_nodes]. *)

type outcome = Feasible of (Depeq.var * int) list | Infeasible | Unknown
(** [Unknown] when the node budget ran out. *)

val solve :
  ?budget:Dlz_base.Budget.t ->
  ?max_nodes:int -> ?extra_ok:((Depeq.var * int) list -> bool) ->
  Depeq.t list -> outcome
(** [solve eqs] decides whether the conjunction of the equations (over
    the union of their variables, identified with {!Depeq.same_var}) has
    an integer point in the box.  [extra_ok] filters witnesses (used to
    impose direction constraints); it must be monotone in the sense that
    it only inspects the final full assignment.  Default [max_nodes] is
    [1_000_000]. *)

val test : ?budget:Dlz_base.Budget.t -> ?max_nodes:int -> Depeq.t list -> Verdict.t
(** [Independent] iff {!solve} says [Infeasible]; [Unknown] maps to
    [Dependent]. *)

val count_solutions : ?limit:int -> Depeq.t list -> int
(** Number of integer points (stopping at [limit], default 1_000_000);
    brute-force enumeration guarded by the same pruning. *)

val direction_vectors :
  ?budget:Dlz_base.Budget.t -> n_common:int -> Depeq.t list -> Dirvec.t list
(** The exact set of basic direction vectors over the first [n_common]
    levels realized by integer solutions.  Exponential; small problems
    only.  Raises {!Dlz_base.Budget.Exhausted} when the budget runs out
    — a partial set would read as proven independence. *)

val distance_set :
  ?budget:Dlz_base.Budget.t -> level:int -> Depeq.t list -> int list option
(** All values of [β_level - α_level] over the solutions (levels where
    both instances occur in the equations), sorted; [None] when the
    search budget is exceeded. *)

val level_values :
  ?budget:Dlz_base.Budget.t ->
  level:int -> side:[ `Src | `Dst ] -> Depeq.t list -> int list option
(** All values taken by the given instance variable over the solutions;
    [Some []] when the variable does not occur in the equations (it is
    unconstrained), [None] on budget exhaustion. *)
