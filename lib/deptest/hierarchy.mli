(** Direction-vector hierarchy refinement [WB87, GKT91].

    Starting from [(*, ..., *)], each [*] is refined into [<], [=], [>];
    a subtree is pruned as soon as the per-equation tests disprove
    dependence under the partial vector.  The surviving leaves are the
    reported direction vectors — the "existing techniques" the paper's
    algorithm calls to solve separated equations. *)

type eq_test = dirs:(int -> Dirvec.dir) -> Depeq.t -> Verdict.t
(** A sound single-equation test under direction constraints. *)

val gcd_banerjee : eq_test
(** GCD-with-directions ∧ Banerjee-with-directions: the combination the
    paper proves its algorithm matches per dimension. *)

val test : ?test:eq_test -> Problem.numeric -> Verdict.t
(** Dependence test at the unrefined [(*, ..., *)] vector. *)

val directions :
  ?budget:Dlz_base.Budget.t -> ?test:eq_test -> Problem.numeric -> Dirvec.t list
(** All basic direction vectors not disproven, sorted.  The empty list
    means independence.  One [budget] unit is spent per refinement node;
    exhaustion raises {!Dlz_base.Budget.Exhausted} (a truncated set
    would read as proven independence). *)

val directions_exact :
  ?budget:Dlz_base.Budget.t -> Problem.numeric -> Dirvec.t list
(** Ground truth via the exact solver (exponential; small problems). *)

val feasible_dir : ub:int -> Dirvec.dir -> bool
(** Whether a direction is realizable inside a common loop of the given
    normalized upper bound ([<] and [>] need at least two iterations). *)
