type eq_test = dirs:(int -> Dirvec.dir) -> Depeq.t -> Verdict.t

let gcd_banerjee ~dirs eq =
  Verdict.both (Gcd_test.test ~dirs eq) (Banerjee.test ~dirs eq)

let feasible_dir ~ub dir =
  match dir with
  | Dirvec.Lt | Dirvec.Gt -> ub >= 1
  | Dirvec.Ne -> ub >= 1
  | Dirvec.Eq | Dirvec.Le | Dirvec.Ge | Dirvec.Star -> true

let run_test test (p : Problem.numeric) (dv : Dirvec.t) =
  let dirs lvl = if lvl >= 1 && lvl <= p.n_common then dv.(lvl - 1) else Dirvec.Star in
  let level_ok =
    Array.for_all2
      (fun ub d -> feasible_dir ~ub d)
      p.common_ubs
      (Array.sub dv 0 (Array.length p.common_ubs))
  in
  if not level_ok then Verdict.Independent
  else
    List.fold_left
      (fun acc eq ->
        match acc with
        | Verdict.Independent -> acc
        | _ -> Verdict.conservative (test ~dirs eq))
      Verdict.Dependent p.eqs

let test ?(test = gcd_banerjee) (p : Problem.numeric) =
  run_test test p (Dirvec.all_star p.n_common)

let directions ?(budget = Dlz_base.Budget.unlimited) ?(test = gcd_banerjee)
    (p : Problem.numeric) =
  let n = p.n_common in
  let results = ref [] in
  let rec refine dv level =
    Dlz_base.Budget.spend budget;
    match run_test test p dv with
    | Verdict.Independent -> ()
    | _ ->
        if level > n then results := Array.copy dv :: !results
        else
          List.iter
            (fun d ->
              dv.(level - 1) <- d;
              refine dv (level + 1);
              dv.(level - 1) <- Dirvec.Star)
            [ Dirvec.Lt; Dirvec.Eq; Dirvec.Gt ]
  in
  refine (Dirvec.all_star n) 1;
  List.sort Dirvec.compare !results

let directions_exact ?budget (p : Problem.numeric) =
  Exact.direction_vectors ?budget ~n_common:p.n_common p.eqs
