open Dlz_base

type result = Sat | Unsat | Unknown

type row = { cs : int array; k : int }
(* A row is Σ cs.(i)·x_i + k, constrained to = 0 (equality) or ≥ 0. *)

type sys = { nv : int; eqs : row list; ineqs : row list }

let row_map f r = { r with cs = Array.map f r.cs }

let grow nv r =
  if Array.length r.cs = nv then r
  else
    {
      r with
      cs = Array.init nv (fun i -> if i < Array.length r.cs then r.cs.(i) else 0);
    }

(* Substitute x_v := Σ combo·x + c0 in a row. *)
let subst_row v combo c0 r =
  let a = r.cs.(v) in
  if a = 0 then r
  else begin
    let cs = Array.copy r.cs in
    cs.(v) <- 0;
    Array.iteri
      (fun i c -> cs.(i) <- Intx.add cs.(i) (Intx.mul a c))
      combo;
    { cs; k = Intx.add r.k (Intx.mul a c0) }
  end

let normalize_eq r =
  let g = Numth.gcd_list (Array.to_list r.cs) in
  if g = 0 then if r.k = 0 then `Trivial else `Contradiction
  else if not (Numth.divides g r.k) then `Contradiction
  else `Row (row_map (fun c -> c / g) { r with k = r.k / g })

let nonzero_indices r =
  let acc = ref [] in
  Array.iteri (fun i c -> if c <> 0 then acc := i :: !acc) r.cs;
  List.rev !acc

(* Eliminate all equalities by exact substitutions. *)
let rec elim_eqs budget sys =
  Budget.spend budget;
  match sys.eqs with
  | [] -> `Go sys
  | e :: rest -> (
      match normalize_eq e with
      | `Trivial -> elim_eqs budget { sys with eqs = rest }
      | `Contradiction -> `Unsat
      | `Row e -> (
          match nonzero_indices e with
          | [] -> assert false
          | [ i ] ->
              (* ±x_i + k = 0: substitute the constant. *)
              let value = if e.cs.(i) = 1 then -e.k else e.k in
              let combo = Array.make sys.nv 0 in
              let sub = subst_row i combo value in
              elim_eqs budget
                {
                  sys with
                  eqs = List.map sub rest;
                  ineqs = List.map sub sys.ineqs;
                }
          | i :: j :: _ ->
              (* Unimodular reduction of the (x_i, x_j) pair:
                 with g = gcd(a,b) and p·(a/g) + q·(b/g) = 1,
                 x_i = p·u - (b/g)·v and x_j = q·u + (a/g)·v is an
                 integer bijection mapping a·x_i + b·x_j to g·u. *)
              let a = e.cs.(i) and b = e.cs.(j) in
              let g, p, q = Numth.egcd a b in
              let u = sys.nv and v = sys.nv + 1 in
              let nv = sys.nv + 2 in
              let combo_i = Array.make nv 0 and combo_j = Array.make nv 0 in
              combo_i.(u) <- p;
              combo_i.(v) <- Intx.neg (b / g);
              combo_j.(u) <- q;
              combo_j.(v) <- a / g;
              let sub r =
                let r = grow nv r in
                let r = subst_row i combo_i 0 r in
                subst_row j combo_j 0 r
              in
              elim_eqs budget
                {
                  nv;
                  eqs = sub e :: List.map sub rest;
                  ineqs = List.map sub sys.ineqs;
                }))

(* Tightest-bound dedup, as in plain FM. *)
let dedupe rows =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let key = Array.to_list r.cs in
      match Hashtbl.find_opt tbl key with
      | Some k when k <= r.k -> () (* the existing row is tighter *)
      | _ -> Hashtbl.replace tbl key r.k)
    rows;
  Hashtbl.fold (fun key k acc -> { cs = Array.of_list key; k } :: acc) tbl []

let normalize_ineq r =
  let g = Numth.gcd_list (Array.to_list r.cs) in
  if g <= 1 then r
  else row_map (fun c -> c / g) { r with k = Numth.fdiv r.k g }

let rec solve_ineqs budget sys =
  Budget.spend budget;
  let rows = List.map normalize_ineq sys.ineqs in
  let constant, rows = List.partition (fun r -> nonzero_indices r = []) rows in
  if List.exists (fun r -> r.k < 0) constant then Unsat
  else
    let rows = dedupe rows in
    (* Pick the variable to eliminate. *)
    let candidates =
      List.init sys.nv (fun v ->
          let lowers = List.filter (fun r -> r.cs.(v) > 0) rows in
          let uppers = List.filter (fun r -> r.cs.(v) < 0) rows in
          (v, lowers, uppers))
      |> List.filter (fun (_, l, u) -> l <> [] || u <> [])
    in
    match candidates with
    | [] -> Sat (* no variable constrained: all remaining rows constant *)
    | _ -> (
        let measure (v, lowers, uppers) =
          let exact =
            List.for_all (fun r -> r.cs.(v) = 1) lowers
            || List.for_all (fun r -> r.cs.(v) = -1) uppers
          in
          ((not exact), List.length lowers * List.length uppers, v)
        in
        let v, lowers, uppers =
          List.fold_left
            (fun best c -> if measure c < measure best then c else best)
            (List.hd candidates) (List.tl candidates)
        in
        let rest = List.filter (fun r -> r.cs.(v) = 0) rows in
        if lowers = [] || uppers = [] then
          (* x_v unbounded on one side over the integers: drop it. *)
          solve_ineqs budget { sys with ineqs = rest }
        else
          let exact =
            List.for_all (fun r -> r.cs.(v) = 1) lowers
            || List.for_all (fun r -> r.cs.(v) = -1) uppers
          in
          let combine ~dark l u =
            (* l: b·x + r_l ≥ 0 (b>0); u: -c·x + r_u ≥ 0 (c>0). *)
            let b = l.cs.(v) and c = -u.cs.(v) in
            let cs =
              Array.init sys.nv (fun i ->
                  if i = v then 0
                  else Intx.add (Intx.mul c l.cs.(i)) (Intx.mul b u.cs.(i)))
            in
            let k = Intx.add (Intx.mul c l.k) (Intx.mul b u.k) in
            let k = if dark then Intx.sub k ((b - 1) * (c - 1)) else k in
            { cs; k }
          in
          let shadow ~dark =
            rest
            @ List.concat_map
                (fun l -> List.map (fun u -> combine ~dark l u) uppers)
                lowers
          in
          if exact then solve_ineqs budget { sys with ineqs = shadow ~dark:false }
          else
            match solve_ineqs budget { sys with ineqs = shadow ~dark:false } with
            | Unsat -> Unsat
            | real_result -> (
                match
                  solve_ineqs budget { sys with ineqs = shadow ~dark:true }
                with
                | Sat -> Sat
                | _ -> (
                    (* Splinter: an integer point outside the dark shadow
                       must sit within (b·c_max - b - c_max)/c_max of some
                       lower bound b·x ≥ -r, so case-split on
                       b·x + r = i over every lower bound. *)
                    let c_max =
                      List.fold_left (fun m r -> max m (-r.cs.(v))) 1 uppers
                    in
                    let cases =
                      List.concat_map
                        (fun l ->
                          let b = l.cs.(v) in
                          let hi = ((b * c_max) - c_max - b) / c_max in
                          List.init (max 0 (hi + 1)) (fun i ->
                              { l with k = Intx.sub l.k i }))
                        lowers
                    in
                    let any_unknown = ref (real_result = Unknown) in
                    let rec try_splinter = function
                      | [] -> if !any_unknown then Unknown else Unsat
                      | eq :: restc -> (
                          match
                            solve_full budget
                              { nv = sys.nv; eqs = [ eq ]; ineqs = rows }
                          with
                          | Sat -> Sat
                          | Unknown ->
                              any_unknown := true;
                              try_splinter restc
                          | Unsat -> try_splinter restc)
                    in
                    try_splinter cases)))

and solve_full budget sys =
  match elim_eqs budget sys with
  | `Unsat -> Unsat
  | `Go sys -> solve_ineqs budget sys

let var_key (v : Depeq.var) = (v.v_side, v.v_level, v.v_name)

let of_equations eqs =
  let vars = Hashtbl.create 8 in
  let ubs = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (eq : Depeq.t) ->
      List.iter
        (fun (t : Depeq.term) ->
          let key = var_key t.var in
          (* A variable shared between equations keeps the tightest of
             its declared ranges. *)
          (match Hashtbl.find_opt ubs key with
          | Some u when u <= t.var.v_ub -> ()
          | _ -> Hashtbl.replace ubs key t.var.v_ub);
          if not (Hashtbl.mem vars key) then begin
            Hashtbl.replace vars key (Hashtbl.length vars);
            order := t.var :: !order
          end)
        eq.terms)
    eqs;
  let nv = Hashtbl.length vars in
  let index v = Hashtbl.find vars (var_key v) in
  let eq_rows =
    List.map
      (fun (eq : Depeq.t) ->
        let cs = Array.make nv 0 in
        List.iter
          (fun (t : Depeq.term) ->
            cs.(index t.var) <- Intx.add cs.(index t.var) t.coeff)
          eq.terms;
        { cs; k = eq.c0 })
      eqs
  in
  let bound_rows =
    List.concat_map
      (fun (v : Depeq.var) ->
        let i = index v in
        let ub = Hashtbl.find ubs (var_key v) in
        let lo = { cs = Array.init nv (fun j -> if j = i then 1 else 0); k = 0 } in
        let hi =
          { cs = Array.init nv (fun j -> if j = i then -1 else 0); k = ub }
        in
        [ lo; hi ])
      (List.rev !order)
  in
  { nv; eqs = eq_rows; ineqs = bound_rows }

let solve ?budget ?(fuel = 50_000) eqs =
  let parent = match budget with Some b -> b | None -> Budget.unlimited in
  let b = Budget.sub ~fuel parent in
  match solve_full b (of_equations eqs) with
  | r -> r
  | exception Budget.Exhausted _ -> Unknown
  | exception Intx.Overflow _ -> Unknown

let test ?budget ?fuel eqs =
  match solve ?budget ?fuel eqs with
  | Unsat -> Verdict.Independent
  | Sat | Unknown -> Verdict.Dependent
