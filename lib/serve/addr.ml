type t = Unix_sock of string | Tcp of string * int

let to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let of_string s =
  let prefixed p =
    if String.length s > String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match prefixed "unix:" with
  | Some p -> Ok (Unix_sock p)
  | None -> (
      let host_port hp =
        match String.rindex_opt hp ':' with
        | None -> Error (Printf.sprintf "bad tcp address %S (want host:port)" hp)
        | Some i -> (
            let host = String.sub hp 0 i in
            let port = String.sub hp (i + 1) (String.length hp - i - 1) in
            match int_of_string_opt port with
            | Some p when p >= 0 && p < 65536 ->
                Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
            | _ -> Error (Printf.sprintf "bad port %S" port))
      in
      match prefixed "tcp:" with
      | Some hp -> host_port hp
      | None ->
          (* Bare forms: a path is a unix socket, "host:port" is TCP. *)
          if String.length s > 0 && (s.[0] = '/' || s.[0] = '.') then
            Ok (Unix_sock s)
          else if String.contains s ':' then host_port s
          else Error (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s))

let resolve_host host =
  try (Unix.gethostbyname host).Unix.h_addr_list.(0)
  with Not_found | Unix.Unix_error _ -> Unix.inet_addr_loopback

let sockaddr_of = function
  | Unix_sock p -> Unix.ADDR_UNIX p
  | Tcp (h, p) -> Unix.ADDR_INET (resolve_host h, p)

let listen ?(backlog = 128) t =
  try
    let dom = match t with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
    let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
    (try
       (match t with
       | Unix_sock p ->
           (* A stale socket file from a crashed server blocks bind;
              removing it is the standard unix-daemon move. *)
           if Sys.file_exists p then Sys.remove p
       | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
       Unix.bind fd (sockaddr_of t);
       Unix.listen fd backlog;
       let resolved =
         match (t, Unix.getsockname fd) with
         | Tcp (h, _), Unix.ADDR_INET (_, port) -> Tcp (h, port)
         | t, _ -> t
       in
       Ok (fd, resolved)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e)
  with
  | Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "listen %s: %s" (to_string t) (Unix.error_message err))
  | Sys_error m -> Error m

let connect t =
  try
    let dom = match t with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
    let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (sockaddr_of t);
       Ok fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e)
  with Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "connect %s: %s" (to_string t) (Unix.error_message err))
