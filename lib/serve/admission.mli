(** The bounded accept queue between the accept loop and the workers.

    Capacity is a hard bound: a full queue sheds immediately
    ([try_admit] never blocks), which is what lets the server answer
    overload with an explicit reply instead of unbounded queueing.
    Domain-safe; one mutex, uncontended except at hand-off. *)

type 'a t
type verdict = Admitted | Shed | Closed

val create : capacity:int -> 'a t
(** [capacity] is clamped to at least 1. *)

val try_admit : 'a t -> 'a -> verdict
(** Non-blocking.  Counts every [Admitted]/[Shed] outcome. *)

val take : 'a t -> 'a option
(** Blocks until an item or close.  After {!close}, drains remaining
    items before returning [None] — admitted work is never dropped. *)

val close : 'a t -> unit
(** Idempotent; wakes all blocked takers. *)

val capacity : 'a t -> int
val length : 'a t -> int
val admitted : 'a t -> int
val shed : 'a t -> int
