module Chaos = Dlz_engine.Chaos

(* Wire framing: `<decimal byte length>\n<payload bytes>\n`.  The
   explicit length makes torn input detectable (NDJSON alone cannot
   distinguish "half a line" from "a short line") and lets the reader
   bound allocation before touching the payload. *)

type error =
  | Eof  (** clean close between frames *)
  | Timeout  (** the peer stalled past the socket receive timeout *)
  | Too_large of int  (** declared length above the frame bound *)
  | Malformed of string  (** framing violated; the stream cannot resync *)
  | Io of string  (** the connection died mid-frame *)

let error_to_string = function
  | Eof -> "eof"
  | Timeout -> "timeout"
  | Too_large n -> Printf.sprintf "frame of %d bytes exceeds bound" n
  | Malformed m -> "malformed frame: " ^ m
  | Io m -> "io: " ^ m

exception Fail of error

let default_max_bytes = 4 * 1024 * 1024

let encode payload =
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

(* {2 Reading} *)

let read_byte fd buf =
  let rec go () =
    match Unix.read fd buf 0 1 with
    | 0 -> raise (Fail Eof)
    | _ -> Bytes.get buf 0
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Fail Timeout)
    | exception Unix.Unix_error (e, _, _) ->
        raise (Fail (Io (Unix.error_message e)))
  in
  go ()

let really_read fd buf n =
  let rec go off =
    if off < n then
      match Unix.read fd buf off (n - off) with
      | 0 -> raise (Fail (Io "eof inside frame"))
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          raise (Fail Timeout)
      | exception Unix.Unix_error (e, _, _) ->
          raise (Fail (Io (Unix.error_message e)))
  in
  go 0

let read ?(max_bytes = default_max_bytes) fd =
  let buf = Bytes.create 1 in
  try
    (* Length line: bare digits then '\n'; 19 digits already exceeds
       any plausible bound, so a longer run is garbage, not a frame. *)
    let rec length_line acc digits =
      match read_byte fd buf with
      | '0' .. '9' as c ->
          if digits >= 19 then raise (Fail (Malformed "length line too long"));
          length_line ((acc * 10) + (Char.code c - Char.code '0')) (digits + 1)
      | '\n' ->
          if digits = 0 then raise (Fail (Malformed "empty length line"));
          acc
      | c ->
          raise (Fail (Malformed (Printf.sprintf "byte %C in length line" c)))
    in
    let n = length_line 0 0 in
    if n > max_bytes then raise (Fail (Too_large n));
    let payload_buf = Bytes.create (n + 1) in
    (* A close mid-payload is a dead connection, not a clean Eof. *)
    (try really_read fd payload_buf (n + 1)
     with Fail Eof -> raise (Fail (Io "eof inside frame")));
    if Bytes.get payload_buf n <> '\n' then
      raise (Fail (Malformed "missing frame terminator"));
    let payload = Bytes.sub_string payload_buf 0 n in
    match Chaos.current () with
    | None -> Ok payload
    | Some c -> (
        match Chaos.io_strike c ~point:"frame.read" ~key:payload with
        | None -> Ok payload
        | Some Chaos.Torn_frame -> Error (Malformed "chaos:torn-frame")
        | Some Chaos.Disconnect -> Error (Io "chaos:disconnect")
        | Some Chaos.Slow_write ->
            (* A slow peer, not a broken one: stall briefly, deliver. *)
            Unix.sleepf 0.002;
            Ok payload)
  with Fail e -> Error e

(* {2 Writing} *)

let write_part fd s off len =
  let b = Bytes.unsafe_of_string s in
  let rec go off len =
    if len > 0 then
      match Unix.write fd b off len with
      | k -> go (off + k) (len - k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          raise (Fail Timeout)
      | exception Unix.Unix_error (e, _, _) ->
          raise (Fail (Io (Unix.error_message e)))
  in
  go off len

let write fd payload =
  let frame = encode payload in
  let len = String.length frame in
  try
    (match Chaos.current () with
    | None -> write_part fd frame 0 len
    | Some c -> (
        match Chaos.io_strike c ~point:"frame.write" ~key:payload with
        | None -> write_part fd frame 0 len
        | Some Chaos.Torn_frame ->
            (* Half a frame on the wire, then give up: the peer must
               detect the tear from the framing; the writer treats the
               connection as dead. *)
            write_part fd frame 0 (len / 2);
            raise (Fail (Io "chaos:torn-frame"))
        | Some Chaos.Disconnect -> raise (Fail (Io "chaos:disconnect"))
        | Some Chaos.Slow_write ->
            (* Dribble the frame out in small stalled pieces — a
               cooperating slow-loris.  The stalled prefix is capped so
               an injected stall stays bounded. *)
            let piece = 16 in
            let slow_len = min len (32 * piece) in
            let off = ref 0 in
            while !off < slow_len do
              let k = min piece (slow_len - !off) in
              write_part fd frame !off k;
              Unix.sleepf 0.001;
              off := !off + k
            done;
            if !off < len then write_part fd frame !off (len - !off)));
    Ok ()
  with Fail e -> Error e
