(** Minimal JSON values for the wire protocol.

    The daemon speaks length-framed NDJSON and the repo carries no
    third-party JSON library, so this is the whole story: a value type,
    a recursive-descent parser with an explicit nesting bound (64 — a
    deeper frame is adversarial, not legitimate), and a printer whose
    output is deterministic for a given value.  Frame size is bounded
    upstream by {!Frame}, so the parser never sees unbounded input. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Total: malformed input is an [Error], never an exception.  Rejects
    trailing bytes after the value. *)

val to_string : t -> string

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes), for callers that
    assemble frames by hand around pre-rendered fragments. *)

(** Shape accessors: [None] on type mismatch, so protocol code can
    validate without try/with. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
