(* Per-client attribution: who is asking, what are they asking, and
   how is the cache treating them.  Clients self-identify with an
   optional "client" request field (default "anon"); the daemon never
   trusts the name for anything but labeling.  Cardinality is capped —
   past [max_clients] distinct names, newcomers are folded into the
   ["other"] bucket so a label-churning client cannot grow the metric
   space without bound. *)

module Trace = Dlz_base.Trace
module Query = Dlz_engine.Query

let default_client = "anon"
let overflow_client = "other"
let max_name_bytes = 64

type vcell = {
  vc_requests : int Atomic.t;  (* requests dispatched for (client, verb) *)
  vc_hist : Trace.Hist.t;  (* request wall-clock, socket to socket *)
}

type ccell = {
  cc_verbs : (string, vcell) Hashtbl.t;
  cc_hit_warm : int Atomic.t;  (* engine-cache dispositions, per client *)
  cc_hit_cold : int Atomic.t;
  cc_miss : int Atomic.t;
  cc_uncacheable : int Atomic.t;
  cc_errors : (string, int Atomic.t) Hashtbl.t;  (* by error reason *)
  cc_degraded : int Atomic.t;  (* ok replies that carried degradations *)
}

type t = {
  mu : Mutex.t;  (* guards the tables; the cells are atomic *)
  clients : (string, ccell) Hashtbl.t;
  max_clients : int;
}

let create ?(max_clients = 64) () =
  {
    mu = Mutex.create ();
    clients = Hashtbl.create 16;
    max_clients = max 1 max_clients;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Label-value hygiene: bound the bytes (a client name is a label
   value, not a payload) and default the empty name. *)
let normalize name =
  let name = String.trim name in
  if name = "" then default_client
  else if String.length name <= max_name_bytes then name
  else String.sub name 0 max_name_bytes

let fresh_ccell () =
  {
    cc_verbs = Hashtbl.create 4;
    cc_hit_warm = Atomic.make 0;
    cc_hit_cold = Atomic.make 0;
    cc_miss = Atomic.make 0;
    cc_uncacheable = Atomic.make 0;
    cc_errors = Hashtbl.create 4;
    cc_degraded = Atomic.make 0;
  }

(* Must be called with the lock held. *)
let ccell_locked t client =
  match Hashtbl.find_opt t.clients client with
  | Some c -> c
  | None ->
      let key =
        if Hashtbl.length t.clients < t.max_clients then client
        else overflow_client
      in
      (match Hashtbl.find_opt t.clients key with
      | Some c -> c
      | None ->
          let c = fresh_ccell () in
          Hashtbl.replace t.clients key c;
          c)

let vcell_locked cc verb =
  match Hashtbl.find_opt cc.cc_verbs verb with
  | Some v -> v
  | None ->
      let v = { vc_requests = Atomic.make 0; vc_hist = Trace.Hist.create () } in
      Hashtbl.replace cc.cc_verbs verb v;
      v

let observe_request t ~client ~verb ns =
  let client = normalize client in
  let v = locked t (fun () -> vcell_locked (ccell_locked t client) verb) in
  Atomic.incr v.vc_requests;
  Trace.Hist.observe v.vc_hist ns

let record_disposition t ~client (d : Query.disposition) =
  let client = normalize client in
  let c = locked t (fun () -> ccell_locked t client) in
  Atomic.incr
    (match d with
    | Query.Hit_warm -> c.cc_hit_warm
    | Query.Hit_cold -> c.cc_hit_cold
    | Query.Miss -> c.cc_miss
    | Query.Uncacheable -> c.cc_uncacheable)

let record_error t ~client ~reason =
  let client = normalize client in
  let cell =
    locked t (fun () ->
        let c = ccell_locked t client in
        match Hashtbl.find_opt c.cc_errors reason with
        | Some a -> a
        | None ->
            let a = Atomic.make 0 in
            Hashtbl.replace c.cc_errors reason a;
            a)
  in
  Atomic.incr cell

let record_degraded t ~client =
  let client = normalize client in
  let c = locked t (fun () -> ccell_locked t client) in
  Atomic.incr c.cc_degraded

let reset t = locked t (fun () -> Hashtbl.reset t.clients)

(* Scrape: render only non-zero series (a client that never erred has
   no error rows), sorted downstream by the registry.  The snapshot is
   taken under the lock so a scrape never sees a half-built cell. *)
let obs_samples t =
  let open Dlz_obs.Registry in
  locked t (fun () ->
      Hashtbl.fold
        (fun client cc acc ->
          let lbl extra = ("client", client) :: extra in
          let counter ?(extra = []) help name v acc =
            if v = 0 then acc
            else sample ~help ~labels:(lbl extra) name (Counter v) :: acc
          in
          let acc =
            Hashtbl.fold
              (fun verb (v : vcell) acc ->
                let acc =
                  if Trace.Hist.count v.vc_hist = 0 then acc
                  else
                    sample ~help:"per-client request latency (nanoseconds)"
                      ~labels:(lbl [ ("verb", verb) ])
                      "vic_client_request_ns"
                      (Hist (Trace.Hist.snapshot v.vc_hist))
                    :: acc
                in
                counter
                  ~extra:[ ("verb", verb) ]
                  "requests dispatched per client and verb"
                  "vic_client_requests_total"
                  (Atomic.get v.vc_requests) acc)
              cc.cc_verbs acc
          in
          let acc =
            counter
              ~extra:[ ("temp", "warm") ]
              "engine cache hits per client" "vic_client_cache_hits_total"
              (Atomic.get cc.cc_hit_warm) acc
          in
          let acc =
            counter
              ~extra:[ ("temp", "cold") ]
              "engine cache hits per client" "vic_client_cache_hits_total"
              (Atomic.get cc.cc_hit_cold) acc
          in
          let acc =
            counter "engine cache misses per client"
              "vic_client_cache_misses_total" (Atomic.get cc.cc_miss) acc
          in
          let acc =
            counter "uncacheable (symbolic) queries per client"
              "vic_client_uncacheable_total"
              (Atomic.get cc.cc_uncacheable) acc
          in
          let acc =
            Hashtbl.fold
              (fun reason a acc ->
                counter
                  ~extra:[ ("reason", reason) ]
                  "error replies per client and reason"
                  "vic_client_errors_total" (Atomic.get a) acc)
              cc.cc_errors acc
          in
          counter "ok replies that carried degradations per client"
            "vic_client_degraded_total" (Atomic.get cc.cc_degraded) acc)
        t.clients [])

let register_obs t =
  Dlz_obs.Registry.register ~name:"clients" ~reset:(fun () -> reset t)
    (fun () -> obs_samples t)
