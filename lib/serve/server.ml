module Budget = Dlz_base.Budget
module Cascade = Dlz_engine.Cascade
module Persist = Dlz_engine.Persist

type config = {
  address : Addr.t;
  workers : int;  (* worker domains; clamped to at least 1 *)
  queue_capacity : int;  (* bounded accept queue; beyond it we shed *)
  max_frame : int;
  idle_timeout_ms : int;  (* per-read receive timeout (slow-loris bound) *)
  retry_after_ms : int;  (* hint attached to overload replies *)
  request_fuel : int option;
  request_timeout_ms : int option;
  global_fuel : int option;
  global_timeout_ms : int option;
  cascade : Cascade.t option;
  snapshot_load : string option;
  snapshot_save : string option;
  metrics_dump : string option;  (* NDJSON time series of obs snapshots *)
  metrics_dump_interval_ms : int;
}

let default_config address =
  {
    address;
    workers = 2;
    queue_capacity = 64;
    max_frame = Frame.default_max_bytes;
    idle_timeout_ms = 10_000;
    retry_after_ms = 50;
    request_fuel = None;
    request_timeout_ms = Some 2_000;
    global_fuel = None;
    global_timeout_ms = None;
    cascade = None;
    snapshot_load = None;
    snapshot_save = None;
    metrics_dump = None;
    metrics_dump_interval_ms = 1_000;
  }

type summary = {
  sm_metrics : Metrics.snapshot;
  sm_loaded : (int, string) result option;  (* warm-start outcome *)
  sm_saved : (int, string) result option;  (* drain snapshot outcome *)
}

(* Everything the accept loop and the workers share; plain immutable
   record handed to each domain at spawn (no lazy self-knots — forcing
   a lazy from several domains is not safe). *)
type shared = {
  cfg : config;
  lsock : Unix.file_descr;
  queue : Unix.file_descr Admission.t;
  metrics : Metrics.t;
  draining : bool Atomic.t;
}

type t = {
  sh : shared;
  resolved : Addr.t;
  loaded : (int, string) result option;
  accept_dom : unit Domain.t;
  worker_doms : unit Domain.t list;
  dump_dom : unit Domain.t option;
  mutable joined : summary option;
}

let metrics t = t.sh.metrics
let address t = t.resolved
let stopped t = Atomic.get t.sh.draining
let stop t = Atomic.set t.sh.draining true

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Best-effort refusal reply on a connection we are not going to
   serve: if the write fails the client learns it from the close. *)
let refuse metrics fd payload =
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
   with Unix.Unix_error _ -> ());
  (match Frame.write fd payload with
  | Ok () -> Atomic.incr metrics.Metrics.errors
  | Error _ -> ());
  close_quiet fd

let accept_loop sh =
  let overloaded =
    Proto.error ~id:Jsonx.Null ~reason:"overloaded"
      ~retry_after_ms:sh.cfg.retry_after_ms "queue full, try again later"
  in
  let draining_reply =
    Proto.error ~id:Jsonx.Null ~reason:"draining" "server is shutting down"
  in
  let rec loop () =
    if Atomic.get sh.draining then ()
    else begin
      (match Unix.select [ sh.lsock ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept sh.lsock with
          | fd, _ -> (
              Unix.clear_nonblock fd;
              (try
                 let to_s = float_of_int sh.cfg.idle_timeout_ms /. 1000. in
                 Unix.setsockopt_float fd Unix.SO_RCVTIMEO to_s;
                 Unix.setsockopt_float fd Unix.SO_SNDTIMEO (Float.max to_s 1.0)
               with Unix.Unix_error _ -> ());
              match Admission.try_admit sh.queue fd with
              | Admission.Admitted -> Atomic.incr sh.metrics.Metrics.accepted
              | Admission.Shed ->
                  (* The headline robustness move: a full queue is an
                     explicit, immediate answer — never silent latency. *)
                  Atomic.incr sh.metrics.Metrics.shed;
                  refuse sh.metrics fd overloaded
              | Admission.Closed ->
                  Atomic.incr sh.metrics.Metrics.rejected_draining;
                  refuse sh.metrics fd draining_reply)
          | exception
              Unix.Unix_error
                ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED),
                  _,
                  _ ) ->
              ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (* Drain sequence: stop accepting, then let the workers run the
     queue dry ([Admission.take] hands out queued items after close). *)
  close_quiet sh.lsock;
  Admission.close sh.queue

let worker_loop sh ctx =
  let draining_reply =
    Proto.error ~id:Jsonx.Null ~reason:"draining" "server is shutting down"
  in
  let rec loop () =
    match Admission.take sh.queue with
    | None -> ()
    | Some fd ->
        (* A connection admitted before the drain started is served;
           one that is still queued when we notice the drain gets an
           explicit refusal rather than a silent close. *)
        if Atomic.get sh.draining then begin
          Atomic.incr sh.metrics.Metrics.rejected_draining;
          refuse sh.metrics fd draining_reply
        end
        else begin
          Session.handle ctx fd;
          close_quiet fd
        end;
        loop ()
  in
  loop ()

(* The metrics dumper: one NDJSON line per interval, each the full obs
   snapshot (versioned Snap shape) — a flight recorder for the daemon's
   whole metric plane.  Append mode: restarts extend the series.  The
   drain flag is polled in 50 ms steps so shutdown never waits out a
   long interval, and one final line lands after the drain so the
   series always ends with the daemon's last state. *)
let dump_loop sh path =
  let interval = max 50 sh.cfg.metrics_dump_interval_ms in
  match
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  with
  | exception Sys_error _ -> ()
  | oc ->
      let emit () =
        match Dlz_obs.Snap.to_json (Dlz_obs.Registry.collect ()) with
        | line ->
            output_string oc line;
            output_char oc '\n';
            flush oc
        | exception _ -> ()
      in
      let rec wait remaining_ms =
        if Atomic.get sh.draining || remaining_ms <= 0 then ()
        else begin
          Unix.sleepf (float_of_int (min 50 remaining_ms) /. 1000.);
          wait (remaining_ms - 50)
        end
      in
      let rec loop () =
        if Atomic.get sh.draining then ()
        else begin
          emit ();
          wait interval;
          loop ()
        end
      in
      loop ();
      emit ();
      close_out_noerr oc

let start cfg =
  (* A client that disappears mid-write otherwise kills the process
     with SIGPIPE; writes then fail with EPIPE, which [Frame] contains. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let loaded =
    match cfg.snapshot_load with
    | None -> None
    | Some path -> Some (Persist.load path)
  in
  match Addr.listen cfg.address with
  | Error m -> Error m
  | Ok (lsock, resolved) ->
      Unix.set_nonblock lsock;
      let sh =
        {
          cfg;
          lsock;
          queue = Admission.create ~capacity:cfg.queue_capacity;
          metrics = Metrics.create ();
          draining = Atomic.make false;
        }
      in
      let budget =
        Budget.create ?fuel:cfg.global_fuel ?timeout_ms:cfg.global_timeout_ms ()
      in
      (* The live daemon owns the "serve" and "clients" collectors
         (replace semantics — the latest server wins, which is what
         sequential test servers need). *)
      let attrib = Attrib.create () in
      Metrics.register_obs sh.metrics;
      Attrib.register_obs attrib;
      let ctx =
        {
          Session.metrics = sh.metrics;
          attrib;
          budget;
          request_fuel = cfg.request_fuel;
          request_timeout_ms = cfg.request_timeout_ms;
          max_frame = cfg.max_frame;
          cascade = cfg.cascade;
          draining = (fun () -> Atomic.get sh.draining);
          request_shutdown = (fun () -> Atomic.set sh.draining true);
        }
      in
      let accept_dom = Domain.spawn (fun () -> accept_loop sh) in
      let worker_doms =
        List.init (max 1 cfg.workers) (fun _ ->
            Domain.spawn (fun () -> worker_loop sh ctx))
      in
      let dump_dom =
        Option.map
          (fun path -> Domain.spawn (fun () -> dump_loop sh path))
          cfg.metrics_dump
      in
      Ok
        {
          sh;
          resolved;
          loaded;
          accept_dom;
          worker_doms;
          dump_dom;
          joined = None;
        }

let join t =
  match t.joined with
  | Some s -> s
  | None ->
      Domain.join t.accept_dom;
      List.iter Domain.join t.worker_doms;
      Option.iter Domain.join t.dump_dom;
      (match t.resolved with
      | Addr.Unix_sock p -> ( try Sys.remove p with Sys_error _ -> ())
      | Addr.Tcp _ -> ());
      let saved =
        match t.sh.cfg.snapshot_save with
        | None -> None
        | Some path -> Some (Persist.save path)
      in
      let s =
        {
          sm_metrics = Metrics.snapshot t.sh.metrics;
          sm_loaded = t.loaded;
          sm_saved = saved;
        }
      in
      t.joined <- Some s;
      s
