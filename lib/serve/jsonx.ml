(* A minimal JSON value type, parser, and printer for the wire
   protocol.  The repo deliberately carries no third-party JSON
   dependency; frames are small (bounded by [Frame] before they reach
   the parser), so a plain recursive-descent parser with an explicit
   depth bound is all the robustness the daemon needs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* {2 Printing} *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  write b v;
  Buffer.contents b

(* {2 Parsing} *)

(* Nesting bound: adversarial input like ["[[[[...."] must not blow the
   stack; 64 levels is far beyond any legitimate request. *)
let max_depth = 64

type state = { s : string; len : int; mutable pos : int }

let peek st = if st.pos < st.len then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail "expected %c at byte %d, got %c" c st.pos d
  | None -> fail "expected %c at byte %d, got end of input" c st.pos

let literal st word v =
  let n = String.length word in
  if st.pos + n <= st.len && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail "bad literal at byte %d" st.pos

let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex4 st =
  if st.pos + 4 > st.len then fail "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.s.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad hex digit %c in \\u escape" c
    in
    v := (!v lsl 4) lor d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= st.len then fail "unterminated string";
    let c = st.s.[st.pos] in
    advance st;
    match c with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if st.pos >= st.len then fail "unterminated escape";
        let e = st.s.[st.pos] in
        advance st;
        match e with
        | '"' | '\\' | '/' ->
            Buffer.add_char b e;
            go ()
        | 'n' ->
            Buffer.add_char b '\n';
            go ()
        | 't' ->
            Buffer.add_char b '\t';
            go ()
        | 'r' ->
            Buffer.add_char b '\r';
            go ()
        | 'b' ->
            Buffer.add_char b '\b';
            go ()
        | 'f' ->
            Buffer.add_char b '\012';
            go ()
        | 'u' ->
            add_utf8 b (hex4 st);
            go ()
        | e -> fail "bad escape \\%c" e)
    | c ->
        Buffer.add_char b c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
        advance st;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.s start (st.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "bad number %S" s
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
        (* Integer out of OCaml's 63-bit range: degrade to float rather
           than refuse the frame. *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "bad number %S" s)

let rec parse_value st depth =
  if depth > max_depth then fail "nesting deeper than %d" max_depth;
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st (depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected , or ] at byte %d" st.pos
        in
        List (items [])
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st (depth + 1) in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (kv :: acc)
          | Some '}' ->
              advance st;
              List.rev (kv :: acc)
          | _ -> fail "expected , or } at byte %d" st.pos
        in
        Obj (fields [])
      end
  | Some c -> fail "unexpected %c at byte %d" c st.pos

let parse s =
  let st = { s; len = String.length s; pos = 0 } in
  try
    let v = parse_value st 0 in
    skip_ws st;
    if st.pos <> st.len then Error (Printf.sprintf "trailing bytes at %d" st.pos)
    else Ok v
  with Bad m -> Error m

(* {2 Accessors} *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 1e15 ->
      Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
