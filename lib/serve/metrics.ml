(* Serve-layer counters, all Atomic so every domain records freely.
   The engine-side numbers (cache hits, degradations, ...) live in
   [Dlz_engine.Stats]; these cover what only the daemon can see:
   connections, frames, faults at the socket boundary, shed load. *)

type t = {
  accepted : int Atomic.t;  (* connections admitted to the queue *)
  shed : int Atomic.t;  (* connections refused: queue full *)
  rejected_draining : int Atomic.t;  (* connections refused: draining *)
  active : int Atomic.t;  (* connections being served right now *)
  requests : int Atomic.t;  (* well-framed requests received *)
  responses : int Atomic.t;  (* ok:true frames sent *)
  errors : int Atomic.t;  (* ok:false frames sent (any reason) *)
  malformed : int Atomic.t;  (* frames that violated framing or JSON *)
  disconnects : int Atomic.t;  (* connections lost mid-stream *)
  timeouts : int Atomic.t;  (* reads that hit the idle timeout *)
  contained : int Atomic.t;  (* dispatch faults turned into one error *)
}

type snapshot = {
  s_accepted : int;
  s_shed : int;
  s_rejected_draining : int;
  s_active : int;
  s_requests : int;
  s_responses : int;
  s_errors : int;
  s_malformed : int;
  s_disconnects : int;
  s_timeouts : int;
  s_contained : int;
}

let create () =
  {
    accepted = Atomic.make 0;
    shed = Atomic.make 0;
    rejected_draining = Atomic.make 0;
    active = Atomic.make 0;
    requests = Atomic.make 0;
    responses = Atomic.make 0;
    errors = Atomic.make 0;
    malformed = Atomic.make 0;
    disconnects = Atomic.make 0;
    timeouts = Atomic.make 0;
    contained = Atomic.make 0;
  }

let snapshot t =
  {
    s_accepted = Atomic.get t.accepted;
    s_shed = Atomic.get t.shed;
    s_rejected_draining = Atomic.get t.rejected_draining;
    s_active = Atomic.get t.active;
    s_requests = Atomic.get t.requests;
    s_responses = Atomic.get t.responses;
    s_errors = Atomic.get t.errors;
    s_malformed = Atomic.get t.malformed;
    s_disconnects = Atomic.get t.disconnects;
    s_timeouts = Atomic.get t.timeouts;
    s_contained = Atomic.get t.contained;
  }

(* Cumulative counters go back to zero; [active] is a live gauge
   tracking connections currently being served, so a reset must not
   touch it (zeroing it would make the next disconnect go negative). *)
let reset t =
  Atomic.set t.accepted 0;
  Atomic.set t.shed 0;
  Atomic.set t.rejected_draining 0;
  Atomic.set t.requests 0;
  Atomic.set t.responses 0;
  Atomic.set t.errors 0;
  Atomic.set t.malformed 0;
  Atomic.set t.disconnects 0;
  Atomic.set t.timeouts 0;
  Atomic.set t.contained 0

let obs_samples t =
  let open Dlz_obs.Registry in
  let counter ?labels help name v = sample ~help ?labels name (Counter v) in
  [
    counter ~labels:[ ("outcome", "accepted") ]
      "connections by admission outcome" "vic_serve_connections_total"
      (Atomic.get t.accepted);
    counter ~labels:[ ("outcome", "shed") ]
      "connections by admission outcome" "vic_serve_connections_total"
      (Atomic.get t.shed);
    counter ~labels:[ ("outcome", "rejected_draining") ]
      "connections by admission outcome" "vic_serve_connections_total"
      (Atomic.get t.rejected_draining);
    sample ~help:"connections being served right now" "vic_serve_active"
      (Gauge (float_of_int (Atomic.get t.active)));
    counter "well-framed requests received" "vic_serve_requests_total"
      (Atomic.get t.requests);
    counter "ok:true frames sent" "vic_serve_responses_total"
      (Atomic.get t.responses);
    counter "ok:false frames sent" "vic_serve_errors_total"
      (Atomic.get t.errors);
    counter "frames violating framing or JSON" "vic_serve_malformed_total"
      (Atomic.get t.malformed);
    counter "connections lost mid-stream" "vic_serve_disconnects_total"
      (Atomic.get t.disconnects);
    counter "reads that hit the idle timeout" "vic_serve_timeouts_total"
      (Atomic.get t.timeouts);
    counter "dispatch faults contained to one error reply"
      "vic_serve_contained_total" (Atomic.get t.contained);
  ]

(* Replace semantics in the registry: the latest daemon to start owns
   the "serve" collector, which is exactly right for sequential test
   servers.  The reset hook folds these counters into
   [Engine.reset_metrics] coverage. *)
let register_obs t =
  Dlz_obs.Registry.register ~name:"serve" ~reset:(fun () -> reset t)
    (fun () -> obs_samples t)

let snapshot_to_json s =
  Printf.sprintf
    "{\"accepted\":%d,\"shed\":%d,\"rejected_draining\":%d,\"active\":%d,\
     \"requests\":%d,\"responses\":%d,\"errors\":%d,\"malformed\":%d,\
     \"disconnects\":%d,\"timeouts\":%d,\"contained\":%d}"
    s.s_accepted s.s_shed s.s_rejected_draining s.s_active s.s_requests
    s.s_responses s.s_errors s.s_malformed s.s_disconnects s.s_timeouts
    s.s_contained

let to_json t = snapshot_to_json (snapshot t)
