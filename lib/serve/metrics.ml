(* Serve-layer counters, all Atomic so every domain records freely.
   The engine-side numbers (cache hits, degradations, ...) live in
   [Dlz_engine.Stats]; these cover what only the daemon can see:
   connections, frames, faults at the socket boundary, shed load. *)

type t = {
  accepted : int Atomic.t;  (* connections admitted to the queue *)
  shed : int Atomic.t;  (* connections refused: queue full *)
  rejected_draining : int Atomic.t;  (* connections refused: draining *)
  active : int Atomic.t;  (* connections being served right now *)
  requests : int Atomic.t;  (* well-framed requests received *)
  responses : int Atomic.t;  (* ok:true frames sent *)
  errors : int Atomic.t;  (* ok:false frames sent (any reason) *)
  malformed : int Atomic.t;  (* frames that violated framing or JSON *)
  disconnects : int Atomic.t;  (* connections lost mid-stream *)
  timeouts : int Atomic.t;  (* reads that hit the idle timeout *)
  contained : int Atomic.t;  (* dispatch faults turned into one error *)
}

type snapshot = {
  s_accepted : int;
  s_shed : int;
  s_rejected_draining : int;
  s_active : int;
  s_requests : int;
  s_responses : int;
  s_errors : int;
  s_malformed : int;
  s_disconnects : int;
  s_timeouts : int;
  s_contained : int;
}

let create () =
  {
    accepted = Atomic.make 0;
    shed = Atomic.make 0;
    rejected_draining = Atomic.make 0;
    active = Atomic.make 0;
    requests = Atomic.make 0;
    responses = Atomic.make 0;
    errors = Atomic.make 0;
    malformed = Atomic.make 0;
    disconnects = Atomic.make 0;
    timeouts = Atomic.make 0;
    contained = Atomic.make 0;
  }

let snapshot t =
  {
    s_accepted = Atomic.get t.accepted;
    s_shed = Atomic.get t.shed;
    s_rejected_draining = Atomic.get t.rejected_draining;
    s_active = Atomic.get t.active;
    s_requests = Atomic.get t.requests;
    s_responses = Atomic.get t.responses;
    s_errors = Atomic.get t.errors;
    s_malformed = Atomic.get t.malformed;
    s_disconnects = Atomic.get t.disconnects;
    s_timeouts = Atomic.get t.timeouts;
    s_contained = Atomic.get t.contained;
  }

let snapshot_to_json s =
  Printf.sprintf
    "{\"accepted\":%d,\"shed\":%d,\"rejected_draining\":%d,\"active\":%d,\
     \"requests\":%d,\"responses\":%d,\"errors\":%d,\"malformed\":%d,\
     \"disconnects\":%d,\"timeouts\":%d,\"contained\":%d}"
    s.s_accepted s.s_shed s.s_rejected_draining s.s_active s.s_requests
    s.s_responses s.s_errors s.s_malformed s.s_disconnects s.s_timeouts
    s.s_contained

let to_json t = snapshot_to_json (snapshot t)
