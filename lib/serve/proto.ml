module Problem = Dlz_deptest.Problem
module Depeq = Dlz_deptest.Depeq
module Dirvec = Dlz_deptest.Dirvec
module Verdict = Dlz_deptest.Verdict
module Poly = Dlz_symbolic.Poly
module Strategy = Dlz_engine.Strategy

(* {2 Requests} *)

type request =
  | Ping
  | Stats
  | Metrics of { format : [ `Prom | `Json ] }
  | Shutdown
  | Query of { problem : Problem.t; fuel : int option; timeout_ms : int option }
  | Analyze of {
      lang : [ `F | `C ];
      source : string;
      assume : (string * int) list;
      fuel : int option;
      timeout_ms : int option;
    }

let op_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Metrics _ -> "metrics"
  | Shutdown -> "shutdown"
  | Query _ -> "query"
  | Analyze _ -> "analyze"

(* Shape bounds on decoded problems.  A request above these is not a
   dependence equation from a real loop nest, it is a resource attack;
   the engine's own budgets bound solving, these bound decoding. *)
let max_eqs = 64
let max_terms = 64
let max_levels = 64
let max_source_bytes = 1 lsl 20

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let int_field ?default j name =
  match Jsonx.member name j with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> fail "missing integer field %S" name)
  | Some v -> (
      match Jsonx.to_int v with
      | Some n -> Ok n
      | None -> fail "field %S must be an integer" name)

let opt_int_field j name =
  match Jsonx.member name j with
  | None -> Ok None
  | Some v -> (
      match Jsonx.to_int v with
      | Some n -> Ok (Some n)
      | None -> fail "field %S must be an integer" name)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let term_of_json j =
  let* coeff = int_field j "coeff" in
  let* level = int_field j "level" in
  let* ub = int_field j "ub" in
  let* side =
    match Jsonx.member "side" j with
    | Some (Jsonx.Str "src") -> Ok `Src
    | Some (Jsonx.Str "dst") -> Ok `Dst
    | _ -> fail "field \"side\" must be \"src\" or \"dst\""
  in
  let name =
    match Option.bind (Jsonx.member "name" j) Jsonx.to_str with
    | Some n -> n
    | None ->
        Printf.sprintf "%c%d" (match side with `Src -> 'i' | `Dst -> 'j') level
  in
  if ub < 0 then fail "term upper bound %d is negative" ub
  else if level < 0 || level > max_levels then fail "bad level %d" level
  else Ok (coeff, Depeq.var ~side ~level name ub)

let eq_of_json j =
  let* c0 = int_field ~default:0 j "c0" in
  let* terms =
    match Option.bind (Jsonx.member "terms" j) Jsonx.to_list with
    | None -> fail "equation needs a \"terms\" array"
    | Some ts when List.length ts > max_terms ->
        fail "more than %d terms" max_terms
    | Some ts ->
        List.fold_left
          (fun acc t ->
            let* acc = acc in
            let* t = term_of_json t in
            Ok (t :: acc))
          (Ok []) ts
        |> Result.map List.rev
  in
  match Depeq.make c0 terms with
  | eq -> Ok eq
  | exception Invalid_argument m -> fail "bad equation: %s" m

let problem_of_json j =
  let* n_common = int_field ~default:0 j "n_common" in
  let* opaque_dims = int_field ~default:0 j "opaque_dims" in
  let* common_ubs =
    match Jsonx.member "common_ubs" j with
    | None -> Ok [||]
    | Some (Jsonx.List xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match Jsonx.to_int x with
            | Some n when n >= 0 -> Ok (n :: acc)
            | Some n -> fail "negative common upper bound %d" n
            | None -> fail "\"common_ubs\" must hold integers")
          (Ok []) xs
        |> Result.map (fun l -> Array.of_list (List.rev l))
    | Some _ -> fail "\"common_ubs\" must be an array"
  in
  if n_common < 0 || n_common > max_levels then fail "bad n_common %d" n_common
  else if opaque_dims < 0 then fail "bad opaque_dims %d" opaque_dims
  else if Array.length common_ubs <> n_common then
    fail "common_ubs has %d entries for n_common %d" (Array.length common_ubs)
      n_common
  else
    let* eqs =
      match Option.bind (Jsonx.member "eqs" j) Jsonx.to_list with
      | None -> fail "problem needs an \"eqs\" array"
      | Some es when List.length es > max_eqs ->
          fail "more than %d equations" max_eqs
      | Some es ->
          List.fold_left
            (fun acc e ->
              let* acc = acc in
              let* eq = eq_of_json e in
              Ok (eq :: acc))
            (Ok []) es
          |> Result.map List.rev
    in
    Ok
      (Problem.synthetic
         { Problem.n_common; common_ubs; eqs; opaque_dims })

let var_to_json (v : Depeq.var) =
  Jsonx.Obj
    [
      ("side", Jsonx.Str (match v.Depeq.v_side with `Src -> "src" | `Dst -> "dst"));
      ("level", Jsonx.Int v.Depeq.v_level);
      ("ub", Jsonx.Int v.Depeq.v_ub);
      ("name", Jsonx.Str v.Depeq.v_name);
    ]

let eq_to_json (eq : Depeq.t) =
  Jsonx.Obj
    [
      ("c0", Jsonx.Int eq.Depeq.c0);
      ( "terms",
        Jsonx.List
          (List.map
             (fun (t : Depeq.term) ->
               match var_to_json t.Depeq.var with
               | Jsonx.Obj fields ->
                   Jsonx.Obj (("coeff", Jsonx.Int t.Depeq.coeff) :: fields)
               | j -> j)
             eq.Depeq.terms) );
    ]

let problem_to_json (np : Problem.numeric) =
  Jsonx.Obj
    [
      ("n_common", Jsonx.Int np.Problem.n_common);
      ( "common_ubs",
        Jsonx.List
          (Array.to_list (Array.map (fun n -> Jsonx.Int n) np.Problem.common_ubs))
      );
      ("opaque_dims", Jsonx.Int np.Problem.opaque_dims);
      ("eqs", Jsonx.List (List.map eq_to_json np.Problem.eqs));
    ]

(* The self-declared client name riding on any request; the session
   uses it to key per-client attribution.  Absent or non-string means
   the default bucket. *)
let client_of j =
  match Option.bind (Jsonx.member "client" j) Jsonx.to_str with
  | Some c when String.trim c <> "" -> c
  | _ -> "anon"

let parse_request j =
  let id = Option.value (Jsonx.member "id" j) ~default:Jsonx.Null in
  let req =
    match Option.bind (Jsonx.member "op" j) Jsonx.to_str with
    | None -> fail "missing \"op\" field"
    | Some "ping" -> Ok Ping
    | Some "stats" -> Ok Stats
    | Some "metrics" -> (
        match Jsonx.member "format" j with
        | None | Some (Jsonx.Str "prom") -> Ok (Metrics { format = `Prom })
        | Some (Jsonx.Str "json") -> Ok (Metrics { format = `Json })
        | Some (Jsonx.Str f) -> fail "unknown metrics format %S" f
        | Some _ -> fail "field \"format\" must be \"prom\" or \"json\"")
    | Some "shutdown" -> Ok Shutdown
    | Some "query" -> (
        let* fuel = opt_int_field j "fuel" in
        let* timeout_ms = opt_int_field j "timeout_ms" in
        match Jsonx.member "problem" j with
        | None -> fail "query needs a \"problem\" object"
        | Some pj ->
            let* problem = problem_of_json pj in
            Ok (Query { problem; fuel; timeout_ms }))
    | Some "analyze" -> (
        let* fuel = opt_int_field j "fuel" in
        let* timeout_ms = opt_int_field j "timeout_ms" in
        let* lang =
          match Option.bind (Jsonx.member "lang" j) Jsonx.to_str with
          | None | Some "f" | Some "f77" -> Ok `F
          | Some "c" -> Ok `C
          | Some l -> fail "unknown lang %S" l
        in
        let* assume =
          match Jsonx.member "assume" j with
          | None -> Ok []
          | Some (Jsonx.Obj fields) ->
              List.fold_left
                (fun acc (k, v) ->
                  let* acc = acc in
                  match Jsonx.to_int v with
                  | Some n -> Ok ((k, n) :: acc)
                  | None -> fail "assumption %S must be an integer" k)
                (Ok []) fields
              |> Result.map List.rev
          | Some _ -> fail "\"assume\" must be an object"
        in
        match Option.bind (Jsonx.member "source" j) Jsonx.to_str with
        | None -> fail "analyze needs a \"source\" string"
        | Some s when String.length s > max_source_bytes ->
            fail "source larger than %d bytes" max_source_bytes
        | Some source -> Ok (Analyze { lang; source; assume; fuel; timeout_ms }))
    | Some op -> fail "unknown op %S" op
  in
  (id, req)

(* {2 Responses} *)

(* Every response echoes the client-chosen [id], and — when the
   session assigned one — the server-side monotonic request id [rid].
   The rid is what correlates a response with the daemon's trace spans
   and logs; refusal paths (overload, draining) have no request to
   number and omit it. *)
let response ?rid ~id fields =
  let rid_field =
    match rid with None -> [] | Some n -> [ ("rid", Jsonx.Int n) ]
  in
  Jsonx.to_string (Jsonx.Obj ((("id", id) :: rid_field) @ fields))

let ok ?rid ~id ~op fields =
  response ?rid ~id (("ok", Jsonx.Bool true) :: ("op", Jsonx.Str op) :: fields)

let error ?rid ~id ~reason ?retry_after_ms msg =
  response ?rid ~id
    ([ ("ok", Jsonx.Bool false); ("reason", Jsonx.Str reason);
       ("error", Jsonx.Str msg) ]
    @
    match retry_after_ms with
    | None -> []
    | Some ms -> [ ("retry_after_ms", Jsonx.Int ms) ])

let result_fields (r : Strategy.result) =
  [
    ("verdict", Jsonx.Str (Verdict.to_string r.Strategy.verdict));
    ("decided_by", Jsonx.Str r.Strategy.decided_by);
    ( "dirvecs",
      Jsonx.List
        (List.map (fun dv -> Jsonx.Str (Dirvec.to_string dv)) r.Strategy.dirvecs)
    );
    ( "distances",
      Jsonx.List
        (List.map
           (fun (lvl, p) ->
             Jsonx.Obj
               [
                 ("level", Jsonx.Int lvl);
                 ( "distance",
                   match Poly.to_const p with
                   | Some c -> Jsonx.Int c
                   | None -> Jsonx.Str (Poly.to_string p) );
               ])
           r.Strategy.distances) );
    ( "degraded",
      Jsonx.List
        (List.map
           (fun (s, reason) ->
             Jsonx.Obj [ ("strategy", Jsonx.Str s); ("reason", Jsonx.Str reason) ])
           r.Strategy.degraded) );
  ]
