(* A small blocking client — what the tests, the chaos battery, and
   the load generator speak through.  Also the reference
   implementation for anyone scripting against the daemon. *)

type t = { fd : Unix.file_descr }

let connect ?(timeout_ms = 10_000) addr =
  match Addr.connect addr with
  | Error _ as e -> e
  | Ok fd ->
      (try
         let to_s = float_of_int timeout_ms /. 1000. in
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO to_s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO to_s
       with Unix.Unix_error _ -> ());
      Ok { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t json =
  match Frame.write t.fd (Jsonx.to_string json) with
  | Ok () -> Ok ()
  | Error e -> Error (Frame.error_to_string e)

(* Raw unframed bytes, bypassing [Frame] (and its chaos strikes): how
   the tests play a misbehaving client — garbage length lines, torn
   frames, half-written payloads. *)
let send_raw t s =
  let b = Bytes.unsafe_of_string s in
  let rec go off len =
    if len = 0 then Ok ()
    else
      match Unix.write t.fd b off len with
      | k -> go (off + k) (len - k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0 (String.length s)

let recv ?max_bytes t =
  match Frame.read ?max_bytes t.fd with
  | Error e -> Error (Frame.error_to_string e)
  | Ok payload -> (
      match Jsonx.parse payload with
      | Ok j -> Ok j
      | Error m -> Error ("unparseable response: " ^ m))

let request t json =
  match send t json with Error _ as e -> e | Ok () -> recv t

(* Collect a streamed response: frames up to and including the first
   terminal one (an [ok:false] error, or an [ok:true] frame whose op
   is not ["pair"] — i.e. the summary).  [limit] bounds a runaway
   stream. *)
let read_stream ?(limit = 100_000) t =
  let rec go acc n =
    if n >= limit then Error "response stream exceeded limit"
    else
      match recv t with
      | Error _ as e -> e
      | Ok j -> (
          let acc = j :: acc in
          match (Jsonx.member "ok" j, Jsonx.member "op" j) with
          | Some (Jsonx.Bool false), _ -> Ok (List.rev acc)
          | _, Some (Jsonx.Str "pair") -> go acc (n + 1)
          | _, _ -> Ok (List.rev acc))
  in
  go [] 0
