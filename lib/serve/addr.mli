(** Server addresses: a unix-domain socket path or a TCP host:port. *)

type t = Unix_sock of string | Tcp of string * int

val to_string : t -> string

val of_string : string -> (t, string) result
(** Accepts ["unix:PATH"], ["tcp:HOST:PORT"], a bare path (leading [/]
    or [.]), or bare ["HOST:PORT"] (empty host means loopback). *)

val listen : ?backlog:int -> t -> (Unix.file_descr * t, string) result
(** Binds and listens.  For [Unix_sock] a stale socket file is removed
    first; for [Tcp] the returned address carries the resolved port
    (so port [0] requests an ephemeral one).  Never raises. *)

val connect : t -> (Unix.file_descr, string) result
