(** The overload-safe dependence-query daemon.

    Topology: one accept-loop domain multiplexing the listening socket
    (100 ms poll of the drain flag), a {!Admission} bounded queue, and
    [workers] session domains each owning one connection at a time.
    Admission control is immediate and explicit — a full queue answers
    [{"ok":false,"reason":"overloaded","retry_after_ms":..}] and
    closes; nothing queues unboundedly.  Each request carves its
    budget from one server-lifetime budget via [Budget.sub], so no
    request deadline can outlive the server's own.

    Shutdown is a drain, not a kill: {!stop} (wired to SIGTERM/SIGINT
    by the CLI, and to the [shutdown] op by the session) flips one
    atomic; the accept loop closes the socket, queued admitted
    connections are refused with ["draining"], in-flight requests
    finish, and {!join} snapshots the warm cache on the way down. *)

type config = {
  address : Addr.t;
  workers : int;
  queue_capacity : int;
  max_frame : int;
  idle_timeout_ms : int;
      (** Per-read receive timeout: the slow-loris bound, and the
          worst-case drain latency for a connection idling in a read. *)
  retry_after_ms : int;
  request_fuel : int option;
  request_timeout_ms : int option;
  global_fuel : int option;
  global_timeout_ms : int option;
  cascade : Dlz_engine.Cascade.t option;
  snapshot_load : string option;
  snapshot_save : string option;
  metrics_dump : string option;
      (** Append one NDJSON line per interval to this path — the full
          obs snapshot in the versioned {!Dlz_obs.Snap} shape — plus a
          final line after the drain.  A flight recorder for the
          metric plane; restarts extend the series. *)
  metrics_dump_interval_ms : int;  (** Clamped to at least 50 ms. *)
}

val default_config : Addr.t -> config
(** 2 workers, queue 64, 4 MiB frames, 10 s idle timeout, 2 s
    per-request deadline, 50 ms retry hint, no snapshots, no metrics
    dump (1 s interval when one is enabled). *)

type summary = {
  sm_metrics : Metrics.snapshot;
  sm_loaded : (int, string) result option;
      (** Warm-start outcome when [snapshot_load] was set. *)
  sm_saved : (int, string) result option;
      (** Drain-snapshot outcome when [snapshot_save] was set. *)
}

type t

val start : config -> (t, string) result
(** Binds, warm-starts (optionally), spawns the domains, returns
    immediately.  Ignores [SIGPIPE] process-wide (a vanished client
    must be an [EPIPE], not a kill). *)

val address : t -> Addr.t
(** Resolved: a TCP port-0 request carries the actual port. *)

val metrics : t -> Metrics.t
val stop : t -> unit
(** Trigger the drain; idempotent, safe from any domain or signal
    handler. *)

val stopped : t -> bool

val join : t -> summary
(** Waits for the drain to complete (worst case: one idle timeout plus
    the longest in-flight request), saves the drain snapshot, removes
    a unix socket file, and reports.  Idempotent. *)
