(** A small blocking client for the daemon — used by the tests, the
    chaos battery, and the load generator, and the reference for
    scripting against the wire protocol. *)

type t

val connect : ?timeout_ms:int -> Addr.t -> (t, string) result
(** Sets both socket timeouts to [timeout_ms] (default 10 s) so a dead
    server cannot hang the caller. *)

val close : t -> unit

val send : t -> Jsonx.t -> (unit, string) result
(** One framed request.  Subject to the chaos io-strike points, like
    any well-behaved peer. *)

val send_raw : t -> string -> (unit, string) result
(** Raw bytes, no framing, no chaos: how tests play a misbehaving
    client. *)

val recv : ?max_bytes:int -> t -> (Jsonx.t, string) result
(** One response frame, parsed. *)

val request : t -> Jsonx.t -> (Jsonx.t, string) result
(** [send] then [recv]. *)

val read_stream : ?limit:int -> t -> (Jsonx.t list, string) result
(** Collect a streamed response: every frame up to and including the
    first terminal one (an error, or a non-["pair"] summary). *)
