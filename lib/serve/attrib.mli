(** Per-client attribution.

    Clients self-identify with an optional ["client"] request field
    (default ["anon"]); the daemon records per-(client, verb) request
    counts and latency histograms, and per-client engine-cache
    dispositions (warm/cold hit, miss, uncacheable), error reasons and
    degradation counts.  Cardinality is capped: past [max_clients]
    distinct names, newcomers fold into the ["other"] bucket, so a
    label-churning client cannot grow the metric space without bound.
    Names are trimmed and truncated to 64 bytes.

    All recording entry points are domain-safe (a mutex guards the
    tables; the cells are [Atomic.t]s and {!Dlz_base.Trace.Hist}s). *)

type t

val default_client : string
(** ["anon"]. *)

val create : ?max_clients:int -> unit -> t
(** [max_clients] defaults to 64 (clamped to at least 1). *)

val observe_request : t -> client:string -> verb:string -> int64 -> unit
(** Record one dispatched request and its wall-clock (nanoseconds,
    socket to socket). *)

val record_disposition : t -> client:string -> Dlz_engine.Query.disposition -> unit
(** The engine-cache disposition of one query this client caused —
    wire this as the [?observer] of {!Dlz_engine.Engine.query}. *)

val record_error : t -> client:string -> reason:string -> unit
val record_degraded : t -> client:string -> unit

val reset : t -> unit
(** Forget every client. *)

val register_obs : t -> unit
(** Installs the ["clients"] collector in {!Dlz_obs.Registry}
    ([vic_client_*] families; zero-valued series are suppressed) with
    {!reset} as the reset hook. *)
