(** The request/response vocabulary of the wire protocol.

    Requests are single JSON objects (one per frame) with an [op]
    field and an optional client-chosen [id], echoed verbatim on every
    response frame belonging to that request.  Decoding is total and
    bounded: shape violations come back as [Error] strings (which the
    session turns into one ["bad-request"] reply), and structural
    bounds (≤ 64 equations / terms / levels, ≤ 1 MiB of source) reject
    resource-attack payloads before any solving starts. *)

type request =
  | Ping
  | Stats
  | Metrics of { format : [ `Prom | `Json ] }
      (** Scrape the {!Dlz_obs.Registry}: Prometheus exposition text
          (default) or the versioned {!Dlz_obs.Snap} JSON shape. *)
  | Shutdown
  | Query of {
      problem : Dlz_deptest.Problem.t;
      fuel : int option;
      timeout_ms : int option;
    }
  | Analyze of {
      lang : [ `F | `C ];
      source : string;
      assume : (string * int) list;
      fuel : int option;
      timeout_ms : int option;
    }

val op_name : request -> string

val parse_request : Jsonx.t -> Jsonx.t * (request, string) result
(** Returns the echoed [id] (Null when absent) alongside the decoded
    request. *)

val client_of : Jsonx.t -> string
(** The self-declared ["client"] name riding on a request, for
    per-client attribution; ["anon"] when absent, non-string, or
    blank. *)

val problem_of_json : Jsonx.t -> (Dlz_deptest.Problem.t, string) result
(** Decodes the native numeric-problem encoding: [{"n_common":N,
    "common_ubs":[..], "opaque_dims":N, "eqs":[{"c0":N, "terms":
    [{"coeff":N,"side":"src"|"dst","level":N,"ub":N,"name":S?}]}]}]
    and lifts it via [Problem.synthetic]. *)

val problem_to_json : Dlz_deptest.Problem.numeric -> Jsonx.t
(** Inverse direction, for clients and the load generator. *)

val ok : ?rid:int -> id:Jsonx.t -> op:string -> (string * Jsonx.t) list -> string
(** One rendered [{"id":..,"ok":true,"op":..,...}] response payload.
    [rid], when given, is echoed as a ["rid"] field — the server-side
    monotonic request id that correlates the response with the
    daemon's trace spans. *)

val error :
  ?rid:int ->
  id:Jsonx.t ->
  reason:string ->
  ?retry_after_ms:int ->
  string ->
  string
(** One rendered [{"id":..,"ok":false,"reason":..,"error":..}] payload.
    [reason] is machine-readable: ["overloaded"], ["draining"],
    ["bad-request"], ["protocol"], ["timeout"], or ["internal"];
    [rid] as in {!ok} (refusal paths have none). *)

val result_fields : Dlz_engine.Strategy.result -> (string * Jsonx.t) list
(** verdict / decided_by / dirvecs / distances / degraded fields of a
    query result, ready to splice into {!ok}. *)
