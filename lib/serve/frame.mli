(** Length-framed NDJSON wire format.

    One frame is [<decimal byte length>\n<payload>\n].  The leading
    length lets the reader bound allocation before reading the payload
    and makes torn input detectable; the trailing newline keeps the
    stream greppable as NDJSON when captured.

    Both directions consult the {!Dlz_engine.Chaos} io-strike points
    (["frame.read"] / ["frame.write"], keyed by payload) so the serve
    test battery can deterministically tear frames, drop connections
    mid-stream, and dribble writes. *)

type error =
  | Eof  (** clean close between frames *)
  | Timeout  (** the peer stalled past the socket receive timeout *)
  | Too_large of int  (** declared length above the frame bound *)
  | Malformed of string  (** framing violated; the stream cannot resync *)
  | Io of string  (** the connection died mid-frame *)

val error_to_string : error -> string

val default_max_bytes : int
(** 4 MiB. *)

val encode : string -> string
(** The raw bytes of one frame carrying [payload]. *)

val read : ?max_bytes:int -> Unix.file_descr -> (string, error) result
(** Blocking read of one frame's payload.  Socket receive timeouts
    ([SO_RCVTIMEO]) surface as [Timeout].  Never raises. *)

val write : Unix.file_descr -> string -> (unit, error) result
(** Blocking write of one frame.  [EPIPE]/reset surface as [Io];
    [SIGPIPE] must be ignored process-wide (the server does this).
    Never raises. *)
