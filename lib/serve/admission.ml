(* The bounded accept queue: the server's only buffer between the
   accept loop and the worker domains.  Boundedness is the point —
   under overload the accept loop gets an immediate [Shed] and answers
   the client with an explicit overload reply instead of queueing it
   into an unbounded latency grave. *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
  q : 'a Queue.t;
  mutable closed : bool;
  admitted : int Atomic.t;
  shed : int Atomic.t;
}

type verdict = Admitted | Shed | Closed

let create ~capacity =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    capacity = max 1 capacity;
    q = Queue.create ();
    closed = false;
    admitted = Atomic.make 0;
    shed = Atomic.make 0;
  }

let capacity t = t.capacity

let length t =
  Mutex.lock t.lock;
  let n = Queue.length t.q in
  Mutex.unlock t.lock;
  n

let admitted t = Atomic.get t.admitted
let shed t = Atomic.get t.shed

let try_admit t x =
  Mutex.lock t.lock;
  let v =
    if t.closed then Closed
    else if Queue.length t.q >= t.capacity then Shed
    else begin
      Queue.push x t.q;
      Condition.signal t.nonempty;
      Admitted
    end
  in
  Mutex.unlock t.lock;
  (match v with
  | Admitted -> Atomic.incr t.admitted
  | Shed -> Atomic.incr t.shed
  | Closed -> ());
  v

let take t =
  Mutex.lock t.lock;
  let rec go () =
    (* Drain-before-exit: items queued before [close] are still
       handed out, so admitted connections are served, not dropped. *)
    if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
    else if t.closed then None
    else begin
      Condition.wait t.nonempty t.lock;
      go ()
    end
  in
  let v = go () in
  Mutex.unlock t.lock;
  v

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock
