(** Per-connection request loop, run on a worker domain.

    The containment contract mirrors the strategy cascade's: any fault
    while serving one request — a raising solver, a malformed frame, a
    mid-stream disconnect, an injected chaos fault — costs at most
    that one connection one error response; the worker domain, the
    other connections, and the process are untouched.  Framing
    violations close the connection (the byte stream cannot resync);
    well-framed garbage (bad JSON, bad request shape) costs one
    ["bad-request"] reply and the connection continues. *)

type ctx = {
  metrics : Metrics.t;
  attrib : Attrib.t;
      (** Per-client attribution; every dispatched request records its
          latency here, and engine queries report their cache
          disposition through it. *)
  budget : Dlz_base.Budget.t;
      (** The server-lifetime budget; each request carves a child from
          it with [Budget.sub], so request deadlines can never outlive
          a server shutdown deadline. *)
  request_fuel : int option;
      (** Per-request ceilings.  A request's own [fuel]/[timeout_ms]
          fields are honored only downward (min with the ceiling). *)
  request_timeout_ms : int option;
  max_frame : int;
  cascade : Dlz_engine.Cascade.t option;
  draining : unit -> bool;
      (** Checked between requests: when true the loop finishes the
          in-flight request and closes. *)
  request_shutdown : unit -> unit;  (** Wired to the server's [stop]. *)
}

val fresh_rid : unit -> int
(** The next server-side request id: one process-wide monotonic
    counter, so a rid names a request uniquely across connections and
    workers.  Echoed as the ["rid"] response field and attached to the
    request's trace span and the engine query spans it causes. *)

val handle : ctx -> Unix.file_descr -> unit
(** Serve one connection to completion.  Never raises; does not close
    [fd] (the caller owns it). *)
