module Budget = Dlz_base.Budget
module Trace = Dlz_base.Trace
module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Analyze = Dlz_engine.Analyze
module Engine = Dlz_engine.Engine
module Stats = Dlz_engine.Stats
module Cascade = Dlz_engine.Cascade
module Verdict = Dlz_deptest.Verdict
module Parallel = Dlz_vec.Parallel

(* One connection, one [handle] call, on whichever worker domain took
   it off the admission queue.  The containment contract mirrors the
   cascade's: any fault while serving one request — a raising solver,
   a malformed frame, a vanished client, an injected chaos fault —
   costs at most that one connection one error response.  [handle]
   itself never raises. *)

type ctx = {
  metrics : Metrics.t;
  attrib : Attrib.t;  (* per-client attribution tables *)
  budget : Budget.t;  (* the server-lifetime budget requests carve from *)
  request_fuel : int option;  (* per-request ceilings (client may ask lower) *)
  request_timeout_ms : int option;
  max_frame : int;
  cascade : Cascade.t option;
  draining : unit -> bool;
  request_shutdown : unit -> unit;
}

(* The server-side request id: one process-wide monotonic counter, so
   a rid names a request uniquely across every connection and worker.
   It is echoed as the response's ["rid"] field and rides on the
   request's trace span (and, via [?annot], on the engine query spans
   it causes) — the correlation key between a client-observed response
   and the daemon's own telemetry. *)
let next_rid = Atomic.make 1
let fresh_rid () = Atomic.fetch_and_add next_rid 1

exception Conn_dead

(* Every frame we fail to deliver means the peer is gone; there is no
   point writing further responses, so sends raise [Conn_dead] and the
   per-connection loop winds down. *)
let send ctx fd payload =
  match Frame.write fd payload with
  | Ok () -> ()
  | Error _ ->
      Atomic.incr ctx.metrics.Metrics.disconnects;
      raise Conn_dead

let send_ok ctx fd ?rid ~id ~op fields =
  send ctx fd (Proto.ok ?rid ~id ~op fields);
  Atomic.incr ctx.metrics.Metrics.responses

let send_error ctx fd ?rid ~id ~reason ?retry_after_ms msg =
  send ctx fd (Proto.error ?rid ~id ~reason ?retry_after_ms msg);
  Atomic.incr ctx.metrics.Metrics.errors

(* A client may ask for less budget than the server's per-request
   ceiling, never more; [Budget.sub] additionally clamps the deadline
   to the server-lifetime budget's. *)
let request_budget ctx ~fuel ~timeout_ms =
  let min_opt a b =
    match (a, b) with
    | Some x, Some y -> Some (min x y)
    | Some x, None | None, Some x -> Some x
    | None, None -> None
  in
  Budget.sub
    ?fuel:(min_opt fuel ctx.request_fuel)
    ?timeout_ms:(min_opt timeout_ms ctx.request_timeout_ms)
    ctx.budget

let stats_payload ctx ~rid ~id =
  (* Engine stats are already rendered JSON; splice the fragment in
     rather than round-tripping it through the parser. *)
  Printf.sprintf
    "{\"id\":%s,\"rid\":%d,\"ok\":true,\"op\":\"stats\",\"serve\":%s,\"engine\":%s}"
    (Jsonx.to_string id) rid
    (Metrics.to_json ctx.metrics)
    (Stats.to_json Stats.global)

(* The JSON metrics body is the Snap codec's single line, spliced in
   raw like the stats fragments; the Prometheus body travels as a JSON
   string field so the frame stays one JSON object either way. *)
let metrics_json_payload ~rid ~id samples =
  Printf.sprintf
    "{\"id\":%s,\"rid\":%d,\"ok\":true,\"op\":\"metrics\",\"format\":\"json\",\
     \"metrics\":%s}"
    (Jsonx.to_string id) rid
    (Dlz_obs.Snap.to_json samples)

let parse_program ~lang source =
  match lang with
  | `C -> Dlz_passes.Pointers.lower (Dlz_frontend.C_parser.parse source)
  | `F -> Dlz_passes.Inline.expand (Dlz_frontend.F77_parser.parse_units source)

let run_analyze ctx fd ~rid ~client ~id ~lang ~source ~assume ~budget =
  let prog = Dlz_passes.Pipeline.prepare_program (parse_program ~lang source) in
  let env =
    List.fold_left (fun env (n, v) -> Assume.assume_ge n v env) Assume.empty
      assume
  in
  let accs, env = Access.of_program ~env prog in
  let cascade = Option.value ctx.cascade ~default:Cascade.delin in
  let indep = ref 0 and dep = ref 0 and inap = ref 0 and pairs = ref 0 in
  (* One annot list and observer closure for the whole request; every
     query span it spawns carries the request id. *)
  let annot = [ ("rid", string_of_int rid); ("client", client) ] in
  let observer = Attrib.record_disposition ctx.attrib ~client in
  (* Streamed: one frame per candidate pair as it is solved, then a
     summary.  Serial on purpose — the daemon's parallelism is across
     connections, and a worker must not re-enter a pool. *)
  Engine.iter_pairs
    (fun (p : Engine.pair) ->
      let r = Engine.query ~cascade ~budget ~annot ~observer ~env
          p.Engine.problem in
      incr pairs;
      (match r.Dlz_engine.Strategy.verdict with
      | Verdict.Independent -> incr indep
      | Verdict.Dependent -> incr dep
      | Verdict.Inapplicable -> incr inap);
      if r.Dlz_engine.Strategy.degraded <> [] then
        Attrib.record_degraded ctx.attrib ~client;
      send_ok ctx fd ~rid ~id ~op:"pair"
        ([
           ("src", Jsonx.Str p.Engine.src.Access.stmt_name);
           ("src_array", Jsonx.Str p.Engine.src.Access.array);
           ("dst", Jsonx.Str p.Engine.dst.Access.stmt_name);
           ("self", Jsonx.Bool p.Engine.self);
         ]
        @ Proto.result_fields r))
    accs;
  let loops = Parallel.report ~cascade ~budget ~env prog in
  let par = List.length (List.filter (fun l -> l.Parallel.lr_parallel) loops) in
  send_ok ctx fd ~rid ~id ~op:"analyze"
    [
      ("pairs", Jsonx.Int !pairs);
      ("independent", Jsonx.Int !indep);
      ("dependent", Jsonx.Int !dep);
      ("inapplicable", Jsonx.Int !inap);
      ("accesses", Jsonx.Int (List.length accs));
      ("loops_parallel", Jsonx.Int par);
      ("loops_serial", Jsonx.Int (List.length loops - par));
      ("done", Jsonx.Bool true);
    ]

(* [true] to keep reading from this connection. *)
let dispatch ctx fd ~rid ~client ~id req =
  match req with
  | Proto.Ping ->
      send_ok ctx fd ~rid ~id ~op:"ping" [];
      true
  | Proto.Stats ->
      send ctx fd (stats_payload ctx ~rid ~id);
      Atomic.incr ctx.metrics.Metrics.responses;
      true
  | Proto.Metrics { format } ->
      let samples = Dlz_obs.Registry.collect () in
      (match format with
      | `Prom ->
          send_ok ctx fd ~rid ~id ~op:"metrics"
            [
              ("format", Jsonx.Str "prom");
              ("body", Jsonx.Str (Dlz_obs.Prom.to_string samples));
            ]
      | `Json ->
          send ctx fd (metrics_json_payload ~rid ~id samples);
          Atomic.incr ctx.metrics.Metrics.responses);
      true
  | Proto.Shutdown ->
      send_ok ctx fd ~rid ~id ~op:"shutdown" [ ("draining", Jsonx.Bool true) ];
      ctx.request_shutdown ();
      false
  | Proto.Query { problem; fuel; timeout_ms } ->
      let budget = request_budget ctx ~fuel ~timeout_ms in
      let r =
        Engine.query
          ?cascade:ctx.cascade
          ~annot:[ ("rid", string_of_int rid); ("client", client) ]
          ~observer:(Attrib.record_disposition ctx.attrib ~client)
          ~budget ~env:Assume.empty problem
      in
      if r.Dlz_engine.Strategy.degraded <> [] then
        Attrib.record_degraded ctx.attrib ~client;
      send_ok ctx fd ~rid ~id ~op:"query" (Proto.result_fields r);
      true
  | Proto.Analyze { lang; source; assume; fuel; timeout_ms } ->
      let budget = request_budget ctx ~fuel ~timeout_ms in
      run_analyze ctx fd ~rid ~client ~id ~lang ~source ~assume ~budget;
      true

(* Faults the frontend can legitimately raise on bad input: one
   bad-request reply, connection keeps going. *)
let describe_input_fault = function
  | Dlz_frontend.Diag.Parse_error _ as e ->
      Some
        (match Dlz_frontend.Diag.describe e with
        | Some m -> m
        | None -> "parse error")
  | Dlz_passes.Pointers.Unsupported m -> Some ("pointer conversion: " ^ m)
  | Dlz_passes.Inline.Unsupported m -> Some ("inlining: " ^ m)
  | Failure m -> Some m
  | _ -> None

let handle_request ctx fd ~rid ~client ~id req =
  (* The request span (empty category — never masked out): the rid on
     its args is the same rid the response echoes, so a trace stream
     and a client log correlate line by line.  The thunk closes over
     immutable data only; it renders at export, not here. *)
  let op = Proto.op_name req in
  let sp =
    Trace.start
      ~lazy_args:(fun () ->
        [ ("rid", string_of_int rid); ("op", op); ("client", client) ])
      "serve.request"
  in
  Fun.protect
    ~finally:(fun () -> Trace.finish sp)
    (fun () ->
      try dispatch ctx fd ~rid ~client ~id req with
      | Conn_dead -> false
      | e -> (
          Atomic.incr ctx.metrics.Metrics.contained;
          let reply reason msg =
            Attrib.record_error ctx.attrib ~client ~reason;
            try
              send_error ctx fd ~rid ~id ~reason msg;
              true
            with Conn_dead -> false
          in
          match describe_input_fault e with
          | Some m -> reply "bad-request" m
          | None -> (
              match e with
              | Budget.Exhausted r -> reply "timeout" ("budget exhausted: " ^ r)
              | Out_of_memory -> reply "internal" "out of memory"
              | Stack_overflow -> reply "internal" "stack overflow"
              | e -> reply "internal" (Printexc.to_string e))))

let handle ctx fd =
  Atomic.incr ctx.metrics.Metrics.active;
  let rec loop () =
    if ctx.draining () then ()
    else
      match Frame.read ~max_bytes:ctx.max_frame fd with
      | Error Frame.Eof -> ()
      | Error Frame.Timeout ->
          (* Idle or slow-loris past the receive timeout: tell the
             peer (best effort) and hang up. *)
          Atomic.incr ctx.metrics.Metrics.timeouts;
          (try send_error ctx fd ~id:Jsonx.Null ~reason:"timeout" "read timed out"
           with Conn_dead -> ())
      | Error (Frame.Too_large n) ->
          Atomic.incr ctx.metrics.Metrics.malformed;
          (try
             send_error ctx fd ~id:Jsonx.Null ~reason:"protocol"
               (Printf.sprintf "frame of %d bytes exceeds %d" n ctx.max_frame)
           with Conn_dead -> ())
      | Error (Frame.Malformed m) ->
          (* Framing is lost: the stream cannot resync, so one error
             frame and the connection closes. *)
          Atomic.incr ctx.metrics.Metrics.malformed;
          (try send_error ctx fd ~id:Jsonx.Null ~reason:"protocol" m
           with Conn_dead -> ())
      | Error (Frame.Io _) -> Atomic.incr ctx.metrics.Metrics.disconnects
      | Ok payload -> (
          Atomic.incr ctx.metrics.Metrics.requests;
          (* Every well-framed request gets a rid, even one whose JSON
             or shape turns out bad — the error reply still correlates. *)
          let rid = fresh_rid () in
          let t0 = Trace.now_ns () in
          let client = ref Attrib.default_client in
          let verb = ref "invalid" in
          let continue =
            match Jsonx.parse payload with
            | Error m ->
                (* The framing held, only the JSON inside is bad: one
                   error reply and the connection may continue. *)
                Atomic.incr ctx.metrics.Metrics.malformed;
                Attrib.record_error ctx.attrib ~client:!client
                  ~reason:"bad-request";
                (try
                   send_error ctx fd ~rid ~id:Jsonx.Null ~reason:"bad-request"
                     ("json: " ^ m);
                   true
                 with Conn_dead -> false)
            | Ok j -> (
                client := Proto.client_of j;
                match Proto.parse_request j with
                | id, Error m -> (
                    Attrib.record_error ctx.attrib ~client:!client
                      ~reason:"bad-request";
                    try
                      send_error ctx fd ~rid ~id ~reason:"bad-request" m;
                      true
                    with Conn_dead -> false)
                | id, Ok req ->
                    verb := Proto.op_name req;
                    handle_request ctx fd ~rid ~client:!client ~id req)
          in
          let dt = Int64.sub (Trace.now_ns ()) t0 in
          Trace.observe_ns "serve.request" dt;
          Attrib.observe_request ctx.attrib ~client:!client ~verb:!verb dt;
          if continue then loop ())
  in
  (try loop () with e ->
    (* Nothing below should leak, but the worker domain must survive
       anything. *)
    Atomic.incr ctx.metrics.Metrics.contained;
    ignore (Printexc.to_string e));
  Atomic.decr ctx.metrics.Metrics.active
