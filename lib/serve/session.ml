module Budget = Dlz_base.Budget
module Trace = Dlz_base.Trace
module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Analyze = Dlz_engine.Analyze
module Engine = Dlz_engine.Engine
module Stats = Dlz_engine.Stats
module Cascade = Dlz_engine.Cascade
module Verdict = Dlz_deptest.Verdict
module Parallel = Dlz_vec.Parallel

(* One connection, one [handle] call, on whichever worker domain took
   it off the admission queue.  The containment contract mirrors the
   cascade's: any fault while serving one request — a raising solver,
   a malformed frame, a vanished client, an injected chaos fault —
   costs at most that one connection one error response.  [handle]
   itself never raises. *)

type ctx = {
  metrics : Metrics.t;
  budget : Budget.t;  (* the server-lifetime budget requests carve from *)
  request_fuel : int option;  (* per-request ceilings (client may ask lower) *)
  request_timeout_ms : int option;
  max_frame : int;
  cascade : Cascade.t option;
  draining : unit -> bool;
  request_shutdown : unit -> unit;
}

exception Conn_dead

(* Every frame we fail to deliver means the peer is gone; there is no
   point writing further responses, so sends raise [Conn_dead] and the
   per-connection loop winds down. *)
let send ctx fd payload =
  match Frame.write fd payload with
  | Ok () -> ()
  | Error _ ->
      Atomic.incr ctx.metrics.Metrics.disconnects;
      raise Conn_dead

let send_ok ctx fd ~id ~op fields =
  send ctx fd (Proto.ok ~id ~op fields);
  Atomic.incr ctx.metrics.Metrics.responses

let send_error ctx fd ~id ~reason ?retry_after_ms msg =
  send ctx fd (Proto.error ~id ~reason ?retry_after_ms msg);
  Atomic.incr ctx.metrics.Metrics.errors

(* A client may ask for less budget than the server's per-request
   ceiling, never more; [Budget.sub] additionally clamps the deadline
   to the server-lifetime budget's. *)
let request_budget ctx ~fuel ~timeout_ms =
  let min_opt a b =
    match (a, b) with
    | Some x, Some y -> Some (min x y)
    | Some x, None | None, Some x -> Some x
    | None, None -> None
  in
  Budget.sub
    ?fuel:(min_opt fuel ctx.request_fuel)
    ?timeout_ms:(min_opt timeout_ms ctx.request_timeout_ms)
    ctx.budget

let stats_payload ctx ~id =
  (* Engine stats are already rendered JSON; splice the fragment in
     rather than round-tripping it through the parser. *)
  Printf.sprintf
    "{\"id\":%s,\"ok\":true,\"op\":\"stats\",\"serve\":%s,\"engine\":%s}"
    (Jsonx.to_string id)
    (Metrics.to_json ctx.metrics)
    (Stats.to_json Stats.global)

let parse_program ~lang source =
  match lang with
  | `C -> Dlz_passes.Pointers.lower (Dlz_frontend.C_parser.parse source)
  | `F -> Dlz_passes.Inline.expand (Dlz_frontend.F77_parser.parse_units source)

let run_analyze ctx fd ~id ~lang ~source ~assume ~budget =
  let prog = Dlz_passes.Pipeline.prepare_program (parse_program ~lang source) in
  let env =
    List.fold_left (fun env (n, v) -> Assume.assume_ge n v env) Assume.empty
      assume
  in
  let accs, env = Access.of_program ~env prog in
  let cascade = Option.value ctx.cascade ~default:Cascade.delin in
  let indep = ref 0 and dep = ref 0 and inap = ref 0 and pairs = ref 0 in
  (* Streamed: one frame per candidate pair as it is solved, then a
     summary.  Serial on purpose — the daemon's parallelism is across
     connections, and a worker must not re-enter a pool. *)
  Engine.iter_pairs
    (fun (p : Engine.pair) ->
      let r = Engine.query ~cascade ~budget ~env p.Engine.problem in
      incr pairs;
      (match r.Dlz_engine.Strategy.verdict with
      | Verdict.Independent -> incr indep
      | Verdict.Dependent -> incr dep
      | Verdict.Inapplicable -> incr inap);
      send_ok ctx fd ~id ~op:"pair"
        ([
           ("src", Jsonx.Str p.Engine.src.Access.stmt_name);
           ("src_array", Jsonx.Str p.Engine.src.Access.array);
           ("dst", Jsonx.Str p.Engine.dst.Access.stmt_name);
           ("self", Jsonx.Bool p.Engine.self);
         ]
        @ Proto.result_fields r))
    accs;
  let loops = Parallel.report ~cascade ~budget ~env prog in
  let par = List.length (List.filter (fun l -> l.Parallel.lr_parallel) loops) in
  send_ok ctx fd ~id ~op:"analyze"
    [
      ("pairs", Jsonx.Int !pairs);
      ("independent", Jsonx.Int !indep);
      ("dependent", Jsonx.Int !dep);
      ("inapplicable", Jsonx.Int !inap);
      ("accesses", Jsonx.Int (List.length accs));
      ("loops_parallel", Jsonx.Int par);
      ("loops_serial", Jsonx.Int (List.length loops - par));
      ("done", Jsonx.Bool true);
    ]

(* [true] to keep reading from this connection. *)
let dispatch ctx fd ~id req =
  match req with
  | Proto.Ping ->
      send_ok ctx fd ~id ~op:"ping" [];
      true
  | Proto.Stats ->
      send ctx fd (stats_payload ctx ~id);
      Atomic.incr ctx.metrics.Metrics.responses;
      true
  | Proto.Shutdown ->
      send_ok ctx fd ~id ~op:"shutdown" [ ("draining", Jsonx.Bool true) ];
      ctx.request_shutdown ();
      false
  | Proto.Query { problem; fuel; timeout_ms } ->
      let budget = request_budget ctx ~fuel ~timeout_ms in
      let r =
        Engine.query
          ?cascade:ctx.cascade
          ~budget ~env:Assume.empty problem
      in
      send_ok ctx fd ~id ~op:"query" (Proto.result_fields r);
      true
  | Proto.Analyze { lang; source; assume; fuel; timeout_ms } ->
      let budget = request_budget ctx ~fuel ~timeout_ms in
      run_analyze ctx fd ~id ~lang ~source ~assume ~budget;
      true

(* Faults the frontend can legitimately raise on bad input: one
   bad-request reply, connection keeps going. *)
let describe_input_fault = function
  | Dlz_frontend.Diag.Parse_error _ as e ->
      Some
        (match Dlz_frontend.Diag.describe e with
        | Some m -> m
        | None -> "parse error")
  | Dlz_passes.Pointers.Unsupported m -> Some ("pointer conversion: " ^ m)
  | Dlz_passes.Inline.Unsupported m -> Some ("inlining: " ^ m)
  | Failure m -> Some m
  | _ -> None

let handle_request ctx fd ~id req =
  try dispatch ctx fd ~id req with
  | Conn_dead -> false
  | e -> (
      Atomic.incr ctx.metrics.Metrics.contained;
      let reply reason msg =
        try
          send_error ctx fd ~id ~reason msg;
          true
        with Conn_dead -> false
      in
      match describe_input_fault e with
      | Some m -> reply "bad-request" m
      | None -> (
          match e with
          | Budget.Exhausted r -> reply "timeout" ("budget exhausted: " ^ r)
          | Out_of_memory -> reply "internal" "out of memory"
          | Stack_overflow -> reply "internal" "stack overflow"
          | e -> reply "internal" (Printexc.to_string e)))

let handle ctx fd =
  Atomic.incr ctx.metrics.Metrics.active;
  let rec loop () =
    if ctx.draining () then ()
    else
      match Frame.read ~max_bytes:ctx.max_frame fd with
      | Error Frame.Eof -> ()
      | Error Frame.Timeout ->
          (* Idle or slow-loris past the receive timeout: tell the
             peer (best effort) and hang up. *)
          Atomic.incr ctx.metrics.Metrics.timeouts;
          (try send_error ctx fd ~id:Jsonx.Null ~reason:"timeout" "read timed out"
           with Conn_dead -> ())
      | Error (Frame.Too_large n) ->
          Atomic.incr ctx.metrics.Metrics.malformed;
          (try
             send_error ctx fd ~id:Jsonx.Null ~reason:"protocol"
               (Printf.sprintf "frame of %d bytes exceeds %d" n ctx.max_frame)
           with Conn_dead -> ())
      | Error (Frame.Malformed m) ->
          (* Framing is lost: the stream cannot resync, so one error
             frame and the connection closes. *)
          Atomic.incr ctx.metrics.Metrics.malformed;
          (try send_error ctx fd ~id:Jsonx.Null ~reason:"protocol" m
           with Conn_dead -> ())
      | Error (Frame.Io _) -> Atomic.incr ctx.metrics.Metrics.disconnects
      | Ok payload -> (
          Atomic.incr ctx.metrics.Metrics.requests;
          let t0 = Trace.now_ns () in
          let continue =
            match Jsonx.parse payload with
            | Error m ->
                (* The framing held, only the JSON inside is bad: one
                   error reply and the connection may continue. *)
                Atomic.incr ctx.metrics.Metrics.malformed;
                (try
                   send_error ctx fd ~id:Jsonx.Null ~reason:"bad-request"
                     ("json: " ^ m);
                   true
                 with Conn_dead -> false)
            | Ok j -> (
                match Proto.parse_request j with
                | id, Error m -> (
                    try
                      send_error ctx fd ~id ~reason:"bad-request" m;
                      true
                    with Conn_dead -> false)
                | id, Ok req -> handle_request ctx fd ~id req)
          in
          Trace.observe_ns "serve.request" (Int64.sub (Trace.now_ns ()) t0);
          if continue then loop ())
  in
  (try loop () with e ->
    (* Nothing below should leak, but the worker domain must survive
       anything. *)
    Atomic.incr ctx.metrics.Metrics.contained;
    ignore (Printexc.to_string e));
  Atomic.decr ctx.metrics.Metrics.active
