(** Daemon-side counters (connections, frames, socket faults, shed
    load); engine-side numbers stay in {!Dlz_engine.Stats}.  All
    fields are [Atomic.t] — any domain records without coordination. *)

type t = {
  accepted : int Atomic.t;
  shed : int Atomic.t;
  rejected_draining : int Atomic.t;
  active : int Atomic.t;
  requests : int Atomic.t;
  responses : int Atomic.t;
  errors : int Atomic.t;
  malformed : int Atomic.t;
  disconnects : int Atomic.t;
  timeouts : int Atomic.t;
  contained : int Atomic.t;
}

type snapshot = {
  s_accepted : int;
  s_shed : int;
  s_rejected_draining : int;
  s_active : int;
  s_requests : int;
  s_responses : int;
  s_errors : int;
  s_malformed : int;
  s_disconnects : int;
  s_timeouts : int;
  s_contained : int;
}

val create : unit -> t

val reset : t -> unit
(** Zeroes the cumulative counters.  [active] is a live gauge (it
    tracks connections currently being served) and is left alone. *)

val register_obs : t -> unit
(** Installs the ["serve"] collector in {!Dlz_obs.Registry} —
    [vic_serve_*] counter/gauge samples — with {!reset} as the reset
    hook, so [Engine.reset_metrics] covers the daemon's counters too.
    Replace semantics: the latest server to start owns the name. *)

val snapshot : t -> snapshot
val snapshot_to_json : snapshot -> string
val to_json : t -> string
