(** A small fixed-size domain pool (OCaml 5 [Domain] + [Mutex] /
    [Condition], no external dependencies).

    The dependence engine's pair queries are embarrassingly parallel;
    this pool is the one place that owns domains for them.  A pool of
    size [n] uses [n]-way parallelism: [n - 1] spawned worker domains
    plus the calling domain, which drains the same job queue while a
    {!map_chunked} call is in flight (so a 2-domain pool really runs two
    chunks at once and no domain sits idle).

    [create ~domains:1] (or less) builds the {e sequential} pool:
    {!map_chunked} degrades to a plain [Array.map] on the calling
    domain, no domain is ever spawned, and evaluation order is exactly
    left-to-right — single-core behavior and traces are bit-identical
    to the pre-pool code.

    A pool is meant to be driven from one domain at a time; concurrent
    {!map_chunked} calls on the same pool are not supported. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] workers ([domains <= 1]:
    none — the sequential pool). *)

val domains : t -> int
(** The parallelism width ([1] for the sequential pool). *)

val map_chunked : t -> chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_chunked pool ~chunk f arr] is [Array.map f arr], computed in
    parallel in contiguous chunks of [chunk] elements.  Results land by
    index, not by completion order, so the output is deterministic and
    independent of scheduling.  Exceptions from [f] are contained per
    element: a raising job never kills a worker domain, never skips the
    other elements of its chunk, and never deadlocks the caller — every
    element is attempted, and then the failure at the {e lowest index}
    (the one the sequential path would hit first) is re-raised in the
    caller.  [f] must be safe to run on any domain.  Raises
    [Invalid_argument] when [chunk <= 0]. *)

val shutdown : t -> unit
(** Stops and joins the workers.  Idempotent; the sequential pool is a
    no-op.  Only call once no [map_chunked] is in flight. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and guarantees
    {!shutdown}, whether [f] returns or raises. *)

val resolve_jobs : int -> int
(** The CLI's [--jobs] convention: [0] means
    [Domain.recommended_domain_count ()], positive counts are
    themselves.  Raises [Invalid_argument] on negatives. *)

val with_jobs : ?pool:t -> jobs:int -> (t option -> 'a) -> 'a
(** The one pool-provisioning policy shared by the engine consumers:
    an explicit [pool] is passed through (and {e not} shut down);
    otherwise [jobs] (per {!resolve_jobs}) domains are spun up for the
    duration of [f] — or none at all when [jobs <= 1], in which case
    [f] receives [None] and must take its exact serial path. *)
