(** A work-stealing domain pool (OCaml 5 [Domain] + [Mutex] /
    [Condition], no external dependencies).

    The dependence engine's pair queries are embarrassingly parallel;
    this pool is the one place that owns domains for them.  A pool of
    size [n] uses [n]-way parallelism: [n - 1] spawned worker domains
    plus the calling domain, which participates as domain slot 0 while
    a {!map} call is in flight (so a 2-domain pool really runs two
    chunks at once and no domain sits idle).

    Scheduling is work-stealing over per-domain deques: a {!map} deals
    its chunks round-robin over one deque per domain up front; each
    domain pops its own deque from the newest end (LIFO) and, when dry,
    steals the {e oldest} chunk from another domain's deque (FIFO).
    Contention is per-deque, touched only when dealing, stealing, or
    parking — never per element.  Scheduling decides only {e who} runs
    a chunk; results always land by element index, so the output is
    byte-identical for every pool size and chunk size.

    [create ~domains:1] (or less) builds the {e sequential} pool:
    {!map} degrades to a plain [Array.map] on the calling domain, no
    domain is ever spawned, and evaluation order is exactly
    left-to-right — single-core behavior and traces are bit-identical
    to the pre-pool code.

    A pool is meant to be driven from one domain at a time; concurrent
    {!map} calls on the same pool are not supported. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] workers ([domains <= 1]:
    none — the sequential pool). *)

val domains : t -> int
(** The parallelism width ([1] for the sequential pool). *)

val map : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] is [Array.map f arr], computed in parallel in
    contiguous chunks.  Results land by index, not by completion order,
    so the output is deterministic and independent of scheduling,
    stealing, and chunking.  Exceptions from [f] are contained per
    element: a raising job never kills a worker domain — whether the
    chunk ran on its home deque or was stolen — never skips the other
    elements of its chunk, and never deadlocks the caller; every
    element is attempted, and then the failure at the {e lowest index}
    (the one the sequential path would hit first) is re-raised in the
    caller.  [f] must be safe to run on any domain.

    [chunk] overrides the chunk size (the CLI's [--chunk]); when
    omitted it is auto-tuned: chunks are sized so each costs at least
    ~20µs of work — or 32x the median dispatch latency from the
    ["pool.queue_wait"] histogram when timing is on — based on a moving
    average of recent per-element cost, capped so every domain still
    has at least two chunks to expose to thieves.  Raises
    [Invalid_argument] when [chunk <= 0]. *)

val auto_chunk : t -> int -> int
(** [auto_chunk pool n] is the chunk size an auto-tuned {!map} over [n]
    elements would pick right now (introspection for tests and the
    bench harness; the sequential pool answers [n]). *)

val steals : unit -> int
(** Process-wide count of chunks taken from another domain's deque
    since start or {!reset_metrics}. *)

val reset_metrics : unit -> unit
(** Zeroes the steal counter and the chunk auto-tuner's moving average
    (the ["pool.queue_wait"] histogram itself is owned by
    {!Trace.reset_hists}). *)

val shutdown : t -> unit
(** Stops and joins the workers.  Idempotent; the sequential pool is a
    no-op.  Only call once no [map] is in flight. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and guarantees
    {!shutdown}, whether [f] returns or raises. *)

val resolve_jobs : int -> int
(** The CLI's [--jobs] convention: [0] means
    [Domain.recommended_domain_count ()], positive counts are
    themselves.  Raises [Invalid_argument] on negatives. *)

val with_jobs : ?pool:t -> jobs:int -> (t option -> 'a) -> 'a
(** The one pool-provisioning policy shared by the engine consumers:
    an explicit [pool] is passed through (and {e not} shut down);
    otherwise [jobs] (per {!resolve_jobs}) domains are spun up for the
    duration of [f] — or none at all when [jobs <= 1], in which case
    [f] receives [None] and must take its exact serial path. *)
