exception Exhausted of string

type node = {
  parent : node option;
  fuel : int Atomic.t option;
  deadline : int64 option; (* monotonic ns; resolved at creation *)
  mutable ticks : int;
      (* Amortizes clock probes across spends.  Deliberately plain: a
         racy increment only shifts when the next probe lands, and the
         deadline is a soft bound — exactness here is not worth an
         atomic RMW on every spend. *)
}

type t = node option
(* [None] is the unlimited budget: spending on it touches nothing. *)

let unlimited : t = None
let now_ns = Trace.now_ns

(* The exhaustion mark in the trace stream: one instant event per
   trip, placed where the fault actually fired (inside the failing
   strategy's span when tracing is on). *)
let trip reason =
  Trace.instant ~cat:"budget" ~args:[ ("reason", reason) ] "budget.exhausted";
  raise (Exhausted reason)

(* Probe the clock once every [mask+1] spends; deadlines are soft
   bounds on work between strategy boundaries, not hard realtime. *)
let tick_mask = 255

(* Saturating [now + ms * 1e6]: a huge timeout must behave as "no own
   deadline", not wrap negative — a wrapped deadline would win the
   min against the parent's and trip the child immediately, exactly
   inverting the clamping invariant ([sub] children never outlive
   their parent's deadline, and a looser child inherits the parent's
   tighter one). *)
let deadline_after now ms =
  if ms <= 0 then now
  else
    let ms64 = Int64.of_int ms in
    if Int64.compare ms64 (Int64.div Int64.max_int 1_000_000L) > 0 then
      Int64.max_int
    else
      let d = Int64.add now (Int64.mul ms64 1_000_000L) in
      if Int64.compare d now < 0 then Int64.max_int else d

let resolve_deadline ~parent_deadline timeout_ms =
  let own =
    match timeout_ms with
    | None -> None
    | Some ms -> Some (deadline_after (now_ns ()) ms)
  in
  match (own, parent_deadline) with
  | None, d | d, None -> d
  | Some a, Some b -> Some (if Int64.compare a b <= 0 then a else b)

let make ~parent ~fuel ~timeout_ms =
  let parent_deadline =
    match parent with None -> None | Some n -> n.deadline
  in
  {
    parent;
    fuel = Option.map Atomic.make fuel;
    deadline = resolve_deadline ~parent_deadline timeout_ms;
    ticks = 0;
  }

let create ?fuel ?timeout_ms () : t =
  match (fuel, timeout_ms) with
  | None, None -> None
  | _ -> Some (make ~parent:None ~fuel ~timeout_ms)

let sub ?fuel ?timeout_ms (t : t) : t =
  match (fuel, timeout_ms, t) with
  | None, None, _ -> t
  | _ -> Some (make ~parent:t ~fuel ~timeout_ms)

let deadline_passed n =
  match n.deadline with
  | None -> false
  | Some d -> Int64.compare (now_ns ()) d >= 0

(* The deadline of the chain is the minimum of the nodes' deadlines by
   construction, so checking the youngest node's own deadline covers
   every ancestor. *)
let rec drain cost n =
  (match n.fuel with
  | None -> ()
  | Some f -> if Atomic.fetch_and_add f (-cost) - cost < 0 then trip "fuel");
  match n.parent with None -> () | Some p -> drain cost p

let spend ?(cost = 1) (t : t) =
  match t with
  | None -> ()
  | Some n -> (
      drain cost n;
      (* The chain's deadline is folded into every node at creation, so
         a deadline-free youngest node means a deadline-free chain and
         the probe machinery can be skipped outright. *)
      match n.deadline with
      | None -> ()
      | Some _ ->
          let k = n.ticks in
          n.ticks <- k + 1;
          if k land tick_mask = 0 then if deadline_passed n then trip "deadline")

let exhausted (t : t) =
  match t with
  | None -> None
  | Some n ->
      let rec fuel_dry n =
        (match n.fuel with Some f -> Atomic.get f <= 0 | None -> false)
        || match n.parent with None -> false | Some p -> fuel_dry p
      in
      if fuel_dry n then Some "fuel"
      else if deadline_passed n then Some "deadline"
      else None

let check (t : t) =
  match exhausted t with None -> () | Some reason -> trip reason

let remaining_fuel (t : t) =
  let rec go acc n =
    let acc =
      match n.fuel with
      | None -> acc
      | Some f -> (
          let r = max 0 (Atomic.get f) in
          match acc with None -> Some r | Some a -> Some (min a r))
    in
    match n.parent with None -> acc | Some p -> go acc p
  in
  match t with None -> None | Some n -> go None n

let is_unlimited (t : t) =
  let rec bounded n =
    n.fuel <> None
    || n.deadline <> None
    || match n.parent with None -> false | Some p -> bounded p
  in
  match t with None -> true | Some n -> not (bounded n)
