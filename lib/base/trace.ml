let now_ns () = Monotonic_clock.now ()

(* --- recording level ------------------------------------------------------ *)

type level = Off | Timing | Full

let level_of_string s =
  match String.lowercase_ascii s with
  | "" | "0" | "off" -> Some Off
  | "timing" -> Some Timing
  | "1" | "on" | "full" -> Some Full
  | _ -> None

let level_state =
  Atomic.make
    (match Sys.getenv_opt "DLZ_TRACE" with
    | None -> Off
    | Some s -> ( match level_of_string s with Some l -> l | None -> Off))

let level () = Atomic.get level_state
let set_level l = Atomic.set level_state l
let timing_on () = Atomic.get level_state <> Off
let recording_on () = Atomic.get level_state = Full

(* --- category mask -------------------------------------------------------- *)

(* Full pays only for the categories you actually record: a span or
   instant whose category is masked out is a None-check and an
   immediate No_span.  [None] = everything enabled (the default); the
   empty category is always enabled, so uncategorised load-bearing
   spans (the per-request serve span, CLI phases) cannot be silenced
   by accident. *)

let parse_mask s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.sort_uniq compare

let mask_state : string list option Atomic.t =
  Atomic.make
    (match Sys.getenv_opt "DLZ_TRACE_MASK" with
    | None | Some "" -> None
    | Some s -> Some (parse_mask s))

let set_mask m =
  Atomic.set mask_state
    (Option.map
       (fun cats ->
         List.map String.trim cats
         |> List.filter (fun x -> x <> "")
         |> List.sort_uniq compare)
       m)

let mask () = Atomic.get mask_state

let cat_enabled cat =
  match Atomic.get mask_state with
  | None -> true
  | Some cats -> cat = "" || List.mem cat cats

(* --- sampling ------------------------------------------------------------- *)

type sampling_state = { s_seed : int64; s_rate_ppm : int }

let clamp_rate r = if r < 0. then 0. else if r > 1. then 1. else r

let sampling_of ~seed rate =
  { s_seed = seed; s_rate_ppm = int_of_float (clamp_rate rate *. 1_000_000.) }

let sampling_of_string s =
  let parse seed_s rate_s =
    match (Int64.of_string_opt seed_s, float_of_string_opt rate_s) with
    | Some seed, Some r when r >= 0. && r <= 1. -> Ok (seed, r)
    | Some _, Some _ -> Error "rate must be in [0, 1]"
    | None, _ -> Error (Printf.sprintf "bad seed %S" seed_s)
    | _, None -> Error (Printf.sprintf "bad rate %S" rate_s)
  in
  match String.index_opt s ':' with
  | None -> parse "0" s
  | Some i ->
      parse (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))

let sampling_state =
  Atomic.make
    (match Sys.getenv_opt "DLZ_TRACE_SAMPLE" with
    | None | Some "" -> sampling_of ~seed:0L 1.0
    | Some s -> (
        match sampling_of_string s with
        | Ok (seed, rate) -> sampling_of ~seed rate
        | Error _ -> sampling_of ~seed:0L 1.0))

let set_sampling ?(seed = 0L) rate = Atomic.set sampling_state (sampling_of ~seed rate)

let sampling () =
  let s = Atomic.get sampling_state in
  (s.s_seed, float_of_int s.s_rate_ppm /. 1_000_000.)

(* --- per-domain ring buffers ---------------------------------------------- *)

type phase = B | E | I

type event = {
  ev_seq : int;
  ev_ts : int64;
  ev_ph : phase;
  ev_name : string;
  ev_cat : string;
  ev_args : (string * string) list;
}

(* The rings are structure-of-arrays: parallel arrays of timestamp
   (as an unboxed [int] — a monotonic nanosecond count fits 62 bits),
   phase byte, name, category, and an argument {e thunk}.  A push is
   one cursor bump and five stores into memory only the recording
   domain touches — no record allocation, no string formatting.
   Argument rendering is fully deferred: the thunk is forced at
   export/[events] time only, so an event that is overwritten before
   anyone looks at it never built its strings at all.  Thunks must
   therefore be pure (close over immutable data) — every in-tree call
   site closes over strings and integers fixed at record time. *)

let no_args : unit -> (string * string) list = fun () -> []

let thunk_of args lazy_args =
  match lazy_args with
  | Some f -> f
  | None -> ( match args with [] -> no_args | args -> fun () -> args)

type buffer = {
  b_dom : int;
  b_cap : int;  (* power of two *)
  b_ts : int array;
  b_ph : Bytes.t;
  b_name : string array;
  b_cat : string array;
  b_args : (unit -> (string * string) list) array;
  mutable b_len : int;  (* total events ever recorded (monotone) *)
  mutable b_spans : int;  (* sampled spans begun — the sampling counter *)
  mutable b_suppress : int;  (* depth inside a sampled-out subtree *)
}

let next_pow2 n =
  let r = ref 1 in
  while !r < n do
    r := !r lsl 1
  done;
  !r

let default_capacity =
  ref
    (match Sys.getenv_opt "DLZ_TRACE_BUF" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> next_pow2 n
        | _ -> 65536)
    | None -> 65536)

let set_buffer_capacity n =
  if n < 1 then invalid_arg "Trace.set_buffer_capacity: capacity must be >= 1";
  default_capacity := next_pow2 n

(* Buffers register themselves once, at a domain's first record; the
   mutex guards only that registration and snapshot reads, never the
   recording fast path. *)
let registry_lock = Mutex.create ()
let registry : buffer list ref = ref []

let dls_key =
  Domain.DLS.new_key (fun () ->
      let cap = !default_capacity in
      let b =
        {
          b_dom = (Domain.self () :> int);
          b_cap = cap;
          b_ts = Array.make cap 0;
          b_ph = Bytes.make cap '\000';
          b_name = Array.make cap "";
          b_cat = Array.make cap "";
          b_args = Array.make cap no_args;
          b_len = 0;
          b_spans = 0;
          b_suppress = 0;
        }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let buffer () = Domain.DLS.get dls_key

(* Phase bytes in the ring. *)
let ph_b = '\000'
let ph_e = '\001'
let ph_i = '\002'

let phase_of_byte = function '\000' -> B | '\001' -> E | _ -> I

let push b ph name cat fargs ts =
  let i = b.b_len land (b.b_cap - 1) in
  b.b_ts.(i) <- ts;
  Bytes.set b.b_ph i ph;
  b.b_name.(i) <- name;
  b.b_cat.(i) <- cat;
  b.b_args.(i) <- fargs;
  b.b_len <- b.b_len + 1

let ts_now = function None -> Int64.to_int (now_ns ()) | Some t -> Int64.to_int t

let buffers_snapshot () =
  Mutex.lock registry_lock;
  let bs = !registry in
  Mutex.unlock registry_lock;
  bs

let dropped () =
  List.fold_left
    (fun acc b -> acc + max 0 (b.b_len - b.b_cap))
    0 (buffers_snapshot ())

let events () =
  let evs =
    List.concat_map
      (fun b ->
        let n = min b.b_len b.b_cap in
        let first = b.b_len - n in
        List.init n (fun i ->
            let j = (first + i) land (b.b_cap - 1) in
            ( b.b_dom,
              {
                ev_seq = first + i;
                ev_ts = Int64.of_int b.b_ts.(j);
                ev_ph = phase_of_byte (Bytes.get b.b_ph j);
                ev_name = b.b_name.(j);
                ev_cat = b.b_cat.(j);
                ev_args = b.b_args.(j) ();
              } )))
      (buffers_snapshot ())
  in
  List.sort
    (fun (d1, e1) (d2, e2) ->
      match Int64.compare e1.ev_ts e2.ev_ts with
      | 0 -> (
          match compare d1 d2 with 0 -> compare e1.ev_seq e2.ev_seq | c -> c)
      | c -> c)
    evs

let clear () =
  List.iter
    (fun b ->
      b.b_len <- 0;
      b.b_spans <- 0;
      b.b_suppress <- 0;
      (* Release whatever the argument thunks and names kept alive. *)
      Array.fill b.b_args 0 b.b_cap no_args;
      Array.fill b.b_name 0 b.b_cap "";
      Array.fill b.b_cat 0 b.b_cap "")
    (buffers_snapshot ())

(* --- spans ---------------------------------------------------------------- *)

type span = No_span | Suppressed | Live of { sp_name : string; sp_cat : string }

let null_span = No_span
let is_live = function Live _ -> true | No_span | Suppressed -> false

(* Content-keyed on (seed, name, per-domain span ordinal): a serial run
   replays the same keep/drop decisions under the same seed. *)
let sampled_in b name s =
  if s.s_rate_ppm >= 1_000_000 then true
  else if s.s_rate_ppm <= 0 then false
  else
    let h = Hashtbl.hash (name, b.b_spans) in
    let g = Prng.create (Int64.logxor s.s_seed (Int64.of_int h)) in
    Prng.int g 1_000_000 < s.s_rate_ppm

let start ?(cat = "") ?(sample = false) ?(args = []) ?lazy_args ?ts name =
  if not (recording_on () && cat_enabled cat) then No_span
  else begin
    let b = buffer () in
    if b.b_suppress > 0 then begin
      (* Inside a sampled-out subtree: keep the depth balanced so the
         suppression lifts exactly when the sampled-out root closes. *)
      b.b_suppress <- b.b_suppress + 1;
      Suppressed
    end
    else if sample then begin
      let keep = sampled_in b name (Atomic.get sampling_state) in
      b.b_spans <- b.b_spans + 1;
      if keep then begin
        push b ph_b name cat (thunk_of args lazy_args) (ts_now ts);
        Live { sp_name = name; sp_cat = cat }
      end
      else begin
        b.b_suppress <- 1;
        Suppressed
      end
    end
    else begin
      push b ph_b name cat (thunk_of args lazy_args) (ts_now ts);
      Live { sp_name = name; sp_cat = cat }
    end
  end

let finish ?(args = []) ?lazy_args ?ts sp =
  match sp with
  | No_span -> ()
  | Suppressed ->
      let b = buffer () in
      if b.b_suppress > 0 then b.b_suppress <- b.b_suppress - 1
  | Live { sp_name; sp_cat } ->
      push (buffer ()) ph_e sp_name sp_cat (thunk_of args lazy_args) (ts_now ts)

let with_span ?cat ?sample ?args ?lazy_args name f =
  if not (recording_on ()) then f ()
  else begin
    let sp = start ?cat ?sample ?args ?lazy_args name in
    Fun.protect ~finally:(fun () -> finish sp) f
  end

let instant ?(cat = "") ?(args = []) ?lazy_args ?ts name =
  if recording_on () && cat_enabled cat then
    push (buffer ()) ph_i name cat (thunk_of args lazy_args) (ts_now ts)

(* --- Chrome trace_event export -------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json () =
  let evs = events () in
  let t0 = match evs with [] -> 0L | (_, e) :: _ -> e.ev_ts in
  let us_of ts = Int64.to_float (Int64.sub ts t0) /. 1_000. in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit ~ph ~name ~cat ~ts_us ~dom ~args ~extra =
    if !first then first := false else Buffer.add_char buf ',';
    Printf.bprintf buf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
      (json_escape name) ph ts_us dom;
    if cat <> "" then Printf.bprintf buf ",\"cat\":\"%s\"" (json_escape cat);
    List.iter (fun (k, v) -> Printf.bprintf buf ",\"%s\":%s" k v) extra;
    (match args with
    | [] -> ()
    | args ->
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Printf.bprintf buf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
          args;
        Buffer.add_char buf '}');
    Buffer.add_char buf '}'
  in
  (* One named track per domain. *)
  let doms = List.sort_uniq compare (List.map fst evs) in
  List.iter
    (fun d ->
      emit ~ph:"M" ~name:"thread_name" ~cat:"" ~ts_us:0. ~dom:d
        ~args:[ ("name", Printf.sprintf "domain %d" d) ]
        ~extra:[])
    doms;
  (* Balance pass: per-domain stacks of open span names.  An [E] whose
     [B] was overwritten in the ring is dropped; a [B] still open at
     the end is closed synthetically at the last timestamp. *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack d =
    match Hashtbl.find_opt stacks d with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks d s;
        s
  in
  let last_ts = ref t0 in
  List.iter
    (fun (d, ev) ->
      if Int64.compare ev.ev_ts !last_ts > 0 then last_ts := ev.ev_ts;
      let ts_us = us_of ev.ev_ts in
      match ev.ev_ph with
      | B ->
          (stack d) := ev.ev_name :: !(stack d);
          emit ~ph:"B" ~name:ev.ev_name ~cat:ev.ev_cat ~ts_us ~dom:d
            ~args:ev.ev_args ~extra:[]
      | E -> (
          let s = stack d in
          match !s with
          | top :: rest when String.equal top ev.ev_name ->
              s := rest;
              emit ~ph:"E" ~name:ev.ev_name ~cat:ev.ev_cat ~ts_us ~dom:d
                ~args:ev.ev_args ~extra:[]
          | _ -> (* orphan: its B was lost to a ring overwrite *) ())
      | I ->
          emit ~ph:"i" ~name:ev.ev_name ~cat:ev.ev_cat ~ts_us ~dom:d
            ~args:ev.ev_args
            ~extra:[ ("s", "\"t\"") ])
    evs;
  let end_us = us_of !last_ts in
  Hashtbl.iter
    (fun d s ->
      List.iter
        (fun name ->
          emit ~ph:"E" ~name ~cat:"" ~ts_us:end_us ~dom:d
            ~args:[ ("truncated", "true") ]
            ~extra:[])
        !s)
    stacks;
  Printf.bprintf buf
    "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"%d\"}}"
    (dropped ());
  Buffer.contents buf

let export_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_chrome_json ());
      output_char oc '\n')

(* --- latency histograms --------------------------------------------------- *)

module Hist = struct
  (* 8 sub-buckets per power of two of nanoseconds: bucket
     [i] covers [2^(i/8), 2^((i+1)/8)) ns.  36 octaves reach ~69 s;
     the top bucket absorbs anything longer. *)
  let sub_buckets = 8
  let octaves = 36
  let buckets = sub_buckets * octaves

  (* Like the event ring buffers, observations go to domain-local
     shards: an observation is four plain writes to memory only the
     recording domain touches — no lock-prefixed RMW, no cross-domain
     cache-line traffic.  (A first cut used [Atomic.t] counters; three
     atomic adds on cold shared lines cost ~190 ns per observation in
     situ, blowing the overhead budget by themselves.)  Readers sum the
     shards; a domain's in-flight observation may be missed by a
     concurrent read, but anything recorded before a join — the pool
     always joins before reporting — is visible exactly.  All values
     are nanoseconds in an [int]: the top bucket absorbs ~69 s and the
     running total would need ~146 years of observed time to overflow. *)
  type shard = {
    sh_counts : int array;
    mutable sh_count : int;
    mutable sh_total_ns : int;
    mutable sh_max_ns : int;
  }

  type t = {
    h_key : shard Domain.DLS.key;
    h_lock : Mutex.t;  (* guards [h_shards] registration and snapshots *)
    h_shards : shard list ref;
  }

  let create () =
    let lock = Mutex.create () in
    let shards = ref [] in
    let key =
      Domain.DLS.new_key (fun () ->
          let sh =
            {
              sh_counts = Array.make buckets 0;
              sh_count = 0;
              sh_total_ns = 0;
              sh_max_ns = 0;
            }
          in
          Mutex.lock lock;
          shards := sh :: !shards;
          Mutex.unlock lock;
          sh)
    in
    { h_key = key; h_lock = lock; h_shards = shards }

  (* Lower bound (rounded up to the next integer nanosecond) of every
     bucket, precomputed so the observe path costs integer compares
     only — no libm call per observation. *)
  let lower_bounds =
    Array.init buckets (fun i ->
        int_of_float
          (Float.ceil
             (Float.exp2 (float_of_int i /. float_of_int sub_buckets))))

  (* Index of the most significant set bit — the duration's octave. *)
  let msb n =
    let o = ref 0 and n = ref n in
    if !n >= 1 lsl 32 then begin
      o := !o + 32;
      n := !n lsr 32
    end;
    if !n >= 1 lsl 16 then begin
      o := !o + 16;
      n := !n lsr 16
    end;
    if !n >= 1 lsl 8 then begin
      o := !o + 8;
      n := !n lsr 8
    end;
    if !n >= 1 lsl 4 then begin
      o := !o + 4;
      n := !n lsr 4
    end;
    if !n >= 4 then begin
      o := !o + 2;
      n := !n lsr 2
    end;
    if !n >= 2 then incr o;
    !o

  let bucket_of_int ns =
    if ns <= 1 then 0
    else begin
      let o = msb ns in
      if o >= octaves then buckets - 1
      else begin
        (* Largest bucket in this octave whose lower bound is <= ns:
           at most [sub_buckets - 1] compares. *)
        let i = ref (o * sub_buckets) in
        let stop = min (buckets - 1) (((o + 1) * sub_buckets) - 1) in
        while !i < stop && ns >= lower_bounds.(!i + 1) do
          incr i
        done;
        !i
      end
    end

  let bucket_of_ns ns =
    if Int64.compare ns (Int64.of_int max_int) >= 0 then buckets - 1
    else bucket_of_int (Int64.to_int ns)

  let bucket_bounds i =
    if i < 0 || i >= buckets then invalid_arg "Trace.Hist.bucket_bounds";
    let lo =
      if i = 0 then 0.
      else Float.exp2 (float_of_int i /. float_of_int sub_buckets)
    in
    (lo, Float.exp2 (float_of_int (i + 1) /. float_of_int sub_buckets))

  let observe t ns =
    let ns =
      if Int64.compare ns (Int64.of_int max_int) >= 0 then max_int
      else
        let n = Int64.to_int ns in
        if n < 0 then 0 else n
    in
    let sh = Domain.DLS.get t.h_key in
    let b = bucket_of_int ns in
    sh.sh_counts.(b) <- sh.sh_counts.(b) + 1;
    sh.sh_count <- sh.sh_count + 1;
    sh.sh_total_ns <- sh.sh_total_ns + ns;
    if ns > sh.sh_max_ns then sh.sh_max_ns <- ns

  let shards t =
    Mutex.lock t.h_lock;
    let s = !(t.h_shards) in
    Mutex.unlock t.h_lock;
    s

  let count t = List.fold_left (fun a sh -> a + sh.sh_count) 0 (shards t)

  let total_ns t =
    Int64.of_int (List.fold_left (fun a sh -> a + sh.sh_total_ns) 0 (shards t))

  let max_ns t =
    Int64.of_int (List.fold_left (fun a sh -> max a sh.sh_max_ns) 0 (shards t))

  (* One coherent cross-shard snapshot of the bucket counts. *)
  let summed t =
    let a = Array.make buckets 0 in
    List.iter
      (fun sh -> Array.iteri (fun i c -> a.(i) <- a.(i) + c) sh.sh_counts)
      (shards t);
    a

  let percentile t q =
    let counts = summed t in
    let n = Array.fold_left ( + ) 0 counts in
    if n = 0 then 0.
    else begin
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let cap = Int64.to_float (max_ns t) in
      let rec go i acc =
        if i >= buckets then cap
        else
          let acc = acc + counts.(i) in
          if acc >= rank then
            let lo, hi = bucket_bounds i in
            Float.min (Float.sqrt (Float.max lo 1. *. hi)) cap
          else go (i + 1) acc
      in
      go 0 0
    end

  let merged ts =
    let m = create () in
    let sh = Domain.DLS.get m.h_key in
    List.iter
      (fun t ->
        let counts = summed t in
        Array.iteri (fun i c -> sh.sh_counts.(i) <- sh.sh_counts.(i) + c) counts;
        sh.sh_count <- sh.sh_count + Array.fold_left ( + ) 0 counts;
        sh.sh_total_ns <- sh.sh_total_ns + Int64.to_int (total_ns t);
        sh.sh_max_ns <- max sh.sh_max_ns (Int64.to_int (max_ns t)))
      ts;
    m

  let reset t =
    List.iter
      (fun sh ->
        Array.fill sh.sh_counts 0 buckets 0;
        sh.sh_count <- 0;
        sh.sh_total_ns <- 0;
        sh.sh_max_ns <- 0)
      (shards t)

  (* Exposition snapshot: cumulative counts at per-octave boundaries
     (le = 2^(o+1) - 1 ns, inclusive, matching the integer-ns bucket
     layout), trimmed at the octave holding the observed max — the
     implicit +Inf bucket covers the rest.  Downsampling 288 buckets
     to <= 36 keeps a scrape readable while staying exact at every
     emitted boundary. *)
  let snapshot t =
    let counts = summed t in
    let count = Array.fold_left ( + ) 0 counts in
    let mx = max_ns t in
    let cumulative =
      if count = 0 then []
      else begin
        let last_octave = min (octaves - 1) (bucket_of_ns mx / sub_buckets) in
        let out = ref [] and acc = ref 0 and i = ref 0 in
        for o = 0 to last_octave do
          for _ = 1 to sub_buckets do
            acc := !acc + counts.(!i);
            incr i
          done;
          out :=
            (Int64.sub (Int64.shift_left 1L (o + 1)) 1L, !acc) :: !out
        done;
        List.rev !out
      end
    in
    {
      Dlz_obs.Registry.h_count = count;
      h_sum_ns = total_ns t;
      h_max_ns = mx;
      h_p50_ns = percentile t 0.50;
      h_p99_ns = percentile t 0.99;
      h_buckets = cumulative;
    }
end

module Smap = Map.Make (String)

(* Lock-free registry: a lookup is one atomic load plus a find in a
   small persistent map; (rare) registration swaps in an extended map
   via CAS.  The losing side of a registration race retries and finds
   the winner's histogram, so a name always maps to one instance. *)
let hists : Hist.t Smap.t Atomic.t = Atomic.make Smap.empty

let rec hist name =
  let m = Atomic.get hists in
  match Smap.find_opt name m with
  | Some h -> h
  | None ->
      let h = Hist.create () in
      if Atomic.compare_and_set hists m (Smap.add name h m) then h
      else hist name

let observe_ns name ns = if timing_on () then Hist.observe (hist name) ns

let time name f =
  if not (timing_on ()) then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () -> Hist.observe (hist name) (Int64.sub (now_ns ()) t0))
      f
  end

let hist_rows () = Smap.bindings (Atomic.get hists)
let reset_hists () = Smap.iter (fun _ h -> Hist.reset h) (Atomic.get hists)

(* Every named histogram doubles as a vic_latency_ns{op=..} family in
   the metrics plane; empty histograms are skipped so a scrape shows
   what actually ran. *)
let () =
  Dlz_obs.Registry.register ~name:"trace" ~reset:reset_hists (fun () ->
      List.filter_map
        (fun (name, h) ->
          if Hist.count h = 0 then None
          else
            Some
              (Dlz_obs.Registry.sample
                 ~help:"operation latency histogram (nanoseconds)"
                 ~labels:[ ("op", name) ] "vic_latency_ns"
                 (Dlz_obs.Registry.Hist (Hist.snapshot h))))
        (hist_rows ()))
