type t = Empty | Range of int * int

let make lo hi = if lo > hi then Empty else Range (lo, hi)
let empty = Empty
let point v = Range (v, v)
let zero = point 0
let is_empty = function Empty -> true | Range _ -> false

let lo = function
  | Empty -> invalid_arg "Ivl.lo: empty interval"
  | Range (l, _) -> l

let hi = function
  | Empty -> invalid_arg "Ivl.hi: empty interval"
  | Range (_, h) -> h

let mem x = function Empty -> false | Range (l, h) -> l <= x && x <= h
let contains_zero iv = mem 0 iv

let add a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range (l1, h1), Range (l2, h2) -> Range (Intx.add l1 l2, Intx.add h1 h2)

let neg = function
  | Empty -> Empty
  | Range (l, h) -> Range (Intx.neg h, Intx.neg l)

let scale c = function
  | Empty -> Empty
  | Range (l, h) ->
      if c >= 0 then Range (Intx.mul c l, Intx.mul c h)
      else Range (Intx.mul c h, Intx.mul c l)

let join a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Range (l1, h1), Range (l2, h2) -> Range (min l1 l2, max h1 h2)

let inter a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range (l1, h1), Range (l2, h2) -> make (max l1 l2) (min h1 h2)

let width = function Empty -> -1 | Range (l, h) -> Intx.sub h l

let max_abs = function
  | Empty -> invalid_arg "Ivl.max_abs: empty interval"
  | Range (l, h) -> max (Intx.abs l) (Intx.abs h)

let shift c = function
  | Empty -> Empty
  | Range (l, h) -> Range (Intx.add c l, Intx.add c h)

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Range (l1, h1), Range (l2, h2) -> l1 = l2 && h1 = h2
  | _ -> false

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "[]"
  | Range (l, h) -> Format.fprintf ppf "[%d, %d]" l h

(* Mutable interval accumulator: the hot tests fold dozens of scaled
   boxes per equation, and building a [Range] block per fold step is
   pure garbage.  An [Acc.t] is allocated once (per domain, typically)
   and reused; all the combinators below are allocation-free. *)
module Acc = struct
  type acc = { mutable lo : int; mutable hi : int; mutable empty : bool }

  let create () = { lo = 0; hi = 0; empty = false }

  let set_point a v =
    a.lo <- v;
    a.hi <- v;
    a.empty <- false

  let set_empty a = a.empty <- true

  let add_scaled a c ub =
    (* a += c * [0, ub]  (the lhs-interval step), empty absorbing. *)
    if not a.empty then
      if c >= 0 then begin
        a.hi <- Intx.add a.hi (Intx.mul c ub)
      end
      else begin
        a.lo <- Intx.add a.lo (Intx.mul c ub)
      end

  let add_bounds a l h =
    if not a.empty then begin
      a.lo <- Intx.add a.lo l;
      a.hi <- Intx.add a.hi h
    end

  let add_ivl a = function
    | Empty -> a.empty <- true
    | Range (l, h) -> add_bounds a l h

  let contains_zero a = (not a.empty) && a.lo <= 0 && 0 <= a.hi
  let to_ivl a = if a.empty then Empty else make a.lo a.hi
end
