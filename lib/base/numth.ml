let rec gcd a b = if b = 0 then Intx.abs a else gcd b (a mod b)
let gcd_list xs = List.fold_left gcd 0 xs

let lcm a b =
  if a = 0 || b = 0 then 0 else Intx.abs (Intx.mul (a / gcd a b) b)

let fdiv a b =
  if b = 0 then Intx.div_by_zero "fdiv";
  (* Native division wraps silently on this one pair: the mathematical
     quotient is [max_int + 1]. *)
  if a = min_int && b = -1 then raise (Intx.Overflow "fdiv");
  let q = a / b and r = a mod b in
  if r <> 0 && r lxor b < 0 then q - 1 else q

let fmod a b = if b = 0 then Intx.div_by_zero "fmod" else a - (b * fdiv a b)

let cdiv a b =
  if b = 0 then Intx.div_by_zero "cdiv";
  if a = min_int && b = -1 then raise (Intx.Overflow "cdiv");
  let q = a / b and r = a mod b in
  if r <> 0 && r lxor b >= 0 then q + 1 else q

(* Checked arithmetic throughout: the Bezout coefficients feed exact
   substitutions (Omega's unimodular reduction), where a silently
   wrapped intermediate would corrupt the solution set instead of
   faulting into the containment path. *)
let egcd a b =
  let rec go r0 x0 y0 r1 x1 y1 =
    if r1 = 0 then (r0, x0, y0)
    else
      let q = fdiv r0 r1 in
      go r1 x1 y1
        (Intx.sub r0 (Intx.mul q r1))
        (Intx.sub x0 (Intx.mul q x1))
        (Intx.sub y0 (Intx.mul q y1))
  in
  let g, x, y = go a 1 0 b 0 1 in
  if g < 0 then (Intx.neg g, Intx.neg x, Intx.neg y) else (g, x, y)

let symmetric_mod a g =
  if g <= 0 then Intx.div_by_zero "symmetric_mod";
  let r = fmod a g in
  (* [2*r > g] phrased without the doubling, which wraps when
     [g > max_int/2]; [g - r] never overflows since 0 <= r < g. *)
  if r > Intx.sub g r then Intx.sub r g else r

let nearest_residue a g target =
  if g <= 0 then Intx.div_by_zero "nearest_residue";
  let r = fmod (Intx.sub a target) g in
  (* r is the offset of the class representative just above [target];
     the representative below is [g - r] away.  Pick the side first and
     only then materialize it: the rejected representative may not fit
     in an [int] even when the chosen one does. *)
  if Intx.sub g r < r then Intx.sub target (Intx.sub g r)
  else Intx.add target r

let divides d a = if d = 0 then a = 0 else a mod d = 0
