(** Overflow-checked native integer arithmetic.

    Dependence equations multiply subscript coefficients by loop bounds;
    with hand-linearized references the products grow quickly (the paper's
    symbolic example already reaches [N*N*k]).  Rather than silently wrap,
    every arithmetic operation used by the analyses goes through this
    module and raises {!Overflow} when the mathematical result does not
    fit in a native [int]. *)

exception Overflow of string
(** Raised when a checked operation overflows.  The payload names the
    operation, e.g. ["mul"]. *)

exception Div_by_zero of string
(** Raised by division-like helpers (see {!Numth}) on a zero divisor,
    instead of the untyped [Stdlib.Division_by_zero] that would escape
    the engine's fault taxonomy.  The payload names the operation,
    e.g. ["fdiv"]. *)

val div_by_zero : string -> 'a
(** [div_by_zero op] raises {!Div_by_zero} with the operation name. *)

val add : int -> int -> int
(** [add a b] is [a + b]; raises {!Overflow} if the sum does not fit. *)

val sub : int -> int -> int
(** [sub a b] is [a - b]; raises {!Overflow} if the difference does not
    fit. *)

val mul : int -> int -> int
(** [mul a b] is [a * b]; raises {!Overflow} if the product does not
    fit. *)

val neg : int -> int
(** [neg a] is [-a]; raises {!Overflow} on [min_int]. *)

val abs : int -> int
(** [abs a] is the absolute value of [a]; raises {!Overflow} on
    [min_int]. *)

val pow : int -> int -> int
(** [pow b e] is [b] raised to the nonnegative power [e]; raises
    {!Overflow} when the result does not fit and [Invalid_argument] when
    [e < 0]. *)

val sum : int list -> int
(** [sum xs] adds the elements of [xs] with overflow checking. *)

val pos_part : int -> int
(** [pos_part c] is the paper's [c+]: [c] if [c >= 0], else [0]. *)

val neg_part : int -> int
(** [neg_part c] is the paper's [c-]: [c] if [c <= 0], else [0]. *)
