(** Structured tracing and latency telemetry.

    One subsystem answers "where does the wall-clock go": scoped {e
    spans} and {e instant events} recorded into per-domain ring buffers
    (recording never takes a cross-domain lock), exported in the Chrome
    [trace_event] JSON format (loadable in [chrome://tracing] or
    Perfetto, one track per domain), plus fixed-bucket log-scale latency
    {e histograms} sharded per domain for [p50/p90/p99/max]-style
    tables.

    Cost model.  The subsystem has three levels: {!Off} (the default)
    makes every entry point a single atomic load and an immediate
    return — unmeasurable on the analysis workloads; {!Timing} records
    histograms only (one clock read and a handful of plain writes to
    domain-local memory per observation); {!Full} additionally records
    span/instant events into the ring buffers.  The enabled-overhead
    budget is < 3% on the whole-corpus analysis (measured by
    [bench/main.exe -- trace]).

    High-volume spans can be {e sampled}: a span started with
    [~sample:true] consults the deterministic sampling knob
    ([DLZ_TRACE_SAMPLE], or {!set_sampling}); a sampled-out span
    suppresses its entire subtree, so the exported stream never
    contains orphan children.

    Recording is domain-safe by construction (each domain writes only
    its own buffer); {!events}, {!clear} and the exporters must only be
    called while no other domain is recording (e.g. after the pool has
    been joined). *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds.  The single timing source shared by
    budgets, benches, and the recorder. *)

(** {1 Recording level} *)

type level =
  | Off  (** No recording at all (default). *)
  | Timing  (** Histograms only — powers the latency table. *)
  | Full  (** Histograms + span/instant events in the ring buffers. *)

val level : unit -> level
val set_level : level -> unit

val timing_on : unit -> bool
(** [level () <> Off]. *)

val recording_on : unit -> bool
(** [level () = Full]. *)

(** {1 Category mask}

    Under {!Full}, spans and instants carry a category ("strategy",
    "pool", "budget", …).  The mask restricts recording to the
    categories named in it, so Full costs only what you actually
    record; the empty category is always enabled (the per-request
    serve span and CLI phase spans cannot be silenced by accident).
    Initialised from [DLZ_TRACE_MASK] (comma-separated), overridden by
    [--trace-mask]. *)

val set_mask : string list option -> unit
(** [set_mask None] enables every category (the default);
    [set_mask (Some cats)] records only spans/instants whose category
    is [""] or a member of [cats]. *)

val mask : unit -> string list option
(** Current mask, sorted and de-duplicated. *)

(** {1 Sampling} *)

val set_sampling : ?seed:int64 -> float -> unit
(** [set_sampling ~seed rate] keeps each [~sample:true] span with
    probability [rate] (clamped to [0, 1]).  The decision is a pure
    function of [seed] and the recording domain's span counter, so a
    given serial run reproduces exactly under the same seed. *)

val sampling : unit -> int64 * float
(** Current [(seed, rate)]. *)

val sampling_of_string : string -> (int64 * float, string) result
(** Parses ["RATE"] or ["SEED:RATE"] — the format of the
    [DLZ_TRACE_SAMPLE] environment variable, read at startup. *)

(** {1 Spans and instant events} *)

type span
(** A token for an open span.  Spans must be finished on the domain
    that started them, in LIFO order (scoped use via {!with_span} is
    the norm). *)

val null_span : span
(** A span that records nothing — what {!start} returns when recording
    is off or the span was sampled out. *)

val is_live : span -> bool
(** True only for a span that will emit an [E] event at {!finish} —
    recording was on and the span was not sampled out.  Hot call sites
    use it to skip building expensive finish-time [args]; {!finish}
    must still be called either way (a sampled-out span tracks
    suppression depth until it closes). *)

val start :
  ?cat:string ->
  ?sample:bool ->
  ?args:(string * string) list ->
  ?lazy_args:(unit -> (string * string) list) ->
  ?ts:int64 ->
  string ->
  span
(** [start name] opens a span: records a [B] event now, and its
    matching [E] at {!finish}.  [args] annotate the begin event;
    attach result-dependent attributes to {!finish} instead.
    [~sample:true] subjects the span to the sampling knob.
    [lazy_args] supersedes [args] when given and is forced only at
    {e export} time — a span that is off, suppressed, sampled out, or
    overwritten in the ring before anyone reads it never formats its
    argument strings.  The thunk must therefore be pure: close over
    immutable data fixed at record time.  [ts] supplies the event
    timestamp when the caller already read the clock (sharing one
    read between a histogram observation and the event), else the
    clock is read here.  A span whose category is masked out records
    nothing and returns a span for which {!finish} is a no-op. *)

val finish :
  ?args:(string * string) list ->
  ?lazy_args:(unit -> (string * string) list) ->
  ?ts:int64 ->
  span ->
  unit
(** [lazy_args]/[ts] as in {!start} — finish-time attributes on hot
    paths should be thunks so a Timing-level run never builds them. *)

val with_span :
  ?cat:string ->
  ?sample:bool ->
  ?args:(string * string) list ->
  ?lazy_args:(unit -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** Scoped {!start}/{!finish}; the span is closed even if [f] raises,
    so exported streams stay balanced. *)

val instant :
  ?cat:string ->
  ?args:(string * string) list ->
  ?lazy_args:(unit -> (string * string) list) ->
  ?ts:int64 ->
  string ->
  unit
(** A zero-duration event ("budget exhausted here").  Instants ignore
    sampling suppression: rare, load-bearing marks always land (unless
    their category is masked out). *)

(** {1 Buffers} *)

val set_buffer_capacity : int -> unit
(** Ring capacity (events) for buffers of domains that first record
    {e after} this call; existing buffers keep their size.  Rounded up
    to a power of two (index masking keeps the push path division
    free).  Default 65536, or [DLZ_TRACE_BUF].  When a ring wraps, the
    oldest events are overwritten and counted as dropped. *)

type phase = B | E | I

type event = {
  ev_seq : int;  (** Per-buffer sequence number (merge tie-break). *)
  ev_ts : int64;  (** {!now_ns} at record time. *)
  ev_ph : phase;
  ev_name : string;
  ev_cat : string;
  ev_args : (string * string) list;
}

val events : unit -> (int * event) list
(** All recorded events as [(domain_id, event)], merged across the
    per-domain buffers in the deterministic order [(ts, domain, seq)].
    Call only when no domain is recording. *)

val dropped : unit -> int
(** Events lost to ring overwrites, across all buffers. *)

val clear : unit -> unit
(** Empties every buffer and resets the sampling/suppression counters
    (so a cleared recorder replays deterministically). *)

(** {1 Chrome trace_event export} *)

val to_chrome_json : unit -> string
(** The merged stream as a Chrome [trace_event] JSON document: [B]/[E]
    duration events and [i] instants, [tid] = domain id (with
    [thread_name] metadata per track), timestamps in microseconds
    relative to the earliest event.  The exporter guarantees balance
    even across ring overwrites: an [E] whose [B] was overwritten is
    skipped, and a [B] still open at export is closed synthetically
    (marked [truncated]). *)

val export_chrome : string -> unit
(** Writes {!to_chrome_json} to a file. *)

(** {1 Latency histograms} *)

module Hist : sig
  (** Fixed-bucket log-scale histogram: 8 buckets per power of two of
      nanoseconds.  Observations land in domain-local shards (plain
      writes, no locks, no cross-domain cache traffic); reads sum the
      shards.  A read racing another domain's in-flight observation
      may miss it, but everything recorded before a join — the pool
      joins its workers before any reporting — is counted exactly. *)

  type t

  val create : unit -> t
  val observe : t -> int64 -> unit
  (** Records a duration in nanoseconds (negative clamps to 0). *)

  val count : t -> int
  val total_ns : t -> int64
  val max_ns : t -> int64

  val percentile : t -> float -> float
  (** [percentile t q] estimates the [q]-quantile in nanoseconds
      ([q] clamped to [0, 1]) as the geometric midpoint of the bucket
      holding that rank, capped at the exact observed max; [0.] when
      empty. *)

  val merged : t list -> t
  (** A fresh histogram holding the bucket-wise sum of the inputs — a
      point-in-time snapshot, not a live view.  Because every histogram
      shares the same bucket layout, percentiles of the merge are exact:
      recording once into a partition (say per cache disposition) and
      merging for the aggregate row costs the hot path one observation
      instead of two. *)

  val reset : t -> unit

  val snapshot : t -> Dlz_obs.Registry.hist_snapshot
  (** Exposition snapshot: count/sum/max, p50/p99, and cumulative
      counts at per-octave boundaries ([le = 2^(o+1) - 1] ns,
      inclusive), trimmed at the octave holding the observed max (the
      implicit +Inf bucket covers the rest).  Deterministic for a
      given set of recorded durations. *)

  val buckets : int
  (** Number of buckets. *)

  val bucket_of_ns : int64 -> int
  (** Monotone bucket index for a duration. *)

  val bucket_bounds : int -> float * float
  (** [lo, hi) in nanoseconds covered by a bucket (bucket 0 reaches
      down to 0). *)
end

val hist : string -> Hist.t
(** The process-wide named histogram registry ("strategy.gcd",
    "query", "cache.miss", …): finds or creates.  The lookup takes a
    mutex — cache the handle on genuinely hot paths. *)

val observe_ns : string -> int64 -> unit
(** [Hist.observe (hist name)] when {!timing_on}, else nothing. *)

val time : string -> (unit -> 'a) -> 'a
(** Runs [f], observing its duration into [hist name] when
    {!timing_on} (duration is recorded even if [f] raises). *)

val hist_rows : unit -> (string * Hist.t) list
(** Registry snapshot, sorted by name. *)

val reset_hists : unit -> unit
(** Zeroes every registered histogram (handles stay valid). *)
