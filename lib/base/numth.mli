(** Elementary number theory used throughout dependence testing. *)

val gcd : int -> int -> int
(** [gcd a b] is the nonnegative greatest common divisor of [a] and [b];
    [gcd 0 0 = 0]. *)

val gcd_list : int list -> int
(** [gcd_list xs] folds {!gcd} over [xs]; [gcd_list [] = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the nonnegative least common multiple; overflow-checked. *)

val egcd : int -> int -> int * int * int
(** [egcd a b] is [(g, x, y)] with [g = gcd a b >= 0] and
    [a*x + b*y = g]. *)

val fdiv : int -> int -> int
(** [fdiv a b] is the floor division of [a] by [b]:
    the unique [q] with [b*q <= a < b*(q+1)] for [b > 0].
    Raises {!Dlz_base.Intx.Div_by_zero} when [b = 0]. *)

val fmod : int -> int -> int
(** [fmod a b] is the floor remainder: [a - b * fdiv a b], which for
    [b > 0] lies in [[0, b-1]].  Raises {!Dlz_base.Intx.Div_by_zero}
    when [b = 0]. *)

val cdiv : int -> int -> int
(** [cdiv a b] is the ceiling division of [a] by [b].
    Raises {!Dlz_base.Intx.Div_by_zero} when [b = 0]. *)

val symmetric_mod : int -> int -> int
(** [symmetric_mod a g] is the representative of [a (mod g)] with least
    absolute value, ties broken toward the positive representative: the
    result lies in [(-g/2, g/2]].  Exact for every [g > 0] up to
    [max_int] (no intermediate doubling).  Raises
    {!Dlz_base.Intx.Div_by_zero} when [g <= 0]. *)

val nearest_residue : int -> int -> int -> int
(** [nearest_residue a g target] is the representative of [a (mod g)]
    ([g > 0]) closest to [target] (ties toward the larger).  Used to pick
    the split constant [r] in the delinearization algorithm.  Raises
    {!Dlz_base.Intx.Div_by_zero} when [g <= 0], and
    {!Dlz_base.Intx.Overflow} when the nearest representative does not
    fit in an [int]. *)

val divides : int -> int -> bool
(** [divides d a] is [true] iff [d] divides [a]; [divides 0 a = (a = 0)]. *)
