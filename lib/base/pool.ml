(* Work-stealing domain pool.

   Each domain slot (the caller is slot 0, spawned workers are slots
   1..size-1) owns a deque of pending chunk jobs.  A map call deals its
   chunks round-robin over all deques up front; every domain then runs
   its own deque LIFO (newest first — hot in cache) and, when it runs
   dry, steals the *oldest* chunk from another deque (FIFO end), so a
   thief takes the work its victim would have reached last.  The two
   ends never compete for the same element except at size 1, and each
   deque has its own lock, so domains touch a shared line only when
   dealing, stealing, or parking — never per element. *)

type deque = {
  dq_lock : Mutex.t;
  mutable dq_buf : (unit -> unit) option array;  (* circular; None = hole *)
  mutable dq_head : int;  (* steal end: next index to steal (monotonic) *)
  mutable dq_tail : int;  (* owner end: next push index (monotonic) *)
}

type pool = {
  size : int;  (* parallelism width: workers + the calling domain *)
  deques : deque array;  (* length [size]; index = domain slot *)
  idle_m : Mutex.t;  (* guards [epoch] and [stop] *)
  idle_c : Condition.t;  (* workers park here between bursts of work *)
  mutable epoch : int;  (* bumped on every deal — the wake-up signal *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

type t = Seq | Par of pool

(* --- metrics and tuning --------------------------------------------------- *)

(* Process-wide so they survive the short-lived pools [with_jobs] spins
   up per run, and so [Engine.reset_metrics] has one thing to reset. *)

let steal_count = Atomic.make 0
let steals () = Atomic.get steal_count

(* Exponential moving average of the observed per-element cost (ns) of
   auto-chunked maps: the feedback that sizes the next map's chunks. *)
let ema_elem_ns = Atomic.make 0

let reset_metrics () =
  Atomic.set steal_count 0;
  Atomic.set ema_elem_ns 0

(* The pool's two process-wide numbers, scrapeable: steal volume says
   how unbalanced the deal was, the EMA says what the auto-tuner
   currently believes an element costs. *)
let () =
  Dlz_obs.Registry.register ~name:"pool" ~reset:reset_metrics (fun () ->
      [
        Dlz_obs.Registry.sample ~help:"chunks stolen across domains"
          "vic_pool_steals_total"
          (Dlz_obs.Registry.Counter (Atomic.get steal_count));
        Dlz_obs.Registry.sample
          ~help:"EMA of observed per-element cost (nanoseconds)"
          "vic_pool_ema_elem_ns"
          (Dlz_obs.Registry.Gauge (float_of_int (Atomic.get ema_elem_ns)));
      ])

let note_elem_ns ns =
  let old = Atomic.get ema_elem_ns in
  let next = if old = 0 then ns else ((3 * old) + ns) / 4 in
  Atomic.set ema_elem_ns next

(* A chunk should cost enough that dealing/stealing it is noise.  The
   floor is 20µs of work per chunk; when the queue-wait histogram has
   data (timing on), the floor grows to 32x the median dispatch
   latency, so a loaded machine coarsens its own chunks.  The cap keeps
   at least two chunks per domain in play — thieves need something to
   steal. *)
let auto_chunk_for ~size ~ema ~wait_p50 n =
  let max_chunk = max 1 (n / (2 * size)) in
  if ema <= 0 then min max_chunk (max 1 (n / (8 * size)))
  else
    let target_ns = max 20_000 (32 * wait_p50) in
    min max_chunk (max 1 (target_ns / ema))

let queue_wait_p50 () =
  let h = Trace.hist "pool.queue_wait" in
  if Trace.Hist.count h = 0 then 0
  else int_of_float (Trace.Hist.percentile h 0.5)

let auto_chunk_par p n =
  auto_chunk_for ~size:p.size ~ema:(Atomic.get ema_elem_ns)
    ~wait_p50:(queue_wait_p50 ()) n

(* --- deque primitives (each call holds that deque's lock only) ------------- *)

let dq_create () =
  {
    dq_lock = Mutex.create ();
    dq_buf = Array.make 64 None;
    dq_head = 0;
    dq_tail = 0;
  }

let dq_grow dq =
  let cap = Array.length dq.dq_buf in
  let buf = Array.make (2 * cap) None in
  for i = dq.dq_head to dq.dq_tail - 1 do
    buf.(i mod (2 * cap)) <- dq.dq_buf.(i mod cap)
  done;
  dq.dq_buf <- buf

let dq_push dq job =
  Mutex.lock dq.dq_lock;
  let cap = Array.length dq.dq_buf in
  if dq.dq_tail - dq.dq_head = cap then dq_grow dq;
  dq.dq_buf.(dq.dq_tail mod Array.length dq.dq_buf) <- Some job;
  dq.dq_tail <- dq.dq_tail + 1;
  Mutex.unlock dq.dq_lock

(* Owner end: newest chunk (LIFO). *)
let dq_pop dq =
  Mutex.lock dq.dq_lock;
  let r =
    if dq.dq_tail = dq.dq_head then None
    else begin
      dq.dq_tail <- dq.dq_tail - 1;
      let i = dq.dq_tail mod Array.length dq.dq_buf in
      let j = dq.dq_buf.(i) in
      dq.dq_buf.(i) <- None;
      j
    end
  in
  Mutex.unlock dq.dq_lock;
  r

(* Thief end: oldest chunk (FIFO). *)
let dq_steal dq =
  Mutex.lock dq.dq_lock;
  let r =
    if dq.dq_tail = dq.dq_head then None
    else begin
      let i = dq.dq_head mod Array.length dq.dq_buf in
      let j = dq.dq_buf.(i) in
      dq.dq_buf.(i) <- None;
      dq.dq_head <- dq.dq_head + 1;
      j
    end
  in
  Mutex.unlock dq.dq_lock;
  r

(* Own deque first, then scan the others starting just past our slot
   (spreads thieves over victims). *)
let find_job p slot =
  match dq_pop p.deques.(slot) with
  | Some _ as j -> j
  | None ->
      let n = p.size in
      let rec scan k =
        if k >= n then None
        else
          match dq_steal p.deques.((slot + k) mod n) with
          | Some _ as j ->
              Atomic.incr steal_count;
              j
          | None -> scan (k + 1)
      in
      scan 1

let worker p slot =
  Trace.with_span ~cat:"pool" "pool.worker" @@ fun () ->
  let rec run last_epoch =
    match find_job p slot with
    | Some job ->
        job ();
        run last_epoch
    | None ->
        Mutex.lock p.idle_m;
        while p.epoch = last_epoch && not p.stop do
          Condition.wait p.idle_c p.idle_m
        done;
        let e = p.epoch and stop = p.stop in
        Mutex.unlock p.idle_m;
        if not stop then run e
  in
  run 0

let create ~domains =
  if domains <= 1 then Seq
  else begin
    let p =
      {
        size = domains;
        deques = Array.init domains (fun _ -> dq_create ());
        idle_m = Mutex.create ();
        idle_c = Condition.create ();
        epoch = 0;
        stop = false;
        workers = [||];
      }
    in
    p.workers <-
      Array.init (domains - 1) (fun i ->
          Domain.spawn (fun () -> worker p (i + 1)));
    Par p
  end

let domains = function Seq -> 1 | Par p -> p.size

let shutdown = function
  | Seq -> ()
  | Par p ->
      Mutex.lock p.idle_m;
      p.stop <- true;
      Condition.broadcast p.idle_c;
      Mutex.unlock p.idle_m;
      let ws = p.workers in
      p.workers <- [||];
      Array.iter Domain.join ws

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Pool.resolve_jobs: jobs must be >= 0"
  else if jobs = 0 then Domain.recommended_domain_count ()
  else jobs

let auto_chunk t n =
  match t with Seq -> max 1 n | Par p -> auto_chunk_par p n

let with_jobs ?pool ~jobs f =
  match pool with
  | Some _ -> f pool
  | None ->
      let jobs = resolve_jobs jobs in
      if jobs <= 1 then f None
      else with_pool ~domains:jobs (fun p -> f (Some p))

let map t ?chunk f arr =
  (match chunk with
  | Some c when c <= 0 -> invalid_arg "Pool.map: chunk must be > 0"
  | _ -> ());
  match t with
  | Seq -> Array.map f arr
  | Par p ->
      let n = Array.length arr in
      if n = 0 then [||]
      else begin
        let chunk_sz, auto =
          match chunk with
          | Some c -> (c, false)
          | None -> (auto_chunk_par p n, true)
        in
        (* Per-call completion state.  Each output slot is written by
           exactly one chunk; reading [out] after [remaining] reaches 0
           under [dm] gives the happens-before edge for those writes. *)
        let out = Array.make n None in
        let nchunks = ((n - 1) / chunk_sz) + 1 in
        let dm = Mutex.create () in
        let finished = Condition.create () in
        let remaining = ref nchunks in
        let work_ns = Atomic.make 0 in
        let enqueued_ns = if Trace.timing_on () then Trace.now_ns () else 0L in
        let run_chunk c () =
          (* Exceptions are contained per element, not per chunk: a
             poisoned job can neither kill its domain nor starve the
             elements sharing its chunk.  Failures re-surface
             deterministically after the full map completes. *)
          let work () =
            let t0 = if auto then Trace.now_ns () else 0L in
            let lo = c * chunk_sz in
            let hi = min n (lo + chunk_sz) in
            for i = lo to hi - 1 do
              out.(i) <-
                Some
                  (try Ok (f arr.(i))
                   with e -> Error (e, Printexc.get_raw_backtrace ()))
            done;
            if auto then
              let dt = Int64.to_int (Int64.sub (Trace.now_ns ()) t0) in
              ignore (Atomic.fetch_and_add work_ns dt)
          in
          (if not (Trace.timing_on ()) then work ()
           else begin
             (* Queue wait = deal-to-start latency of this chunk on
                whichever domain picked it up — the signal the chunk
                auto-tuner feeds on. *)
             let wait = Int64.sub (Trace.now_ns ()) enqueued_ns in
             Trace.Hist.observe (Trace.hist "pool.queue_wait") wait;
             Trace.with_span ~cat:"pool"
               ~lazy_args:(fun () ->
                 [
                   ("chunk", string_of_int c);
                   ("queue_wait_ns", Int64.to_string wait);
                 ])
               "pool.chunk" work
           end);
          Mutex.lock dm;
          decr remaining;
          if !remaining = 0 then Condition.broadcast finished;
          Mutex.unlock dm
        in
        (* Deal chunks round-robin across every deque (slot 0 = the
           caller's own), then bump the epoch to wake parked workers.
           The deal order never affects the output — results land by
           index — only who is likely to run what. *)
        for c = 0 to nchunks - 1 do
          dq_push p.deques.(c mod p.size) (run_chunk c)
        done;
        Mutex.lock p.idle_m;
        p.epoch <- p.epoch + 1;
        Condition.broadcast p.idle_c;
        Mutex.unlock p.idle_m;
        (* The calling domain works its own deque and steals like any
           worker instead of idling. *)
        let rec help () =
          match find_job p 0 with
          | Some job ->
              job ();
              help ()
          | None -> ()
        in
        help ();
        Mutex.lock dm;
        while !remaining > 0 do
          Condition.wait finished dm
        done;
        Mutex.unlock dm;
        if auto then begin
          let total = Atomic.get work_ns in
          if total > 0 then note_elem_ns (max 1 (total / n))
        end;
        (* Every element ran.  Re-raise the lowest-index failure — the
           same one the sequential path would have hit first. *)
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | Some (Ok _) | None -> ())
          out;
        Array.map
          (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
          out
      end
