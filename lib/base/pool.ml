type pool = {
  size : int;  (* parallelism width: workers + the calling domain *)
  m : Mutex.t;  (* guards [jobs] and [stop] *)
  work : Condition.t;  (* signalled when jobs arrive or on shutdown *)
  jobs : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

type t = Seq | Par of pool

let take_job p =
  Mutex.lock p.m;
  let j = Queue.take_opt p.jobs in
  Mutex.unlock p.m;
  j

let worker p =
  Trace.with_span ~cat:"pool" "pool.worker" @@ fun () ->
  let rec loop () =
    Mutex.lock p.m;
    let rec next () =
      if p.stop then None
      else
        match Queue.take_opt p.jobs with
        | Some _ as j -> j
        | None ->
            Condition.wait p.work p.m;
            next ()
    in
    let j = next () in
    Mutex.unlock p.m;
    match j with
    | Some job ->
        job ();
        loop ()
    | None -> ()
  in
  loop ()

let create ~domains =
  if domains <= 1 then Seq
  else begin
    let p =
      {
        size = domains;
        m = Mutex.create ();
        work = Condition.create ();
        jobs = Queue.create ();
        stop = false;
        workers = [||];
      }
    in
    p.workers <-
      Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker p));
    Par p
  end

let domains = function Seq -> 1 | Par p -> p.size

let shutdown = function
  | Seq -> ()
  | Par p ->
      Mutex.lock p.m;
      p.stop <- true;
      Condition.broadcast p.work;
      Mutex.unlock p.m;
      let ws = p.workers in
      p.workers <- [||];
      Array.iter Domain.join ws

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Pool.resolve_jobs: jobs must be >= 0"
  else if jobs = 0 then Domain.recommended_domain_count ()
  else jobs

let with_jobs ?pool ~jobs f =
  match pool with
  | Some _ -> f pool
  | None ->
      let jobs = resolve_jobs jobs in
      if jobs <= 1 then f None
      else with_pool ~domains:jobs (fun p -> f (Some p))

let map_chunked t ~chunk f arr =
  if chunk <= 0 then invalid_arg "Pool.map_chunked: chunk must be > 0";
  match t with
  | Seq -> Array.map f arr
  | Par p ->
      let n = Array.length arr in
      if n = 0 then [||]
      else begin
        (* Per-call completion state.  Each output slot is written by
           exactly one chunk; reading [out] after [remaining] reaches 0
           under [dm] gives the happens-before edge for those writes. *)
        let out = Array.make n None in
        let nchunks = ((n - 1) / chunk) + 1 in
        let dm = Mutex.create () in
        let finished = Condition.create () in
        let remaining = ref nchunks in
        let enqueued_ns = if Trace.timing_on () then Trace.now_ns () else 0L in
        let run_chunk c () =
          (* Exceptions are contained per element, not per chunk: a
             poisoned job can neither kill its worker domain nor starve
             the elements sharing its chunk.  Failures are re-surfaced
             deterministically after the full map completes. *)
          let work () =
            let lo = c * chunk in
            let hi = min n (lo + chunk) in
            for i = lo to hi - 1 do
              out.(i) <-
                Some
                  (try Ok (f arr.(i))
                   with e -> Error (e, Printexc.get_raw_backtrace ()))
            done
          in
          (if not (Trace.timing_on ()) then work ()
           else begin
             (* Queue wait = dispatch-to-start latency of this chunk on
                whichever domain picked it up. *)
             let wait = Int64.sub (Trace.now_ns ()) enqueued_ns in
             Trace.Hist.observe (Trace.hist "pool.queue_wait") wait;
             Trace.with_span ~cat:"pool"
               ~args:
                 [
                   ("chunk", string_of_int c);
                   ("queue_wait_ns", Int64.to_string wait);
                 ]
               "pool.chunk" work
           end);
          Mutex.lock dm;
          decr remaining;
          if !remaining = 0 then Condition.broadcast finished;
          Mutex.unlock dm
        in
        Mutex.lock p.m;
        for c = 0 to nchunks - 1 do
          Queue.add (run_chunk c) p.jobs
        done;
        Condition.broadcast p.work;
        Mutex.unlock p.m;
        (* The calling domain drains the same queue instead of idling. *)
        let rec help () =
          match take_job p with
          | Some job ->
              job ();
              help ()
          | None -> ()
        in
        help ();
        Mutex.lock dm;
        while !remaining > 0 do
          Condition.wait finished dm
        done;
        Mutex.unlock dm;
        (* Every element ran.  Re-raise the lowest-index failure — the
           same one the sequential path would have hit first. *)
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | Some (Ok _) | None -> ())
          out;
        Array.map
          (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
          out
      end
