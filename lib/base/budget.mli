(** Unified resource budgets: step fuel plus a wall-clock deadline.

    A budget bounds how much work a computation may do, along two axes
    at once: an integer {e fuel} supply decremented by [spend], and a
    monotonic-clock {e deadline} checked opportunistically.  Budgets
    nest: a child created with [sub] draws fuel from its parent chain
    and never outlives the parent's deadline, so an engine-wide budget
    caps every per-query and per-strategy budget carved out of it.

    All fuel counters are atomic; a single budget may be spent from
    several domains concurrently (the engine does exactly that under
    [--jobs N]).  Exhaustion is reported by raising [Exhausted] with a
    short machine-readable reason ("fuel", "deadline", or a custom tag
    such as "chaos"). *)

exception Exhausted of string
(** Raised by [spend] / [check] when the budget is used up.  The
    payload names the axis that ran out. *)

type t

val unlimited : t
(** The budget that never exhausts.  [spend] on it is O(1) and
    allocation-free; it is the default everywhere. *)

val create : ?fuel:int -> ?timeout_ms:int -> unit -> t
(** A fresh root budget.  [fuel] bounds the number of [spend] steps;
    [timeout_ms] sets a deadline that many milliseconds from now on the
    monotonic clock.  Omitting both returns [unlimited]. *)

val sub : ?fuel:int -> ?timeout_ms:int -> t -> t
(** [sub parent] carves a child budget out of [parent].  The child's
    fuel (if any) is an additional local cap — spending on the child
    also drains every ancestor with fuel — and its deadline is the
    earlier of its own and the parent chain's.  With neither [fuel] nor
    [timeout_ms], the child is the parent itself. *)

val spend : ?cost:int -> t -> unit
(** Consume [cost] (default 1) steps.  Raises [Exhausted "fuel"] when
    any budget on the chain runs dry, or [Exhausted "deadline"] when
    the deadline has passed (the clock is probed once every few hundred
    spends, so deadline detection is amortized). *)

val check : t -> unit
(** Raise [Exhausted _] iff the budget is already exhausted; never
    consumes fuel and always probes the clock. *)

val exhausted : t -> string option
(** Non-raising probe: [Some reason] iff [check] would raise. *)

val remaining_fuel : t -> int option
(** Fuel left on the tightest fuel-carrying budget of the chain, if
    any budget on the chain carries fuel.  Never negative. *)

val is_unlimited : t -> bool
(** True iff the budget (and its whole parent chain) can never
    exhaust. *)
