exception Overflow of string
exception Div_by_zero of string

let overflow op = raise (Overflow op)
let div_by_zero op = raise (Div_by_zero op)

let add a b =
  let s = a + b in
  (* Signed overflow iff both operands share a sign the sum lost. *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    overflow "add"
  else s

let neg a = if a = min_int then overflow "neg" else -a
let sub a b = if b = min_int then add (add a max_int) 1 else add a (-b)
let abs a = if a < 0 then neg a else a

let mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a || (a = min_int && b = -1) || (b = min_int && a = -1) then
      overflow "mul"
    else p

let pow b e =
  if e < 0 then invalid_arg "Intx.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e asr 1)
    else go acc (mul b b) (e asr 1)
  in
  (* Avoid squaring b one step past the needed precision. *)
  if e = 0 then 1 else if e = 1 then b else go 1 b e

let sum xs = List.fold_left add 0 xs
let pos_part c = if c >= 0 then c else 0
let neg_part c = if c <= 0 then c else 0
