(** Closed integer intervals.

    The delinearization algorithm's running [smin]/[smax] pair and the
    Banerjee bounds are interval computations; this module makes them
    explicit and overflow-checked.  The empty interval is represented
    distinctly so that infeasible direction constraints propagate. *)

type t
(** A (possibly empty) closed interval of integers. *)

val make : int -> int -> t
(** [make lo hi] is [[lo, hi]], empty when [lo > hi]. *)

val empty : t
val zero : t
(** The singleton [[0, 0]]. *)

val point : int -> t
(** [point v] is the singleton [[v, v]]. *)

val is_empty : t -> bool
val lo : t -> int
(** Lower bound; raises [Invalid_argument] on the empty interval. *)

val hi : t -> int
(** Upper bound; raises [Invalid_argument] on the empty interval. *)

val mem : int -> t -> bool
val contains_zero : t -> bool

val add : t -> t -> t
(** Minkowski sum. *)

val neg : t -> t

val scale : int -> t -> t
(** [scale c iv] is [{ c*x | x in iv }]'s hull (exact for intervals). *)

val join : t -> t -> t
(** Convex hull of the union. *)

val inter : t -> t -> t

val width : t -> int
(** [width iv] is [hi - lo]; [-1] for the empty interval. *)

val max_abs : t -> int
(** [max_abs iv] is [max |lo| |hi|]; raises [Invalid_argument] on the
    empty interval. *)

val shift : int -> t -> t
(** [shift c iv] translates [iv] by [c]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Mutable interval accumulator for the per-query hot paths.

    The classic tests fold a scaled box per equation term; doing that
    with immutable {!t} values allocates one block per step.  An
    {!Acc.acc} is created once (typically per domain) and reused: every
    combinator here is allocation-free, and {!Acc.to_ivl} converts back
    to an immutable interval only when a caller needs one. *)
module Acc : sig
  type acc

  val create : unit -> acc
  (** A fresh accumulator holding the point [0]. *)

  val set_point : acc -> int -> unit
  (** Reset to the singleton [[v, v]]. *)

  val set_empty : acc -> unit

  val add_scaled : acc -> int -> int -> unit
  (** [add_scaled a c ub] adds [c * [0, ub]] (Minkowski), the
      lhs-interval step.  Requires [ub >= 0]; empty absorbs. *)

  val add_bounds : acc -> int -> int -> unit
  (** [add_bounds a lo hi] adds the interval [[lo, hi]] (Minkowski);
      requires [lo <= hi]; empty absorbs. *)

  val add_ivl : acc -> t -> unit
  (** Minkowski-add an immutable interval (empty absorbs). *)

  val contains_zero : acc -> bool
  val to_ivl : acc -> t
end
