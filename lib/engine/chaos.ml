module Budget = Dlz_base.Budget
module Intx = Dlz_base.Intx
module Prng = Dlz_base.Prng
module Problem = Dlz_deptest.Problem

exception Injected of string

type t = { seed : int64; rate_ppm : int; hits : int Atomic.t }

let clamp_rate r = if r < 0. then 0. else if r > 1. then 1. else r

let make ~seed ~rate =
  {
    seed;
    rate_ppm = int_of_float (clamp_rate rate *. 1_000_000.);
    hits = Atomic.make 0;
  }

let seed t = t.seed
let rate t = float_of_int t.rate_ppm /. 1_000_000.
let to_string t = Printf.sprintf "%Ld:%g" t.seed (rate t)

let of_string s =
  match String.index_opt s ':' with
  | None -> Error "expected <seed>:<rate>"
  | Some i -> (
      let seed_s = String.sub s 0 i in
      let rate_s = String.sub s (i + 1) (String.length s - i - 1) in
      match (Int64.of_string_opt seed_s, float_of_string_opt rate_s) with
      | Some seed, Some r when r >= 0. && r <= 1. ->
          Ok (make ~seed ~rate:r)
      | Some _, Some _ -> Error "rate must be in [0, 1]"
      | None, _ -> Error (Printf.sprintf "bad seed %S" seed_s)
      | _, None -> Error (Printf.sprintf "bad rate %S" rate_s))

let state =
  ref
    (match Sys.getenv_opt "DLZ_CHAOS" with
    | None | Some "" -> None
    | Some s -> (
        match of_string s with Ok c -> Some c | Error _ -> None))

let current () = !state
let set_current c = state := c
let strikes t = Atomic.get t.hits
let reset_strikes t = Atomic.set t.hits 0

type io_fault = Torn_frame | Disconnect | Slow_write

let io_fault_to_string = function
  | Torn_frame -> "torn-frame"
  | Disconnect -> "disconnect"
  | Slow_write -> "slow-write"

let io_strike t ~point ~key =
  if t.rate_ppm = 0 then None
  else begin
    (* Same content-keyed discipline as [strike]: the decision is a
       pure function of seed + (point, key), so a given frame meets the
       same socket fault on every run and under any worker count. *)
    let h = Hashtbl.hash_param 256 1024 (point, key) in
    let g = Prng.create (Int64.logxor t.seed (Int64.of_int h)) in
    if Prng.int g 1_000_000 < t.rate_ppm then begin
      Atomic.incr t.hits;
      Some
        (match Prng.int g 3 with
        | 0 -> Torn_frame
        | 1 -> Disconnect
        | _ -> Slow_write)
    end
    else None
  end

let strike t ~strategy (p : Problem.t) =
  if t.rate_ppm > 0 then begin
    (* Content-keyed: the decision depends only on seed + (strategy,
       problem), so every domain, run, and replay sees the same fault
       at the same query.  [hash_param] with deep limits keeps distinct
       problems from aliasing. *)
    let h = Hashtbl.hash_param 256 1024 (strategy, p) in
    let g = Prng.create (Int64.logxor t.seed (Int64.of_int h)) in
    if Prng.int g 1_000_000 < t.rate_ppm then begin
      Atomic.incr t.hits;
      match Prng.int g 5 with
      | 0 -> raise (Injected "raise")
      | 1 -> raise (Intx.Overflow "chaos")
      | 2 -> raise (Budget.Exhausted "chaos")
      | 3 -> raise (Intx.Div_by_zero "chaos")
      | _ -> raise (Injected "unknown")
    end
  end
