module Poly = Dlz_symbolic.Poly
module Assume = Dlz_symbolic.Assume
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Problem = Dlz_deptest.Problem

type result = {
  verdict : Verdict.t;
  dirvecs : Dirvec.t list;
  distances : (int * Poly.t) list;
  decided_by : string;
  degraded : (string * string) list;
}

type status =
  | Decided of Verdict.t * Dirvec.t list * (int * Poly.t) list
  | Pass

type t = {
  name : string;
  applies : env:Assume.t -> Problem.t -> bool;
  run : env:Assume.t -> budget:Dlz_base.Budget.t -> Problem.t -> status;
}

let decided ?(dirvecs = []) ?(distances = []) verdict =
  Decided (verdict, dirvecs, distances)

let conservative ?(degraded = []) (p : Problem.t) =
  {
    verdict = Verdict.Dependent;
    dirvecs = [ Dirvec.all_star p.Problem.n_common ];
    distances = [];
    decided_by = "conservative";
    degraded;
  }

let result_of_status ?(degraded = []) name = function
  | Decided (verdict, dirvecs, distances) ->
      Some { verdict; dirvecs; distances; decided_by = name; degraded }
  | Pass -> None

let pp_result ppf r =
  Format.fprintf ppf "@[<h>%a [%s]%s%s@]" Verdict.pp r.verdict r.decided_by
    (match r.dirvecs with
    | [] -> ""
    | dvs -> " " ^ String.concat " " (List.map Dirvec.to_string dvs))
    (match r.degraded with
    | [] -> ""
    | ds ->
        String.concat ""
          (List.map
             (fun (s, why) -> Printf.sprintf " degraded_by: %s %s" s why)
             ds))
