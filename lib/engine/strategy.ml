module Poly = Dlz_symbolic.Poly
module Assume = Dlz_symbolic.Assume
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Problem = Dlz_deptest.Problem

type result = {
  verdict : Verdict.t;
  dirvecs : Dirvec.t list;
  distances : (int * Poly.t) list;
  decided_by : string;
}

type status =
  | Decided of Verdict.t * Dirvec.t list * (int * Poly.t) list
  | Pass

type t = {
  name : string;
  applies : env:Assume.t -> Problem.t -> bool;
  run : env:Assume.t -> Problem.t -> status;
}

let decided ?(dirvecs = []) ?(distances = []) verdict =
  Decided (verdict, dirvecs, distances)

let conservative (p : Problem.t) =
  {
    verdict = Verdict.Dependent;
    dirvecs = [ Dirvec.all_star p.Problem.n_common ];
    distances = [];
    decided_by = "conservative";
  }

let result_of_status name = function
  | Decided (verdict, dirvecs, distances) ->
      Some { verdict; dirvecs; distances; decided_by = name }
  | Pass -> None

let pp_result ppf r =
  Format.fprintf ppf "@[<h>%a [%s]%s@]" Verdict.pp r.verdict r.decided_by
    (match r.dirvecs with
    | [] -> ""
    | dvs -> " " ^ String.concat " " (List.map Dirvec.to_string dvs))
