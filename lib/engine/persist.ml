module Trace = Dlz_base.Trace
module Pool = Dlz_base.Pool
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Problem = Dlz_deptest.Problem
module Poly = Dlz_symbolic.Poly

let format_version = 1

(* Eight bytes: seven of name, one of format version.  A file whose
   first bytes differ is not a snapshot at all (as opposed to a
   snapshot for the wrong strategy set, which fails the tag check). *)
let magic = "DLZSNAP" ^ String.make 1 (Char.chr format_version)

let djb2 s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h) lxor Char.code c) s;
  !h land max_int

let tag () =
  let names = List.sort compare (Registry.names ()) in
  djb2
    (Printf.sprintf "dlz-snapshot|v%d|%s" format_version
       (String.concat "," names))

let default_path () =
  let dir =
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "vic"
    | _ -> (
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" ->
            Filename.concat (Filename.concat h ".cache") "vic"
        | _ -> Filename.concat (Filename.get_temp_dir_name ()) "vic-cache")
  in
  Filename.concat dir (Printf.sprintf "cache-v%d-%x.snap" format_version (tag ()))

(* {2 Wire format}

   header (40 bytes):
     magic (8) | tag (8, LE) | entry count (8, LE)
     | payload length (8, LE) | payload djb2 (8, LE)
   payload, per entry:
     key (len LE8 + bytes, the materialized {!Query.key_of} form)
     | verdict (1 byte) | decided_by (len LE8 + bytes)
     | dirvec count LE8, each: length LE8 + one byte per direction
     | distance count LE8, each: level LE8 + constant LE8

   All integers are 8-byte little-endian native ints (two's complement
   of the 63-bit value, high byte sign-extended), same convention as
   [Problem.Keybuf]. *)

let put_i64 b v =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr ((v asr (8 * i)) land 0xff))
  done

let put_str b s =
  put_i64 b (String.length s);
  Buffer.add_string b s

let dir_byte : Dirvec.dir -> char = function
  | Lt -> '\000'
  | Eq -> '\001'
  | Gt -> '\002'
  | Le -> '\003'
  | Ge -> '\004'
  | Ne -> '\005'
  | Star -> '\006'

exception Malformed of string

let bad fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let dir_of_byte = function
  | '\000' -> Dirvec.Lt
  | '\001' -> Dirvec.Eq
  | '\002' -> Dirvec.Gt
  | '\003' -> Dirvec.Le
  | '\004' -> Dirvec.Ge
  | '\005' -> Dirvec.Ne
  | '\006' -> Dirvec.Star
  | c -> bad "invalid direction byte %d" (Char.code c)

let verdict_byte : Verdict.t -> char = function
  | Independent -> '\000'
  | Dependent -> '\001'
  | Inapplicable -> '\002'

let verdict_of_byte = function
  | '\000' -> Verdict.Independent
  | '\001' -> Verdict.Dependent
  | '\002' -> Verdict.Inapplicable
  | c -> bad "invalid verdict byte %d" (Char.code c)

(* An entry is encodable when every distance is a constant polynomial
   and the result is clean.  Both hold for everything the cache admits;
   checking keeps the format honest if that ever changes. *)
let encodable (r : Strategy.result) =
  r.degraded = []
  && List.for_all (fun (_, p) -> Poly.to_const p <> None) r.distances

let encode_entry b key (r : Strategy.result) =
  put_str b key;
  Buffer.add_char b (verdict_byte r.verdict);
  put_str b r.decided_by;
  put_i64 b (List.length r.dirvecs);
  List.iter
    (fun dv ->
      put_i64 b (Array.length dv);
      Array.iter (fun d -> Buffer.add_char b (dir_byte d)) dv)
    r.dirvecs;
  put_i64 b (List.length r.distances);
  List.iter
    (fun (lvl, p) ->
      put_i64 b lvl;
      put_i64 b (match Poly.to_const p with Some c -> c | None -> 0))
    r.distances

(* {2 Decoding} *)

type reader = { data : string; limit : int; mutable pos : int }

let need r n =
  if n < 0 || r.limit - r.pos < n then bad "truncated payload"

let get_i64 r =
  need r 8;
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code r.data.[r.pos + i]
  done;
  r.pos <- r.pos + 8;
  !v

let get_byte r =
  need r 1;
  let c = r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_str r =
  let n = get_i64 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_count r what =
  let n = get_i64 r in
  (* Each counted item costs at least one payload byte, so a count
     beyond the remaining bytes is a lie, not just big. *)
  if n < 0 || n > r.limit - r.pos then bad "implausible %s count %d" what n;
  n

let decode_entry r =
  let key = get_str r in
  let verdict = verdict_of_byte (get_byte r) in
  let decided_by = get_str r in
  let ndv = get_count r "dirvec" in
  let dirvecs =
    List.init ndv (fun _ ->
        let len = get_count r "direction" in
        Array.init len (fun _ -> dir_of_byte (get_byte r)))
  in
  let nd = get_count r "distance" in
  let distances =
    List.init nd (fun _ ->
        let lvl = get_i64 r in
        let c = get_i64 r in
        (lvl, Poly.const c))
  in
  (key, { Strategy.verdict; dirvecs; distances; decided_by; degraded = [] })

let read_i64_at data off =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code data.[off + i]
  done;
  !v

let decode data =
  let len = String.length data in
  if len < 40 then bad "truncated header (%d bytes)" len;
  if String.sub data 0 8 <> magic then bad "bad magic";
  let file_tag = read_i64_at data 8 in
  let here = tag () in
  if file_tag <> here then
    bad "strategy-set hash mismatch (file %x, engine %x)" file_tag here;
  let count = read_i64_at data 16 in
  let payload_len = read_i64_at data 24 in
  let checksum = read_i64_at data 32 in
  if payload_len < 0 || len - 40 < payload_len then bad "truncated payload";
  if len - 40 > payload_len then bad "trailing garbage";
  let payload = String.sub data 40 payload_len in
  if djb2 payload <> checksum then bad "checksum mismatch";
  if count < 0 || count > payload_len then bad "implausible entry count %d" count;
  let r = { data = payload; limit = payload_len; pos = 0 } in
  let entries = Array.init count (fun _ -> decode_entry r) in
  if r.pos <> r.limit then bad "trailing bytes after last entry";
  entries

(* {2 Entry points} *)

let rec mkdirs d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let trivial_problem =
  lazy
    (Problem.synthetic
       { Problem.n_common = 0; common_ubs = [||]; eqs = []; opaque_dims = 0 })

let save ?(stats = Stats.global) ?(cache = Query.global_cache) path =
  Trace.with_span ~cat:"persist" ~args:[ ("path", path) ] "snapshot.save"
    (fun () ->
      let tmp = path ^ ".tmp" in
      let outcome =
        try
          let entries = Query.dump cache in
          let payload = Buffer.create (64 * (1 + List.length entries)) in
          let count =
            List.fold_left
              (fun n (key, r) ->
                if encodable r then (
                  encode_entry payload key r;
                  n + 1)
                else n)
              0 entries
          in
          let payload = Buffer.contents payload in
          let header = Buffer.create 40 in
          Buffer.add_string header magic;
          put_i64 header (tag ());
          put_i64 header count;
          put_i64 header (String.length payload);
          put_i64 header (djb2 payload);
          mkdirs (Filename.dirname path);
          Out_channel.with_open_bin tmp (fun oc ->
              Out_channel.output_string oc (Buffer.contents header);
              Out_channel.output_string oc payload;
              (* Strike after the bytes are down but before the rename:
                 the worst possible moment — a fault here must still
                 leave either the old file or nothing at [path], and no
                 [.tmp] litter.  Same containment contract as the load
                 boundary. *)
              match Chaos.current () with
              | Some c ->
                  Chaos.strike c ~strategy:"persist.save"
                    (Lazy.force trivial_problem)
              | None -> ());
          Sys.rename tmp path;
          Ok count
        with e ->
          (try if Sys.file_exists tmp then Sys.remove tmp with Sys_error _ -> ());
          (match e with
          | Sys_error m -> Error m
          | Out_of_memory -> Error "out of memory"
          | e -> Error (Printexc.to_string e))
      in
      match outcome with
      | Ok n ->
          Stats.record_snapshot_save stats;
          Ok n
      | Error _ as e ->
          Stats.record_snapshot_save_fail stats;
          e)

let load ?(stats = Stats.global) ?(cache = Query.global_cache) ?pool path =
  Trace.with_span ~cat:"persist" ~args:[ ("path", path) ] "snapshot.load"
    (fun () ->
      let outcome =
        try
          (* The same containment contract as a strategy boundary: a
             chaos strike here must degrade to a cold start, never
             crash the run. *)
          (match Chaos.current () with
          | Some c ->
              Chaos.strike c ~strategy:"persist.load" (Lazy.force trivial_problem)
          | None -> ());
          let data = In_channel.with_open_bin path In_channel.input_all in
          Ok (Query.load_entries ?pool cache (decode data))
        with
        | Malformed m -> Error m
        | Sys_error m -> Error m
        | e -> Error (Printexc.to_string e)
      in
      match outcome with
      | Ok n ->
          Stats.record_snapshot_load stats;
          Stats.record_snapshot_loaded stats n;
          Ok n
      | Error _ as e ->
          Stats.record_snapshot_reject stats;
          e)
