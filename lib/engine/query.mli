(** Canonical dependence queries and the bounded memo cache.

    Identical dependence equations arise over and over from different
    access pairs (every [A(i) = A(i-1)]-shaped statement of a program
    yields the same system).  A query is canonicalized — terms sorted,
    sign- and gcd-normalized, equations sorted — and the result of the
    first solve is replayed for every later problem with the same
    canonical form and cascade.  Canonicalization preserves the integer
    solution set exactly, so a cached result (verdict, direction
    vectors, distances) is valid verbatim for every problem sharing the
    key.  Only fully numeric problems are cacheable; symbolic problems
    (whose answers may depend on the assumption environment) are always
    solved afresh and counted as uncacheable. *)

module Problem = Dlz_deptest.Problem

type canon

val canonicalize : Problem.numeric -> canon

val key_of : cascade:string -> Problem.t -> string option
(** The cache key: cascade name + marshalled canonical form; [None] for
    problems with no numeric projection (uncacheable). *)

type cache

val create_cache : ?capacity:int -> unit -> cache
(** [capacity] (default 8192) bounds the entry count; on overflow the
    cache is flushed wholesale (counted in {!Stats}). *)

val global_cache : cache
(** Backs the default engine entry points. *)

val clear : cache -> unit
val size : cache -> int

val memoize :
  ?stats:Stats.t ->
  ?cache:cache ->
  cascade_name:string ->
  env:Dlz_symbolic.Assume.t ->
  (env:Dlz_symbolic.Assume.t -> Problem.t -> Strategy.result) ->
  Problem.t ->
  Strategy.result
(** [memoize ~cascade_name ~env run p] returns the cached result for
    [p]'s canonical form, or runs [run ~env p] and stores it.  Records
    query/hit/miss/uncacheable counters. *)
