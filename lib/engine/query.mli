(** Canonical dependence queries and the bounded memo cache.

    Identical dependence equations arise over and over from different
    access pairs (every [A(i) = A(i-1)]-shaped statement of a program
    yields the same system).  A query is canonicalized — terms sorted,
    sign- and gcd-normalized, equations sorted — and the result of the
    first solve is replayed for every later problem with the same
    canonical form and cascade.  Canonicalization preserves the integer
    solution set exactly, so a cached result (verdict, direction
    vectors, distances) is valid verbatim for every problem sharing the
    key.  Only fully numeric problems are cacheable; symbolic problems
    (whose answers may depend on the assumption environment) are always
    solved afresh and counted as uncacheable. *)

module Problem = Dlz_deptest.Problem

type canon

val canonicalize : Problem.numeric -> canon

val key_of : cascade:string -> Problem.t -> string option
(** The cache key: cascade name + marshalled canonical form; [None] for
    problems with no numeric projection (uncacheable). *)

type cache
(** A domain-safe sharded cache: entries are distributed over
    [hash key mod shards] shards, each guarded by its own mutex and
    bounded by its own slice of the capacity.  Parallel queries contend
    per shard, and an overflowing shard flushes only itself — one hot
    shard no longer evicts the whole cache, serial or parallel. *)

val create_cache : ?capacity:int -> ?shards:int -> unit -> cache
(** [capacity] (default 8192) bounds the total entry count across
    [shards] (default 8) shards; each shard holds at most
    [max 1 (capacity / shards)] entries and is flushed wholesale on its
    own overflow (counted in {!Stats} and per shard).  Raises
    [Invalid_argument] when either is [< 1]. *)

val global_cache : cache
(** Backs the default engine entry points. *)

val clear : cache -> unit
(** Empties every shard and zeroes the per-shard flush counters. *)

val size : cache -> int
(** Total entries across shards. *)

val shards : cache -> int
val shard_capacity : cache -> int

val shard_sizes : cache -> int array
(** Current entry count of each shard. *)

val shard_flushes : cache -> int array
(** Times each shard was flushed since creation (or {!clear}). *)

val memoize :
  ?stats:Stats.t ->
  ?cache:cache ->
  cascade_name:string ->
  env:Dlz_symbolic.Assume.t ->
  (env:Dlz_symbolic.Assume.t -> Problem.t -> Strategy.result) ->
  Problem.t ->
  Strategy.result
(** [memoize ~cascade_name ~env run p] returns the cached result for
    [p]'s canonical form, or runs [run ~env p] and stores it.  Records
    query/hit/miss/uncacheable counters. *)
