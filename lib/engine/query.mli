(** Canonical dependence queries and the bounded memo cache.

    Identical dependence equations arise over and over from different
    access pairs (every [A(i) = A(i-1)]-shaped statement of a program
    yields the same system).  A query is canonicalized — terms sorted,
    sign- and gcd-normalized, equations sorted — and the result of the
    first solve is replayed for every later problem with the same
    canonical form and cascade.  Canonicalization preserves the integer
    solution set exactly, so a cached result (verdict, direction
    vectors, distances) is valid verbatim for every problem sharing the
    key.  Only fully numeric problems are cacheable; symbolic problems
    (whose answers may depend on the assumption environment) are always
    solved afresh and counted as uncacheable. *)

module Problem = Dlz_deptest.Problem

type canon

val canonicalize : Problem.numeric -> canon

val key_of : cascade:string -> Problem.t -> string option
(** The cache key: cascade name, a NUL byte, then the flat canonical
    encoding ({!Problem.Keybuf}); [None] for problems with no numeric
    projection (uncacheable).  The hot path never builds this string —
    it hashes and compares the per-domain key buffer in place — but the
    materialized form is what miss-path inserts store, and what tests
    use to count distinct keys. *)

type cache
(** A domain-safe sharded cache: entries are distributed over
    [hash key mod shards] shards.  Each shard is an open-hashed bucket
    table whose buckets are [Atomic.t] immutable lists, so probes are
    lock-free loads; only writers (insert, flush, clear) serialize on
    the per-shard mutex, and shard records are padded apart so one
    shard's insert counter never false-shares a neighbor's cache line.
    Each shard is bounded by its own slice of the capacity and an
    overflowing shard flushes only itself — one hot shard no longer
    evicts the whole cache, serial or parallel. *)

val create_cache : ?capacity:int -> ?shards:int -> unit -> cache
(** [capacity] (default 8192) bounds the total entry count across
    [shards] shards; each shard holds at most
    [max 1 (capacity / shards)] entries and is flushed wholesale on its
    own overflow (counted in {!Stats} and per shard).  [shards]
    defaults to a power of two at least twice the host's recommended
    domain count, never below the historical 8.  Raises
    [Invalid_argument] when either is [< 1]. *)

val global_cache : cache
(** Backs the default engine entry points. *)

val clear : cache -> unit
(** Empties every shard and zeroes the per-shard flush counters. *)

val size : cache -> int
(** Total entries across shards. *)

val shards : cache -> int
val shard_capacity : cache -> int

val shard_sizes : cache -> int array
(** Current entry count of each shard. *)

val shard_flushes : cache -> int array
(** Times each shard was flushed since creation (or {!clear}). *)

val dump : cache -> (string * Strategy.result) list
(** Every cached entry as [(materialized key, result)], sorted by key —
    a deterministic snapshot of the cache contents (two caches holding
    the same entries dump identically, whatever the insertion order).
    Degraded results are never cached, so every dumped result is clean.
    Takes each shard's writer lock in turn; call from one domain while
    no analysis is in flight. *)

val load_entries :
  ?pool:Dlz_base.Pool.t -> cache -> (string * Strategy.result) array -> int
(** [load_entries cache kvs] bulk-inserts pre-solved entries (keys in
    the {!key_of} materialized form), marking them {e warm}: a later
    hit on one records {!Stats.record_warm_hit} alongside the plain
    hit.  Entries are grouped by shard first, so with [pool] the shards
    load in parallel without contending.  Respects the per-shard
    capacity (overflow entries are dropped, never flushed for) and
    skips keys already present; returns the number actually
    inserted. *)

type disposition = Hit_warm | Hit_cold | Miss | Uncacheable
(** Where a query's answer came from: a hit on a snapshot-loaded
    entry, a hit on an entry solved this run, a fresh solve, or an
    uncacheable (symbolic) problem solved afresh. *)

val memoize :
  ?stats:Stats.t ->
  ?cache:cache ->
  ?annot:(string * string) list ->
  ?observer:(disposition -> unit) ->
  cascade_name:string ->
  env:Dlz_symbolic.Assume.t ->
  (env:Dlz_symbolic.Assume.t -> Problem.t -> Strategy.result) ->
  Problem.t ->
  Strategy.result
(** [memoize ~cascade_name ~env run p] returns the cached result for
    [p]'s canonical form, or runs [run ~env p] and stores it.  Records
    query/hit/miss/uncacheable counters and the query's minor-heap
    allocation delta ({!Stats.record_alloc}); the hit path itself
    allocates nothing — flat key encoding into a per-domain buffer,
    in-place hash and compare, lock-free bucket load.

    [annot] appends attributes to the query span's begin event (the
    serve daemon threads the request id through here); the list must
    be immutable data fixed at call time, since span args render at
    export.  [observer], when given, is called once per query with the
    cache {!disposition} — the hook per-client attribution hangs off
    without touching the shared counters. *)
