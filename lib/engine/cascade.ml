module Assume = Dlz_symbolic.Assume
module Problem = Dlz_deptest.Problem

type t = { name : string; steps : Strategy.t list }

let make ~name steps = { name; steps }

let of_names names =
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
        match Registry.find n with
        | Some s -> resolve (s :: acc) rest
        | None -> Error n)
  in
  match resolve [] names with
  | Ok steps -> Ok { name = String.concat "," names; steps }
  | Error n -> Error (Printf.sprintf "unknown strategy %S" n)

(* Presets reproducing the historical Delinearize/Classic/ExactMode
   analyzer modes verbatim. *)
let delin = make ~name:"delin" [ Registry.delinearize ]
let classic = make ~name:"classic" [ Registry.classic ]
let exact = make ~name:"exact" [ Registry.exact; Registry.delinearize ]

let presets = [ ("delin", delin); ("classic", classic); ("exact", exact) ]
let preset name = List.assoc_opt name presets

let run ?(stats = Stats.global) ~env t (p : Problem.t) =
  let rec go = function
    | [] -> Strategy.conservative p
    | (s : Strategy.t) :: rest ->
        if not (s.applies ~env p) then go rest
        else begin
          Stats.record_attempt stats s.name;
          match Strategy.result_of_status s.name (s.run ~env p) with
          | Some r ->
              Stats.record_decision stats s.name r.Strategy.verdict;
              r
          | None ->
              Stats.record_pass stats s.name;
              go rest
        end
  in
  go t.steps
