module Assume = Dlz_symbolic.Assume
module Problem = Dlz_deptest.Problem
module Verdict = Dlz_deptest.Verdict
module Budget = Dlz_base.Budget
module Intx = Dlz_base.Intx
module Trace = Dlz_base.Trace

type t = { name : string; steps : Strategy.t list }

let make ~name steps = { name; steps }

let of_names names =
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
        match Registry.find n with
        | Some s -> resolve (s :: acc) rest
        | None -> Error n)
  in
  match resolve [] names with
  | Ok steps -> Ok { name = String.concat "," names; steps }
  | Error n -> Error (Printf.sprintf "unknown strategy %S" n)

(* Presets reproducing the historical Delinearize/Classic/ExactMode
   analyzer modes verbatim. *)
let delin = make ~name:"delin" [ Registry.delinearize ]
let classic = make ~name:"classic" [ Registry.classic ]
let exact = make ~name:"exact" [ Registry.exact; Registry.delinearize ]

let presets = [ ("delin", delin); ("classic", classic); ("exact", exact) ]
let preset name = List.assoc_opt name presets

(* Per-strategy histogram handles, memoized by bare strategy name so
   the per-attempt Timing path skips the ["strategy." ^ name]
   concatenation (an allocation per attempt, on the hottest
   telemetry path).  Same lock-free CAS idiom as the Trace registry. *)
module Smap = Map.Make (String)

let hist_memo : Trace.Hist.t Smap.t Atomic.t = Atomic.make Smap.empty

let rec strategy_hist name =
  let m = Atomic.get hist_memo in
  match Smap.find_opt name m with
  | Some h -> h
  | None ->
      let h = Trace.hist ("strategy." ^ name) in
      if Atomic.compare_and_set hist_memo m (Smap.add name h m) then h
      else strategy_hist name

let reason_of_exn = function
  | Chaos.Injected kind -> "chaos:" ^ kind
  | Intx.Overflow op -> "overflow:" ^ op
  | Intx.Div_by_zero op -> "div0:" ^ op
  | Budget.Exhausted why -> "budget:" ^ why
  | Stack_overflow -> "stack_overflow"
  | e -> "exn:" ^ Printexc.to_string e

let run ?(stats = Stats.global) ?(budget = Budget.unlimited) ?chaos ~env t
    (p : Problem.t) =
  let chaos = match chaos with Some _ as c -> c | None -> Chaos.current () in
  let degraded = ref [] in
  let note name reason =
    Stats.record_degradation stats name ~reason;
    degraded := (name, reason) :: !degraded
  in
  let rec go = function
    | [] -> Strategy.conservative ~degraded:(List.rev !degraded) p
    | (s : Strategy.t) :: rest -> (
        match Budget.exhausted budget with
        | Some why ->
            (* The enclosing budget is spent: every remaining strategy
               would only raise, so settle for the conservative result
               now (one degradation, not one per remaining step).  No
               raise fired here, so mark the trip point explicitly. *)
            Trace.instant ~cat:"budget"
              ~args:[ ("reason", why); ("at", s.name) ]
              "budget.exhausted";
            note s.name ("budget:" ^ why);
            Strategy.conservative ~degraded:(List.rev !degraded) p
        | None ->
            if not (s.applies ~env p) then go rest
            else begin
              Stats.record_attempt stats s.name;
              (* One child span per attempt, nested under the query
                 span; the outcome attribute mirrors the provenance the
                 result will carry (decided:* ↔ decided_by, degraded:*
                 ↔ degraded_by), and the attempt latency feeds the
                 per-strategy histogram. *)
              let t0 = if Trace.timing_on () then Trace.now_ns () else 0L in
              let sp =
                if Trace.recording_on () then
                  Trace.start ~cat:"strategy" ~ts:t0 s.name
                else Trace.null_span
              in
              (* [outcome] is a thunk: the attribute string is only
                 materialized when this span actually lands in the
                 stream (at export, not even at finish).  The settle
                 clock read is shared between the histogram
                 observation and the span's end timestamp. *)
              let attempted outcome =
                if Trace.timing_on () then begin
                  let t1 = Trace.now_ns () in
                  Trace.Hist.observe (strategy_hist s.name)
                    (Int64.sub t1 t0);
                  if Trace.is_live sp then
                    Trace.finish sp ~ts:t1
                      ~lazy_args:(fun () -> [ ("outcome", outcome ()) ])
                  else Trace.finish sp
                end
                else Trace.finish sp
              in
              match
                (match chaos with
                | Some c -> Chaos.strike c ~strategy:s.name p
                | None -> ());
                s.run ~env ~budget p
              with
              | status -> (
                  match
                    Strategy.result_of_status
                      ~degraded:(List.rev !degraded)
                      s.name status
                  with
                  | Some r ->
                      attempted (fun () ->
                          "decided:" ^ Verdict.to_string r.Strategy.verdict);
                      Stats.record_decision stats s.name r.Strategy.verdict;
                      r
                  | None ->
                      attempted (fun () -> "pass");
                      Stats.record_pass stats s.name;
                      go rest)
              | exception ((Out_of_memory | Sys.Break) as e) ->
                  (* Process-level conditions are not query faults; the
                     span still closes so the stream stays balanced. *)
                  attempted (fun () -> "fatal");
                  raise e
              | exception e ->
                  let reason = reason_of_exn e in
                  attempted (fun () -> "degraded:" ^ reason);
                  note s.name reason;
                  go rest
            end)
  in
  go t.steps
