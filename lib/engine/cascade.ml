module Assume = Dlz_symbolic.Assume
module Problem = Dlz_deptest.Problem
module Budget = Dlz_base.Budget
module Intx = Dlz_base.Intx

type t = { name : string; steps : Strategy.t list }

let make ~name steps = { name; steps }

let of_names names =
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
        match Registry.find n with
        | Some s -> resolve (s :: acc) rest
        | None -> Error n)
  in
  match resolve [] names with
  | Ok steps -> Ok { name = String.concat "," names; steps }
  | Error n -> Error (Printf.sprintf "unknown strategy %S" n)

(* Presets reproducing the historical Delinearize/Classic/ExactMode
   analyzer modes verbatim. *)
let delin = make ~name:"delin" [ Registry.delinearize ]
let classic = make ~name:"classic" [ Registry.classic ]
let exact = make ~name:"exact" [ Registry.exact; Registry.delinearize ]

let presets = [ ("delin", delin); ("classic", classic); ("exact", exact) ]
let preset name = List.assoc_opt name presets

let reason_of_exn = function
  | Chaos.Injected kind -> "chaos:" ^ kind
  | Intx.Overflow op -> "overflow:" ^ op
  | Budget.Exhausted why -> "budget:" ^ why
  | Stack_overflow -> "stack_overflow"
  | e -> "exn:" ^ Printexc.to_string e

let run ?(stats = Stats.global) ?(budget = Budget.unlimited) ?chaos ~env t
    (p : Problem.t) =
  let chaos = match chaos with Some _ as c -> c | None -> Chaos.current () in
  let degraded = ref [] in
  let note name reason =
    Stats.record_degradation stats name ~reason;
    degraded := (name, reason) :: !degraded
  in
  let rec go = function
    | [] -> Strategy.conservative ~degraded:(List.rev !degraded) p
    | (s : Strategy.t) :: rest -> (
        match Budget.exhausted budget with
        | Some why ->
            (* The enclosing budget is spent: every remaining strategy
               would only raise, so settle for the conservative result
               now (one degradation, not one per remaining step). *)
            note s.name ("budget:" ^ why);
            Strategy.conservative ~degraded:(List.rev !degraded) p
        | None ->
            if not (s.applies ~env p) then go rest
            else begin
              Stats.record_attempt stats s.name;
              match
                (match chaos with
                | Some c -> Chaos.strike c ~strategy:s.name p
                | None -> ());
                s.run ~env ~budget p
              with
              | status -> (
                  match
                    Strategy.result_of_status
                      ~degraded:(List.rev !degraded)
                      s.name status
                  with
                  | Some r ->
                      Stats.record_decision stats s.name r.Strategy.verdict;
                      r
                  | None ->
                      Stats.record_pass stats s.name;
                      go rest)
              | exception ((Out_of_memory | Sys.Break) as e) ->
                  (* Process-level conditions are not query faults. *)
                  raise e
              | exception e ->
                  note s.name (reason_of_exn e);
                  go rest
            end)
  in
  go t.steps
