module Verdict = Dlz_deptest.Verdict

type strategy_counters = {
  mutable attempts : int;
  mutable independent : int;
  mutable dependent : int;
  mutable passed : int;
}

type t = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_uncacheable : int;
  mutable cache_flushes : int;
  strategies : (string, strategy_counters) Hashtbl.t;
}

let create () =
  {
    queries = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_uncacheable = 0;
    cache_flushes = 0;
    strategies = Hashtbl.create 16;
  }

let global = create ()

let reset t =
  t.queries <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.cache_uncacheable <- 0;
  t.cache_flushes <- 0;
  Hashtbl.reset t.strategies

let counters t name =
  match Hashtbl.find_opt t.strategies name with
  | Some c -> c
  | None ->
      let c = { attempts = 0; independent = 0; dependent = 0; passed = 0 } in
      Hashtbl.add t.strategies name c;
      c

let record_query t = t.queries <- t.queries + 1
let record_hit t = t.cache_hits <- t.cache_hits + 1
let record_miss t = t.cache_misses <- t.cache_misses + 1
let record_uncacheable t = t.cache_uncacheable <- t.cache_uncacheable + 1
let record_flush t = t.cache_flushes <- t.cache_flushes + 1
let record_attempt t name = (counters t name).attempts <- (counters t name).attempts + 1

let record_decision t name verdict =
  let c = counters t name in
  match verdict with
  | Verdict.Independent -> c.independent <- c.independent + 1
  | Verdict.Dependent | Verdict.Inapplicable -> c.dependent <- c.dependent + 1

let record_pass t name = (counters t name).passed <- (counters t name).passed + 1

let hit_ratio t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

let rows t =
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) t.strategies []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  Format.fprintf ppf "@[<v>engine: %d queries, cache %d hit / %d miss" t.queries
    t.cache_hits t.cache_misses;
  if t.cache_uncacheable > 0 then
    Format.fprintf ppf " / %d uncacheable" t.cache_uncacheable;
  if t.cache_flushes > 0 then Format.fprintf ppf " / %d flushes" t.cache_flushes;
  Format.fprintf ppf " (hit ratio %.2f)" (hit_ratio t);
  List.iter
    (fun (name, c) ->
      Format.fprintf ppf
        "@,  %-14s attempts %5d  independent %5d  dependent %5d  passed %5d"
        name c.attempts c.independent c.dependent c.passed)
    (rows t);
  Format.fprintf ppf "@]"

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"queries\":%d,\"cache\":{\"hits\":%d,\"misses\":%d,\
        \"uncacheable\":%d,\"flushes\":%d,\"hit_ratio\":%.4f},\"strategies\":["
       t.queries t.cache_hits t.cache_misses t.cache_uncacheable
       t.cache_flushes (hit_ratio t));
  List.iteri
    (fun i (name, c) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"attempts\":%d,\"independent\":%d,\
            \"dependent\":%d,\"passed\":%d}"
           name c.attempts c.independent c.dependent c.passed))
    (rows t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
