module Verdict = Dlz_deptest.Verdict
module Trace = Dlz_base.Trace

(* Internal counters are Atomic.t so concurrent domains can record
   without losing increments; the strategies table is guarded by a
   mutex (Hashtbl is not safe under concurrent add/resize). *)

type atomic_counters = {
  a_attempts : int Atomic.t;
  a_independent : int Atomic.t;
  a_dependent : int Atomic.t;
  a_passed : int Atomic.t;
}

type strategy_counters = {
  attempts : int;
  independent : int;
  dependent : int;
  passed : int;
}

type t = {
  q_queries : int Atomic.t;
  q_hits : int Atomic.t;
  q_warm_hits : int Atomic.t;  (* hits on snapshot-loaded entries *)
  q_misses : int Atomic.t;
  q_uncacheable : int Atomic.t;
  q_flushes : int Atomic.t;
  q_alloc_words : int Atomic.t;  (* minor words allocated inside queries *)
  q_hit_alloc_words : int Atomic.t;  (* ... by cache hits only *)
  s_loaded : int Atomic.t;  (* entries bulk-loaded from snapshots *)
  s_loads : int Atomic.t;  (* snapshot files accepted *)
  s_rejects : int Atomic.t;  (* snapshot files refused (cold start) *)
  s_saves : int Atomic.t;  (* snapshot files written *)
  s_save_fails : int Atomic.t;  (* snapshot writes that failed (contained) *)
  o_checks : int Atomic.t;
  lock : Mutex.t;  (* guards [strategies], [degradations], [divergences] *)
  strategies : (string, atomic_counters) Hashtbl.t;
  degradations : (string * string, int Atomic.t) Hashtbl.t;
  divergences : (string * string, int Atomic.t) Hashtbl.t;
}

let create () =
  {
    q_queries = Atomic.make 0;
    q_hits = Atomic.make 0;
    q_warm_hits = Atomic.make 0;
    q_misses = Atomic.make 0;
    q_uncacheable = Atomic.make 0;
    q_flushes = Atomic.make 0;
    q_alloc_words = Atomic.make 0;
    q_hit_alloc_words = Atomic.make 0;
    s_loaded = Atomic.make 0;
    s_loads = Atomic.make 0;
    s_rejects = Atomic.make 0;
    s_saves = Atomic.make 0;
    s_save_fails = Atomic.make 0;
    o_checks = Atomic.make 0;
    lock = Mutex.create ();
    strategies = Hashtbl.create 16;
    degradations = Hashtbl.create 16;
    divergences = Hashtbl.create 16;
  }

let global = create ()

let reset t =
  Atomic.set t.q_queries 0;
  Atomic.set t.q_hits 0;
  Atomic.set t.q_warm_hits 0;
  Atomic.set t.q_misses 0;
  Atomic.set t.q_uncacheable 0;
  Atomic.set t.q_flushes 0;
  Atomic.set t.q_alloc_words 0;
  Atomic.set t.q_hit_alloc_words 0;
  Atomic.set t.s_loaded 0;
  Atomic.set t.s_loads 0;
  Atomic.set t.s_rejects 0;
  Atomic.set t.s_saves 0;
  Atomic.set t.s_save_fails 0;
  Atomic.set t.o_checks 0;
  Mutex.lock t.lock;
  Hashtbl.reset t.strategies;
  Hashtbl.reset t.degradations;
  Hashtbl.reset t.divergences;
  Mutex.unlock t.lock

let counters t name =
  Mutex.lock t.lock;
  let c =
    match Hashtbl.find_opt t.strategies name with
    | Some c -> c
    | None ->
        let c =
          {
            a_attempts = Atomic.make 0;
            a_independent = Atomic.make 0;
            a_dependent = Atomic.make 0;
            a_passed = Atomic.make 0;
          }
        in
        Hashtbl.add t.strategies name c;
        c
  in
  Mutex.unlock t.lock;
  c

let record_query t = Atomic.incr t.q_queries
let record_hit t = Atomic.incr t.q_hits
let record_warm_hit t = Atomic.incr t.q_warm_hits
let record_miss t = Atomic.incr t.q_misses
let record_uncacheable t = Atomic.incr t.q_uncacheable
let record_flush t = Atomic.incr t.q_flushes

(* Snapshot (persistent-cache) accounting: one [load] or [reject] per
   file the loader looked at, [loaded] entries admitted in total, one
   [save] per snapshot written. *)
let record_snapshot_loaded t n =
  if n > 0 then ignore (Atomic.fetch_and_add t.s_loaded n)

let record_snapshot_load t = Atomic.incr t.s_loads
let record_snapshot_reject t = Atomic.incr t.s_rejects
let record_snapshot_save t = Atomic.incr t.s_saves
let record_snapshot_save_fail t = Atomic.incr t.s_save_fails

(* [words] is a [Gc.minor_words] delta measured around one query (the
   telemetry instrumentation itself is excluded by the measurement
   window in [Query.memoize]). *)
let record_alloc t ~hit words =
  let words = max 0 words in
  ignore (Atomic.fetch_and_add t.q_alloc_words words);
  if hit then ignore (Atomic.fetch_and_add t.q_hit_alloc_words words)
let record_attempt t name = Atomic.incr (counters t name).a_attempts

let record_decision t name verdict =
  let c = counters t name in
  match verdict with
  | Verdict.Independent -> Atomic.incr c.a_independent
  | Verdict.Dependent | Verdict.Inapplicable -> Atomic.incr c.a_dependent

let record_pass t name = Atomic.incr (counters t name).a_passed

let record_degradation t name ~reason =
  let key = (name, reason) in
  Mutex.lock t.lock;
  let c =
    match Hashtbl.find_opt t.degradations key with
    | Some c -> c
    | None ->
        let c = Atomic.make 0 in
        Hashtbl.add t.degradations key c;
        c
  in
  Mutex.unlock t.lock;
  Atomic.incr c

let degradation_rows t =
  Mutex.lock t.lock;
  let snap =
    Hashtbl.fold
      (fun key c acc -> (key, Atomic.get c) :: acc)
      t.degradations []
  in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) snap

let degradations t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (degradation_rows t)

let record_oracle_check t = Atomic.incr t.o_checks
let oracle_checks t = Atomic.get t.o_checks

let record_divergence t name ~cls =
  let key = (name, cls) in
  Mutex.lock t.lock;
  let c =
    match Hashtbl.find_opt t.divergences key with
    | Some c -> c
    | None ->
        let c = Atomic.make 0 in
        Hashtbl.add t.divergences key c;
        c
  in
  Mutex.unlock t.lock;
  Atomic.incr c

let divergence_rows t =
  Mutex.lock t.lock;
  let snap =
    Hashtbl.fold
      (fun key c acc -> (key, Atomic.get c) :: acc)
      t.divergences []
  in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) snap

let divergences t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (divergence_rows t)

let queries t = Atomic.get t.q_queries
let alloc_words t = Atomic.get t.q_alloc_words
let hit_alloc_words t = Atomic.get t.q_hit_alloc_words
let cache_hits t = Atomic.get t.q_hits
let warm_hits t = Atomic.get t.q_warm_hits
let cold_hits t = Atomic.get t.q_hits - Atomic.get t.q_warm_hits
let cache_misses t = Atomic.get t.q_misses
let cache_uncacheable t = Atomic.get t.q_uncacheable
let cache_flushes t = Atomic.get t.q_flushes
let snapshot_loaded t = Atomic.get t.s_loaded
let snapshot_loads t = Atomic.get t.s_loads
let snapshot_rejects t = Atomic.get t.s_rejects
let snapshot_saves t = Atomic.get t.s_saves
let snapshot_save_fails t = Atomic.get t.s_save_fails

let consistent t =
  queries t = cache_hits t + cache_misses t + cache_uncacheable t

let per q n = if n = 0 then 0.0 else float_of_int q /. float_of_int n

let allocs_per_query t = per (alloc_words t) (queries t)
let allocs_per_hit t = per (hit_alloc_words t) (Atomic.get t.q_hits)

let hit_ratio t =
  let total = cache_hits t + cache_misses t in
  if total = 0 then 0.0 else float_of_int (cache_hits t) /. float_of_int total

type sort = By_name | By_attempts | By_time

let sort_of_string = function
  | "name" -> Some By_name
  | "attempts" -> Some By_attempts
  | "time" -> Some By_time
  | _ -> None

(* Total recorded latency of a strategy, from the trace subsystem's
   histogram (0 when timing was off — By_time then degenerates to the
   name order, deterministically). *)
let strategy_time_ns name = Trace.Hist.total_ns (Trace.hist ("strategy." ^ name))

let query_hist () =
  Trace.Hist.merged
    [ Trace.hist "cache.hit"; Trace.hist "cache.miss";
      Trace.hist "cache.uncacheable" ]

let rows ?(sort = By_name) t =
  Mutex.lock t.lock;
  let snap =
    Hashtbl.fold
      (fun name c acc ->
        ( name,
          {
            attempts = Atomic.get c.a_attempts;
            independent = Atomic.get c.a_independent;
            dependent = Atomic.get c.a_dependent;
            passed = Atomic.get c.a_passed;
          } )
        :: acc)
      t.strategies []
  in
  Mutex.unlock t.lock;
  let by_name (a, _) (b, _) = String.compare a b in
  match sort with
  | By_name -> List.sort by_name snap
  | By_attempts ->
      List.sort
        (fun ((_, a) as x) ((_, b) as y) ->
          match compare b.attempts a.attempts with
          | 0 -> by_name x y
          | c -> c)
        snap
  | By_time ->
      (* Snapshot the histogram totals once, not per comparison. *)
      let keyed =
        List.map (fun ((name, _) as row) -> (strategy_time_ns name, row)) snap
      in
      List.sort
        (fun (ta, x) (tb, y) ->
          match Int64.compare tb ta with 0 -> by_name x y | c -> c)
        keyed
      |> List.map snd

let pp ?sort ppf t =
  Format.fprintf ppf "@[<v>engine: %d queries, cache %d hit / %d miss"
    (queries t) (cache_hits t) (cache_misses t);
  if cache_uncacheable t > 0 then
    Format.fprintf ppf " / %d uncacheable" (cache_uncacheable t);
  if cache_flushes t > 0 then
    Format.fprintf ppf " / %d flushes" (cache_flushes t);
  Format.fprintf ppf " (hit ratio %.2f)" (hit_ratio t);
  if warm_hits t > 0 then
    Format.fprintf ppf "@,  hits %d warm (snapshot) / %d cold (this run)"
      (warm_hits t) (cold_hits t);
  if
    snapshot_loads t > 0 || snapshot_rejects t > 0 || snapshot_saves t > 0
    || snapshot_save_fails t > 0
  then begin
    Format.fprintf ppf
      "@,  snapshot: %d entries loaded (%d accepted, %d rejected), %d saved"
      (snapshot_loaded t) (snapshot_loads t) (snapshot_rejects t)
      (snapshot_saves t);
    if snapshot_save_fails t > 0 then
      Format.fprintf ppf " (%d save failures)" (snapshot_save_fails t)
  end;
  if queries t > 0 then
    Format.fprintf ppf
      "@,  allocations %.1f minor words/query (%.1f on hits)"
      (allocs_per_query t) (allocs_per_hit t);
  List.iter
    (fun (name, c) ->
      Format.fprintf ppf
        "@,  %-14s attempts %5d  independent %5d  dependent %5d  passed %5d"
        name c.attempts c.independent c.dependent c.passed)
    (rows ?sort t);
  List.iter
    (fun ((name, reason), n) ->
      Format.fprintf ppf "@,  degraded %-14s %-18s %5d" name reason n)
    (degradation_rows t);
  if oracle_checks t > 0 then
    Format.fprintf ppf "@,  oracle checks %d" (oracle_checks t);
  List.iter
    (fun ((name, cls), n) ->
      Format.fprintf ppf "@,  divergence %-14s %-10s %5d" name cls n)
    (divergence_rows t);
  Format.fprintf ppf "@]"

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"queries\":%d,\"cache\":{\"hits\":%d,\"warm_hits\":%d,\
        \"cold_hits\":%d,\"misses\":%d,\
        \"uncacheable\":%d,\"flushes\":%d,\"hit_ratio\":%.4f},\
        \"snapshot\":{\"loaded_entries\":%d,\"loads\":%d,\"rejects\":%d,\
        \"saves\":%d,\"save_fails\":%d},\
        \"alloc\":{\"minor_words\":%d,\"hit_minor_words\":%d,\
        \"per_query\":%.1f,\"per_hit\":%.1f},\"strategies\":["
       (queries t) (cache_hits t) (warm_hits t) (cold_hits t)
       (cache_misses t) (cache_uncacheable t)
       (cache_flushes t) (hit_ratio t) (snapshot_loaded t) (snapshot_loads t)
       (snapshot_rejects t) (snapshot_saves t) (snapshot_save_fails t)
       (alloc_words t) (hit_alloc_words t)
       (allocs_per_query t) (allocs_per_hit t));
  List.iteri
    (fun i (name, c) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"attempts\":%d,\"independent\":%d,\
            \"dependent\":%d,\"passed\":%d}"
           name c.attempts c.independent c.dependent c.passed))
    (rows t);
  Buffer.add_string buf "],\"degradations\":[";
  List.iteri
    (fun i ((name, reason), n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"strategy\":\"%s\",\"reason\":\"%s\",\"count\":%d}"
           name reason n))
    (degradation_rows t);
  Buffer.add_string buf
    (Printf.sprintf "],\"oracle\":{\"checks\":%d,\"divergences\":["
       (oracle_checks t));
  List.iteri
    (fun i ((name, cls), n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"strategy\":\"%s\",\"class\":\"%s\",\"count\":%d}"
           name cls n))
    (divergence_rows t);
  Buffer.add_string buf "]}}";
  Buffer.contents buf

(* Every counter above, rendered as one scrapeable collector.  The
   samples are built at scrape time from the live atomics, so the
   query path pays nothing for being exposed. *)
let obs_samples t =
  let open Dlz_obs.Registry in
  let c ?labels name help v = sample ~help ?labels name (Counter v) in
  let base =
    [
      c "vic_engine_queries_total" "dependence queries" (queries t);
      c
        ~labels:[ ("temp", "warm") ]
        "vic_engine_cache_hits_total" "cache hits by temperature"
        (warm_hits t);
      c
        ~labels:[ ("temp", "cold") ]
        "vic_engine_cache_hits_total" "cache hits by temperature"
        (cold_hits t);
      c "vic_engine_cache_misses_total" "cache misses" (cache_misses t);
      c "vic_engine_cache_uncacheable_total" "uncacheable queries"
        (cache_uncacheable t);
      c "vic_engine_cache_flushes_total" "shard flushes" (cache_flushes t);
      c "vic_engine_snapshot_loaded_entries_total"
        "entries bulk-loaded from snapshots" (snapshot_loaded t);
      c "vic_engine_snapshot_loads_total" "snapshot files accepted"
        (snapshot_loads t);
      c "vic_engine_snapshot_rejects_total" "snapshot files refused"
        (snapshot_rejects t);
      c "vic_engine_snapshot_saves_total" "snapshot files written"
        (snapshot_saves t);
      c "vic_engine_snapshot_save_fails_total"
        "snapshot writes that failed (contained)" (snapshot_save_fails t);
      c "vic_engine_alloc_minor_words_total"
        "minor words allocated inside queries" (alloc_words t);
      c "vic_engine_hit_alloc_minor_words_total"
        "minor words allocated by cache hits" (hit_alloc_words t);
      c "vic_engine_oracle_checks_total" "differential oracle checks"
        (oracle_checks t);
    ]
  in
  let strategies =
    List.concat_map
      (fun (name, sc) ->
        let l = [ ("strategy", name) ] in
        [
          c ~labels:l "vic_engine_strategy_attempts_total" "strategy attempts"
            sc.attempts;
          c
            ~labels:(l @ [ ("verdict", "independent") ])
            "vic_engine_strategy_decisions_total" "strategy decisions"
            sc.independent;
          c
            ~labels:(l @ [ ("verdict", "dependent") ])
            "vic_engine_strategy_decisions_total" "strategy decisions"
            sc.dependent;
          c ~labels:l "vic_engine_strategy_passes_total" "strategy passes"
            sc.passed;
        ])
      (rows t)
  in
  let degradations =
    List.map
      (fun ((name, reason), n) ->
        c
          ~labels:[ ("strategy", name); ("reason", reason) ]
          "vic_engine_degradations_total" "contained strategy faults" n)
      (degradation_rows t)
  in
  let divergences =
    List.map
      (fun ((name, cls), n) ->
        c
          ~labels:[ ("strategy", name); ("class", cls) ]
          "vic_engine_divergences_total" "oracle divergences" n)
      (divergence_rows t)
  in
  base @ strategies @ degradations @ divergences

let () =
  Dlz_obs.Registry.register ~name:"engine"
    ~reset:(fun () -> reset global)
    (fun () -> obs_samples global)
