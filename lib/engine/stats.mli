(** Engine instrumentation: per-strategy attempt/decision counters and
    memo-cache hit/miss accounting.

    One {!t} accumulates everything the engine observes; verdict
    provenance on individual results names the deciding strategy, the
    stats aggregate how often each strategy was tried, decided, or
    passed.  A process-wide {!global} instance backs the default engine
    entry points so that command-line tools ([vic --stats]) and the
    bench harness can report without threading state. *)

type strategy_counters = {
  mutable attempts : int;  (** Times the strategy was run. *)
  mutable independent : int;  (** Decisions proving independence. *)
  mutable dependent : int;  (** Decisions reporting (possible) dependence. *)
  mutable passed : int;  (** Runs that declined to decide. *)
}

type t = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_uncacheable : int;
      (** Queries on problems with no canonical numeric form. *)
  mutable cache_flushes : int;  (** Times the bounded cache was emptied. *)
  strategies : (string, strategy_counters) Hashtbl.t;
}

val create : unit -> t
val global : t
val reset : t -> unit
val record_query : t -> unit
val record_hit : t -> unit
val record_miss : t -> unit
val record_uncacheable : t -> unit
val record_flush : t -> unit
val record_attempt : t -> string -> unit
val record_decision : t -> string -> Dlz_deptest.Verdict.t -> unit
val record_pass : t -> string -> unit

val hit_ratio : t -> float
(** Hits over (hits + misses); [0.] before any cacheable query. *)

val rows : t -> (string * strategy_counters) list
(** Per-strategy counters, sorted by name. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One-line JSON object (queries, cache counters, per-strategy rows). *)
