(** Engine instrumentation: per-strategy attempt/decision counters and
    memo-cache hit/miss accounting — safe to record from any domain.

    One {!t} accumulates everything the engine observes; verdict
    provenance on individual results names the deciding strategy, the
    stats aggregate how often each strategy was tried, decided, or
    passed.  All counters are [Atomic.t] underneath (the strategy table
    behind a mutex), so parallel analysis ([--jobs N]) records without
    losing increments and [queries = hits + misses + uncacheable] stays
    exact.  A process-wide {!global} instance backs the default engine
    entry points so that command-line tools ([vic --stats]) and the
    bench harness can report without threading state. *)

type t

type strategy_counters = {
  attempts : int;  (** Times the strategy was run. *)
  independent : int;  (** Decisions proving independence. *)
  dependent : int;  (** Decisions reporting (possible) dependence. *)
  passed : int;  (** Runs that declined to decide. *)
}
(** A consistent snapshot of one strategy's counters (plain ints, read
    atomically when the row is taken). *)

val create : unit -> t
val global : t
val reset : t -> unit
val record_query : t -> unit
val record_hit : t -> unit

val record_warm_hit : t -> unit
(** A cache hit that landed on an entry bulk-loaded from a snapshot
    (recorded {e in addition to} {!record_hit}): the warm/cold split
    shows how much of the hit traffic a persisted cache paid for. *)

val record_miss : t -> unit
val record_uncacheable : t -> unit
val record_flush : t -> unit

val record_snapshot_loaded : t -> int -> unit
(** [n] entries admitted into the cache from a snapshot file. *)

val record_snapshot_load : t -> unit
(** One snapshot file validated and bulk-loaded. *)

val record_snapshot_reject : t -> unit
(** One snapshot file refused — missing, truncated, corrupt, or keyed
    by a different strategy-set/version hash.  The engine cold-starts;
    this counter is the only trace the refusal leaves. *)

val record_snapshot_save : t -> unit
(** One snapshot file written. *)

val record_snapshot_save_fail : t -> unit
(** One snapshot write that failed and was contained — a full disk, a
    permission error, or a chaos strike at the save boundary.  The
    failed write leaves no partial file behind (the tmp file is
    removed); this counter is the only trace it leaves. *)

val record_attempt : t -> string -> unit
val record_decision : t -> string -> Dlz_deptest.Verdict.t -> unit
val record_pass : t -> string -> unit

val record_alloc : t -> hit:bool -> int -> unit
(** [record_alloc t ~hit words] accounts a query's minor-heap
    allocation ([Gc.minor_words] delta, clamped at 0); [hit] routes it
    additionally into the cache-hit bucket, whose per-query average is
    the "allocation-free hot path" acceptance metric (~0 after
    warm-up). *)

val record_degradation : t -> string -> reason:string -> unit
(** A fault contained while the named strategy ran (or was about to
    run): the result was degraded conservatively for [reason]
    ("overflow:mul", "budget:fuel", "chaos:raise", …). *)

val queries : t -> int
val cache_hits : t -> int

val warm_hits : t -> int
(** The slice of {!cache_hits} served by snapshot-loaded entries. *)

val cold_hits : t -> int
(** [cache_hits - warm_hits]: hits on entries solved this run. *)

val cache_misses : t -> int

val snapshot_loaded : t -> int
(** Entries admitted from snapshot files since the last reset. *)

val snapshot_loads : t -> int
(** Snapshot files accepted (validated, bulk-loaded). *)

val snapshot_rejects : t -> int
(** Snapshot files refused; each refusal cold-starts the cache. *)

val snapshot_saves : t -> int
(** Snapshot files written. *)

val snapshot_save_fails : t -> int
(** Snapshot writes that failed and were contained. *)

val cache_uncacheable : t -> int
(** Queries on problems with no canonical numeric form. *)

val cache_flushes : t -> int
(** Times a bounded cache shard was emptied. *)

val consistent : t -> bool
(** [queries t = cache_hits t + cache_misses t + cache_uncacheable t] —
    every query records exactly one disposition, serial or parallel. *)

val hit_ratio : t -> float
(** Hits over (hits + misses); [0.] before any cacheable query. *)

val alloc_words : t -> int
(** Total minor words allocated inside queries (see {!record_alloc}). *)

val hit_alloc_words : t -> int
(** The slice of {!alloc_words} spent on cache hits. *)

val allocs_per_query : t -> float
(** [alloc_words / queries]; [0.] before any query. *)

val allocs_per_hit : t -> float
(** [hit_alloc_words / cache_hits]; [0.] before any hit.  Trends to ~0
    once the per-domain key buffers are warm. *)

type sort = By_name | By_attempts | By_time
(** Row orderings for the per-strategy table: alphabetical, by attempt
    count (descending), or by total recorded latency (descending, from
    the {!Dlz_base.Trace} "strategy.*" histograms — requires timing to
    have been on; ties and the timing-off case fall back to names). *)

val sort_of_string : string -> sort option
(** ["name"], ["attempts"], ["time"]. *)

val rows : ?sort:sort -> t -> (string * strategy_counters) list
(** Per-strategy counter snapshots, sorted by [sort] (default
    {!By_name}). *)

val degradation_rows : t -> ((string * string) * int) list
(** [((strategy, reason), count)] for every recorded degradation,
    sorted. *)

val degradations : t -> int
(** Total contained faults: the sum over {!degradation_rows}. *)

val record_oracle_check : t -> unit
(** One differential-oracle cross-check completed (any outcome). *)

val oracle_checks : t -> int

val record_divergence : t -> string -> cls:string -> unit
(** The named strategy diverged from the oracle with class [cls]
    ("unsound", "imprecise", or "internal"). *)

val divergence_rows : t -> ((string * string) * int) list
(** [((strategy, class), count)] for every recorded divergence,
    sorted. *)

val divergences : t -> int
(** Total recorded divergences: the sum over {!divergence_rows}. *)

val query_hist : unit -> Dlz_base.Trace.Hist.t
(** End-to-end query latency: a snapshot merge of the per-disposition
    "cache.hit" / "cache.miss" / "cache.uncacheable" histograms (the
    hot path records each query into exactly one of those). *)

val pp : ?sort:sort -> Format.formatter -> t -> unit

val to_json : t -> string
(** One-line JSON object (queries, cache counters, per-strategy rows). *)
