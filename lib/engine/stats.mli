(** Engine instrumentation: per-strategy attempt/decision counters and
    memo-cache hit/miss accounting — safe to record from any domain.

    One {!t} accumulates everything the engine observes; verdict
    provenance on individual results names the deciding strategy, the
    stats aggregate how often each strategy was tried, decided, or
    passed.  All counters are [Atomic.t] underneath (the strategy table
    behind a mutex), so parallel analysis ([--jobs N]) records without
    losing increments and [queries = hits + misses + uncacheable] stays
    exact.  A process-wide {!global} instance backs the default engine
    entry points so that command-line tools ([vic --stats]) and the
    bench harness can report without threading state. *)

type t

type strategy_counters = {
  attempts : int;  (** Times the strategy was run. *)
  independent : int;  (** Decisions proving independence. *)
  dependent : int;  (** Decisions reporting (possible) dependence. *)
  passed : int;  (** Runs that declined to decide. *)
}
(** A consistent snapshot of one strategy's counters (plain ints, read
    atomically when the row is taken). *)

val create : unit -> t
val global : t
val reset : t -> unit
val record_query : t -> unit
val record_hit : t -> unit
val record_miss : t -> unit
val record_uncacheable : t -> unit
val record_flush : t -> unit
val record_attempt : t -> string -> unit
val record_decision : t -> string -> Dlz_deptest.Verdict.t -> unit
val record_pass : t -> string -> unit

val record_degradation : t -> string -> reason:string -> unit
(** A fault contained while the named strategy ran (or was about to
    run): the result was degraded conservatively for [reason]
    ("overflow:mul", "budget:fuel", "chaos:raise", …). *)

val queries : t -> int
val cache_hits : t -> int
val cache_misses : t -> int

val cache_uncacheable : t -> int
(** Queries on problems with no canonical numeric form. *)

val cache_flushes : t -> int
(** Times a bounded cache shard was emptied. *)

val consistent : t -> bool
(** [queries t = cache_hits t + cache_misses t + cache_uncacheable t] —
    every query records exactly one disposition, serial or parallel. *)

val hit_ratio : t -> float
(** Hits over (hits + misses); [0.] before any cacheable query. *)

val rows : t -> (string * strategy_counters) list
(** Per-strategy counter snapshots, sorted by name. *)

val degradation_rows : t -> ((string * string) * int) list
(** [((strategy, reason), count)] for every recorded degradation,
    sorted. *)

val degradations : t -> int
(** Total contained faults: the sum over {!degradation_rows}. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One-line JSON object (queries, cache counters, per-strategy rows). *)
