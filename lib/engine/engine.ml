module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Problem = Dlz_deptest.Problem

type pair = {
  src : Access.t;
  dst : Access.t;
  self : bool;
  problem : Problem.t;
}

let orient a b =
  (* Source = the write; textual order breaks read-write-free ties
     (write/write and the self pair). *)
  match (a.Access.rw, b.Access.rw) with
  | `Write, _ -> (a, b)
  | _, `Write -> (b, a)
  | _ -> (a, b)

let pairs accs =
  let arr = Array.of_list accs in
  let n = Array.length arr in
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i do
      let a = arr.(i) and b = arr.(j) in
      let involves_write = a.Access.rw = `Write || b.Access.rw = `Write in
      if involves_write && String.equal a.Access.array b.Access.array then begin
        let src, dst = orient a b in
        match Problem.of_accesses src dst with
        | None -> ()
        | Some problem ->
            out :=
              { src; dst; self = src.Access.acc_id = dst.Access.acc_id;
                problem }
              :: !out
      end
    done
  done;
  !out

let query ?(cascade = Cascade.delin) ?stats ?cache ~env p =
  Query.memoize ?stats ?cache ~cascade_name:cascade.Cascade.name ~env
    (fun ~env p -> Cascade.run ?stats ~env cascade p)
    p

let query_all ?cascade ?stats ?cache ~env accs =
  List.map
    (fun pr -> (pr, query ?cascade ?stats ?cache ~env pr.problem))
    (pairs accs)

let reset_metrics () =
  Stats.reset Stats.global;
  Query.clear Query.global_cache
