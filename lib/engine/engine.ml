module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Problem = Dlz_deptest.Problem
module Pool = Dlz_base.Pool

type pair = {
  src : Access.t;
  dst : Access.t;
  self : bool;
  problem : Problem.t;
}

let orient a b =
  (* Source = the write; textual order breaks read-write-free ties
     (write/write and the self pair). *)
  match (a.Access.rw, b.Access.rw) with
  | `Write, _ -> (a, b)
  | _, `Write -> (b, a)
  | _ -> (a, b)

(* The cheap screen: at least one write, same array.  Problem
   construction (the expensive part) happens only for survivors. *)
let candidate arr i j =
  let a = arr.(i) and b = arr.(j) in
  (a.Access.rw = `Write || b.Access.rw = `Write)
  && String.equal a.Access.array b.Access.array

let pair_at arr i j =
  let a = arr.(i) and b = arr.(j) in
  let src, dst = orient a b in
  match Problem.of_accesses src dst with
  | None -> None
  | Some problem ->
      Some { src; dst; self = src.Access.acc_id = dst.Access.acc_id; problem }

let iter_pairs f accs =
  let arr = Array.of_list accs in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      if candidate arr i j then
        match pair_at arr i j with Some pr -> f pr | None -> ()
    done
  done

let pairs_seq accs =
  let arr = Array.of_list accs in
  let n = Array.length arr in
  let rec from i j () =
    if i >= n then Seq.Nil
    else if j >= n then from (i + 1) (i + 1) ()
    else
      let rest = from i (j + 1) in
      if candidate arr i j then
        match pair_at arr i j with
        | Some pr -> Seq.Cons (pr, rest)
        | None -> rest ()
      else rest ()
  in
  from 0 0

let pairs accs = List.of_seq (pairs_seq accs)

(* Candidate (i, j) index pairs, in enumeration order.  Two ints per
   candidate — the O(n²) set is never materialized as pairs (closures +
   problems); those are built per chunk, inside the workers. *)
let candidate_indices arr =
  let n = Array.length arr in
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i do
      if candidate arr i j then out := (i, j) :: !out
    done
  done;
  Array.of_list !out

let map_pairs ?pool ?chunk f accs =
  let sequential () =
    let out = ref [] in
    iter_pairs (fun pr -> out := f pr :: !out) accs;
    List.rev !out
  in
  match pool with
  | None -> sequential ()
  | Some pool when Pool.domains pool <= 1 -> sequential ()
  | Some pool ->
      let arr = Array.of_list accs in
      let cands = candidate_indices arr in
      (* Results land by candidate index: output order is enumeration
         order regardless of which domain ran (or stole) which chunk. *)
      Pool.map pool ?chunk
        (fun (i, j) -> Option.map f (pair_at arr i j))
        cands
      |> Array.to_list
      |> List.filter_map Fun.id

let query ?(cascade = Cascade.delin) ?stats ?cache ?budget ?chaos ?annot
    ?observer ~env p =
  Query.memoize ?stats ?cache ?annot ?observer
    ~cascade_name:cascade.Cascade.name ~env
    (fun ~env p -> Cascade.run ?stats ?budget ?chaos ~env cascade p)
    p

let query_all ?cascade ?stats ?cache ?budget ?chaos ?annot ?observer ?pool
    ?chunk ~env accs =
  map_pairs ?pool ?chunk
    (fun pr ->
      (pr, query ?cascade ?stats ?cache ?budget ?chaos ?annot ?observer ~env
             pr.problem))
    accs

(* Everything the obs registry knows how to reset — engine counters,
   pool telemetry, trace histograms, and any serve-side collectors a
   live daemon registered — plus the two stores the registry does not
   own: the memo cache and the event rings. *)
let reset_metrics () =
  Query.clear Query.global_cache;
  Dlz_base.Trace.clear ();
  Dlz_obs.Registry.reset_all ()
