(** Whole-program dependence analysis driven by delinearization.

    For every pair of references to the same array (with at least one
    write), build the dependence problem, answer it through the
    {!Engine} — a memoized strategy-cascade query — and summarize the
    result the way the paper's Figure 3 does: one row per dependent
    pair, source = the writing reference (textual order breaks
    write-write ties), vectors joined when the join's decomposition is
    fully covered.

    The historical closed modes survive as preset cascades
    ({!Cascade.delin}, {!Cascade.classic}, {!Cascade.exact}); any
    registered strategy combination can be passed via [?cascade]
    instead, which takes precedence over [?mode]. *)

module Poly = Dlz_symbolic.Poly
module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Ddvec = Dlz_deptest.Ddvec
module Problem = Dlz_deptest.Problem
module Classify = Dlz_deptest.Classify

type pair_result = {
  verdict : Verdict.t;
  dirvecs : Dirvec.t list;  (** Basic vectors over the common loops. *)
  distances : (int * Poly.t) list;
      (** Distances proven constant; symbolic polynomials allowed. *)
  decided_by : string;  (** Provenance: the strategy that decided. *)
  degraded : (string * string) list;
      (** Contained faults, as [(strategy, reason)] — see
          {!Strategy.result}. *)
}

type dep = {
  src : Access.t;  (** The source reference (a write when one exists). *)
  dst : Access.t;
  kind : Classify.kind;
  dirvec : Dirvec.t;  (** Summarized direction vector. *)
  ddvec : Ddvec.t;  (** Same vector with exact distances substituted. *)
  via : string;  (** The strategy whose verdict produced this row. *)
  degraded : (string * string) list;
      (** Faults contained while answering this pair (empty on a clean
          query); rendered as [degraded_by: <strategy> <reason>]. *)
}

type mode =
  | Delinearize  (** The paper's method (default). *)
  | Classic
      (** Ablation: direction-vector hierarchy with GCD+Banerjee on the
          unbroken equations (only for fully numeric problems; symbolic
          problems degrade to all-[*]). *)
  | ExactMode
      (** Precision ceiling: realized direction vectors from the exact
          integer solver (numeric problems within the search budget;
          everything else falls back to {!Delinearize}).  Exponential —
          for comparisons, not production. *)

val cascade_of_mode : mode -> Cascade.t
(** The preset cascade reproducing the mode's historical behavior. *)

val vectors :
  ?mode:mode -> ?cascade:Cascade.t -> ?budget:Dlz_base.Budget.t ->
  env:Assume.t -> Problem.t -> pair_result
(** Direction vectors for one problem, answered through the memoized
    engine query path. *)

val decomposition : Dirvec.t -> Dirvec.t list
(** All basic direction vectors admitted by a vector (3^k worst case for
    k [*] components). *)

val summarize : self:bool -> Dirvec.t list -> Dirvec.t list
(** Greedy sound summarization: vectors are merged when the join's
    decomposition is covered by the set ([self] pairs implicitly cover
    the all-[=] identity vector). *)

val deps_of_accesses :
  ?mode:mode -> ?cascade:Cascade.t -> ?budget:Dlz_base.Budget.t ->
  ?jobs:int -> ?pool:Dlz_base.Pool.t -> ?chunk:int ->
  env:Assume.t -> Access.t list -> dep list
(** All dependences among the given accesses (input dependences and
    identity-only self pairs are omitted), in source order.  Pair
    enumeration is {!Engine.map_pairs} — the same path the vectorizer's
    dependence graph uses.

    [jobs] (default 1) is the number of domains the pair queries fan
    out over; [0] means [Domain.recommended_domain_count ()].  An
    explicit [pool] takes precedence and is not shut down.  [chunk]
    overrides the auto-tuned candidates-per-chunk deal size.  The
    output is deterministic: for any job count and chunk size it is
    identical to the serial result. *)

val deps_of_program :
  ?mode:mode -> ?cascade:Cascade.t -> ?budget:Dlz_base.Budget.t ->
  ?jobs:int -> ?pool:Dlz_base.Pool.t -> ?chunk:int ->
  ?env:Assume.t -> Dlz_ir.Ast.program -> dep list
(** Extracts accesses (the program must be normalized) and analyzes
    them. *)

val pp_dep : Format.formatter -> dep -> unit
