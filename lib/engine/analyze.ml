module Poly = Dlz_symbolic.Poly
module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Ddvec = Dlz_deptest.Ddvec
module Problem = Dlz_deptest.Problem
module Classify = Dlz_deptest.Classify
module Pool = Dlz_base.Pool

type pair_result = {
  verdict : Verdict.t;
  dirvecs : Dirvec.t list;
  distances : (int * Poly.t) list;
  decided_by : string;
  degraded : (string * string) list;
}

type dep = {
  src : Access.t;
  dst : Access.t;
  kind : Classify.kind;
  dirvec : Dirvec.t;
  ddvec : Ddvec.t;
  via : string;
  degraded : (string * string) list;
}

type mode = Delinearize | Classic | ExactMode

let cascade_of_mode = function
  | Delinearize -> Cascade.delin
  | Classic -> Cascade.classic
  | ExactMode -> Cascade.exact

let resolve_cascade ?(mode = Delinearize) ?cascade () =
  match cascade with Some c -> c | None -> cascade_of_mode mode

let vectors ?mode ?cascade ?budget ~env p =
  let cascade = resolve_cascade ?mode ?cascade () in
  let r = Engine.query ~cascade ?budget ~env p in
  {
    verdict = r.Strategy.verdict;
    dirvecs = r.Strategy.dirvecs;
    distances = r.Strategy.distances;
    decided_by = r.Strategy.decided_by;
    degraded = r.Strategy.degraded;
  }

(* Basic direction vectors admitted by a (possibly non-basic) vector. *)
let decomposition dv =
  Array.fold_right
    (fun d acc ->
      List.concat_map
        (fun child -> List.map (fun tail -> child :: tail) acc)
        (Dirvec.refinements d))
    dv [ [] ]
  |> List.map Array.of_list

let summarize ~self vecs =
  let identity n = Array.make n Dirvec.Eq in
  let covered set dv =
    List.for_all
      (fun basic ->
        List.exists (Dirvec.equal basic) set
        || (self && Dirvec.equal basic (identity (Array.length basic))))
      (decomposition dv)
  in
  let rec merge groups =
    let rec try_pairs = function
      | [] -> None
      | g :: rest -> (
          let candidate =
            List.find_opt (fun h -> covered vecs (Dirvec.join g h)) rest
          in
          match candidate with
          | Some h ->
              Some
                (Dirvec.join g h
                :: List.filter (fun x -> not (Dirvec.equal x h)) rest)
          | None -> (
              match try_pairs rest with
              | Some rest' -> Some (g :: rest')
              | None -> None))
    in
    match try_pairs groups with Some g' -> merge g' | None -> groups
  in
  merge (List.sort_uniq Dirvec.compare vecs)

let apply_distances dv distances =
  List.fold_left
    (fun ddv (lvl, d) ->
      match Poly.to_const d with
      | Some dc when lvl >= 1 && lvl <= Array.length dv ->
          (* Only keep the distance when it is consistent with the
             summarized direction at that level. *)
          if Dirvec.admits dv.(lvl - 1) dc then Ddvec.with_distance ddv lvl dc
          else ddv
      | _ -> ddv)
    (Ddvec.of_dirvec dv) distances

(* The whole per-pair analysis: one engine query, summarization, one
   dep row per surviving summarized vector (in summary order).  Pure
   apart from the engine query, which is domain-safe — this is the unit
   of work [map_pairs] fans out over the pool. *)
let deps_of_pair ?budget ~cascade ~env (pr : Engine.pair) =
  let src = pr.Engine.src and dst = pr.Engine.dst in
  let r = vectors ~cascade ?budget ~env pr.Engine.problem in
  let self = pr.Engine.self in
  let identity_only =
    self
    && List.for_all
         (fun dv -> Array.for_all (fun d -> d = Dirvec.Eq) dv)
         r.dirvecs
  in
  if r.verdict = Verdict.Independent || identity_only then []
  else begin
    let summaries = summarize ~self r.dirvecs in
    let is_identity dv = Array.for_all (( = ) Dirvec.Eq) dv in
    let summaries =
      if not self then summaries
      else
        (* A self pair is symmetric: the pure-identity row is
           not a dependence, and an implausible row mirrors a
           reported plausible one. *)
        List.filter
          (fun dv ->
            (not (is_identity dv))
            && (Dirvec.plausible dv
               || not
                    (List.exists
                       (Dirvec.equal (Dirvec.reverse dv))
                       summaries)))
          summaries
    in
    let kind = Classify.kind ~src:src.Access.rw ~dst:dst.Access.rw in
    List.map
      (fun dv ->
        {
          src;
          dst;
          kind;
          dirvec = dv;
          ddvec = apply_distances dv r.distances;
          via = r.decided_by;
          degraded = r.degraded;
        })
      summaries
  end

let deps_of_accesses ?mode ?cascade ?budget ?(jobs = 1) ?pool ?chunk ~env accs
    =
  let cascade = resolve_cascade ?mode ?cascade () in
  Dlz_base.Trace.with_span ~cat:"driver"
    ~lazy_args:(fun () -> [ ("cascade", cascade.Cascade.name) ])
    "analyze.accesses"
  @@ fun () ->
  Pool.with_jobs ?pool ~jobs (fun pool ->
      List.concat
        (Engine.map_pairs ?pool ?chunk (deps_of_pair ?budget ~cascade ~env) accs))

let deps_of_program ?mode ?cascade ?budget ?jobs ?pool ?chunk
    ?(env = Assume.empty) prog =
  let accs, env = Access.of_program ~env prog in
  deps_of_accesses ?mode ?cascade ?budget ?jobs ?pool ?chunk ~env accs

let pp_dep ppf d =
  Format.fprintf ppf "%s:%s -> %s:%s  %s  %s  [%s]" d.src.Access.stmt_name
    d.src.Access.array d.dst.Access.stmt_name d.dst.Access.array
    (Dirvec.to_string d.dirvec) (Ddvec.to_string d.ddvec)
    (Classify.to_string d.kind);
  List.iter
    (fun (s, why) -> Format.fprintf ppf "  degraded_by: %s %s" s why)
    d.degraded
