(** Cascades: ordered strategy pipelines.

    A cascade runs its strategies left to right and returns the first
    decision, stamped with the deciding strategy's name; if every
    strategy passes, the sound conservative result (dependent, all-[*])
    is returned.  The historical analyzer modes are preset cascades:

    - {!delin} = [["delinearize"]]
    - {!classic} = [["classic"]]
    - {!exact} = [["exact"; "delinearize"]] (the exact solver passes on
      symbolic problems and overflow, falling through to
      delinearization — exactly the old [ExactMode] fallback)

    Custom cascades compose registered strategies, e.g.
    [of_names ["gcd"; "banerjee"; "delinearize"]] screens with the cheap
    classic filters before running the paper's algorithm. *)

module Assume = Dlz_symbolic.Assume
module Problem = Dlz_deptest.Problem

type t = { name : string; steps : Strategy.t list }

val make : name:string -> Strategy.t list -> t

val of_names : string list -> (t, string) result
(** Resolves names in the {!Registry}; [Error msg] on an unknown name. *)

val delin : t
val classic : t
val exact : t

val presets : (string * t) list
val preset : string -> t option

val run :
  ?stats:Stats.t ->
  ?budget:Dlz_base.Budget.t ->
  ?chaos:Chaos.t ->
  env:Assume.t ->
  t ->
  Problem.t ->
  Strategy.result
(** Runs the cascade on one problem, recording per-strategy
    attempt/decision/pass counters ([stats] defaults to
    {!Stats.global}).

    This is the engine's fault boundary.  A strategy that raises —
    [Intx.Overflow], [Budget.Exhausted], [Stack_overflow], an injected
    chaos fault, anything except [Out_of_memory] / [Sys.Break] — costs
    one degradation counter and one [(strategy, reason)] entry in the
    result's [degraded] provenance; the cascade then simply moves on to
    the next strategy, falling back to the sound conservative result if
    nothing decides.  A query can therefore never abort an analysis:
    verdicts only degrade toward "dependent".

    [budget] bounds the whole cascade (strategies receive it and carve
    their internal budgets out of it); once it is exhausted the
    remaining strategies are skipped with a single [budget:*]
    degradation.  [chaos] (default {!Chaos.current}) injects
    deterministic faults at each strategy boundary — see {!Chaos}. *)
