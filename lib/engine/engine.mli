(** The unified dependence-query engine.

    Every consumer — the whole-program analyzer, the vectorizer's
    dependence graph, the CLI, the bench harness — asks its dependence
    questions through this one path: {!iter_pairs} / {!pairs_seq}
    stream the candidate access pairs (write involvement, same array,
    source = the writing reference with textual order breaking ties),
    {!map_pairs} fans a per-pair computation out over an optional
    domain {!Dlz_base.Pool} with deterministic output ordering, and
    {!query} answers one problem through a strategy {!Cascade} behind
    the sharded canonical-form memo cache.  This replaces the two
    formerly independent O(n²) pair loops (analyzer and depgraph),
    whose source/sink orientation had drifted apart. *)

module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Problem = Dlz_deptest.Problem
module Pool = Dlz_base.Pool

type pair = {
  src : Access.t;  (** The writing reference when one exists. *)
  dst : Access.t;
  self : bool;  (** Both ends are the same access occurrence. *)
  problem : Problem.t;
}

val iter_pairs : (pair -> unit) -> Access.t list -> unit
(** [iter_pairs f accs] applies [f] to every candidate dependence pair
    among the accesses, in enumeration order (each unordered pair once,
    including self pairs).  Pairs without at least one write, on
    different arrays, or with no constructible problem are skipped.
    Only one pair is live at a time — the O(n²) candidate set is never
    materialized. *)

val pairs_seq : Access.t list -> pair Seq.t
(** The same enumeration as an on-demand sequence (pairs and their
    problems are built as the sequence is forced). *)

val pairs : Access.t list -> pair list
(** [List.of_seq (pairs_seq accs)] — compatibility wrapper for callers
    that want the materialized list. *)

val map_pairs :
  ?pool:Pool.t -> ?chunk:int -> (pair -> 'r) -> Access.t list -> 'r list
(** [map_pairs f accs] is [f] applied to every candidate pair, results
    in enumeration order.  Without a pool (or with a sequential one)
    this runs exactly like {!iter_pairs}.  With a parallel pool, the
    candidate {e index} pairs (two ints each — never the problems) are
    partitioned into chunks ([chunk] candidates each; auto-tuned from
    the pool's observed per-element cost and queue-wait telemetry when
    omitted), dealt to the pool's work-stealing deques (problem
    construction and [f] both run in the workers), and merged back by
    index, so the result is byte-identical to the sequential one for
    any job count, chunk size, or steal schedule.  [f] must be
    domain-safe; the {!query} path (sharded cache, atomic stats) is. *)

val query :
  ?cascade:Cascade.t ->
  ?stats:Stats.t ->
  ?cache:Query.cache ->
  ?budget:Dlz_base.Budget.t ->
  ?chaos:Chaos.t ->
  ?annot:(string * string) list ->
  ?observer:(Query.disposition -> unit) ->
  env:Assume.t ->
  Problem.t ->
  Strategy.result
(** One memoized dependence query ([cascade] defaults to
    {!Cascade.delin}; [stats]/[cache] default to the process-wide
    instances).  Safe to call concurrently from several domains.
    [budget] bounds the cascade (see {!Cascade.run}); degraded results
    are never cached, so a faulted run cannot poison the memo table.
    [annot] rides on the query's trace span (the daemon threads its
    request id through here); [observer] receives the cache
    {!Query.disposition} — see {!Query.memoize}. *)

val query_all :
  ?cascade:Cascade.t ->
  ?stats:Stats.t ->
  ?cache:Query.cache ->
  ?budget:Dlz_base.Budget.t ->
  ?chaos:Chaos.t ->
  ?annot:(string * string) list ->
  ?observer:(Query.disposition -> unit) ->
  ?pool:Pool.t ->
  ?chunk:int ->
  env:Assume.t ->
  Access.t list ->
  (pair * Strategy.result) list
(** {!map_pairs} composed with {!query}.  [observer] must be
    domain-safe when a pool is given — it may fire from any worker. *)

val reset_metrics : unit -> unit
(** Clears the global cache and the trace event buffers, then runs
    every reset hook in the {!Dlz_obs.Registry} — global stats
    (including the allocations-per-query counters), pool steal/
    auto-chunk telemetry, latency histograms (queue-wait included),
    and any serve-side collectors a live daemon registered.  Every
    reporting entry point calls this before the work it reports on,
    so back-to-back [--stats] runs never accumulate. *)
