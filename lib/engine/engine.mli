(** The unified dependence-query engine.

    Every consumer — the whole-program analyzer, the vectorizer's
    dependence graph, the CLI, the bench harness — asks its dependence
    questions through this one path: {!pairs} enumerates the candidate
    access pairs (write involvement, same array, source = the writing
    reference with textual order breaking ties), and {!query} answers
    one problem through a strategy {!Cascade} behind the canonical-form
    memo cache.  This replaces the two formerly independent O(n²) pair
    loops (analyzer and depgraph), whose source/sink orientation had
    drifted apart. *)

module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Problem = Dlz_deptest.Problem

type pair = {
  src : Access.t;  (** The writing reference when one exists. *)
  dst : Access.t;
  self : bool;  (** Both ends are the same access occurrence. *)
  problem : Problem.t;
}

val pairs : Access.t list -> pair list
(** Candidate dependence pairs among the accesses, in enumeration order
    (each unordered pair once, including self pairs).  Pairs without at
    least one write, on different arrays, or with no constructible
    problem are dropped. *)

val query :
  ?cascade:Cascade.t ->
  ?stats:Stats.t ->
  ?cache:Query.cache ->
  env:Assume.t ->
  Problem.t ->
  Strategy.result
(** One memoized dependence query ([cascade] defaults to
    {!Cascade.delin}; [stats]/[cache] default to the process-wide
    instances). *)

val query_all :
  ?cascade:Cascade.t ->
  ?stats:Stats.t ->
  ?cache:Query.cache ->
  env:Assume.t ->
  Access.t list ->
  (pair * Strategy.result) list
(** {!pairs} composed with {!query}. *)

val reset_metrics : unit -> unit
(** Clears the global stats and the global cache (used by the CLI and
    the benches to scope their reports). *)
