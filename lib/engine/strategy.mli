(** First-class dependence-test strategies.

    A strategy is one named entry of the engine's test registry: an
    applicability predicate plus a runner that either {e decides} a
    dependence query (with direction vectors and any proven distances)
    or {e passes}, handing the problem to the next strategy in the
    cascade.  Cheap conservative filters (GCD, Banerjee, SVPC, …) pass
    whenever they cannot prove independence; total strategies such as
    delinearization always decide.  This replaces the closed
    [Delinearize | Classic | ExactMode] variant with an open, composable
    structure — the cascade-of-increasingly-exact-tests the paper (and
    the variable-distance line of work after it) describes. *)

module Poly = Dlz_symbolic.Poly
module Assume = Dlz_symbolic.Assume
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Problem = Dlz_deptest.Problem

type result = {
  verdict : Verdict.t;
  dirvecs : Dirvec.t list;  (** Surviving vectors over the common loops. *)
  distances : (int * Poly.t) list;  (** [(level, β−α)] proven distances. *)
  decided_by : string;  (** Provenance: the strategy that decided. *)
  degraded : (string * string) list;
      (** Fault provenance: [(strategy, reason)] for every strategy the
          cascade had to contain on the way to this result (empty on a
          clean run).  The verdict is conservative with respect to what
          the faulted strategies might have proven. *)
}

type status =
  | Decided of Verdict.t * Dirvec.t list * (int * Poly.t) list
  | Pass  (** Could not decide; the cascade continues. *)

type t = {
  name : string;
  applies : env:Assume.t -> Problem.t -> bool;
      (** Cheap applicability screen, checked before [run]. *)
  run : env:Assume.t -> budget:Dlz_base.Budget.t -> Problem.t -> status;
      (** May raise — [Intx.Overflow], [Budget.Exhausted], anything:
          the cascade contains the fault and degrades conservatively. *)
}

val decided :
  ?dirvecs:Dirvec.t list ->
  ?distances:(int * Poly.t) list ->
  Verdict.t ->
  status

val conservative : ?degraded:(string * string) list -> Problem.t -> result
(** The sound catch-all when every strategy passed: dependent under the
    all-[*] vector. *)

val result_of_status :
  ?degraded:(string * string) list -> string -> status -> result option
(** Stamps provenance onto a decision; [None] on [Pass]. *)

val pp_result : Format.formatter -> result -> unit
