module Poly = Dlz_symbolic.Poly
module Assume = Dlz_symbolic.Assume
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Problem = Dlz_deptest.Problem
module Symeq = Dlz_deptest.Symeq
module Hierarchy = Dlz_deptest.Hierarchy
module Gcd_test = Dlz_deptest.Gcd_test
module Banerjee = Dlz_deptest.Banerjee
module Svpc = Dlz_deptest.Svpc
module Acyclic = Dlz_deptest.Acyclic
module Residue = Dlz_deptest.Residue
module Fm = Dlz_deptest.Fm
module Exact = Dlz_deptest.Exact
module Omega = Dlz_deptest.Omega
module Algo = Dlz_core.Algo
module Symalgo = Dlz_core.Symalgo

(* --- the paper's algorithm (total: always decides) ---------------------- *)

let meet_sets dvs nvs =
  List.concat_map
    (fun dv -> List.filter_map (fun nv -> Dirvec.meet dv nv) nvs)
    dvs
  |> List.sort_uniq Dirvec.compare

let numeric_common_ubs (p : Problem.t) =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | u :: rest -> (
        match Poly.to_const u with
        | Some c -> go (c :: acc) rest
        | None -> None)
  in
  go [] p.common_ubs

let run_delinearize ~env ~budget (p : Problem.t) =
  let n_common = p.Problem.n_common in
  let num_ubs = numeric_common_ubs p in
  let analyze_eq (eq : Symeq.t) =
    try
      match (Symeq.to_numeric eq, num_ubs) with
      | Some neq, Some ubs ->
          let r = Algo.run ~n_common ~common_ubs:(Array.of_list ubs) neq in
          ( r.Algo.verdict,
            r.Algo.dirvecs,
            List.map (fun (l, d) -> (l, Poly.const d)) r.Algo.distances )
      | _ ->
          let r = Symalgo.run ~env ~n_common eq in
          (r.Symalgo.verdict, r.Symalgo.dirvecs, r.Symalgo.distances)
    with Dlz_base.Intx.Overflow _ ->
      (* Coefficient/bound products past 63 bits: degrade soundly. *)
      (Verdict.Dependent, [ Dirvec.all_star n_common ], [])
  in
  let verdict, dirvecs, distances =
    List.fold_left
      (fun (v, dvs, dists) eq ->
        match v with
        | Verdict.Independent -> (v, dvs, dists)
        | _ ->
            Dlz_base.Budget.spend budget;
            let ve, nv, de = analyze_eq eq in
            if ve = Verdict.Independent then (Verdict.Independent, [], dists)
            else
              let met = meet_sets dvs nv in
              if met = [] then (Verdict.Independent, [], dists)
              else (Verdict.Dependent, met, de @ dists))
      (Verdict.Dependent, [ Dirvec.all_star n_common ], [])
      p.Problem.equations
  in
  match verdict with
  | Verdict.Independent -> Strategy.decided verdict
  | _ ->
      Strategy.decided verdict ~dirvecs
        ~distances:(List.sort_uniq Stdlib.compare distances)

let delinearize =
  {
    Strategy.name = "delinearize";
    applies = (fun ~env:_ _ -> true);
    run = run_delinearize;
  }

(* --- classic hierarchy (total: degrades to all-star on symbolics) ------- *)

(* Overflow and budget exhaustion are no longer swallowed here: they
   propagate to the cascade, which contains them with a degradation
   counter — one uniform fault path instead of per-strategy ad-hoc
   catches. *)
let run_classic ~env:_ ~budget (p : Problem.t) =
  match Problem.to_numeric p with
  | Some np ->
      let dvs = Hierarchy.directions ~budget np in
      Strategy.decided
        (if dvs = [] then Verdict.Independent else Verdict.Dependent)
        ~dirvecs:dvs
  | None ->
      Strategy.decided Verdict.Dependent
        ~dirvecs:[ Dirvec.all_star p.Problem.n_common ]

let classic =
  {
    Strategy.name = "classic";
    applies = (fun ~env:_ _ -> true);
    run = run_classic;
  }

(* --- exact solver (passes on symbolics and overflow) -------------------- *)

let run_exact ~env:_ ~budget (p : Problem.t) =
  match Problem.to_numeric p with
  | Some np ->
      let dvs =
        Exact.direction_vectors ~budget ~n_common:np.Problem.n_common
          np.Problem.eqs
      in
      Strategy.decided
        (if dvs = [] then Verdict.Independent else Verdict.Dependent)
        ~dirvecs:dvs
  | None -> Strategy.Pass

let exact =
  {
    Strategy.name = "exact";
    applies = (fun ~env:_ _ -> true);
    run = run_exact;
  }

(* --- conservative filters: decide only on proven independence ----------- *)

let numeric_applies ~env:_ (p : Problem.t) = Problem.to_numeric p <> None

(* A whole-problem verdict from a sound single-equation test: the system
   is infeasible as soon as one conjunct is.  The per-equation test gets
   the cascade budget so tests with their own search loops (FM
   elimination) stay bounded. *)
let filter_of_eq_test name test =
  let run ~env:_ ~budget (p : Problem.t) =
    match Problem.to_numeric p with
    | None -> Strategy.Pass
    | Some np ->
        let indep =
          List.exists
            (fun eq ->
              Dlz_base.Budget.spend budget;
              Verdict.conservative (test ~budget eq) = Verdict.Independent)
            np.Problem.eqs
        in
        if indep then Strategy.decided Verdict.Independent else Strategy.Pass
  in
  { Strategy.name; applies = numeric_applies; run }

let gcd = filter_of_eq_test "gcd" (fun ~budget:_ eq -> Gcd_test.test eq)
let banerjee = filter_of_eq_test "banerjee" (fun ~budget:_ eq -> Banerjee.test eq)
let svpc = filter_of_eq_test "svpc" (fun ~budget:_ eq -> Svpc.test eq)
let acyclic = filter_of_eq_test "acyclic" (fun ~budget:_ eq -> Acyclic.test eq)
let residue = filter_of_eq_test "residue" (fun ~budget:_ eq -> Residue.test eq)

(* Pugh-tightened Fourier-Motzkin: integer-sound (every division of a
   derived row by the coefficient gcd with a floored bound is implied
   for integer points), so an infeasibility verdict proves
   independence. *)
let fm =
  filter_of_eq_test "fm" (fun ~budget eq -> Fm.test ~budget Fm.Tightened eq)

let omega =
  let run ~env:_ ~budget (p : Problem.t) =
    match Problem.to_numeric p with
    | None -> Strategy.Pass
    | Some np ->
        let v = Omega.test ~budget np.Problem.eqs in
        if Verdict.conservative v = Verdict.Independent then
          Strategy.decided Verdict.Independent
        else Strategy.Pass
  in
  { Strategy.name = "omega"; applies = numeric_applies; run }

(* --- the registry ------------------------------------------------------- *)

let table : (string, Strategy.t) Hashtbl.t = Hashtbl.create 16

let register (s : Strategy.t) = Hashtbl.replace table s.Strategy.name s
let find name = Hashtbl.find_opt table name

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) table []
  |> List.sort String.compare

let all () =
  Hashtbl.fold (fun _ s acc -> s :: acc) table []
  |> List.sort (fun (a : Strategy.t) b -> String.compare a.name b.name)

let () =
  List.iter register
    [ delinearize; classic; exact; gcd; banerjee; svpc; acyclic; residue;
      fm; omega ]
