(** The strategy registry: every dependence test in the system,
    registered under a stable name.

    Built-ins (pre-registered):

    - ["delinearize"] — the paper's Figure-4 algorithm, numeric or
      symbolic per equation; total (always decides).  Equivalent to the
      former [Analyze.Delinearize] mode.
    - ["classic"] — direction-vector hierarchy with GCD+Banerjee on the
      unbroken equations; total (symbolic problems degrade to all-[*]).
    - ["exact"] — realized direction vectors from the exact integer
      solver; passes on symbolic problems and on overflow, so cascades
      can fall through to a total strategy.
    - ["gcd"], ["banerjee"], ["svpc"], ["acyclic"], ["residue"], ["fm"],
      ["omega"] — conservative filters: decide only when they prove
      independence of some dependence equation, pass otherwise.  Useful
      as cheap screens in front of more expensive strategies.  ["fm"]
      is Pugh-tightened Fourier-Motzkin, which is integer-sound.

    New strategies can be {!register}ed at any time; cascades resolve
    names at construction. *)

val register : Strategy.t -> unit
(** Adds (or replaces) a strategy under its name. *)

val find : string -> Strategy.t option
val names : unit -> string list

val all : unit -> Strategy.t list
(** Every registered strategy, sorted by name — the introspection hook
    the differential oracle iterates over. *)

(** The built-in strategies, also available directly. *)

val delinearize : Strategy.t
val classic : Strategy.t
val exact : Strategy.t
val gcd : Strategy.t
val banerjee : Strategy.t
val svpc : Strategy.t
val acyclic : Strategy.t
val residue : Strategy.t
val fm : Strategy.t
val omega : Strategy.t
