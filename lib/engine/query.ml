module Numth = Dlz_base.Numth
module Trace = Dlz_base.Trace
module Depeq = Dlz_deptest.Depeq
module Problem = Dlz_deptest.Problem

(* Canonical form of a numeric problem.  Two problems with the same
   canonical form have the same integer solution set (term reordering,
   global sign flip and division by a common factor of every coefficient
   including the constant all preserve solutions exactly), the same
   common-loop structure, and hence interchangeable query results. *)

type cterm = { ct_coeff : int; ct_level : int; ct_side : int; ct_ub : int;
               ct_name : string }

type ceq = { cc0 : int; cterms : cterm list }

type canon = {
  c_n_common : int;
  c_ubs : int list;
  c_opaque : int;
  c_eqs : ceq list;
}

let canon_eq (eq : Depeq.t) =
  let terms =
    List.map
      (fun (t : Depeq.term) ->
        {
          ct_coeff = t.Depeq.coeff;
          ct_level = t.Depeq.var.Depeq.v_level;
          ct_side = (match t.Depeq.var.Depeq.v_side with `Src -> 0 | `Dst -> 1);
          ct_ub = t.Depeq.var.Depeq.v_ub;
          (* Level-0 variables are identified by name; paired loop
             variables by (level, side) alone. *)
          ct_name =
            (if t.Depeq.var.Depeq.v_level = 0 then t.Depeq.var.Depeq.v_name
             else "");
        })
      eq.Depeq.terms
  in
  let terms =
    List.sort
      (fun a b ->
        Stdlib.compare
          (a.ct_level, a.ct_side, a.ct_name, a.ct_ub, a.ct_coeff)
          (b.ct_level, b.ct_side, b.ct_name, b.ct_ub, b.ct_coeff))
      terms
  in
  let flip = match terms with t :: _ -> t.ct_coeff < 0 | [] -> eq.Depeq.c0 < 0 in
  let c0, terms =
    if flip then
      ( -eq.Depeq.c0,
        List.map (fun t -> { t with ct_coeff = -t.ct_coeff }) terms )
    else (eq.Depeq.c0, terms)
  in
  let g = Numth.gcd_list (c0 :: List.map (fun t -> t.ct_coeff) terms) in
  let c0, terms =
    if g > 1 then
      (c0 / g, List.map (fun t -> { t with ct_coeff = t.ct_coeff / g }) terms)
    else (c0, terms)
  in
  { cc0 = c0; cterms = terms }

let canonicalize (np : Problem.numeric) =
  {
    c_n_common = np.Problem.n_common;
    c_ubs = Array.to_list np.Problem.common_ubs;
    c_opaque = np.Problem.opaque_dims;
    c_eqs = List.sort Stdlib.compare (List.map canon_eq np.Problem.eqs);
  }

let key_of ~cascade (p : Problem.t) =
  match Problem.to_numeric p with
  | None -> None
  | Some np -> (
      try Some (cascade ^ "\x00" ^ Marshal.to_string (canonicalize np) [])
      with Dlz_base.Intx.Overflow _ -> None)

(* --- bounded, sharded memo cache ----------------------------------------- *)

(* The cache is split into shards, each a mutex-guarded Hashtbl bounded
   by its own slice of the capacity.  Sharding buys two things: domains
   querying in parallel contend on shards instead of one global table,
   and the flush-wholesale policy applies per shard — a hot shard
   overflowing drops 1/N of the cache instead of all of it, even in
   serial mode. *)

type shard = {
  s_lock : Mutex.t;
  s_table : (string, Strategy.result) Hashtbl.t;
  s_flushes : int Atomic.t;
}

type cache = {
  shard_capacity : int;  (* per-shard entry bound *)
  shards : shard array;
}

let default_shards = 8

let create_cache ?(capacity = 8192) ?(shards = default_shards) () =
  if capacity < 1 then invalid_arg "Query.create_cache: capacity must be >= 1";
  if shards < 1 then invalid_arg "Query.create_cache: shards must be >= 1";
  {
    shard_capacity = max 1 (capacity / shards);
    shards =
      Array.init shards (fun _ ->
          {
            s_lock = Mutex.create ();
            s_table = Hashtbl.create 64;
            s_flushes = Atomic.make 0;
          });
  }

let global_cache = create_cache ()

let shards cache = Array.length cache.shards
let shard_capacity cache = cache.shard_capacity

let clear cache =
  Array.iter
    (fun sh ->
      Mutex.lock sh.s_lock;
      Hashtbl.reset sh.s_table;
      Atomic.set sh.s_flushes 0;
      Mutex.unlock sh.s_lock)
    cache.shards

let shard_sizes cache =
  Array.map
    (fun sh ->
      Mutex.lock sh.s_lock;
      let n = Hashtbl.length sh.s_table in
      Mutex.unlock sh.s_lock;
      n)
    cache.shards

let shard_flushes cache =
  Array.map (fun sh -> Atomic.get sh.s_flushes) cache.shards

let size cache = Array.fold_left ( + ) 0 (shard_sizes cache)

let shard_of cache key =
  cache.shards.(Hashtbl.hash key mod Array.length cache.shards)

(* Histogram handles resolved once: [Engine.reset_metrics] resets
   histograms in place, so the handles stay valid for the process
   lifetime and the per-query path never touches the registry.  Each
   query lands in exactly one of these; the end-to-end "query" row is
   their merge ([Stats.query_hist]), so the hot path pays a single
   observation. *)
let h_hit = Trace.hist "cache.hit"
let h_miss = Trace.hist "cache.miss"
let h_uncacheable = Trace.hist "cache.uncacheable"

let memoize ?(stats = Stats.global) ?(cache = global_cache) ~cascade_name
    ~env run p =
  Stats.record_query stats;
  (* One span per query (the high-volume span class — subject to the
     sampling knob); cache disposition and verdict provenance land as
     end-of-span attributes, latencies in the "query"/"cache.*"
     histograms.  A span sampled out here suppresses the nested
     strategy spans too, so the stream never shows orphan children. *)
  let sp =
    if Trace.recording_on () then
      Trace.start ~cat:"engine" ~sample:true
        ~args:[ ("cascade", cascade_name) ]
        "query"
    else Trace.null_span
  in
  let t0 = if Trace.timing_on () then Trace.now_ns () else 0L in
  let settled disposition h (r : Strategy.result) =
    if Trace.timing_on () then
      Trace.Hist.observe h (Int64.sub (Trace.now_ns ()) t0);
    if Trace.is_live sp then
      Trace.finish sp
        ~args:
          (("cache", disposition)
          :: ("decided_by", r.Strategy.decided_by)
          ::
          (match r.Strategy.degraded with
          | [] -> []
          | ds ->
              [
                ( "degraded_by",
                  String.concat ";"
                    (List.map (fun (s, why) -> s ^ ":" ^ why) ds) );
              ]))
    else Trace.finish sp;
    r
  in
  try
    match key_of ~cascade:cascade_name p with
    | None ->
        Stats.record_uncacheable stats;
        settled "uncacheable" h_uncacheable (run ~env p)
    | Some key -> (
        let sh = shard_of cache key in
        Mutex.lock sh.s_lock;
        match Hashtbl.find_opt sh.s_table key with
        | Some r ->
            Mutex.unlock sh.s_lock;
            Stats.record_hit stats;
            settled "hit" h_hit r
        | None ->
            (* Solve outside the lock: queries on other keys of this
               shard proceed while this one runs.  Two domains racing on
               the same fresh key may both solve; canonicalization makes
               the results interchangeable, and each call still records
               exactly one of hit/miss/uncacheable. *)
            Mutex.unlock sh.s_lock;
            Stats.record_miss stats;
            let r = run ~env p in
            if r.Strategy.degraded <> [] then
              (* A degraded result reflects a contained fault (budget,
                 chaos, overflow), not the problem's answer; caching it
                 would let one faulted run poison every later query on
                 the same key.  Re-solving is deterministic: the same
                 fault conditions reproduce the same degradation. *)
              settled "miss" h_miss r
            else begin
              Mutex.lock sh.s_lock;
              if not (Hashtbl.mem sh.s_table key) then begin
                if Hashtbl.length sh.s_table >= cache.shard_capacity then begin
                  (* Bounded: flush the shard wholesale rather than track
                     recency — it rebuilds in one pass over any workload,
                     and the other shards keep their entries. *)
                  Hashtbl.reset sh.s_table;
                  Atomic.incr sh.s_flushes;
                  Stats.record_flush stats
                end;
                Hashtbl.add sh.s_table key r
              end;
              Mutex.unlock sh.s_lock;
              settled "miss" h_miss r
            end)
  with e ->
    (* Only process-level conditions escape the cascade; keep the
       exported stream balanced even then. *)
    let bt = Printexc.get_raw_backtrace () in
    if Trace.is_live sp then Trace.finish sp ~args:[ ("cache", "error") ]
    else Trace.finish sp;
    Printexc.raise_with_backtrace e bt
