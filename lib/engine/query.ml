module Numth = Dlz_base.Numth
module Depeq = Dlz_deptest.Depeq
module Problem = Dlz_deptest.Problem

(* Canonical form of a numeric problem.  Two problems with the same
   canonical form have the same integer solution set (term reordering,
   global sign flip and division by a common factor of every coefficient
   including the constant all preserve solutions exactly), the same
   common-loop structure, and hence interchangeable query results. *)

type cterm = { ct_coeff : int; ct_level : int; ct_side : int; ct_ub : int;
               ct_name : string }

type ceq = { cc0 : int; cterms : cterm list }

type canon = {
  c_n_common : int;
  c_ubs : int list;
  c_opaque : int;
  c_eqs : ceq list;
}

let canon_eq (eq : Depeq.t) =
  let terms =
    List.map
      (fun (t : Depeq.term) ->
        {
          ct_coeff = t.Depeq.coeff;
          ct_level = t.Depeq.var.Depeq.v_level;
          ct_side = (match t.Depeq.var.Depeq.v_side with `Src -> 0 | `Dst -> 1);
          ct_ub = t.Depeq.var.Depeq.v_ub;
          (* Level-0 variables are identified by name; paired loop
             variables by (level, side) alone. *)
          ct_name =
            (if t.Depeq.var.Depeq.v_level = 0 then t.Depeq.var.Depeq.v_name
             else "");
        })
      eq.Depeq.terms
  in
  let terms =
    List.sort
      (fun a b ->
        Stdlib.compare
          (a.ct_level, a.ct_side, a.ct_name, a.ct_ub, a.ct_coeff)
          (b.ct_level, b.ct_side, b.ct_name, b.ct_ub, b.ct_coeff))
      terms
  in
  let flip = match terms with t :: _ -> t.ct_coeff < 0 | [] -> eq.Depeq.c0 < 0 in
  let c0, terms =
    if flip then
      ( -eq.Depeq.c0,
        List.map (fun t -> { t with ct_coeff = -t.ct_coeff }) terms )
    else (eq.Depeq.c0, terms)
  in
  let g = Numth.gcd_list (c0 :: List.map (fun t -> t.ct_coeff) terms) in
  let c0, terms =
    if g > 1 then
      (c0 / g, List.map (fun t -> { t with ct_coeff = t.ct_coeff / g }) terms)
    else (c0, terms)
  in
  { cc0 = c0; cterms = terms }

let canonicalize (np : Problem.numeric) =
  {
    c_n_common = np.Problem.n_common;
    c_ubs = Array.to_list np.Problem.common_ubs;
    c_opaque = np.Problem.opaque_dims;
    c_eqs = List.sort Stdlib.compare (List.map canon_eq np.Problem.eqs);
  }

let key_of ~cascade (p : Problem.t) =
  match Problem.to_numeric p with
  | None -> None
  | Some np -> (
      try Some (cascade ^ "\x00" ^ Marshal.to_string (canonicalize np) [])
      with Dlz_base.Intx.Overflow _ -> None)

(* --- bounded memo cache -------------------------------------------------- *)

type cache = {
  capacity : int;
  table : (string, Strategy.result) Hashtbl.t;
}

let create_cache ?(capacity = 8192) () =
  { capacity; table = Hashtbl.create 256 }

let global_cache = create_cache ()

let clear cache = Hashtbl.reset cache.table
let size cache = Hashtbl.length cache.table

let memoize ?(stats = Stats.global) ?(cache = global_cache) ~cascade_name
    ~env run p =
  Stats.record_query stats;
  match key_of ~cascade:cascade_name p with
  | None ->
      Stats.record_uncacheable stats;
      run ~env p
  | Some key -> (
      match Hashtbl.find_opt cache.table key with
      | Some r ->
          Stats.record_hit stats;
          r
      | None ->
          Stats.record_miss stats;
          let r = run ~env p in
          if Hashtbl.length cache.table >= cache.capacity then begin
            (* Bounded: flush wholesale rather than track recency — the
               cache rebuilds in one pass over any workload. *)
            Hashtbl.reset cache.table;
            Stats.record_flush stats
          end;
          Hashtbl.add cache.table key r;
          r)
