module Numth = Dlz_base.Numth
module Trace = Dlz_base.Trace
module Depeq = Dlz_deptest.Depeq
module Problem = Dlz_deptest.Problem

(* Canonical form of a numeric problem.  Two problems with the same
   canonical form have the same integer solution set (term reordering,
   global sign flip and division by a common factor of every coefficient
   including the constant all preserve solutions exactly), the same
   common-loop structure, and hence interchangeable query results. *)

type cterm = { ct_coeff : int; ct_level : int; ct_side : int; ct_ub : int;
               ct_name : string }

type ceq = { cc0 : int; cterms : cterm list }

type canon = {
  c_n_common : int;
  c_ubs : int list;
  c_opaque : int;
  c_eqs : ceq list;
}

let canon_eq (eq : Depeq.t) =
  let terms =
    List.map
      (fun (t : Depeq.term) ->
        {
          ct_coeff = t.Depeq.coeff;
          ct_level = t.Depeq.var.Depeq.v_level;
          ct_side = (match t.Depeq.var.Depeq.v_side with `Src -> 0 | `Dst -> 1);
          ct_ub = t.Depeq.var.Depeq.v_ub;
          (* Level-0 variables are identified by name; paired loop
             variables by (level, side) alone. *)
          ct_name =
            (if t.Depeq.var.Depeq.v_level = 0 then t.Depeq.var.Depeq.v_name
             else "");
        })
      eq.Depeq.terms
  in
  let terms =
    List.sort
      (fun a b ->
        Stdlib.compare
          (a.ct_level, a.ct_side, a.ct_name, a.ct_ub, a.ct_coeff)
          (b.ct_level, b.ct_side, b.ct_name, b.ct_ub, b.ct_coeff))
      terms
  in
  let flip = match terms with t :: _ -> t.ct_coeff < 0 | [] -> eq.Depeq.c0 < 0 in
  let c0, terms =
    if flip then
      ( -eq.Depeq.c0,
        List.map (fun t -> { t with ct_coeff = -t.ct_coeff }) terms )
    else (eq.Depeq.c0, terms)
  in
  let g = Numth.gcd_list (c0 :: List.map (fun t -> t.ct_coeff) terms) in
  let c0, terms =
    if g > 1 then
      (c0 / g, List.map (fun t -> { t with ct_coeff = t.ct_coeff / g }) terms)
    else (c0, terms)
  in
  { cc0 = c0; cterms = terms }

let canonicalize (np : Problem.numeric) =
  {
    c_n_common = np.Problem.n_common;
    c_ubs = Array.to_list np.Problem.common_ubs;
    c_opaque = np.Problem.opaque_dims;
    c_eqs = List.sort Stdlib.compare (List.map canon_eq np.Problem.eqs);
  }

(* --- flat cache keys ------------------------------------------------------- *)

(* The per-query path encodes the canonical form with
   [Problem.Keybuf.encode] into a per-domain buffer, hashes and probes
   with the bytes in place, and only materializes a [string] key on the
   miss/insert path.  A cache hit therefore allocates nothing. *)

let keybuf_key = Domain.DLS.new_key (fun () -> Problem.Keybuf.create ())

(* djb2-xor over [cascade ^ "\x00" ^ encoding]; masked nonnegative.
   The folds are top-level (not local closures) so a probe allocates
   nothing. *)
let rec hash_string s i n h =
  if i >= n then h
  else
    hash_string s (i + 1) n
      (((h lsl 5) + h) lxor Char.code (String.unsafe_get s i))

let rec hash_bytes b i n h =
  if i >= n then h
  else
    hash_bytes b (i + 1) n
      (((h lsl 5) + h) lxor Char.code (Bytes.unsafe_get b i))

let hash_key cascade kb =
  let h = hash_string cascade 0 (String.length cascade) 5381 in
  let h = (h lsl 5) + h (* the separator byte: lxor 0 is the identity *) in
  hash_bytes (Problem.Keybuf.contents kb) 0 (Problem.Keybuf.length kb) h
  land max_int

(* Does the stored key equal [cascade ^ "\x00" ^ kb]?  Compared in
   place — no concatenation, no closures. *)
let rec match_prefix stored cascade i clen =
  i >= clen
  || String.unsafe_get stored i = String.unsafe_get cascade i
     && match_prefix stored cascade (i + 1) clen

let rec match_payload stored b base i len =
  i >= len
  || String.unsafe_get stored (base + i) = Bytes.unsafe_get b i
     && match_payload stored b base (i + 1) len

let key_matches stored cascade kb =
  let clen = String.length cascade in
  let len = Problem.Keybuf.length kb in
  String.length stored = clen + 1 + len
  && String.unsafe_get stored clen = '\x00'
  && match_prefix stored cascade 0 clen
  && match_payload stored (Problem.Keybuf.contents kb) (clen + 1) 0 len

let materialize_key cascade kb =
  let clen = String.length cascade in
  let len = Problem.Keybuf.length kb in
  let s = Bytes.create (clen + 1 + len) in
  Bytes.blit_string cascade 0 s 0 clen;
  Bytes.set s clen '\x00';
  Bytes.blit (Problem.Keybuf.contents kb) 0 s (clen + 1) len;
  Bytes.unsafe_to_string s

let key_of ~cascade (p : Problem.t) =
  let kb = Domain.DLS.get keybuf_key in
  if Problem.Keybuf.encode kb p then Some (materialize_key cascade kb)
  else None

(* --- bounded, sharded memo cache ------------------------------------------- *)

(* The cache is split into shards, each an open-hashed bucket table
   bounded by its own slice of the capacity.  Sharding buys two things:
   domains querying in parallel contend on shards instead of one global
   table, and the flush-wholesale policy applies per shard — a hot
   shard overflowing drops 1/N of the cache instead of all of it, even
   in serial mode.

   Reads never take the shard lock: each bucket is an [Atomic.t]
   holding an immutable entry list, so a probe is a load plus a walk of
   immutable blocks.  A reader racing an insert either sees the new
   list or the old one — at worst a spurious miss, after which
   canonicalization makes the re-solved result interchangeable with
   the cached one.  Only writers (insert, flush, clear) serialize on
   the per-shard mutex. *)

type entry = {
  e_hash : int;  (* full hash — cheap pre-filter before key compare *)
  e_key : string;  (* cascade ^ "\x00" ^ flat canonical encoding *)
  e_res : Strategy.result;
  e_warm : bool;  (* bulk-loaded from a snapshot, not solved this run *)
}

type shard = {
  s_lock : Mutex.t;  (* writers only *)
  s_buckets : entry list Atomic.t array;
  mutable s_count : int;
  s_flushes : int Atomic.t;
  (* Padding: shard records are allocated back to back, and [s_count]
     is written on every insert; the dead fields keep one shard's hot
     word off its neighbors' cache lines. *)
  mutable s_pad0 : int;
  mutable s_pad1 : int;
  mutable s_pad2 : int;
  mutable s_pad3 : int;
  mutable s_pad4 : int;
  mutable s_pad5 : int;
} [@@warning "-69"]

type cache = {
  shard_capacity : int;  (* per-shard entry bound *)
  mask : int;  (* bucket-index mask; buckets per shard is a power of 2 *)
  shards : shard array;
}

(* Enough shards that domains rarely collide even when every domain
   the host recommends is querying; at least the historical 8. *)
let default_shards =
  let want = 2 * Domain.recommended_domain_count () in
  let rec pow2 n = if n >= want then n else pow2 (2 * n) in
  max 8 (pow2 1)

let create_cache ?(capacity = 8192) ?(shards = default_shards) () =
  if capacity < 1 then invalid_arg "Query.create_cache: capacity must be >= 1";
  if shards < 1 then invalid_arg "Query.create_cache: shards must be >= 1";
  let shard_capacity = max 1 (capacity / shards) in
  let rec pow2 n = if n >= shard_capacity then n else pow2 (2 * n) in
  let nbuckets = pow2 1 in
  {
    shard_capacity;
    mask = nbuckets - 1;
    shards =
      Array.init shards (fun _ ->
          {
            s_lock = Mutex.create ();
            s_buckets = Array.init nbuckets (fun _ -> Atomic.make []);
            s_count = 0;
            s_flushes = Atomic.make 0;
            s_pad0 = 0;
            s_pad1 = 0;
            s_pad2 = 0;
            s_pad3 = 0;
            s_pad4 = 0;
            s_pad5 = 0;
          });
  }

let global_cache = create_cache ()

let shards cache = Array.length cache.shards
let shard_capacity cache = cache.shard_capacity

let flush_locked sh =
  Array.iter (fun b -> Atomic.set b []) sh.s_buckets;
  sh.s_count <- 0

let clear cache =
  Array.iter
    (fun sh ->
      Mutex.lock sh.s_lock;
      flush_locked sh;
      Atomic.set sh.s_flushes 0;
      Mutex.unlock sh.s_lock)
    cache.shards

let shard_sizes cache =
  Array.map
    (fun sh ->
      Mutex.lock sh.s_lock;
      let n = sh.s_count in
      Mutex.unlock sh.s_lock;
      n)
    cache.shards

let shard_flushes cache =
  Array.map (fun sh -> Atomic.get sh.s_flushes) cache.shards

let size cache = Array.fold_left ( + ) 0 (shard_sizes cache)

let shard_of cache h = cache.shards.(h mod Array.length cache.shards)

(* Decorrelate the bucket index from the shard index (which consumed
   [h mod nshards]) with a multiplicative mix. *)
let bucket_index cache h = (h * 0x2545F4914F6CDD1D lsr 17) land cache.mask

(* Lock-free probe; raises [Not_found] (static, allocation-free).
   Returns the entry (not just the result) so the hit path can tell a
   warm (snapshot-loaded) hit from a cold one without re-probing. *)
let rec find_entry l h cascade kb =
  match l with
  | [] -> raise Not_found
  | e :: rest ->
      if e.e_hash = h && key_matches e.e_key cascade kb then e
      else find_entry rest h cascade kb

let find_cached cache sh h cascade kb =
  find_entry (Atomic.get sh.s_buckets.(bucket_index cache h)) h cascade kb

let insert cache sh h key r stats =
  Mutex.lock sh.s_lock;
  let slot = sh.s_buckets.(bucket_index cache h) in
  let present =
    List.exists (fun e -> e.e_hash = h && String.equal e.e_key key)
      (Atomic.get slot)
  in
  if not present then begin
    if sh.s_count >= cache.shard_capacity then begin
      (* Bounded: flush the shard wholesale rather than track recency —
         it rebuilds in one pass over any workload, and the other
         shards keep their entries. *)
      flush_locked sh;
      Atomic.incr sh.s_flushes;
      Stats.record_flush stats
    end;
    let slot = sh.s_buckets.(bucket_index cache h) in
    Atomic.set slot
      ({ e_hash = h; e_key = key; e_res = r; e_warm = false }
      :: Atomic.get slot);
    sh.s_count <- sh.s_count + 1
  end;
  Mutex.unlock sh.s_lock

(* --- snapshot support ------------------------------------------------------ *)

(* The hash of a fully materialized key equals [hash_key] of its parts:
   djb2-xor is a left fold over bytes and the separator is NUL (xor 0 =
   identity), so hashing the concatenation byte-by-byte lands on the
   same value.  This is what lets a snapshot loader re-insert entries
   from their stored keys alone. *)
let hash_of_key s = hash_string s 0 (String.length s) 5381 land max_int

let dump cache =
  let out = ref [] in
  Array.iter
    (fun sh ->
      Mutex.lock sh.s_lock;
      Array.iter
        (fun b ->
          List.iter
            (fun e -> out := (e.e_key, e.e_res) :: !out)
            (Atomic.get b))
        sh.s_buckets;
      Mutex.unlock sh.s_lock)
    cache.shards;
  (* Sorted by key so two dumps of the same logical contents are equal
     regardless of insertion or probe order — the snapshot writer
     inherits byte-for-byte determinism from this. *)
  List.sort (fun (a, _) (b, _) -> String.compare a b) !out

let load_entries ?pool cache kvs =
  let n = Array.length kvs in
  let nshards = Array.length cache.shards in
  let hashes = Array.map (fun (k, _) -> hash_of_key k) kvs in
  (* Group entry indices by shard: each shard's group is then loaded
     under that shard's lock alone, so the groups can go to the pool —
     parallel bulk load with zero cross-shard contention. *)
  let groups = Array.make nshards [] in
  for i = n - 1 downto 0 do
    let s = hashes.(i) mod nshards in
    groups.(s) <- i :: groups.(s)
  done;
  let load_shard si =
    let sh = cache.shards.(si) in
    let loaded = ref 0 in
    Mutex.lock sh.s_lock;
    List.iter
      (fun i ->
        (* Respect the shard bound: a snapshot larger than the cache
           loads a prefix instead of triggering flush churn. *)
        if sh.s_count < cache.shard_capacity then begin
          let k, r = kvs.(i) in
          let h = hashes.(i) in
          let slot = sh.s_buckets.(bucket_index cache h) in
          let present =
            List.exists
              (fun e -> e.e_hash = h && String.equal e.e_key k)
              (Atomic.get slot)
          in
          if not present then begin
            Atomic.set slot
              ({ e_hash = h; e_key = k; e_res = r; e_warm = true }
              :: Atomic.get slot);
            sh.s_count <- sh.s_count + 1;
            incr loaded
          end
        end)
      groups.(si);
    Mutex.unlock sh.s_lock;
    !loaded
  in
  match pool with
  | Some p when Dlz_base.Pool.domains p > 1 ->
      Array.fold_left ( + ) 0
        (Dlz_base.Pool.map p load_shard (Array.init nshards Fun.id))
  | _ ->
      let total = ref 0 in
      for si = 0 to nshards - 1 do
        total := !total + load_shard si
      done;
      !total

(* Histogram handles resolved once: [Engine.reset_metrics] resets
   histograms in place, so the handles stay valid for the process
   lifetime and the per-query path never touches the registry.  Each
   query lands in exactly one of these; the end-to-end "query" row is
   their merge ([Stats.query_hist]), so the hot path pays a single
   observation. *)
let h_hit = Trace.hist "cache.hit"
let h_miss = Trace.hist "cache.miss"
let h_uncacheable = Trace.hist "cache.uncacheable"

(* Where a query's answer came from, as seen by the cache — the
   signal a per-client attribution layer wants without re-deriving it
   from counters. *)
type disposition = Hit_warm | Hit_cold | Miss | Uncacheable

(* End-of-query bookkeeping, deliberately a top-level function (a
   closure here would put an allocation on the cache-hit path).  The
   allocation delta is taken {e first}, so the telemetry below —
   boxed-int64 clock reads, span args — never pollutes the counter.
   One settle clock read is shared between the histogram observation
   and the span's end timestamp, and the end-of-span attributes are a
   thunk forced only at export. *)
let settled stats sp t0 w0 ~hit disposition h (r : Strategy.result) =
  Stats.record_alloc stats ~hit (int_of_float (Gc.minor_words ()) - w0);
  if Trace.timing_on () then begin
    let t1 = Trace.now_ns () in
    Trace.Hist.observe h (Int64.sub t1 t0);
    if Trace.is_live sp then
      Trace.finish sp ~ts:t1
        ~lazy_args:(fun () ->
          ("cache", disposition)
          :: ("decided_by", r.Strategy.decided_by)
          ::
          (match r.Strategy.degraded with
          | [] -> []
          | ds ->
              [
                ( "degraded_by",
                  String.concat ";"
                    (List.map (fun (s, why) -> s ^ ":" ^ why) ds) );
              ]))
    else Trace.finish sp
  end
  else Trace.finish sp;
  r

let notify observer d =
  match observer with None -> () | Some f -> f d

let memoize ?(stats = Stats.global) ?(cache = global_cache) ?(annot = [])
    ?observer ~cascade_name ~env run p =
  Stats.record_query stats;
  (* One span per query (the high-volume span class — subject to the
     sampling knob); cache disposition and verdict provenance land as
     end-of-span attributes, latencies in the "query"/"cache.*"
     histograms.  A span sampled out here suppresses the nested
     strategy spans too, so the stream never shows orphan children.
     [annot] rides on the begin event — the serve daemon threads the
     request id through here, correlating every span under a request
     with the response the client saw. *)
  let t0 = if Trace.timing_on () then Trace.now_ns () else 0L in
  let sp =
    if Trace.recording_on () then
      Trace.start ~cat:"engine" ~sample:true ~ts:t0
        ~lazy_args:(fun () -> ("cascade", cascade_name) :: annot)
        "query"
    else Trace.null_span
  in
  let w0 = int_of_float (Gc.minor_words ()) in
  try
    let kb = Domain.DLS.get keybuf_key in
    if not (Problem.Keybuf.encode kb p) then begin
      Stats.record_uncacheable stats;
      notify observer Uncacheable;
      settled stats sp t0 w0 ~hit:false "uncacheable" h_uncacheable
        (run ~env p)
    end
    else begin
      let h = hash_key cascade_name kb in
      let sh = shard_of cache h in
      match find_cached cache sh h cascade_name kb with
      | e ->
          Stats.record_hit stats;
          if e.e_warm then Stats.record_warm_hit stats;
          notify observer (if e.e_warm then Hit_warm else Hit_cold);
          settled stats sp t0 w0 ~hit:true "hit" h_hit e.e_res
      | exception Not_found ->
          (* Solve outside any lock: queries on other keys proceed
             while this one runs.  Two domains racing on the same fresh
             key may both solve; canonicalization makes the results
             interchangeable, and each call still records exactly one
             of hit/miss/uncacheable. *)
          Stats.record_miss stats;
          notify observer Miss;
          let r = run ~env p in
          if r.Strategy.degraded <> [] then
            (* A degraded result reflects a contained fault (budget,
               chaos, overflow), not the problem's answer; caching it
               would let one faulted run poison every later query on
               the same key.  Re-solving is deterministic: the same
               fault conditions reproduce the same degradation. *)
            settled stats sp t0 w0 ~hit:false "miss" h_miss r
          else begin
            insert cache sh h (materialize_key cascade_name kb) r stats;
            settled stats sp t0 w0 ~hit:false "miss" h_miss r
          end
    end
  with e ->
    (* Only process-level conditions escape the cascade; keep the
       exported stream balanced even then. *)
    let bt = Printexc.get_raw_backtrace () in
    if Trace.is_live sp then Trace.finish sp ~args:[ ("cache", "error") ]
    else Trace.finish sp;
    Printexc.raise_with_backtrace e bt
