(** Persistent warm-start snapshots of the canonical-form memo cache.

    Every [vic] invocation used to start cold and re-solve the same
    canonical forms the previous run already paid for.  A snapshot
    freezes the sharded {!Query} cache into a compact versioned binary
    file — the stored keys are the {!Dlz_deptest.Problem.Keybuf} flat
    encodings verbatim, no per-entry re-canonicalization — and a later
    run bulk-loads it at boot, so corpus-scale re-analysis begins at
    the within-run hit ratio instead of zero.

    Safety model: a snapshot is advisory.  The header carries a
    strategy-set/version hash ({!tag}) and a payload checksum; a file
    that is missing, truncated, corrupt, or keyed by a different
    strategy set is {e refused} — {!load} never raises, the refusal
    costs one {!Dlz_engine.Stats} reject counter, and the engine simply
    cold-starts.  Degraded results are never cached, hence never
    persisted; every loaded entry is a clean verdict whose
    canonicalization argument makes it interchangeable with a fresh
    solve, so a warm run's verdicts are byte-identical to a cold
    run's. *)

val format_version : int
(** Bumped on any change to the binary layout or to the meaning of a
    cached result; old files are then refused by the {!tag} check. *)

val tag : unit -> int
(** The invalidation hash: format version, result ABI, and the sorted
    registered strategy names.  Adding, removing, or renaming a
    strategy changes the tag, so snapshots solved under a different
    cascade universe can never replay. *)

val default_path : unit -> string
(** The auto snapshot location:
    [$XDG_CACHE_HOME/vic/cache-v<version>-<tag>.snap] (falling back to
    [~/.cache/vic/], then the temp dir).  The tag in the name lets
    snapshots for different strategy sets coexist. *)

val save : ?stats:Stats.t -> ?cache:Query.cache -> string -> (int, string) result
(** [save path] serializes the cache (default {!Query.global_cache})
    to [path]; [Ok n] is the number of entries written.  The dump is
    key-sorted and the write is atomic (temp file + rename), so equal
    cache contents produce byte-identical files and a crashed save
    never leaves a torn one.  Creates the parent directory when
    missing.  Entries whose distances are not constant polynomials are
    skipped (cacheable problems never produce them; this is a format
    guard, not a policy).  [Error reason] means the write failed — a
    full disk, a permission error, or an injected chaos fault at the
    save boundary — and was contained: never raises, removes the tmp
    file so no partial snapshot is left at or near [path], and leaves
    any previous snapshot at [path] intact.  Records one
    {!Stats.record_snapshot_save} on success, one
    {!Stats.record_snapshot_save_fail} on failure. *)

val load :
  ?stats:Stats.t ->
  ?cache:Query.cache ->
  ?pool:Dlz_base.Pool.t ->
  string ->
  (int, string) result
(** [load path] validates and bulk-loads a snapshot into the cache
    (default {!Query.global_cache}), marking every admitted entry warm.
    [Ok n] is the number of entries admitted (the per-shard capacity
    bound can drop a surplus); with [pool] the shards load in
    parallel.  [Error reason] means the file was refused — wrong magic,
    tag mismatch, truncation, checksum failure, a malformed entry, an
    I/O error, or an injected chaos fault — and the cache is left
    exactly as it was: never raises, never partially applies a bad
    file.  Each outcome records the matching {!Stats} counter. *)
