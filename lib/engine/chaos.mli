(** Deterministic fault injection at strategy boundaries.

    The chaos harness exists to prove the engine's containment
    invariants under test: with injection enabled, analysis must still
    terminate, verdicts may only degrade toward "dependent", and
    parallel output must equal serial output.  To make the last one
    hold, injection is {e content-keyed}: whether a strike happens for
    a given (strategy, problem) pair is a pure function of the seed and
    the pair, never of timing, scheduling, or query order — so [--jobs
    8] meets exactly the same faults as [--jobs 1].

    Enable it with [DLZ_CHAOS=<seed>:<rate>] in the environment (picked
    up at startup) or programmatically with {!set_current} /
    the [?chaos] argument of {!Cascade.run}.  [rate] is a fault
    probability in [0, 1].  Four fault kinds are injected with equal
    probability, each exercising a different containment path:
    an opaque exception, [Intx.Overflow "chaos"],
    [Budget.Exhausted "chaos"], and [Injected "unknown"] (a strategy
    "returning garbage", which the cascade treats like any other
    fault). *)

exception Injected of string
(** The opaque injected failure; the payload is the fault kind
    ("raise" or "unknown"). *)

type t

val make : seed:int64 -> rate:float -> t
(** [rate] is clamped to [0, 1]. *)

val seed : t -> int64
val rate : t -> float

val of_string : string -> (t, string) result
(** Parses ["<seed>:<rate>"], e.g. ["42:0.1"]. *)

val to_string : t -> string
(** Round-trips through {!of_string}; fault counters are not part of
    the representation. *)

val current : unit -> t option
(** The process-wide configuration: initialized from [DLZ_CHAOS] at
    startup, overridden by {!set_current}.  [Cascade.run] consults it
    when no explicit [?chaos] is given. *)

val set_current : t option -> unit

val strikes : t -> int
(** Total faults injected through this configuration so far — each one
    is matched by exactly one degradation recorded in {!Stats}. *)

val reset_strikes : t -> unit

val strike : t -> strategy:string -> Dlz_deptest.Problem.t -> unit
(** Called by the cascade just before running [strategy] on the
    problem.  Deterministically decides whether to inject a fault for
    this (strategy, problem) pair and, if so, counts it and raises. *)

(** {2 Socket-boundary strikes}

    The serve layer injects faults at frame boundaries rather than
    strategy boundaries: a frame may arrive torn (bytes mangled
    mid-payload), the peer may vanish mid-stream, or a write may crawl
    byte-group by byte-group (a cooperating slow-loris).  These return
    a fault for the caller to {e enact} instead of raising, because
    the right enactment differs per boundary (mangle vs close vs
    stall). *)

type io_fault =
  | Torn_frame  (** deliver a corrupted frame / abort mid-write *)
  | Disconnect  (** the connection drops at this boundary *)
  | Slow_write  (** the transfer proceeds in tiny stalled pieces *)

val io_fault_to_string : io_fault -> string

val io_strike : t -> point:string -> key:string -> io_fault option
(** Content-keyed like {!strike} on (point, key) — [point] names the
    boundary (["frame.read"], ["frame.write"]) and [key] is the frame
    payload — so the same frame meets the same fault on every run.
    Counts toward {!strikes} when a fault fires. *)
