open Dlz_base
module Depeq = Dlz_deptest.Depeq
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Ddvec = Dlz_deptest.Ddvec
module Problem = Dlz_deptest.Problem
module Hierarchy = Dlz_deptest.Hierarchy

type residue_policy = Nonneg | Symmetric | Optimal

type step = {
  k : int;
  coeff : int option;
  smin : int;
  smax : int;
  gk : int option;
  r : int;
  barrier : bool;
  separated : Depeq.t option;
}

type result = {
  verdict : Verdict.t;
  pieces : Depeq.t list;
  dirvecs : Dirvec.t list;
  ddvecs : Ddvec.t list;
  distances : (int * int) list;
  steps : step list;
}

let sort_terms (eq : Depeq.t) =
  {
    eq with
    terms =
      List.stable_sort
        (fun (a : Depeq.term) (b : Depeq.term) ->
          Int.compare (Intx.abs a.coeff) (Intx.abs b.coeff))
        eq.terms;
  }

let residue policy ~smin ~smax c0 g =
  match policy with
  | Nonneg -> Numth.fmod c0 g
  | Symmetric -> Numth.symmetric_mod c0 g
  | Optimal ->
      (* Center the piece's value interval around zero. *)
      let target = -Numth.fdiv (Intx.add smin smax) 2 in
      Numth.nearest_residue c0 g target

(* Exact distance carried by a separated pair equation
   r + a*α - a*β = 0: β - α = r/a when divisible. *)
let piece_distance (piece : Depeq.t) =
  match piece.terms with
  | [ t1; t2 ]
    when t1.var.v_level = t2.var.v_level
         && t1.var.v_level > 0
         && t1.var.v_side <> t2.var.v_side
         && t1.coeff = Intx.neg t2.coeff ->
      let a, lvl =
        if t1.var.v_side = `Src then (t1.coeff, t1.var.v_level)
        else (t2.coeff, t2.var.v_level)
      in
      if Numth.divides a piece.c0 then Some (lvl, piece.c0 / a) else None
  | _ -> None

let meet_sets dvs nvs =
  let merged =
    List.concat_map
      (fun dv -> List.filter_map (fun nv -> Dirvec.meet dv nv) nvs)
      dvs
  in
  List.sort_uniq Dirvec.compare merged

let run ?(policy = Optimal) ?solver ~n_common ~common_ubs eq =
  let solver =
    match solver with
    | Some s -> s
    | None -> fun np -> Hierarchy.directions ~test:Hierarchy.gcd_banerjee np
  in
  let eq = sort_terms eq in
  let terms = Array.of_list eq.terms in
  let n = Array.length terms in
  (* Suffix gcds of the sorted coefficients. *)
  let g = Array.make (n + 1) 0 in
  for k = n - 1 downto 0 do
    g.(k) <- Numth.gcd terms.(k).coeff g.(k + 1)
  done;
  let steps = ref [] in
  let pieces = ref [] in
  let distances = ref [] in
  let dirvecs = ref [ Dirvec.all_star n_common ] in
  let independent = ref false in
  let smin = ref 0 and smax = ref 0 in
  let kbeg = ref 0 in
  let c0 = ref eq.c0 in
  let k = ref 0 in
  while (not !independent) && !k <= n do
    let gk = if !k < n then Some g.(!k) else None in
    let r =
      match gk with
      | None -> !c0
      | Some g -> residue policy ~smin:!smin ~smax:!smax !c0 g
    in
    let cmin = Intx.add !smin r and cmax = Intx.add !smax r in
    let barrier =
      match gk with
      | None -> true
      | Some g -> max (Intx.abs cmin) (Intx.abs cmax) < g
    in
    let separated = ref None in
    if barrier then begin
      if cmin > 0 || cmax < 0 then independent := true
      else begin
        let group =
          Array.to_list (Array.sub terms !kbeg (!k - !kbeg))
          |> List.map (fun (t : Depeq.term) -> (t.coeff, t.var))
        in
        if not (group = [] && r = 0) then begin
          let piece = Depeq.make r group in
          separated := Some piece;
          pieces := piece :: !pieces;
          (match piece_distance piece with
          | Some (lvl, d) -> distances := (lvl, d) :: !distances
          | None -> ());
          let nv =
            solver (Problem.numeric_of_equations ~n_common ~common_ubs [ piece ])
          in
          dirvecs := meet_sets !dirvecs nv;
          if !dirvecs = [] then independent := true
        end;
        smin := 0;
        smax := 0;
        kbeg := !k;
        c0 := Intx.sub !c0 r
      end
    end;
    steps :=
      {
        k = !k + 1;
        coeff = (if !k < n then Some terms.(!k).coeff else None);
        smin = !smin;
        smax = !smax;
        gk;
        r;
        barrier;
        separated = !separated;
      }
      :: !steps;
    if (not !independent) && !k < n then begin
      let t = terms.(!k) in
      smin := Intx.add !smin (Intx.mul (Intx.neg_part t.coeff) t.var.v_ub);
      smax := Intx.add !smax (Intx.mul (Intx.pos_part t.coeff) t.var.v_ub)
    end;
    incr k
  done;
  let verdict =
    if !independent || !dirvecs = [] then Verdict.Independent
    else Verdict.Dependent
  in
  let dirvecs = if verdict = Verdict.Independent then [] else !dirvecs in
  let distances = List.sort_uniq Stdlib.compare !distances in
  let ddvecs =
    List.map
      (fun dv ->
        List.fold_left
          (fun ddv (lvl, d) ->
            if lvl >= 1 && lvl <= Array.length dv then
              Ddvec.with_distance ddv lvl d
            else ddv)
          (Ddvec.of_dirvec dv) distances)
      dirvecs
  in
  {
    verdict;
    pieces = List.rev !pieces;
    dirvecs;
    ddvecs;
    distances;
    steps = List.rev !steps;
  }

(* Independence-only scan: the inline Banerjee check plus the per-piece
   gcd check, never invoking a direction-vector solver. *)
let test ?(policy = Optimal) eq =
  let eq = sort_terms eq in
  let terms = Array.of_list eq.terms in
  let n = Array.length terms in
  let g = Array.make (n + 1) 0 in
  for k = n - 1 downto 0 do
    g.(k) <- Numth.gcd terms.(k).coeff g.(k + 1)
  done;
  let exception Indep in
  try
    let smin = ref 0 and smax = ref 0 in
    let kbeg = ref 0 in
    let c0 = ref eq.c0 in
    for k = 0 to n do
      let gk = if k < n then Some g.(k) else None in
      let r =
        match gk with
        | None -> !c0
        | Some g -> residue policy ~smin:!smin ~smax:!smax !c0 g
      in
      let cmin = Intx.add !smin r and cmax = Intx.add !smax r in
      let barrier =
        match gk with
        | None -> true
        | Some g -> max (Intx.abs cmin) (Intx.abs cmax) < g
      in
      if barrier then begin
        if cmin > 0 || cmax < 0 then raise Indep;
        let group_gcd =
          let acc = ref 0 in
          for l = !kbeg to k - 1 do
            acc := Numth.gcd !acc terms.(l).coeff
          done;
          !acc
        in
        if not (Numth.divides group_gcd r) then raise Indep;
        smin := 0;
        smax := 0;
        kbeg := k;
        c0 := Intx.sub !c0 r
      end;
      if k < n then begin
        let t = terms.(k) in
        smin := Intx.add !smin (Intx.mul (Intx.neg_part t.coeff) t.var.v_ub);
        smax := Intx.add !smax (Intx.mul (Intx.pos_part t.coeff) t.var.v_ub)
      end
    done;
    Verdict.Dependent
  with Indep -> Verdict.Independent

let pieces_of ?policy eq =
  (run ?policy ~n_common:0 ~common_ubs:[||] eq).pieces
