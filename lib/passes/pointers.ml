module C = Dlz_frontend.C_ast
module Ast = Dlz_ir.Ast
module Expr = Dlz_ir.Expr

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

type pvalue = { base : string; off : Expr.t }

type env = {
  mutable arrays : (string * int list) list;
      (** Declared arrays with their constant extents, outermost
          first. *)
  mutable ints : string list;
  mutable pointers : (string * pvalue option) list;
      (** [None] until first assigned. *)
}

let is_array env n = List.mem_assoc n env.arrays
let array_rank env n =
  match List.assoc_opt n env.arrays with
  | Some dims -> List.length dims
  | None -> 0

let is_pointer env n = List.mem_assoc n env.pointers

(* [A[i][j]] parses as [EIndex (EIndex (EVar A, i), j)]; peel the chain
   down to the base variable and the subscript list, outermost first. *)
let rec peel_index (e : C.expr) acc =
  match e with
  | C.EIndex (a, i) -> peel_index a (i :: acc)
  | C.EVar v -> Some (v, acc)
  | _ -> None

let set_pointer env n v =
  env.pointers <-
    (n, Some v) :: List.remove_assoc n env.pointers

let pointer_value env n =
  match List.assoc_opt n env.pointers with
  | Some (Some v) -> v
  | Some None -> unsupported "pointer %s used before assignment" n
  | None -> unsupported "%s is not a pointer" n

let rec conv_int env (e : C.expr) : Expr.t =
  match e with
  | C.EInt k -> Expr.Const k
  | C.EFloat s ->
      (* Same idiom the F77 parser uses for real literals: an opaque
         %REAL call keeps the literal text out of the affine domain. *)
      Expr.Call ("%REAL", [ Expr.Var s ])
  | C.EVar v ->
      if is_pointer env v then
        unsupported "pointer %s used as an integer" v
      else Expr.Var v
  | C.ENeg a -> Expr.Neg (conv_int env a)
  | C.EBin (op, a, b) ->
      let o =
        match op with
        | `Add -> Expr.Add
        | `Sub -> Expr.Sub
        | `Mul -> Expr.Mul
        | `Div -> Expr.Div
      in
      Expr.Bin (o, conv_int env a, conv_int env b)
  | C.EDeref a ->
      let pv = conv_ptr env a in
      Expr.Call (pv.base, [ Expr.fold_consts pv.off ])
  | C.EIndex (a, i) -> (
      match multi_index env (C.EIndex (a, i)) with
      | Some (base, subs) -> Expr.Call (base, subs)
      | None ->
          let pv = conv_ptr env a in
          Expr.Call
            ( pv.base,
              [
                Expr.fold_consts
                  (Expr.Bin (Expr.Add, pv.off, conv_int env i));
              ] ))
  | C.ECall (f, args) -> Expr.Call (f, List.map (conv_int env) args)

(* A fully-subscripted access to a declared multi-dimensional array:
   [A[i][j]] with [double A[N][M]] maps to the multi-subscript aref
   [A(i, j)] (delinearization's native form).  Rank-1 arrays keep the
   pointer-offset path below so pointer/array mixing still works.
   Partially subscripting a multi-dimensional array has no meaning in
   the subset and is rejected. *)
and multi_index env (e : C.expr) : (string * Expr.t list) option =
  match peel_index e [] with
  | Some (base, subs) -> (
      let rank = array_rank env base in
      if rank < 2 then None
      else
        let k = List.length subs in
        if k = rank then
          Some
            (base, List.map (fun s -> Expr.fold_consts (conv_int env s)) subs)
        else
          unsupported "array %s has rank %d but is indexed with %d subscripts"
            base rank k)
  | None -> None

and conv_ptr env (e : C.expr) : pvalue =
  match e with
  | C.EVar v ->
      if is_array env v then
        if array_rank env v >= 2 then
          unsupported "pointer arithmetic over multi-dimensional array %s" v
        else { base = v; off = Expr.Const 0 }
      else if is_pointer env v then pointer_value env v
      else unsupported "%s is neither an array nor a pointer" v
  | C.EBin (`Add, a, b) -> (
      match try_ptr env a with
      | Some pv ->
          { pv with off = Expr.Bin (Expr.Add, pv.off, conv_int env b) }
      | None ->
          let pv = conv_ptr env b in
          { pv with off = Expr.Bin (Expr.Add, pv.off, conv_int env a) })
  | C.EBin (`Sub, a, b) ->
      let pv = conv_ptr env a in
      { pv with off = Expr.Bin (Expr.Sub, pv.off, conv_int env b) }
  | C.EIndex (a, i) ->
      (* &-free subset: fully-subscripted multi-dimensional accesses
         are handled by [multi_index] before this path is reached, so
         a subscript here is rank-1 pointer-style arithmetic. *)
      let pv = conv_ptr env a in
      { pv with off = Expr.Bin (Expr.Add, pv.off, conv_int env i) }
  | _ -> unsupported "expression is not a recognizable pointer"

and try_ptr env e = try Some (conv_ptr env e) with Unsupported _ -> None

let lvalue env (e : C.expr) : Ast.aref =
  match e with
  | C.EDeref a ->
      let pv = conv_ptr env a in
      { Ast.name = pv.base; subs = [ Expr.fold_consts pv.off ] }
  | C.EIndex (a, i) -> (
      match multi_index env (C.EIndex (a, i)) with
      | Some (base, subs) -> { Ast.name = base; subs }
      | None ->
          let pv = conv_ptr env a in
          {
            Ast.name = pv.base;
            subs =
              [
                Expr.fold_consts (Expr.Bin (Expr.Add, pv.off, conv_int env i));
              ];
          })
  | C.EVar v ->
      if is_pointer env v || is_array env v then
        unsupported "assignment to pointer %s outside a for-init" v
      else { Ast.name = v; subs = [] }
  | _ -> unsupported "unsupported lvalue"

let rec lower_stmt env decls (s : C.stmt) : Ast.stmt list =
  match s with
  | C.Decl (bt, ds) ->
      List.iter
        (fun (d : C.declarator) ->
          match (d.d_ptr, d.d_dims) with
          | true, _ -> env.pointers <- (d.d_name, None) :: env.pointers
          | false, (_ :: _ as dims) ->
              env.arrays <- (d.d_name, dims) :: env.arrays;
              decls :=
                Ast.Array
                  {
                    a_name = d.d_name;
                    a_kind = (match bt with C.Float -> Ast.Real | C.Int -> Ast.Integer);
                    a_dims =
                      List.map
                        (fun n ->
                          { Ast.lo = Expr.Const 0; hi = Expr.Const (n - 1) })
                        dims;
                  }
                :: !decls
          | false, [] ->
              env.ints <- d.d_name :: env.ints;
              decls :=
                Ast.Scalar
                  ((match bt with C.Float -> Ast.Real | C.Int -> Ast.Integer),
                   d.d_name)
                :: !decls)
        ds;
      []
  | C.Assign (lv, rv) -> (
      (* Pointer assignment in straight-line code updates the symbolic
         environment; everything else becomes an IR assignment. *)
      match lv with
      | C.EVar v when is_pointer env v ->
          set_pointer env v (conv_ptr env rv);
          []
      | _ ->
          let lhs = lvalue env lv in
          [ Ast.assign lhs (conv_int env rv) ])
  | C.For { init; cond; step; body } ->
      let var = step.s_var in
      (match cond.lhs with
      | C.EVar v when String.equal v var -> ()
      | _ -> unsupported "loop condition must test the loop variable");
      let pointer_loop = is_pointer env var in
      let lo, hi =
        if pointer_loop then begin
          let pv0 =
            match init with
            | Some (v, e) when String.equal v var -> conv_ptr env e
            | _ -> unsupported "pointer loop must initialize its variable"
          in
          let bound = conv_ptr env cond.rhs in
          if not (String.equal bound.base pv0.base) then
            unsupported "pointer loop bound crosses arrays (%s vs %s)"
              pv0.base bound.base;
          (* The pointer variable becomes an integer offset into the
             base array for the duration of the loop. *)
          set_pointer env var { base = pv0.base; off = Expr.Var var };
          (pv0.off, bound.off)
        end
        else begin
          let lo =
            match init with
            | Some (v, e) when String.equal v var -> conv_int env e
            | Some _ -> unsupported "for-init must assign the loop variable"
            | None -> unsupported "missing loop initialization"
          in
          (lo, conv_int env cond.rhs)
        end
      in
      let hi =
        let open Expr in
        match (cond.op, step.s_delta > 0) with
        | `Lt, true -> fold_consts (Bin (Sub, hi, Const 1))
        | `Le, true -> hi
        | `Gt, false -> fold_consts (Bin (Add, hi, Const 1))
        | `Ge, false -> hi
        | _ -> unsupported "loop condition and step disagree on direction"
      in
      let body' = List.concat_map (lower_stmt env decls) body in
      [ Ast.do_ ~step:(Expr.Const step.s_delta) var lo hi body' ]

let lower (p : C.program) =
  let env = { arrays = []; ints = []; pointers = [] } in
  let decls = ref [] in
  let body = List.concat_map (lower_stmt env decls) p in
  { Ast.p_name = "CFRAG"; decls = List.rev !decls; body }
