(** Abstract syntax of the mini-C front end.

    Covers the paper's §1 C fragment and its kin: scalar/array/pointer
    declarations, [for] loops with linear induction updates, assignments
    through derefs and subscripts, and pointer arithmetic.  The
    {!Dlz_passes} pointer-conversion pass lowers this to the common
    loop-nest IR. *)

type base_type = Float | Int

type declarator = {
  d_ptr : bool;  (** Declared as [*name]. *)
  d_name : string;
  d_dims : int list;
      (** Constant extents, outermost first; [\[\]] for scalars, so
          [double A\[N\]\[M\]] carries [\[N; M\]]. *)
}

type expr =
  | EInt of int
  | EFloat of string  (** Opaque real literal, kept as written. *)
  | EVar of string
  | ENeg of expr
  | EDeref of expr  (** [*e] *)
  | EBin of [ `Add | `Sub | `Mul | `Div ] * expr * expr
  | EIndex of expr * expr  (** [e1\[e2\]] *)
  | ECall of string * expr list

type cond = { lhs : expr; op : [ `Lt | `Le | `Gt | `Ge ]; rhs : expr }

type step = {
  s_var : string;
  s_delta : int;  (** [v++] is +1, [v += k] is +k, [v -= k] is -k. *)
}

type stmt =
  | Decl of base_type * declarator list
  | For of { init : (string * expr) option; cond : cond; step : step;
             body : stmt list }
  | Assign of expr * expr  (** lvalue, rvalue. *)

type program = stmt list

val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> program -> unit
