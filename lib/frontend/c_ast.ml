type base_type = Float | Int

(* [d_dims] lists the constant extents of each array dimension, outermost
   first ([] = scalar): [double A[N][M]] carries [[N; M]]. *)
type declarator = { d_ptr : bool; d_name : string; d_dims : int list }

type expr =
  | EInt of int
  | EFloat of string  (** opaque real literal, kept as written *)
  | EVar of string
  | ENeg of expr
  | EDeref of expr
  | EBin of [ `Add | `Sub | `Mul | `Div ] * expr * expr
  | EIndex of expr * expr
  | ECall of string * expr list

type cond = { lhs : expr; op : [ `Lt | `Le | `Gt | `Ge ]; rhs : expr }
type step = { s_var : string; s_delta : int }

type stmt =
  | Decl of base_type * declarator list
  | For of { init : (string * expr) option; cond : cond; step : step;
             body : stmt list }
  | Assign of expr * expr

type program = stmt list

let rec pp_expr ppf = function
  | EInt k -> Format.fprintf ppf "%d" k
  | EFloat s -> Format.pp_print_string ppf s
  | EVar v -> Format.pp_print_string ppf v
  | ENeg e -> Format.fprintf ppf "-(%a)" pp_expr e
  | EDeref e -> Format.fprintf ppf "*(%a)" pp_expr e
  | EBin (op, a, b) ->
      let s =
        match op with `Add -> "+" | `Sub -> "-" | `Mul -> "*" | `Div -> "/"
      in
      Format.fprintf ppf "(%a%s%a)" pp_expr a s pp_expr b
  | EIndex (a, i) -> Format.fprintf ppf "%a[%a]" pp_expr a pp_expr i
  | ECall (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_expr)
        args

let rec pp_stmt ppf = function
  | Decl (bt, ds) ->
      Format.fprintf ppf "%s %s;"
        (match bt with Float -> "float" | Int -> "int")
        (String.concat ", "
           (List.map
              (fun d ->
                (if d.d_ptr then "*" else "")
                ^ d.d_name
                ^ String.concat ""
                    (List.map (Printf.sprintf "[%d]") d.d_dims))
              ds))
  | Assign (l, r) -> Format.fprintf ppf "%a = %a;" pp_expr l pp_expr r
  | For { init; cond; step; body } ->
      let op_str =
        match cond.op with `Lt -> "<" | `Le -> "<=" | `Gt -> ">" | `Ge -> ">="
      in
      Format.fprintf ppf "@[<v 2>for(%s %a%s%a; %s) {"
        (match init with
        | Some (v, e) -> Format.asprintf "%s=%a;" v pp_expr e
        | None -> ";")
        pp_expr cond.lhs op_str pp_expr cond.rhs
        (if step.s_delta = 1 then step.s_var ^ "++"
         else Printf.sprintf "%s+=%d" step.s_var step.s_delta);
      List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) body;
      Format.fprintf ppf "@]@,}"

let pp ppf p =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "@,";
      pp_stmt ppf s)
    p;
  Format.fprintf ppf "@]"
