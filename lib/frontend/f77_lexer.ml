type token =
  | INT of int
  | REAL_LIT of string
  | IDENT of string
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | DSTAR
  | SLASH
  | NEWLINE
  | EOF

type lexed = { tok : token; loc : Diag.loc }

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let tokenize src =
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let emit tok = toks := { tok; loc = { Diag.line = !line; col = !col } } :: !toks in
  let advance k =
    col := !col + k;
    i := !i + k
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      emit NEWLINE;
      incr i;
      incr line;
      col := 1
    end
    else if c = ' ' || c = '\t' || c = '\r' then advance 1
    else if c = '!' then begin
      (* Trailing comment: skip to end of line. *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if
      (c = 'C' || c = 'c' || c = '*')
      && !col = 1
      && (!i + 1 >= n
         ||
         match src.[!i + 1] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then
      (* Full-line comment in column 1 (statements are always indented,
         so a bare C/*/c followed by whitespace cannot start one). *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      (* Real literal: digits '.' digits, or exponent forms. *)
      if
        !i < n
        && (src.[!i] = '.'
           || src.[!i] = 'E' || src.[!i] = 'e' || src.[!i] = 'D'
           || src.[!i] = 'd')
        && (src.[!i] <> '.' || !i + 1 >= n || src.[!i + 1] <> '.')
      then begin
        if src.[!i] = '.' then incr i;
        while
          !i < n
          && (is_digit src.[!i] || src.[!i] = 'E' || src.[!i] = 'e'
             || src.[!i] = 'D' || src.[!i] = 'd' || src.[!i] = '+'
             || src.[!i] = '-')
        do
          incr i
        done;
        let text = String.sub src start (!i - start) in
        emit (REAL_LIT text);
        col := !col + (!i - start)
      end
      else begin
        let text = String.sub src start (!i - start) in
        (* Typed failure on oversized literals: a bare [int_of_string]
           Failure would escape the Diag.Parse_error taxonomy. *)
        (match int_of_string_opt text with
        | Some k -> emit (INT k)
        | None ->
            Diag.error
              { Diag.line = !line; col = !col }
              "integer literal %s does not fit in a native int" text);
        col := !col + (!i - start)
      end
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && (is_alpha src.[!i] || is_digit src.[!i]) do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      emit (IDENT (String.uppercase_ascii text));
      col := !col + (!i - start)
    end
    else begin
      let tok =
        match c with
        | '(' -> LPAREN
        | ')' -> RPAREN
        | ',' -> COMMA
        | ':' -> COLON
        | '=' -> EQUALS
        | '+' -> PLUS
        | '-' -> MINUS
        | '*' ->
            if !i + 1 < n && src.[!i + 1] = '*' then DSTAR else STAR
        | '/' -> SLASH
        | _ ->
            Diag.error
              { Diag.line = !line; col = !col }
              "unexpected character %C" c
      in
      emit tok;
      advance (if tok = DSTAR then 2 else 1)
    end
  done;
  emit EOF;
  List.rev !toks

let pp_token ppf = function
  | INT k -> Format.fprintf ppf "integer %d" k
  | REAL_LIT s -> Format.fprintf ppf "real literal %s" s
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | COMMA -> Format.pp_print_string ppf "','"
  | COLON -> Format.pp_print_string ppf "':'"
  | EQUALS -> Format.pp_print_string ppf "'='"
  | PLUS -> Format.pp_print_string ppf "'+'"
  | MINUS -> Format.pp_print_string ppf "'-'"
  | STAR -> Format.pp_print_string ppf "'*'"
  | DSTAR -> Format.pp_print_string ppf "'**'"
  | SLASH -> Format.pp_print_string ppf "'/'"
  | NEWLINE -> Format.pp_print_string ppf "end of line"
  | EOF -> Format.pp_print_string ppf "end of input"
