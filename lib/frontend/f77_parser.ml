module Ast = Dlz_ir.Ast
module Expr = Dlz_ir.Expr
open F77_lexer

type state = { mutable toks : lexed list; mutable last : Diag.loc }

(* The lexer always terminates the stream with EOF, so an empty token
   list means something consumed past it — malformed input, never a
   crash: report it at the last location seen. *)
let peek st =
  match st.toks with
  | [] -> Diag.error st.last "unexpected end of input"
  | l :: _ -> l

let next st =
  let l = peek st in
  st.last <- l.loc;
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  l

let expect st tok =
  let l = next st in
  if l.tok <> tok then
    Diag.error l.loc "expected %a, found %a" pp_token tok pp_token l.tok

let skip_newlines st =
  let rec go () =
    match (peek st).tok with
    | NEWLINE ->
        ignore (next st);
        go ()
    | _ -> ()
  in
  go ()

(* --- expressions ------------------------------------------------------- *)

let parse_expr_prec st =
  let rec additive () =
    let lhs = ref (multiplicative ()) in
    let rec loop () =
      match (peek st).tok with
      | PLUS ->
          ignore (next st);
          lhs := Expr.Bin (Expr.Add, !lhs, multiplicative ());
          loop ()
      | MINUS ->
          ignore (next st);
          lhs := Expr.Bin (Expr.Sub, !lhs, multiplicative ());
          loop ()
      | _ -> ()
    in
    loop ();
    !lhs
  and multiplicative () =
    let lhs = ref (power ()) in
    let rec loop () =
      match (peek st).tok with
      | STAR ->
          ignore (next st);
          lhs := Expr.Bin (Expr.Mul, !lhs, power ());
          loop ()
      | SLASH ->
          ignore (next st);
          lhs := Expr.Bin (Expr.Div, !lhs, power ());
          loop ()
      | _ -> ()
    in
    loop ();
    !lhs
  and power () =
    let base = unary () in
    match (peek st).tok with
    | DSTAR -> (
        ignore (next st);
        let e = power () in
        (* Expand small constant powers so subscripts stay polynomial. *)
        match Expr.to_const e with
        | Some k when k >= 0 && k <= 8 ->
            let rec expand acc n =
              if n = 0 then acc else expand (Expr.Bin (Expr.Mul, acc, base)) (n - 1)
            in
            if k = 0 then Expr.Const 1 else expand base (k - 1)
        | _ -> Expr.Call ("%POW", [ base; e ]))
    | _ -> base
  and unary () =
    match (peek st).tok with
    | MINUS ->
        ignore (next st);
        Expr.Neg (unary ())
    | PLUS ->
        ignore (next st);
        unary ()
    | _ -> primary ()
  and primary () =
    let l = next st in
    match l.tok with
    | INT k -> Expr.Const k
    | REAL_LIT s -> Expr.Call ("%REAL", [ Expr.Var s ])
    | LPAREN ->
        let e = additive () in
        expect st RPAREN;
        e
    | IDENT name -> (
        match (peek st).tok with
        | LPAREN ->
            ignore (next st);
            let args = ref [] in
            (match (peek st).tok with
            | RPAREN -> ()
            | _ ->
                let rec loop () =
                  args := additive () :: !args;
                  match (peek st).tok with
                  | COMMA ->
                      ignore (next st);
                      loop ()
                  | _ -> ()
                in
                loop ());
            expect st RPAREN;
            Expr.Call (name, List.rev !args)
        | _ -> Expr.Var name)
    | t -> Diag.error l.loc "expected an expression, found %a" pp_token t
  in
  additive ()

(* --- declarations ------------------------------------------------------ *)

let parse_dim st =
  let e1 = parse_expr_prec st in
  match (peek st).tok with
  | COLON ->
      ignore (next st);
      let e2 = parse_expr_prec st in
      { Ast.lo = e1; hi = e2 }
  | _ -> { Ast.lo = Expr.Const 1; hi = e1 }

let parse_decl_items st kind =
  let decls = ref [] in
  let rec item () =
    let l = next st in
    match l.tok with
    | IDENT name ->
        (match (peek st).tok with
        | LPAREN ->
            ignore (next st);
            let dims = ref [ parse_dim st ] in
            let rec more () =
              match (peek st).tok with
              | COMMA ->
                  ignore (next st);
                  dims := parse_dim st :: !dims;
                  more ()
              | _ -> ()
            in
            more ();
            expect st RPAREN;
            decls :=
              Ast.Array { a_name = name; a_kind = kind; a_dims = List.rev !dims }
              :: !decls
        | _ -> decls := Ast.Scalar (kind, name) :: !decls);
        (match (peek st).tok with
        | COMMA ->
            ignore (next st);
            item ()
        | _ -> ())
    | t -> Diag.error l.loc "expected a declared name, found %a" pp_token t
  in
  item ();
  List.rev !decls

let parse_equivalence st =
  let groups = ref [] in
  let rec group () =
    expect st LPAREN;
    let items = ref [] in
    let rec item () =
      let l = next st in
      match l.tok with
      | IDENT name ->
          let subs =
            match (peek st).tok with
            | LPAREN ->
                ignore (next st);
                let subs = ref [ parse_expr_prec st ] in
                let rec more () =
                  match (peek st).tok with
                  | COMMA ->
                      ignore (next st);
                      subs := parse_expr_prec st :: !subs;
                      more ()
                  | _ -> ()
                in
                more ();
                expect st RPAREN;
                List.rev !subs
            | _ -> []
          in
          items := (name, subs) :: !items;
          (match (peek st).tok with
          | COMMA ->
              ignore (next st);
              item ()
          | _ -> ())
      | t -> Diag.error l.loc "expected a name in EQUIVALENCE, found %a" pp_token t
    in
    item ();
    expect st RPAREN;
    groups := List.rev !items :: !groups;
    match (peek st).tok with
    | COMMA ->
        ignore (next st);
        group ()
    | _ -> ()
  in
  group ();
  List.rev !groups

let parse_parameter st =
  expect st LPAREN;
  let ps = ref [] in
  let rec item () =
    let l = next st in
    match l.tok with
    | IDENT name -> (
        expect st EQUALS;
        let e = parse_expr_prec st in
        (match Expr.to_const e with
        | Some v -> ps := (name, v) :: !ps
        | None -> Diag.error l.loc "PARAMETER value must be constant");
        match (peek st).tok with
        | COMMA ->
            ignore (next st);
            item ()
        | _ -> ())
    | t -> Diag.error l.loc "expected a PARAMETER name, found %a" pp_token t
  in
  item ();
  expect st RPAREN;
  Ast.Parameter (List.rev !ps)

let parse_common st =
  expect st SLASH;
  let blk =
    match (next st).tok with
    | IDENT n -> n
    | _ -> "BLANK"
  in
  expect st SLASH;
  let members = ref [] in
  let rec item () =
    match (next st).tok with
    | IDENT n -> (
        members := n :: !members;
        match (peek st).tok with
        | COMMA ->
            ignore (next st);
            item ()
        | _ -> ())
    | t -> Diag.error (peek st).loc "expected a COMMON member, found %a" pp_token t
  in
  item ();
  Ast.Common (blk, List.rev !members)

(* --- statements and loop structure ------------------------------------- *)

type frame = {
  f_label : int option;
  f_var : string;
  f_lo : Expr.t;
  f_hi : Expr.t;
  f_step : Expr.t;
  mutable f_body : Ast.stmt list; (* reversed *)
}

type builder = {
  mutable decls : Ast.decl list; (* reversed *)
  mutable top : Ast.stmt list; (* reversed *)
  mutable stack : frame list; (* innermost first *)
  mutable name : string;
  mutable params : string list; (* SUBROUTINE dummy arguments *)
}

let push_stmt b s =
  match b.stack with
  | [] -> b.top <- s :: b.top
  | f :: _ -> f.f_body <- s :: f.f_body

let close_frame b =
  match b.stack with
  | [] -> failwith "close_frame: empty stack"
  | f :: rest ->
      b.stack <- rest;
      let stmt =
        Ast.Do
          {
            label = f.f_label;
            var = f.f_var;
            lo = f.f_lo;
            hi = f.f_hi;
            step = f.f_step;
            body = List.rev f.f_body;
          }
      in
      push_stmt b stmt

(* A statement carrying label L terminates every open DO whose terminal
   label is L (they nest, so they close innermost-out). *)
let close_labeled b label =
  let rec go () =
    match b.stack with
    | f :: _ when f.f_label = Some label ->
        close_frame b;
        go ()
    | _ -> ()
  in
  go ()

let parse_do st b label =
  (* DO [term-label] var = lo, hi [, step] *)
  let term_label =
    match (peek st).tok with
    | INT l ->
        ignore (next st);
        Some l
    | _ -> None
  in
  let var =
    match (next st).tok with
    | IDENT v -> v
    | t -> Diag.error (peek st).loc "expected a DO variable, found %a" pp_token t
  in
  expect st EQUALS;
  let lo = parse_expr_prec st in
  expect st COMMA;
  let hi = parse_expr_prec st in
  let step =
    match (peek st).tok with
    | COMMA ->
        ignore (next st);
        parse_expr_prec st
    | _ -> Expr.Const 1
  in
  ignore label;
  b.stack <-
    { f_label = term_label; f_var = var; f_lo = lo; f_hi = hi; f_step = step;
      f_body = [] }
    :: b.stack

let lhs_of_expr loc = function
  | Expr.Var v -> { Ast.name = v; subs = [] }
  | Expr.Call (f, args) -> { Ast.name = f; subs = args }
  | _ -> Diag.error loc "left-hand side must be a variable or array element"

let parse_statement st b =
  let label =
    match (peek st).tok with
    | INT l ->
        ignore (next st);
        Some l
    | _ -> None
  in
  let finish_line () =
    match (peek st).tok with
    | NEWLINE | EOF -> ()
    | t -> Diag.error (peek st).loc "unexpected %a at end of statement" pp_token t
  in
  let l = peek st in
  (match l.tok with
  | NEWLINE | EOF -> () (* empty (or label-only) line *)
  | IDENT kw -> (
      let starts_assignment () =
        (* Lookahead: IDENT [ '(' balanced ')' ] '='. *)
        match st.toks with
        | _ :: { tok = EQUALS; _ } :: _ -> true
        | _ :: { tok = LPAREN; _ } :: rest ->
            let rec scan depth = function
              | { tok = LPAREN; _ } :: r -> scan (depth + 1) r
              | { tok = RPAREN; _ } :: r ->
                  if depth = 1 then
                    match r with
                    | { tok = EQUALS; _ } :: _ -> true
                    | _ -> false
                  else scan (depth - 1) r
              | { tok = NEWLINE; _ } :: _ | { tok = EOF; _ } :: _ | [] -> false
              | _ :: r -> scan depth r
            in
            scan 1 rest
        | _ -> false
      in
      if starts_assignment () then begin
        let lhs_e = parse_expr_prec st in
        let lhs = lhs_of_expr l.loc lhs_e in
        expect st EQUALS;
        let rhs = parse_expr_prec st in
        push_stmt b (Ast.Assign { label; lhs; rhs });
        Option.iter (close_labeled b) label;
        finish_line ()
      end
      else begin
        ignore (next st);
        match kw with
        | "PROGRAM" ->
            (match (next st).tok with
            | IDENT n -> b.name <- n
            | t -> Diag.error l.loc "expected a program name, found %a" pp_token t);
            finish_line ()
        | "SUBROUTINE" ->
            (* Close the current unit and start a new one; the caller
               (parse_units) detects the transition via on_subroutine. *)
            Diag.error l.loc "SUBROUTINE must start a new unit"
        | "RETURN" -> finish_line ()
        | "CALL" ->
            (* Encoded as an assignment to the marker scalar %CALL so the
               statement type stays closed; the Inline pass consumes it. *)
            (match (next st).tok with
            | IDENT callee ->
                let args =
                  match (peek st).tok with
                  | LPAREN -> (
                      ignore (next st);
                      match (peek st).tok with
                      | RPAREN ->
                          ignore (next st);
                          []
                      | _ ->
                          let args = ref [ parse_expr_prec st ] in
                          let rec more () =
                            match (peek st).tok with
                            | COMMA ->
                                ignore (next st);
                                args := parse_expr_prec st :: !args;
                                more ()
                            | _ -> ()
                          in
                          more ();
                          expect st RPAREN;
                          List.rev !args)
                  | _ -> []
                in
                push_stmt b
                  (Ast.Assign
                     {
                       label;
                       lhs = { Ast.name = "%CALL"; subs = [] };
                       rhs = Expr.Call (callee, args);
                     });
                Option.iter (close_labeled b) label
            | t -> Diag.error l.loc "expected a subroutine name, found %a" pp_token t);
            finish_line ()
        | "REAL" ->
            b.decls <- List.rev_append (parse_decl_items st Ast.Real) b.decls;
            finish_line ()
        | "INTEGER" ->
            b.decls <- List.rev_append (parse_decl_items st Ast.Integer) b.decls;
            finish_line ()
        | "DIMENSION" ->
            b.decls <- List.rev_append (parse_decl_items st Ast.Real) b.decls;
            finish_line ()
        | "EQUIVALENCE" ->
            b.decls <- Ast.Equivalence (parse_equivalence st) :: b.decls;
            finish_line ()
        | "COMMON" ->
            b.decls <- parse_common st :: b.decls;
            finish_line ()
        | "PARAMETER" ->
            b.decls <- parse_parameter st :: b.decls;
            finish_line ()
        | "DO" ->
            parse_do st b label;
            finish_line ()
        | "ENDDO" ->
            (match b.stack with
            | { f_label = None; _ } :: _ -> close_frame b
            | _ -> Diag.error l.loc "ENDDO without a matching DO");
            finish_line ()
        | "END" -> (
            match (peek st).tok with
            | IDENT "DO" ->
                ignore (next st);
                (match b.stack with
                | { f_label = None; _ } :: _ -> close_frame b
                | _ -> Diag.error l.loc "END DO without a matching DO");
                finish_line ()
            | _ -> finish_line () (* END of program: ignored *))
        | "CONTINUE" ->
            (match label with
            | Some lab ->
                push_stmt b (Ast.Continue lab);
                close_labeled b lab
            | None -> push_stmt b (Ast.Continue 0));
            finish_line ()
        | _ ->
            Diag.error l.loc "unrecognized statement keyword %s" kw
      end)
  | t -> Diag.error l.loc "unexpected %a at start of statement" pp_token t);
  (* Consume the line terminator. *)
  match (peek st).tok with
  | NEWLINE -> ignore (next st)
  | EOF -> ()
  | _ -> assert false

let fresh_builder name =
  { decls = []; top = []; stack = []; name; params = [] }

let finish_builder b =
  (match b.stack with
  | [] -> ()
  | f :: _ ->
      Diag.error { Diag.line = 0; col = 0 } "unterminated DO loop over %s"
        f.f_var);
  ( { Ast.p_name = b.name; decls = List.rev b.decls; body = List.rev b.top },
    b.params )

(* Peek whether the next (non-empty) statement starts a SUBROUTINE;
   if so consume its header and return (name, params). *)
let try_subroutine_header st =
  match st.toks with
  | { tok = IDENT "SUBROUTINE"; _ } :: _ -> (
      ignore (next st);
      match (next st).tok with
      | IDENT name ->
          let params = ref [] in
          (match (peek st).tok with
          | LPAREN ->
              ignore (next st);
              let rec go () =
                match (next st).tok with
                | IDENT p -> (
                    params := p :: !params;
                    match (peek st).tok with
                    | COMMA ->
                        ignore (next st);
                        go ()
                    | _ -> expect st RPAREN)
                | RPAREN -> ()
                | _ ->
                    Diag.error (peek st).loc "expected a dummy argument"
              in
              go ()
          | _ -> ());
          (match (peek st).tok with
          | NEWLINE -> ignore (next st)
          | EOF -> ()
          | _ -> Diag.error (peek st).loc "junk after SUBROUTINE header");
          Some (name, List.rev !params)
      | _ -> Diag.error (peek st).loc "expected a subroutine name")
  | _ -> None

let parse_units src =
  let st = { toks = F77_lexer.tokenize src; last = { Diag.line = 1; col = 1 } } in
  let units = ref [] in
  let current = ref (fresh_builder "FRAGMENT") in
  let rec loop () =
    skip_newlines st;
    match (peek st).tok with
    | EOF -> ()
    | _ -> (
        match try_subroutine_header st with
        | Some (name, params) ->
            units := finish_builder !current :: !units;
            let b = fresh_builder name in
            b.params <- params;
            current := b;
            loop ()
        | None ->
            parse_statement st !current;
            loop ())
  in
  loop ();
  units := finish_builder !current :: !units;
  List.rev !units

let parse src =
  match parse_units src with
  | (main, _) :: _ -> main
  | [] -> { Ast.p_name = "FRAGMENT"; decls = []; body = [] }

let parse_expr src =
  let st = { toks = F77_lexer.tokenize src; last = { Diag.line = 1; col = 1 } } in
  parse_expr_prec st
