(** Recursive-descent parser for the mini-C subset.

    Handles declarations ([float d[100];], [double A[N][M];],
    [float *i, *j;], [int i;]), [for] loops whose condition is a single
    linear comparison and whose step is [v++], [v--], [v+=k] or [v-=k],
    assignments (plain, [+=] and [-=], the compound forms desugared)
    through [*e] and multi-dimensional [e1[e2]...[ek]] lvalues, and
    arithmetic expressions with calls and real literals.  Braces are
    optional around single-statement bodies.

    Polybench-style files load without hand-editing: [/* */] block
    comments and [//] line comments are skipped (an unterminated block
    comment is a located parse error; a line comment may end at EOF),
    [#define NAME <int>] is a one-pass constant substitution mirroring
    the F77 PARAMETER handling (define-before-use, no redefinition, the
    value an optionally parenthesized/negated integer or prior macro),
    other [#] directives are skipped to end of line, and a function
    wrapper [static? void|int|float|double name(...) { ... }] is
    transparent — its body is inlined into the program. *)

val parse : string -> C_ast.program
(** Raises {!Diag.Parse_error} on malformed input. *)

val parse_expr : string -> C_ast.expr
