open C_ast

type token =
  | TINT of int
  | TID of string
  | TLP | TRP | TLB | TRB | TLC | TRC
  | TSEMI | TCOMMA | TSTAR | TPLUS | TMINUS | TSLASH
  | TASSIGN | TLT | TLE | TGT | TGE
  | TINCR | TDECR | TPLUSEQ | TMINUSEQ
  | TEOF

let tokenize src =
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let emit t = toks := (t, { Diag.line = !line; col = !col }) :: !toks in
  let is_digit c = c >= '0' && c <= '9' in
  let is_alpha c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    let peek1 = if !i + 1 < n then Some src.[!i + 1] else None in
    if c = '\n' then begin incr i; incr line; col := 1 end
    else if c = ' ' || c = '\t' || c = '\r' then begin incr i; incr col end
    else if c = '/' && peek1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      emit (TINT (int_of_string (String.sub src start (!i - start))));
      col := !col + (!i - start)
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && (is_alpha src.[!i] || is_digit src.[!i]) do incr i done;
      emit (TID (String.sub src start (!i - start)));
      col := !col + (!i - start)
    end
    else begin
      let two t = emit t; i := !i + 2; col := !col + 2 in
      let one t = emit t; incr i; incr col in
      match (c, peek1) with
      | '+', Some '+' -> two TINCR
      | '-', Some '-' -> two TDECR
      | '+', Some '=' -> two TPLUSEQ
      | '-', Some '=' -> two TMINUSEQ
      | '<', Some '=' -> two TLE
      | '>', Some '=' -> two TGE
      | '(', _ -> one TLP
      | ')', _ -> one TRP
      | '[', _ -> one TLB
      | ']', _ -> one TRB
      | '{', _ -> one TLC
      | '}', _ -> one TRC
      | ';', _ -> one TSEMI
      | ',', _ -> one TCOMMA
      | '*', _ -> one TSTAR
      | '+', _ -> one TPLUS
      | '-', _ -> one TMINUS
      | '/', _ -> one TSLASH
      | '=', _ -> one TASSIGN
      | '<', _ -> one TLT
      | '>', _ -> one TGT
      | _ ->
          Diag.error { Diag.line = !line; col = !col }
            "unexpected character %C" c
    end
  done;
  emit TEOF;
  List.rev !toks

type state = {
  mutable toks : (token * Diag.loc) list;
  mutable last : Diag.loc;
}

(* The lexer always terminates the stream with TEOF, so an empty token
   list means something consumed past it — malformed input, never a
   crash: report it at the last location seen. *)
let peek st =
  match st.toks with
  | [] -> Diag.error st.last "unexpected end of input"
  | t :: _ -> t

let peek2 st = match st.toks with _ :: t :: _ -> Some (fst t) | _ -> None

let next st =
  let t = peek st in
  st.last <- snd t;
  (match st.toks with [] -> () | _ :: r -> st.toks <- r);
  t

let expect st tok what =
  let t, loc = next st in
  if t <> tok then Diag.error loc "expected %s" what

(* --- expressions -------------------------------------------------------- *)

let rec parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    match fst (peek st) with
    | TPLUS ->
        ignore (next st);
        lhs := EBin (`Add, !lhs, parse_multiplicative st);
        loop ()
    | TMINUS ->
        ignore (next st);
        lhs := EBin (`Sub, !lhs, parse_multiplicative st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    match fst (peek st) with
    | TSTAR ->
        ignore (next st);
        lhs := EBin (`Mul, !lhs, parse_unary st);
        loop ()
    | TSLASH ->
        ignore (next st);
        lhs := EBin (`Div, !lhs, parse_unary st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary st =
  match fst (peek st) with
  | TMINUS ->
      ignore (next st);
      ENeg (parse_unary st)
  | TSTAR ->
      ignore (next st);
      EDeref (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let rec loop () =
    match fst (peek st) with
    | TLB ->
        ignore (next st);
        let idx = parse_additive st in
        expect st TRB "']'";
        e := EIndex (!e, idx);
        loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_primary st =
  let t, loc = next st in
  match t with
  | TINT k -> EInt k
  | TLP ->
      let e = parse_additive st in
      expect st TRP "')'";
      e
  | TID name -> (
      match fst (peek st) with
      | TLP ->
          ignore (next st);
          let args = ref [] in
          (if fst (peek st) <> TRP then
             let rec loop () =
               args := parse_additive st :: !args;
               if fst (peek st) = TCOMMA then begin
                 ignore (next st);
                 loop ()
               end
             in
             loop ());
          expect st TRP "')'";
          ECall (name, List.rev !args)
      | _ -> EVar name)
  | _ -> Diag.error loc "expected an expression"

(* --- statements --------------------------------------------------------- *)

let parse_step st =
  let t, loc = next st in
  match t with
  | TID v -> (
      match fst (next st) with
      | TINCR -> { s_var = v; s_delta = 1 }
      | TDECR -> { s_var = v; s_delta = -1 }
      | TPLUSEQ -> (
          match fst (next st) with
          | TINT k -> { s_var = v; s_delta = k }
          | _ -> Diag.error loc "expected a constant step")
      | TMINUSEQ -> (
          match fst (next st) with
          | TINT k -> { s_var = v; s_delta = -k }
          | _ -> Diag.error loc "expected a constant step")
      | _ -> Diag.error loc "expected ++, --, += or -=")
  | _ -> Diag.error loc "expected the loop variable in the step"

let rec parse_stmt st =
  let t, loc = peek st in
  match t with
  | TID ("float" | "int") ->
      let bt = if t = TID "float" then Float else Int in
      ignore (next st);
      let ds = ref [] in
      let rec item () =
        let ptr =
          if fst (peek st) = TSTAR then begin
            ignore (next st);
            true
          end
          else false
        in
        (match next st with
        | TID name, _ ->
            let size =
              if fst (peek st) = TLB then begin
                ignore (next st);
                match next st with
                | TINT k, _ ->
                    expect st TRB "']'";
                    Some k
                | _, loc -> Diag.error loc "expected a constant array size"
              end
              else None
            in
            ds := { d_ptr = ptr; d_name = name; d_size = size } :: !ds
        | _, loc -> Diag.error loc "expected a declarator");
        if fst (peek st) = TCOMMA then begin
          ignore (next st);
          item ()
        end
      in
      item ();
      expect st TSEMI "';'";
      Decl (bt, List.rev !ds)
  | TID "for" ->
      ignore (next st);
      expect st TLP "'('";
      let init =
        if fst (peek st) = TSEMI then begin
          ignore (next st);
          None
        end
        else
          match next st with
          | TID v, _ ->
              expect st TASSIGN "'='";
              let e = parse_additive st in
              expect st TSEMI "';'";
              Some (v, e)
          | _, loc -> Diag.error loc "expected the loop initialization"
      in
      let lhs = parse_additive st in
      let op =
        match fst (next st) with
        | TLT -> `Lt
        | TLE -> `Le
        | TGT -> `Gt
        | TGE -> `Ge
        | _ -> Diag.error loc "expected a comparison in the loop condition"
      in
      let rhs = parse_additive st in
      expect st TSEMI "';'";
      let step = parse_step st in
      expect st TRP "')'";
      let body =
        if fst (peek st) = TLC then begin
          ignore (next st);
          let stmts = ref [] in
          while fst (peek st) <> TRC do
            stmts := parse_stmt st :: !stmts
          done;
          ignore (next st);
          List.rev !stmts
        end
        else [ parse_stmt st ]
      in
      For { init; cond = { lhs; op; rhs }; step; body }
  | _ ->
      let lv = parse_additive st in
      expect st TASSIGN "'='";
      let rv = parse_additive st in
      expect st TSEMI "';'";
      Assign (lv, rv)

let parse src =
  let st = { toks = tokenize src; last = { Diag.line = 1; col = 1 } } in
  let stmts = ref [] in
  while fst (peek st) <> TEOF do
    stmts := parse_stmt st :: !stmts
  done;
  ignore (peek2 st);
  List.rev !stmts

let parse_expr src =
  let st = { toks = tokenize src; last = { Diag.line = 1; col = 1 } } in
  parse_additive st
