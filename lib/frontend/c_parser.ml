open C_ast

type token =
  | TINT of int
  | TFLOAT of string
  | TID of string
  | TLP | TRP | TLB | TRB | TLC | TRC
  | TSEMI | TCOMMA | TSTAR | TPLUS | TMINUS | TSLASH
  | TASSIGN | TLT | TLE | TGT | TGE
  | TINCR | TDECR | TPLUSEQ | TMINUSEQ
  | TEOF

(* The tokenizer performs a one-pass constant substitution for
   [#define NAME <int>] directives, mirroring the F77 PARAMETER
   handling: any later identifier occurrence of NAME is emitted as a
   TINT.  Macros must be defined before use and may not be redefined.
   All other directives (#include, #pragma, ...) are skipped to end of
   line. *)
let tokenize src =
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let macros : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let here () = { Diag.line = !line; col = !col } in
  let push t loc = toks := (t, loc) :: !toks in
  let is_digit c = c >= '0' && c <= '9' in
  let is_alpha c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  (* Advance over [k] non-newline characters. *)
  let adv k = i := !i + k; col := !col + k in
  let newline () = incr i; incr line; col := 1 in
  let skip_hspace () =
    while !i < n && (src.[!i] = ' ' || src.[!i] = '\t' || src.[!i] = '\r') do
      adv 1
    done
  in
  let skip_to_eol () = while !i < n && src.[!i] <> '\n' do adv 1 done in
  let read_word () =
    let start = !i in
    while !i < n && (is_alpha src.[!i] || is_digit src.[!i]) do adv 1 done;
    String.sub src start (!i - start)
  in
  (* Typed failure on oversized literals: [int_of_string] raising a bare
     Failure would escape the Diag.Parse_error taxonomy. *)
  let int_value loc text =
    match int_of_string_opt text with
    | Some k -> k
    | None ->
        Diag.error loc "integer literal %s does not fit in a native int" text
  in
  let read_int () =
    let loc = here () in
    let text = read_word () in
    (loc, int_value loc text)
  in
  let lex_number () =
    let loc = here () in
    let start = !i in
    while !i < n && is_digit src.[!i] do adv 1 done;
    let has_frac = !i < n && src.[!i] = '.' in
    if has_frac then begin
      adv 1;
      while !i < n && is_digit src.[!i] do adv 1 done
    end;
    let exp_at =
      (* Exponent only counts with at least one digit after the
         optional sign; otherwise 'e' starts an identifier. *)
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then
        let j = if !i + 1 < n && (src.[!i + 1] = '+' || src.[!i + 1] = '-')
                then !i + 2 else !i + 1 in
        if j < n && is_digit src.[j] then Some j else None
      else None
    in
    (match exp_at with
    | Some j ->
        adv (j - !i);
        while !i < n && is_digit src.[!i] do adv 1 done
    | None -> ());
    let text = String.sub src start (!i - start) in
    if has_frac || exp_at <> None then push (TFLOAT text) loc
    else push (TINT (int_value loc text)) loc
  in
  let lex_directive () =
    adv 1 (* '#' *);
    skip_hspace ();
    let word = read_word () in
    if String.equal word "define" then begin
      skip_hspace ();
      let nloc = here () in
      let name = read_word () in
      if String.equal name "" then
        Diag.error nloc "expected a macro name after #define";
      if Hashtbl.mem macros name then
        Diag.error nloc "macro %s redefined" name;
      skip_hspace ();
      let vloc = here () in
      let parens = !i < n && src.[!i] = '(' in
      if parens then begin adv 1; skip_hspace () end;
      let neg = !i < n && src.[!i] = '-' in
      if neg then begin adv 1; skip_hspace () end;
      let v =
        if !i < n && is_digit src.[!i] then snd (read_int ())
        else begin
          let mloc = here () in
          let id = read_word () in
          if String.equal id "" then
            Diag.error vloc "expected an integer constant in #define %s" name;
          match Hashtbl.find_opt macros id with
          | Some v -> v
          | None -> Diag.error mloc "%s is not a defined macro" id
        end
      in
      let v = if neg then -v else v in
      if parens then begin
        skip_hspace ();
        if !i < n && src.[!i] = ')' then adv 1
        else Diag.error (here ()) "expected ')' in #define %s" name
      end;
      Hashtbl.add macros name v;
      skip_to_eol ()
    end
    else skip_to_eol ()
  in
  let lex_block_comment () =
    let opening = here () in
    adv 2 (* "/*" *);
    let closed = ref false in
    while not !closed do
      if !i + 1 >= n then
        (* Unterminated comment: a located error, not silent
           truncation of the rest of the file. *)
        Diag.error opening "unterminated block comment (missing '*/')"
      else if src.[!i] = '*' && src.[!i + 1] = '/' then begin
        adv 2;
        closed := true
      end
      else if src.[!i] = '\n' then newline ()
      else adv 1
    done
  in
  while !i < n do
    let c = src.[!i] in
    let peek1 = if !i + 1 < n then Some src.[!i + 1] else None in
    if c = '\n' then newline ()
    else if c = ' ' || c = '\t' || c = '\r' then adv 1
    else if c = '/' && peek1 = Some '/' then
      (* A line comment runs to the newline; reaching EOF without one
         is a clean end of input. *)
      skip_to_eol ()
    else if c = '/' && peek1 = Some '*' then lex_block_comment ()
    else if c = '#' then lex_directive ()
    else if is_digit c then lex_number ()
    else if is_alpha c then begin
      let loc = here () in
      let text = read_word () in
      match Hashtbl.find_opt macros text with
      | Some v -> push (TINT v) loc
      | None -> push (TID text) loc
    end
    else begin
      let loc = here () in
      let two t = push t loc; adv 2 in
      let one t = push t loc; adv 1 in
      match (c, peek1) with
      | '+', Some '+' -> two TINCR
      | '-', Some '-' -> two TDECR
      | '+', Some '=' -> two TPLUSEQ
      | '-', Some '=' -> two TMINUSEQ
      | '<', Some '=' -> two TLE
      | '>', Some '=' -> two TGE
      | '(', _ -> one TLP
      | ')', _ -> one TRP
      | '[', _ -> one TLB
      | ']', _ -> one TRB
      | '{', _ -> one TLC
      | '}', _ -> one TRC
      | ';', _ -> one TSEMI
      | ',', _ -> one TCOMMA
      | '*', _ -> one TSTAR
      | '+', _ -> one TPLUS
      | '-', _ -> one TMINUS
      | '/', _ -> one TSLASH
      | '=', _ -> one TASSIGN
      | '<', _ -> one TLT
      | '>', _ -> one TGT
      | _ -> Diag.error loc "unexpected character %C" c
    end
  done;
  push TEOF (here ());
  List.rev !toks

type state = {
  mutable toks : (token * Diag.loc) list;
  mutable last : Diag.loc;
}

(* The lexer always terminates the stream with TEOF, so an empty token
   list means something consumed past it — malformed input, never a
   crash: report it at the last location seen. *)
let peek st =
  match st.toks with
  | [] -> Diag.error st.last "unexpected end of input"
  | t :: _ -> t

let next st =
  let t = peek st in
  st.last <- snd t;
  (match st.toks with [] -> () | _ :: r -> st.toks <- r);
  t

let expect st tok what =
  let t, loc = next st in
  if t <> tok then Diag.error loc "expected %s" what

(* --- expressions -------------------------------------------------------- *)

let rec parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    match fst (peek st) with
    | TPLUS ->
        ignore (next st);
        lhs := EBin (`Add, !lhs, parse_multiplicative st);
        loop ()
    | TMINUS ->
        ignore (next st);
        lhs := EBin (`Sub, !lhs, parse_multiplicative st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    match fst (peek st) with
    | TSTAR ->
        ignore (next st);
        lhs := EBin (`Mul, !lhs, parse_unary st);
        loop ()
    | TSLASH ->
        ignore (next st);
        lhs := EBin (`Div, !lhs, parse_unary st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary st =
  match fst (peek st) with
  | TMINUS ->
      ignore (next st);
      ENeg (parse_unary st)
  | TSTAR ->
      ignore (next st);
      EDeref (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let rec loop () =
    match fst (peek st) with
    | TLB ->
        ignore (next st);
        let idx = parse_additive st in
        expect st TRB "']'";
        e := EIndex (!e, idx);
        loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_primary st =
  let t, loc = next st in
  match t with
  | TINT k -> EInt k
  | TFLOAT s -> EFloat s
  | TLP ->
      let e = parse_additive st in
      expect st TRP "')'";
      e
  | TID name -> (
      match fst (peek st) with
      | TLP ->
          ignore (next st);
          let args = ref [] in
          (if fst (peek st) <> TRP then
             let rec loop () =
               args := parse_additive st :: !args;
               if fst (peek st) = TCOMMA then begin
                 ignore (next st);
                 loop ()
               end
             in
             loop ());
          expect st TRP "')'";
          ECall (name, List.rev !args)
      | _ -> EVar name)
  | _ -> Diag.error loc "expected an expression"

(* --- statements --------------------------------------------------------- *)

(* Every diagnostic below points at the offending token's own location,
   taken from [next st] — never at the statement-start loc (which an
   earlier version shadowed into all the step/condition errors). *)
let parse_step st =
  let t, loc = next st in
  match t with
  | TID v -> (
      let t2, loc2 = next st in
      match t2 with
      | TINCR -> { s_var = v; s_delta = 1 }
      | TDECR -> { s_var = v; s_delta = -1 }
      | TPLUSEQ -> (
          match next st with
          | TINT k, _ -> { s_var = v; s_delta = k }
          | _, loc3 -> Diag.error loc3 "expected a constant step")
      | TMINUSEQ -> (
          match next st with
          | TINT k, _ -> { s_var = v; s_delta = -k }
          | _, loc3 -> Diag.error loc3 "expected a constant step")
      | _ -> Diag.error loc2 "expected ++, --, += or -=")
  | _ -> Diag.error loc "expected the loop variable in the step"

let rec parse_stmt st =
  let t, _loc = peek st in
  match t with
  | TID ("float" | "int" | "double") ->
      let bt = if t = TID "int" then Int else Float in
      ignore (next st);
      let ds = ref [] in
      let rec item () =
        let ptr =
          if fst (peek st) = TSTAR then begin
            ignore (next st);
            true
          end
          else false
        in
        (match next st with
        | TID name, _ ->
            let dims = ref [] in
            while fst (peek st) = TLB do
              ignore (next st);
              (match next st with
              | TINT k, _ -> dims := k :: !dims
              | _, loc -> Diag.error loc "expected a constant array size");
              expect st TRB "']'"
            done;
            ds := { d_ptr = ptr; d_name = name; d_dims = List.rev !dims }
                  :: !ds
        | _, loc -> Diag.error loc "expected a declarator");
        if fst (peek st) = TCOMMA then begin
          ignore (next st);
          item ()
        end
      in
      item ();
      expect st TSEMI "';'";
      Decl (bt, List.rev !ds)
  | TID "for" ->
      ignore (next st);
      expect st TLP "'('";
      let init =
        if fst (peek st) = TSEMI then begin
          ignore (next st);
          None
        end
        else
          match next st with
          | TID v, _ ->
              expect st TASSIGN "'='";
              let e = parse_additive st in
              expect st TSEMI "';'";
              Some (v, e)
          | _, loc -> Diag.error loc "expected the loop initialization"
      in
      let lhs = parse_additive st in
      let opt, oloc = next st in
      let op =
        match opt with
        | TLT -> `Lt
        | TLE -> `Le
        | TGT -> `Gt
        | TGE -> `Ge
        | _ -> Diag.error oloc "expected a comparison in the loop condition"
      in
      let rhs = parse_additive st in
      expect st TSEMI "';'";
      let step = parse_step st in
      expect st TRP "')'";
      let body =
        if fst (peek st) = TLC then begin
          ignore (next st);
          let stmts = ref [] in
          while fst (peek st) <> TRC do
            stmts := parse_stmt st :: !stmts
          done;
          ignore (next st);
          List.rev !stmts
        end
        else [ parse_stmt st ]
      in
      For { init; cond = { lhs; op; rhs }; step; body }
  | _ ->
      let lv = parse_additive st in
      let t, loc = next st in
      let rv =
        match t with
        | TASSIGN -> parse_additive st
        | TPLUSEQ -> EBin (`Add, lv, parse_additive st)
        | TMINUSEQ -> EBin (`Sub, lv, parse_additive st)
        | _ -> Diag.error loc "expected '='"
      in
      expect st TSEMI "';'";
      Assign (lv, rv)

(* Skip a parameter list, tracking nesting; [depth] is the number of
   open parentheses already consumed. *)
let rec skip_params st depth =
  let t, loc = next st in
  match t with
  | TLP -> skip_params st (depth + 1)
  | TRP -> if depth > 1 then skip_params st (depth - 1)
  | TEOF -> Diag.error loc "unterminated parameter list"
  | _ -> skip_params st depth

let parse src =
  let st = { toks = tokenize src; last = { Diag.line = 1; col = 1 } } in
  let stmts = ref [] in
  let rec top () =
    match st.toks with
    | [] | (TEOF, _) :: _ -> ()
    | (TID ("static" | "inline"), _) :: _ ->
        ignore (next st);
        top ()
    | (TID ("void" | "int" | "float" | "double"), _)
      :: (TID _, _) :: (TLP, _) :: _ ->
        (* A [kernel(...) { ... }] function wrapper is transparent: its
           body is inlined into the program so raw polybench-style
           files load without hand-editing. *)
        ignore (next st);
        ignore (next st);
        ignore (next st);
        skip_params st 1;
        expect st TLC "'{'";
        while fst (peek st) <> TRC do
          stmts := parse_stmt st :: !stmts
        done;
        ignore (next st);
        top ()
    | _ ->
        stmts := parse_stmt st :: !stmts;
        top ()
  in
  top ();
  List.rev !stmts

let parse_expr src =
  let st = { toks = tokenize src; last = { Diag.line = 1; col = 1 } } in
  parse_additive st
