(** Prometheus text exposition writer (format 0.0.4).

    Deterministic by construction: families in metric-name order, one
    [# HELP]/[# TYPE] header per family, histogram samples rendered as
    cumulative [_bucket]/[_sum]/[_count] lines with an explicit
    [+Inf] bucket, and every histogram additionally exposed as derived
    [<name>_p50] / [<name>_p99] gauge families.  The same sample list
    always renders to byte-identical text. *)

val sanitize_name : string -> string
(** Clamp to the metric-name charset [[a-zA-Z_:][a-zA-Z0-9_:]*]
    (invalid characters become ['_']). *)

val escape_label_value : string -> string
(** Escape backslash, double-quote and newline for a label value
    body. *)

val fmt_float : float -> string
(** Deterministic float rendering used for gauge values. *)

val write : Buffer.t -> Registry.sample list -> unit

val to_string : Registry.sample list -> string
