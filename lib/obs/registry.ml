(* The metric registry: one process-wide table of named collectors.

   A collector is a thunk producing a flat list of samples at scrape
   time — the registry never stores live metric state, so the hot
   paths that bump counters (engine stats, pool, serve) keep their
   own representations (Atomic.t, domain-local shards) and pay
   nothing for being scrapeable.  Everything shared here sits behind
   one mutex touched only at register/collect/reset time, never per
   observation.

   Replace semantics: registering under an existing name replaces the
   old collector.  Sequential servers in one process (tests, bench)
   each register their live metrics under the same name and the
   latest wins, which is the scrape a caller wants. *)

type hist_snapshot = {
  h_count : int;
  h_sum_ns : int64;
  h_max_ns : int64;
  h_p50_ns : float;
  h_p99_ns : float;
  h_buckets : (int64 * int) list;
      (* (upper bound ns, cumulative count), ascending; the +Inf
         bucket is implicit (= h_count). *)
}

type value = Counter of int | Gauge of float | Hist of hist_snapshot

type sample = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_value : value;
}

let sample ?(help = "") ?(labels = []) name value =
  { s_name = name; s_help = help; s_labels = labels; s_value = value }

type collector = {
  c_collect : unit -> sample list;
  c_reset : (unit -> unit) option;
}

let mu = Mutex.create ()
let collectors : (string, collector) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register ~name ?reset collect =
  locked (fun () ->
      Hashtbl.replace collectors name { c_collect = collect; c_reset = reset })

let unregister name = locked (fun () -> Hashtbl.remove collectors name)

(* Snapshot the collector list under the lock, run the thunks outside
   it: a collector that consults another subsystem (or registers a
   late collector) must not deadlock the registry. *)
let snapshot_collectors () =
  locked (fun () ->
      Hashtbl.fold (fun n c acc -> (n, c) :: acc) collectors [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let compare_sample a b =
  match compare a.s_name b.s_name with
  | 0 -> compare a.s_labels b.s_labels
  | c -> c

let collect () =
  snapshot_collectors ()
  |> List.concat_map (fun (_, c) -> c.c_collect ())
  |> List.stable_sort compare_sample

let reset_all () =
  snapshot_collectors ()
  |> List.iter (fun (_, c) -> Option.iter (fun f -> f ()) c.c_reset)
