(* Versioned JSON snapshot of a sample list.

   This is the machine side of the exposition plane: the `metrics`
   verb's "json" format, the --metrics-dump NDJSON rows, and the
   unified --stats-json "obs" block all carry this shape.  The format
   is versioned so a consumer can refuse a shape it does not know —
   bump `version` on any structural change. *)

open Registry

let version = 1

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON numbers must stay finite; a pathological gauge (NaN/inf)
   degrades to 0 rather than corrupting the stream. *)
let fmt_float f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let add_labels b labels =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
    labels;
  Buffer.add_char b '}'

let add_sample b s =
  Buffer.add_string b (Printf.sprintf "{\"name\":\"%s\"," (escape s.s_name));
  Buffer.add_string b "\"labels\":";
  add_labels b s.s_labels;
  Buffer.add_char b ',';
  (match s.s_value with
  | Counter n ->
      Buffer.add_string b (Printf.sprintf "\"kind\":\"counter\",\"value\":%d" n)
  | Gauge f ->
      Buffer.add_string b
        (Printf.sprintf "\"kind\":\"gauge\",\"value\":%s" (fmt_float f))
  | Hist h ->
      Buffer.add_string b
        (Printf.sprintf
           "\"kind\":\"histogram\",\"count\":%d,\"sum_ns\":%Ld,\
            \"max_ns\":%Ld,\"p50_ns\":%s,\"p99_ns\":%s,\"buckets\":["
           h.h_count h.h_sum_ns h.h_max_ns (fmt_float h.h_p50_ns)
           (fmt_float h.h_p99_ns));
      List.iteri
        (fun i (le, cum) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "[%Ld,%d]" le cum))
        h.h_buckets;
      Buffer.add_char b ']');
  Buffer.add_char b '}'

let write b samples =
  Buffer.add_string b (Printf.sprintf "{\"version\":%d,\"metrics\":[" version);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      add_sample b s)
    samples;
  Buffer.add_string b "]}"

let to_json samples =
  let b = Buffer.create 4096 in
  write b samples;
  Buffer.contents b
