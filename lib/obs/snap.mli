(** Versioned JSON snapshot codec for metric samples.

    The machine-readable twin of {!Prom}: the [metrics] verb's JSON
    format, [--metrics-dump] NDJSON rows, and the unified
    [--stats-json] "obs" block all carry this shape.

    Shape (version 1):
    {v
    {"version":1,"metrics":[
      {"name":N,"labels":{..},"kind":"counter","value":I},
      {"name":N,"labels":{..},"kind":"gauge","value":F},
      {"name":N,"labels":{..},"kind":"histogram","count":I,
       "sum_ns":I,"max_ns":I,"p50_ns":F,"p99_ns":F,
       "buckets":[[le_ns,cumulative],..]}]}
    v}

    Consumers must check [version] and refuse shapes they do not
    know; any structural change bumps it. *)

val version : int

val write : Buffer.t -> Registry.sample list -> unit

val to_json : Registry.sample list -> string
(** One line, no trailing newline — ready for NDJSON appending. *)
