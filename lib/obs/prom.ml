(* Prometheus text exposition (format 0.0.4).

   Determinism is the contract: samples arrive sorted from
   Registry.collect, families are emitted in name order, labels in
   the order the collector rendered them (collectors render sorted),
   and float formatting is value-deterministic — so the same metric
   state produces byte-identical text at any --jobs N. *)

open Registry

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Label names drop the
   colon.  Anything else becomes '_'. *)
let sanitize_name s =
  if s = "" then "_"
  else
    String.mapi
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
        | '0' .. '9' when i > 0 -> c
        | _ -> '_')
      s

let sanitize_label_name s =
  if s = "" then "_"
  else
    String.mapi
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' -> c
        | '0' .. '9' when i > 0 -> c
        | _ -> '_')
      s

(* Label values take any UTF-8; backslash, double-quote and newline
   are escaped per the exposition format. *)
let escape_label_value s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* HELP text escapes backslash and newline only (no quotes there). *)
let escape_help s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Integral floats print without an exponent or trailing zeros;
   everything else gets %.9g.  Deterministic for a given value. *)
let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let add_labels b labels =
  match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (sanitize_label_name k);
          Buffer.add_string b "=\"";
          Buffer.add_string b (escape_label_value v);
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}'

let add_line b name labels value =
  Buffer.add_string b name;
  add_labels b labels;
  Buffer.add_char b ' ';
  Buffer.add_string b value;
  Buffer.add_char b '\n'

let type_of_value = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

(* Each histogram sample also yields derived <name>_p50 / <name>_p99
   gauge samples — the at-a-glance latency numbers the ISSUE promises
   per client and verb, scrapeable without a quantile query layer. *)
let expand samples =
  List.concat_map
    (fun s ->
      match s.s_value with
      | Hist h ->
          [
            s;
            {
              s with
              s_name = s.s_name ^ "_p50";
              s_help = "p50 of " ^ s.s_name;
              s_value = Gauge h.h_p50_ns;
            };
            {
              s with
              s_name = s.s_name ^ "_p99";
              s_help = "p99 of " ^ s.s_name;
              s_value = Gauge h.h_p99_ns;
            };
          ]
      | _ -> [ s ])
    samples

let write_sample b s =
  let name = sanitize_name s.s_name in
  match s.s_value with
  | Counter n -> add_line b name s.s_labels (string_of_int n)
  | Gauge f -> add_line b name s.s_labels (fmt_float f)
  | Hist h ->
      List.iter
        (fun (le, cum) ->
          add_line b (name ^ "_bucket")
            (s.s_labels @ [ ("le", Int64.to_string le) ])
            (string_of_int cum))
        h.h_buckets;
      add_line b (name ^ "_bucket")
        (s.s_labels @ [ ("le", "+Inf") ])
        (string_of_int h.h_count);
      add_line b (name ^ "_sum") s.s_labels (Int64.to_string h.h_sum_ns);
      add_line b (name ^ "_count") s.s_labels (string_of_int h.h_count)

let write b samples =
  let samples =
    expand samples |> List.stable_sort Registry.compare_sample
  in
  let rec families = function
    | [] -> ()
    | s :: _ as rest ->
        let fam, rest =
          List.partition (fun x -> x.s_name = s.s_name) rest
        in
        let name = sanitize_name s.s_name in
        let help =
          match List.find_opt (fun x -> x.s_help <> "") fam with
          | Some x -> x.s_help
          | None -> name
        in
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" name (type_of_value s.s_value));
        List.iter (write_sample b) fam;
        families rest
  in
  families samples

let to_string samples =
  let b = Buffer.create 4096 in
  write b samples;
  Buffer.contents b
