(** Domain-safe metric registry.

    Subsystems register {e collectors} — thunks that render their live
    counters into plain {!sample}s at scrape time — under a stable
    name.  The registry holds no metric state itself: hot paths keep
    their own [Atomic.t]s and domain-local shards, and the only shared
    structure here is a mutex-guarded table touched at
    register/collect/reset time.

    Registration has replace semantics (same name → latest collector
    wins), so a process that starts servers sequentially — tests,
    bench — always scrapes the live one.

    {!collect} output is sorted by (metric name, labels): two scrapes
    of the same state render byte-identically downstream, for any
    number of domains. *)

type hist_snapshot = {
  h_count : int;
  h_sum_ns : int64;
  h_max_ns : int64;
  h_p50_ns : float;
  h_p99_ns : float;
  h_buckets : (int64 * int) list;
      (** [(upper_bound_ns, cumulative_count)], ascending by bound.
          The +Inf bucket is implicit and equals [h_count]. *)
}

type value = Counter of int | Gauge of float | Hist of hist_snapshot

type sample = {
  s_name : string;  (** metric family name, e.g. [vic_engine_queries_total] *)
  s_help : string;
  s_labels : (string * string) list;
  s_value : value;
}

val sample :
  ?help:string -> ?labels:(string * string) list -> string -> value -> sample

type collector = {
  c_collect : unit -> sample list;
  c_reset : (unit -> unit) option;
}

val register : name:string -> ?reset:(unit -> unit) -> (unit -> sample list) -> unit
(** [register ~name ?reset collect] installs (or replaces) the
    collector [name].  [reset], when given, is run by {!reset_all} —
    the hook that folds this subsystem into [Engine.reset_metrics]
    coverage. *)

val unregister : string -> unit

val compare_sample : sample -> sample -> int
(** Order by (name, labels) — the exposition order. *)

val collect : unit -> sample list
(** Every registered collector's samples, sorted by (name, labels).
    Collector thunks run outside the registry lock. *)

val reset_all : unit -> unit
(** Run every registered reset hook (collector-name order). *)
