(** Multivariate integer polynomials in canonical form.

    Symbolic delinearization (paper §4) manipulates coefficients, loop
    bounds and gcds that are loop-invariant integer expressions such as
    [N*N + N].  We represent them as polynomials over named symbols with
    integer coefficients, kept canonical (sorted monomials, no zero
    coefficients) so that structural equality is semantic equality. *)

type t
(** A canonical polynomial. *)

val zero : t
val one : t
val const : int -> t
val sym : string -> t
val monomial : int -> Monomial.t -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : int -> t -> t
val pow : t -> int -> t
val sum : t list -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool

val to_const : t -> int option
(** [to_const p] is [Some c] iff [p] is the constant polynomial [c]. *)

val is_const : t -> bool
(** [is_const p = Option.is_some (to_const p)], without allocating. *)

val const_value : t -> int
(** The value of a constant polynomial ({!is_const} must hold; raises
    [Not_found] otherwise).  Allocation-free. *)

val terms : t -> (int * Monomial.t) list
(** Terms in descending monomial order; coefficients are nonzero. *)

val degree : t -> int
(** Total degree; the zero polynomial has degree [-1] by convention. *)

val vars : t -> string list
(** Symbols occurring, sorted, without duplicates. *)

val eval : (string -> int) -> t -> int
(** Overflow-checked evaluation. *)

val subst : string -> t -> t -> t
(** [subst s q p] replaces every occurrence of symbol [s] in [p] by the
    polynomial [q]. *)

val content : t -> int
(** Gcd of the integer coefficients (nonnegative; 0 for the zero
    polynomial). *)

val monomial_content : t -> Monomial.t
(** Greatest monomial dividing every term ([unit] for zero). *)

val gcd_simple : t -> t -> t
(** [gcd_simple p q] is the "simple" gcd used by symbolic
    delinearization: the integer gcd of the contents times the gcd of the
    monomial contents.  It divides both arguments and coincides with the
    true gcd whenever either argument is a single term (the case arising
    from linearized subscripts, e.g. [gcd N (N^2) = N]).
    [gcd_simple p zero = abs_content p * monomial_content p]. *)

val divmod_by_term : t -> t -> (t * t) option
(** [divmod_by_term p g], for [g] a single nonzero term [c*m], is
    [Some (q, r)] where [p = q*g + r] and [r] collects exactly the terms
    of [p] not divisible by [c*m]; [None] when [g] is not a single term.
    This is the symbolic counterpart of [c0 mod g_k] in the algorithm
    (paper §4's [(N^2+N) mod N^2 = N]). *)

val leading_sign : t -> int
(** Sign of the leading (highest-monomial) coefficient; 0 for zero. *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. [N^2 + N - 2]; the zero polynomial prints as [0]. *)

val to_string : t -> string
