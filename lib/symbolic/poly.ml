module Mmap = Map.Make (Monomial)
open Dlz_base

type t = int Mmap.t (* monomial -> nonzero coefficient *)

let zero = Mmap.empty

let monomial c m = if c = 0 then zero else Mmap.singleton m c
let const c = monomial c Monomial.unit
let one = const 1
let sym s = monomial 1 (Monomial.of_sym s)

let add a b =
  Mmap.union
    (fun _ c1 c2 ->
      let c = Intx.add c1 c2 in
      if c = 0 then None else Some c)
    a b

let neg a = Mmap.map Intx.neg a
let sub a b = add a (neg b)

let scale k a =
  if k = 0 then zero else Mmap.map (fun c -> Intx.mul k c) a

let mul a b =
  Mmap.fold
    (fun ma ca acc ->
      Mmap.fold
        (fun mb cb acc ->
          add acc (monomial (Intx.mul ca cb) (Monomial.mul ma mb)))
        b acc)
    a zero

let rec pow p e =
  if e < 0 then invalid_arg "Poly.pow: negative exponent"
  else if e = 0 then one
  else mul p (pow p (e - 1))

let sum = List.fold_left add zero
let equal a b = Mmap.equal Int.equal a b
let compare a b = Mmap.compare Int.compare a b
let is_zero = Mmap.is_empty

let to_const p =
  if is_zero p then Some 0
  else
    match Mmap.bindings p with
    | [ (m, c) ] when Monomial.is_unit m -> Some c
    | _ -> None

(* Allocation-free variants of [to_const] for the cache-key hot path.
   Keyed lookups ([Mmap.mem]/[find]) compare monomials via
   [Smap.compare], whose tree enumerators cons on every probe, so we
   walk the structure directly instead. *)
let is_const p =
  Mmap.cardinal p <= 1 && Mmap.for_all (fun m _ -> Monomial.is_unit m) p

let const_value p =
  Mmap.fold (fun m c acc -> if Monomial.is_unit m then c else acc) p 0

let terms p =
  List.rev_map (fun (m, c) -> (c, m)) (Mmap.bindings p)

let degree p =
  Mmap.fold (fun m _ acc -> max acc (Monomial.degree m)) p (-1)

module Sset = Set.Make (String)

let vars p =
  Mmap.fold
    (fun m _ acc -> List.fold_left (fun s v -> Sset.add v s) acc (Monomial.vars m))
    p Sset.empty
  |> Sset.elements

let eval env p =
  Mmap.fold (fun m c acc -> Intx.add acc (Intx.mul c (Monomial.eval env m))) p 0

let subst s q p =
  Mmap.fold
    (fun m c acc ->
      let rest, e =
        List.fold_left
          (fun (rest, e) (v, k) ->
            if String.equal v s then (rest, k) else ((v, k) :: rest, e))
          ([], 0) (Monomial.to_list m)
      in
      let base = monomial c (Monomial.of_list rest) in
      add acc (mul base (pow q e)))
    p zero

let content p = Mmap.fold (fun _ c acc -> Numth.gcd c acc) p 0

let monomial_content p =
  match Mmap.bindings p with
  | [] -> Monomial.unit
  | (m0, _) :: rest ->
      List.fold_left (fun acc (m, _) -> Monomial.gcd acc m) m0 rest

let gcd_simple p q =
  if is_zero p && is_zero q then zero
  else
    let c = Numth.gcd (content p) (content q) in
    let m =
      if is_zero p then monomial_content q
      else if is_zero q then monomial_content p
      else Monomial.gcd (monomial_content p) (monomial_content q)
    in
    monomial c m

let divmod_by_term p g =
  match Mmap.bindings g with
  | [ (gm, gc) ] ->
      let q, r =
        Mmap.fold
          (fun m c (q, r) ->
            if Monomial.divides gm m && Numth.divides gc c then
              (add q (monomial (c / gc) (Monomial.div_exn m gm)), r)
            else (q, add r (monomial c m)))
          p (zero, zero)
      in
      Some (q, r)
  | _ -> None

let leading_sign p =
  match Mmap.max_binding_opt p with
  | None -> 0
  | Some (_, c) -> Stdlib.compare c 0

let pp ppf p =
  if is_zero p then Format.pp_print_string ppf "0"
  else
    let first = ref true in
    List.iter
      (fun (c, m) ->
        let sign_str, mag =
          if c < 0 then ("-", Intx.neg c) else ((if !first then "" else "+"), c)
        in
        if not !first then Format.pp_print_char ppf ' ';
        if sign_str <> "" then
          Format.fprintf ppf "%s%s" sign_str (if !first then "" else " ");
        if Monomial.is_unit m then Format.fprintf ppf "%d" mag
        else if mag = 1 then Monomial.pp ppf m
        else Format.fprintf ppf "%d*%a" mag Monomial.pp m;
        first := false)
      (terms p)

let to_string p = Format.asprintf "%a" pp p
