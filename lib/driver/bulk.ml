module Pool = Dlz_base.Pool
module Trace = Dlz_base.Trace
module Assume = Dlz_symbolic.Assume
module Access = Dlz_ir.Access
module Analyze = Dlz_engine.Analyze
module Engine = Dlz_engine.Engine
module Stats = Dlz_engine.Stats
module Verdict = Dlz_deptest.Verdict
module Parallel = Dlz_vec.Parallel

let rec walk acc root rel =
  let dir = if rel = "" then root else Filename.concat root rel in
  Array.fold_left
    (fun acc name ->
      let rel' = if rel = "" then name else rel ^ "/" ^ name in
      (* A dangling symlink (or an entry racing a delete) fails the
         stat; keep kernel-suffixed ones so the per-file open reports
         the io fault on its own ok:false line instead of the whole
         walk raising. *)
      let is_dir =
        try Sys.is_directory (Filename.concat root rel')
        with Sys_error _ -> false
      in
      if is_dir then walk acc root rel'
      else if
        Filename.check_suffix name ".f" || Filename.check_suffix name ".c"
      then rel' :: acc
      else acc)
    acc (Sys.readdir dir)

(* [readdir] order is unspecified; one sort at the end makes the file
   order (hence the report order) a function of the tree alone. *)
let kernels root = List.sort String.compare (walk [] root "")

type file_report = {
  fr_file : string;
  fr_error : string option;
  fr_statements : int;
  fr_accesses : int;
  fr_pairs : int;
  fr_independent : int;
  fr_dependent : int;
  fr_inapplicable : int;
  fr_deps : int;
  fr_decided_by : (string * int) list;
  fr_loops_parallel : int;
  fr_loops_serial : int;
  fr_elapsed_ns : int64;
}

let failed file error elapsed =
  {
    fr_file = file;
    fr_error = Some error;
    fr_statements = 0;
    fr_accesses = 0;
    fr_pairs = 0;
    fr_independent = 0;
    fr_dependent = 0;
    fr_inapplicable = 0;
    fr_deps = 0;
    fr_decided_by = [];
    fr_loops_parallel = 0;
    fr_loops_serial = 0;
    fr_elapsed_ns = elapsed;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let bump counts name =
  match List.assoc_opt name counts with
  | Some n -> (name, n + 1) :: List.remove_assoc name counts
  | None -> (name, 1) :: counts

let analyze_file ~mode ~cascade ~budget ~env root rel =
  let t0 = Trace.now_ns () in
  let finish r = { r with fr_elapsed_ns = Int64.sub (Trace.now_ns ()) t0 } in
  Trace.with_span ~cat:"bulk" ~args:[ ("file", rel) ] "bulk.file" @@ fun () ->
  try
    let src = read_file (Filename.concat root rel) in
    let prog =
      if Filename.check_suffix rel ".c" then
        Dlz_passes.Pointers.lower (Dlz_frontend.C_parser.parse src)
      else Dlz_passes.Inline.expand (Dlz_frontend.F77_parser.parse_units src)
    in
    let prog = Dlz_passes.Pipeline.prepare_program prog in
    let accs, env' = Access.of_program ~env prog in
    let cascade = Option.value cascade ~default:(Analyze.cascade_of_mode mode) in
    (* Serial on purpose: the pool parallelism is across files, and a
       pool must not be entered from inside one of its own workers. *)
    let results = Engine.query_all ~cascade ?budget ~env:env' accs in
    let indep, dep, inap, decided =
      List.fold_left
        (fun (i, d, n, by) ((_ : Engine.pair), (r : Dlz_engine.Strategy.result)) ->
          let by = bump by r.decided_by in
          match r.verdict with
          | Verdict.Independent -> (i + 1, d, n, by)
          | Verdict.Dependent -> (i, d + 1, n, by)
          | Verdict.Inapplicable -> (i, d, n + 1, by))
        (0, 0, 0, []) results
    in
    let deps = Analyze.deps_of_accesses ~cascade ?budget ~env:env' accs in
    let loops = Parallel.report ~cascade ?budget ~env prog in
    let par = List.length (List.filter (fun l -> l.Parallel.lr_parallel) loops) in
    let stmts =
      List.length
        (List.sort_uniq String.compare
           (List.map (fun (a : Access.t) -> a.Access.stmt_name) accs))
    in
    finish
      {
        fr_file = rel;
        fr_error = None;
        fr_statements = stmts;
        fr_accesses = List.length accs;
        fr_pairs = List.length results;
        fr_independent = indep;
        fr_dependent = dep;
        fr_inapplicable = inap;
        fr_deps = List.length deps;
        fr_decided_by = List.sort compare decided;
        fr_loops_parallel = par;
        fr_loops_serial = List.length loops - par;
        fr_elapsed_ns = 0L;
      }
  with
  | Dlz_frontend.Diag.Parse_error _ as e ->
      let msg =
        match Dlz_frontend.Diag.describe e with
        | Some m -> m
        | None -> "parse error"
      in
      finish (failed rel msg 0L)
  | Dlz_passes.Pointers.Unsupported m ->
      finish (failed rel ("pointer conversion: " ^ m) 0L)
  | Dlz_passes.Inline.Unsupported m ->
      finish (failed rel ("inlining: " ^ m) 0L)
  | Failure m -> finish (failed rel m 0L)
  | Sys_error m ->
      (* An unreadable file (permissions, vanished mid-walk) is a row,
         not a crash; the strerror text is host-stable, so the report
         stays byte-identical across [--jobs N]. *)
      finish (failed rel ("io: " ^ m) 0L)

(* {2 NDJSON} *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let file_line ~timings fr =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "{\"file\":\"%s\"" (json_escape fr.fr_file));
  (match fr.fr_error with
  | Some e ->
      Buffer.add_string b
        (Printf.sprintf ",\"ok\":false,\"error\":\"%s\"" (json_escape e))
  | None ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"ok\":true,\"statements\":%d,\"accesses\":%d,\"pairs\":%d,\
            \"verdicts\":{\"independent\":%d,\"dependent\":%d,\
            \"inapplicable\":%d},\"deps\":%d"
           fr.fr_statements fr.fr_accesses fr.fr_pairs fr.fr_independent
           fr.fr_dependent fr.fr_inapplicable fr.fr_deps);
      Buffer.add_string b ",\"decided_by\":{";
      List.iteri
        (fun i (name, n) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":%d" (json_escape name) n))
        fr.fr_decided_by;
      Buffer.add_string b
        (Printf.sprintf "},\"loops\":{\"parallel\":%d,\"serial\":%d}"
           fr.fr_loops_parallel fr.fr_loops_serial));
  if timings then
    Buffer.add_string b
      (Printf.sprintf ",\"elapsed_ns\":%Ld" fr.fr_elapsed_ns);
  Buffer.add_char b '}';
  Buffer.contents b

let summary_line ~timings ~dir ~elapsed_ns frs =
  let total f = List.fold_left (fun n fr -> n + f fr) 0 frs in
  let ok = List.length (List.filter (fun fr -> fr.fr_error = None) frs) in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"summary\":true,\"dir\":\"%s\",\"files\":%d,\"ok\":%d,\
        \"errors\":%d,\"pairs\":%d,\"verdicts\":{\"independent\":%d,\
        \"dependent\":%d,\"inapplicable\":%d},\"deps\":%d,\
        \"loops\":{\"parallel\":%d,\"serial\":%d}"
       (json_escape dir) (List.length frs) ok
       (List.length frs - ok)
       (total (fun f -> f.fr_pairs))
       (total (fun f -> f.fr_independent))
       (total (fun f -> f.fr_dependent))
       (total (fun f -> f.fr_inapplicable))
       (total (fun f -> f.fr_deps))
       (total (fun f -> f.fr_loops_parallel))
       (total (fun f -> f.fr_loops_serial)));
  if timings then begin
    let s = Stats.global in
    Buffer.add_string b
      (Printf.sprintf
         ",\"elapsed_ns\":%Ld,\"cache\":{\"queries\":%d,\"hits\":%d,\
          \"warm_hits\":%d,\"cold_hits\":%d,\"misses\":%d,\
          \"snapshot_loaded\":%d,\"snapshot_loads\":%d,\
          \"snapshot_rejects\":%d}"
         elapsed_ns (Stats.queries s) (Stats.cache_hits s) (Stats.warm_hits s)
         (Stats.cold_hits s) (Stats.cache_misses s) (Stats.snapshot_loaded s)
         (Stats.snapshot_loads s) (Stats.snapshot_rejects s))
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let reports ?(mode = Analyze.Delinearize) ?cascade ?budget ?pool ?env dir =
  let env = Option.value env ~default:Assume.empty in
  Trace.with_span ~cat:"bulk" ~args:[ ("dir", dir) ] "bulk.dir" @@ fun () ->
  let files = Array.of_list (kernels dir) in
  let worker rel = analyze_file ~mode ~cascade ~budget ~env dir rel in
  let reports =
    match pool with
    (* One file is one unit of steal: file costs vary wildly, so any
       grouping would serialize the tail. *)
    | Some p -> Pool.map p ~chunk:1 worker files
    | None -> Array.map worker files
  in
  Array.to_list reports

let run ?mode ?cascade ?budget ?pool ?env ?(timings = false) dir =
  let t0 = Trace.now_ns () in
  let reports = reports ?mode ?cascade ?budget ?pool ?env dir in
  let elapsed_ns = Int64.sub (Trace.now_ns ()) t0 in
  List.map (file_line ~timings) reports
  @ [ summary_line ~timings ~dir ~elapsed_ns reports ]
