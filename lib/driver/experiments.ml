module Table = Dlz_base.Table
module Prng = Dlz_base.Prng
module Poly = Dlz_symbolic.Poly
module Assume = Dlz_symbolic.Assume
module Ast = Dlz_ir.Ast
module Access = Dlz_ir.Access
module Depeq = Dlz_deptest.Depeq
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Ddvec = Dlz_deptest.Ddvec
module Problem = Dlz_deptest.Problem
module Gcd_test = Dlz_deptest.Gcd_test
module Banerjee = Dlz_deptest.Banerjee
module Svpc = Dlz_deptest.Svpc
module Acyclic = Dlz_deptest.Acyclic
module Residue = Dlz_deptest.Residue
module Fm = Dlz_deptest.Fm
module Exact = Dlz_deptest.Exact
module Omega = Dlz_deptest.Omega
module Lambda = Dlz_deptest.Lambda
module Symeq = Dlz_deptest.Symeq
module Classify = Dlz_deptest.Classify
module Algo = Dlz_core.Algo
module Symalgo = Dlz_core.Symalgo
module Analyze = Dlz_engine.Analyze
module Reshape = Dlz_core.Reshape
module Codegen = Dlz_vec.Codegen
module Corpus = Dlz_corpus.Corpus
module F77 = Dlz_frontend.F77_parser
module C_parser = Dlz_frontend.C_parser
module Pipeline = Dlz_passes.Pipeline
module Pointers = Dlz_passes.Pointers

let buf_report f =
  let buf = Buffer.create 1024 in
  f buf;
  Buffer.contents buf

let heading buf title =
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length title) '=');
  Buffer.add_string buf "\n\n"

let para buf s =
  Buffer.add_string buf s;
  Buffer.add_string buf "\n\n"

let prepare src = Pipeline.prepare_program (F77.parse src)

(* ---------------------------------------------------------------- E1 -- *)

let classic_tests : (string * (Depeq.t -> Verdict.t)) list =
  [
    ("GCD test [AK87, Ban88]", Gcd_test.test ?dirs:None);
    ("Banerjee inequalities [AK87, WB87]", Banerjee.test ?dirs:None);
    ("Single Variable Per Constraint [MHL91]", Svpc.test);
    ("Acyclic test [MHL91]", Acyclic.test);
    ("Lambda-test [LYZ89]", fun eq -> Lambda.test [ eq ]);
    ("Simple Loop Residue [MHL91, Sho81]", Residue.test);
    ("Fourier-Motzkin, real [DE73, MHL91]", Fm.test Fm.Real);
    ("Fourier-Motzkin + tightening [Pug91]", Fm.test Fm.Tightened);
    ("Omega test [Pug91] (exact)", fun eq -> Omega.test [ eq ]);
  ]

let e1_rows () =
  let eq = Fragments.eq1 () in
  List.map (fun (name, test) -> (name, test eq)) classic_tests
  @ [
      ("Delinearization (this paper)", Algo.test eq);
      ("Exact integer solver (ground truth)", Exact.test [ eq ]);
    ]

let e1 () =
  buf_report (fun buf ->
      heading buf
        "E1: dependence tests on equation (1): i1 + 10*j1 = i2 + 10*j2 + 5";
      para buf
        "Paper claim: every listed classic technique fails to prove\n\
         independence (it has real but no integer solutions); normalization\n\
         (tightening) + Fourier-Motzkin proves it, and so does\n\
         delinearization, at a fraction of the cost.";
      let t =
        Table.create [ "Technique"; "Verdict"; "Proves independence?" ]
      in
      List.iter
        (fun (name, v) ->
          Table.add_row t
            [
              name;
              Verdict.to_string v;
              (if v = Verdict.Independent then "yes" else "no");
            ])
        (e1_rows ());
      Buffer.add_string buf (Table.render t))

(* ---------------------------------------------------------------- E2 -- *)

let e2 () =
  buf_report (fun buf ->
      heading buf "E2: Figure 1 — loop nests containing linearized references";
      para buf
        "RiCEPS itself is not distributable; the corpus is a synthetic\n\
         stand-in with planted linearized-reference nests (see DESIGN.md,\n\
         Substitutions).  The detector must recover the planted counts\n\
         through the normalization/induction/aliasing pipeline.";
      let t =
        Table.create
          [ "Program"; "Type"; "Lines"; "Paper"; "Planted"; "Counted"; "OK" ]
      in
      List.iter
        (fun (r : Corpus.row) ->
          Table.add_row t
            [
              r.r_spec.Corpus.name;
              r.r_spec.Corpus.domain;
              string_of_int r.r_lines;
              r.r_spec.Corpus.reported;
              string_of_int r.r_spec.Corpus.planted;
              string_of_int r.r_counted;
              (if r.r_counted = r.r_spec.Corpus.planted then "yes" else "NO");
            ])
        (Corpus.figure1 ());
      Buffer.add_string buf (Table.render t);
      para buf "";
      para buf
        "Ablation (iii): of the linearized nests, how many are fully\n\
         parallel (every loop dependence-free) with delinearization vs\n\
         the classic tests.  Nests that stay non-parallel under both\n\
         carry genuine dependences (e.g. the shifted-stride idiom).";
      let t2 =
        Table.create
          [ "Program"; "Linearized nests"; "Parallel (delin)";
            "Parallel (classic)" ]
      in
      List.iter
        (fun (r : Corpus.ablation_row) ->
          Table.add_row t2
            [
              r.Corpus.a_name;
              string_of_int r.Corpus.a_nests;
              string_of_int r.Corpus.a_parallel_delin;
              string_of_int r.Corpus.a_parallel_classic;
            ])
        (Corpus.parallel_ablation ());
      Buffer.add_string buf (Table.render t2))

(* ---------------------------------------------------------------- E3 -- *)

let dep_pair_label (d : Analyze.dep) =
  Printf.sprintf "%s:%s -> %s:%s" d.Analyze.src.Access.stmt_name
    d.Analyze.src.Access.array d.Analyze.dst.Access.stmt_name
    d.Analyze.dst.Access.array

let e3_deps ?(jobs = 1) ?chunk () =
  Analyze.deps_of_program ~jobs ?chunk (prepare Fragments.fig3_program)

let e3_rows ?jobs ?chunk () =
  List.map
    (fun (d : Analyze.dep) ->
      ( dep_pair_label d,
        Dirvec.to_string d.Analyze.dirvec,
        Ddvec.to_string d.Analyze.ddvec ))
    (e3_deps ?jobs ?chunk ())

let e3 ?jobs ?chunk () =
  buf_report (fun buf ->
      heading buf "E3: Figure 3 — dependences of the Allen-Kennedy program";
      Buffer.add_string buf (Ast.to_string (prepare Fragments.fig3_program));
      Buffer.add_string buf "\n\n";
      let expected =
        [
          ("S2:B -> S2:B", "(*, =)", "(*, 0)");
          ("S2:B -> S3:B", "(*, =)", "(*, 0)");
          ("S3:A -> S3:A", "(*, =, =)", "(*, 0, 0)");
          ("S3:A -> S2:A", "(*, <)", "(*, +1)");
          ("S3:A -> S4:A", "(*, =)", "(*, 0)");
          ("S4:Y -> S1:Y", "(<)", "(<)");
        ]
      in
      let t =
        Table.create
          [ "Pair"; "Direction vector"; "Distance-direction"; "In paper?" ]
      in
      List.iter
        (fun (pair, dv, ddv) ->
          let in_paper =
            List.exists
              (fun (p, v, w) -> p = pair && v = dv && w = ddv)
              expected
          in
          Table.add_row t
            [ pair; dv; ddv; (if in_paper then "yes" else "extra") ])
        (e3_rows ?jobs ?chunk ());
      Buffer.add_string buf (Table.render t);
      para buf "";
      para buf
        "All six of the paper's rows are reproduced.  The additional\n\
         S4:Y -> S4:Y row is a genuine output dependence (Y(i+j) collides\n\
         for i1+j1 = i2+j2) that Figure 3 does not list.")

(* ---------------------------------------------------------------- E4 -- *)

let e4 () =
  buf_report (fun buf ->
      heading buf "E4: Figure 5 — trace of the algorithm on the 6-variable equation";
      let eq = Fragments.fig5_equation () in
      para buf (Depeq.to_string eq);
      let r = Algo.run ~n_common:3 ~common_ubs:[| 8; 9; 8 |] eq in
      let t =
        Table.create
          ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right;
                    Table.Right; Table.Right; Table.Left ]
          [ "k"; "c_Ik"; "smin"; "smax"; "g_k"; "r"; "separated equation" ]
      in
      List.iter
        (fun (s : Algo.step) ->
          Table.add_row t
            [
              string_of_int s.Algo.k;
              (match s.Algo.coeff with Some c -> string_of_int c | None -> "-");
              string_of_int s.Algo.smin;
              string_of_int s.Algo.smax;
              (match s.Algo.gk with Some g -> string_of_int g | None -> "inf");
              string_of_int s.Algo.r;
              (match s.Algo.separated with
              | Some p -> Depeq.to_string p
              | None -> if s.Algo.barrier then "(trivial 0 = 0)" else "");
            ])
        r.Algo.steps;
      Buffer.add_string buf (Table.render t);
      para buf "";
      para buf
        (Printf.sprintf "Verdict: %s; direction vectors: %s; distances: %s"
           (Verdict.to_string r.Algo.verdict)
           (String.concat " "
              (List.map Dirvec.to_string r.Algo.dirvecs))
           (String.concat " "
              (List.map
                 (fun (l, d) -> Printf.sprintf "level %d: %+d" l d)
                 r.Algo.distances)));
      para buf
        "Paper Figure 5 separates the same three equations:\n\
         i1 - j2 = 0;  10*j1 - 10*i2 - 10 = 0;  100*k1 - 100*k2 - 100 = 0.")

(* ---------------------------------------------------------------- E5 -- *)

let e5_dep ?(jobs = 1) ?chunk () =
  match Analyze.deps_of_program ~jobs ?chunk (prepare Fragments.mhl_program) with
  | [ d ] -> d
  | deps ->
      failwith
        (Printf.sprintf "E5: expected exactly one dependence, got %d"
           (List.length deps))

let e5_distances () =
  let prog = prepare Fragments.mhl_program in
  let accs, env = Access.of_program prog in
  match accs with
  | [ w; r ] -> (
      match Problem.of_accesses w r with
      | Some p ->
          let res = Analyze.vectors ~env p in
          List.filter_map
            (fun (l, d) ->
              Option.map (fun c -> (l, -c)) (Poly.to_const d))
            res.Analyze.distances
          |> List.sort compare
      | None -> [])
  | _ -> []

let e5 ?jobs ?chunk () =
  buf_report (fun buf ->
      heading buf "E5: exact distance vector for the MHL91 fragment";
      Buffer.add_string buf (Ast.to_string (prepare Fragments.mhl_program));
      Buffer.add_string buf "\n\n";
      para buf
        "Paper claim: [MHL91] cannot discover that the distance vector is\n\
         (2,0); delinearization proves it exactly (the write at iteration\n\
         (i,j) and the read at iteration (i+2,j) touch the same cell).";
      let d = e5_dep ?jobs ?chunk () in
      para buf
        (Printf.sprintf
           "Reported dependence: %s, direction %s, distance-direction %s"
           (dep_pair_label d)
           (Dirvec.to_string d.Analyze.dirvec)
           (Ddvec.to_string d.Analyze.ddvec));
      para buf
        (Printf.sprintf
           "Distances (source = the textually earlier iteration): %s"
           (String.concat ", "
              (List.map
                 (fun (l, v) -> Printf.sprintf "level %d: %d" l v)
                 (e5_distances ())))))

(* ---------------------------------------------------------------- E6 -- *)

let e6_problem () =
  let prog = prepare Fragments.symbolic_program in
  let accs, env = Access.of_program prog in
  match accs with
  | [ w; r ] -> (
      match Problem.of_accesses w r with
      | Some p -> (prog, p, env)
      | None -> failwith "E6: no problem")
  | _ -> failwith "E6: unexpected access count"

let e6 () =
  buf_report (fun buf ->
      heading buf "E6: symbolic delinearization (paper section 4)";
      let prog, p, env = e6_problem () in
      Buffer.add_string buf (Ast.to_string prog);
      Buffer.add_string buf "\n\n";
      para buf
        (Format.asprintf "Derived assumptions from loop bounds: %a" Assume.pp
           env);
      let eq = List.hd p.Problem.equations in
      para buf (Format.asprintf "Dependence equation: %a" Symeq.pp eq);
      let r = Symalgo.run ~env ~n_common:p.Problem.n_common eq in
      let t =
        Table.create
          [ "k"; "c_Ik"; "smin"; "smax"; "g_k"; "r"; "separated equation" ]
      in
      List.iter
        (fun (s : Symalgo.step) ->
          Table.add_row t
            [
              string_of_int s.Symalgo.k;
              (match s.Symalgo.coeff with
              | Some c -> Poly.to_string c
              | None -> "-");
              Poly.to_string s.Symalgo.smin;
              Poly.to_string s.Symalgo.smax;
              (match s.Symalgo.gk with
              | Some g -> Poly.to_string g
              | None -> "inf");
              Poly.to_string s.Symalgo.r;
              (match s.Symalgo.separated with
              | Some piece -> Format.asprintf "%a" Symeq.pp piece
              | None -> if s.Symalgo.barrier then "(trivial 0 = 0)" else "");
            ])
        r.Symalgo.steps;
      Buffer.add_string buf (Table.render t);
      para buf "";
      para buf
        (Printf.sprintf "Verdict: %s; direction vectors: %s"
           (Verdict.to_string r.Symalgo.verdict)
           (String.concat " " (List.map Dirvec.to_string r.Symalgo.dirvecs)));
      para buf
        (Printf.sprintf "Symbolic distances: %s"
           (String.concat ", "
              (List.map
                 (fun (l, d) ->
                   Printf.sprintf "level %d: %s" l (Poly.to_string d))
                 r.Symalgo.distances)));
      (* Literal reshape of the array. *)
      let reshaped, plans =
        Reshape.apply ~env:(Assume.assume_ge "N" 2 Assume.empty) prog
      in
      para buf
        (Printf.sprintf "Recovered shapes: %s"
           (String.concat "; "
              (List.map
                 (fun (pl : Reshape.plan) ->
                   Printf.sprintf "%s(%s)" pl.Reshape.array
                     (String.concat ", "
                        (List.map Poly.to_string pl.Reshape.extents)))
                 plans)));
      Buffer.add_string buf (Ast.to_string reshaped);
      Buffer.add_string buf "\n\n";
      (* Numeric cross-check. *)
      let t2 =
        Table.create [ "N"; "numeric verdict"; "numeric dirvecs"; "agrees" ]
      in
      List.iter
        (fun n ->
          let np = Problem.instantiate (fun _ -> n) p in
          let eqn = List.hd np.Problem.eqs in
          let nr =
            Algo.run ~n_common:np.Problem.n_common
              ~common_ubs:np.Problem.common_ubs eqn
          in
          (* Soundness, not equality: a symbolic "independent" must hold
             for every N; a symbolic "dependent" (= could not disprove)
             may still be independent at particular N (here N = 2, where
             the k loops have a single iteration). *)
          let consistent =
            (not (Verdict.equal r.Symalgo.verdict Verdict.Independent))
            || Verdict.equal nr.Algo.verdict Verdict.Independent
          in
          Table.add_row t2
            [
              string_of_int n;
              Verdict.to_string nr.Algo.verdict;
              String.concat " " (List.map Dirvec.to_string nr.Algo.dirvecs);
              (if consistent then "yes" else "NO");
            ])
        [ 2; 3; 4; 5; 6 ];
      Buffer.add_string buf (Table.render t2))

(* ---------------------------------------------------------------- E7 -- *)

let e7 ?(jobs = 1) ?chunk () =
  buf_report (fun buf ->
      heading buf "E7: induction variables, aliasing, and C pointers";
      (* (a) the IB nest *)
      para buf "(a) BOAST-style induction variable:";
      Buffer.add_string buf (Ast.to_string (F77.parse Fragments.ib_program));
      Buffer.add_string buf "\n\nAfter substitution:\n";
      let prog = prepare Fragments.ib_program in
      Buffer.add_string buf (Ast.to_string prog);
      Buffer.add_string buf "\n\n";
      let deps = Analyze.deps_of_program ~jobs ?chunk prog in
      List.iter
        (fun d -> para buf (Format.asprintf "%a" Analyze.pp_dep d))
        deps;
      let plan_str (r : Codegen.result) =
        String.concat "; "
          (List.map
             (fun (pl : Codegen.plan) ->
               Printf.sprintf "%s seq[%s] vec[%s]" pl.Codegen.stmt_name
                 (String.concat ","
                    (List.map string_of_int pl.Codegen.seq_levels))
                 (String.concat ","
                    (List.map string_of_int pl.Codegen.vec_levels)))
             r.Codegen.plans)
      in
      para buf
        (Printf.sprintf "Vectorizer with delinearization: %s"
           (plan_str (Codegen.run ~mode:Analyze.Delinearize prog)));
      para buf
        (Printf.sprintf "Vectorizer with classic tests:    %s"
           (plan_str (Codegen.run ~mode:Analyze.Classic prog)));
      (* (b) 2-D EQUIVALENCE *)
      para buf "(b) EQUIVALENCE aliasing (2-D):";
      let prog2 = prepare Fragments.equivalence_2d in
      Buffer.add_string buf (Ast.to_string prog2);
      Buffer.add_string buf "\n\n";
      para buf
        (Printf.sprintf "Dependences after linearization: %d (paper: independent)"
           (List.length (Analyze.deps_of_program ~jobs ?chunk prog2)));
      (* (c) 4-D partial linearization *)
      para buf "(c) EQUIVALENCE aliasing (4-D, partial linearization):";
      let prog4 = prepare Fragments.equivalence_4d in
      Buffer.add_string buf (Ast.to_string prog4);
      Buffer.add_string buf "\n\n";
      let deps4 = Analyze.deps_of_program ~jobs ?chunk prog4 in
      List.iter
        (fun d -> para buf (Format.asprintf "%a" Analyze.pp_dep d))
        deps4;
      para buf
        "The write/read pair is proven independent through the linearized\n\
         leading dimension even though IFUN(10) is opaque — the paper's\n\
         point about partial linearization.  The surviving row is the\n\
         write's self output dependence through the opaque dimension\n\
         (IFUN(10) names the same plane for every L), which linearizing\n\
         the trailing dimensions would NOT have exposed any better.";
      (* (d) dummy/actual association *)
      para buf "(d) dummy/actual argument association:";
      let assoc_src =
        "      REAL A(0:9,0:9)\n\
        \      CALL COPY(A)\n\
        \      END\n\
        \      SUBROUTINE COPY(B)\n\
        \      REAL B(0:4,0:19)\n\
        \      DO 1 I = 0, 4\n\
        \      DO 1 J = 0, 9\n\
         1     B(I,2*J+1) = B(I,2*J)\n\
        \      END\n"
      in
      Buffer.add_string buf assoc_src;
      let inlined =
        Dlz_passes.Inline.expand (F77.parse_units assoc_src)
      in
      let proga = Pipeline.prepare_program inlined in
      Buffer.add_string buf "\nAfter inlining + association + pipeline:\n";
      Buffer.add_string buf (Ast.to_string proga);
      Buffer.add_string buf "\n\n";
      para buf
        (Printf.sprintf
           "Dependences: %d — the dummy B(0:4,0:19) associates with the\n\
            actual A(0:9,0:9); per the standard both linearize, and\n\
            delinearization proves the odd/even column accesses disjoint."
           (List.length (Analyze.deps_of_program ~jobs ?chunk proga)));
      (* (e) C pointers *)
      para buf "(e) C pointer traversal:";
      Buffer.add_string buf Fragments.c_pointers;
      Buffer.add_string buf "\nLowered and normalized:\n";
      let progc =
        Pipeline.prepare_program
          (Pointers.lower (C_parser.parse Fragments.c_pointers))
      in
      Buffer.add_string buf (Ast.to_string progc);
      Buffer.add_string buf "\n\n";
      para buf
        (Printf.sprintf "Dependences: %d (paper: independent)"
           (List.length (Analyze.deps_of_program ~jobs ?chunk progc))))

(* ---------------------------------------------------------------- E8 -- *)

let time_us f reps =
  let t0 = Sys.time () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t1 = Sys.time () in
  (t1 -. t0) *. 1e6 /. float_of_int reps

let e8 () =
  buf_report (fun buf ->
      heading buf "E8: cost of delinearization vs baselines (quick version)";
      para buf
        "Paper claims: the algorithm runs in (near-)linear time in the\n\
         number of variables; its inline test equals GCD+Banerjee per\n\
         dimension; Fourier-Motzkin is much more expensive.  Calibrated\n\
         numbers come from bench/main.exe; this table is a quick check.\n\
         Workload: the linearized family with extent 10, shifted\n\
         (integer-infeasible, real-feasible).";
      let t =
        Table.create
          ~aligns:
            [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
              Table.Right; Table.Right ]
          [ "depth"; "vars"; "delin us"; "banerjee us"; "gcd us";
            "FM-tight us"; "FM rows" ]
      in
      List.iter
        (fun depth ->
          let eq = Workload.paper_family ~depth ~extent:10 ~shifted:true in
          let reps = 2000 in
          let t_delin = time_us (fun () -> Algo.test eq) reps in
          let t_ban = time_us (fun () -> Banerjee.test eq) reps in
          let t_gcd = time_us (fun () -> Gcd_test.test eq) reps in
          let t_fm = time_us (fun () -> Fm.test Fm.Tightened eq) (reps / 10) in
          let nvars, rows = Fm.system_of_equation eq in
          let fm_rows = Fm.eliminations Fm.Tightened ~nvars rows in
          Table.add_row t
            [
              string_of_int depth;
              string_of_int (Depeq.nvars eq);
              Printf.sprintf "%.2f" t_delin;
              Printf.sprintf "%.2f" t_ban;
              Printf.sprintf "%.2f" t_gcd;
              Printf.sprintf "%.2f" t_fm;
              string_of_int fm_rows;
            ])
        [ 1; 2; 3; 4; 5; 6 ];
      Buffer.add_string buf (Table.render t);
      para buf "";
      (* Precision summary on the random linearized family. *)
      let g = Prng.create 42L in
      let n = 300 in
      let delin_ok = ref 0 and ban_ok = ref 0 and fmt_ok = ref 0 in
      let indep_total = ref 0 in
      for _ = 1 to n do
        let eq = Workload.random_linearized g ~depth:3 in
        let exact = Exact.test [ eq ] in
        if exact = Verdict.Independent then begin
          incr indep_total;
          if Algo.test eq = Verdict.Independent then incr delin_ok;
          if Banerjee.test eq = Verdict.Independent then incr ban_ok;
          if Fm.test Fm.Tightened eq = Verdict.Independent then incr fmt_ok
        end
      done;
      para buf
        (Printf.sprintf
           "Of %d random depth-3 linearized equations, %d are independent\n\
            (exact solver).  Proven independent by: delinearization %d,\n\
            Banerjee %d, tightened FM %d."
           n !indep_total !delin_ok !ban_ok !fmt_ok))

let all ?jobs ?chunk () =
  [
    ("e1", e1 ()); ("e2", e2 ()); ("e3", e3 ?jobs ?chunk ()); ("e4", e4 ());
    ("e5", e5 ?jobs ?chunk ()); ("e6", e6 ()); ("e7", e7 ?jobs ?chunk ()); ("e8", e8 ());
  ]

let run ?jobs ?chunk id =
  match String.lowercase_ascii id with
  | "e1" -> Some (e1 ())
  | "e2" -> Some (e2 ())
  | "e3" -> Some (e3 ?jobs ?chunk ())
  | "e4" -> Some (e4 ())
  | "e5" -> Some (e5 ?jobs ?chunk ())
  | "e6" -> Some (e6 ())
  | "e7" -> Some (e7 ?jobs ?chunk ())
  | "e8" -> Some (e8 ())
  | _ -> None
