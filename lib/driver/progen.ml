module Ast = Dlz_ir.Ast
module Expr = Dlz_ir.Expr
module Prng = Dlz_base.Prng

type profile = {
  p_depth : int * int;  (* nest depth range *)
  p_trip : int * int;  (* per-loop trip count (ub) range *)
  p_stmts : int * int;  (* statements per program *)
  p_coeffs : int array;  (* the "large magnitude" coefficient pool *)
}

let default_profile =
  {
    p_depth = (1, 3);
    p_trip = (1, 4);
    p_stmts = (1, 3);
    p_coeffs = [| -12; -10; -4; -2; 2; 4; 10; 12 |];
  }

(* Deeper nests with trip-count-scale strides: subscripts frequently
   look hand-linearized (mixed coefficient magnitudes), the family the
   differential oracle wants in bulk. *)
let linearized_profile =
  {
    p_depth = (2, 3);
    p_trip = (2, 5);
    p_stmts = (1, 3);
    p_coeffs = [| -30; -20; -12; -5; 5; 12; 20; 30 |];
  }

(* An affine subscript over the loop variables, with its value hull. *)
let random_subscript pr g loops =
  (* loops: (var, ub) list *)
  let terms =
    List.filter_map
      (fun (v, ub) ->
        match Prng.int g 4 with
        | 0 -> None
        | 1 -> Some (1, v, ub)
        | 2 -> Some (Prng.int_in g (-3) 3, v, ub)
        | _ -> Some (Prng.choose g pr.p_coeffs, v, ub))
      loops
  in
  let c0 = Prng.int_in g (-6) 6 in
  let expr =
    List.fold_left
      (fun acc (c, v, _) ->
        if c = 0 then acc
        else
          let t =
            if c = 1 then Expr.Var v
            else Expr.Bin (Expr.Mul, Expr.Const c, Expr.Var v)
          in
          Expr.Bin (Expr.Add, acc, t))
      (Expr.Const c0) terms
  in
  let lo, hi =
    List.fold_left
      (fun (lo, hi) (c, _, ub) ->
        if c >= 0 then (lo, hi + (c * ub)) else (lo + (c * ub), hi))
      (c0, c0) terms
  in
  (Expr.fold_consts expr, lo, hi)

let random_profiled pr g =
  let dlo, dhi = pr.p_depth and tlo, thi = pr.p_trip in
  let depth = Prng.int_in g dlo dhi in
  let loop_names = [| "I"; "J"; "K" |] in
  let loops =
    List.init depth (fun i -> (loop_names.(i), Prng.int_in g tlo thi))
  in
  let arrays = if Prng.bool g then [ "A" ] else [ "A"; "B" ] in
  let hulls = Hashtbl.create 4 in
  List.iter (fun a -> Hashtbl.replace hulls a (0, 0)) arrays;
  let slo, shi = pr.p_stmts in
  let nstmts = Prng.int_in g slo shi in
  let mk_ref () =
    let a = Prng.choose g (Array.of_list arrays) in
    let e, lo, hi = random_subscript pr g loops in
    let clo, chi = Hashtbl.find hulls a in
    Hashtbl.replace hulls a (min clo lo, max chi hi);
    Expr.Call (a, [ e ])
  in
  let stmts =
    List.init nstmts (fun _ ->
        let lhs =
          match mk_ref () with
          | Expr.Call (a, subs) -> { Ast.name = a; subs }
          | _ -> assert false
        in
        let rhs =
          match Prng.int g 3 with
          | 0 -> mk_ref ()
          | 1 -> Expr.Bin (Expr.Add, mk_ref (), Expr.Const 1)
          | _ -> Expr.Bin (Expr.Add, mk_ref (), mk_ref ())
        in
        Ast.assign lhs rhs)
  in
  let body =
    List.fold_right
      (fun (v, ub) inner -> [ Ast.do_ v (Expr.Const 0) (Expr.Const ub) inner ])
      loops stmts
  in
  let decls =
    List.map
      (fun a ->
        let lo, hi = Hashtbl.find hulls a in
        Ast.Array
          {
            Ast.a_name = a;
            a_kind = Ast.Real;
            a_dims = [ { Ast.lo = Expr.Const lo; hi = Expr.Const hi } ];
          })
      arrays
  in
  { Ast.p_name = "RANDOM"; decls; body }

let random g = random_profiled default_profile g
