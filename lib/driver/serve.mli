(** CLI glue and load generation for the [vic serve] daemon.

    {!run_cli} wires SIGTERM/SIGINT to the server's graceful drain and
    blocks until shutdown.  {!load_gen} is the simulated-client fleet
    behind the serve bench arm and the overload tests: a thread per
    simulated client (threads, not domains — a client's life is
    blocked socket I/O, and thousands of threads fit where domains
    cannot), each running framed sessions against the daemon and
    classifying every reply. *)

val run_cli : ?stats_json:bool -> ?quiet:bool -> Dlz_serve.Server.config -> unit
(** Start, announce, drain on SIGTERM/SIGINT (or a [shutdown] request),
    join, report.  [stats_json] prints one machine-readable
    [{"version":..,"serve":..,"engine":..,"obs":..}] line on exit —
    daemon counters, engine counters, and the full obs snapshot
    (per-client attribution included) behind one flag.  Exits the
    process with code 1 when the server cannot start. *)

val run_stats :
  addr:Dlz_serve.Addr.t ->
  format:[ `Prom | `Json ] ->
  watch:bool ->
  interval_ms:int ->
  count:int ->
  unit ->
  unit
(** The client side of the [metrics] verb: one scrape per round trip,
    printed as received (Prometheus text or the one-line Snap JSON).
    [watch] polls every [interval_ms] (clamped to ≥ 100 ms) until
    interrupted, or for [count] scrapes when [count > 0].  A failed
    one-shot scrape exits with code 1; under [--watch] it is reported
    and retried on the next tick. *)

type workload = Ping | Query | Analyze | Mix
(** [Mix] is query-heavy, like a compiler driving the daemon: 6/8
    queries, 1/8 pings, 1/8 whole-program analyzes. *)

val workload_of_string : string -> workload option

type report = {
  lg_sessions : int;
  lg_requests : int;
  lg_ok : int;
  lg_degraded : int;  (** ok replies that carried degradations *)
  lg_shed : int;  (** explicit ["overloaded"] refusals *)
  lg_draining : int;
  lg_errors : int;  (** other [ok:false] replies *)
  lg_transport : int;  (** connects or reads that died *)
  lg_elapsed_ns : int64;
  lg_latencies_ns : int64 array;  (** sorted; one per answered request *)
}

val percentile : report -> float -> int64
(** Client-observed latency percentile (ns); 0 when nothing completed. *)

val throughput : report -> float
(** Answered requests per second over the fleet's wall-clock. *)

val load_gen :
  addr:Dlz_serve.Addr.t ->
  clients:int ->
  sessions:int ->
  requests_per_session:int ->
  workload:workload ->
  ?fuel:int ->
  ?timeout_ms:int ->
  unit ->
  report
(** Run [sessions] sessions of [requests_per_session] requests each,
    dealt round-robin over [clients] concurrent threads.  [fuel] and
    [timeout_ms] are attached to every request (the per-request budget
    ask).  A shed/draining reply ends its session (the server closes
    the connection after refusing). *)
