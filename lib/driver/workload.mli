(** Workload generators shared by the E8 experiment and the Bechamel
    benches.

    The "paper family" generalizes equation (1) to arbitrary nesting
    depth: [Σ s_k·(α_k - β_k) = c0] with strides [s_k = extent^(k-1)],
    which delinearization breaks into [depth] independent pieces in one
    linear scan while general-purpose methods see a [2·depth]-variable
    problem. *)

module Depeq = Dlz_deptest.Depeq
module Prng = Dlz_base.Prng

val paper_family : depth:int -> extent:int -> shifted:bool -> Depeq.t
(** [2·depth] variables; loop bounds are [extent/2 - 1] so that
    [shifted = true] (constant [extent/2] in the innermost dimension)
    yields an integer-infeasible but real-feasible equation — the
    eq.-(1) shape — while [shifted = false] yields a dependent one. *)

val family_program : depth:int -> extent:int -> string
(** FORTRAN-77 source of the program whose single statement yields
    {!paper_family}-shaped dependence equations: a depth-[depth] nest
    writing [A(Σ extent^(depth-k)·Ik)] and reading the same subscript
    shifted by one.  Feed through the pipeline for engine-level
    (cache/parallel) workloads; shared by [bench/main.exe] and the
    parallel test suite. *)

val random : Prng.t -> nvars:int -> coeffs:int array -> max_ub:int -> Depeq.t
(** Uniform random equation for property testing and averaged benches. *)

val random_linearized : Prng.t -> depth:int -> Depeq.t
(** Random member of the linearized family: random extents in [4, 12],
    random per-dimension distances, random shift. *)
