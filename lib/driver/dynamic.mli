(** Dynamic (trace-based) dependences: ground truth for the analyzer.

    Executes a constant-bound program, tracking for every memory cell
    the last writing instance and the reading instances since, and emits
    every flow, anti and output dependence that actually happens,
    summarized as basic direction vectors over the two statements'
    common loops.  The integration tests check that every dynamic
    dependence is covered by some statically reported one — the
    soundness statement for the whole pipeline, per program. *)

module Dirvec = Dlz_deptest.Dirvec
module Classify = Dlz_deptest.Classify

type error =
  | Out_of_fuel of int  (** The step budget ran out: not an input error. *)
  | Zero_step
  | Undeclared_array of string
  | Arity_mismatch of string
  | Subscript_out_of_range of { array : string; sub : int; lo : int; hi : int }
  | Non_constant_bound of string
  | Unknown_statement

exception Error of error
(** Typed execution failure: callers can tell budget exhaustion
    ([Out_of_fuel]) apart from malformed input (everything else)
    instead of string-matching a [Failure]. *)

val describe : error -> string
(** Human-readable one-liner (also installed as an exception printer). *)

type dep = {
  src_stmt : int;  (** Statement id (program order of assignments). *)
  dst_stmt : int;  (** The instance that executes later. *)
  kind : Classify.kind;
  vec : Dirvec.t;  (** Basic, over the statements' common loops. *)
}

val dependences :
  ?syms:(string * int) list -> ?fuel:int -> Dlz_ir.Ast.program -> dep list
(** All distinct dynamic dependences, in first-occurrence order.
    Within-statement same-instance flows (the read feeding its own
    write) are omitted, matching the static convention.  Raises
    {!Error} on non-executable input or fuel exhaustion. *)

val uncovered :
  dep list -> Dlz_engine.Analyze.dep list -> dep list
(** Dynamic dependences not covered by any static row, where a static
    row covers a dynamic dependence when the statement pair matches (in
    either orientation, reversing the vector for the flipped one) and
    the static direction vector admits the dynamic one.  Soundness of
    the analyzer on a program = [uncovered dyn static = []]. *)
