module Trace = Dlz_base.Trace
module Depeq = Dlz_deptest.Depeq
module Problem = Dlz_deptest.Problem
module Stats = Dlz_engine.Stats
module Addr = Dlz_serve.Addr
module Client = Dlz_serve.Client
module Jsonx = Dlz_serve.Jsonx
module Metrics = Dlz_serve.Metrics
module Proto = Dlz_serve.Proto
module Server = Dlz_serve.Server

(* {2 CLI runner} *)

let run_cli ?(stats_json = false) ?(quiet = false) cfg =
  match Server.start cfg with
  | Error m ->
      Printf.eprintf "vic serve: %s\n%!" m;
      exit 1
  | Ok srv ->
      let stop _ = Server.stop srv in
      (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
       with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
       with Invalid_argument _ -> ());
      if not quiet then
        Printf.printf "vic serve: listening on %s (%d workers, queue %d)\n%!"
          (Addr.to_string (Server.address srv))
          (max 1 cfg.Server.workers) cfg.Server.queue_capacity;
      (* Sleep-poll instead of blocking in [join]: [sleepf] is
         interrupted by signals, so SIGTERM turns into the drain flag
         promptly even while idle. *)
      while not (Server.stopped srv) do
        Unix.sleepf 0.2
      done;
      let s = Server.join srv in
      (match s.Server.sm_saved with
      | Some (Ok n) when not quiet ->
          Printf.eprintf "vic serve: drain snapshot saved (%d entries)\n%!" n
      | Some (Error m) ->
          Printf.eprintf "vic serve: drain snapshot failed: %s\n%!" m
      | _ -> ());
      if stats_json then
        (* The whole picture behind one flag: daemon counters, engine
           counters, and the full obs snapshot (which additionally
           carries per-client attribution and latency histograms). *)
        Printf.printf "{\"version\":1,\"serve\":%s,\"engine\":%s,\"obs\":%s}\n%!"
          (Metrics.snapshot_to_json s.Server.sm_metrics)
          (Stats.to_json Stats.global)
          (Dlz_obs.Snap.to_json (Dlz_obs.Registry.collect ()))
      else if not quiet then begin
        let m = s.Server.sm_metrics in
        Printf.eprintf
          "vic serve: %d connections (%d shed, %d refused draining), %d \
           requests, %d responses, %d errors\n\
           %!"
          m.Metrics.s_accepted m.Metrics.s_shed m.Metrics.s_rejected_draining
          m.Metrics.s_requests m.Metrics.s_responses m.Metrics.s_errors
      end

(* {2 Stats poller}

   The client side of the [metrics] verb: one scrape per round trip,
   printed as received (Prometheus text or the Snap JSON line), so
   [vic stats] composes with curl-style tooling and [--watch] makes a
   live poller out of it. *)

let fetch_metrics ~addr ~format =
  match Client.connect ~timeout_ms:10_000 addr with
  | Error m -> Error m
  | Ok c ->
      let req =
        Jsonx.Obj
          [
            ("op", Jsonx.Str "metrics");
            ( "format",
              Jsonx.Str (match format with `Prom -> "prom" | `Json -> "json")
            );
            ("client", Jsonx.Str "vic-stats");
          ]
      in
      let r = Client.request c req in
      Client.close c;
      (match r with
      | Error _ as e -> e
      | Ok j -> (
          match Jsonx.member "ok" j with
      | Some (Jsonx.Bool true) -> (
          match format with
          | `Prom -> (
              match Option.bind (Jsonx.member "body" j) Jsonx.to_str with
              | Some body -> Ok body
              | None -> Error "metrics response carried no body")
          | `Json -> (
              match Jsonx.member "metrics" j with
              | Some m -> Ok (Jsonx.to_string m ^ "\n")
              | None -> Error "metrics response carried no metrics object"))
          | _ -> (
              match Option.bind (Jsonx.member "error" j) Jsonx.to_str with
              | Some m -> Error m
              | None -> Error "malformed metrics response")))

let run_stats ~addr ~format ~watch ~interval_ms ~count () =
  let interval = float_of_int (max 100 interval_ms) /. 1000. in
  (* --watch: poll until interrupted (or --count scrapes); otherwise
     one scrape, and a failed one is a failed command. *)
  let rec go i =
    let last = (not watch) || (count > 0 && i = count - 1) in
    (match fetch_metrics ~addr ~format with
    | Ok body ->
        print_string body;
        if watch && not last then print_newline ();
        flush stdout
    | Error m ->
        Printf.eprintf "vic stats: %s\n%!" m;
        if not watch then exit 1);
    if not last then begin
      Unix.sleepf interval;
      go (i + 1)
    end
  in
  go 0

(* {2 Load generator}

   A thread fleet of simulated clients.  Threads, not domains: a
   client spends its life blocked in socket I/O, which threads
   interleave fine, and thousands of them fit where domains cannot
   (the runtime caps domains at ~128). *)

type workload = Ping | Query | Analyze | Mix

let workload_of_string = function
  | "ping" -> Some Ping
  | "query" -> Some Query
  | "analyze" -> Some Analyze
  | "mix" -> Some Mix
  | _ -> None

type report = {
  lg_sessions : int;  (* sessions attempted *)
  lg_requests : int;  (* requests sent *)
  lg_ok : int;  (* requests answered ok:true *)
  lg_degraded : int;  (* ...of which carried degradations *)
  lg_shed : int;  (* overloaded replies *)
  lg_draining : int;  (* draining replies *)
  lg_errors : int;  (* other ok:false replies *)
  lg_transport : int;  (* connects or reads that died *)
  lg_elapsed_ns : int64;
  lg_latencies_ns : int64 array;  (* sorted; one per answered request *)
}

let percentile r p =
  let n = Array.length r.lg_latencies_ns in
  if n = 0 then 0L
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    r.lg_latencies_ns.(max 0 (min (n - 1) rank))

let throughput r =
  if Int64.compare r.lg_elapsed_ns 0L <= 0 then 0.
  else
    float_of_int r.lg_ok /. (Int64.to_float r.lg_elapsed_ns /. 1e9)

(* Distinct canonical forms so cache behaviour is visible: the paper
   family at several depths/shifts, the shape the engine is fastest
   at delinearizing. *)
let query_pool =
  lazy
    (Array.init 16 (fun k ->
         let depth = 1 + (k mod 4) in
         let extent = if k mod 8 < 4 then 8 else 12 in
         let shifted = k >= 8 in
         let eq = Workload.paper_family ~depth ~extent ~shifted in
         let np =
           Problem.numeric_of_equations ~n_common:depth
             ~common_ubs:(Array.make depth ((extent / 2) - 1))
             [ eq ]
         in
         Proto.problem_to_json np))

let analyze_pool =
  lazy
    (Array.init 4 (fun k ->
         Workload.family_program ~depth:(1 + (k mod 2)) ~extent:(6 + (2 * k))))

let build_request ~workload ~fuel ~timeout_ms ~session ~req =
  let n = (session * 1_000_000) + req in
  let extra =
    (match fuel with Some f -> [ ("fuel", Jsonx.Int f) ] | None -> [])
    @
    match timeout_ms with
    | Some ms -> [ ("timeout_ms", Jsonx.Int ms) ]
    | None -> []
  in
  let kind =
    match workload with
    | Ping -> `Ping
    | Query -> `Query
    | Analyze -> `Analyze
    | Mix -> (
        (* Query-heavy, like a compiler: mostly queries, a sprinkle of
           whole-program analyzes and pings. *)
        match n mod 8 with 0 -> `Ping | 7 -> `Analyze | _ -> `Query)
  in
  match kind with
  | `Ping -> Jsonx.Obj ([ ("op", Jsonx.Str "ping"); ("id", Jsonx.Int n) ] @ extra)
  | `Query ->
      let pool = Lazy.force query_pool in
      Jsonx.Obj
        ([
           ("op", Jsonx.Str "query");
           ("id", Jsonx.Int n);
           ("problem", pool.(n mod Array.length pool));
         ]
        @ extra)
  | `Analyze ->
      let pool = Lazy.force analyze_pool in
      Jsonx.Obj
        ([
           ("op", Jsonx.Str "analyze");
           ("id", Jsonx.Int n);
           ("lang", Jsonx.Str "f");
           ("source", Jsonx.Str pool.(n mod Array.length pool));
         ]
        @ extra)

type acc = {
  mutable a_requests : int;
  mutable a_ok : int;
  mutable a_degraded : int;
  mutable a_shed : int;
  mutable a_draining : int;
  mutable a_errors : int;
  mutable a_transport : int;
  mutable a_lats : int64 list;
}

let classify acc frames lat =
  match List.rev frames with
  | [] -> acc.a_transport <- acc.a_transport + 1
  | last :: _ -> (
      match Jsonx.member "ok" last with
      | Some (Jsonx.Bool true) ->
          acc.a_ok <- acc.a_ok + 1;
          acc.a_lats <- lat :: acc.a_lats;
          let degraded j =
            match Jsonx.member "degraded" j with
            | Some (Jsonx.List (_ :: _)) -> true
            | _ -> false
          in
          if List.exists degraded frames then
            acc.a_degraded <- acc.a_degraded + 1
      | _ -> (
          match Option.bind (Jsonx.member "reason" last) Jsonx.to_str with
          | Some "overloaded" -> acc.a_shed <- acc.a_shed + 1
          | Some "draining" -> acc.a_draining <- acc.a_draining + 1
          | _ -> acc.a_errors <- acc.a_errors + 1))

let run_session ~addr ~workload ~fuel ~timeout_ms ~requests acc session =
  match Client.connect ~timeout_ms:10_000 addr with
  | Error _ -> acc.a_transport <- acc.a_transport + 1
  | Ok c ->
      let rec go req =
        if req < requests then begin
          let j = build_request ~workload ~fuel ~timeout_ms ~session ~req in
          acc.a_requests <- acc.a_requests + 1;
          let t0 = Trace.now_ns () in
          match Client.send c j with
          | Error _ -> acc.a_transport <- acc.a_transport + 1
          | Ok () -> (
              match Client.read_stream c with
              | Error _ -> acc.a_transport <- acc.a_transport + 1
              | Ok frames ->
                  let lat = Int64.sub (Trace.now_ns ()) t0 in
                  classify acc frames lat;
                  (* A shed/draining reply closes the connection
                     server-side; stop the session. *)
                  let terminal =
                    match List.rev frames with
                    | last :: _ -> (
                        match Jsonx.member "ok" last with
                        | Some (Jsonx.Bool true) -> false
                        | _ -> true)
                    | [] -> true
                  in
                  if not terminal then go (req + 1))
        end
      in
      go 0;
      Client.close c

let load_gen ~addr ~clients ~sessions ~requests_per_session ~workload ?fuel
    ?timeout_ms () =
  let clients = max 1 clients in
  let accs =
    Array.init clients (fun _ ->
        {
          a_requests = 0;
          a_ok = 0;
          a_degraded = 0;
          a_shed = 0;
          a_draining = 0;
          a_errors = 0;
          a_transport = 0;
          a_lats = [];
        })
  in
  let t0 = Trace.now_ns () in
  let threads =
    List.init clients (fun tid ->
        Thread.create
          (fun () ->
            let acc = accs.(tid) in
            let rec go s =
              if s < sessions then begin
                if s mod clients = tid then
                  run_session ~addr ~workload ~fuel ~timeout_ms
                    ~requests:requests_per_session acc s;
                go (s + 1)
              end
            in
            go 0)
          ())
  in
  List.iter Thread.join threads;
  let elapsed = Int64.sub (Trace.now_ns ()) t0 in
  let merged f = Array.fold_left (fun n a -> n + f a) 0 accs in
  let lats =
    Array.of_list (Array.fold_left (fun l a -> a.a_lats @ l) [] accs)
  in
  Array.sort Int64.compare lats;
  {
    lg_sessions = sessions;
    lg_requests = merged (fun a -> a.a_requests);
    lg_ok = merged (fun a -> a.a_ok);
    lg_degraded = merged (fun a -> a.a_degraded);
    lg_shed = merged (fun a -> a.a_shed);
    lg_draining = merged (fun a -> a.a_draining);
    lg_errors = merged (fun a -> a.a_errors);
    lg_transport = merged (fun a -> a.a_transport);
    lg_elapsed_ns = elapsed;
    lg_latencies_ns = lats;
  }
