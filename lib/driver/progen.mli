(** Random constant-bound loop-nest programs for end-to-end testing.

    Generates small normalized programs with affine (frequently
    linearized) subscripts whose array declarations are sized to the
    hull of the subscript values, so interpretation never faults.  Used
    by the property tests that compare the static analyzer and the
    vectorizer against {!Dynamic} ground truth. *)

type profile = {
  p_depth : int * int;  (** Nest depth range. *)
  p_trip : int * int;  (** Per-loop trip count (upper bound) range. *)
  p_stmts : int * int;  (** Statements per program. *)
  p_coeffs : int array;  (** Large-magnitude subscript coefficient pool. *)
}
(** Generation knobs, the hook the differential oracle's program family
    uses to steer the distribution. *)

val default_profile : profile
(** Depth 1–3, trips ≤ 4, coefficients in [-12, 12] — the historical
    {!random} distribution. *)

val linearized_profile : profile
(** Deeper nests with trip-count-scale strides, so subscripts
    frequently look hand-linearized. *)

val random_profiled : profile -> Dlz_base.Prng.t -> Dlz_ir.Ast.program

val random : Dlz_base.Prng.t -> Dlz_ir.Ast.program
(** [random_profiled default_profile]: a program with 1–2 nests of
    depth 1–3 (trip counts ≤ 5), 1–3 assignment statements over 1–2
    shared arrays, subscript coefficients in [-12, 12]. *)
