(** Bulk analysis: every kernel under a directory through one warm
    cache, one NDJSON report.

    [vic analyze --dir DIR] walks DIR for FORTRAN-77 ([.f]) and C
    ([.c]) kernels and analyzes each through the engine's memoized
    query path — the point being the shared cache: kernels of a family
    raise the same canonical dependence equations, so later files ride
    on earlier files' solves (and on a persisted snapshot, when one was
    loaded).  Files fan out over the work-stealing pool, one file per
    job; the per-file analysis itself stays serial, so no pool is ever
    entered twice.

    The report is one NDJSON line per kernel (sorted by relative path)
    plus a closing summary line, and its default fields are chosen to
    be {e deterministic}: byte-identical for any [--jobs N], which is
    the property the test suite pins.  Per-file latency and the cache
    warm/cold disposition are genuinely scheduling-dependent (two
    domains can race to first-solve the same canonical form), so those
    fields only appear under [~timings:true] ([--timings]), which
    forfeits byte-identity and says so in the docs rather than lying
    with stable-looking numbers.

    A kernel that fails to parse or normalize yields an error line
    ([{"file":…,"ok":false,"error":…}]) and never aborts the other
    files. *)

val kernels : string -> string list
(** The relative paths (sorted, ['/']-separated) of every [.f] and
    [.c] file under the directory, recursively. *)

type file_report = {
  fr_file : string;
  fr_error : string option;
  fr_statements : int;
  fr_accesses : int;
  fr_pairs : int;
  fr_independent : int;
  fr_dependent : int;
  fr_inapplicable : int;
  fr_deps : int;
  fr_decided_by : (string * int) list;
  fr_loops_parallel : int;
  fr_loops_serial : int;
  fr_elapsed_ns : int64;
}
(** One analyzed kernel.  [fr_error = Some _] marks a failed file; the
    remaining counters are zero in that case. *)

val reports :
  ?mode:Dlz_engine.Analyze.mode ->
  ?cascade:Dlz_engine.Cascade.t ->
  ?budget:Dlz_base.Budget.t ->
  ?pool:Dlz_base.Pool.t ->
  ?env:Dlz_symbolic.Assume.t ->
  string ->
  file_report list
(** [reports dir] analyzes every kernel under [dir] and returns the
    structured per-file reports in sorted path order — the data [run]
    renders to NDJSON, for callers (the bench corpus arm) that want the
    verdict histogram without re-parsing JSON. *)

val run :
  ?mode:Dlz_engine.Analyze.mode ->
  ?cascade:Dlz_engine.Cascade.t ->
  ?budget:Dlz_base.Budget.t ->
  ?pool:Dlz_base.Pool.t ->
  ?env:Dlz_symbolic.Assume.t ->
  ?timings:bool ->
  string ->
  string list
(** [run dir] analyzes every kernel under [dir] and returns the NDJSON
    report lines: one per kernel in sorted order, then the summary.
    With [pool] the files are analyzed in parallel (chunk size 1 — one
    file is one unit of steal).  Each file gets a ["bulk.file"] trace
    span.  [timings] adds the [elapsed_ns] and summary [cache] fields
    described above. *)
