module Ast = Dlz_ir.Ast
module Expr = Dlz_ir.Expr
module Access = Dlz_ir.Access
module Dirvec = Dlz_deptest.Dirvec
module Classify = Dlz_deptest.Classify
module Analyze = Dlz_engine.Analyze

type error =
  | Out_of_fuel of int
  | Zero_step
  | Undeclared_array of string
  | Arity_mismatch of string
  | Subscript_out_of_range of { array : string; sub : int; lo : int; hi : int }
  | Non_constant_bound of string
  | Unknown_statement

exception Error of error

let err e = raise (Error e)

let describe = function
  | Out_of_fuel fuel -> Printf.sprintf "out of fuel (%d steps)" fuel
  | Zero_step -> "DO loop with zero step"
  | Undeclared_array a -> Printf.sprintf "undeclared array %s" a
  | Arity_mismatch a -> Printf.sprintf "subscript arity mismatch on %s" a
  | Subscript_out_of_range { array; sub; lo; hi } ->
      Printf.sprintf "subscript %d of %s out of [%d,%d]" sub array lo hi
  | Non_constant_bound a ->
      Printf.sprintf "non-constant bound on %s (missing ?syms entry?)" a
  | Unknown_statement -> "statement outside the program body"

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Dynamic.Error: " ^ describe e)
    | _ -> None)

type dep = {
  src_stmt : int;
  dst_stmt : int;
  kind : Classify.kind;
  vec : Dirvec.t;
}

type instance = { i_stmt : int; i_iter : (string * int) list }
(* Iteration vector: (loop var, value), outermost first. *)

(* Direction vector between two instances over their common loops
   (longest common prefix by variable name), from the earlier one. *)
let vec_between a b =
  let rec go = function
    | (va, xa) :: ra, (vb, xb) :: rb when String.equal va vb ->
        Dirvec.of_delta (xb - xa) :: go (ra, rb)
    | _ -> []
  in
  Array.of_list (go (a.i_iter, b.i_iter))

let same_instance a b = a.i_stmt = b.i_stmt && a.i_iter = b.i_iter

(* Static ids of the assignment statements, in program order, matching
   Access extraction.  Physical equality identifies the node at run
   time (the interpreter walks the same immutable tree). *)
let collect_assigns (p : Ast.program) =
  let acc = ref [] in
  let rec go = function
    | Ast.Assign _ as s -> acc := s :: !acc
    | Ast.Continue _ -> ()
    | Ast.Do d -> List.iter go d.body
  in
  List.iter go p.body;
  Array.of_list (List.rev !acc)

let dependences ?(syms = []) ?(fuel = 20_000_000) (p : Ast.program) =
  let assigns = collect_assigns p in
  let stmt_id s =
    let rec find i =
      if i >= Array.length assigns then err Unknown_statement
      else if assigns.(i) == s then i
      else find (i + 1)
    in
    find 0
  in
  (* Memory layout mirrors Interp: arrays with EQUIVALENCE-shared blocks. *)
  let layout = Hashtbl.create 16 in
  List.iter
    (function
      | Ast.Array a ->
          let dims =
            List.map
              (fun (d : Ast.dim) ->
                let eval e =
                  match Expr.to_const e with
                  | Some c -> c
                  | None -> (
                      try Expr.eval (fun v -> List.assoc v syms) e
                      with Not_found | Failure _ ->
                        err (Non_constant_bound a.a_name))
                in
                (eval d.lo, eval d.hi - eval d.lo + 1))
              a.a_dims
          in
          Hashtbl.replace layout a.a_name (dims, a.a_name, 0)
      | _ -> ())
    p.decls;
  List.iter
    (function
      | Ast.Common (blk, members) ->
          let base = ref 0 in
          List.iter
            (fun name ->
              match Hashtbl.find_opt layout name with
              | None -> ()
              | Some (dims, _, _) ->
                  let sz =
                    List.fold_left (fun acc (_, e) -> acc * e) 1 dims
                  in
                  Hashtbl.replace layout name (dims, "/" ^ blk, !base);
                  base := !base + sz)
            members
      | _ -> ())
    p.decls;
  List.iter
    (function
      | Ast.Equivalence groups ->
          List.iter
            (fun group ->
              match group with
              | (first, _) :: rest when Hashtbl.mem layout first ->
                  let _, blk, base = Hashtbl.find layout first in
                  List.iter
                    (fun (name, _) ->
                      match Hashtbl.find_opt layout name with
                      | Some (dims, _, _) ->
                          Hashtbl.replace layout name (dims, blk, base)
                      | None -> ())
                    rest
              | _ -> ())
            groups
      | _ -> ())
    p.decls;
  let address name subs =
    match Hashtbl.find_opt layout name with
    | None -> None
    | Some (dims, blk, base) ->
        let rec go dims subs stride acc =
          match (dims, subs) with
          | [], [] -> acc
          | (lo, extent) :: dims, s :: subs ->
              if s < lo || s >= lo + extent then
                err
                  (Subscript_out_of_range
                     { array = name; sub = s; lo; hi = lo + extent - 1 })
              else go dims subs (stride * extent) (acc + ((s - lo) * stride))
          | _ -> err (Arity_mismatch name)
        in
        Some (blk, base + go dims subs 1 0)
  in
  let scalars : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (s, v) -> Hashtbl.replace scalars s v) syms;
  List.iter
    (function
      | Ast.Parameter ps ->
          List.iter (fun (n, v) -> Hashtbl.replace scalars n v) ps
      | _ -> ())
    p.decls;
  let memory : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_write : (string * int, instance) Hashtbl.t = Hashtbl.create 64 in
  let readers : (string * int, instance list) Hashtbl.t = Hashtbl.create 64 in
  let deps = Hashtbl.create 64 in
  let dep_order = ref [] in
  let emit src dst kind =
    (* src executes first by construction; a statement instance's own
       read feeding its own write is not a dependence. *)
    if not (same_instance src dst) then begin
      let vec = vec_between src dst in
      let key = (src.i_stmt, dst.i_stmt, kind, vec) in
      if not (Hashtbl.mem deps key) then begin
        Hashtbl.replace deps key ();
        dep_order :=
          { src_stmt = src.i_stmt; dst_stmt = dst.i_stmt; kind; vec }
          :: !dep_order
      end
    end
  in
  let steps = ref 0 in
  let iter_stack = ref [] in
  let current_instance stmt =
    { i_stmt = stmt; i_iter = List.rev !iter_stack }
  in
  let rec eval me e =
    match e with
    | Expr.Const c -> c
    | Expr.Var v -> Option.value (Hashtbl.find_opt scalars v) ~default:0
    | Expr.Neg a -> -eval me a
    | Expr.Bin (op, a, b) -> (
        let x = eval me a and y = eval me b in
        match op with
        | Expr.Add -> x + y
        | Expr.Sub -> x - y
        | Expr.Mul -> x * y
        | Expr.Div -> if y = 0 then 0 else x / y)
    | Expr.Call ("%REAL", _) -> 0
    | Expr.Call (f, args) -> (
        let vals = List.map (eval me) args in
        match address f vals with
        | Some cell ->
            (match Hashtbl.find_opt last_write cell with
            | Some w -> emit w me Classify.True
            | None -> ());
            Hashtbl.replace readers cell
              (me :: Option.value (Hashtbl.find_opt readers cell) ~default:[]);
            Option.value (Hashtbl.find_opt memory cell) ~default:0
        | None ->
            List.fold_left (fun acc v -> (acc * 31) + v) (Hashtbl.hash f) vals
            land 0x7)
  in
  let rec exec s =
    incr steps;
    if !steps > fuel then err (Out_of_fuel fuel);
    match s with
    | Ast.Continue _ -> ()
    | Ast.Assign { lhs; rhs; _ } -> (
        let me = current_instance (stmt_id s) in
        let v = eval me rhs in
        let subs = List.map (eval me) lhs.subs in
        match address lhs.name subs with
        | Some cell ->
            List.iter
              (fun r -> if not (same_instance r me) then emit r me Classify.Anti)
              (Option.value (Hashtbl.find_opt readers cell) ~default:[]);
            (match Hashtbl.find_opt last_write cell with
            | Some w -> emit w me Classify.Output
            | None -> ());
            Hashtbl.replace readers cell [];
            Hashtbl.replace last_write cell me;
            Hashtbl.replace memory cell v
        | None ->
            if lhs.subs <> [] then err (Undeclared_array lhs.name)
            else Hashtbl.replace scalars lhs.name v)
    | Ast.Do d ->
        let lo = eval (current_instance 0) d.lo
        and hi = eval (current_instance 0) d.hi
        and step = eval (current_instance 0) d.step in
        if step = 0 then err Zero_step;
        let continue v = if step > 0 then v <= hi else v >= hi in
        let v = ref lo in
        while continue !v do
          Hashtbl.replace scalars d.var !v;
          iter_stack := (d.var, !v) :: !iter_stack;
          List.iter exec d.body;
          iter_stack := List.tl !iter_stack;
          v := !v + step
        done
  in
  List.iter exec p.body;
  List.rev !dep_order

let covers (s : Analyze.dep) (d : dep) =
  let s_src = s.Analyze.src.Access.stmt_id
  and s_dst = s.Analyze.dst.Access.stmt_id in
  let admits vec dyn =
    Array.length dyn <= Array.length vec
    && Array.for_all2
         (fun sv dv -> Dirvec.meet_dir sv dv <> None)
         (Array.sub vec 0 (Array.length dyn))
         dyn
  in
  (s_src = d.src_stmt && s_dst = d.dst_stmt && admits s.Analyze.dirvec d.vec)
  || s_src = d.dst_stmt && s_dst = d.src_stmt
     && admits s.Analyze.dirvec (Dirvec.reverse d.vec)

let uncovered dyn static =
  List.filter (fun d -> not (List.exists (fun s -> covers s d) static)) dyn
