(** Every program fragment that appears in the paper, as source text.

    Centralized so the experiments, the examples and the integration
    tests all analyze exactly the same programs. *)

val intro_serial : string
(** [D(i+1) = D(i)*Q]: the introduction's non-parallelizable loop. *)

val intro_parallel : string
(** [D(i) = D(i+5)*Q]: the introduction's parallelizable loop. *)

val eq1_program : string
(** [C(i+10*j) = C(i+10*j+5)]: the motivating linearized program whose
    dependence equation is (1). *)

val eq1 : unit -> Dlz_deptest.Depeq.t
(** Equation (1) itself. *)

val fig5_equation : unit -> Dlz_deptest.Depeq.t
(** The Figure-5 equation
    [100k1 - 100k2 + 10j1 - 10i2 + i1 - j2 - 110 = 0]. *)

val mhl_program : string
(** [A(10*i+j) = A(10*(i+2)+j) + 7]: the MHL91 fragment with exact
    distance vector (2, 0). *)

val fig3_program : string
(** The Figure-3 program adapted from Allen–Kennedy. *)

val ib_program : string
(** The BOAST-derived nest with the 3-loop induction variable [IB]. *)

val equivalence_2d : string
(** [A(0:9,0:9)] / [B(0:4,0:19)] aliased by EQUIVALENCE. *)

val equivalence_4d : string
(** The 4-dimensional aliasing example with [IFUN(10)] in a trailing
    subscript (partial linearization). *)

val c_pointers : string
(** The §1 C fragment traversing [d\[100\]] with pointers. *)

val symbolic_program : string
(** The §4 program [A(N*N*k+N*j+i) = A(N*N*k+j+N*i+N*N+N)]. *)

val overflow_stress_program : string
(** A loop whose subscript coefficient (2^40) times its bound (2^24)
    overflows [max_int] inside every numeric dependence test — the
    stress input for {!Dlz_engine.Cascade} overflow containment. *)
