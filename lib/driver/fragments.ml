module Depeq = Dlz_deptest.Depeq

let intro_serial =
  {|
      REAL D(0:9)
      DO 1 I = 0, 8
1     D(I+1) = D(I)*Q
      END
|}

let intro_parallel =
  {|
      REAL D(0:9)
      DO 1 I = 0, 4
1     D(I) = D(I+5)*Q
      END
|}

let eq1_program =
  {|
      REAL C(0:99)
      DO 1 I = 0, 4
      DO 1 J = 0, 9
1     C(I+10*J) = C(I+10*J+5)
      END
|}

let eq1 () =
  Depeq.make (-5)
    [
      (1, Depeq.var ~side:`Src ~level:1 "i1" 4);
      (10, Depeq.var ~side:`Src ~level:2 "j1" 9);
      (-1, Depeq.var ~side:`Dst ~level:1 "i2" 4);
      (-10, Depeq.var ~side:`Dst ~level:2 "j2" 9);
    ]

let fig5_equation () =
  Depeq.make (-110)
    [
      (100, Depeq.var ~side:`Src ~level:3 "k1" 8);
      (-100, Depeq.var ~side:`Dst ~level:3 "k2" 8);
      (10, Depeq.var ~side:`Src ~level:2 "j1" 9);
      (-10, Depeq.var ~side:`Dst ~level:1 "i2" 8);
      (1, Depeq.var ~side:`Src ~level:1 "i1" 8);
      (-1, Depeq.var ~side:`Dst ~level:2 "j2" 9);
    ]

let mhl_program =
  {|
      REAL A(0:110)
      DO 10 I = 1, 8
      DO 10 J = 1, 10
10    A(10*I+J) = A(10*(I+2)+J) + 7
      END
|}

let fig3_program =
  {|
      REAL X(200), Y(200), B(100)
      REAL A(100,100), C(100,100)
      DO 30 I = 1, 100
      X(I) = Y(I) + 10
      DO 20 J = 1, 99
      B(J) = A(J,20)
      DO 10 K = 1, 100
      A(J+1,K) = B(J) + C(J,K)
10    CONTINUE
      Y(I+J) = A(J+1,20)
20    CONTINUE
30    CONTINUE
      END
|}

let ib_program =
  {|
      REAL B(0:99999), C(0:9)
      INTEGER IB
      IB = -1
      DO 1 I = 0, II-1
      DO 1 J = 0, JJ-1
      DO 1 K = 0, KK-1
      IB = IB + 1
      C(J) = C(J) + 1
1     B(IB) = B(IB) + Q
      END
|}

let equivalence_2d =
  {|
      REAL A(0:9,0:9)
      REAL B(0:4,0:19)
      EQUIVALENCE (A, B)
      DO 1 I = 0, 4
      DO 1 J = 0, 9
1     A(I,J) = B(I,2*J+1)
      END
|}

let equivalence_4d =
  {|
      REAL A(0:9,0:9,0:9,0:9)
      REAL B(0:4,0:19,0:9,0:9)
      EQUIVALENCE (A, B)
      DO 1 I = 0, 4
      DO 1 J = 0, 9
      DO 1 K = 0, 9
      DO 1 L = 0, 9
1     A(I,J,K,IFUN(10)) = B(I,2*J+1,K,L)
      END
|}

let c_pointers =
  {|
float d[100];
float *i, *j;
for (j = d; j <= d + 90; j += 10)
  for (i = j; i < j + 5; i++)
    *i = *(i + 5);
|}

let symbolic_program =
  {|
      REAL A(0:N*N*N-1)
      DO 1 I = 0, N-2
      DO 1 J = 0, N-1
      DO 1 K = 0, N-2
1     A(N*N*K+N*J+I) = A(N*N*K+J+N*I+N*N+N)
      END
|}

(* Coefficient 2^40 against an upper bound of 2^24: the Banerjee bound
   product (and most other per-term arithmetic) lands past
   [max_int = 2^62 - 1], so every numeric strategy hits
   [Intx.Overflow] while {e solving} — parsing, normalization and
   cache-key construction all stay within range.  Exercises the
   engine's overflow containment. *)
let overflow_stress_program =
  {|
      REAL A(100)
      DO 10 I = 1, 16777216
10    A(1099511627776*I+1) = A(1099511627776*I)
      END
|}
