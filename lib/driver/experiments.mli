(** The paper's experiments, E1–E8 (see DESIGN.md §3).

    Each [eN] renders a plain-text report reproducing the corresponding
    table/figure/claim; the [*_rows] variants expose the raw data the
    test suite asserts on. *)

module Verdict = Dlz_deptest.Verdict

val e1_rows : unit -> (string * Verdict.t) list
(** Verdict of every implemented test on equation (1), in presentation
    order: the classic tests return [dependent]/[inapplicable];
    tightened FM, delinearization and the exact solver prove
    independence. *)

val e1 : unit -> string

val e2 : unit -> string
(** Figure 1 on the synthetic corpus. *)

val e3_rows : ?jobs:int -> ?chunk:int -> unit -> (string * string * string) list
(** Figure 3's dependence table: (pair, direction vector,
    distance-direction vector). *)

val e3 : ?jobs:int -> ?chunk:int -> unit -> string

val e4 : unit -> string
(** Figure 5: the per-iteration trace of the algorithm. *)

val e5 : ?jobs:int -> ?chunk:int -> unit -> string
(** The MHL91 distance-vector claim: exact (2, 0). *)

val e5_distances : unit -> (int * int) list

val e6 : unit -> string
(** Symbolic delinearization (§4): trace, recovered 3-D program, and
    numeric cross-check for sampled [N]. *)

val e7 : ?jobs:int -> ?chunk:int -> unit -> string
(** Induction-variable and aliasing rewrites end-to-end, with the
    vectorizer's parallelization verdicts. *)

val e8 : unit -> string
(** Efficiency: cost and precision of delinearization vs the baseline
    tests on the linearized family (quick CLI version; the calibrated
    numbers come from [bench/main.exe]). *)

val all : ?jobs:int -> ?chunk:int -> unit -> (string * string) list
(** [(id, report)] for every experiment.  [jobs]/[chunk] parallelize
    the whole-program analyses inside the experiments that have one
    (E3/E5/E7); every report is identical for any job count or chunk
    size. *)

val run : ?jobs:int -> ?chunk:int -> string -> string option
(** [run "e3"] renders one experiment by id (case-insensitive). *)
