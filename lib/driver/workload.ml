module Depeq = Dlz_deptest.Depeq
module Prng = Dlz_base.Prng

let paper_family ~depth ~extent ~shifted =
  if depth < 1 then invalid_arg "Workload.paper_family: depth must be >= 1";
  if extent < 4 || extent mod 2 <> 0 then
    invalid_arg "Workload.paper_family: extent must be even and >= 4";
  let ub = (extent / 2) - 1 in
  let terms = ref [] in
  let stride = ref 1 in
  for lvl = 1 to depth do
    let s = !stride in
    terms :=
      (s, Depeq.var ~side:`Src ~level:lvl (Printf.sprintf "a%d" lvl) ub)
      :: (-s, Depeq.var ~side:`Dst ~level:lvl (Printf.sprintf "b%d" lvl) ub)
      :: !terms;
    stride := s * extent
  done;
  let c0 = if shifted then -(extent / 2) else 0 in
  Depeq.make c0 (List.rev !terms)

(* A program-level rendering of [paper_family]: a depth-[d] nest over a
   hand-linearized array with a shifted read, the shape the
   delinearization strategy exists for.  Shared by the bench harness
   (cache/parallel workloads) and the parallel test suite. *)
let family_program ~depth ~extent =
  if depth < 1 then invalid_arg "Workload.family_program: depth must be >= 1";
  if extent < 2 then invalid_arg "Workload.family_program: extent must be >= 2";
  let buf = Buffer.create 256 in
  let size = int_of_float (float_of_int extent ** float_of_int depth) in
  Buffer.add_string buf (Printf.sprintf "      DIMENSION A(%d)\n" (size + 1));
  for k = 1 to depth do
    Buffer.add_string buf
      (Printf.sprintf "%sDO I%d = 0, %d\n"
         (String.make (4 + (2 * k)) ' ')
         k (extent - 1))
  done;
  let sub =
    String.concat "+"
      (List.map
         (fun k ->
           let stride =
             int_of_float (float_of_int extent ** float_of_int (depth - k))
           in
           if stride = 1 then Printf.sprintf "I%d" k
           else Printf.sprintf "%d*I%d" stride k)
         (List.init depth (fun i -> i + 1)))
  in
  Buffer.add_string buf
    (Printf.sprintf "%sA(%s) = A(%s+1) + 1\n"
       (String.make (6 + (2 * depth)) ' ')
       sub sub);
  for k = depth downto 1 do
    Buffer.add_string buf
      (Printf.sprintf "%sENDDO\n" (String.make (4 + (2 * k)) ' '))
  done;
  Buffer.contents buf

let random g ~nvars ~coeffs ~max_ub =
  let terms =
    List.init nvars (fun i ->
        let c = Prng.choose g coeffs in
        let ub = Prng.int_in g 0 max_ub in
        let side = if i mod 2 = 0 then `Src else `Dst in
        (c, Depeq.var ~side ~level:((i / 2) + 1) (Printf.sprintf "z%d" i) ub))
  in
  let c0 = Prng.int_in g (-50) 50 in
  Depeq.make c0 terms

let random_linearized g ~depth =
  let terms = ref [] in
  let c0 = ref 0 in
  let stride = ref 1 in
  for lvl = 1 to depth do
    let extent = 2 * Prng.int_in g 2 6 in
    let ub = (extent / 2) - 1 in
    let s = !stride in
    terms :=
      (s, Depeq.var ~side:`Src ~level:lvl (Printf.sprintf "a%d" lvl) ub)
      :: (-s, Depeq.var ~side:`Dst ~level:lvl (Printf.sprintf "b%d" lvl) ub)
      :: !terms;
    (* A per-dimension displacement, sometimes out of range. *)
    let d = Prng.int_in g (-extent / 2) (extent / 2) in
    c0 := !c0 + (d * s);
    stride := s * extent
  done;
  Depeq.make !c0 (List.rev !terms)
