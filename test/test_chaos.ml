(* Containment invariants of the fault-injected engine (lib/engine):
   with the chaos harness striking at strategy boundaries, analysis
   must still terminate, verdicts may only degrade toward "dependent",
   parallel output must equal serial output, and the stats degradation
   counters must account for every injected fault exactly.  Also the
   non-injected fault paths: Intx.Overflow from near-max_int
   coefficients and Budget exhaustion from tiny fuel.

   This binary is meaningful both ways: under `dune runtest` it
   configures chaos explicitly per test (the environment is clean);
   under the @chaos-ci alias DLZ_CHAOS is set globally, which the
   explicit configurations simply override. *)

module Budget = Dlz_base.Budget
module Pool = Dlz_base.Pool
module Verdict = Dlz_deptest.Verdict
module Access = Dlz_ir.Access
module F77 = Dlz_frontend.F77_parser
module Pipeline = Dlz_passes.Pipeline
module Fragments = Dlz_driver.Fragments
module Workload = Dlz_driver.Workload
module Progen = Dlz_driver.Progen
module Prng = Dlz_base.Prng
module Engine = Dlz_engine.Engine
module Strategy = Dlz_engine.Strategy
module Analyze = Dlz_engine.Analyze
module Cascade = Dlz_engine.Cascade
module Chaos = Dlz_engine.Chaos
module Query = Dlz_engine.Query
module Stats = Dlz_engine.Stats

let test_jobs =
  match Sys.getenv_opt "DLZ_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with Failure _ -> 4)
  | None -> 4

let prepare src = Pipeline.prepare_program (F77.parse src)

let with_chaos chaos f =
  let saved = Chaos.current () in
  Chaos.set_current chaos;
  Fun.protect ~finally:(fun () -> Chaos.set_current saved) f

(* A mixed workload with plenty of pairs: paper fragments plus random
   programs.  Every test re-derives problems from here. *)
let workload_programs () =
  List.map prepare
    [
      Fragments.mhl_program;
      Fragments.fig3_program;
      Fragments.equivalence_2d;
      Fragments.symbolic_program;
      Workload.family_program ~depth:3 ~extent:6;
    ]
  @ List.init 8 (fun seed -> Progen.random (Prng.create (Int64.of_int seed)))

let problems_of_prog prog =
  let accs, env = Access.of_program prog in
  ( List.map (fun (pr : Engine.pair) -> pr.Engine.problem) (Engine.pairs accs),
    env )

(* --- configuration parsing ------------------------------------------------ *)

let test_of_string_roundtrip () =
  (match Chaos.of_string "42:0.1" with
  | Error e -> Alcotest.failf "42:0.1 rejected: %s" e
  | Ok c ->
      Alcotest.(check string) "round-trips" "42:0.1" (Chaos.to_string c);
      Alcotest.(check int64) "seed" 42L (Chaos.seed c);
      Alcotest.(check (float 1e-9)) "rate" 0.1 (Chaos.rate c));
  match Chaos.of_string "-7:1" with
  | Error e -> Alcotest.failf "-7:1 rejected: %s" e
  | Ok c -> Alcotest.(check int64) "negative seed" (-7L) (Chaos.seed c)

let test_of_string_rejects_garbage () =
  List.iter
    (fun s ->
      match Chaos.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ ""; "42"; ":0.1"; "x:0.1"; "42:"; "42:x"; "42:0.1:3" ]

let test_rate_clamped () =
  Alcotest.(check (float 1e-9)) "above 1" 1.0 (Chaos.rate (Chaos.make ~seed:1L ~rate:7.0));
  Alcotest.(check (float 1e-9)) "below 0" 0.0 (Chaos.rate (Chaos.make ~seed:1L ~rate:(-1.0)))

(* --- overflow containment ------------------------------------------------- *)

(* Overflow provenance is asserted exactly, so injection (which would
   pre-empt the strategy with a [chaos:*] reason) is switched off. *)
let test_overflow_contained_every_mode () =
  with_chaos None @@ fun () ->
  let prog = prepare Fragments.overflow_stress_program in
  List.iter
    (fun mode ->
      let serial = Analyze.deps_of_program ~mode ~jobs:1 prog in
      let par = Analyze.deps_of_program ~mode ~jobs:test_jobs prog in
      Alcotest.(check bool) "serial = parallel" true (serial = par);
      (* The loop-carried self dependence survives in every mode: a
         faulted strategy degrades to dependent, never drops the row. *)
      Alcotest.(check bool)
        "self output dependence reported" true
        (List.exists
           (fun (d : Analyze.dep) -> d.Analyze.src.Access.stmt_id = d.Analyze.dst.Access.stmt_id)
           serial))
    [ Analyze.Delinearize; Analyze.Classic; Analyze.ExactMode ];
  (* Classic runs GCD+Banerjee on the unbroken 2^40-coefficient
     equations, so its rows must carry overflow provenance. *)
  let classic = Analyze.deps_of_program ~mode:Analyze.Classic ~jobs:1 prog in
  Alcotest.(check bool)
    "classic rows degraded by overflow" true
    (List.for_all
       (fun (d : Analyze.dep) ->
         List.exists
           (fun (_, reason) ->
             String.length reason >= 9 && String.sub reason 0 9 = "overflow:")
           d.Analyze.degraded)
       classic)

let test_overflow_counted_in_stats () =
  with_chaos None @@ fun () ->
  let prog = prepare Fragments.overflow_stress_program in
  let accs, env = Access.of_program prog in
  let stats = Stats.create () in
  let cache = Query.create_cache () in
  ignore
    (Engine.query_all ~cascade:Cascade.classic ~stats ~cache ~env accs);
  Alcotest.(check bool) "degradations recorded" true (Stats.degradations stats > 0);
  List.iter
    (fun ((_, reason), _) ->
      Alcotest.(check string) "reason is overflow:mul" "overflow:mul" reason)
    (Stats.degradation_rows stats)

(* --- budget containment --------------------------------------------------- *)

let test_tiny_fuel_terminates_conservatively () =
  List.iter
    (fun prog ->
      let budget = Budget.create ~fuel:5 () in
      let deps = Analyze.deps_of_program ~budget ~jobs:1 prog in
      (* Clean rows on the same program, for comparison. *)
      let clean = Analyze.deps_of_program ~jobs:1 prog in
      (* Terminated (we are here), and no dependence disappeared: a
         starved strategy may only add conservative rows, never prove
         independence. *)
      List.iter
        (fun (c : Analyze.dep) ->
          Alcotest.(check bool)
            "every clean dependence survives starvation" true
            (List.exists
               (fun (d : Analyze.dep) ->
                 d.Analyze.src.Access.stmt_id = c.Analyze.src.Access.stmt_id
                 && d.Analyze.dst.Access.stmt_id = c.Analyze.dst.Access.stmt_id)
               deps))
        clean)
    (workload_programs ())

let test_exhausted_budget_degrades_without_running () =
  let prog = prepare Fragments.mhl_program in
  let ps, env = problems_of_prog prog in
  let budget = Budget.create ~fuel:0 () in
  let stats = Stats.create () in
  List.iter
    (fun p ->
      let r =
        with_chaos None (fun () ->
            Cascade.run ~stats ~budget ~env Cascade.delin p)
      in
      Alcotest.(check bool)
        "verdict conservative" true
        (r.Strategy.verdict <> Verdict.Independent);
      Alcotest.(check bool)
        "budget provenance attached" true
        (List.exists (fun (_, reason) -> reason = "budget:fuel")
           r.Strategy.degraded))
    ps;
  Alcotest.(check bool)
    "short-circuit: one degradation per strategy per query" true
    (Stats.degradations stats <= List.length ps * List.length Cascade.delin.Cascade.steps)

(* --- chaos: termination and conservativeness ------------------------------ *)

let chaos_cfg seed = Chaos.make ~seed ~rate:0.3

let test_chaos_verdicts_only_degrade () =
  List.iter
    (fun prog ->
      let ps, env = problems_of_prog prog in
      let clean_cache = Query.create_cache () in
      let chaos_cache = Query.create_cache () in
      let stats = Stats.create () in
      let chaos = chaos_cfg 99L in
      List.iter
        (fun p ->
          let clean =
            with_chaos None (fun () ->
                Engine.query ~stats ~cache:clean_cache ~env p)
          in
          let chaotic =
            Engine.query ~stats ~cache:chaos_cache ~chaos ~env p
          in
          (* Independence under injection must be backed by a clean
             proof: faults only ever move verdicts toward dependent. *)
          if chaotic.Strategy.verdict = Verdict.Independent then
            Alcotest.(check bool)
              "chaos Independent implies clean Independent" true
              (clean.Strategy.verdict = Verdict.Independent))
        ps)
    (workload_programs ())

let test_chaos_parallel_equals_serial () =
  List.iter
    (fun seed ->
      let run jobs =
        with_chaos
          (Some (chaos_cfg seed))
          (fun () ->
            Engine.reset_metrics ();
            List.concat_map
              (fun prog -> Analyze.deps_of_program ~jobs prog)
              (workload_programs ()))
      in
      let serial = run 1 in
      let par = run test_jobs in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: jobs %d = jobs 1" seed test_jobs)
        true (serial = par))
    [ 7L; 1234L ]

(* --- chaos: exact fault accounting ---------------------------------------- *)

let chaos_reasons =
  [
    "chaos:raise"; "chaos:unknown"; "overflow:chaos"; "budget:chaos";
    "div0:chaos";
  ]

let chaos_attributed stats =
  List.fold_left
    (fun acc ((_, reason), n) ->
      if List.mem reason chaos_reasons then acc + n else acc)
    0
    (Stats.degradation_rows stats)

let test_every_strike_accounted () =
  let chaos = chaos_cfg 2024L in
  let stats = Stats.create () in
  let cache = Query.create_cache () in
  List.iter
    (fun prog ->
      let ps, env = problems_of_prog prog in
      List.iter
        (fun p -> ignore (Engine.query ~stats ~cache ~chaos ~env p))
        ps)
    (workload_programs ());
  let strikes = Chaos.strikes chaos in
  Alcotest.(check bool) "the seed actually struck" true (strikes > 0);
  Alcotest.(check int)
    "stats degradations = injected faults" strikes (chaos_attributed stats)

let test_accounting_survives_domains () =
  let chaos = chaos_cfg 4242L in
  let stats = Stats.create () in
  let cache = Query.create_cache () in
  List.iter
    (fun prog ->
      let accs, env = Access.of_program prog in
      Pool.with_pool ~domains:test_jobs (fun pool ->
          ignore (Engine.query_all ~stats ~cache ~chaos ~pool ~env accs)))
    (workload_programs ());
  let strikes = Chaos.strikes chaos in
  Alcotest.(check bool) "struck" true (strikes > 0);
  Alcotest.(check int)
    "atomic counters agree across domains" strikes (chaos_attributed stats)

let test_strike_in_stolen_chunk () =
  (* Chunks of one query dealt across the work-stealing deques, with
     injection striking mid-run: a strike that fires inside a chunk
     some other domain stole must still cost exactly one degraded
     answer — [strikes = chaos-attributed degradations] — and the
     output must stay the serial one.  Stealing is scheduling-
     dependent, so the run retries until the steal counter moves (each
     attempt asserting the accounting regardless). *)
  let progs = workload_programs () in
  let serial =
    with_chaos None @@ fun () ->
    List.map
      (fun prog ->
        let accs, env = Access.of_program prog in
        List.map
          (fun (_, (r : Strategy.result)) -> r.Strategy.verdict)
          (Engine.query_all ~stats:(Stats.create ())
             ~cache:(Query.create_cache ()) ~env accs))
      progs
  in
  let rec attempt k =
    Pool.reset_metrics ();
    let chaos = chaos_cfg (Int64.of_int (9000 + k)) in
    let stats = Stats.create () in
    let cache = Query.create_cache () in
    let par =
      List.map
        (fun prog ->
          let accs, env = Access.of_program prog in
          Pool.with_pool ~domains:test_jobs (fun pool ->
              List.map
                (fun (_, (r : Strategy.result)) -> r.Strategy.verdict)
                (Engine.query_all ~stats ~cache ~chaos ~pool ~chunk:1 ~env
                   accs)))
        progs
    in
    let strikes = Chaos.strikes chaos in
    Alcotest.(check int)
      "one degradation per strike, even in stolen chunks" strikes
      (chaos_attributed stats);
    (* Degraded-to-conservative only: never a dropped or extra row. *)
    List.iter2
      (fun s p ->
        Alcotest.(check int) "row counts match serial" (List.length s)
          (List.length p))
      serial par;
    if (Pool.steals () = 0 || strikes = 0) && k < 20 then attempt (k + 1)
    else (Pool.steals (), strikes)
  in
  let steals, strikes = attempt 1 in
  Alcotest.(check bool) "chunks were stolen" true (steals > 0);
  Alcotest.(check bool) "the seed struck" true (strikes > 0)

(* --- chaos: zero-divisor strikes ------------------------------------------ *)

let test_div0_strikes_contained () =
  (* Injected [Intx.Div_by_zero] (one of the five strike kinds) must be
     contained as a ["div0:chaos"] degradation.  Before the division
     helpers got a typed error, the raw [Stdlib.Division_by_zero] sat
     outside the fault taxonomy and a strike killed the whole query
     instead of degrading it. *)
  let chaos = chaos_cfg 77L in
  let stats = Stats.create () in
  let cache = Query.create_cache () in
  List.iter
    (fun prog ->
      let ps, env = problems_of_prog prog in
      List.iter
        (fun p ->
          (* Reaching the verdict at all is the containment check: an
             uncontained strike raises out of [query]. *)
          let r = Engine.query ~stats ~cache ~chaos ~env p in
          ignore r.Strategy.verdict)
        ps)
    (workload_programs ());
  Alcotest.(check bool) "the seed struck" true (Chaos.strikes chaos > 0);
  let div0_rows =
    List.fold_left
      (fun acc ((_, reason), n) -> if reason = "div0:chaos" then acc + n else acc)
      0
      (Stats.degradation_rows stats)
  in
  Alcotest.(check bool)
    "at least one div0 strike degraded, none escaped" true (div0_rows > 0)

let () =
  Alcotest.run "chaos"
    [
      ( "config",
        [
          Alcotest.test_case "of_string round-trips" `Quick
            test_of_string_roundtrip;
          Alcotest.test_case "of_string rejects garbage" `Quick
            test_of_string_rejects_garbage;
          Alcotest.test_case "rate clamped to [0,1]" `Quick test_rate_clamped;
        ] );
      ( "overflow",
        [
          Alcotest.test_case "contained in every mode, serial and parallel"
            `Quick test_overflow_contained_every_mode;
          Alcotest.test_case "counted in stats" `Quick
            test_overflow_counted_in_stats;
        ] );
      ( "budget",
        [
          Alcotest.test_case "tiny fuel terminates conservatively" `Quick
            test_tiny_fuel_terminates_conservatively;
          Alcotest.test_case "exhausted budget short-circuits" `Quick
            test_exhausted_budget_degrades_without_running;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "verdicts only degrade" `Quick
            test_chaos_verdicts_only_degrade;
          Alcotest.test_case "jobs N = jobs 1 under injection" `Quick
            test_chaos_parallel_equals_serial;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "every strike is one degradation" `Quick
            test_every_strike_accounted;
          Alcotest.test_case "strike in a stolen chunk" `Quick
            test_strike_in_stolen_chunk;
          Alcotest.test_case "accounting survives domains" `Quick
            test_accounting_survives_domains;
        ] );
      ( "div0",
        [
          Alcotest.test_case "zero-divisor strikes degrade, not crash" `Quick
            test_div0_strikes_contained;
        ] );
    ]
