(* Tests for dlz_vec: SCC computation, dependence-graph construction and
   the Allen-Kennedy codegen, including safety of vectorized levels. *)

module Scc = Dlz_vec.Scc
module Depgraph = Dlz_vec.Depgraph
module Codegen = Dlz_vec.Codegen
module Analyze = Dlz_engine.Analyze
module Dirvec = Dlz_deptest.Dirvec
module F77 = Dlz_frontend.F77_parser
module Pipeline = Dlz_passes.Pipeline

let prepare src = Pipeline.prepare_program (F77.parse src)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- SCC ---------------------------------------------------------------- *)

let scc_units =
  [
    Alcotest.test_case "chain" `Quick (fun () ->
        let comps = Scc.compute ~n:3 ~edges:[ (0, 1); (1, 2) ] in
        Alcotest.(check (list (list int))) "singletons in order"
          [ [ 0 ]; [ 1 ]; [ 2 ] ] comps);
    Alcotest.test_case "cycle" `Quick (fun () ->
        let comps = Scc.compute ~n:3 ~edges:[ (0, 1); (1, 0); (1, 2) ] in
        Alcotest.(check (list (list int))) "cycle then sink"
          [ [ 0; 1 ]; [ 2 ] ] comps);
    Alcotest.test_case "self loop is cyclic" `Quick (fun () ->
        Alcotest.(check bool) "cyclic" true
          (Scc.is_cyclic ~edges:[ (0, 0) ] [ 0 ]);
        Alcotest.(check bool) "acyclic" false (Scc.is_cyclic ~edges:[] [ 0 ]);
        Alcotest.(check bool) "multi-node cyclic" true
          (Scc.is_cyclic ~edges:[] [ 0; 1 ]));
    Alcotest.test_case "topological order respects edges" `Quick (fun () ->
        let edges = [ (3, 1); (1, 0); (3, 0); (2, 3) ] in
        let comps = Scc.compute ~n:4 ~edges in
        let pos =
          List.concat_map Fun.id comps
          |> List.mapi (fun i v -> (v, i))
        in
        List.iter
          (fun (u, v) ->
            if List.assoc u pos > List.assoc v pos then
              Alcotest.failf "edge %d->%d out of order" u v)
          edges);
  ]

(* --- dependence graph ------------------------------------------------------ *)

let graph_units =
  [
    Alcotest.test_case "serial loop has a level-1 edge" `Quick (fun () ->
        let g =
          Depgraph.build
            (prepare Dlz_driver.Fragments.intro_serial)
        in
        Alcotest.(check bool) "some edge at level 1" true
          (List.exists
             (fun (e : Depgraph.edge) -> e.Depgraph.e_level = 1)
             g.Depgraph.edges));
    Alcotest.test_case "parallel loop has no edges" `Quick (fun () ->
        let g =
          Depgraph.build (prepare Dlz_driver.Fragments.intro_parallel)
        in
        Alcotest.(check int) "empty" 0 (List.length g.Depgraph.edges));
    Alcotest.test_case "edges oriented source-first" `Quick (fun () ->
        let g = Depgraph.build (prepare Dlz_driver.Fragments.fig3_program) in
        (* every edge's vector is plausible after orientation *)
        List.iter
          (fun (e : Depgraph.edge) ->
            if not (Dirvec.plausible e.Depgraph.e_vec) then
              Alcotest.failf "implausible oriented edge %s"
                (Dirvec.to_string e.Depgraph.e_vec))
          g.Depgraph.edges);
    Alcotest.test_case "star vectors decompose into basic edges" `Quick
      (fun () ->
        (* C(J) self dependence within a 3-deep nest must yield edges at
           levels 1 and 3 (carried by I and K), not a bogus level-1-only
           edge. *)
        let g = Depgraph.build (prepare Dlz_driver.Fragments.ib_program) in
        let c_edges =
          List.filter
            (fun (e : Depgraph.edge) ->
              g.Depgraph.stmt_names.(e.Depgraph.e_src) = "S1"
              && e.Depgraph.e_src = e.Depgraph.e_dst)
            g.Depgraph.edges
        in
        let levels =
          List.sort_uniq compare
            (List.map (fun (e : Depgraph.edge) -> e.Depgraph.e_level) c_edges)
        in
        Alcotest.(check (list int)) "levels 1 and 3" [ 1; 3 ] levels);
  ]

(* --- codegen ---------------------------------------------------------------- *)

let codegen_units =
  [
    Alcotest.test_case "parallel loop vectorizes" `Quick (fun () ->
        let r = Codegen.run (prepare Dlz_driver.Fragments.intro_parallel) in
        Alcotest.(check bool) "array syntax" true
          (contains r.Codegen.text "D(0:4)");
        Alcotest.(check bool) "no DO" false (contains r.Codegen.text "DO "));
    Alcotest.test_case "serial loop stays a DO" `Quick (fun () ->
        let r = Codegen.run (prepare Dlz_driver.Fragments.intro_serial) in
        Alcotest.(check bool) "has DO" true (contains r.Codegen.text "DO ");
        match r.Codegen.plans with
        | [ p ] ->
            Alcotest.(check (list int)) "seq level 1" [ 1 ] p.Codegen.seq_levels
        | _ -> Alcotest.fail "one statement expected");
    Alcotest.test_case "fig3 distributes" `Quick (fun () ->
        let r = Codegen.run (prepare Dlz_driver.Fragments.fig3_program) in
        (* X(i) statement is independent of the i-loop cycle: vectorized. *)
        let s1 = List.find (fun p -> p.Codegen.stmt_name = "S1") r.Codegen.plans in
        Alcotest.(check (list int)) "S1 vectorized" [ 1 ] s1.Codegen.vec_levels;
        (* A's k loop is vectorizable. *)
        let s3 = List.find (fun p -> p.Codegen.stmt_name = "S3") r.Codegen.plans in
        Alcotest.(check bool) "S3 vectorizes k" true
          (List.mem 3 s3.Codegen.vec_levels);
        Alcotest.(check bool) "S3 sequential at 1" true
          (List.mem 1 s3.Codegen.seq_levels));
    Alcotest.test_case "delinearization unlocks the IB statement" `Quick
      (fun () ->
        let prog = prepare Dlz_driver.Fragments.ib_program in
        let delin = Codegen.run ~mode:Analyze.Delinearize prog in
        let classic = Codegen.run ~mode:Analyze.Classic prog in
        let plan_of r name =
          List.find (fun p -> p.Codegen.stmt_name = name) r.Codegen.plans
        in
        Alcotest.(check (list int)) "delin: B fully vector" [ 1; 2; 3 ]
          (plan_of delin "S2").Codegen.vec_levels;
        Alcotest.(check (list int)) "classic: B fully sequential" [ 1; 2; 3 ]
          (plan_of classic "S2").Codegen.seq_levels);
    Alcotest.test_case "vectorized levels carry no self dependence" `Quick
      (fun () ->
        (* safety: for every statement and vectorized level, the graph has
           no self edge carried at that level. *)
        List.iter
          (fun src ->
            let r = Codegen.run (prepare src) in
            List.iter
              (fun (p : Codegen.plan) ->
                List.iter
                  (fun lvl ->
                    if
                      List.exists
                        (fun (e : Depgraph.edge) ->
                          e.Depgraph.e_src = p.Codegen.stmt_id
                          && e.Depgraph.e_dst = p.Codegen.stmt_id
                          && e.Depgraph.e_level = lvl)
                        r.Codegen.graph.Depgraph.edges
                    then
                      Alcotest.failf "%s vectorized at carried level %d"
                        p.Codegen.stmt_name lvl)
                  p.Codegen.vec_levels)
              r.Codegen.plans)
          [
            Dlz_driver.Fragments.intro_serial;
            Dlz_driver.Fragments.intro_parallel;
            Dlz_driver.Fragments.eq1_program;
            Dlz_driver.Fragments.fig3_program;
            Dlz_driver.Fragments.mhl_program;
          ]);
    Alcotest.test_case "strided section rendering" `Quick (fun () ->
        let r = Codegen.run (prepare Dlz_driver.Fragments.eq1_program) in
        (* C(i + 10*j) with both loops vectorized falls back to the
           substitution rendering with both ranges visible. *)
        Alcotest.(check bool) "both ranges shown" true
          (contains r.Codegen.text "(0:4)" && contains r.Codegen.text "(0:9)"));
  ]

(* --- per-loop parallelism report ------------------------------------------------ *)

module Parallel = Dlz_vec.Parallel

let parallel_units =
  [
    Alcotest.test_case "serial vs parallel intro loops" `Quick (fun () ->
        let r1 = Parallel.report (prepare Dlz_driver.Fragments.intro_serial) in
        (match r1 with
        | [ l ] ->
            Alcotest.(check bool) "serial" false l.Parallel.lr_parallel;
            Alcotest.(check bool) "carried > 0" true (l.Parallel.lr_carried > 0)
        | _ -> Alcotest.fail "one loop expected");
        let r2 =
          Parallel.report (prepare Dlz_driver.Fragments.intro_parallel)
        in
        match r2 with
        | [ l ] -> Alcotest.(check bool) "parallel" true l.Parallel.lr_parallel
        | _ -> Alcotest.fail "one loop expected");
    Alcotest.test_case "eq1 nest fully parallel" `Quick (fun () ->
        let r = Parallel.report (prepare Dlz_driver.Fragments.eq1_program) in
        Alcotest.(check int) "two loops" 2 (List.length r);
        Alcotest.(check bool) "fully parallel" true (Parallel.fully_parallel r));
    Alcotest.test_case "ib nest: delin parallel, classic not" `Quick (fun () ->
        let prog = prepare Dlz_driver.Fragments.ib_program in
        let delin = Parallel.report ~mode:Analyze.Delinearize prog in
        let classic = Parallel.report ~mode:Analyze.Classic prog in
        (* The C(J) recurrence keeps I and K serial either way; the
           point is the J loop (and B's contribution). *)
        let j_of r =
          List.find (fun l -> l.Parallel.lr_var = "J") r
        in
        Alcotest.(check bool) "J parallel with delin" true
          (j_of delin).Parallel.lr_parallel;
        Alcotest.(check bool) "J serial with classic" false
          (j_of classic).Parallel.lr_parallel);
    Alcotest.test_case "interchange hints on the C(J) recurrence" `Quick
      (fun () ->
        (* C(J) = C(J)+1 in an I,J,K nest carries at levels 1 and 3;
           basic AK keeps the J loop sequential because the level-3 self
           edge keeps the component cyclic at level 2 — but nothing is
           carried at level 2 itself, so it is flagged interchangeable. *)
        let prog =
          prepare
            "      REAL C(0:9)\n\
            \      DO I = 0, 4\n\
            \      DO J = 0, 9\n\
            \      DO K = 0, 3\n\
            \      C(J) = C(J) + 1\n\
            \      ENDDO\n\
            \      ENDDO\n\
            \      ENDDO\n\
            \      END\n"
        in
        let r = Codegen.run prog in
        match r.Codegen.plans with
        | [ p ] ->
            Alcotest.(check bool) "level 2 flagged interchangeable" true
              (List.mem 2 p.Codegen.interchangeable)
        | _ -> Alcotest.fail "one statement expected");
  ]

let () =
  Alcotest.run "dlz_vec"
    [
      ("scc", scc_units);
      ("graph", graph_units);
      ("codegen", codegen_units);
      ("parallel", parallel_units);
    ]
