(* End-to-end soundness against trace-based (dynamic) ground truth:
   every dependence that actually happens at run time must be covered by
   a statically reported one, on the paper's fragments and on random
   generated programs; and the vectorizer must never vectorize a level
   that dynamically carries a self dependence. *)

module Dynamic = Dlz_driver.Dynamic
module Progen = Dlz_driver.Progen
module Fragments = Dlz_driver.Fragments
module Analyze = Dlz_engine.Analyze
module Codegen = Dlz_vec.Codegen
module Dirvec = Dlz_deptest.Dirvec
module Rangevec = Dlz_deptest.Rangevec
module Prng = Dlz_base.Prng
module Ast = Dlz_ir.Ast

let prepare src =
  Dlz_passes.Pipeline.prepare_program (Dlz_frontend.F77_parser.parse src)

let coverage_case name ?syms src =
  Alcotest.test_case name `Quick (fun () ->
      let prog = prepare src in
      let dyn = Dynamic.dependences ?syms prog in
      let static = Analyze.deps_of_program prog in
      match Dynamic.uncovered dyn static with
      | [] -> ()
      | u ->
          Alcotest.failf "%d uncovered dynamic dependences, first S%d->S%d %s"
            (List.length u)
            ((List.hd u).Dynamic.src_stmt + 1)
            ((List.hd u).Dynamic.dst_stmt + 1)
            (Dirvec.to_string (List.hd u).Dynamic.vec))

let coverage_units_prog name prog =
  Alcotest.test_case name `Quick (fun () ->
      let dyn = Dynamic.dependences prog in
      let static = Analyze.deps_of_program prog in
      Alcotest.(check int) (name ^ " covered") 0
        (List.length (Dynamic.uncovered dyn static)))

let common_prog =
  prepare
    "      REAL A(0:9), B(0:9)\n\
    \      COMMON /BUF/ A, B\n\
    \      DO 1 I = 0, 9\n\
     1     A(I) = B(I) + 1\n\
    \      END\n"

let assoc_prog =
  Dlz_passes.Pipeline.prepare_program
    (Dlz_passes.Inline.expand
       (Dlz_frontend.F77_parser.parse_units
          "      REAL A(0:9,0:9)\n\
          \      CALL COPY(A)\n\
          \      END\n\
          \      SUBROUTINE COPY(B)\n\
          \      REAL B(0:4,0:19)\n\
          \      DO 1 I = 0, 4\n\
          \      DO 1 J = 0, 9\n\
           1     B(I,2*J+1) = B(I,2*J)\n\
          \      END\n"))

let fragment_units =
  [
    coverage_units_prog "COMMON sequence association" common_prog;
    coverage_units_prog "inlined dummy/actual association" assoc_prog;
    coverage_case "intro serial" Fragments.intro_serial;
    coverage_case "intro parallel" Fragments.intro_parallel;
    coverage_case "eq1 program" Fragments.eq1_program;
    coverage_case "fig3 program" Fragments.fig3_program;
    coverage_case "mhl program" Fragments.mhl_program;
    coverage_case "equivalence 2d" Fragments.equivalence_2d;
    coverage_case "equivalence 4d" Fragments.equivalence_4d;
    coverage_case "ib program"
      ~syms:[ ("II", 3); ("JJ", 2); ("KK", 4); ("Q", 1) ]
      Fragments.ib_program;
    coverage_case "symbolic program (N=4)" ~syms:[ ("N", 4) ]
      Fragments.symbolic_program;
  ]

let carrying_level (v : Dirvec.t) =
  let n = Array.length v in
  let rec go i =
    if i >= n then None
    else
      match v.(i) with
      | Dirvec.Eq -> go (i + 1)
      | _ -> Some (i + 1)
  in
  go 0

let props =
  let arb_seed =
    QCheck.make
      ~print:(fun s ->
        Ast.to_string (Progen.random (Prng.create (Int64.of_int s))))
      QCheck.Gen.(int_range 0 1_000_000)
  in
  [
    QCheck.Test.make ~name:"analyzer covers dynamic dependences" ~count:250
      arb_seed
      (fun seed ->
        let prog = Progen.random (Prng.create (Int64.of_int seed)) in
        let dyn = Dynamic.dependences prog in
        let static = Analyze.deps_of_program prog in
        Dynamic.uncovered dyn static = []);
    QCheck.Test.make ~name:"exact-mode analyzer also covers dynamic deps"
      ~count:100 arb_seed
      (fun seed ->
        let prog = Progen.random (Prng.create (Int64.of_int seed)) in
        let dyn = Dynamic.dependences prog in
        let static = Analyze.deps_of_program ~mode:Analyze.ExactMode prog in
        Dynamic.uncovered dyn static = []);
    QCheck.Test.make
      ~name:"classic-mode analyzer also covers dynamic dependences"
      ~count:150 arb_seed
      (fun seed ->
        let prog = Progen.random (Prng.create (Int64.of_int seed)) in
        let dyn = Dynamic.dependences prog in
        let static = Analyze.deps_of_program ~mode:Analyze.Classic prog in
        Dynamic.uncovered dyn static = []);
    QCheck.Test.make
      ~name:"vectorized levels carry no dynamic self dependence" ~count:250
      arb_seed
      (fun seed ->
        let prog = Progen.random (Prng.create (Int64.of_int seed)) in
        let dyn = Dynamic.dependences prog in
        let r = Codegen.run prog in
        List.for_all
          (fun (pl : Codegen.plan) ->
            List.for_all
              (fun (d : Dynamic.dep) ->
                if
                  d.Dynamic.src_stmt = pl.Codegen.stmt_id
                  && d.Dynamic.dst_stmt = pl.Codegen.stmt_id
                then
                  match carrying_level d.Dynamic.vec with
                  | Some l -> not (List.mem l pl.Codegen.vec_levels)
                  | None -> true
                else true)
              dyn)
          r.Codegen.plans);
    QCheck.Test.make
      ~name:"direction-based range vectors cover exact ranges" ~count:150
      arb_seed
      (fun seed ->
        let prog = Progen.random (Prng.create (Int64.of_int seed)) in
        let accs, env = Dlz_ir.Access.of_program prog in
        let module Problem = Dlz_deptest.Problem in
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                match Problem.of_accesses a b with
                | None -> true
                | Some p -> (
                    match Problem.to_numeric p with
                    | None -> true
                    | Some np -> (
                        let r = Analyze.vectors ~env p in
                        match
                          Rangevec.of_exact ~common_ubs:np.Problem.common_ubs
                            np.Problem.eqs
                        with
                        | None -> true
                        | Some exact ->
                            r.Analyze.dirvecs = []
                            || Rangevec.subsumes
                                 (Rangevec.of_directions
                                    ~common_ubs:np.Problem.common_ubs
                                    r.Analyze.dirvecs)
                                 exact)))
              accs)
          accs);
  ]

let () =
  Alcotest.run "dynamic"
    [
      ("fragments", fragment_units);
      ("props", List.map QCheck_alcotest.to_alcotest props);
    ]
