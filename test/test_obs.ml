(* Tests for the observability plane (lib/obs): the metric registry,
   the Prometheus text exposition writer, and the versioned JSON
   snapshot codec.

   Determinism is the contract under test: the same metric state must
   render to byte-identical text regardless of registration order,
   scrape count, or how many domains did the recording — the registry
   sorts by (name, labels) and the writers are value-deterministic.
   Every assertion here is structural or byte-exact and independent of
   scheduling, so the suite is injection-proof by design (@obs-ci runs
   it under a chaos seed and at width 2).

   Collectors registered by this suite use a "t_..." name prefix and
   are unregistered on exit, so the process-wide collectors the linked
   libraries install (trace/pool/engine/serve) are never disturbed. *)

module Trace = Dlz_base.Trace
module Hist = Trace.Hist
module Registry = Dlz_obs.Registry
module Prom = Dlz_obs.Prom
module Snap = Dlz_obs.Snap

let test_jobs =
  match Sys.getenv_opt "DLZ_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with Failure _ -> 4)
  | None -> 4

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Prometheus exposition ------------------------------------------------ *)

(* The full golden rendering: families in name order, one HELP/TYPE
   header per family, label sets in (name, labels) order within a
   family — byte-for-byte. *)
let test_prom_golden () =
  let samples =
    [
      (* Deliberately out of order: the writer must sort. *)
      Registry.sample ~help:"requests served" "t_requests_total"
        (Registry.Counter 3);
      Registry.sample ~help:"queue depth"
        ~labels:[ ("q", "b") ]
        "t_depth" (Registry.Gauge 2.5);
      Registry.sample ~labels:[ ("q", "a") ] "t_depth" (Registry.Gauge 1.);
    ]
  in
  check_str "golden exposition"
    "# HELP t_depth queue depth\n\
     # TYPE t_depth gauge\n\
     t_depth{q=\"a\"} 1\n\
     t_depth{q=\"b\"} 2.5\n\
     # HELP t_requests_total requests served\n\
     # TYPE t_requests_total counter\n\
     t_requests_total 3\n"
    (Prom.to_string samples)

let test_prom_escaping () =
  let samples =
    [
      Registry.sample ~help:"weird \\ help\nline"
        ~labels:[ ("bad-label!", "va\\l\"ue\nx") ]
        "t.bad name" (Registry.Counter 1);
    ]
  in
  check_str "names sanitized, label values escaped"
    "# HELP t_bad_name weird \\\\ help\\nline\n\
     # TYPE t_bad_name counter\n\
     t_bad_name{bad_label_=\"va\\\\l\\\"ue\\nx\"} 1\n"
    (Prom.to_string samples);
  check_str "leading digit sanitized" "_lives" (Prom.sanitize_name "9lives");
  check_str "empty name sanitized" "_" (Prom.sanitize_name "");
  check_str "integral floats print bare" "42" (Prom.fmt_float 42.);
  check_str "fractional floats print %.9g" "1512.5" (Prom.fmt_float 1512.5)

(* Histogram exposition: cumulative non-decreasing buckets, an
   explicit +Inf equal to the count, _sum/_count lines, and derived
   _p50/_p99 gauge families. *)
let test_prom_histogram () =
  let h = Hist.create () in
  List.iter
    (fun ns -> Hist.observe h (Int64.of_int ns))
    [ 10; 100; 100; 3_000; 50_000; 1_000_000 ];
  let snap = Hist.snapshot h in
  check_int "snapshot count" 6 snap.Registry.h_count;
  Alcotest.(check int64) "snapshot sum" 1_053_210L snap.Registry.h_sum_ns;
  (* Cumulativity of the snapshot itself. *)
  let rec cumulative last = function
    | [] -> ()
    | (le, cum) :: rest ->
        check_bool
          (Printf.sprintf "bucket le=%Ld non-decreasing" le)
          true (cum >= last);
        check_bool "bucket bounded by count" true
          (cum <= snap.Registry.h_count);
        cumulative cum rest
  in
  cumulative 0 snap.Registry.h_buckets;
  check_bool "buckets reach the max observation" true
    (match List.rev snap.Registry.h_buckets with
    | (le, cum) :: _ ->
        Int64.compare le snap.Registry.h_max_ns >= 0
        && cum = snap.Registry.h_count
    | [] -> false);
  (* And of the rendered text. *)
  let text =
    Prom.to_string
      [
        Registry.sample ~help:"lat"
          ~labels:[ ("client", "a"); ("verb", "query") ]
          "t_req_ns" (Registry.Hist snap);
      ]
  in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "+Inf bucket = count" true
    (has "t_req_ns_bucket{client=\"a\",verb=\"query\",le=\"+Inf\"} 6");
  check_bool "_sum rendered" true
    (has "t_req_ns_sum{client=\"a\",verb=\"query\"} 1053210");
  check_bool "_count rendered" true
    (has "t_req_ns_count{client=\"a\",verb=\"query\"} 6");
  check_bool "derived p50 gauge family" true (has "# TYPE t_req_ns_p50 gauge");
  check_bool "derived p99 gauge family" true (has "# TYPE t_req_ns_p99 gauge");
  (* Every _bucket line's value is non-decreasing down the text. *)
  let last = ref (-1) in
  let prefix = "t_req_ns_bucket{" in
  let plen = String.length prefix in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match String.index_opt line '}' with
         | Some i when String.length line > plen && String.sub line 0 plen = prefix ->
             let v =
               int_of_string
                 (String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)))
             in
             check_bool "rendered buckets cumulative" true (v >= !last);
             last := v
         | _ -> ())

(* The N-domain determinism claim: a histogram filled concurrently by
   [test_jobs] domains (each recording the same fixed multiset) must
   render byte-identically to one filled serially with the identical
   total multiset — shards change, state does not. *)
let test_prom_jobs_identical () =
  let obs = [ 7; 120; 120; 999; 31_000; 31_000; 250_000 ] in
  let serial = Hist.create () in
  for _ = 1 to test_jobs do
    List.iter (fun ns -> Hist.observe serial (Int64.of_int ns)) obs
  done;
  let parallel = Hist.create () in
  let doms =
    List.init test_jobs (fun _ ->
        Domain.spawn (fun () ->
            List.iter (fun ns -> Hist.observe parallel (Int64.of_int ns)) obs))
  in
  List.iter Domain.join doms;
  let render h =
    Prom.to_string
      [ Registry.sample ~help:"lat" "t_par_ns" (Registry.Hist (Hist.snapshot h)) ]
  in
  check_str "parallel fill renders byte-identical to serial" (render serial)
    (render parallel);
  (* Scrape idempotence: rendering twice is byte-identical. *)
  check_str "re-render byte-identical" (render parallel) (render parallel)

(* --- Snap codec ----------------------------------------------------------- *)

let test_snap_shape () =
  let h = Hist.create () in
  Hist.observe h 1500L;
  let samples =
    [
      Registry.sample ~help:"c" "t_c" (Registry.Counter 7);
      Registry.sample ~labels:[ ("k", "v\"w") ] "t_g" (Registry.Gauge 1.5);
      Registry.sample "t_h" (Registry.Hist (Hist.snapshot h));
      Registry.sample "t_nan" (Registry.Gauge Float.nan);
    ]
  in
  let line = Snap.to_json samples in
  check_bool "one line, NDJSON-ready" true (not (String.contains line '\n'));
  (* The codec's output must parse as JSON — use the serve-side parser
     as the independent reader. *)
  let j =
    match Dlz_serve.Jsonx.parse line with
    | Ok j -> j
    | Error m -> Alcotest.fail ("snap output does not parse: " ^ m)
  in
  let member k =
    match Dlz_serve.Jsonx.member k j with
    | Some v -> v
    | None -> Alcotest.failf "missing %S" k
  in
  check_int "version field" Snap.version
    (Option.get (Dlz_serve.Jsonx.to_int (member "version")));
  let metrics =
    Option.get (Dlz_serve.Jsonx.to_list (member "metrics"))
  in
  check_int "all samples present" (List.length samples) (List.length metrics);
  let kind_of m =
    Option.get
      (Option.bind (Dlz_serve.Jsonx.member "kind" m) Dlz_serve.Jsonx.to_str)
  in
  check_str "counter kind" "counter" (kind_of (List.nth metrics 0));
  check_str "gauge kind" "gauge" (kind_of (List.nth metrics 1));
  check_str "histogram kind" "histogram" (kind_of (List.nth metrics 2));
  (* A NaN gauge degrades to 0 instead of corrupting the stream. *)
  (match Dlz_serve.Jsonx.member "value" (List.nth metrics 3) with
  | Some v ->
      check_int "NaN gauge degrades to 0" 0
        (Option.get (Dlz_serve.Jsonx.to_int v))
  | None -> Alcotest.fail "NaN gauge lost its value field")

(* --- registry semantics --------------------------------------------------- *)

let test_registry_replace_and_reset () =
  let fired = ref 0 in
  Fun.protect
    ~finally:(fun () -> Registry.unregister "t_suite")
    (fun () ->
      Registry.register ~name:"t_suite" (fun () ->
          [ Registry.sample "t_old" (Registry.Counter 1) ]);
      (* Replace semantics: same name, latest collector wins. *)
      Registry.register ~name:"t_suite"
        ~reset:(fun () -> incr fired)
        (fun () -> [ Registry.sample "t_new" (Registry.Counter 2) ]);
      let names =
        List.filter
          (fun s ->
            String.length s.Registry.s_name >= 2
            && String.sub s.Registry.s_name 0 2 = "t_")
          (Registry.collect ())
        |> List.map (fun s -> s.Registry.s_name)
      in
      check_bool "replaced collector gone" true
        (not (List.mem "t_old" names));
      check_bool "replacement visible" true (List.mem "t_new" names);
      Registry.reset_all ();
      check_int "reset hook ran exactly once" 1 !fired;
      (* Engine.reset_metrics folds every registered hook in
         (satellite 1): the suite's own hook fires through it too. *)
      Dlz_engine.Engine.reset_metrics ();
      check_int "reset hook ran via Engine.reset_metrics" 2 !fired);
  (* After unregister the samples are gone and the hook is dead. *)
  Registry.reset_all ();
  check_int "unregistered hook no longer fires" 2 !fired

(* collect() sorts across collectors by (name, labels), regardless of
   registration order — the property Prometheus text determinism
   stands on. *)
let test_registry_sorted () =
  Fun.protect
    ~finally:(fun () ->
      Registry.unregister "t_z";
      Registry.unregister "t_a")
    (fun () ->
      Registry.register ~name:"t_z" (fun () ->
          [
            Registry.sample ~labels:[ ("l", "b") ] "t_m" (Registry.Counter 1);
            Registry.sample "t_a_metric" (Registry.Counter 1);
          ]);
      Registry.register ~name:"t_a" (fun () ->
          [ Registry.sample ~labels:[ ("l", "a") ] "t_m" (Registry.Counter 1) ]);
      let ours =
        List.filter
          (fun s ->
            String.length s.Registry.s_name >= 2
            && String.sub s.Registry.s_name 0 2 = "t_")
          (Registry.collect ())
      in
      let keys =
        List.map (fun s -> (s.Registry.s_name, s.Registry.s_labels)) ours
      in
      Alcotest.(check (list (pair string (list (pair string string)))))
        "collect sorted by (name, labels)"
        [
          ("t_a_metric", []);
          ("t_m", [ ("l", "a") ]);
          ("t_m", [ ("l", "b") ]);
        ]
        keys)

let () =
  Alcotest.run "obs"
    [
      ( "prom",
        [
          Alcotest.test_case "golden exposition, sorted families" `Quick
            test_prom_golden;
          Alcotest.test_case "name/label escaping" `Quick test_prom_escaping;
          Alcotest.test_case "histogram buckets cumulative with +Inf" `Quick
            test_prom_histogram;
          Alcotest.test_case "byte-identical for any domain count" `Quick
            test_prom_jobs_identical;
        ] );
      ( "snap",
        [ Alcotest.test_case "versioned JSON shape" `Quick test_snap_shape ] );
      ( "registry",
        [
          Alcotest.test_case "replace semantics and reset coverage" `Quick
            test_registry_replace_and_reset;
          Alcotest.test_case "collect sorts across collectors" `Quick
            test_registry_sorted;
        ] );
    ]
