(* @corpus-ci gate for the vendored polybench corpus.

   Three checks over corpus/polybench/ (passed as argv.(1)):

   1. drift: every vendored .c file byte-matches the
      {!Dlz_corpus.Polybench} generator, and no stale extras exist —
      the committed corpus IS the generator's output;
   2. parse: every kernel goes through the mini-C parser, the pointer
      conversion and the pipeline without error;
   3. report: the bulk NDJSON report (at DLZ_TEST_JOBS-width, with
      whatever DLZ_CHAOS the alias sets) is byte-identical to the
      committed GOLDEN.ndjson, modulo the summary line's "dir" field
      which is normalized to the canonical "corpus/polybench" so the
      golden does not depend on where the tree was checked out.

   `corpus_ci.exe DIR --write` regenerates the golden (run it with the
   same DLZ_TEST_JOBS/DLZ_CHAOS the dune rule uses). *)

module Polybench = Dlz_corpus.Polybench
module Bulk = Dlz_driver.Bulk
module Pool = Dlz_base.Pool

let golden_name = "GOLDEN.ndjson"
let canonical_dir = "corpus/polybench"

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Replace the first occurrence of [sub] in [s] with [by]. *)
let replace_first ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let json_escape s =
  (* Mirrors Bulk's escaping for the "dir" value; directory paths only
     ever need the backslash case in practice. *)
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let normalize ~dir line =
  if String.length line > 16 && String.sub line 0 16 = "{\"summary\":true," then
    replace_first
      ~sub:(Printf.sprintf "\"dir\":\"%s\"" (json_escape dir))
      ~by:(Printf.sprintf "\"dir\":\"%s\"" canonical_dir)
      line
  else line

let check_drift dir =
  List.iter
    (fun (k : Polybench.kernel) ->
      let path = Filename.concat dir (k.k_name ^ ".c") in
      let vendored =
        try read_file path
        with Sys_error m -> fail "corpus-ci: missing vendored kernel: %s" m
      in
      if not (String.equal vendored k.k_source) then
        fail
          "corpus-ci: %s drifted from the generator — regenerate with `vic \
           corpus --polybench %s`"
          path dir)
    Polybench.kernels;
  let expected =
    List.map (fun (k : Polybench.kernel) -> k.k_name ^ ".c") Polybench.kernels
  in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".c" && not (List.mem name expected) then
        fail "corpus-ci: stale vendored file not in the generator: %s" name)
    (Sys.readdir dir)

let check_parse () =
  List.iter
    (fun (k : Polybench.kernel) ->
      match
        Dlz_passes.Pipeline.prepare_program
          (Dlz_passes.Pointers.lower
             (Dlz_frontend.C_parser.parse k.k_source))
      with
      | (_ : Dlz_ir.Ast.program) -> ()
      | exception e ->
          fail "corpus-ci: %s does not parse/lower: %s" k.k_name
            (match Dlz_frontend.Diag.describe e with
            | Some m -> m
            | None -> Printexc.to_string e))
    Polybench.kernels

let report ~jobs dir =
  let lines =
    Pool.with_jobs ~jobs (fun pool -> Bulk.run ?pool dir)
  in
  List.map (normalize ~dir) lines

let () =
  let dir, write =
    match Array.to_list Sys.argv with
    | [ _; dir ] -> (dir, false)
    | [ _; dir; "--write" ] -> (dir, true)
    | _ ->
        prerr_endline "usage: corpus_ci.exe DIR [--write]";
        exit 2
  in
  let jobs =
    match Sys.getenv_opt "DLZ_TEST_JOBS" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2)
    | None -> 2
  in
  check_drift dir;
  check_parse ();
  let lines = report ~jobs dir in
  let golden_path = Filename.concat dir golden_name in
  if write then begin
    let oc = open_out_bin golden_path in
    List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
    close_out oc;
    Printf.printf "corpus-ci: wrote %s (%d lines)\n" golden_path
      (List.length lines)
  end
  else begin
    let golden =
      try String.split_on_char '\n' (read_file golden_path)
      with Sys_error m -> fail "corpus-ci: missing golden: %s" m
    in
    let golden = List.filter (fun l -> l <> "") golden in
    let rec diff i = function
      | [], [] -> ()
      | g :: gs, l :: ls when String.equal g l -> diff (i + 1) (gs, ls)
      | g :: _, l :: _ ->
          Printf.eprintf "corpus-ci: line %d differs\n  golden: %s\n  got:    %s\n"
            (i + 1) g l;
          fail "corpus-ci: NDJSON report diverged from %s" golden_path
      | g :: _, [] -> fail "corpus-ci: report truncated at line %d (golden: %s)" (i + 1) g
      | [], l :: _ -> fail "corpus-ci: report has extra line %d: %s" (i + 1) l
    in
    diff 0 (golden, lines);
    Printf.printf
      "corpus-ci: OK (%d kernels, %d report lines, jobs=%d%s)\n"
      (List.length Polybench.kernels)
      (List.length lines) jobs
      (match Sys.getenv_opt "DLZ_CHAOS" with
      | Some c -> ", chaos " ^ c
      | None -> "")
  end
