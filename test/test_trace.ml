(* Tests for the tracing / latency-telemetry subsystem (lib/base/trace.ml)
   and its engine instrumentation: histogram bucket arithmetic, span
   nesting and sampling, the deterministic cross-domain merge, ring
   overflow, and the Chrome trace_event export — including the
   regression the ISSUE asks for: a parallel analysis run (and a chaos
   run) must produce valid JSON with balanced B/E per domain track and
   span provenance matching each result's decided_by/degraded_by.

   Every test sets the recording level and sampling knob explicitly and
   restores them on exit, so the suite is insensitive to DLZ_TRACE /
   DLZ_TRACE_SAMPLE in the environment; the engine-facing tests assert
   structural invariants only (balance, one-span-per-query, provenance
   consistency), which hold under DLZ_CHAOS too — the @trace-ci alias
   runs this binary under one chaos seed on purpose. *)

module Trace = Dlz_base.Trace
module Hist = Trace.Hist
module F77 = Dlz_frontend.F77_parser
module Pipeline = Dlz_passes.Pipeline
module Engine = Dlz_engine.Engine
module Analyze = Dlz_engine.Analyze
module Stats = Dlz_engine.Stats
module Chaos = Dlz_engine.Chaos

let test_jobs =
  match Sys.getenv_opt "DLZ_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with Failure _ -> 4)
  | None -> 4

let prepare src = Pipeline.prepare_program (F77.parse src)

(* n statements with n distinct dependence distances — plenty of
   cacheable queries with a mix of hits and misses. *)
let many_distances_src n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "      DIMENSION A(500)\n      DO I = 0, 99\n";
  for k = 1 to n do
    Buffer.add_string buf (Printf.sprintf "        A(I+%d) = A(I)\n" k)
  done;
  Buffer.add_string buf "      ENDDO\n";
  Buffer.contents buf

(* Run [f] with the recorder in a known state (level as given, sampling
   rate 1.0 under the ambient seed) and restore level, sampling and
   buffers afterwards no matter what. *)
let scoped level f () =
  let saved_level = Trace.level () in
  let saved_seed, saved_rate = Trace.sampling () in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_level saved_level;
      Trace.set_sampling ~seed:saved_seed saved_rate;
      Trace.clear ())
    (fun () ->
      Trace.set_sampling ~seed:saved_seed 1.0;
      Trace.clear ();
      Trace.set_level level;
      f ())

let default_buffer_capacity =
  match Sys.getenv_opt "DLZ_TRACE_BUF" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 65536)
  | None -> 65536

(* --- a minimal JSON reader ------------------------------------------------ *)

(* Just enough JSON to validate the Chrome export without pulling in a
   dependency: objects, arrays, strings (escapes consumed, \uXXXX kept
   raw — the exporter only escapes ASCII control characters), numbers
   as float, true/false/null.  Raises [Bad_json] on anything else, so
   "the output parses" is itself the first assertion. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "dangling escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              Buffer.add_string buf (String.sub s (!pos - 1) 6);
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          incr pos;
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          J_obj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          J_list []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          J_list (elems [])
        end
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        let is_num = function
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        in
        while !pos < n && is_num s.[!pos] do
          incr pos
        done;
        (match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> J_num f
        | None -> fail "bad number")
    | _ -> fail "unexpected character"
  and literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.equal (String.sub s !pos l) lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let as_obj = function
  | J_obj kvs -> kvs
  | _ -> Alcotest.fail "JSON: expected object"

let as_list = function
  | J_list l -> l
  | _ -> Alcotest.fail "JSON: expected array"

let as_str = function
  | J_str s -> s
  | _ -> Alcotest.fail "JSON: expected string"

let as_num = function
  | J_num f -> f
  | _ -> Alcotest.fail "JSON: expected number"

let jfield k j =
  match List.assoc_opt k (as_obj j) with
  | Some v -> v
  | None -> Alcotest.failf "JSON: missing field %S" k

(* --- Chrome-export validation --------------------------------------------- *)

(* A completed span as reconstructed from the B/E stream: its E-event
   args (where the engine attaches result attributes) and its completed
   children in completion order. *)
type cspan = {
  cs_name : string;
  cs_args : (string * string) list;
  cs_children : cspan list;
}

type chrome = {
  c_tids : int list;  (* tids carrying B/E/i events *)
  c_meta_tids : int list;  (* tids named by thread_name metadata *)
  c_spans : cspan list;  (* every completed span, any depth, any tid *)
  c_truncated : int;  (* synthetically closed spans *)
}

(* Parses the document and replays the per-tid event streams: every E
   must close the innermost open B of the same name on its tid, and
   every stack must be empty at the end — the balance guarantee the
   exporter promises even across ring overwrites. *)
let validate_chrome (doc : string) : chrome =
  let j = parse_json doc in
  let evs = as_list (jfield "traceEvents" j) in
  let meta_tids = ref [] in
  let event_tids = ref [] in
  let stacks : (int, (string * cspan list ref) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  let spans = ref [] in
  let truncated = ref 0 in
  let args_of ev =
    match List.assoc_opt "args" (as_obj ev) with
    | None -> []
    | Some a -> List.map (fun (k, v) -> (k, as_str v)) (as_obj a)
  in
  let note tid l = if not (List.mem tid !l) then l := tid :: !l in
  List.iter
    (fun ev ->
      let name = as_str (jfield "name" ev) in
      let ph = as_str (jfield "ph" ev) in
      let tid = int_of_float (as_num (jfield "tid" ev)) in
      Alcotest.(check int) "pid" 1 (int_of_float (as_num (jfield "pid" ev)));
      let ts = as_num (jfield "ts" ev) in
      if ts < 0. then Alcotest.fail "negative timestamp";
      match ph with
      | "M" ->
          Alcotest.(check string) "metadata kind" "thread_name" name;
          note tid meta_tids
      | "B" ->
          note tid event_tids;
          let s = stack tid in
          s := (name, ref []) :: !s
      | "E" -> (
          note tid event_tids;
          let args = args_of ev in
          if List.mem_assoc "truncated" args then incr truncated;
          let s = stack tid in
          match !s with
          | (top, kids) :: rest when String.equal top name ->
              s := rest;
              let sp =
                { cs_name = name; cs_args = args; cs_children = List.rev !kids }
              in
              spans := sp :: !spans;
              (match rest with
              | (_, parent_kids) :: _ -> parent_kids := sp :: !parent_kids
              | [] -> ())
          | _ -> Alcotest.failf "unbalanced E %S on tid %d" name tid)
      | "i" -> note tid event_tids
      | ph -> Alcotest.failf "unexpected phase %S" ph)
    evs;
  Hashtbl.iter
    (fun tid s ->
      match !s with
      | [] -> ()
      | (name, _) :: _ -> Alcotest.failf "span %S left open on tid %d" name tid)
    stacks;
  {
    c_tids = List.sort compare !event_tids;
    c_meta_tids = List.sort compare !meta_tids;
    c_spans = !spans;
    c_truncated = !truncated;
  }

(* Balance of the raw (pre-export) stream: only meaningful when no ring
   overflowed. *)
let check_raw_balanced () =
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack d =
    match Hashtbl.find_opt stacks d with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks d s;
        s
  in
  List.iter
    (fun (d, ev) ->
      match ev.Trace.ev_ph with
      | Trace.B -> (stack d) := ev.Trace.ev_name :: !(stack d)
      | Trace.E -> (
          let s = stack d in
          match !s with
          | top :: rest when String.equal top ev.Trace.ev_name -> s := rest
          | _ -> Alcotest.failf "raw stream: unbalanced E %S" ev.Trace.ev_name)
      | Trace.I -> ())
    (Trace.events ());
  Hashtbl.iter
    (fun d s ->
      if !s <> [] then Alcotest.failf "raw stream: open span on domain %d" d)
    stacks

(* --- histogram units ------------------------------------------------------ *)

(* A ladder of durations spanning the bucket range: dense at the bottom
   (where rounding is delicate), multiplicative above. *)
let ns_ladder () =
  let acc = ref [] in
  for i = 0 to 2048 do
    acc := Int64.of_int i :: !acc
  done;
  let v = ref 2048. in
  while !v < 1e13 do
    acc := Int64.of_float !v :: !acc;
    v := !v *. 1.137
  done;
  List.rev !acc

let test_bucket_monotone () =
  let last = ref (-1) in
  List.iter
    (fun ns ->
      let b = Hist.bucket_of_ns ns in
      if b < !last then
        Alcotest.failf "bucket_of_ns not monotone at %Ldns (%d < %d)" ns b !last;
      if b < 0 || b >= Hist.buckets then
        Alcotest.failf "bucket %d out of range at %Ldns" b ns;
      last := b)
    (ns_ladder ());
  Alcotest.(check int) "huge durations clamp to the top bucket"
    (Hist.buckets - 1)
    (Hist.bucket_of_ns Int64.max_int)

let test_bucket_bounds_contain () =
  List.iter
    (fun ns ->
      let b = Hist.bucket_of_ns ns in
      let lo, hi = Hist.bucket_bounds b in
      let f = Int64.to_float ns in
      if f < lo then Alcotest.failf "%Ldns below bucket %d lo=%.3f" ns b lo;
      (* The top bucket also absorbs everything longer than its span. *)
      if f >= hi && b <> Hist.buckets - 1 then
        Alcotest.failf "%Ldns at/above bucket %d hi=%.3f" ns b hi)
    (ns_ladder ());
  (* Bounds tile the axis: each bucket's hi is the next one's lo, and
     bucket 0 reaches down to 0. *)
  let lo0, _ = Hist.bucket_bounds 0 in
  Alcotest.(check (float 0.0)) "bucket 0 lower bound" 0.0 lo0;
  for i = 0 to Hist.buckets - 2 do
    let _, hi = Hist.bucket_bounds i in
    let lo, _ = Hist.bucket_bounds (i + 1) in
    if i > 0 && abs_float (hi -. lo) > 1e-9 *. hi then
      Alcotest.failf "buckets %d/%d do not tile (%.6f vs %.6f)" i (i + 1) hi lo
  done

let test_hist_stats () =
  let h = Hist.create () in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Hist.percentile h 0.5);
  for _ = 1 to 100 do
    Hist.observe h 1000L
  done;
  Hist.observe h 9000L;
  Alcotest.(check int) "count" 101 (Hist.count h);
  Alcotest.(check int64) "total" 109_000L (Hist.total_ns h);
  Alcotest.(check int64) "max" 9000L (Hist.max_ns h);
  let p50 = Hist.percentile h 0.5 in
  (* One bucket is a factor of 2^(1/8) ≈ 1.09 wide; the estimate is its
     geometric midpoint, so 1000ns must come back within ~10%. *)
  if p50 < 900. || p50 > 1100. then
    Alcotest.failf "p50 of 1000ns observations was %.1f" p50;
  Alcotest.(check (float 0.0)) "p100 capped at observed max" 9000.
    (Hist.percentile h 1.0);
  if Hist.percentile h 0.99 > 9000. then Alcotest.fail "p99 above max";
  (* Negative durations clamp to 0 rather than crash or distort. *)
  Hist.observe h (-5L);
  Alcotest.(check int) "negative clamps, still counted" 102 (Hist.count h);
  Hist.reset h;
  Alcotest.(check int) "reset count" 0 (Hist.count h);
  Alcotest.(check int64) "reset total" 0L (Hist.total_ns h);
  Alcotest.(check int64) "reset max" 0L (Hist.max_ns h);
  Alcotest.(check (float 0.0)) "reset percentile" 0.0 (Hist.percentile h 0.5)

let test_hist_merged () =
  let h1 = Hist.create () and h2 = Hist.create () in
  for _ = 1 to 100 do
    Hist.observe h1 10L
  done;
  for _ = 1 to 50 do
    Hist.observe h2 1000L
  done;
  let m = Hist.merged [ h1; h2 ] in
  Alcotest.(check int) "merged count" 150 (Hist.count m);
  Alcotest.(check int64) "merged total" 51_000L (Hist.total_ns m);
  Alcotest.(check int64) "merged max" 1000L (Hist.max_ns m);
  (* 2/3 of the mass sits at 10ns: the median must be there, and p90
     must be in the 1000ns bucket. *)
  if Hist.percentile m 0.5 > 100. then Alcotest.fail "merged p50 off";
  let p90 = Hist.percentile m 0.9 in
  if p90 < 900. || p90 > 1100. then Alcotest.failf "merged p90 was %.1f" p90;
  (* The merge is a snapshot: later observations don't leak in. *)
  Hist.observe h1 10L;
  Alcotest.(check int) "snapshot isolation" 150 (Hist.count m)

let test_hist_multi_domain () =
  let h = Hist.create () in
  let per_domain = 1000 in
  let ds =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Hist.observe h 100L
            done))
  in
  Array.iter Domain.join ds;
  Hist.observe h 100L;
  (* The join establishes happens-before, so every shard's writes are
     visible and the sum is exact. *)
  Alcotest.(check int) "cross-domain count" ((3 * per_domain) + 1) (Hist.count h);
  Alcotest.(check int64) "cross-domain total"
    (Int64.of_int (100 * ((3 * per_domain) + 1)))
    (Hist.total_ns h)

(* --- spans, sampling, buffers --------------------------------------------- *)

let names_and_phases () =
  List.map (fun (_, ev) -> (ev.Trace.ev_ph, ev.Trace.ev_name)) (Trace.events ())

let test_span_nesting =
  scoped Trace.Full @@ fun () ->
  Trace.with_span ~cat:"t" "a" (fun () ->
      Trace.with_span ~cat:"t" "b" (fun () -> ());
      Trace.instant ~cat:"t" "mark");
  Alcotest.(check (list (pair bool string)))
    "event order"
    [
      (true, "a"); (true, "b"); (false, "b"); (false, "mark"); (false, "a");
    ]
    (List.map
       (fun (ph, name) -> (ph = Trace.B, name))
       (names_and_phases ()));
  check_raw_balanced ()

let test_span_closes_on_raise =
  scoped Trace.Full @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "B and E both recorded" 2 (List.length (Trace.events ()));
  check_raw_balanced ()

let test_level_gates_recording =
  scoped Trace.Off @@ fun () ->
  Trace.with_span "a" (fun () -> ());
  Trace.instant "i";
  Trace.observe_ns "trace.test.off" 10L;
  Alcotest.(check int) "no events when off" 0 (List.length (Trace.events ()));
  Alcotest.(check bool) "no histogram when off" true
    (not (List.mem_assoc "trace.test.off" (Trace.hist_rows ())));
  Trace.set_level Trace.Timing;
  Trace.with_span "a" (fun () -> ());
  Alcotest.(check int) "no events at Timing" 0 (List.length (Trace.events ()));
  Trace.observe_ns "trace.test.off" 10L;
  Alcotest.(check int) "histogram records at Timing" 1
    (Hist.count (Trace.hist "trace.test.off"));
  Trace.time "trace.test.off" (fun () -> ());
  Alcotest.(check int) "Trace.time records" 2
    (Hist.count (Trace.hist "trace.test.off"));
  Trace.reset_hists ()

let test_sampling_rates =
  scoped Trace.Full @@ fun () ->
  Trace.set_sampling ~seed:7L 0.0;
  for _ = 1 to 50 do
    Trace.finish (Trace.start ~sample:true "q")
  done;
  Alcotest.(check int) "rate 0 keeps nothing" 0 (List.length (Trace.events ()));
  Trace.clear ();
  Trace.set_sampling ~seed:7L 1.0;
  for _ = 1 to 50 do
    Trace.finish (Trace.start ~sample:true "q")
  done;
  Alcotest.(check int) "rate 1 keeps everything" 100
    (List.length (Trace.events ()))

let test_sampling_deterministic =
  scoped Trace.Full @@ fun () ->
  let record () =
    Trace.clear ();
    for _ = 1 to 200 do
      Trace.finish (Trace.start ~sample:true "q")
    done;
    names_and_phases ()
  in
  Trace.set_sampling ~seed:42L 0.5;
  let a = record () in
  let kept = List.length a / 2 in
  (* The keep/drop decision is content-keyed, so a fixed seed gives a
     fixed subset — and at rate 0.5 over 200 spans it is some strict
     subset, not all-or-nothing. *)
  if kept = 0 || kept = 200 then
    Alcotest.failf "rate 0.5 kept %d of 200 spans" kept;
  Alcotest.(check bool) "same seed replays exactly" true (record () = a);
  Trace.set_sampling ~seed:43L 0.5;
  let b = record () in
  Trace.set_sampling ~seed:42L 0.5;
  Alcotest.(check bool) "returning to the seed replays again" true
    (record () = a);
  (* Not a hard guarantee for every seed pair, but for this one the
     subsets differ — the seed actually reaches the decision. *)
  Alcotest.(check bool) "different seed, different subset" false (a = b)

let test_sampled_out_suppresses_subtree =
  scoped Trace.Full @@ fun () ->
  Trace.set_sampling ~seed:0L 0.0;
  let parent = Trace.start ~sample:true "parent" in
  Alcotest.(check bool) "sampled-out span is not live" false
    (Trace.is_live parent);
  let child = Trace.start "child" in
  Alcotest.(check bool) "child suppressed" false (Trace.is_live child);
  (* Load-bearing instants still land inside a suppressed subtree. *)
  Trace.instant "mark";
  Trace.finish child;
  Trace.finish parent;
  Trace.set_sampling ~seed:0L 1.0;
  Trace.with_span "after" (fun () -> ());
  Alcotest.(check (list (pair bool string)))
    "only the instant and the post-subtree span recorded"
    [ (false, "mark"); (true, "after"); (false, "after") ]
    (List.map
       (fun (ph, name) -> (ph = Trace.B, name))
       (names_and_phases ()));
  check_raw_balanced ()

let test_multi_domain_merge_deterministic =
  scoped Trace.Full @@ fun () ->
  let ds =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            for j = 1 to 10 do
              Trace.with_span
                (Printf.sprintf "w%d.%d" i j)
                (fun () -> Trace.instant "tick")
            done))
  in
  Array.iter Domain.join ds;
  Trace.with_span "main" (fun () -> ());
  let e1 = Trace.events () in
  let e2 = Trace.events () in
  Alcotest.(check bool) "merge is reproducible" true (e1 = e2);
  Alcotest.(check int) "all events present" ((3 * 10 * 3) + 2)
    (List.length e1);
  let doms = List.sort_uniq compare (List.map fst e1) in
  Alcotest.(check int) "one stream per domain" 4 (List.length doms);
  Alcotest.(check bool) "export is reproducible" true
    (String.equal (Trace.to_chrome_json ()) (Trace.to_chrome_json ()));
  check_raw_balanced ()

let test_ring_overflow =
  scoped Trace.Full @@ fun () ->
  Fun.protect
    ~finally:(fun () -> Trace.set_buffer_capacity default_buffer_capacity)
    (fun () ->
      Trace.set_buffer_capacity 16;
      (* Only buffers created after the call get the small ring, so the
         overflow has to happen on a fresh domain.  The outer span's B
         is overwritten while its E survives: the orphan-E path. *)
      Domain.join
        (Domain.spawn (fun () ->
             let outer = Trace.start "outer" in
             for i = 1 to 40 do
               Trace.with_span (Printf.sprintf "w%d" i) (fun () -> ())
             done;
             Trace.finish outer));
      let dropped = Trace.dropped () in
      if dropped < 64 then Alcotest.failf "expected >= 64 dropped, got %d" dropped;
      let c = validate_chrome (Trace.to_chrome_json ()) in
      (* Balance held by construction (validate_chrome would have
         failed); the surviving complete spans are some suffix of the
         w* sequence. *)
      if List.length c.c_spans = 0 || List.length c.c_spans > 16 then
        Alcotest.failf "expected a ring-bounded suffix, got %d spans"
          (List.length c.c_spans))

(* --- engine integration --------------------------------------------------- *)

let allowed_dispositions = [ "hit"; "miss"; "uncacheable" ]

(* The acceptance criterion: one completed span per query, strategy
   child spans consistent with the result's decided_by/degraded_by
   attributes, per-domain tracks named and balanced. *)
let check_engine_trace c =
  Alcotest.(check (list int))
    "every event track carries thread_name metadata" c.c_tids c.c_meta_tids;
  if List.length c.c_tids < 2 then
    Alcotest.failf "expected main + worker tracks, got %d" (List.length c.c_tids);
  Alcotest.(check int) "no synthetically closed spans" 0 c.c_truncated;
  let queries =
    List.filter (fun sp -> String.equal sp.cs_name "query") c.c_spans
  in
  Alcotest.(check int) "one span per query" (Stats.queries Stats.global)
    (List.length queries);
  List.iter
    (fun q ->
      let cache =
        match List.assoc_opt "cache" q.cs_args with
        | Some c -> c
        | None -> Alcotest.fail "query span without cache disposition"
      in
      if not (List.mem cache allowed_dispositions) then
        Alcotest.failf "unexpected cache disposition %S" cache;
      let decided_by =
        match List.assoc_opt "decided_by" q.cs_args with
        | Some d -> d
        | None -> Alcotest.fail "query span without decided_by"
      in
      if String.equal cache "hit" then
        Alcotest.(check int) "cache hits run no strategies" 0
          (List.length q.cs_children)
      else begin
        (* Child spans are the strategy attempts.  A "decided:" outcome
           must come from the strategy the result credits, and every
           "degraded:" outcome must be listed in degraded_by. *)
        let degraded_by =
          match List.assoc_opt "degraded_by" q.cs_args with
          | None -> []
          | Some s ->
              List.map
                (fun entry ->
                  match String.index_opt entry ':' with
                  | Some i ->
                      ( String.sub entry 0 i,
                        String.sub entry (i + 1)
                          (String.length entry - i - 1) )
                  | None -> (entry, ""))
                (String.split_on_char ';' s)
        in
        List.iter
          (fun child ->
            match List.assoc_opt "outcome" child.cs_args with
            | None -> Alcotest.failf "strategy span %S without outcome"
                        child.cs_name
            | Some o when String.length o >= 8
                          && String.equal (String.sub o 0 8) "decided:" ->
                Alcotest.(check string) "decided_by matches the deciding span"
                  decided_by child.cs_name
            | Some o when String.length o >= 9
                          && String.equal (String.sub o 0 9) "degraded:" ->
                let reason = String.sub o 9 (String.length o - 9) in
                if not (List.mem (child.cs_name, reason) degraded_by) then
                  Alcotest.failf "degradation %s:%s not in degraded_by"
                    child.cs_name reason
            | Some _ -> ())
          q.cs_children
      end)
    queries

let run_analysis () =
  Engine.reset_metrics ();
  let prog = prepare (many_distances_src 10) in
  ignore (Analyze.deps_of_program ~jobs:test_jobs prog);
  Alcotest.(check bool) "stats consistent" true (Stats.consistent Stats.global);
  if Stats.queries Stats.global = 0 then Alcotest.fail "workload ran no queries"

let test_parallel_export_balanced =
  scoped Trace.Full @@ fun () ->
  run_analysis ();
  check_raw_balanced ();
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
  check_engine_trace (validate_chrome (Trace.to_chrome_json ()));
  (* The --trace file goes through the same exporter; make sure the
     written form round-trips too. *)
  let path = Filename.temp_file "dlz_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.export_chrome path;
      let doc = In_channel.with_open_bin path In_channel.input_all in
      check_engine_trace (validate_chrome (String.trim doc)))

let test_chaos_export_balanced =
  scoped Trace.Full @@ fun () ->
  let saved = Chaos.current () in
  Fun.protect
    ~finally:(fun () -> Chaos.set_current saved)
    (fun () ->
      Chaos.set_current (Some (Chaos.make ~seed:7L ~rate:0.3));
      run_analysis ();
      check_raw_balanced ();
      let c = validate_chrome (Trace.to_chrome_json ()) in
      check_engine_trace c;
      (* At 30% injection over this workload faults certainly land; the
         containment path must still close every span and surface the
         degradation in the span attributes. *)
      let degraded =
        List.filter
          (fun sp ->
            String.equal sp.cs_name "query"
            && List.mem_assoc "degraded_by" sp.cs_args)
          c.c_spans
      in
      if degraded = [] then Alcotest.fail "chaos run degraded nothing")

let test_reset_metrics_clears_telemetry =
  scoped Trace.Full @@ fun () ->
  run_analysis ();
  if List.length (Trace.events ()) = 0 then Alcotest.fail "no events recorded";
  if Hist.count (Stats.query_hist ()) = 0 then
    Alcotest.fail "no latencies recorded";
  Engine.reset_metrics ();
  Alcotest.(check int) "stats cleared" 0 (Stats.queries Stats.global);
  Alcotest.(check int) "events cleared" 0 (List.length (Trace.events ()));
  Alcotest.(check int) "query latencies cleared" 0
    (Hist.count (Stats.query_hist ()));
  List.iter
    (fun (name, h) ->
      if Hist.count h <> 0 then Alcotest.failf "histogram %S not reset" name)
    (Trace.hist_rows ());
  (* Handles cached before the reset (the engine holds some) must keep
     recording into the same histograms. *)
  let h = Trace.hist "cache.hit" in
  Hist.observe h 5L;
  Alcotest.(check int) "cached handle survives reset" 1
    (Hist.count (Trace.hist "cache.hit"));
  Trace.reset_hists ()

let test_sampling_of_string () =
  (match Trace.sampling_of_string "0.5" with
  | Ok (seed, rate) ->
      Alcotest.(check int64) "default seed" 0L seed;
      Alcotest.(check (float 1e-9)) "rate" 0.5 rate
  | Error e -> Alcotest.failf "rate-only form rejected: %s" e);
  (match Trace.sampling_of_string "42:0.25" with
  | Ok (seed, rate) ->
      Alcotest.(check int64) "seed" 42L seed;
      Alcotest.(check (float 1e-9)) "rate" 0.25 rate
  | Error _ -> Alcotest.fail "seed:rate form rejected");
  (match Trace.sampling_of_string "2.0" with
  | Ok _ -> Alcotest.fail "rate above 1 accepted"
  | Error _ -> ());
  match Trace.sampling_of_string "nope" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let () =
  Alcotest.run "trace"
    [
      ( "histograms",
        [
          Alcotest.test_case "bucket_of_ns monotone" `Quick test_bucket_monotone;
          Alcotest.test_case "bucket bounds contain and tile" `Quick
            test_bucket_bounds_contain;
          Alcotest.test_case "count/total/max/percentile" `Quick test_hist_stats;
          Alcotest.test_case "merged snapshot" `Quick test_hist_merged;
          Alcotest.test_case "observations from many domains" `Quick
            test_hist_multi_domain;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting order" `Quick test_span_nesting;
          Alcotest.test_case "with_span closes on raise" `Quick
            test_span_closes_on_raise;
          Alcotest.test_case "levels gate recording" `Quick
            test_level_gates_recording;
          Alcotest.test_case "sampling rates 0 and 1" `Quick test_sampling_rates;
          Alcotest.test_case "sampling honors the seed" `Quick
            test_sampling_deterministic;
          Alcotest.test_case "sampled-out subtree suppressed" `Quick
            test_sampled_out_suppresses_subtree;
          Alcotest.test_case "sampling_of_string" `Quick test_sampling_of_string;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "multi-domain merge deterministic" `Quick
            test_multi_domain_merge_deterministic;
          Alcotest.test_case "ring overflow stays balanced" `Quick
            test_ring_overflow;
        ] );
      ( "engine",
        [
          Alcotest.test_case "parallel export valid and balanced" `Quick
            test_parallel_export_balanced;
          Alcotest.test_case "chaos export valid and balanced" `Quick
            test_chaos_export_balanced;
          Alcotest.test_case "reset_metrics clears telemetry" `Quick
            test_reset_metrics_clears_telemetry;
        ] );
    ]
