(* Tests for the delinearization algorithm itself (lib/core): the paper's
   running examples, the Figure-5 trace, and theorem properties. *)

module Depeq = Dlz_deptest.Depeq
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Exact = Dlz_deptest.Exact
module Algo = Dlz_core.Algo
module Theorem = Dlz_core.Theorem

let verdict = Alcotest.testable Verdict.pp Verdict.equal

(* Paper equation (1): i1 + 10*j1 - i2 - 10*j2 - 5 = 0,
   i in [0,4], j in [0,9]. *)
let eq1 () =
  Depeq.make (-5)
    [
      (1, Depeq.var ~side:`Src ~level:1 "i1" 4);
      (10, Depeq.var ~side:`Src ~level:2 "j1" 9);
      (-1, Depeq.var ~side:`Dst ~level:1 "i2" 4);
      (-10, Depeq.var ~side:`Dst ~level:2 "j2" 9);
    ]

(* Figure 5 equation: 100k1 - 100k2 + 10j1 - 10i2 + i1 - j2 - 110 = 0,
   i,k in [0,8], j in [0,9]. *)
let eq_fig5 () =
  Depeq.make (-110)
    [
      (100, Depeq.var ~side:`Src ~level:3 "k1" 8);
      (-100, Depeq.var ~side:`Dst ~level:3 "k2" 8);
      (10, Depeq.var ~side:`Src ~level:2 "j1" 9);
      (-10, Depeq.var ~side:`Dst ~level:1 "i2" 8);
      (1, Depeq.var ~side:`Src ~level:1 "i1" 8);
      (-1, Depeq.var ~side:`Dst ~level:2 "j2" 9);
    ]

let test_eq1_independent () =
  Alcotest.check verdict "delinearization proves (1) independent"
    Verdict.Independent (Algo.test (eq1 ()));
  Alcotest.check verdict "exact solver agrees" Verdict.Independent
    (Exact.test [ eq1 () ])

let test_eq1_run () =
  let r = Algo.run ~n_common:2 ~common_ubs:[| 4; 9 |] (eq1 ()) in
  Alcotest.check verdict "run verdict" Verdict.Independent r.verdict;
  Alcotest.(check int) "no dirvecs" 0 (List.length r.dirvecs)

let test_fig5_pieces () =
  let r = Algo.run ~n_common:3 ~common_ubs:[| 8; 9; 8 |] (eq_fig5 ()) in
  Alcotest.check verdict "fig5 dependent" Verdict.Dependent r.verdict;
  Alcotest.(check int) "three separated equations" 3 (List.length r.pieces);
  (* Paper: i1 - j2 = 0; 10*j1 - 10*i2 - 10 = 0; 100*k1 - 100*k2 - 100 = 0. *)
  let constants = List.map (fun (p : Depeq.t) -> p.c0) r.pieces in
  Alcotest.(check (list int)) "piece constants" [ 0; -10; -100 ] constants

let test_fig5_trace () =
  let r = Algo.run ~n_common:3 ~common_ubs:[| 8; 9; 8 |] (eq_fig5 ()) in
  let gks =
    List.map (fun (s : Algo.step) -> Option.value s.gk ~default:(-1)) r.steps
  in
  Alcotest.(check (list int)) "suffix gcds" [ 1; 1; 10; 10; 100; 100; -1 ] gks;
  let barriers =
    List.filter_map
      (fun (s : Algo.step) -> if s.barrier then Some s.k else None)
      r.steps
  in
  Alcotest.(check (list int)) "barriers at k = 1, 3, 5, 7" [ 1; 3; 5; 7 ]
    barriers;
  (* The k = 5 barrier needs the residue -10 of -110 mod 100. *)
  let s5 = List.nth r.steps 4 in
  Alcotest.(check int) "r at k=5" (-10) s5.r

let test_fig5_distances () =
  let r = Algo.run ~n_common:3 ~common_ubs:[| 8; 9; 8 |] (eq_fig5 ()) in
  (* k-level piece: 100*k1 - 100*k2 - 100 = 0 → k2 - k1 = c0/a = -1. *)
  Alcotest.(check bool) "k-level distance -1" true
    (List.mem (3, -1) r.distances)

(* MHL91 fragment (E5): A(10i+j) = A(10(i+2)+j), i in [0,7], j in [0,9]:
   equation 10*i1 + j1 - 10*i2 - j2 - 20 = 0. *)
let eq_mhl () =
  Depeq.make (-20)
    [
      (10, Depeq.var ~side:`Src ~level:1 "i1" 7);
      (1, Depeq.var ~side:`Src ~level:2 "j1" 9);
      (-10, Depeq.var ~side:`Dst ~level:1 "i2" 7);
      (-1, Depeq.var ~side:`Dst ~level:2 "j2" 9);
    ]

let test_mhl_distance () =
  let r = Algo.run ~n_common:2 ~common_ubs:[| 7; 9 |] (eq_mhl ()) in
  Alcotest.check verdict "dependent" Verdict.Dependent r.verdict;
  Alcotest.(check (list (pair int int)))
    "distances: i2 - i1 = -2, j2 - j1 = 0"
    [ (1, -2); (2, 0) ]
    (List.sort compare r.distances)

let test_intro_loop () =
  (* D(i+1) = D(i), i in [0,8]: the write at iteration i reaches the
     read at iteration i+1, so β - α = +1. *)
  let eq =
    Depeq.make 1
      [
        (1, Depeq.var ~side:`Src ~level:1 "i1" 8);
        (-1, Depeq.var ~side:`Dst ~level:1 "i2" 8);
      ]
  in
  let r = Algo.run ~n_common:1 ~common_ubs:[| 8 |] eq in
  Alcotest.check verdict "dependent" Verdict.Dependent r.verdict;
  Alcotest.(check (list (pair int int))) "distance" [ (1, 1) ] r.distances;
  (* D(i) = D(i+5), i in [0,4]: independent. *)
  let eq2 =
    Depeq.make (-5)
      [
        (1, Depeq.var ~side:`Src ~level:1 "i1" 4);
        (-1, Depeq.var ~side:`Dst ~level:1 "i2" 4);
      ]
  in
  Alcotest.check verdict "independent" Verdict.Independent
    (Algo.run ~n_common:1 ~common_ubs:[| 4 |] eq2).verdict

let test_theorem_split () =
  let eq = Algo.sort_terms (eq1 ()) in
  (* After sorting: i1, -i2, 10j1, -10j2.  Split at m=2 with d0 = -5. *)
  Alcotest.(check bool) "condition holds" true
    (Theorem.condition eq ~m:2 ~d0:(-5));
  match Theorem.split eq ~m:2 ~d0:(-5) with
  | None -> Alcotest.fail "expected a split"
  | Some s ->
      Alcotest.(check bool) "product characterization" true
        (Theorem.product_solutions_agree eq s)

(* qcheck: on random small equations the algorithm's verdict is sound
   w.r.t. the exact solver. *)
let gen_eq =
  QCheck.Gen.(
    let* n = int_range 1 4 in
    let* c0 = int_range (-30) 30 in
    let* terms =
      flatten_l
        (List.init n (fun i ->
             let* c = oneofl [ -12; -10; -6; -4; -2; -1; 1; 2; 3; 4; 10 ] in
             let* ub = int_range 0 6 in
             let side = if i mod 2 = 0 then `Src else `Dst in
             return
               ( c,
                 Depeq.var ~side ~level:((i / 2) + 1)
                   (Printf.sprintf "z%d" i) ub )))
    in
    return (Depeq.make c0 terms))

let arb_eq = QCheck.make ~print:Depeq.to_string gen_eq

let prop_sound =
  QCheck.Test.make ~name:"algo verdict sound vs exact" ~count:500 arb_eq
    (fun eq ->
      match (Algo.test eq, Exact.solve [ eq ]) with
      | Verdict.Independent, Exact.Feasible _ -> false
      | _ -> true)

let prop_run_matches_test =
  QCheck.Test.make ~name:"run and test verdicts agree" ~count:300 arb_eq
    (fun eq ->
      let vt = Algo.test eq in
      let vr = (Algo.run ~n_common:2 ~common_ubs:[| 6; 6 |] eq).verdict in
      (* run uses the full solver on pieces, so it may be sharper than
         test, never the other way around. *)
      not (Verdict.equal vt Verdict.Independent)
      || Verdict.equal vr Verdict.Independent)

(* --- residue policies --------------------------------------------------------- *)

let policy_units =
  [
    Alcotest.test_case "all policies sound on eq(1) and fig5" `Quick (fun () ->
        List.iter
          (fun policy ->
            Alcotest.check verdict "eq1" Verdict.Independent
              (Algo.test ~policy (eq1 ()));
            Alcotest.check verdict "fig5" Verdict.Dependent
              (Algo.test ~policy (eq_fig5 ())))
          [ Algo.Nonneg; Algo.Symmetric; Algo.Optimal ]);
    Alcotest.test_case "nonneg policy misses the fig5 k=5 barrier" `Quick
      (fun () ->
        let r =
          Algo.run ~policy:Algo.Nonneg ~n_common:3 ~common_ubs:[| 8; 9; 8 |]
            (eq_fig5 ())
        in
        (* With r = 90 (the nonnegative residue of -110 mod 100) the
           j-dimension barrier condition fails, so fewer pieces split. *)
        Alcotest.(check bool) "fewer than 3 pieces" true
          (List.length r.Algo.pieces < 3));
  ]

let policy_props =
  let policies = [ Algo.Nonneg; Algo.Symmetric; Algo.Optimal ] in
  [
    QCheck.Test.make ~name:"every policy sound vs exact" ~count:400 arb_eq
      (fun eq ->
        List.for_all
          (fun policy ->
            match (Algo.test ~policy eq, Exact.solve [ eq ]) with
            | Verdict.Independent, Exact.Feasible _ -> false
            | _ -> true)
          policies);
    QCheck.Test.make ~name:"pieces multiply solution counts" ~count:200 arb_eq
      (fun eq ->
        (* When the scan completes dependent, the Cartesian-product
           theorem implies #solutions(eq) = Π #solutions(piece). *)
        let r = Algo.run ~n_common:2 ~common_ubs:[| 6; 6 |] eq in
        r.Algo.verdict <> Verdict.Dependent
        || List.length r.Algo.pieces = 0
        || Exact.count_solutions [ eq ]
           = List.fold_left
               (fun acc p -> acc * Exact.count_solutions [ p ])
               1 r.Algo.pieces);
    QCheck.Test.make ~name:"reported dirvecs cover exact directions"
      ~count:250 arb_eq
      (fun eq ->
        let n_common = 2 in
        let r = Algo.run ~n_common ~common_ubs:[| 6; 6 |] eq in
        let exact = Exact.direction_vectors ~n_common [ eq ] in
        List.for_all
          (fun dv ->
            List.exists (fun h -> Dirvec.meet h dv <> None) r.Algo.dirvecs)
          exact);
  ]

(* --- symbolic algorithm -------------------------------------------------------- *)

module Symalgo = Dlz_core.Symalgo
module Symeq = Dlz_deptest.Symeq
module Poly = Dlz_symbolic.Poly
module Assume = Dlz_symbolic.Assume

(* Lift a numeric equation into a symbolic one whose coefficients are
   scaled by powers of N; instantiating N must stay sound. *)
let lift_eq (eq : Depeq.t) =
  let terms =
    List.mapi
      (fun i (t : Depeq.term) ->
        let npow = Poly.pow (Poly.sym "N") (i mod 3) in
        ( Poly.scale t.Depeq.coeff npow,
          Symeq.var ~side:t.Depeq.var.Depeq.v_side
            ~level:t.Depeq.var.Depeq.v_level t.Depeq.var.Depeq.v_name
            (Poly.const t.Depeq.var.Depeq.v_ub) ))
      eq.Depeq.terms
  in
  Symeq.make (Poly.const eq.Depeq.c0) terms

let symbolic_props =
  [
    QCheck.Test.make ~name:"symbolic verdict sound for sampled N" ~count:300
      arb_eq
      (fun eq ->
        let seq = lift_eq eq in
        let env = Assume.assume_ge "N" 2 Assume.empty in
        let r = Symalgo.run ~env ~n_common:2 seq in
        r.Symalgo.verdict <> Verdict.Independent
        || List.for_all
             (fun n ->
               let neq = Symeq.instantiate (fun _ -> n) seq in
               Exact.solve [ neq ] = Exact.Infeasible)
             [ 2; 3; 5 ]);
    QCheck.Test.make ~name:"symbolic on constant equations matches numeric"
      ~count:300 arb_eq
      (fun eq ->
        (* A fully numeric Symeq must give the same verdict as the
           numeric algorithm with the same (default) policy. *)
        let seq =
          Symeq.make (Poly.const eq.Depeq.c0)
            (List.map
               (fun (t : Depeq.term) ->
                 ( Poly.const t.Depeq.coeff,
                   Symeq.var ~side:t.Depeq.var.Depeq.v_side
                     ~level:t.Depeq.var.Depeq.v_level t.Depeq.var.Depeq.v_name
                     (Poly.const t.Depeq.var.Depeq.v_ub) ))
               eq.Depeq.terms)
        in
        let rs = Symalgo.run ~env:Assume.empty ~n_common:2 seq in
        let rn = Algo.run ~n_common:2 ~common_ubs:[| 7; 7 |] eq in
        (* The symbolic side may be less precise, never more. *)
        rs.Symalgo.verdict <> Verdict.Independent
        || rn.Algo.verdict = Verdict.Independent
        || Exact.solve [ eq ] = Exact.Infeasible);
    QCheck.Test.make ~name:"symbolic distances check out numerically"
      ~count:200 arb_eq
      (fun eq ->
        let seq = lift_eq eq in
        let env = Assume.assume_ge "N" 2 Assume.empty in
        let r = Symalgo.run ~env ~n_common:2 seq in
        r.Symalgo.verdict = Verdict.Independent
        || List.for_all
             (fun (lvl, d) ->
               List.for_all
                 (fun n ->
                   let neq = Symeq.instantiate (fun _ -> n) seq in
                   let dn = Poly.eval (fun _ -> n) d in
                   match Exact.distance_set ~level:lvl [ neq ] with
                   | Some ds -> List.for_all (fun x -> x = dn) ds
                   | None -> true)
                 [ 2; 3 ])
             r.Symalgo.distances);
  ]

(* Direct theorem property: every split whose condition holds yields the
   Cartesian-product characterization (brute force). *)
let theorem_props =
  [
    QCheck.Test.make ~name:"condition implies product property" ~count:250
      (QCheck.pair arb_eq (QCheck.int_range 1 3))
      (fun (eq, m) ->
        let eq = Algo.sort_terms eq in
        QCheck.assume (m < Depeq.nvars eq);
        (* Try the least-magnitude residue split of c0 w.r.t. the suffix
           gcd, like the algorithm does. *)
        let suffix =
          List.filteri (fun i _ -> i >= m) eq.Depeq.terms
          |> List.map (fun (t : Depeq.term) -> t.Depeq.coeff)
        in
        let g = Dlz_base.Numth.gcd_list suffix in
        QCheck.assume (g > 0);
        let d0 = Dlz_base.Numth.symmetric_mod eq.Depeq.c0 g in
        match Theorem.split eq ~m ~d0 with
        | None -> true (* condition did not hold: nothing to check *)
        | Some s -> Theorem.product_solutions_agree eq s);
  ]

(* Symbolic distance extraction with a symbolic value. *)
let symbolic_units =
  [
    Alcotest.test_case "symbolic distance -N" `Quick (fun () ->
        (* N*x1 - N*x2 - N^2 = 0 with x in [0, 2N]: x2 - x1 = -N. *)
        let n = Poly.sym "N" in
        let ub = Poly.scale 2 n in
        let eq =
          Symeq.make
            (Poly.neg (Poly.mul n n))
            [
              (n, Symeq.var ~side:`Src ~level:1 "x1" ub);
              (Poly.neg n, Symeq.var ~side:`Dst ~level:1 "x2" ub);
            ]
        in
        let env = Assume.assume_ge "N" 2 Assume.empty in
        let r = Symalgo.run ~env ~n_common:1 eq in
        Alcotest.check verdict "dependent" Verdict.Dependent r.Symalgo.verdict;
        (match r.Symalgo.distances with
        | [ (1, d) ] ->
            Alcotest.(check string) "distance -N" "-N" (Poly.to_string d)
        | _ -> Alcotest.fail "expected one symbolic distance");
        match r.Symalgo.dirvecs with
        | [ dv ] -> Alcotest.(check string) "(>)" "(>)" (Dirvec.to_string dv)
        | _ -> Alcotest.fail "expected one direction");
    Alcotest.test_case "symbolic infeasible distance refuted" `Quick
      (fun () ->
        (* N*x1 - N*x2 - 3*N^2 = 0 with x in [0, 2N]: delta -3N is out of
           the trip range, so independent. *)
        let n = Poly.sym "N" in
        let ub = Poly.scale 2 n in
        let eq =
          Symeq.make
            (Poly.neg (Poly.scale 3 (Poly.mul n n)))
            [
              (n, Symeq.var ~side:`Src ~level:1 "x1" ub);
              (Poly.neg n, Symeq.var ~side:`Dst ~level:1 "x2" ub);
            ]
        in
        let env = Assume.assume_ge "N" 1 Assume.empty in
        let r = Symalgo.run ~env ~n_common:1 eq in
        Alcotest.check verdict "independent" Verdict.Independent
          r.Symalgo.verdict);
  ]

(* Reshape negative cases. *)
let reshape_units =
  let parse src = Dlz_frontend.F77_parser.parse src in
  let prepare src = Dlz_passes.Pipeline.prepare_program (parse src) in
  [
    Alcotest.test_case "out-of-range index blocks the plan" `Quick (fun () ->
        (* C(i + 10*j + 7) with i in [0,4]: index i+7 exceeds extent 10
           only when i > 2 — here i max 4 gives 11 > 9: no reshape. *)
        let prog =
          prepare
            "      REAL C(0:99)\n\
            \      DO 1 I = 0, 4\n\
            \      DO 1 J = 0, 8\n\
             1     C(I+10*J+7) = 0\n\
            \      END\n"
        in
        let _, plans =
          Dlz_core.Reshape.apply ~env:Dlz_symbolic.Assume.empty prog
        in
        Alcotest.(check int) "no plans" 0 (List.length plans));
    Alcotest.test_case "in-range shifted index reshapes" `Quick (fun () ->
        let prog =
          prepare
            "      REAL C(0:99)\n\
            \      DO 1 I = 0, 2\n\
            \      DO 1 J = 0, 8\n\
             1     C(I+10*J+7) = 0\n\
            \      END\n"
        in
        let prog', plans =
          Dlz_core.Reshape.apply ~env:Dlz_symbolic.Assume.empty prog
        in
        Alcotest.(check int) "one plan" 1 (List.length plans);
        let text = Dlz_ir.Ast.to_string prog' in
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          m = 0 || go 0
        in
        Alcotest.(check bool) "C(7+I,J)" true (contains text "C(7+I,J)"));
    Alcotest.test_case "multi-variable dimensions reshape" `Quick (fun () ->
        (* C((I+J) + 10*K): dimension 1 holds the coupled index I+J. *)
        let prog =
          prepare
            "      REAL C(0:99)\n\
            \      DO 1 I = 0, 4\n\
            \      DO 1 J = 0, 4\n\
            \      DO 1 K = 0, 9\n\
             1     C(I+J+10*K) = 0\n\
            \      END\n"
        in
        let prog', plans =
          Dlz_core.Reshape.apply ~env:Dlz_symbolic.Assume.empty prog
        in
        Alcotest.(check int) "one plan" 1 (List.length plans);
        let text = Dlz_ir.Ast.to_string prog' in
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          m = 0 || go 0
        in
        Alcotest.(check bool) "C(I+J,K)" true (contains text "C(I+J,K)"));
    Alcotest.test_case "mixed-stride refs block the plan" `Quick (fun () ->
        (* One ref with stride 10, one with stride 7: inconsistent. *)
        let prog =
          prepare
            "      REAL C(0:99)\n\
            \      DO 1 I = 0, 4\n\
            \      DO 1 J = 0, 8\n\
             1     C(I+10*J) = C(I+7*J)\n\
            \      END\n"
        in
        let _, plans =
          Dlz_core.Reshape.apply ~env:Dlz_symbolic.Assume.empty prog
        in
        Alcotest.(check int) "no plans" 0 (List.length plans));
  ]

(* Summarization rules from paper section 2. *)
module An = Dlz_engine.Analyze

let summarize_units =
  [
    Alcotest.test_case "(<,=) and (=,<) must NOT merge to (<,<)" `Quick
      (fun () ->
        (* Paper: "(<,=) and (=,<) dependence should not be replaced with
           a (<,<) dependence because this dependence have decompositions
           that are not present in the original pair". *)
        let v1 = [| Dirvec.Lt; Dirvec.Eq |] in
        let v2 = [| Dirvec.Eq; Dirvec.Lt |] in
        let out = An.summarize ~self:false [ v1; v2 ] in
        Alcotest.(check int) "stays two rows" 2 (List.length out);
        Alcotest.(check bool) "originals kept" true
          (List.exists (Dirvec.equal v1) out
          && List.exists (Dirvec.equal v2) out));
    Alcotest.test_case "(<) plus (=) is (<=), (<)+(=)+(>) is (*)" `Quick
      (fun () ->
        let out =
          An.summarize ~self:false [ [| Dirvec.Lt |]; [| Dirvec.Eq |] ]
        in
        (match out with
        | [ v ] -> Alcotest.(check string) "(<=)" "(<=)" (Dirvec.to_string v)
        | _ -> Alcotest.fail "expected one row");
        let out3 =
          An.summarize ~self:false
            [ [| Dirvec.Lt |]; [| Dirvec.Eq |]; [| Dirvec.Gt |] ]
        in
        match out3 with
        | [ v ] -> Alcotest.(check string) "(*)" "(*)" (Dirvec.to_string v)
        | _ -> Alcotest.fail "expected one row");
    Alcotest.test_case "(>) plus (<) is (!=)" `Quick (fun () ->
        match An.summarize ~self:false [ [| Dirvec.Gt |]; [| Dirvec.Lt |] ] with
        | [ v ] -> Alcotest.(check string) "(!=)" "(!=)" (Dirvec.to_string v)
        | _ -> Alcotest.fail "expected one row");
  ]

(* Overflow robustness: gigantic strides must degrade conservatively
   rather than crash. *)
let overflow_units =
  [
    Alcotest.test_case "huge strides degrade to all-star" `Quick (fun () ->
        let giant = max_int / 2 in
        let prog =
          Dlz_passes.Pipeline.prepare_program
            (Dlz_frontend.F77_parser.parse
               (Printf.sprintf
                  "      REAL W(0:99)\n\
                  \      DO 1 I = 0, 9\n\
                   1     W(%d*I) = W(%d*I) + 1\n\
                  \      END\n"
                  giant giant))
        in
        (* Must not raise; verdict may be conservative. *)
        ignore (Dlz_engine.Analyze.deps_of_program prog));
  ]

let () =
  Alcotest.run "dlz_core"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "eq(1) independent" `Quick test_eq1_independent;
          Alcotest.test_case "eq(1) run" `Quick test_eq1_run;
          Alcotest.test_case "fig5 pieces" `Quick test_fig5_pieces;
          Alcotest.test_case "fig5 trace" `Quick test_fig5_trace;
          Alcotest.test_case "fig5 distances" `Quick test_fig5_distances;
          Alcotest.test_case "mhl distance (2,0)" `Quick test_mhl_distance;
          Alcotest.test_case "intro loop" `Quick test_intro_loop;
          Alcotest.test_case "theorem split" `Quick test_theorem_split;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sound; prop_run_matches_test ] );
      ("policies", policy_units);
      ("policy-props", List.map QCheck_alcotest.to_alcotest policy_props);
      ("symbolic-props", List.map QCheck_alcotest.to_alcotest symbolic_props);
      ("theorem-props", List.map QCheck_alcotest.to_alcotest theorem_props);
      ("symbolic", symbolic_units);
      ("reshape", reshape_units);
      ("overflow", overflow_units);
      ("summarize", summarize_units);
    ]
