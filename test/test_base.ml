(* Unit and property tests for dlz_base: checked arithmetic, number
   theory, rationals, intervals, the PRNG, budgets and the table
   renderer. *)

open Dlz_base

let check_raises_overflow name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Intx.Overflow _ -> ()
      | _ -> Alcotest.failf "%s: expected Overflow" name)

(* --- Intx ---------------------------------------------------------------- *)

let intx_units =
  [
    Alcotest.test_case "add basics" `Quick (fun () ->
        Alcotest.(check int) "2+3" 5 (Intx.add 2 3);
        Alcotest.(check int) "max+0" max_int (Intx.add max_int 0);
        Alcotest.(check int) "min+max" (-1) (Intx.add min_int max_int));
    check_raises_overflow "add overflows" (fun () -> Intx.add max_int 1);
    check_raises_overflow "add underflows" (fun () -> Intx.add min_int (-1));
    Alcotest.test_case "sub basics" `Quick (fun () ->
        Alcotest.(check int) "3-5" (-2) (Intx.sub 3 5);
        Alcotest.(check int) "0-min+... stays" (max_int - 1)
          (Intx.sub (max_int - 1) 0));
    check_raises_overflow "sub overflows" (fun () -> Intx.sub max_int (-1));
    check_raises_overflow "sub min_int" (fun () -> Intx.sub 2 min_int);
    Alcotest.test_case "mul basics" `Quick (fun () ->
        Alcotest.(check int) "6*7" 42 (Intx.mul 6 7);
        Alcotest.(check int) "0*max" 0 (Intx.mul 0 max_int);
        Alcotest.(check int) "neg" (-42) (Intx.mul (-6) 7));
    check_raises_overflow "mul overflows" (fun () ->
        Intx.mul (max_int / 2) 3);
    check_raises_overflow "mul min by -1" (fun () -> Intx.mul min_int (-1));
    check_raises_overflow "neg min_int" (fun () -> Intx.neg min_int);
    check_raises_overflow "abs min_int" (fun () -> Intx.abs min_int);
    Alcotest.test_case "pow" `Quick (fun () ->
        Alcotest.(check int) "2^10" 1024 (Intx.pow 2 10);
        Alcotest.(check int) "x^0" 1 (Intx.pow 12345 0);
        Alcotest.(check int) "x^1" (-7) (Intx.pow (-7) 1);
        Alcotest.(check int) "(-2)^3" (-8) (Intx.pow (-2) 3));
    check_raises_overflow "pow overflows" (fun () -> Intx.pow 10 30);
    Alcotest.test_case "pow negative exponent" `Quick (fun () ->
        match Intx.pow 2 (-1) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "pos/neg parts" `Quick (fun () ->
        Alcotest.(check int) "pos of 5" 5 (Intx.pos_part 5);
        Alcotest.(check int) "pos of -5" 0 (Intx.pos_part (-5));
        Alcotest.(check int) "neg of 5" 0 (Intx.neg_part 5);
        Alcotest.(check int) "neg of -5" (-5) (Intx.neg_part (-5));
        Alcotest.(check int) "pos of 0" 0 (Intx.pos_part 0);
        Alcotest.(check int) "neg of 0" 0 (Intx.neg_part 0));
    Alcotest.test_case "sum" `Quick (fun () ->
        Alcotest.(check int) "sum" 10 (Intx.sum [ 1; 2; 3; 4 ]);
        Alcotest.(check int) "empty" 0 (Intx.sum []));
  ]

let intx_props =
  let small = QCheck.int_range (-10000) 10000 in
  [
    QCheck.Test.make ~name:"c = c+ + c-" ~count:500 small (fun c ->
        Intx.pos_part c + Intx.neg_part c = c);
    QCheck.Test.make ~name:"checked ops agree with native in range" ~count:500
      (QCheck.pair small small) (fun (a, b) ->
        Intx.add a b = a + b && Intx.sub a b = a - b && Intx.mul a b = a * b);
  ]

(* --- Numth --------------------------------------------------------------- *)

let numth_units =
  [
    Alcotest.test_case "gcd basics" `Quick (fun () ->
        Alcotest.(check int) "gcd 12 18" 6 (Numth.gcd 12 18);
        Alcotest.(check int) "gcd 0 0" 0 (Numth.gcd 0 0);
        Alcotest.(check int) "gcd -4 6" 2 (Numth.gcd (-4) 6);
        Alcotest.(check int) "gcd 0 5" 5 (Numth.gcd 0 5);
        Alcotest.(check int) "gcd_list" 10 (Numth.gcd_list [ 100; -10; 30 ]);
        Alcotest.(check int) "gcd_list []" 0 (Numth.gcd_list []));
    Alcotest.test_case "lcm" `Quick (fun () ->
        Alcotest.(check int) "lcm 4 6" 12 (Numth.lcm 4 6);
        Alcotest.(check int) "lcm 0 5" 0 (Numth.lcm 0 5);
        Alcotest.(check int) "lcm -4 6" 12 (Numth.lcm (-4) 6));
    Alcotest.test_case "floor div/mod" `Quick (fun () ->
        Alcotest.(check int) "fdiv 7 2" 3 (Numth.fdiv 7 2);
        Alcotest.(check int) "fdiv -7 2" (-4) (Numth.fdiv (-7) 2);
        Alcotest.(check int) "fdiv 7 -2" (-4) (Numth.fdiv 7 (-2));
        Alcotest.(check int) "fmod -7 2" 1 (Numth.fmod (-7) 2);
        Alcotest.(check int) "cdiv 7 2" 4 (Numth.cdiv 7 2);
        Alcotest.(check int) "cdiv -7 2" (-3) (Numth.cdiv (-7) 2));
    Alcotest.test_case "symmetric_mod" `Quick (fun () ->
        Alcotest.(check int) "-110 mod 100" (-10)
          (Numth.symmetric_mod (-110) 100);
        Alcotest.(check int) "7 mod 4" (-1) (Numth.symmetric_mod 7 4);
        Alcotest.(check int) "6 mod 4 (tie -> +)" 2 (Numth.symmetric_mod 6 4);
        Alcotest.(check int) "0 mod 3" 0 (Numth.symmetric_mod 0 3));
    Alcotest.test_case "nearest_residue (fig5 case)" `Quick (fun () ->
        (* -110 mod 100 nearest to -5 must be -10 (paper Figure 5). *)
        Alcotest.(check int) "fig5 residue" (-10)
          (Numth.nearest_residue (-110) 100 (-5)));
    Alcotest.test_case "typed zero-divisor faults" `Quick (fun () ->
        (* A bare [Stdlib.Division_by_zero] would escape the engine's
           fault taxonomy; the helpers must raise the typed error. *)
        let check_div0 name f =
          match f () with
          | exception Intx.Div_by_zero op ->
              Alcotest.(check string) (name ^ " payload") name op
          | exception e ->
              Alcotest.failf "%s: expected Div_by_zero, got %s" name
                (Printexc.to_string e)
          | _ -> Alcotest.failf "%s: expected Div_by_zero" name
        in
        check_div0 "fdiv" (fun () -> Numth.fdiv 7 0);
        check_div0 "fmod" (fun () -> Numth.fmod 7 0);
        check_div0 "cdiv" (fun () -> Numth.cdiv 7 0);
        check_div0 "symmetric_mod" (fun () -> Numth.symmetric_mod 7 0);
        check_div0 "symmetric_mod" (fun () -> Numth.symmetric_mod 7 (-4));
        check_div0 "nearest_residue" (fun () -> Numth.nearest_residue 7 0 1));
    Alcotest.test_case "division min_int edge faults, not wraps" `Quick
      (fun () ->
        (* Native [/] silently wraps on (min_int, -1); the floor/ceil
           wrappers must fault into the taxonomy instead. *)
        (match Numth.fdiv min_int (-1) with
        | exception Intx.Overflow _ -> ()
        | q -> Alcotest.failf "fdiv min_int -1: expected Overflow, got %d" q);
        (match Numth.cdiv min_int (-1) with
        | exception Intx.Overflow _ -> ()
        | q -> Alcotest.failf "cdiv min_int -1: expected Overflow, got %d" q);
        Alcotest.(check int) "fdiv min_int 1" min_int (Numth.fdiv min_int 1);
        Alcotest.(check int) "cdiv min_int 1" min_int (Numth.cdiv min_int 1);
        Alcotest.(check int) "fdiv min_int 2" (min_int / 2)
          (Numth.fdiv min_int 2);
        Alcotest.(check int) "fmod min_int 2" 0 (Numth.fmod min_int 2));
    Alcotest.test_case "symmetric_mod at extreme magnitudes" `Quick (fun () ->
        (* Counterexamples from the differential-oracle sweep: the old
           [2*r > g] comparison wrapped for moduli above [max_int/2] and
           picked the far residue.  The fuzzer's near-overflow family
           hits these through Algo.residue's symmetric remainders. *)
        Alcotest.(check int) "just past the midpoint goes negative"
          (-(max_int / 2))
          (Numth.symmetric_mod ((max_int / 2) + 1) max_int);
        Alcotest.(check int) "midpoint stays positive" (max_int / 2)
          (Numth.symmetric_mod (max_int / 2) max_int);
        Alcotest.(check int) "g-1 is -1" (-1)
          (Numth.symmetric_mod (max_int - 1) max_int);
        Alcotest.(check int) "negative side folds up" (max_int / 2)
          (Numth.symmetric_mod (-((max_int / 2) + 1)) max_int);
        (* Congruence and minimality survive at the extremes. *)
        let g = max_int - 2 in
        List.iter
          (fun a ->
            let r = Numth.symmetric_mod a g in
            Alcotest.(check int) "congruent" 0 ((a - r) mod g);
            (* |r| minimal: 2r <= g and 2r > -g, phrased without any
               doubling or subtraction that wraps at these magnitudes
               (each side of [||] makes the other trivially true). *)
            Alcotest.(check bool) "minimal" true
              ((r <= 0 || r <= g - r) && (r >= 0 || -r < g + r)))
          [ max_int; min_int + 1; max_int / 3 * 2; 1 - max_int ]);
    Alcotest.test_case "nearest_residue at extreme magnitudes" `Quick
      (fun () ->
        (* The rejected representative may not fit in an int even when
           the chosen one does; the old code materialized both. *)
        Alcotest.(check int) "huge modulus, nearby target" 99
          (Numth.nearest_residue 99 max_int 100);
        Alcotest.(check int) "wraps to the class below the target"
          (max_int - 1)
          (Numth.nearest_residue (-1) max_int (max_int - 2));
        Alcotest.(check int) "negative target" (-99)
          (Numth.nearest_residue (-99) max_int (-100));
        (* The rejected representative here sits at [target + g - 1],
           far outside the int range if materialized eagerly. *)
        Alcotest.(check int) "rejected representative would not fit"
          (max_int - 2)
          (Numth.nearest_residue (max_int - 2) (max_int - 2) (max_int - 1)));
    Alcotest.test_case "egcd at extreme magnitudes" `Quick (fun () ->
        (* Bezout identity on near-max inputs: the quotient chain must
           either stay exact or fault, never wrap. *)
        List.iter
          (fun (a, b) ->
            match Numth.egcd a b with
            | g, x, y ->
                Alcotest.(check int) "gcd part" (Numth.gcd a b) g;
                Alcotest.(check bool) "bezout" true
                  ((a * x) + (b * y) = g)
            | exception Intx.Overflow _ -> ())
          [
            (max_int, max_int - 1);
            (max_int, 2);
            (max_int - 1, -(max_int / 2));
            (min_int + 1, 3);
          ]);
    Alcotest.test_case "divides" `Quick (fun () ->
        Alcotest.(check bool) "3 | 9" true (Numth.divides 3 9);
        Alcotest.(check bool) "3 | 10" false (Numth.divides 3 10);
        Alcotest.(check bool) "0 | 0" true (Numth.divides 0 0);
        Alcotest.(check bool) "0 | 5" false (Numth.divides 0 5);
        Alcotest.(check bool) "-3 | 9" true (Numth.divides (-3) 9));
  ]

let numth_props =
  let small = QCheck.int_range (-2000) 2000 in
  let pos = QCheck.int_range 1 500 in
  [
    QCheck.Test.make ~name:"egcd Bezout identity" ~count:500
      (QCheck.pair small small) (fun (a, b) ->
        let g, x, y = Numth.egcd a b in
        g = Numth.gcd a b && (a * x) + (b * y) = g);
    QCheck.Test.make ~name:"fdiv/fmod division law" ~count:500
      (QCheck.pair small (QCheck.int_range (-60) 60)) (fun (a, b) ->
        QCheck.assume (b <> 0);
        let q = Numth.fdiv a b and r = Numth.fmod a b in
        (b * q) + r = a && if b > 0 then r >= 0 && r < b else r <= 0 && r > b);
    QCheck.Test.make ~name:"symmetric_mod congruent and small" ~count:500
      (QCheck.pair small pos) (fun (a, g) ->
        let r = Numth.symmetric_mod a g in
        (a - r) mod g = 0 && 2 * r <= g && 2 * r > -g);
    QCheck.Test.make ~name:"nearest_residue is congruent and nearest"
      ~count:500
      (QCheck.triple small pos small)
      (fun (a, g, target) ->
        let r = Numth.nearest_residue a g target in
        (a - r) mod g = 0
        && abs (r - target) * 2 <= g
           (* no congruent value is strictly closer *)
        && abs (r - target) <= abs (r - g - target)
        && abs (r - target) <= abs (r + g - target));
  ]

(* --- Rat ----------------------------------------------------------------- *)

let rat_units =
  [
    Alcotest.test_case "normalization" `Quick (fun () ->
        let r = Rat.make 6 (-4) in
        Alcotest.(check int) "num" (-3) (Rat.num r);
        Alcotest.(check int) "den" 2 (Rat.den r);
        Alcotest.(check bool) "zero den raises" true
          (match Rat.make 1 0 with
          | exception Division_by_zero -> true
          | _ -> false));
    Alcotest.test_case "floor/ceil" `Quick (fun () ->
        Alcotest.(check int) "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
        Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
        Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
        Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2)));
    Alcotest.test_case "to_int_exn" `Quick (fun () ->
        Alcotest.(check int) "4/2" 2 (Rat.to_int_exn (Rat.make 4 2));
        Alcotest.(check bool) "1/2 raises" true
          (match Rat.to_int_exn (Rat.make 1 2) with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "printing" `Quick (fun () ->
        Alcotest.(check string) "int prints plain" "3"
          (Rat.to_string (Rat.of_int 3));
        Alcotest.(check string) "fraction" "-3/2"
          (Rat.to_string (Rat.make 3 (-2))));
  ]

let arb_rat =
  QCheck.map
    (fun (n, d) -> Rat.make n (if d = 0 then 1 else d))
    QCheck.(pair (int_range (-300) 300) (int_range (-30) 30))

let rat_props =
  [
    QCheck.Test.make ~name:"add commutative" ~count:300
      (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    QCheck.Test.make ~name:"mul distributes over add" ~count:300
      (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c))
          (Rat.add (Rat.mul a b) (Rat.mul a c)));
    QCheck.Test.make ~name:"sub then add round-trips" ~count:300
      (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        Rat.equal a (Rat.add (Rat.sub a b) b));
    QCheck.Test.make ~name:"compare consistent with to_float" ~count:300
      (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        let c = Rat.compare a b in
        let f = compare (Rat.to_float a) (Rat.to_float b) in
        c = 0 || c = f);
    QCheck.Test.make ~name:"floor <= x < floor+1" ~count:300 arb_rat (fun a ->
        let f = Rat.floor a in
        Rat.compare (Rat.of_int f) a <= 0
        && Rat.compare a (Rat.of_int (f + 1)) < 0);
  ]

(* --- Ivl ----------------------------------------------------------------- *)

let ivl_units =
  [
    Alcotest.test_case "construction" `Quick (fun () ->
        Alcotest.(check bool) "empty when lo>hi" true
          (Ivl.is_empty (Ivl.make 3 2));
        Alcotest.(check bool) "point not empty" false
          (Ivl.is_empty (Ivl.point 5));
        Alcotest.(check int) "lo" (-2) (Ivl.lo (Ivl.make (-2) 7));
        Alcotest.(check int) "hi" 7 (Ivl.hi (Ivl.make (-2) 7)));
    Alcotest.test_case "ops" `Quick (fun () ->
        Alcotest.(check bool) "add" true
          (Ivl.equal (Ivl.make 3 12) (Ivl.add (Ivl.make 1 4) (Ivl.make 2 8)));
        Alcotest.(check bool) "scale by neg flips" true
          (Ivl.equal (Ivl.make (-8) (-2)) (Ivl.scale (-2) (Ivl.make 1 4)));
        Alcotest.(check bool) "neg" true
          (Ivl.equal (Ivl.make (-4) (-1)) (Ivl.neg (Ivl.make 1 4)));
        Alcotest.(check bool) "inter disjoint empty" true
          (Ivl.is_empty (Ivl.inter (Ivl.make 0 1) (Ivl.make 3 4)));
        Alcotest.(check int) "max_abs" 7 (Ivl.max_abs (Ivl.make (-7) 3));
        Alcotest.(check int) "width of empty" (-1) (Ivl.width Ivl.empty));
    Alcotest.test_case "empty propagates" `Quick (fun () ->
        Alcotest.(check bool) "add empty" true
          (Ivl.is_empty (Ivl.add Ivl.empty (Ivl.make 0 3)));
        Alcotest.(check bool) "join with empty is identity" true
          (Ivl.equal (Ivl.make 1 2) (Ivl.join Ivl.empty (Ivl.make 1 2))));
  ]

let arb_ivl =
  QCheck.map
    (fun (a, b) -> Ivl.make (min a b) (max a b))
    QCheck.(pair (int_range (-50) 50) (int_range (-50) 50))

let ivl_props =
  let mem_points iv =
    if Ivl.is_empty iv then []
    else List.init (Ivl.width iv + 1) (fun i -> Ivl.lo iv + i)
  in
  [
    QCheck.Test.make ~name:"add is exact Minkowski sum" ~count:200
      (QCheck.pair arb_ivl arb_ivl) (fun (a, b) ->
        let s = Ivl.add a b in
        List.for_all
          (fun x -> List.for_all (fun y -> Ivl.mem (x + y) s) (mem_points b))
          (mem_points a));
    QCheck.Test.make ~name:"scale exact on endpoints" ~count:300
      (QCheck.pair (QCheck.int_range (-9) 9) arb_ivl) (fun (c, iv) ->
        let s = Ivl.scale c iv in
        Ivl.is_empty iv
        || (Ivl.mem (c * Ivl.lo iv) s && Ivl.mem (c * Ivl.hi iv) s));
    QCheck.Test.make ~name:"inter is conjunction of membership" ~count:300
      (QCheck.triple (QCheck.int_range (-60) 60) arb_ivl arb_ivl)
      (fun (x, a, b) ->
        Ivl.mem x (Ivl.inter a b) = (Ivl.mem x a && Ivl.mem x b));
    QCheck.Test.make ~name:"join contains both" ~count:300
      (QCheck.pair arb_ivl arb_ivl) (fun (a, b) ->
        let j = Ivl.join a b in
        List.for_all (fun x -> Ivl.mem x j) (mem_points a)
        && List.for_all (fun x -> Ivl.mem x j) (mem_points b));
  ]

(* --- Prng / Table -------------------------------------------------------- *)

let prng_units =
  [
    Alcotest.test_case "deterministic" `Quick (fun () ->
        let a = Prng.create 7L and b = Prng.create 7L in
        for _ = 1 to 50 do
          Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
        done);
    Alcotest.test_case "ranges" `Quick (fun () ->
        let g = Prng.create 1L in
        for _ = 1 to 500 do
          let x = Prng.int_in g (-3) 9 in
          if x < -3 || x > 9 then Alcotest.fail "out of range"
        done);
    Alcotest.test_case "split decorrelates" `Quick (fun () ->
        let g = Prng.create 3L in
        let h = Prng.split g in
        Alcotest.(check bool) "different streams" true
          (Prng.next64 g <> Prng.next64 h));
    Alcotest.test_case "shuffle permutes" `Quick (fun () ->
        let g = Prng.create 5L in
        let arr = Array.init 20 Fun.id in
        Prng.shuffle g arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "same multiset"
          (Array.init 20 Fun.id) sorted);
  ]

let table_units =
  [
    Alcotest.test_case "renders aligned" `Quick (fun () ->
        let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "a"; "b" ] in
        Table.add_row t [ "x"; "1" ];
        Table.add_row t [ "yy"; "22" ];
        let s = Table.render t in
        Alcotest.(check bool) "contains header" true
          (String.length s > 0 && String.sub s 0 1 = "|");
        let lines = String.split_on_char '\n' s in
        let widths =
          List.filter_map
            (fun l -> if l = "" then None else Some (String.length l))
            lines
        in
        Alcotest.(check bool) "all lines same width" true
          (match widths with [] -> false | w :: ws -> List.for_all (( = ) w) ws));
    Alcotest.test_case "short rows pad" `Quick (fun () ->
        let t = Table.create [ "a"; "b"; "c" ] in
        Table.add_row t [ "only" ];
        Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0));
    Alcotest.test_case "too-long row rejected" `Quick (fun () ->
        let t = Table.create [ "a" ] in
        match Table.add_row t [ "x"; "y" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* --- Budget -------------------------------------------------------------- *)

let budget_units =
  [
    Alcotest.test_case "unlimited never raises" `Quick (fun () ->
        let b = Budget.unlimited in
        for _ = 1 to 10_000 do
          Budget.spend b
        done;
        Alcotest.(check bool) "is_unlimited" true (Budget.is_unlimited b);
        Alcotest.(check bool) "not exhausted" true (Budget.exhausted b = None);
        Alcotest.(check bool)
          "no fuel bound" true
          (Budget.remaining_fuel b = None));
    Alcotest.test_case "fuel runs out at the limit" `Quick (fun () ->
        let b = Budget.create ~fuel:10 () in
        for _ = 1 to 10 do
          Budget.spend b
        done;
        Alcotest.(check bool)
          "probe reports fuel" true
          (Budget.exhausted b = Some "fuel");
        match Budget.spend b with
        | exception Budget.Exhausted "fuel" -> ()
        | () -> Alcotest.fail "11th spend should exhaust"
        | exception e -> raise e);
    Alcotest.test_case "cost-weighted spending" `Quick (fun () ->
        let b = Budget.create ~fuel:100 () in
        Budget.spend ~cost:60 b;
        Alcotest.(check bool)
          "40 left" true
          (Budget.remaining_fuel b = Some 40);
        match Budget.spend ~cost:41 b with
        | exception Budget.Exhausted "fuel" -> ()
        | () -> Alcotest.fail "over-cost spend should exhaust"
        | exception e -> raise e);
    Alcotest.test_case "sub-budget drains the parent chain" `Quick (fun () ->
        let parent = Budget.create ~fuel:5 () in
        let child = Budget.sub ~fuel:100 parent in
        Alcotest.(check bool)
          "remaining is the chain min" true
          (Budget.remaining_fuel child = Some 5);
        (match
           for _ = 1 to 6 do
             Budget.spend child
           done
         with
        | exception Budget.Exhausted "fuel" -> ()
        | () -> Alcotest.fail "parent cap should bind the child"
        | exception e -> raise e);
        Alcotest.(check bool)
          "parent drained through the child" true
          (Budget.exhausted parent = Some "fuel"));
    Alcotest.test_case "sub without limits is the parent itself" `Quick
      (fun () ->
        let parent = Budget.create ~fuel:3 () in
        let child = Budget.sub parent in
        Budget.spend child;
        Alcotest.(check bool)
          "same fuel pool" true
          (Budget.remaining_fuel parent = Some 2));
    Alcotest.test_case "expired deadline raises on first spend" `Quick
      (fun () ->
        let b = Budget.create ~timeout_ms:0 () in
        match Budget.spend b with
        | exception Budget.Exhausted "deadline" -> ()
        | () -> Alcotest.fail "zero timeout should fire immediately"
        | exception e -> raise e);
    Alcotest.test_case "child inherits the tighter parent deadline" `Quick
      (fun () ->
        let parent = Budget.create ~timeout_ms:0 () in
        let child = Budget.sub ~timeout_ms:60_000 parent in
        Alcotest.(check bool)
          "probe sees the parent deadline" true
          (Budget.exhausted child = Some "deadline"));
    Alcotest.test_case "check raises, generous budget does not" `Quick
      (fun () ->
        let b = Budget.create ~fuel:1_000 ~timeout_ms:60_000 () in
        Budget.check b;
        Alcotest.(check bool) "bounded" false (Budget.is_unlimited b));
    (* Regression: a huge timeout used to overflow the ns deadline
       (now + ms*1e6 wrapping negative), making the child spuriously
       exhausted from birth.  The arithmetic must saturate instead. *)
    Alcotest.test_case "huge timeout saturates instead of wrapping" `Quick
      (fun () ->
        let b = Budget.create ~timeout_ms:max_int () in
        Budget.spend b;
        Alcotest.(check bool)
          "far-future deadline not exhausted" true
          (Budget.exhausted b = None);
        let parent = Budget.create ~fuel:10 () in
        let child = Budget.sub ~timeout_ms:max_int parent in
        Budget.spend child;
        Alcotest.(check bool)
          "saturated child deadline not exhausted" true
          (Budget.exhausted child = None));
    Alcotest.test_case "parent deadline clamps a longer child ask" `Quick
      (fun () ->
        let parent = Budget.create ~timeout_ms:0 () in
        let child = Budget.sub ~timeout_ms:max_int parent in
        (* The child asked for forever; the parent's expired deadline
           must still bind. *)
        Alcotest.(check bool)
          "parent deadline binds" true
          (Budget.exhausted child = Some "deadline"));
  ]

let () =
  Alcotest.run "dlz_base"
    [
      ("intx", intx_units);
      ("intx-props", List.map QCheck_alcotest.to_alcotest intx_props);
      ("numth", numth_units);
      ("numth-props", List.map QCheck_alcotest.to_alcotest numth_props);
      ("rat", rat_units);
      ("rat-props", List.map QCheck_alcotest.to_alcotest rat_props);
      ("ivl", ivl_units);
      ("ivl-props", List.map QCheck_alcotest.to_alcotest ivl_props);
      ("prng", prng_units);
      ("budget", budget_units);
      ("table", table_units);
    ]
