(* Tests for dlz_deptest: the direction-vector lattice, every classic
   dependence test (soundness against the exact solver), Fourier-Motzkin
   with and without tightening, and the hierarchy driver. *)

open Dlz_deptest
module Ivl = Dlz_base.Ivl
module Prng = Dlz_base.Prng
module Poly = Dlz_symbolic.Poly

let verdict = Alcotest.testable Verdict.pp Verdict.equal

let var ?(side = `Src) ?(level = 0) name ub = Depeq.var ~side ~level name ub

(* Paper equation (1). *)
let eq1 () =
  Depeq.make (-5)
    [
      (1, var ~side:`Src ~level:1 "i1" 4);
      (10, var ~side:`Src ~level:2 "j1" 9);
      (-1, var ~side:`Dst ~level:1 "i2" 4);
      (-10, var ~side:`Dst ~level:2 "j2" 9);
    ]

(* --- Depeq -------------------------------------------------------------- *)

let depeq_units =
  [
    Alcotest.test_case "make merges and drops zeros" `Quick (fun () ->
        let v1 = var ~level:1 "x" 5 in
        let eq = Depeq.make 3 [ (2, v1); (3, v1); (0, var ~level:2 "y" 5) ] in
        Alcotest.(check int) "one term" 1 (Depeq.nvars eq);
        Alcotest.(check (list int)) "merged coeff" [ 5 ] (Depeq.coeffs eq));
    Alcotest.test_case "negative bound rejected" `Quick (fun () ->
        match Depeq.make 0 [ (1, var "x" (-1)) ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "lhs_interval" `Quick (fun () ->
        let eq = Depeq.make (-5) [ (2, var "x" 3); (-1, var ~level:2 "y" 4) ] in
        Alcotest.(check bool) "[-9, 1]" true
          (Ivl.equal (Ivl.make (-9) 1) (Depeq.lhs_interval eq)));
    Alcotest.test_case "assignments enumerates the box" `Quick (fun () ->
        let eq = Depeq.make 0 [ (1, var "x" 2); (1, var ~level:2 "y" 1) ] in
        Alcotest.(check int) "3*2 points" 6
          (List.length (List.of_seq (Depeq.assignments eq))));
    Alcotest.test_case "common_pairs" `Quick (fun () ->
        let eq = eq1 () in
        let pairs = Depeq.common_pairs eq in
        Alcotest.(check int) "two levels" 2 (List.length pairs);
        match pairs with
        | [ (1, Some (1, _), Some (-1, _)); (2, Some (10, _), Some (-10, _)) ] ->
            ()
        | _ -> Alcotest.fail "unexpected pairing");
  ]

(* --- Dirvec lattice ------------------------------------------------------- *)

let all_dirs = Dirvec.[ Lt; Eq; Gt; Le; Ge; Ne; Star ]

let dirvec_units =
  [
    Alcotest.test_case "meet basics" `Quick (fun () ->
        Alcotest.(check bool) "< meet <= is <" true
          (Dirvec.meet_dir Dirvec.Lt Dirvec.Le = Some Dirvec.Lt);
        Alcotest.(check bool) "< meet > empty" true
          (Dirvec.meet_dir Dirvec.Lt Dirvec.Gt = None);
        Alcotest.(check bool) "<= meet >= is =" true
          (Dirvec.meet_dir Dirvec.Le Dirvec.Ge = Some Dirvec.Eq));
    Alcotest.test_case "join basics" `Quick (fun () ->
        Alcotest.(check bool) "< join = is <=" true
          (Dirvec.join_dir Dirvec.Lt Dirvec.Eq = Dirvec.Le);
        Alcotest.(check bool) "< join > is !=" true
          (Dirvec.join_dir Dirvec.Lt Dirvec.Gt = Dirvec.Ne);
        Alcotest.(check bool) "<= join >= is *" true
          (Dirvec.join_dir Dirvec.Le Dirvec.Ge = Dirvec.Star));
    Alcotest.test_case "refinements" `Quick (fun () ->
        Alcotest.(check int) "* has 3" 3 (List.length (Dirvec.refinements Dirvec.Star));
        Alcotest.(check int) "<= has 2" 2 (List.length (Dirvec.refinements Dirvec.Le));
        Alcotest.(check int) "< has 1" 1 (List.length (Dirvec.refinements Dirvec.Lt)));
    Alcotest.test_case "vector meet length mixing" `Quick (fun () ->
        let a = [| Dirvec.Lt |] and b = [| Dirvec.Star; Dirvec.Eq |] in
        match Dirvec.meet a b with
        | Some m ->
            Alcotest.(check int) "length 2" 2 (Array.length m);
            Alcotest.(check bool) "kept tail" true (m.(1) = Dirvec.Eq)
        | None -> Alcotest.fail "expected a meet");
    Alcotest.test_case "plausible / reverse" `Quick (fun () ->
        Alcotest.(check bool) "(<,>) plausible" true
          (Dirvec.plausible [| Dirvec.Lt; Dirvec.Gt |]);
        Alcotest.(check bool) "(=,>) not plausible" false
          (Dirvec.plausible [| Dirvec.Eq; Dirvec.Gt |]);
        Alcotest.(check bool) "(=,=) plausible" true
          (Dirvec.plausible [| Dirvec.Eq; Dirvec.Eq |]);
        Alcotest.(check string) "reverse" "(>, =, <)"
          (Dirvec.to_string (Dirvec.reverse [| Dirvec.Lt; Dirvec.Eq; Dirvec.Gt |])));
    Alcotest.test_case "to_string" `Quick (fun () ->
        Alcotest.(check string) "mixed" "(*, <=, !=)"
          (Dirvec.to_string [| Dirvec.Star; Dirvec.Le; Dirvec.Ne |]));
  ]

let dirvec_props =
  let arb_dir = QCheck.oneofl all_dirs in
  [
    QCheck.Test.make ~name:"meet is intersection of admits" ~count:500
      (QCheck.triple arb_dir arb_dir (QCheck.int_range (-3) 3))
      (fun (a, b, d) ->
        let admits_meet =
          match Dirvec.meet_dir a b with
          | Some m -> Dirvec.admits m d
          | None -> false
        in
        admits_meet = (Dirvec.admits a d && Dirvec.admits b d));
    QCheck.Test.make ~name:"join is union of admits" ~count:500
      (QCheck.triple arb_dir arb_dir (QCheck.int_range (-3) 3))
      (fun (a, b, d) ->
        Dirvec.admits (Dirvec.join_dir a b) d
        = (Dirvec.admits a d || Dirvec.admits b d));
    QCheck.Test.make ~name:"refinements partition basic cases" ~count:100
      arb_dir (fun d ->
        let refs = Dirvec.refinements d in
        List.for_all Dirvec.is_basic refs
        && List.for_all (fun r -> Dirvec.leq_dir r d) refs);
    QCheck.Test.make ~name:"of_delta admitted by d iff admits" ~count:200
      (QCheck.pair arb_dir (QCheck.int_range (-3) 3)) (fun (d, delta) ->
        Dirvec.admits d delta
        = (Dirvec.meet_dir (Dirvec.of_delta delta) d <> None));
  ]

(* --- random equations and soundness --------------------------------------- *)

let gen_eq =
  QCheck.Gen.(
    let* n = int_range 0 5 in
    let* c0 = int_range (-40) 40 in
    let* terms =
      flatten_l
        (List.init n (fun i ->
             let* c = oneofl [ -15; -10; -6; -5; -3; -2; -1; 1; 2; 3; 5; 10; 12 ] in
             let* ub = int_range 0 7 in
             let side = if i mod 2 = 0 then `Src else `Dst in
             return (c, var ~side ~level:((i / 2) + 1) (Printf.sprintf "z%d" i) ub)))
    in
    return (Depeq.make c0 terms))

let arb_eq = QCheck.make ~print:Depeq.to_string gen_eq

let sound name test =
  QCheck.Test.make ~name:(name ^ " sound vs exact") ~count:800 arb_eq
    (fun eq ->
      match (Verdict.conservative (test eq), Exact.solve [ eq ]) with
      | Verdict.Independent, Exact.Feasible _ -> false
      | _ -> true)

let soundness_props =
  [
    sound "gcd" (Gcd_test.test ?dirs:None);
    sound "banerjee" (Banerjee.test ?dirs:None);
    sound "svpc" Svpc.test;
    sound "acyclic" Acyclic.test;
    sound "residue" Residue.test;
    sound "fm-real" (Fm.test Fm.Real);
    sound "fm-tightened" (Fm.test Fm.Tightened);
  ]

(* --- exactness on the tests' home turf ------------------------------------- *)

let exactness_props =
  [
    (* SVPC is exact on <=1-variable equations. *)
    QCheck.Test.make ~name:"svpc exact on single variable" ~count:500
      (QCheck.triple (QCheck.int_range (-30) 30)
         (QCheck.int_range (-8) 8) (QCheck.int_range 0 9))
      (fun (c0, c, ub) ->
        QCheck.assume (c <> 0);
        let eq = Depeq.make c0 [ (c, var "z" ub) ] in
        let expected =
          if Exact.solve [ eq ] = Exact.Infeasible then Verdict.Independent
          else Verdict.Dependent
        in
        Verdict.equal (Svpc.test eq) expected);
    (* Banerjee is exact (for real solutions) on each interval endpoint:
       if it says dependent, the real interval contains 0. *)
    QCheck.Test.make ~name:"banerjee interval contains all LHS values"
      ~count:500 arb_eq (fun eq ->
        let iv = Banerjee.interval eq in
        Seq.for_all
          (fun asg -> Ivl.mem (Depeq.eval eq asg) iv)
          (Seq.take 200 (Depeq.assignments eq)));
    (* Residue test is exact on pure difference equations. *)
    QCheck.Test.make ~name:"residue exact on differences" ~count:500
      (QCheck.quad (QCheck.int_range (-12) 12) (QCheck.int_range 0 8)
         (QCheck.int_range 0 8) QCheck.bool)
      (fun (d, ub1, ub2, flip) ->
        let c1, c2 = if flip then (-1, 1) else (1, -1) in
        let eq =
          Depeq.make d
            [ (c1, var ~level:1 "x" ub1); (c2, var ~side:`Dst ~level:1 "y" ub2) ]
        in
        let expected =
          if Exact.solve [ eq ] = Exact.Infeasible then Verdict.Independent
          else Verdict.Dependent
        in
        Verdict.equal (Residue.test eq) expected);
    (* Real FM never reports infeasible when an integer point exists, and
       is exact on rational feasibility: if it says infeasible then the
       exact solver agrees. *)
    QCheck.Test.make ~name:"fm-real infeasible implies exact infeasible"
      ~count:500 arb_eq (fun eq ->
        Fm.test Fm.Real eq <> Verdict.Independent
        || Exact.solve [ eq ] = Exact.Infeasible);
  ]

(* --- direction-constrained tests ------------------------------------------- *)

let dirs_units =
  [
    Alcotest.test_case "banerjee with '=' proves D(i)=D(i+5) indep at =" `Quick
      (fun () ->
        let eq =
          Depeq.make (-5)
            [
              (1, var ~side:`Src ~level:1 "i1" 9);
              (-1, var ~side:`Dst ~level:1 "i2" 9);
            ]
        in
        let dirs _ = Dirvec.Eq in
        Alcotest.check verdict "= infeasible" Verdict.Independent
          (Banerjee.test ~dirs eq);
        (* i1 = i2 + 5 means the sink iteration is 5 below the source:
           feasible only under '>'. *)
        let dirs _ = Dirvec.Gt in
        Alcotest.check verdict "> feasible" Verdict.Dependent
          (Banerjee.test ~dirs eq);
        let dirs _ = Dirvec.Lt in
        Alcotest.check verdict "< infeasible" Verdict.Independent
          (Banerjee.test ~dirs eq));
    Alcotest.test_case "gcd with '=' merges coefficients" `Quick (fun () ->
        (* 2*a - 2*b = 1 is infeasible; with '=', coefficient collapses
           to 0 and gcd 0 does not divide 1. *)
        let eq =
          Depeq.make 1
            [
              (2, var ~side:`Src ~level:1 "a" 9);
              (-2, var ~side:`Dst ~level:1 "b" 9);
            ]
        in
        Alcotest.check verdict "plain gcd: indep (2 does not divide 1)"
          Verdict.Independent (Gcd_test.test eq);
        let eq2 =
          Depeq.make 2
            [
              (3, var ~side:`Src ~level:1 "a" 9);
              (-3, var ~side:`Dst ~level:1 "b" 9);
            ]
        in
        Alcotest.check verdict "3x-3y=−2 indep under =" Verdict.Independent
          (Gcd_test.test ~dirs:(fun _ -> Dirvec.Eq) eq2));
    Alcotest.test_case "direction feasibility in tiny loops" `Quick (fun () ->
        Alcotest.(check bool) "< infeasible with ub 0" false
          (Hierarchy.feasible_dir ~ub:0 Dirvec.Lt);
        Alcotest.(check bool) "= feasible with ub 0" true
          (Hierarchy.feasible_dir ~ub:0 Dirvec.Eq));
  ]

(* Banerjee-with-direction soundness: under each basic direction the
   interval covers every actual LHS value of solutions satisfying it.
   Levels must have both instances present, otherwise the direction also
   constrains a variable absent from the assignment. *)
let gen_paired_eq =
  QCheck.Gen.(
    let* n = int_range 1 3 in
    let* c0 = int_range (-40) 40 in
    let* terms =
      flatten_l
        (List.init n (fun lvl ->
             let* ca = oneofl [ -10; -5; -2; -1; 1; 2; 5; 10 ] in
             let* cb = oneofl [ -10; -5; -2; -1; 1; 2; 5; 10 ] in
             let* ua = int_range 0 7 in
             let* ub = int_range 0 7 in
             return
               [
                 (ca, var ~side:`Src ~level:(lvl + 1)
                        (Printf.sprintf "a%d" lvl) ua);
                 (cb, var ~side:`Dst ~level:(lvl + 1)
                        (Printf.sprintf "b%d" lvl) ub);
               ]))
    in
    return (Depeq.make c0 (List.concat terms)))

let arb_paired_eq = QCheck.make ~print:Depeq.to_string gen_paired_eq

let dirs_props =
  [
    QCheck.Test.make ~name:"banerjee directional interval sound" ~count:400
      (QCheck.pair arb_paired_eq (QCheck.oneofl Dirvec.[ Lt; Eq; Gt ]))
      (fun (eq, d) ->
        let dirs _ = d in
        let iv = Banerjee.interval ~dirs eq in
        let ok asg =
          (* does the assignment satisfy the direction at every level? *)
          let levels =
            List.sort_uniq compare
              (List.filter_map
                 (fun ((v : Depeq.var), _) ->
                   if v.Depeq.v_level > 0 then Some v.Depeq.v_level else None)
                 asg)
          in
          List.for_all
            (fun lvl ->
              let find side =
                List.find_map
                  (fun ((v : Depeq.var), x) ->
                    if v.Depeq.v_level = lvl && v.Depeq.v_side = side then
                      Some x
                    else None)
                  asg
              in
              match (find `Src, find `Dst) with
              | Some a, Some b -> Dirvec.admits d (b - a)
              | _ -> true)
            levels
        in
        Seq.for_all
          (fun asg -> (not (ok asg)) || Ivl.mem (Depeq.eval eq asg) iv)
          (Seq.take 300 (Depeq.assignments eq)));
  ]

(* --- Fourier-Motzkin specifics ---------------------------------------------- *)

let fm_units =
  [
    Alcotest.test_case "eq(1): real dependent, tightened independent" `Quick
      (fun () ->
        Alcotest.check verdict "real" Verdict.Dependent (Fm.test Fm.Real (eq1 ()));
        Alcotest.check verdict "tightened" Verdict.Independent
          (Fm.test Fm.Tightened (eq1 ())));
    Alcotest.test_case "empty system feasible" `Quick (fun () ->
        Alcotest.(check bool) "feasible" true (Fm.feasible Fm.Real ~nvars:0 []));
    Alcotest.test_case "contradictory constants" `Quick (fun () ->
        Alcotest.(check bool) "infeasible" false
          (Fm.feasible Fm.Real ~nvars:1
             [
               { Fm.cs = [| 1 |]; bound = 3 };
               { Fm.cs = [| -1 |]; bound = -5 };
             ]));
    Alcotest.test_case "eliminations counts work" `Quick (fun () ->
        let nvars, rows = Fm.system_of_equation (eq1 ()) in
        Alcotest.(check bool) "positive" true
          (Fm.eliminations Fm.Real ~nvars rows > 0));
  ]

let fm_props =
  [
    (* Tightening never loses integer solutions. *)
    QCheck.Test.make ~name:"tightened FM sound for integers" ~count:600 arb_eq
      (fun eq ->
        match (Fm.test Fm.Tightened eq, Exact.solve [ eq ]) with
        | Verdict.Independent, Exact.Feasible _ -> false
        | _ -> true);
    (* Real FM is at least as conservative as tightened FM. *)
    QCheck.Test.make ~name:"tightened at least as sharp as real" ~count:400
      arb_eq (fun eq ->
        not
          (Fm.test Fm.Real eq = Verdict.Independent
          && Fm.test Fm.Tightened eq = Verdict.Dependent));
  ]

(* --- exact solver ------------------------------------------------------------- *)

let exact_units =
  [
    Alcotest.test_case "finds witness" `Quick (fun () ->
        let eq = Depeq.make (-7) [ (2, var "x" 5); (1, var ~level:2 "y" 5) ] in
        match Exact.solve [ eq ] with
        | Exact.Feasible asg ->
            Alcotest.(check int) "witness satisfies" 0 (Depeq.eval eq asg)
        | _ -> Alcotest.fail "expected feasible");
    Alcotest.test_case "systems conjoin" `Quick (fun () ->
        let x = var "x" 9 in
        let eq_a = Depeq.make (-4) [ (1, x) ] in
        let eq_b = Depeq.make (-5) [ (1, x) ] in
        Alcotest.(check bool) "x=4 and x=5 infeasible" true
          (Exact.solve [ eq_a; eq_b ] = Exact.Infeasible);
        Alcotest.(check bool) "each alone feasible" true
          (Exact.solve [ eq_a ] <> Exact.Infeasible));
    Alcotest.test_case "budget produces Unknown" `Quick (fun () ->
        let eq =
          Depeq.make (-1)
            [ (3, var "x" 1000); (-3, var ~side:`Dst "y" 1000) ]
        in
        (* gcd prune kills it instantly, so use a tiny budget on a
           feasible problem instead. *)
        let eq2 =
          Depeq.make 0
            (List.init 6 (fun i ->
                 ((if i mod 2 = 0 then 1 else -1),
                  var ~level:(i + 1) (Printf.sprintf "v%d" i) 30)))
        in
        ignore eq;
        match Exact.solve ~max_nodes:2 [ eq2 ] with
        | Exact.Unknown -> ()
        | Exact.Feasible _ -> ()
        | Exact.Infeasible -> Alcotest.fail "cannot be infeasible");
    Alcotest.test_case "count_solutions brute force" `Quick (fun () ->
        (* x + y = 3, x,y in [0,3]: 4 solutions. *)
        let eq =
          Depeq.make (-3) [ (1, var "x" 3); (1, var ~level:2 "y" 3) ]
        in
        Alcotest.(check int) "4 points" 4 (Exact.count_solutions [ eq ]));
    Alcotest.test_case "direction_vectors exact" `Quick (fun () ->
        (* i1 - i2 - 1 = 0 on [0,3]: only '<'. *)
        let eq =
          Depeq.make 1
            [
              (1, var ~side:`Src ~level:1 "i1" 3);
              (-1, var ~side:`Dst ~level:1 "i2" 3);
            ]
        in
        match Exact.direction_vectors ~n_common:1 [ eq ] with
        | [ dv ] -> Alcotest.(check string) "(<)" "(<)" (Dirvec.to_string dv)
        | _ -> Alcotest.fail "expected exactly one vector");
    Alcotest.test_case "distance_set" `Quick (fun () ->
        let eq =
          Depeq.make 2
            [
              (1, var ~side:`Src ~level:1 "i1" 5);
              (-1, var ~side:`Dst ~level:1 "i2" 5);
            ]
        in
        Alcotest.(check (option (list int))) "{+2}" (Some [ 2 ])
          (Exact.distance_set ~level:1 [ eq ]));
  ]

let exact_props =
  [
    (* Brute force agreement on tiny boxes. *)
    QCheck.Test.make ~name:"exact agrees with brute force" ~count:300
      (QCheck.make ~print:Depeq.to_string
         QCheck.Gen.(
           let* n = int_range 1 3 in
           let* c0 = int_range (-15) 15 in
           let* terms =
             flatten_l
               (List.init n (fun i ->
                    let* c = int_range (-5) 5 in
                    let* ub = int_range 0 4 in
                    return (c, var ~level:(i + 1) (Printf.sprintf "w%d" i) ub)))
           in
           return (Depeq.make c0 terms)))
      (fun eq ->
        let brute =
          Seq.exists (Depeq.holds eq) (Depeq.assignments eq)
        in
        (Exact.solve [ eq ] <> Exact.Infeasible) = brute);
  ]

(* --- hierarchy -------------------------------------------------------------- *)

let hierarchy_units =
  [
    Alcotest.test_case "directions of the serial loop" `Quick (fun () ->
        (* D(i+1) = D(i): i1 + 1 = i2, only '<' survives. *)
        let eq =
          Depeq.make 1
            [
              (1, var ~side:`Src ~level:1 "i1" 8);
              (-1, var ~side:`Dst ~level:1 "i2" 8);
            ]
        in
        let p =
          Problem.numeric_of_equations ~n_common:1 ~common_ubs:[| 8 |] [ eq ]
        in
        match Hierarchy.directions p with
        | [ dv ] -> Alcotest.(check string) "(<)" "(<)" (Dirvec.to_string dv)
        | l -> Alcotest.failf "expected one vector, got %d" (List.length l));
    Alcotest.test_case "coupled subscripts intersect" `Quick (fun () ->
        (* A(i,i) vs A(j, j+1) style: eq1: i1 - i2 = 0; eq2: i1 - i2 + 1 = 0:
           jointly infeasible. *)
        let mk c0 =
          Depeq.make c0
            [
              (1, var ~side:`Src ~level:1 "i1" 9);
              (-1, var ~side:`Dst ~level:1 "i2" 9);
            ]
        in
        let p =
          Problem.numeric_of_equations ~n_common:1 ~common_ubs:[| 9 |]
            [ mk 0; mk 1 ]
        in
        Alcotest.(check int) "no directions" 0
          (List.length (Hierarchy.directions p)));
    Alcotest.test_case "tiny trip counts prune < and >" `Quick (fun () ->
        let eq =
          Depeq.make 0
            [
              (1, var ~side:`Src ~level:1 "i1" 0);
              (-1, var ~side:`Dst ~level:1 "i2" 0);
            ]
        in
        let p =
          Problem.numeric_of_equations ~n_common:1 ~common_ubs:[| 0 |] [ eq ]
        in
        match Hierarchy.directions p with
        | [ dv ] -> Alcotest.(check string) "(=)" "(=)" (Dirvec.to_string dv)
        | _ -> Alcotest.fail "expected only =");
  ]

let hierarchy_props =
  [
    (* The hierarchy's surviving set always contains the exact set. *)
    QCheck.Test.make ~name:"hierarchy covers exact directions" ~count:300
      arb_eq (fun eq ->
        let n_common =
          List.fold_left
            (fun m (t : Depeq.term) -> max m t.Depeq.var.Depeq.v_level)
            0 eq.Depeq.terms
        in
        QCheck.assume (n_common >= 1);
        let p =
          Problem.numeric_of_equations ~n_common
            ~common_ubs:(Array.make n_common 7)
            [ eq ]
        in
        let hier = Hierarchy.directions p in
        let exact = Exact.direction_vectors ~n_common [ eq ] in
        List.for_all
          (fun dv ->
            List.exists (fun h -> Dirvec.meet h dv <> None) hier)
          exact);
  ]

(* --- ddvec / classify --------------------------------------------------------- *)

let misc_units =
  [
    Alcotest.test_case "ddvec" `Quick (fun () ->
        let dv = [| Dirvec.Star; Dirvec.Lt |] in
        let dd = Ddvec.with_distance (Ddvec.of_dirvec dv) 2 1 in
        Alcotest.(check string) "(*, +1)" "(*, +1)" (Ddvec.to_string dd);
        Alcotest.(check string) "to_dirvec" "(*, <)"
          (Dirvec.to_string (Ddvec.to_dirvec dd));
        Alcotest.(check bool) "consistent" true (Ddvec.consistent dd dv);
        let dd0 = Ddvec.of_dirvec [| Dirvec.Eq |] in
        Alcotest.(check string) "= becomes 0" "(0)" (Ddvec.to_string dd0));
    Alcotest.test_case "ddvec join" `Quick (fun () ->
        let a = Ddvec.with_distance (Ddvec.of_dirvec [| Dirvec.Lt |]) 1 2 in
        let b = Ddvec.with_distance (Ddvec.of_dirvec [| Dirvec.Lt |]) 1 2 in
        Alcotest.(check string) "same distances stay" "(+2)"
          (Ddvec.to_string (Ddvec.join a b));
        let c = Ddvec.with_distance (Ddvec.of_dirvec [| Dirvec.Lt |]) 1 3 in
        Alcotest.(check string) "mixed widen" "(<)"
          (Ddvec.to_string (Ddvec.join a c)));
    Alcotest.test_case "classify" `Quick (fun () ->
        Alcotest.(check string) "true" "true"
          (Classify.to_string (Classify.kind ~src:`Write ~dst:`Read));
        Alcotest.(check string) "anti" "anti"
          (Classify.to_string (Classify.kind ~src:`Read ~dst:`Write));
        Alcotest.(check string) "output" "output"
          (Classify.to_string (Classify.kind ~src:`Write ~dst:`Write));
        Alcotest.(check string) "input" "input"
          (Classify.to_string (Classify.kind ~src:`Read ~dst:`Read)));
    Alcotest.test_case "symeq numeric bridge" `Quick (fun () ->
        let sv = Symeq.var ~side:`Src ~level:1 "i1" (Poly.const 9) in
        let eq = Symeq.make (Poly.const (-5)) [ (Poly.const 2, sv) ] in
        (match Symeq.to_numeric eq with
        | Some neq ->
            Alcotest.(check int) "c0" (-5) neq.Depeq.c0;
            Alcotest.(check (list int)) "coeffs" [ 2 ] (Depeq.coeffs neq)
        | None -> Alcotest.fail "expected numeric");
        let sv2 = Symeq.var ~side:`Src ~level:1 "i1" (Poly.sym "N") in
        let eq2 = Symeq.make Poly.zero [ (Poly.sym "N", sv2) ] in
        Alcotest.(check bool) "symbolic stays symbolic" true
          (Symeq.to_numeric eq2 = None);
        let neq2 = Symeq.instantiate (fun _ -> 4) eq2 in
        Alcotest.(check (list int)) "instantiated" [ 4 ] (Depeq.coeffs neq2);
        Alcotest.(check (list string)) "symbols" [ "N" ] (Symeq.symbols eq2));
  ]

(* Closed-form Banerjee bounds must agree with vertex enumeration. *)
let closed_form_props =
  [
    QCheck.Test.make ~name:"closed-form equals vertex bounds, all dirs"
      ~count:600
      (QCheck.pair arb_eq
         (QCheck.oneofl Dirvec.[ Lt; Eq; Gt; Le; Ge; Ne; Star ]))
      (fun (eq, d) ->
        let dirs _ = d in
        Ivl.equal (Banerjee.interval ~dirs eq)
          (Banerjee.interval_closed ~dirs eq));
  ]

(* Exhaustive cross-check of the two per-pair derivations, against each
   other and against brute-force enumeration of the region's integer
   points: every direction, all bounds in [0,6]², all coefficients in
   [-5,5]².  The randomized property above samples composed equations;
   this pins the primitive the composition is built from. *)
let pair_exhaustive_units =
  let admits d (alpha, beta) =
    match (d : Dirvec.dir) with
    | Dirvec.Lt -> alpha < beta
    | Dirvec.Eq -> alpha = beta
    | Dirvec.Gt -> alpha > beta
    | Dirvec.Le -> alpha <= beta
    | Dirvec.Ge -> alpha >= beta
    | Dirvec.Ne -> alpha <> beta
    | Dirvec.Star -> true
  in
  let brute a ub_a b ub_b d =
    let acc = ref Ivl.empty in
    for alpha = 0 to ub_a do
      for beta = 0 to ub_b do
        if admits d (alpha, beta) then
          acc := Ivl.join !acc (Ivl.point ((a * alpha) + (b * beta)))
      done
    done;
    !acc
  in
  let all_dirs = Dirvec.[ Lt; Eq; Gt; Le; Ge; Ne; Star ] in
  let check_grid name f =
    Alcotest.test_case name `Quick (fun () ->
        List.iter
          (fun d ->
            for ub_a = 0 to 6 do
              for ub_b = 0 to 6 do
                for a = -5 to 5 do
                  for b = -5 to 5 do
                    f d a ub_a b ub_b
                  done
                done
              done
            done)
          all_dirs)
  in
  let pp_case d a ub_a b ub_b =
    Printf.sprintf "dir=%s a=%d ub_a=%d b=%d ub_b=%d"
      (Dirvec.dir_to_string d) a ub_a b ub_b
  in
  [
    check_grid "vertex = closed-form on the full grid"
      (fun d a ub_a b ub_b ->
        let v = Banerjee.pair_interval a ub_a b ub_b d in
        let c = Banerjee.pair_interval_closed a ub_a b ub_b d in
        if not (Ivl.equal v c) then
          Alcotest.failf "diverge at %s: vertex %s, closed %s"
            (pp_case d a ub_a b ub_b) (Format.asprintf "%a" Ivl.pp v) (Format.asprintf "%a" Ivl.pp c));
    check_grid "vertex bounds are exact on the full grid"
      (fun d a ub_a b ub_b ->
        let v = Banerjee.pair_interval a ub_a b ub_b d in
        let g = brute a ub_a b ub_b d in
        if not (Ivl.equal v g) then
          Alcotest.failf "inexact at %s: vertex %s, ground truth %s"
            (pp_case d a ub_a b ub_b) (Format.asprintf "%a" Ivl.pp v) (Format.asprintf "%a" Ivl.pp g));
  ]

(* --- lambda test ---------------------------------------------------------------- *)

let lambda_units =
  [
    Alcotest.test_case "coupled subscripts refuted by a combination" `Quick
      (fun () ->
        (* A(i+1, i) vs A(j, j): eq1: i1 + 1 - j2 = 0; eq2: i1 - j2 = 0.
           Subtracting gives 1 = 0. *)
        let i1 = var ~side:`Src ~level:1 "i1" 9 in
        let j2 = var ~side:`Dst ~level:1 "j2" 9 in
        let e1 = Depeq.make 1 [ (1, i1); (-1, j2) ] in
        let e2 = Depeq.make 0 [ (1, i1); (-1, j2) ] in
        Alcotest.check verdict "independent" Verdict.Independent
          (Lambda.test [ e1; e2 ]);
        (* Per-dimension Banerjee alone cannot. *)
        Alcotest.check verdict "eq1 alone dependent" Verdict.Dependent
          (Banerjee.test e1);
        Alcotest.check verdict "eq2 alone dependent" Verdict.Dependent
          (Banerjee.test e2));
    Alcotest.test_case "fails on eq(1), as the paper says" `Quick (fun () ->
        Alcotest.check verdict "dependent" Verdict.Dependent
          (Lambda.test [ eq1 () ]));
    Alcotest.test_case "combinations cancel the shared variable" `Quick
      (fun () ->
        let x = var ~level:1 "x" 5 and y = var ~side:`Dst ~level:1 "y" 5 in
        let e1 = Depeq.make 0 [ (2, x); (3, y) ] in
        let e2 = Depeq.make (-1) [ (4, x); (-1, y) ] in
        List.iter
          (fun (c : Depeq.t) ->
            List.iter
              (fun (t : Depeq.term) ->
                (* no combination retains both x and y at once with the
                   cancelled one's coefficient *)
                ignore t)
              c.Depeq.terms)
          (Lambda.combinations e1 e2);
        Alcotest.(check int) "two combinations" 2
          (List.length (Lambda.combinations e1 e2)));
  ]

let lambda_props =
  [
    QCheck.Test.make ~name:"lambda sound vs exact on systems" ~count:400
      (QCheck.pair arb_eq arb_eq)
      (fun (e1, e2) ->
        match (Lambda.test [ e1; e2 ], Exact.solve [ e1; e2 ]) with
        | Verdict.Independent, Exact.Feasible _ -> false
        | _ -> true);
  ]

(* --- omega ------------------------------------------------------------------- *)

let omega_units =
  [
    Alcotest.test_case "eq(1) is Unsat" `Quick (fun () ->
        Alcotest.(check bool) "unsat" true (Omega.solve [ eq1 () ] = Omega.Unsat));
    Alcotest.test_case "simple feasible" `Quick (fun () ->
        let eq = Depeq.make (-7) [ (2, var "x" 5); (1, var ~level:2 "y" 5) ] in
        Alcotest.(check bool) "sat" true (Omega.solve [ eq ] = Omega.Sat));
    Alcotest.test_case "divisibility-only infeasibility" `Quick (fun () ->
        (* 6x - 10y = 3 has no integer solutions regardless of bounds. *)
        let eq =
          Depeq.make (-3)
            [ (6, var "x" 100); (-10, var ~side:`Dst "y" 100) ]
        in
        Alcotest.(check bool) "unsat" true (Omega.solve [ eq ] = Omega.Unsat));
    Alcotest.test_case "conjoined equalities" `Quick (fun () ->
        let x = var "x" 9 in
        let e1 = Depeq.make (-4) [ (1, x) ] in
        let e2 = Depeq.make (-5) [ (1, x) ] in
        Alcotest.(check bool) "unsat" true (Omega.solve [ e1; e2 ] = Omega.Unsat);
        Alcotest.(check bool) "each sat" true (Omega.solve [ e1 ] = Omega.Sat));
    Alcotest.test_case "tiny budget yields Unknown -> Dependent" `Quick
      (fun () ->
        let eq =
          Depeq.make (-1)
            (List.init 6 (fun i ->
                 ( (if i mod 2 = 0 then 7 else -5),
                   var ~level:(i + 1) (Printf.sprintf "v%d" i) 30 )))
        in
        match Omega.solve ~fuel:3 [ eq ] with
        | Omega.Unknown ->
            Alcotest.(check bool) "dependent" true
              (Omega.test ~fuel:3 [ eq ] = Verdict.Dependent)
        | _ -> () (* may still finish: fine *));
  ]

let omega_props =
  [
    QCheck.Test.make ~name:"omega agrees with exact" ~count:800 arb_eq
      (fun eq ->
        match (Omega.solve [ eq ], Exact.solve [ eq ]) with
        | Omega.Sat, Exact.Infeasible | Omega.Unsat, Exact.Feasible _ -> false
        | _ -> true);
    QCheck.Test.make ~name:"omega decides (no Unknown on small systems)"
      ~count:400 arb_eq
      (fun eq -> Omega.solve [ eq ] <> Omega.Unknown);
    QCheck.Test.make ~name:"omega agrees with exact on pairs" ~count:300
      (QCheck.pair arb_eq arb_eq)
      (fun (e1, e2) ->
        (* Equations share variables only when (side, level, name) all
           match; ensure consistent bounds by construction of gen_eq is
           not guaranteed, so compare against exact, which now also takes
           the tightest range. *)
        match (Omega.solve [ e1; e2 ], Exact.solve [ e1; e2 ]) with
        | Omega.Sat, Exact.Infeasible | Omega.Unsat, Exact.Feasible _ -> false
        | _ -> true);
  ]

(* --- range vectors ------------------------------------------------------------ *)

let rangevec_units =
  [
    Alcotest.test_case "of_exact on the serial loop" `Quick (fun () ->
        (* D(i+1) = D(i): delta is exactly +1. *)
        let eq =
          Depeq.make 1
            [
              (1, var ~side:`Src ~level:1 "i1" 8);
              (-1, var ~side:`Dst ~level:1 "i2" 8);
            ]
        in
        match Rangevec.of_exact ~common_ubs:[| 8 |] [ eq ] with
        | Some r -> Alcotest.(check string) "([1, 1])" "([1, 1])"
                      (Rangevec.to_string r)
        | None -> Alcotest.fail "expected ranges");
    Alcotest.test_case "of_exact empty dependence" `Quick (fun () ->
        let eq =
          Depeq.make (-5)
            [
              (1, var ~side:`Src ~level:1 "i1" 4);
              (-1, var ~side:`Dst ~level:1 "i2" 4);
            ]
        in
        match Rangevec.of_exact ~common_ubs:[| 4 |] [ eq ] with
        | Some r ->
            Alcotest.(check bool) "empty" true
              (Dlz_base.Ivl.is_empty r.(0))
        | None -> Alcotest.fail "expected ranges");
    Alcotest.test_case "of_directions" `Quick (fun () ->
        let r =
          Rangevec.of_directions ~common_ubs:[| 5; 5 |]
            [ [| Dirvec.Lt; Dirvec.Eq |]; [| Dirvec.Eq; Dirvec.Eq |] ]
        in
        Alcotest.(check string) "([0, 5], [0, 0])" "([0, 5], [0, 0])"
          (Rangevec.to_string r));
    Alcotest.test_case "with_distances refines" `Quick (fun () ->
        let r =
          Rangevec.of_directions ~common_ubs:[| 5 |] [ [| Dirvec.Lt |] ]
        in
        let r' = Rangevec.with_distances r [ (1, 2) ] in
        Alcotest.(check string) "([2, 2])" "([2, 2])" (Rangevec.to_string r'));
    Alcotest.test_case "subsumes" `Quick (fun () ->
        let wide = [| Dlz_base.Ivl.make (-3) 3 |] in
        let tight = [| Dlz_base.Ivl.make 0 2 |] in
        Alcotest.(check bool) "wide covers tight" true
          (Rangevec.subsumes wide tight);
        Alcotest.(check bool) "tight does not cover wide" false
          (Rangevec.subsumes tight wide);
        Alcotest.(check bool) "anything covers empty" true
          (Rangevec.subsumes tight [| Dlz_base.Ivl.empty |]));
  ]

let () =
  Alcotest.run "dlz_deptest"
    [
      ("depeq", depeq_units);
      ("dirvec", dirvec_units);
      ("dirvec-props", List.map QCheck_alcotest.to_alcotest dirvec_props);
      ("soundness", List.map QCheck_alcotest.to_alcotest soundness_props);
      ("exactness", List.map QCheck_alcotest.to_alcotest exactness_props);
      ("directional", dirs_units);
      ("directional-props", List.map QCheck_alcotest.to_alcotest dirs_props);
      ("fm", fm_units);
      ("fm-props", List.map QCheck_alcotest.to_alcotest fm_props);
      ("exact", exact_units);
      ("exact-props", List.map QCheck_alcotest.to_alcotest exact_props);
      ("hierarchy", hierarchy_units);
      ("hierarchy-props", List.map QCheck_alcotest.to_alcotest hierarchy_props);
      ("misc", misc_units);
      ("closed-form-props", List.map QCheck_alcotest.to_alcotest closed_form_props);
      ("pair-exhaustive", pair_exhaustive_units);
      ("lambda", lambda_units);
      ("lambda-props", List.map QCheck_alcotest.to_alcotest lambda_props);
      ("omega", omega_units);
      ("omega-props", List.map QCheck_alcotest.to_alcotest omega_props);
      ("rangevec", rangevec_units);
    ]
