(* Tests for dlz_passes: loop normalization, induction-variable
   substitution, EQUIVALENCE linearization, pointer conversion, and the
   interpreter used to prove all of them semantics-preserving. *)

module F77 = Dlz_frontend.F77_parser
module C_parser = Dlz_frontend.C_parser
module Ast = Dlz_ir.Ast
module Expr = Dlz_ir.Expr
module Normalize = Dlz_passes.Normalize
module Induction = Dlz_passes.Induction
module Equivalence = Dlz_passes.Equivalence
module Pointers = Dlz_passes.Pointers
module Interp = Dlz_passes.Interp
module Pipeline = Dlz_passes.Pipeline

let traces_equal ?syms a b =
  Interp.equivalent (Interp.run ?syms a) (Interp.run ?syms b)

let check_preserves ?syms name before after =
  Alcotest.(check bool) (name ^ ": trace preserved") true
    (traces_equal ?syms before after)

(* --- interpreter ------------------------------------------------------------- *)

let interp_units =
  [
    Alcotest.test_case "records reads then write" `Quick (fun () ->
        let prog =
          F77.parse
            "      REAL A(0:3)\n\
            \      A(1) = A(2)\n\
            \      END\n"
        in
        match Interp.run prog with
        | [ { Interp.kind = Interp.Read; addr = 2; _ };
            { Interp.kind = Interp.Write; addr = 1; _ } ] -> ()
        | t -> Alcotest.failf "unexpected trace of length %d" (List.length t));
    Alcotest.test_case "column-major addressing" `Quick (fun () ->
        let prog =
          F77.parse
            "      REAL A(0:9,0:9)\n\
            \      A(3,2) = 0\n\
            \      END\n"
        in
        match Interp.run prog with
        | [ { Interp.addr = 23; _ } ] -> ()
        | [ { Interp.addr = n; _ } ] -> Alcotest.failf "addr %d, wanted 23" n
        | _ -> Alcotest.fail "trace length");
    Alcotest.test_case "EQUIVALENCE shares a block" `Quick (fun () ->
        let prog =
          F77.parse
            "      REAL A(0:9,0:9)\n\
            \      REAL B(0:4,0:19)\n\
            \      EQUIVALENCE (A, B)\n\
            \      A(0,1) = 0\n\
            \      B(0,2) = 0\n\
            \      END\n"
        in
        match Interp.run prog with
        | [ { Interp.block = b1; addr = 10; _ }; { Interp.block = b2; addr = 10; _ } ]
          ->
            Alcotest.(check string) "same block" b1 b2
        | _ -> Alcotest.fail "expected two writes to the same cell");
    Alcotest.test_case "subscript out of range detected" `Quick (fun () ->
        let prog =
          F77.parse "      REAL A(0:3)\n      A(7) = 0\n      END\n"
        in
        match Interp.run prog with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "loops with negative step" `Quick (fun () ->
        let prog =
          F77.parse
            "      REAL A(0:4)\n\
            \      DO I = 4, 0, -1\n\
            \      A(I) = 0\n\
            \      ENDDO\n\
            \      END\n"
        in
        Alcotest.(check int) "five writes" 5 (List.length (Interp.run prog)));
    Alcotest.test_case "symbol values" `Quick (fun () ->
        let prog =
          F77.parse
            "      REAL A(0:99)\n\
            \      DO I = 0, N-1\n\
            \      A(I) = 0\n\
            \      ENDDO\n\
            \      END\n"
        in
        Alcotest.(check int) "N=7 writes" 7
          (List.length (Interp.run ~syms:[ ("N", 7) ] prog)));
  ]

(* --- normalization ------------------------------------------------------------ *)

let normalize_units =
  [
    Alcotest.test_case "shifts lower bound" `Quick (fun () ->
        let before =
          F77.parse
            "      REAL A(0:9)\n\
            \      DO I = 1, 5\n\
            \      A(I) = A(I-1)\n\
            \      ENDDO\n\
            \      END\n"
        in
        let after = Normalize.all before in
        (match after.Ast.body with
        | [ Ast.Do { lo = Expr.Const 0; hi = Expr.Const 4; step = Expr.Const 1; _ } ] ->
            ()
        | _ -> Alcotest.fail "not normalized");
        check_preserves "shift" before after);
    Alcotest.test_case "step > 1" `Quick (fun () ->
        let before =
          F77.parse
            "      REAL A(0:99)\n\
            \      DO I = 0, 90, 10\n\
            \      A(I) = 1\n\
            \      ENDDO\n\
            \      END\n"
        in
        let after = Normalize.all before in
        (match after.Ast.body with
        | [ Ast.Do { hi = Expr.Const 9; step = Expr.Const 1; _ } ] -> ()
        | _ -> Alcotest.fail "trip count wrong");
        check_preserves "step" before after);
    Alcotest.test_case "negative step" `Quick (fun () ->
        let before =
          F77.parse
            "      REAL A(0:9)\n\
            \      DO I = 8, 0, -2\n\
            \      A(I) = 1\n\
            \      ENDDO\n\
            \      END\n"
        in
        let after = Normalize.all before in
        (match after.Ast.body with
        | [ Ast.Do { hi = Expr.Const 4; step = Expr.Const 1; _ } ] -> ()
        | _ -> Alcotest.fail "trip count wrong");
        check_preserves "downward" before after);
    Alcotest.test_case "empty loop deleted" `Quick (fun () ->
        let before =
          F77.parse
            "      REAL A(0:9)\n\
            \      DO I = 5, 2\n\
            \      A(I) = 1\n\
            \      ENDDO\n\
            \      END\n"
        in
        let after = Normalize.all before in
        Alcotest.(check int) "gone" 0 (List.length after.Ast.body));
    Alcotest.test_case "PARAMETER folding" `Quick (fun () ->
        let before =
          F77.parse
            "      PARAMETER (N=5)\n\
            \      REAL A(0:N)\n\
            \      DO I = 0, N-1\n\
            \      A(I) = N\n\
            \      ENDDO\n\
            \      END\n"
        in
        let after = Normalize.all before in
        match after.Ast.body with
        | [ Ast.Do { hi = Expr.Const 4; _ } ] -> ()
        | _ -> Alcotest.fail "parameter not folded");
    Alcotest.test_case "symbolic bounds survive" `Quick (fun () ->
        let before =
          F77.parse
            "      REAL A(0:99)\n\
            \      DO I = 1, N\n\
            \      A(I) = 1\n\
            \      ENDDO\n\
            \      END\n"
        in
        let after = Normalize.all before in
        (match after.Ast.body with
        | [ Ast.Do { lo = Expr.Const 0; _ } ] -> ()
        | _ -> Alcotest.fail "not normalized");
        check_preserves ~syms:[ ("N", 6) ] "symbolic" before after);
    Alcotest.test_case "simplify canonicalizes" `Quick (fun () ->
        let before =
          F77.parse
            "      REAL A(0:199)\n\
            \      A(10*(1+2)+(1+3)) = 0\n\
            \      END\n"
        in
        let after = Normalize.simplify before in
        match after.Ast.body with
        | [ Ast.Assign { lhs = { subs = [ Expr.Const 34 ]; _ }; _ } ] -> ()
        | _ -> Alcotest.fail "not simplified");
  ]

(* --- induction variables -------------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let ib_src =
  "      REAL B(0:99)\n\
  \      INTEGER IB\n\
  \      IB = -1\n\
  \      DO I = 0, 3\n\
  \      DO J = 0, 4\n\
  \      IB = IB + 1\n\
  \      B(IB) = B(IB) + 1\n\
  \      ENDDO\n\
  \      ENDDO\n\
  \      END\n"

let induction_units =
  [
    Alcotest.test_case "two-loop closed form" `Quick (fun () ->
        let before = Normalize.all (F77.parse ib_src) in
        Alcotest.(check (list string)) "candidate" [ "IB" ]
          (Induction.candidates before);
        let after = Induction.substitute before in
        Alcotest.(check bool) "IB gone from the body" true
          (not (contains (Ast.to_string after) "IB ="));
        check_preserves "closed form" before after);
    Alcotest.test_case "rejects use before increment" `Quick (fun () ->
        let src =
          "      REAL B(0:99)\n\
          \      INTEGER IB\n\
          \      IB = 0\n\
          \      DO I = 0, 3\n\
          \      B(IB+1) = 0\n\
          \      IB = IB + 1\n\
          \      ENDDO\n\
          \      END\n"
        in
        let p = Normalize.all (F77.parse src) in
        Alcotest.(check (list string)) "no candidates" []
          (Induction.candidates p));
    Alcotest.test_case "rejects double increment" `Quick (fun () ->
        let src =
          "      REAL B(0:99)\n\
          \      INTEGER IB\n\
          \      IB = 0\n\
          \      DO I = 0, 3\n\
          \      IB = IB + 1\n\
          \      IB = IB + 1\n\
          \      B(IB) = 0\n\
          \      ENDDO\n\
          \      END\n"
        in
        let p = Normalize.all (F77.parse src) in
        Alcotest.(check (list string)) "no candidates" []
          (Induction.candidates p));
    Alcotest.test_case "rejects non-constant init" `Quick (fun () ->
        let src =
          "      REAL B(0:99)\n\
          \      INTEGER IB\n\
          \      IB = M\n\
          \      DO I = 0, 3\n\
          \      IB = IB + 1\n\
          \      B(IB) = 0\n\
          \      ENDDO\n\
          \      END\n"
        in
        let p = Normalize.all (F77.parse src) in
        Alcotest.(check (list string)) "no candidates" []
          (Induction.candidates p));
    Alcotest.test_case "rejects use after the nest" `Quick (fun () ->
        let src =
          "      REAL B(0:99)\n\
          \      INTEGER IB\n\
          \      IB = -1\n\
          \      DO I = 0, 3\n\
          \      IB = IB + 1\n\
          \      B(IB) = 0\n\
          \      ENDDO\n\
          \      B(IB) = 1\n\
          \      END\n"
        in
        let p = Normalize.all (F77.parse src) in
        Alcotest.(check (list string)) "no candidates" []
          (Induction.candidates p));
    Alcotest.test_case "negative step induction" `Quick (fun () ->
        let src =
          "      REAL B(0:99)\n\
          \      INTEGER IB\n\
          \      IB = 50\n\
          \      DO I = 0, 3\n\
          \      IB = IB - 2\n\
          \      B(IB) = 0\n\
          \      ENDDO\n\
          \      END\n"
        in
        let before = Normalize.all (F77.parse src) in
        let after = Induction.substitute before in
        Alcotest.(check (list string)) "recognized" [ "IB" ]
          (Induction.candidates before);
        check_preserves "negative step" before after);
    Alcotest.test_case "three-loop symbolic bounds (paper IB)" `Quick
      (fun () ->
        let before =
          Normalize.all (F77.parse Dlz_driver.Fragments.ib_program)
        in
        let after = Induction.substitute before in
        check_preserves
          ~syms:[ ("II", 2); ("JJ", 3); ("KK", 4); ("Q", 1) ]
          "paper IB" before after);
  ]

(* --- EQUIVALENCE linearization ---------------------------------------------------- *)

let equivalence_units =
  [
    Alcotest.test_case "full linearization (2-D)" `Quick (fun () ->
        let before = F77.parse Dlz_driver.Fragments.equivalence_2d in
        let before = Normalize.all before in
        let after, groups = Equivalence.linearize before in
        (match groups with
        | [ g ] ->
            Alcotest.(check int) "keeps 0 dims" 0 g.Equivalence.kept_dims;
            Alcotest.(check (list string)) "members" [ "A"; "B" ]
              g.Equivalence.members
        | _ -> Alcotest.fail "expected one group");
        (* A and B declarations replaced by the linearized array. *)
        Alcotest.(check bool) "A gone" true (Ast.find_array after "A" = None);
        check_preserves "2-D aliasing" before after);
    Alcotest.test_case "partial linearization (4-D)" `Quick (fun () ->
        let before =
          Normalize.all (F77.parse Dlz_driver.Fragments.equivalence_4d)
        in
        let after, groups = Equivalence.linearize before in
        (match groups with
        | [ g ] -> Alcotest.(check int) "keeps 2 dims" 2 g.Equivalence.kept_dims
        | _ -> Alcotest.fail "expected one group");
        (* IFUN is opaque to the interpreter but deterministic, so the
           trace comparison still holds. *)
        check_preserves "4-D aliasing" before after);
    Alcotest.test_case "mismatched totals left alone" `Quick (fun () ->
        let before =
          Normalize.all
            (F77.parse
               "      REAL A(0:9)\n\
               \      REAL B(0:19)\n\
               \      EQUIVALENCE (A, B)\n\
               \      A(1) = B(2)\n\
               \      END\n")
        in
        let _, groups = Equivalence.linearize before in
        match groups with
        | [ g ] -> Alcotest.(check int) "rejected" (-1) g.Equivalence.kept_dims
        | _ -> Alcotest.fail "expected one group");
    Alcotest.test_case "non-base anchors left alone" `Quick (fun () ->
        let before =
          Normalize.all
            (F77.parse
               "      REAL A(0:9)\n\
               \      REAL B(0:9)\n\
               \      EQUIVALENCE (A(2), B)\n\
               \      A(1) = B(2)\n\
               \      END\n")
        in
        let _, groups = Equivalence.linearize before in
        match groups with
        | [ g ] -> Alcotest.(check int) "rejected" (-1) g.Equivalence.kept_dims
        | _ -> Alcotest.fail "expected one group");
    Alcotest.test_case "three-member group linearizes together" `Quick
      (fun () ->
        let before =
          Normalize.all
            (F77.parse
               "      REAL A(0:9,0:9)\n\
               \      REAL B(0:4,0:19)\n\
               \      REAL C(0:99)\n\
               \      EQUIVALENCE (A, B, C)\n\
               \      DO 1 I = 0, 4\n\
               \      DO 1 J = 0, 9\n\
                1     A(I,J) = B(I,2*J+1) + C(I+10*J)\n\
               \      END\n")
        in
        let after, groups = Equivalence.linearize before in
        (match groups with
        | [ g ] ->
            Alcotest.(check (list string)) "members" [ "A"; "B"; "C" ]
              g.Equivalence.members;
            Alcotest.(check int) "fully folded" 0 g.Equivalence.kept_dims
        | _ -> Alcotest.fail "one group");
        check_preserves "three members" before after);
    Alcotest.test_case "1-based trailing dims shift" `Quick (fun () ->
        (* Trailing dims with lo=1 must be rebased to 0. *)
        let before =
          Normalize.all
            (F77.parse
               "      REAL A(0:3,5)\n\
               \      REAL B(0:1,2,5)\n\
               \      EQUIVALENCE (A, B)\n\
               \      DO K = 1, 5\n\
               \      A(2,K) = B(0,1,K)\n\
               \      ENDDO\n\
               \      END\n")
        in
        let after, groups = Equivalence.linearize before in
        (match groups with
        | [ g ] -> Alcotest.(check int) "keeps 1 dim" 1 g.Equivalence.kept_dims
        | _ -> Alcotest.fail "group");
        check_preserves "rebased" before after);
  ]

(* --- pointer conversion -------------------------------------------------------- *)

let pointer_units =
  [
    Alcotest.test_case "paper fragment lowers and matches C semantics" `Quick
      (fun () ->
        let lowered =
          Pointers.lower (C_parser.parse Dlz_driver.Fragments.c_pointers)
        in
        (* 100-cell array, 10x5 accesses: 50 writes and 50 reads. *)
        let trace = Interp.run lowered in
        Alcotest.(check int) "100 events" 100 (List.length trace);
        (* Normalization preserves the trace. *)
        check_preserves "normalize after lowering" lowered
          (Normalize.all lowered));
    Alcotest.test_case "pointer in int context rejected" `Quick (fun () ->
        let p = C_parser.parse "float d[10];\nfloat *p;\nint i;\ni = p;\n" in
        match Pointers.lower p with
        | exception Pointers.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
    Alcotest.test_case "cross-array bound rejected" `Quick (fun () ->
        let p =
          C_parser.parse
            "float d[10];\nfloat e[10];\nfloat *p;\n\
             for (p = d; p < e + 5; p++) *p = 0;\n"
        in
        match Pointers.lower p with
        | exception Pointers.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
    Alcotest.test_case "plain integer loops pass through" `Quick (fun () ->
        let p =
          C_parser.parse
            "float d[10];\nint i;\nfor (i = 0; i < 10; i++) d[i] = i;\n"
        in
        let lowered = Pointers.lower p in
        Alcotest.(check int) "10 writes" 10 (List.length (Interp.run lowered)));
    Alcotest.test_case "straight-line pointer reassignment" `Quick (fun () ->
        let p =
          C_parser.parse
            "float d[10];\nfloat *p;\nint i;\n\
             p = d + 2;\n*p = 1;\np = p + 3;\n*(p+1) = 2;\n"
        in
        let lowered = Pointers.lower p in
        match Interp.run lowered with
        | [ { Interp.addr = 2; _ }; { Interp.addr = 6; _ } ] -> ()
        | _ -> Alcotest.fail "wrong addresses");
  ]

(* --- forward linearization -------------------------------------------------- *)

let linearize_units =
  [
    Alcotest.test_case "2-D array flattens column-major" `Quick (fun () ->
        let before =
          Normalize.all
            (F77.parse
               "      REAL A(0:9,0:9)\n\
               \      DO I = 0, 4\n\
               \      DO J = 0, 9\n\
               \      A(I,J) = A(I+5,J)\n\
               \      ENDDO\n\
               \      ENDDO\n\
               \      END\n")
        in
        let after = Dlz_passes.Linearize.program before in
        (match Ast.find_array after "A" with
        | Some a -> Alcotest.(check int) "rank 1" 1 (List.length a.Ast.a_dims)
        | None -> Alcotest.fail "A missing");
        Alcotest.(check bool) "subscript is I+10*J" true
          (contains (Ast.to_string after) "A(I+10*J)");
        check_preserves "2-D flatten" before after);
    Alcotest.test_case "1-based bounds rebase" `Quick (fun () ->
        let before =
          Normalize.all
            (F77.parse
               "      REAL A(3,4)\n\
               \      A(2,3) = A(1,1)\n\
               \      END\n")
        in
        let after = Dlz_passes.Linearize.program before in
        check_preserves "rebase" before after;
        (* element (2,3) is (2-1) + (3-1)*3 = 7 *)
        Alcotest.(check bool) "A(7)" true (contains (Ast.to_string after) "A(7)"));
    Alcotest.test_case "arity-mismatched refs block the rewrite" `Quick
      (fun () ->
        let before =
          Normalize.all
            (F77.parse
               "      REAL A(0:9,0:9)\n\
               \      A(3,4) = A(7)\n\
               \      END\n")
        in
        let after = Dlz_passes.Linearize.program before in
        match Ast.find_array after "A" with
        | Some a -> Alcotest.(check int) "still rank 2" 2 (List.length a.Ast.a_dims)
        | None -> Alcotest.fail "A missing");
    Alcotest.test_case "EQUIVALENCE members left to the aliasing pass" `Quick
      (fun () ->
        let before = Normalize.all (F77.parse Dlz_driver.Fragments.equivalence_2d) in
        let after = Dlz_passes.Linearize.program before in
        match Ast.find_array after "A" with
        | Some a -> Alcotest.(check int) "untouched" 2 (List.length a.Ast.a_dims)
        | None -> Alcotest.fail "A missing");
    Alcotest.test_case "linearize then reshape round-trips (paper intro)" `Quick
      (fun () ->
        (* Multi-dimensional program -> linearized -> delinearized: the
           recovered shape must preserve the trace and the analysis. *)
        let original =
          Normalize.all
            (F77.parse
               "      REAL C(0:9,0:9)\n\
               \      DO I = 0, 4\n\
               \      DO J = 0, 9\n\
               \      C(I,J) = C(I+5,J)\n\
               \      ENDDO\n\
               \      ENDDO\n\
               \      END\n")
        in
        let linearized = Dlz_passes.Linearize.program original in
        Alcotest.(check bool) "linearized form is the paper program" true
          (contains (Ast.to_string linearized) "C(I+10*J)");
        let reshaped, plans =
          Dlz_core.Reshape.apply ~env:Dlz_symbolic.Assume.empty linearized
        in
        Alcotest.(check int) "one plan" 1 (List.length plans);
        check_preserves "round trip" original reshaped;
        (* And the independence verdict survives every stage. *)
        List.iter
          (fun p ->
            Alcotest.(check int) "independent" 0
              (List.length (Dlz_engine.Analyze.deps_of_program p)))
          [ original; linearized; reshaped ]);
  ]

(* --- COMMON sequence association ---------------------------------------------- *)

let common_units =
  [
    Alcotest.test_case "members become offsets in one block array" `Quick
      (fun () ->
        let before =
          Normalize.all
            (F77.parse
               "      REAL A(0:9), B(0:4)\n\
               \      COMMON /BLK/ A, B\n\
               \      DO I = 0, 4\n\
               \      A(I) = B(I)\n\
               \      ENDDO\n\
               \      END\n")
        in
        let after, blocks = Dlz_passes.Common_assoc.linearize before in
        (match blocks with
        | [ b ] ->
            Alcotest.(check (list (pair string int)))
              "bases" [ ("A", 0); ("B", 10) ]
              b.Dlz_passes.Common_assoc.b_members
        | _ -> Alcotest.fail "one block expected");
        Alcotest.(check bool) "B ref at base 10" true
          (contains (Ast.to_string after) "CBBLK(10+I)");
        check_preserves "common" before after);
    Alcotest.test_case "cross-member collision becomes visible" `Quick
      (fun () ->
        (* Writing past A's end lands in B: without sequence association
           the analyzer would call this independent. *)
        let src =
          "      REAL A(0:9), B(0:9)\n\
          \      COMMON /BLK/ A, B\n\
          \      DO I = 0, 9\n\
          \      A(I+10) = B(I)\n\
          \      ENDDO\n\
          \      END\n"
        in
        (* NB: A(I+10) is out of A's declared range; sequence association
           legitimizes it as an access to the block. *)
        let prog, _ = Dlz_passes.Common_assoc.linearize
            (Normalize.all (F77.parse src)) in
        let deps = Dlz_engine.Analyze.deps_of_program (Normalize.simplify prog) in
        Alcotest.(check bool) "dependence found" true (deps <> []));
    Alcotest.test_case "multi-dimensional members linearize column-major"
      `Quick (fun () ->
        let before =
          Normalize.all
            (F77.parse
               "      REAL A(0:2,0:1), B(0:3)\n\
               \      COMMON /C2/ A, B\n\
               \      A(1,1) = B(2)\n\
               \      END\n")
        in
        let after, _ = Dlz_passes.Common_assoc.linearize before in
        (* A(1,1) = 1 + 1*3 = 4; B(2) = 6 + 2 = 8. *)
        Alcotest.(check bool) "A(1,1) -> CBC2(4)" true
          (contains (Ast.to_string after) "CBC2(4)");
        Alcotest.(check bool) "B(2) -> CBC2(8)" true
          (contains (Ast.to_string after) "CBC2(8)");
        check_preserves "md members" before after);
    Alcotest.test_case "symbolic member bounds leave the block alone" `Quick
      (fun () ->
        let before =
          Normalize.all
            (F77.parse
               "      REAL A(0:N), B(0:4)\n\
               \      COMMON /BLK/ A, B\n\
               \      A(1) = B(2)\n\
               \      END\n")
        in
        let after, blocks = Dlz_passes.Common_assoc.linearize before in
        Alcotest.(check int) "no blocks handled" 0 (List.length blocks);
        Alcotest.(check bool) "A survives" true
          (Ast.find_array after "A" <> None));
  ]

(* --- procedure inlining / argument association --------------------------------- *)

let inline_units =
  let expand src = Dlz_passes.Inline.expand (F77.parse_units src) in
  [
    Alcotest.test_case "same-shape dummy renames to the actual" `Quick
      (fun () ->
        let inlined =
          expand
            "      REAL A(0:9)\n\
            \      CALL F(A)\n\
            \      END\n\
            \      SUBROUTINE F(D)\n\
            \      REAL D(0:9)\n\
            \      DO I = 0, 9\n\
            \      D(I) = I\n\
            \      ENDDO\n\
            \      END\n"
        in
        Alcotest.(check bool) "writes A" true
          (contains (Ast.to_string inlined) "A(I__1) = I__1");
        (* Semantics: same trace as the hand-inlined version. *)
        let direct =
          F77.parse
            "      REAL A(0:9)\n\
            \      DO I = 0, 9\n\
            \      A(I) = I\n\
            \      ENDDO\n\
            \      END\n"
        in
        check_preserves "inline" direct inlined);
    Alcotest.test_case "shape mismatch becomes EQUIVALENCE (paper assoc)"
      `Quick (fun () ->
        let inlined =
          expand
            "      REAL A(0:9,0:9)\n\
            \      CALL G(A)\n\
            \      END\n\
            \      SUBROUTINE G(B)\n\
            \      REAL B(0:4,0:19)\n\
            \      DO 1 I = 0, 4\n\
            \      DO 1 J = 0, 9\n\
             1     B(I,2*J+1) = B(I,2*J)\n\
            \      END\n"
        in
        Alcotest.(check bool) "has EQUIVALENCE" true
          (List.exists
             (function Ast.Equivalence _ -> true | _ -> false)
             inlined.Ast.decls);
        (* Through the standard pipeline the association linearizes and
           the odd/even columns are proven independent. *)
        let prog = Pipeline.prepare_program inlined in
        Alcotest.(check int) "independent" 0
          (List.length (Dlz_engine.Analyze.deps_of_program prog)));
    Alcotest.test_case "scalar dummies substitute" `Quick (fun () ->
        let inlined =
          expand
            "      REAL A(0:99)\n\
            \      CALL S(A, 5)\n\
            \      END\n\
            \      SUBROUTINE S(D, N)\n\
            \      REAL D(0:99)\n\
            \      DO I = 0, N\n\
            \      D(I) = N\n\
            \      ENDDO\n\
            \      END\n"
        in
        Alcotest.(check bool) "bound substituted" true
          (contains (Ast.to_string inlined) "DO I__1 = 0, 5"));
    Alcotest.test_case "assigned scalar dummy rejected" `Quick (fun () ->
        match
          expand
            "      CALL S(X)\n\
            \      END\n\
            \      SUBROUTINE S(N)\n\
            \      N = 1\n\
            \      END\n"
        with
        | exception Dlz_passes.Inline.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
    Alcotest.test_case "recursion rejected" `Quick (fun () ->
        match
          expand
            "      CALL R()\n\
            \      END\n\
            \      SUBROUTINE R()\n\
            \      CALL R()\n\
            \      END\n"
        with
        | exception Dlz_passes.Inline.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
    Alcotest.test_case "two call sites freshen independently" `Quick
      (fun () ->
        let inlined =
          expand
            "      REAL A(0:9), B(0:9)\n\
            \      CALL F(A)\n\
            \      CALL F(B)\n\
            \      END\n\
            \      SUBROUTINE F(D)\n\
            \      REAL D(0:9)\n\
            \      DO I = 0, 9\n\
            \      D(I) = I\n\
            \      ENDDO\n\
            \      END\n"
        in
        let text = Ast.to_string inlined in
        Alcotest.(check bool) "first site" true (contains text "A(I__1)");
        Alcotest.(check bool) "second site" true (contains text "B(I__2)"));
  ]

(* Pipeline end-to-end trace preservation on all paper fragments. *)
let pipeline_units =
  let preserved name ?syms src =
    Alcotest.test_case name `Quick (fun () ->
        let before = F77.parse src in
        let after = Pipeline.prepare_program before in
        check_preserves ?syms name before after)
  in
  [
    preserved "eq1 program" Dlz_driver.Fragments.eq1_program;
    preserved "fig3 program" Dlz_driver.Fragments.fig3_program;
    preserved "mhl program" Dlz_driver.Fragments.mhl_program;
    preserved "equivalence 2d" Dlz_driver.Fragments.equivalence_2d;
    preserved "equivalence 4d" Dlz_driver.Fragments.equivalence_4d;
    preserved "ib program"
      ~syms:[ ("II", 2); ("JJ", 2); ("KK", 3); ("Q", 1) ]
      Dlz_driver.Fragments.ib_program;
    preserved "symbolic program" ~syms:[ ("N", 4) ]
      Dlz_driver.Fragments.symbolic_program;
  ]

let () =
  Alcotest.run "dlz_passes"
    [
      ("interp", interp_units);
      ("normalize", normalize_units);
      ("induction", induction_units);
      ("equivalence", equivalence_units);
      ("pointers", pointer_units);
      ("linearize", linearize_units);
      ("common", common_units);
      ("inline", inline_units);
      ("pipeline", pipeline_units);
    ]
