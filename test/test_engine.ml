(* Tests for the unified dependence-query engine (lib/engine): memo
   cache behavior, preset cascades vs the historical analyzer modes,
   verdict provenance, and the analyzer/depgraph consistency regression
   (the two consumers share one pair-enumeration path and must agree on
   which statement pairs depend on each other). *)

module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Problem = Dlz_deptest.Problem
module Access = Dlz_ir.Access
module Assume = Dlz_symbolic.Assume
module F77 = Dlz_frontend.F77_parser
module Pipeline = Dlz_passes.Pipeline
module Fragments = Dlz_driver.Fragments
module Corpus = Dlz_corpus.Corpus
module Engine = Dlz_engine.Engine
module Analyze = Dlz_engine.Analyze
module Cascade = Dlz_engine.Cascade
module Registry = Dlz_engine.Registry
module Strategy = Dlz_engine.Strategy
module Query = Dlz_engine.Query
module Stats = Dlz_engine.Stats
module Depgraph = Dlz_vec.Depgraph

let verdict = Alcotest.testable Verdict.pp Verdict.equal
let prepare src = Pipeline.prepare_program (F77.parse src)

let accesses src =
  let prog = prepare src in
  Access.of_program prog

(* A tiny numeric nest: one write, two reads on A, fully constant
   bounds, so every query is cacheable. *)
let numeric_src =
  {|      DIMENSION A(200), B(200)
      DO I = 0, 99
        A(I+1) = A(I) + B(I)
      ENDDO
|}

(* Same dependence equation planted on two different arrays: the
   canonical forms coincide, so the second pair must hit the cache. *)
let twin_src =
  {|      DIMENSION A(200), B(200)
      DO I = 0, 99
        A(I+1) = A(I)
        B(I+1) = B(I)
      ENDDO
|}

let problems_of src =
  let accs, env = accesses src in
  (List.map (fun (pr : Engine.pair) -> pr.Engine.problem) (Engine.pairs accs),
   env)

(* --- memo cache ----------------------------------------------------------- *)

let test_cache_hit_miss () =
  let ps, env = problems_of numeric_src in
  let p = List.hd ps in
  let stats = Stats.create () in
  let cache = Query.create_cache () in
  let r1 = Engine.query ~stats ~cache ~env p in
  let r2 = Engine.query ~stats ~cache ~env p in
  Alcotest.(check int) "two queries" 2 (Stats.queries stats);
  Alcotest.(check int) "one miss" 1 (Stats.cache_misses stats);
  Alcotest.(check int) "one hit" 1 (Stats.cache_hits stats);
  Alcotest.(check int) "nothing uncacheable" 0 (Stats.cache_uncacheable stats);
  Alcotest.check verdict "same verdict" r1.Strategy.verdict
    r2.Strategy.verdict;
  Alcotest.(check string)
    "same provenance" r1.Strategy.decided_by r2.Strategy.decided_by;
  Alcotest.(check bool)
    "same dirvecs" true
    (List.for_all2 Dirvec.equal r1.Strategy.dirvecs r2.Strategy.dirvecs)

let test_cache_canonical_sharing () =
  (* A and B pairs have identical equations after canonicalization:
     first solve misses, everything after hits. *)
  let ps, env = problems_of twin_src in
  let stats = Stats.create () in
  let cache = Query.create_cache () in
  List.iter (fun p -> ignore (Engine.query ~stats ~cache ~env p)) ps;
  Alcotest.(check bool)
    "several pairs" true
    (List.length ps >= 4);
  Alcotest.(check int)
    "all pairs after the first solve of each shape hit" 2
    (Stats.cache_misses stats);
  Alcotest.(check int)
    "hits cover the rest"
    (List.length ps - 2)
    (Stats.cache_hits stats)

let test_cache_uncacheable_symbolic () =
  let ps, env = problems_of Fragments.symbolic_program in
  let p = List.hd ps in
  let stats = Stats.create () in
  let cache = Query.create_cache () in
  ignore (Engine.query ~stats ~cache ~env p);
  ignore (Engine.query ~stats ~cache ~env p);
  Alcotest.(check int)
    "symbolic problems never cached" 2 (Stats.cache_uncacheable stats);
  Alcotest.(check int) "no hits" 0 (Stats.cache_hits stats);
  Alcotest.(check int) "cache stays empty" 0 (Query.size cache)

let test_cache_flush_on_capacity () =
  let ps, env = problems_of twin_src in
  (* Two problems with different canonical forms (distinct cache keys). *)
  let key p = Query.key_of ~cascade:"delin" p in
  let distinct =
    match ps with
    | p1 :: rest -> (
        match List.find_opt (fun p -> key p <> key p1) rest with
        | Some p2 -> [ p1; p2 ]
        | None -> ps)
    | [] -> []
  in
  Alcotest.(check int) "found two distinct forms" 2 (List.length distinct);
  let stats = Stats.create () in
  let cache = Query.create_cache ~capacity:1 ~shards:1 () in
  List.iter (fun p -> ignore (Engine.query ~stats ~cache ~env p)) distinct;
  Alcotest.(check bool) "flushed at least once" true
    (Stats.cache_flushes stats >= 1);
  Alcotest.(check bool) "size bounded" true (Query.size cache <= 1)

let test_key_of_none_for_symbolic () =
  let ps, _env = problems_of Fragments.symbolic_program in
  Alcotest.(check bool)
    "no key for symbolic problems" true
    (Query.key_of ~cascade:"delin" (List.hd ps) = None);
  let ps, _env = problems_of numeric_src in
  Alcotest.(check bool)
    "numeric problems have keys" true
    (Query.key_of ~cascade:"delin" (List.hd ps) <> None)

(* --- presets vs modes ----------------------------------------------------- *)

(* The mode-based API (memoized, global-cache path) and running the
   preset cascade directly with a private stats instance and no cache
   must agree on every pair of a program: memoization and preset wiring
   change no verdicts. *)
let check_presets_on src =
  let prog = prepare src in
  let accs, env = Access.of_program prog in
  List.iter
    (fun (pr : Engine.pair) ->
      List.iter
        (fun (mode, cascade) ->
          let via_mode = Analyze.vectors ~mode ~env pr.Engine.problem in
          let direct =
            Cascade.run ~stats:(Stats.create ()) ~env cascade
              pr.Engine.problem
          in
          Alcotest.check verdict "verdicts agree" direct.Strategy.verdict
            via_mode.Analyze.verdict;
          Alcotest.(check string)
            "provenance agrees" direct.Strategy.decided_by
            via_mode.Analyze.decided_by;
          Alcotest.(check bool)
            "dirvecs agree" true
            (List.length direct.Strategy.dirvecs
             = List.length via_mode.Analyze.dirvecs
            && List.for_all2 Dirvec.equal direct.Strategy.dirvecs
                 via_mode.Analyze.dirvecs))
        [
          (Analyze.Delinearize, Cascade.delin);
          (Analyze.Classic, Cascade.classic);
          (Analyze.ExactMode, Cascade.exact);
        ])
    (Engine.pairs accs)

let test_presets_match_modes_fragments () =
  Engine.reset_metrics ();
  List.iter check_presets_on
    [
      Fragments.eq1_program;
      Fragments.fig3_program;
      Fragments.ib_program;
      Fragments.mhl_program;
      Fragments.intro_serial;
      Fragments.symbolic_program;
    ]

let test_presets_match_modes_corpus () =
  Engine.reset_metrics ();
  (* Two corpus programs keep the runtime reasonable; each contains all
     three planted idioms. *)
  List.iter
    (fun name ->
      let spec = List.find (fun s -> s.Corpus.name = name) Corpus.riceps in
      let prog = Pipeline.prepare_program (Corpus.generate spec) in
      let accs, env = Access.of_program prog in
      List.iter
        (fun (pr : Engine.pair) ->
          let via_mode = Analyze.vectors ~env pr.Engine.problem in
          let direct =
            Cascade.run ~stats:(Stats.create ()) ~env Cascade.delin
              pr.Engine.problem
          in
          Alcotest.check verdict "delin preset matches mode on corpus"
            direct.Strategy.verdict via_mode.Analyze.verdict)
        (Engine.pairs accs))
    [ "SPHOT"; "SIMPLE" ]

let test_of_names () =
  (match Cascade.of_names [ "gcd"; "banerjee"; "delinearize" ] with
  | Ok c ->
      Alcotest.(check int) "three steps" 3 (List.length c.Cascade.steps)
  | Error e -> Alcotest.failf "expected cascade, got error %s" e);
  match Cascade.of_names [ "no-such-test" ] with
  | Ok _ -> Alcotest.fail "unknown strategy accepted"
  | Error _ -> ()

let test_registry_names () =
  let names = Registry.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [
      "delinearize"; "classic"; "exact"; "gcd"; "banerjee"; "svpc";
      "acyclic"; "residue"; "omega";
    ]

(* A filter-only cascade that proves nothing falls through to the
   conservative all-star result with "conservative" provenance. *)
let test_conservative_fallthrough () =
  let ps, env = problems_of numeric_src in
  (* A(I+1) = A(I): a real dependence no filter can refute. *)
  let dependent =
    List.find
      (fun p ->
        Cascade.run ~stats:(Stats.create ()) ~env Cascade.delin p
        |> fun r -> r.Strategy.verdict = Verdict.Dependent)
      ps
  in
  let c =
    match Cascade.of_names [ "gcd"; "banerjee" ] with
    | Ok c -> c
    | Error e -> Alcotest.failf "cascade: %s" e
  in
  let stats = Stats.create () in
  let r = Cascade.run ~stats ~env c dependent in
  Alcotest.check verdict "conservatively dependent" Verdict.Dependent
    r.Strategy.verdict;
  Alcotest.(check string) "provenance" "conservative" r.Strategy.decided_by;
  Alcotest.(check bool)
    "filters were attempted" true
    (List.for_all
       (fun (_, (c : Stats.strategy_counters)) -> c.Stats.attempts = 1)
       (Stats.rows stats))

(* --- provenance ----------------------------------------------------------- *)

let test_provenance_populated () =
  let known = "conservative" :: Registry.names () in
  List.iter
    (fun src ->
      let deps = Analyze.deps_of_program (prepare src) in
      List.iter
        (fun (d : Analyze.dep) ->
          Alcotest.(check bool)
            ("provenance name known: " ^ d.Analyze.via)
            true
            (List.mem d.Analyze.via known))
        deps)
    [ Fragments.eq1_program; Fragments.ib_program; Fragments.mhl_program ];
  (* Exact mode on a numeric program: the exact solver itself decides. *)
  let deps = Analyze.deps_of_program ~mode:Analyze.ExactMode (prepare numeric_src) in
  Alcotest.(check bool) "numeric nest has deps" true (deps <> []);
  List.iter
    (fun (d : Analyze.dep) ->
      Alcotest.(check string) "exact decided" "exact" d.Analyze.via)
    deps

let test_stats_reporting () =
  Engine.reset_metrics ();
  ignore (Analyze.deps_of_program (prepare numeric_src));
  ignore (Analyze.deps_of_program (prepare numeric_src));
  let st = Stats.global in
  Alcotest.(check bool) "queries counted" true (Stats.queries st > 0);
  Alcotest.(check bool) "repeat run hits" true (Stats.cache_hits st > 0);
  Alcotest.(check bool)
    "hit ratio in (0,1]" true
    (Stats.hit_ratio st > 0. && Stats.hit_ratio st <= 1.);
  Alcotest.(check bool)
    "delinearize counted" true
    (List.exists
       (fun (n, (c : Stats.strategy_counters)) ->
         n = "delinearize" && c.Stats.attempts > 0)
       (Stats.rows st));
  let json = Stats.to_json st in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true (contains needle))
    [ "\"queries\""; "\"hit_ratio\""; "\"strategies\""; "\"delinearize\"" ]

(* --- pair enumeration and orientation ------------------------------------- *)

let test_pairs_write_first () =
  List.iter
    (fun src ->
      let accs, _env = accesses src in
      List.iter
        (fun (pr : Engine.pair) ->
          let has_write =
            pr.Engine.src.Access.rw = `Write
            || pr.Engine.dst.Access.rw = `Write
          in
          Alcotest.(check bool) "every pair involves a write" true has_write;
          Alcotest.(check bool)
            "source is the writing reference" true
            (pr.Engine.src.Access.rw = `Write);
          Alcotest.(check string)
            "same array" pr.Engine.src.Access.array
            pr.Engine.dst.Access.array;
          Alcotest.(check bool)
            "self flag matches ids" pr.Engine.self
            (pr.Engine.src.Access.acc_id = pr.Engine.dst.Access.acc_id))
        (Engine.pairs accs))
    [ numeric_src; twin_src; Fragments.ib_program; Fragments.fig3_program ]

(* --- analyzer/depgraph consistency (the orientation regression) ----------- *)

(* Both consumers enumerate through Engine.pairs; the depgraph
   additionally reorients lexicographically-backward vectors and — by
   design — drops within-statement loop-independent dependences (an
   all-[=] vector on a single statement does not constrain loop
   rearrangement).  Modulo that documented exclusion, the set of
   unordered statement pairs connected by a dependence must be
   identical. *)
let unordered_pairs_of_deps deps =
  List.sort_uniq compare
    (List.filter_map
       (fun (d : Analyze.dep) ->
         let a = d.Analyze.src.Access.stmt_id
         and b = d.Analyze.dst.Access.stmt_id in
         if a = b && Array.for_all (( = ) Dirvec.Eq) d.Analyze.dirvec then
           None
         else Some (min a b, max a b))
       deps)

let unordered_pairs_of_graph (g : Depgraph.t) =
  List.sort_uniq compare
    (List.map
       (fun (e : Depgraph.edge) ->
         (min e.Depgraph.e_src e.Depgraph.e_dst,
          max e.Depgraph.e_src e.Depgraph.e_dst))
       g.Depgraph.edges)

let test_analyze_depgraph_consistent () =
  List.iter
    (fun (name, src) ->
      let prog = prepare src in
      List.iter
        (fun mode ->
          let deps = Analyze.deps_of_program ~mode prog in
          let g = Depgraph.build ~mode prog in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s: same dependent statement pairs" name)
            (unordered_pairs_of_deps deps)
            (unordered_pairs_of_graph g))
        [ Analyze.Delinearize; Analyze.Classic ])
    [
      ("eq1", Fragments.eq1_program);
      ("fig3", Fragments.fig3_program);
      ("ib", Fragments.ib_program);
      ("mhl", Fragments.mhl_program);
      ("intro-serial", Fragments.intro_serial);
      ("intro-parallel", Fragments.intro_parallel);
      ("symbolic", Fragments.symbolic_program);
      ("numeric", numeric_src);
      ("twin", twin_src);
    ]

let () =
  Alcotest.run "engine"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss on repeat query" `Quick
            test_cache_hit_miss;
          Alcotest.test_case "canonical forms shared across arrays" `Quick
            test_cache_canonical_sharing;
          Alcotest.test_case "symbolic problems uncacheable" `Quick
            test_cache_uncacheable_symbolic;
          Alcotest.test_case "bounded capacity flush" `Quick
            test_cache_flush_on_capacity;
          Alcotest.test_case "key_of symbolic vs numeric" `Quick
            test_key_of_none_for_symbolic;
        ] );
      ( "presets",
        [
          Alcotest.test_case "presets match modes on fragments" `Quick
            test_presets_match_modes_fragments;
          Alcotest.test_case "presets match modes on corpus" `Slow
            test_presets_match_modes_corpus;
          Alcotest.test_case "of_names resolves and rejects" `Quick
            test_of_names;
          Alcotest.test_case "built-ins registered" `Quick test_registry_names;
          Alcotest.test_case "filter-only cascade falls through" `Quick
            test_conservative_fallthrough;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "deps carry deciding strategy" `Quick
            test_provenance_populated;
          Alcotest.test_case "global stats populated" `Quick
            test_stats_reporting;
        ] );
      ( "pairs",
        [
          Alcotest.test_case "write-first orientation" `Quick
            test_pairs_write_first;
          Alcotest.test_case "analyzer and depgraph agree" `Quick
            test_analyze_depgraph_consistent;
        ] );
    ]
