(* Tests for the dependence-query daemon (lib/serve + the serve driver).

   The load-bearing properties:

   - protocol fidelity: ping/stats/query/analyze round-trips over a
     real socket agree with the in-process engine (same process, same
     global cache, so the comparison is exact);
   - containment: a framing violation costs that connection exactly
     one ["protocol"] reply and the connection; well-framed garbage
     costs one ["bad-request"] reply and the connection continues; a
     mid-stream disconnect, a slow-loris client, or an injected chaos
     fault never takes the daemon down or touches another connection;
   - admission: a full queue answers ["overloaded"] with a retry hint
     immediately — the daemon never queues unboundedly, never hangs a
     client silently;
   - drain: the [shutdown] op finishes in-flight work, snapshots the
     warm cache, and a restart from that snapshot answers warm.

   Exact-assertion tests switch process-wide chaos injection off
   locally (the @serve-ci alias also runs this suite with DLZ_CHAOS
   set); the two-seed chaos battery at the end sets its own seeds and
   asserts only injection-proof facts: every client terminates, the
   daemon survives, and a clean ping works afterwards. *)

module Budget = Dlz_base.Budget
module Trace = Dlz_base.Trace
module Depeq = Dlz_deptest.Depeq
module Problem = Dlz_deptest.Problem
module Engine = Dlz_engine.Engine
module Stats = Dlz_engine.Stats
module Chaos = Dlz_engine.Chaos
module Assume = Dlz_symbolic.Assume
module Workload = Dlz_driver.Workload
module Serve = Dlz_driver.Serve
module Addr = Dlz_serve.Addr
module Client = Dlz_serve.Client
module Frame = Dlz_serve.Frame
module Jsonx = Dlz_serve.Jsonx
module Proto = Dlz_serve.Proto
module Server = Dlz_serve.Server
module Metrics = Dlz_serve.Metrics

let without_chaos f () =
  let saved = Chaos.current () in
  Chaos.set_current None;
  Fun.protect ~finally:(fun () -> Chaos.set_current saved) f

let with_chaos ~seed ~rate f =
  let saved = Chaos.current () in
  Chaos.set_current (Some (Chaos.make ~seed ~rate));
  Fun.protect ~finally:(fun () -> Chaos.set_current saved) f

let loopback = Addr.Tcp ("127.0.0.1", 0)

(* Start on an ephemeral port, run [f] against the resolved address,
   drain, and hand back the summary — every server this suite starts
   goes through here, so none can leak past its test. *)
let with_server ?(cfg = Server.default_config loopback) f =
  Engine.reset_metrics ();
  match Server.start cfg with
  | Error m -> Alcotest.fail ("server start: " ^ m)
  | Ok srv ->
      let finished = ref false in
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv;
          let s = Server.join srv in
          if not !finished then ignore s)
        (fun () ->
          let r = f (Server.address srv) in
          Server.stop srv;
          let s = Server.join srv in
          finished := true;
          (r, s))

let connect addr =
  match Client.connect ~timeout_ms:5_000 addr with
  | Ok c -> c
  | Error m -> Alcotest.fail ("connect: " ^ m)

let request c j =
  match Client.request c j with
  | Ok r -> r
  | Error m -> Alcotest.fail ("request: " ^ m)

let get_bool j k =
  match Jsonx.member k j with
  | Some (Jsonx.Bool b) -> b
  | _ -> Alcotest.failf "missing bool %S in %s" k (Jsonx.to_string j)

let get_str j k =
  match Option.bind (Jsonx.member k j) Jsonx.to_str with
  | Some s -> s
  | None -> Alcotest.failf "missing string %S in %s" k (Jsonx.to_string j)

let get_int j k =
  match Option.bind (Jsonx.member k j) Jsonx.to_int with
  | Some n -> n
  | None -> Alcotest.failf "missing int %S in %s" k (Jsonx.to_string j)

let obj fields = Jsonx.Obj fields

let ping ?(id = 1) c =
  let r = request c (obj [ ("op", Jsonx.Str "ping"); ("id", Jsonx.Int id) ]) in
  Alcotest.(check bool) "ping ok" true (get_bool r "ok");
  Alcotest.(check int) "ping id echoed" id (get_int r "id")

let family_problem ~depth ~extent ~shifted =
  let eq = Workload.paper_family ~depth ~extent ~shifted in
  Problem.numeric_of_equations ~n_common:depth
    ~common_ubs:(Array.make depth ((extent / 2) - 1))
    [ eq ]

let query_json ?fuel ?timeout_ms ~id np =
  obj
    ([
       ("op", Jsonx.Str "query");
       ("id", Jsonx.Int id);
       ("problem", Proto.problem_to_json np);
     ]
    @ (match fuel with Some f -> [ ("fuel", Jsonx.Int f) ] | None -> [])
    @
    match timeout_ms with
    | Some ms -> [ ("timeout_ms", Jsonx.Int ms) ]
    | None -> [])

(* A DO/ENDDO kernel with one self-dependent access pair. *)
let family_source = Workload.family_program ~depth:2 ~extent:8

(* --- protocol round-trips ------------------------------------------------ *)

let test_ping_and_stats =
  without_chaos @@ fun () ->
  let (), _ =
    with_server (fun addr ->
        let c = connect addr in
        ping c;
        let r = request c (obj [ ("op", Jsonx.Str "stats"); ("id", Jsonx.Int 2) ]) in
        Alcotest.(check bool) "stats ok" true (get_bool r "ok");
        Alcotest.(check bool)
          "stats carries serve metrics" true
          (Jsonx.member "serve" r <> None);
        Alcotest.(check bool)
          "stats carries engine stats" true
          (Jsonx.member "engine" r <> None);
        Client.close c)
  in
  ()

let test_unix_socket =
  without_chaos @@ fun () ->
  let path = Filename.temp_file "dlz_serve" ".sock" in
  Sys.remove path;
  let cfg = Server.default_config (Addr.Unix_sock path) in
  let (), _ =
    with_server ~cfg (fun addr ->
        let c = connect addr in
        ping c;
        Client.close c)
  in
  Alcotest.(check bool)
    "socket file removed on drain" false (Sys.file_exists path)

(* The wire verdict must agree with the in-process engine: same
   process, same cascade, so equality is exact, not statistical. *)
let test_query_matches_engine =
  without_chaos @@ fun () ->
  let cases =
    [
      family_problem ~depth:2 ~extent:10 ~shifted:false;
      family_problem ~depth:2 ~extent:10 ~shifted:true;
      family_problem ~depth:3 ~extent:8 ~shifted:true;
    ]
  in
  let wire, _ =
    with_server (fun addr ->
        let c = connect addr in
        let rs =
          List.mapi
            (fun i np ->
              let r = request c (query_json ~id:i np) in
              Alcotest.(check bool) "query ok" true (get_bool r "ok");
              (get_str r "verdict", get_str r "decided_by"))
            cases
        in
        Client.close c;
        rs)
  in
  Engine.reset_metrics ();
  List.iter2
    (fun np (wire_verdict, wire_decider) ->
      let r = Engine.query ~env:Assume.empty (Problem.synthetic np) in
      Alcotest.(check string)
        "wire verdict = engine verdict"
        (Dlz_deptest.Verdict.to_string r.Dlz_engine.Strategy.verdict)
        wire_verdict;
      Alcotest.(check string)
        "wire provenance = engine provenance" r.Dlz_engine.Strategy.decided_by
        wire_decider)
    cases wire

let test_analyze_stream =
  without_chaos @@ fun () ->
  let (), _ =
    with_server (fun addr ->
        let c = connect addr in
        (match
           Client.send c
             (obj
                [
                  ("op", Jsonx.Str "analyze");
                  ("id", Jsonx.Int 7);
                  ("lang", Jsonx.Str "f");
                  ("source", Jsonx.Str family_source);
                ])
         with
        | Error m -> Alcotest.fail m
        | Ok () -> ());
        (match Client.read_stream c with
        | Error m -> Alcotest.fail m
        | Ok frames ->
            let pairs, summary =
              List.partition
                (fun j ->
                  match Jsonx.member "op" j with
                  | Some (Jsonx.Str "pair") -> true
                  | _ -> false)
                frames
            in
            let s =
              match summary with
              | [ s ] -> s
              | _ -> Alcotest.fail "expected exactly one summary frame"
            in
            Alcotest.(check bool) "summary ok" true (get_bool s "ok");
            Alcotest.(check bool) "summary done" true (get_bool s "done");
            Alcotest.(check int)
              "summary pairs = streamed pair frames" (List.length pairs)
              (get_int s "pairs");
            Alcotest.(check bool)
              "found dependences" true
              (get_int s "dependent" > 0);
            List.iter
              (fun p ->
                ignore (get_str p "verdict");
                ignore (get_str p "src");
                Alcotest.(check int) "pair id echoed" 7 (get_int p "id"))
              pairs);
        (* The stream left the connection clean: it still serves. *)
        ping ~id:8 c;
        Client.close c)
  in
  ()

(* --- containment --------------------------------------------------------- *)

let test_bad_json_continues =
  without_chaos @@ fun () ->
  let (), _ =
    with_server (fun addr ->
        let c = connect addr in
        (match Client.send_raw c (Frame.encode "this is not json") with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        (match Client.recv c with
        | Ok r ->
            Alcotest.(check bool) "error reply" false (get_bool r "ok");
            Alcotest.(check string)
              "bad-request reason" "bad-request" (get_str r "reason")
        | Error m -> Alcotest.fail m);
        (* Well-framed garbage costs one reply, not the connection. *)
        ping ~id:2 c;
        let r =
          request c (obj [ ("op", Jsonx.Str "frobnicate"); ("id", Jsonx.Int 3) ])
        in
        Alcotest.(check bool) "unknown op refused" false (get_bool r "ok");
        Alcotest.(check string)
          "unknown op reason" "bad-request" (get_str r "reason");
        ping ~id:4 c;
        Client.close c)
  in
  ()

let test_malformed_frame_closes =
  without_chaos @@ fun () ->
  let (), summary =
    with_server (fun addr ->
        let c = connect addr in
        (match Client.send_raw c "not-a-length\n{\"op\":\"ping\"}\n" with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        (match Client.recv c with
        | Ok r ->
            Alcotest.(check bool) "error reply" false (get_bool r "ok");
            Alcotest.(check string)
              "protocol reason" "protocol" (get_str r "reason")
        | Error m -> Alcotest.fail m);
        (* The byte stream cannot resync: the server closed it. *)
        (match Client.recv c with
        | Error _ -> ()
        | Ok r ->
            Alcotest.failf "expected closed connection, got %s"
              (Jsonx.to_string r));
        Client.close c;
        (* The daemon itself is untouched. *)
        let c2 = connect addr in
        ping c2;
        Client.close c2)
  in
  Alcotest.(check bool)
    "malformed frame counted" true
    (summary.Server.sm_metrics.Metrics.s_malformed >= 1)

let test_oversize_frame_closes =
  without_chaos @@ fun () ->
  let cfg = { (Server.default_config loopback) with Server.max_frame = 1024 } in
  let (), _ =
    with_server ~cfg (fun addr ->
        let c = connect addr in
        let big = String.make 4096 'x' in
        (match
           Client.send_raw c
             (Frame.encode
                (Printf.sprintf "{\"op\":\"ping\",\"pad\":\"%s\"}" big))
         with
        | Ok () -> ()
        | Error _ -> () (* server may already have slammed the door *));
        (match Client.recv c with
        | Ok r ->
            Alcotest.(check bool) "oversize refused" false (get_bool r "ok")
        | Error _ -> () (* reply raced the close: the close is the point *));
        Client.close c;
        let c2 = connect addr in
        ping c2;
        Client.close c2)
  in
  ()

let test_disconnect_mid_stream =
  without_chaos @@ fun () ->
  let (), summary =
    with_server
      ~cfg:{ (Server.default_config loopback) with Server.workers = 2 }
      (fun addr ->
        (* One client starts an analyze and vanishes mid-stream... *)
        let c = connect addr in
        (match
           Client.send c
             (obj
                [
                  ("op", Jsonx.Str "analyze");
                  ("id", Jsonx.Int 1);
                  ("lang", Jsonx.Str "f");
                  ("source", Jsonx.Str family_source);
                ])
         with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        ignore (Client.recv c);
        Client.close c;
        (* ...while a concurrent one completes untouched. *)
        let c2 = connect addr in
        let r = request c2 (query_json ~id:2 (family_problem ~depth:2 ~extent:8 ~shifted:false)) in
        Alcotest.(check bool) "concurrent client ok" true (get_bool r "ok");
        ping ~id:3 c2;
        Client.close c2)
  in
  ignore summary

let test_slow_loris_timed_out =
  without_chaos @@ fun () ->
  let cfg =
    { (Server.default_config loopback) with Server.idle_timeout_ms = 300 }
  in
  let (), summary =
    with_server ~cfg (fun addr ->
        let c = connect addr in
        (* Half a frame, then silence: the read timeout must reclaim
           the worker. *)
        (match Client.send_raw c "40\n{\"op\":" with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        let t0 = Trace.now_ns () in
        (match Client.recv c with
        | Error _ -> () (* timed out / closed — either is reclamation *)
        | Ok r ->
            Alcotest.(check bool) "loris refused" false (get_bool r "ok"));
        let waited_ms =
          Int64.to_int (Int64.div (Int64.sub (Trace.now_ns ()) t0) 1_000_000L)
        in
        Alcotest.(check bool)
          "reclaimed within ~idle timeout (not the 5s client timeout)" true
          (waited_ms < 3_000);
        Client.close c;
        let c2 = connect addr in
        ping c2;
        Client.close c2)
  in
  Alcotest.(check bool)
    "timeout counted" true
    (summary.Server.sm_metrics.Metrics.s_timeouts >= 1)

(* --- admission ----------------------------------------------------------- *)

let test_overload_sheds_explicitly =
  without_chaos @@ fun () ->
  let cfg =
    {
      (Server.default_config loopback) with
      Server.workers = 1;
      queue_capacity = 1;
    }
  in
  let (), summary =
    with_server ~cfg (fun addr ->
        (* A occupies the single worker (a session holds its worker
           until it closes); B fills the queue of 1; C must be shed
           immediately and explicitly. *)
        let a = connect addr in
        ping a;
        (* ping forces A through admission onto the worker *)
        let b = connect addr in
        Unix.sleepf 0.2;
        let c = connect addr in
        (match Client.recv c with
        | Ok r ->
            Alcotest.(check bool) "shed reply" false (get_bool r "ok");
            Alcotest.(check string)
              "overloaded reason" "overloaded" (get_str r "reason");
            Alcotest.(check bool)
              "retry hint present" true
              (get_int r "retry_after_ms" >= 0)
        | Error m -> Alcotest.fail ("expected an overloaded reply: " ^ m));
        Client.close c;
        (* Releasing the worker drains the queue: B gets served. *)
        Client.close a;
        ping ~id:9 b;
        Client.close b)
  in
  Alcotest.(check bool)
    "shed counted" true
    (summary.Server.sm_metrics.Metrics.s_shed >= 1)

(* --- budgets ------------------------------------------------------------- *)

let test_tiny_budget_degrades_but_answers =
  without_chaos @@ fun () ->
  let (), _ =
    with_server (fun addr ->
        let c = connect addr in
        let np = family_problem ~depth:3 ~extent:12 ~shifted:true in
        let r = request c (query_json ~fuel:0 ~id:1 np) in
        (* Exhaustion is an answer, not a kill: ok:true, conservative
           verdict, degradation provenance on the wire. *)
        Alcotest.(check bool) "degraded query still ok" true (get_bool r "ok");
        Alcotest.(check string)
          "conservative verdict" "dependent" (get_str r "verdict");
        (match Jsonx.member "degraded" r with
        | Some (Jsonx.List (_ :: _)) -> ()
        | _ ->
            Alcotest.failf "expected degradations on the wire, got %s"
              (Jsonx.to_string r));
        (* The same connection still answers a full-budget query. *)
        let r2 = request c (query_json ~id:2 np) in
        Alcotest.(check bool) "follow-up ok" true (get_bool r2 "ok");
        Client.close c)
  in
  ()

(* --- drain + warm restart ------------------------------------------------ *)

let test_shutdown_drains_and_warm_restarts =
  without_chaos @@ fun () ->
  let snap = Filename.temp_file "dlz_serve" ".snap" in
  let probs =
    List.init 4 (fun k ->
        family_problem ~depth:(1 + (k mod 3)) ~extent:10 ~shifted:(k >= 2))
  in
  let cfg_save =
    { (Server.default_config loopback) with Server.snapshot_save = Some snap }
  in
  let (), sum1 =
    with_server ~cfg:cfg_save (fun addr ->
        let c = connect addr in
        List.iteri
          (fun i np ->
            let r = request c (query_json ~id:i np) in
            Alcotest.(check bool) "warm-up query ok" true (get_bool r "ok"))
          probs;
        let r =
          request c (obj [ ("op", Jsonx.Str "shutdown"); ("id", Jsonx.Int 99) ])
        in
        Alcotest.(check bool) "shutdown acknowledged" true (get_bool r "ok");
        Client.close c)
  in
  let saved =
    match sum1.Server.sm_saved with
    | Some (Ok n) -> n
    | Some (Error m) -> Alcotest.fail ("drain snapshot failed: " ^ m)
    | None -> Alcotest.fail "drain snapshot not attempted"
  in
  Alcotest.(check bool) "drain snapshot non-empty" true (saved > 0);
  (* Restart from the snapshot: the same queries answer warm. *)
  let cfg_load =
    { (Server.default_config loopback) with Server.snapshot_load = Some snap }
  in
  let (), sum2 =
    with_server ~cfg:cfg_load (fun addr ->
        let c = connect addr in
        List.iteri
          (fun i np ->
            let r = request c (query_json ~id:i np) in
            Alcotest.(check bool) "warm query ok" true (get_bool r "ok"))
          probs;
        let warm = Stats.warm_hits Stats.global in
        Alcotest.(check bool) "warm-start hits > 0" true (warm > 0);
        Client.close c)
  in
  (match sum2.Server.sm_loaded with
  | Some (Ok n) ->
      Alcotest.(check int) "loaded what was saved" saved n
  | Some (Error m) -> Alcotest.fail ("warm start failed: " ^ m)
  | None -> Alcotest.fail "warm start not attempted");
  Sys.remove snap

(* --- chaos battery ------------------------------------------------------- *)

(* Process-wide injection at the socket boundary (torn frames,
   disconnects, slow writes) and inside the engine, on both sides of
   the wire.  Injection-proof assertions only: every client
   terminates, the books balance, the daemon survives to answer a
   clean ping, and every server-side fault was contained (a counter,
   never a crash). *)
let chaos_battery seed () =
  let rep, summary =
    with_chaos ~seed ~rate:0.05 @@ fun () ->
    with_server
      ~cfg:
        {
          (Server.default_config loopback) with
          Server.workers = 2;
          queue_capacity = 16;
        }
      (fun addr ->
        Serve.load_gen ~addr ~clients:8 ~sessions:48 ~requests_per_session:4
          ~workload:Serve.Mix ())
  in
  let r = rep in
  let classified =
    r.Serve.lg_ok + r.Serve.lg_shed + r.Serve.lg_draining + r.Serve.lg_errors
    + r.Serve.lg_transport
  in
  Alcotest.(check bool)
    "every request classified, none lost" true
    (classified >= r.Serve.lg_requests);
  Alcotest.(check bool) "some requests survived the faults" true (r.Serve.lg_ok > 0);
  let m = summary.Server.sm_metrics in
  Alcotest.(check int) "no connection left active" 0 m.Metrics.s_active;
  (* The daemon outlived the storm: a clean client gets a clean answer. *)
  let (), _ =
    without_chaos (fun () ->
        with_server (fun addr ->
            let c = connect addr in
            ping c;
            Client.close c))
      ()
  in
  ()

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping and stats round-trip" `Quick
            test_ping_and_stats;
          Alcotest.test_case "unix socket serves and is cleaned up" `Quick
            test_unix_socket;
          Alcotest.test_case "wire query = in-process engine" `Quick
            test_query_matches_engine;
          Alcotest.test_case "analyze streams pairs then a summary" `Quick
            test_analyze_stream;
        ] );
      ( "containment",
        [
          Alcotest.test_case "bad JSON costs one reply, not the connection"
            `Quick test_bad_json_continues;
          Alcotest.test_case "framing violation closes only that connection"
            `Quick test_malformed_frame_closes;
          Alcotest.test_case "oversize frame refused" `Quick
            test_oversize_frame_closes;
          Alcotest.test_case "mid-stream disconnect leaves others untouched"
            `Quick test_disconnect_mid_stream;
          Alcotest.test_case "slow-loris reclaimed by the idle timeout" `Quick
            test_slow_loris_timed_out;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload sheds explicitly with a retry hint"
            `Quick test_overload_sheds_explicitly;
        ] );
      ( "budget",
        [
          Alcotest.test_case "tiny budget degrades but answers" `Quick
            test_tiny_budget_degrades_but_answers;
        ] );
      ( "drain",
        [
          Alcotest.test_case "shutdown drains, snapshots, restarts warm"
            `Quick test_shutdown_drains_and_warm_restarts;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "battery at seed 7" `Quick (chaos_battery 7L);
          Alcotest.test_case "battery at seed 1234" `Quick
            (chaos_battery 1234L);
        ] );
    ]
