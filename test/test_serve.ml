(* Tests for the dependence-query daemon (lib/serve + the serve driver).

   The load-bearing properties:

   - protocol fidelity: ping/stats/query/analyze round-trips over a
     real socket agree with the in-process engine (same process, same
     global cache, so the comparison is exact);
   - containment: a framing violation costs that connection exactly
     one ["protocol"] reply and the connection; well-framed garbage
     costs one ["bad-request"] reply and the connection continues; a
     mid-stream disconnect, a slow-loris client, or an injected chaos
     fault never takes the daemon down or touches another connection;
   - admission: a full queue answers ["overloaded"] with a retry hint
     immediately — the daemon never queues unboundedly, never hangs a
     client silently;
   - drain: the [shutdown] op finishes in-flight work, snapshots the
     warm cache, and a restart from that snapshot answers warm.

   Exact-assertion tests switch process-wide chaos injection off
   locally (the @serve-ci alias also runs this suite with DLZ_CHAOS
   set); the two-seed chaos battery at the end sets its own seeds and
   asserts only injection-proof facts: every client terminates, the
   daemon survives, and a clean ping works afterwards. *)

module Budget = Dlz_base.Budget
module Trace = Dlz_base.Trace
module Depeq = Dlz_deptest.Depeq
module Problem = Dlz_deptest.Problem
module Engine = Dlz_engine.Engine
module Stats = Dlz_engine.Stats
module Chaos = Dlz_engine.Chaos
module Assume = Dlz_symbolic.Assume
module Workload = Dlz_driver.Workload
module Serve = Dlz_driver.Serve
module Addr = Dlz_serve.Addr
module Client = Dlz_serve.Client
module Frame = Dlz_serve.Frame
module Jsonx = Dlz_serve.Jsonx
module Proto = Dlz_serve.Proto
module Server = Dlz_serve.Server
module Metrics = Dlz_serve.Metrics

let without_chaos f () =
  let saved = Chaos.current () in
  Chaos.set_current None;
  Fun.protect ~finally:(fun () -> Chaos.set_current saved) f

let with_chaos ~seed ~rate f =
  let saved = Chaos.current () in
  Chaos.set_current (Some (Chaos.make ~seed ~rate));
  Fun.protect ~finally:(fun () -> Chaos.set_current saved) f

let loopback = Addr.Tcp ("127.0.0.1", 0)

(* Start on an ephemeral port, run [f] against the resolved address,
   drain, and hand back the summary — every server this suite starts
   goes through here, so none can leak past its test. *)
let with_server ?(cfg = Server.default_config loopback) f =
  Engine.reset_metrics ();
  match Server.start cfg with
  | Error m -> Alcotest.fail ("server start: " ^ m)
  | Ok srv ->
      let finished = ref false in
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv;
          let s = Server.join srv in
          if not !finished then ignore s)
        (fun () ->
          let r = f (Server.address srv) in
          Server.stop srv;
          let s = Server.join srv in
          finished := true;
          (r, s))

let connect addr =
  match Client.connect ~timeout_ms:5_000 addr with
  | Ok c -> c
  | Error m -> Alcotest.fail ("connect: " ^ m)

let request c j =
  match Client.request c j with
  | Ok r -> r
  | Error m -> Alcotest.fail ("request: " ^ m)

let get_bool j k =
  match Jsonx.member k j with
  | Some (Jsonx.Bool b) -> b
  | _ -> Alcotest.failf "missing bool %S in %s" k (Jsonx.to_string j)

let get_str j k =
  match Option.bind (Jsonx.member k j) Jsonx.to_str with
  | Some s -> s
  | None -> Alcotest.failf "missing string %S in %s" k (Jsonx.to_string j)

let get_int j k =
  match Option.bind (Jsonx.member k j) Jsonx.to_int with
  | Some n -> n
  | None -> Alcotest.failf "missing int %S in %s" k (Jsonx.to_string j)

let obj fields = Jsonx.Obj fields

let ping ?(id = 1) c =
  let r = request c (obj [ ("op", Jsonx.Str "ping"); ("id", Jsonx.Int id) ]) in
  Alcotest.(check bool) "ping ok" true (get_bool r "ok");
  Alcotest.(check int) "ping id echoed" id (get_int r "id")

let family_problem ~depth ~extent ~shifted =
  let eq = Workload.paper_family ~depth ~extent ~shifted in
  Problem.numeric_of_equations ~n_common:depth
    ~common_ubs:(Array.make depth ((extent / 2) - 1))
    [ eq ]

let query_json ?fuel ?timeout_ms ~id np =
  obj
    ([
       ("op", Jsonx.Str "query");
       ("id", Jsonx.Int id);
       ("problem", Proto.problem_to_json np);
     ]
    @ (match fuel with Some f -> [ ("fuel", Jsonx.Int f) ] | None -> [])
    @
    match timeout_ms with
    | Some ms -> [ ("timeout_ms", Jsonx.Int ms) ]
    | None -> [])

(* A DO/ENDDO kernel with one self-dependent access pair. *)
let family_source = Workload.family_program ~depth:2 ~extent:8

(* --- protocol round-trips ------------------------------------------------ *)

let test_ping_and_stats =
  without_chaos @@ fun () ->
  let (), _ =
    with_server (fun addr ->
        let c = connect addr in
        ping c;
        let r = request c (obj [ ("op", Jsonx.Str "stats"); ("id", Jsonx.Int 2) ]) in
        Alcotest.(check bool) "stats ok" true (get_bool r "ok");
        Alcotest.(check bool)
          "stats carries serve metrics" true
          (Jsonx.member "serve" r <> None);
        Alcotest.(check bool)
          "stats carries engine stats" true
          (Jsonx.member "engine" r <> None);
        Client.close c)
  in
  ()

let test_unix_socket =
  without_chaos @@ fun () ->
  let path = Filename.temp_file "dlz_serve" ".sock" in
  Sys.remove path;
  let cfg = Server.default_config (Addr.Unix_sock path) in
  let (), _ =
    with_server ~cfg (fun addr ->
        let c = connect addr in
        ping c;
        Client.close c)
  in
  Alcotest.(check bool)
    "socket file removed on drain" false (Sys.file_exists path)

(* The wire verdict must agree with the in-process engine: same
   process, same cascade, so equality is exact, not statistical. *)
let test_query_matches_engine =
  without_chaos @@ fun () ->
  let cases =
    [
      family_problem ~depth:2 ~extent:10 ~shifted:false;
      family_problem ~depth:2 ~extent:10 ~shifted:true;
      family_problem ~depth:3 ~extent:8 ~shifted:true;
    ]
  in
  let wire, _ =
    with_server (fun addr ->
        let c = connect addr in
        let rs =
          List.mapi
            (fun i np ->
              let r = request c (query_json ~id:i np) in
              Alcotest.(check bool) "query ok" true (get_bool r "ok");
              (get_str r "verdict", get_str r "decided_by"))
            cases
        in
        Client.close c;
        rs)
  in
  Engine.reset_metrics ();
  List.iter2
    (fun np (wire_verdict, wire_decider) ->
      let r = Engine.query ~env:Assume.empty (Problem.synthetic np) in
      Alcotest.(check string)
        "wire verdict = engine verdict"
        (Dlz_deptest.Verdict.to_string r.Dlz_engine.Strategy.verdict)
        wire_verdict;
      Alcotest.(check string)
        "wire provenance = engine provenance" r.Dlz_engine.Strategy.decided_by
        wire_decider)
    cases wire

let test_analyze_stream =
  without_chaos @@ fun () ->
  let (), _ =
    with_server (fun addr ->
        let c = connect addr in
        (match
           Client.send c
             (obj
                [
                  ("op", Jsonx.Str "analyze");
                  ("id", Jsonx.Int 7);
                  ("lang", Jsonx.Str "f");
                  ("source", Jsonx.Str family_source);
                ])
         with
        | Error m -> Alcotest.fail m
        | Ok () -> ());
        (match Client.read_stream c with
        | Error m -> Alcotest.fail m
        | Ok frames ->
            let pairs, summary =
              List.partition
                (fun j ->
                  match Jsonx.member "op" j with
                  | Some (Jsonx.Str "pair") -> true
                  | _ -> false)
                frames
            in
            let s =
              match summary with
              | [ s ] -> s
              | _ -> Alcotest.fail "expected exactly one summary frame"
            in
            Alcotest.(check bool) "summary ok" true (get_bool s "ok");
            Alcotest.(check bool) "summary done" true (get_bool s "done");
            Alcotest.(check int)
              "summary pairs = streamed pair frames" (List.length pairs)
              (get_int s "pairs");
            Alcotest.(check bool)
              "found dependences" true
              (get_int s "dependent" > 0);
            List.iter
              (fun p ->
                ignore (get_str p "verdict");
                ignore (get_str p "src");
                Alcotest.(check int) "pair id echoed" 7 (get_int p "id"))
              pairs);
        (* The stream left the connection clean: it still serves. *)
        ping ~id:8 c;
        Client.close c)
  in
  ()

(* --- containment --------------------------------------------------------- *)

let test_bad_json_continues =
  without_chaos @@ fun () ->
  let (), _ =
    with_server (fun addr ->
        let c = connect addr in
        (match Client.send_raw c (Frame.encode "this is not json") with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        (match Client.recv c with
        | Ok r ->
            Alcotest.(check bool) "error reply" false (get_bool r "ok");
            Alcotest.(check string)
              "bad-request reason" "bad-request" (get_str r "reason")
        | Error m -> Alcotest.fail m);
        (* Well-framed garbage costs one reply, not the connection. *)
        ping ~id:2 c;
        let r =
          request c (obj [ ("op", Jsonx.Str "frobnicate"); ("id", Jsonx.Int 3) ])
        in
        Alcotest.(check bool) "unknown op refused" false (get_bool r "ok");
        Alcotest.(check string)
          "unknown op reason" "bad-request" (get_str r "reason");
        ping ~id:4 c;
        Client.close c)
  in
  ()

let test_malformed_frame_closes =
  without_chaos @@ fun () ->
  let (), summary =
    with_server (fun addr ->
        let c = connect addr in
        (match Client.send_raw c "not-a-length\n{\"op\":\"ping\"}\n" with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        (match Client.recv c with
        | Ok r ->
            Alcotest.(check bool) "error reply" false (get_bool r "ok");
            Alcotest.(check string)
              "protocol reason" "protocol" (get_str r "reason")
        | Error m -> Alcotest.fail m);
        (* The byte stream cannot resync: the server closed it. *)
        (match Client.recv c with
        | Error _ -> ()
        | Ok r ->
            Alcotest.failf "expected closed connection, got %s"
              (Jsonx.to_string r));
        Client.close c;
        (* The daemon itself is untouched. *)
        let c2 = connect addr in
        ping c2;
        Client.close c2)
  in
  Alcotest.(check bool)
    "malformed frame counted" true
    (summary.Server.sm_metrics.Metrics.s_malformed >= 1)

let test_oversize_frame_closes =
  without_chaos @@ fun () ->
  let cfg = { (Server.default_config loopback) with Server.max_frame = 1024 } in
  let (), _ =
    with_server ~cfg (fun addr ->
        let c = connect addr in
        let big = String.make 4096 'x' in
        (match
           Client.send_raw c
             (Frame.encode
                (Printf.sprintf "{\"op\":\"ping\",\"pad\":\"%s\"}" big))
         with
        | Ok () -> ()
        | Error _ -> () (* server may already have slammed the door *));
        (match Client.recv c with
        | Ok r ->
            Alcotest.(check bool) "oversize refused" false (get_bool r "ok")
        | Error _ -> () (* reply raced the close: the close is the point *));
        Client.close c;
        let c2 = connect addr in
        ping c2;
        Client.close c2)
  in
  ()

let test_disconnect_mid_stream =
  without_chaos @@ fun () ->
  let (), summary =
    with_server
      ~cfg:{ (Server.default_config loopback) with Server.workers = 2 }
      (fun addr ->
        (* One client starts an analyze and vanishes mid-stream... *)
        let c = connect addr in
        (match
           Client.send c
             (obj
                [
                  ("op", Jsonx.Str "analyze");
                  ("id", Jsonx.Int 1);
                  ("lang", Jsonx.Str "f");
                  ("source", Jsonx.Str family_source);
                ])
         with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        ignore (Client.recv c);
        Client.close c;
        (* ...while a concurrent one completes untouched. *)
        let c2 = connect addr in
        let r = request c2 (query_json ~id:2 (family_problem ~depth:2 ~extent:8 ~shifted:false)) in
        Alcotest.(check bool) "concurrent client ok" true (get_bool r "ok");
        ping ~id:3 c2;
        Client.close c2)
  in
  ignore summary

let test_slow_loris_timed_out =
  without_chaos @@ fun () ->
  let cfg =
    { (Server.default_config loopback) with Server.idle_timeout_ms = 300 }
  in
  let (), summary =
    with_server ~cfg (fun addr ->
        let c = connect addr in
        (* Half a frame, then silence: the read timeout must reclaim
           the worker. *)
        (match Client.send_raw c "40\n{\"op\":" with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        let t0 = Trace.now_ns () in
        (match Client.recv c with
        | Error _ -> () (* timed out / closed — either is reclamation *)
        | Ok r ->
            Alcotest.(check bool) "loris refused" false (get_bool r "ok"));
        let waited_ms =
          Int64.to_int (Int64.div (Int64.sub (Trace.now_ns ()) t0) 1_000_000L)
        in
        Alcotest.(check bool)
          "reclaimed within ~idle timeout (not the 5s client timeout)" true
          (waited_ms < 3_000);
        Client.close c;
        let c2 = connect addr in
        ping c2;
        Client.close c2)
  in
  Alcotest.(check bool)
    "timeout counted" true
    (summary.Server.sm_metrics.Metrics.s_timeouts >= 1)

(* --- admission ----------------------------------------------------------- *)

let test_overload_sheds_explicitly =
  without_chaos @@ fun () ->
  let cfg =
    {
      (Server.default_config loopback) with
      Server.workers = 1;
      queue_capacity = 1;
    }
  in
  let (), summary =
    with_server ~cfg (fun addr ->
        (* A occupies the single worker (a session holds its worker
           until it closes); B fills the queue of 1; C must be shed
           immediately and explicitly. *)
        let a = connect addr in
        ping a;
        (* ping forces A through admission onto the worker *)
        let b = connect addr in
        Unix.sleepf 0.2;
        let c = connect addr in
        (match Client.recv c with
        | Ok r ->
            Alcotest.(check bool) "shed reply" false (get_bool r "ok");
            Alcotest.(check string)
              "overloaded reason" "overloaded" (get_str r "reason");
            Alcotest.(check bool)
              "retry hint present" true
              (get_int r "retry_after_ms" >= 0)
        | Error m -> Alcotest.fail ("expected an overloaded reply: " ^ m));
        Client.close c;
        (* Releasing the worker drains the queue: B gets served. *)
        Client.close a;
        ping ~id:9 b;
        Client.close b)
  in
  Alcotest.(check bool)
    "shed counted" true
    (summary.Server.sm_metrics.Metrics.s_shed >= 1)

(* --- budgets ------------------------------------------------------------- *)

let test_tiny_budget_degrades_but_answers =
  without_chaos @@ fun () ->
  let (), _ =
    with_server (fun addr ->
        let c = connect addr in
        let np = family_problem ~depth:3 ~extent:12 ~shifted:true in
        let r = request c (query_json ~fuel:0 ~id:1 np) in
        (* Exhaustion is an answer, not a kill: ok:true, conservative
           verdict, degradation provenance on the wire. *)
        Alcotest.(check bool) "degraded query still ok" true (get_bool r "ok");
        Alcotest.(check string)
          "conservative verdict" "dependent" (get_str r "verdict");
        (match Jsonx.member "degraded" r with
        | Some (Jsonx.List (_ :: _)) -> ()
        | _ ->
            Alcotest.failf "expected degradations on the wire, got %s"
              (Jsonx.to_string r));
        (* The same connection still answers a full-budget query. *)
        let r2 = request c (query_json ~id:2 np) in
        Alcotest.(check bool) "follow-up ok" true (get_bool r2 "ok");
        Client.close c)
  in
  ()

(* --- drain + warm restart ------------------------------------------------ *)

let test_shutdown_drains_and_warm_restarts =
  without_chaos @@ fun () ->
  let snap = Filename.temp_file "dlz_serve" ".snap" in
  let probs =
    List.init 4 (fun k ->
        family_problem ~depth:(1 + (k mod 3)) ~extent:10 ~shifted:(k >= 2))
  in
  let cfg_save =
    { (Server.default_config loopback) with Server.snapshot_save = Some snap }
  in
  let (), sum1 =
    with_server ~cfg:cfg_save (fun addr ->
        let c = connect addr in
        List.iteri
          (fun i np ->
            let r = request c (query_json ~id:i np) in
            Alcotest.(check bool) "warm-up query ok" true (get_bool r "ok"))
          probs;
        let r =
          request c (obj [ ("op", Jsonx.Str "shutdown"); ("id", Jsonx.Int 99) ])
        in
        Alcotest.(check bool) "shutdown acknowledged" true (get_bool r "ok");
        Client.close c)
  in
  let saved =
    match sum1.Server.sm_saved with
    | Some (Ok n) -> n
    | Some (Error m) -> Alcotest.fail ("drain snapshot failed: " ^ m)
    | None -> Alcotest.fail "drain snapshot not attempted"
  in
  Alcotest.(check bool) "drain snapshot non-empty" true (saved > 0);
  (* Restart from the snapshot: the same queries answer warm. *)
  let cfg_load =
    { (Server.default_config loopback) with Server.snapshot_load = Some snap }
  in
  let (), sum2 =
    with_server ~cfg:cfg_load (fun addr ->
        let c = connect addr in
        List.iteri
          (fun i np ->
            let r = request c (query_json ~id:i np) in
            Alcotest.(check bool) "warm query ok" true (get_bool r "ok"))
          probs;
        let warm = Stats.warm_hits Stats.global in
        Alcotest.(check bool) "warm-start hits > 0" true (warm > 0);
        Client.close c)
  in
  (match sum2.Server.sm_loaded with
  | Some (Ok n) ->
      Alcotest.(check int) "loaded what was saved" saved n
  | Some (Error m) -> Alcotest.fail ("warm start failed: " ^ m)
  | None -> Alcotest.fail "warm start not attempted");
  Sys.remove snap

(* --- observability -------------------------------------------------------- *)

let serve_counters r =
  match Jsonx.member "serve" r with
  | Some s -> s
  | None -> Alcotest.failf "stats reply missing serve: %s" (Jsonx.to_string r)

let stats_json id = obj [ ("op", Jsonx.Str "stats"); ("id", Jsonx.Int id) ]

let with_client client = function
  | Jsonx.Obj fields -> Jsonx.Obj (("client", Jsonx.Str client) :: fields)
  | j -> j

(* The stats verb as a regression instrument: a known request mix on
   one connection must move the serve counters by exactly its own
   weight.  Exactness is a same-connection property — the one worker
   serving the connection orders every increment against the scrapes
   it renders.  Counters owned by other domains (the accept loop's
   [accepted]) are only eventually consistent with a scrape, so they
   get a converge-poll, not a lockstep delta. *)
let test_stats_exact_deltas =
  without_chaos @@ fun () ->
  let (deltas, total), _ =
    with_server (fun addr ->
        let c = connect addr in
        let s0 = serve_counters (request c (stats_json 100)) in
        (* The mix: 3 pings, a cold query + its cache hit, one
           well-framed unknown op. *)
        ping ~id:1 c;
        ping ~id:2 c;
        ping ~id:3 c;
        let np = family_problem ~depth:2 ~extent:8 ~shifted:false in
        let r = request c (query_json ~id:4 np) in
        Alcotest.(check bool) "query ok" true (get_bool r "ok");
        let r = request c (query_json ~id:5 np) in
        Alcotest.(check bool) "repeat query ok" true (get_bool r "ok");
        let r =
          request c (obj [ ("op", Jsonx.Str "frobnicate"); ("id", Jsonx.Int 6) ])
        in
        Alcotest.(check bool) "unknown op refused" false (get_bool r "ok");
        let s1 = serve_counters (request c (stats_json 101)) in
        let deltas =
          List.map
            (fun k -> (k, get_int s1 k - get_int s0 k))
            [ "requests"; "responses"; "errors"; "shed"; "malformed" ]
        in
        (* A second connection's admission is counted by the accept
           loop's own domain: poll until it lands. *)
        let c2 = connect addr in
        ping ~id:7 c2;
        Client.close c2;
        let deadline = Int64.add (Trace.now_ns ()) 5_000_000_000L in
        let rec settle () =
          let s = serve_counters (request c (stats_json 102)) in
          let a = get_int s "accepted" in
          if a >= 2 || Trace.now_ns () > deadline then a else settle ()
        in
        let accepted = settle () in
        Client.close c;
        (deltas, accepted))
  in
  (* requests = 3 pings + 2 queries + 1 bad + the closing scrape itself
     (a request is counted when its frame is read, so the scrape has
     counted itself before it renders); responses = the opening
     scrape's own reply + 3 pings + 2 queries (a response is counted
     when sent, so each scrape's reply lands in the next window). *)
  Alcotest.(check (list (pair string int)))
    "same-connection deltas exact"
    [
      ("requests", 7); ("responses", 6); ("errors", 1); ("shed", 0);
      ("malformed", 0);
    ]
    deltas;
  Alcotest.(check int) "both connections eventually counted accepted" 2 total

(* The same instrument under process-wide fault injection: exact
   deltas are gone (a fault can eat a reply after its request was
   counted), but the books must still balance — every reply this
   client read implies a counted request, and the daemon never sends
   more replies than it received requests. *)
let test_stats_books_balance_under_chaos () =
  let (), _ =
    with_chaos ~seed:5L ~rate:0.05 @@ fun () ->
    with_server (fun addr ->
        let rec scrape id tries =
          if tries = 0 then
            Alcotest.fail "stats verb never answered under chaos"
          else
            match Client.connect ~timeout_ms:2_000 addr with
            | Error _ -> scrape id (tries - 1)
            | Ok c ->
                let r = Client.request c (stats_json id) in
                Client.close c;
                (match r with
                | Ok r when Jsonx.member "serve" r <> None -> serve_counters r
                | _ -> scrape id (tries - 1))
        in
        let s0 = scrape 100 50 in
        let oks = ref 0 and errs = ref 0 in
        for i = 1 to 16 do
          match Client.connect ~timeout_ms:2_000 addr with
          | Error _ -> ()
          | Ok c ->
              let j =
                if i mod 4 = 0 then
                  obj [ ("op", Jsonx.Str "frobnicate"); ("id", Jsonx.Int i) ]
                else obj [ ("op", Jsonx.Str "ping"); ("id", Jsonx.Int i) ]
              in
              (match Client.request c j with
              | Ok r -> (
                  match Jsonx.member "ok" r with
                  | Some (Jsonx.Bool true) -> incr oks
                  | Some (Jsonx.Bool false) -> incr errs
                  | _ -> ())
              | Error _ -> ());
              Client.close c
        done;
        let s1 = scrape 101 50 in
        let d k = get_int s1 k - get_int s0 k in
        (* Every reply has a cause the daemon counted: a well-framed
           request, or a framing/timeout fault it refused (a chaos-torn
           frame draws a ["protocol"] reply with no request behind
           it). *)
        let causes = d "requests" + d "malformed" + d "timeouts" in
        Alcotest.(check bool)
          "every reply read implies a counted cause" true
          (causes >= !oks + !errs);
        Alcotest.(check bool)
          "replies sent never exceed counted causes" true
          (d "responses" + d "errors" <= causes);
        List.iter
          (fun k ->
            Alcotest.(check bool)
              (k ^ " counter is monotone") true (d k >= 0))
          [
            "requests"; "responses"; "errors"; "accepted"; "malformed";
            "timeouts";
          ])
  in
  ()

(* The request-correlation contract: every response carries a rid,
   rids are strictly monotonic, and the same rid appears on the
   daemon's own "serve.request" trace span — and, for a query, on the
   engine's "query" span it caused (threaded through [?annot]). *)
let test_rid_roundtrip =
  without_chaos @@ fun () ->
  let saved_level = Trace.level () in
  let saved_seed, saved_rate = Trace.sampling () in
  Trace.set_level Trace.Full;
  Trace.set_sampling ~seed:1L 1.0;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_level saved_level;
      Trace.set_sampling ~seed:saved_seed saved_rate;
      Trace.clear ())
  @@ fun () ->
  let rids, _ =
    with_server (fun addr ->
        let c = connect addr in
        let r_ping =
          request c (obj [ ("op", Jsonx.Str "ping"); ("id", Jsonx.Int 1) ])
        in
        let np = family_problem ~depth:2 ~extent:8 ~shifted:false in
        let r_query = request c (query_json ~id:2 np) in
        let r_stats = request c (stats_json 3) in
        Client.close c;
        List.map (fun r -> get_int r "rid") [ r_ping; r_query; r_stats ])
  in
  List.iter
    (fun rid -> Alcotest.(check bool) "rid positive" true (rid >= 1))
    rids;
  (match rids with
  | [ a; b; c ] ->
      Alcotest.(check bool) "rids strictly monotonic" true (a < b && b < c)
  | _ -> Alcotest.fail "expected three rids");
  (* The server is joined: the ring buffers are quiescent. *)
  let events = Trace.events () in
  let span_with name rid =
    List.exists
      (fun ((_ : int), e) ->
        e.Trace.ev_name = name
        && List.assoc_opt "rid" e.Trace.ev_args = Some (string_of_int rid))
      events
  in
  List.iter
    (fun rid ->
      Alcotest.(check bool)
        (Printf.sprintf "rid %d on a serve.request span" rid)
        true
        (span_with "serve.request" rid))
    rids;
  Alcotest.(check bool)
    "query rid rides the engine query span" true
    (span_with "query" (List.nth rids 1))

(* The metrics verb end to end: warm-start a server so the per-client
   warm/cold hit split has both temperatures, drive a named client
   through a known query mix, and check the Prometheus body — exact
   attribution counters, derived per-client per-verb p50/p99 gauges,
   sorted family order, and byte-identical rendering of unchanged
   state. *)
let test_metrics_verb_prom =
  without_chaos @@ fun () ->
  let snap = Filename.temp_file "dlz_serve" ".snap" in
  let probs =
    List.init 3 (fun k ->
        family_problem ~depth:2 ~extent:(8 + (2 * k)) ~shifted:false)
  in
  let cfg_save =
    { (Server.default_config loopback) with Server.snapshot_save = Some snap }
  in
  let (), _ =
    with_server ~cfg:cfg_save (fun addr ->
        let c = connect addr in
        List.iteri
          (fun i np ->
            let r = request c (query_json ~id:i np) in
            Alcotest.(check bool) "seed query ok" true (get_bool r "ok"))
          probs;
        let r =
          request c (obj [ ("op", Jsonx.Str "shutdown"); ("id", Jsonx.Int 99) ])
        in
        Alcotest.(check bool) "shutdown acknowledged" true (get_bool r "ok");
        Client.close c)
  in
  let cfg_load =
    { (Server.default_config loopback) with Server.snapshot_load = Some snap }
  in
  let (), _ =
    with_server ~cfg:cfg_load (fun addr ->
        let c = connect addr in
        let q id np =
          let r = request c (with_client "t-obs" (query_json ~id np)) in
          Alcotest.(check bool) "attributed query ok" true (get_bool r "ok")
        in
        (* 3 warm hits (snapshot entries), then a miss and its cold hit. *)
        List.iteri (fun i np -> q i np) probs;
        let fresh = family_problem ~depth:3 ~extent:6 ~shifted:true in
        q 10 fresh;
        q 11 fresh;
        let fetch id =
          let r =
            request c
              (obj
                 [
                   ("op", Jsonx.Str "metrics");
                   ("id", Jsonx.Int id);
                   ("format", Jsonx.Str "prom");
                   ("client", Jsonx.Str "t-obs");
                 ])
          in
          Alcotest.(check bool) "metrics ok" true (get_bool r "ok");
          Alcotest.(check string) "format echoed" "prom" (get_str r "format");
          get_str r "body"
        in
        let body = fetch 20 in
        let body2 = fetch 21 in
        let has needle b =
          let nl = String.length needle and bl = String.length b in
          let rec go i =
            i + nl <= bl && (String.sub b i nl = needle || go (i + 1))
          in
          go 0
        in
        let expect line =
          Alcotest.(check bool) ("body has " ^ line) true (has line body)
        in
        expect "vic_client_requests_total{client=\"t-obs\",verb=\"query\"} 5\n";
        expect "vic_client_cache_hits_total{client=\"t-obs\",temp=\"warm\"} 3\n";
        expect "vic_client_cache_hits_total{client=\"t-obs\",temp=\"cold\"} 1\n";
        expect "vic_client_cache_misses_total{client=\"t-obs\"} 1\n";
        expect "vic_client_request_ns_p50{client=\"t-obs\",verb=\"query\"} ";
        expect "vic_client_request_ns_p99{client=\"t-obs\",verb=\"query\"} ";
        (* Scraping must not move the attribution counters. *)
        Alcotest.(check bool)
          "second scrape sees the same counters" true
          (has "vic_client_cache_hits_total{client=\"t-obs\",temp=\"warm\"} 3\n"
             body2
          && has "vic_client_requests_total{client=\"t-obs\",verb=\"query\"} 5\n"
               body2);
        (* Families arrive in sorted order on the wire. *)
        let headers =
          String.split_on_char '\n' body
          |> List.filter_map (fun l ->
                 if String.length l > 7 && String.sub l 0 7 = "# TYPE " then
                   Some (List.hd (String.split_on_char ' '
                                    (String.sub l 7 (String.length l - 7))))
                 else None)
        in
        Alcotest.(check bool)
          "family headers sorted" true
          (List.sort compare headers = headers);
        Alcotest.(check bool) "several families exposed" true
          (List.length headers > 5);
        Client.close c;
        (* Unchanged state renders byte-identically.  The worker
           records its last observation after its last reply, so
           quiescence is eventual: scrape in-process until two
           successive renders agree (if rendering of unchanged state
           were nondeterministic, no fixpoint would ever land). *)
        let deadline = Int64.add (Trace.now_ns ()) 5_000_000_000L in
        let rec stabilize prev =
          let cur = Dlz_obs.Prom.to_string (Dlz_obs.Registry.collect ()) in
          if String.equal prev cur then ()
          else if Trace.now_ns () > deadline then
            Alcotest.fail "obs scrape never reached a byte-stable fixpoint"
          else stabilize cur
        in
        stabilize "")
  in
  Sys.remove snap

(* --- chaos battery ------------------------------------------------------- *)

(* Process-wide injection at the socket boundary (torn frames,
   disconnects, slow writes) and inside the engine, on both sides of
   the wire.  Injection-proof assertions only: every client
   terminates, the books balance, the daemon survives to answer a
   clean ping, and every server-side fault was contained (a counter,
   never a crash). *)
let chaos_battery seed () =
  let rep, summary =
    with_chaos ~seed ~rate:0.05 @@ fun () ->
    with_server
      ~cfg:
        {
          (Server.default_config loopback) with
          Server.workers = 2;
          queue_capacity = 16;
        }
      (fun addr ->
        Serve.load_gen ~addr ~clients:8 ~sessions:48 ~requests_per_session:4
          ~workload:Serve.Mix ())
  in
  let r = rep in
  let classified =
    r.Serve.lg_ok + r.Serve.lg_shed + r.Serve.lg_draining + r.Serve.lg_errors
    + r.Serve.lg_transport
  in
  Alcotest.(check bool)
    "every request classified, none lost" true
    (classified >= r.Serve.lg_requests);
  Alcotest.(check bool) "some requests survived the faults" true (r.Serve.lg_ok > 0);
  let m = summary.Server.sm_metrics in
  Alcotest.(check int) "no connection left active" 0 m.Metrics.s_active;
  (* The daemon outlived the storm: a clean client gets a clean answer. *)
  let (), _ =
    without_chaos (fun () ->
        with_server (fun addr ->
            let c = connect addr in
            ping c;
            Client.close c))
      ()
  in
  ()

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping and stats round-trip" `Quick
            test_ping_and_stats;
          Alcotest.test_case "unix socket serves and is cleaned up" `Quick
            test_unix_socket;
          Alcotest.test_case "wire query = in-process engine" `Quick
            test_query_matches_engine;
          Alcotest.test_case "analyze streams pairs then a summary" `Quick
            test_analyze_stream;
        ] );
      ( "containment",
        [
          Alcotest.test_case "bad JSON costs one reply, not the connection"
            `Quick test_bad_json_continues;
          Alcotest.test_case "framing violation closes only that connection"
            `Quick test_malformed_frame_closes;
          Alcotest.test_case "oversize frame refused" `Quick
            test_oversize_frame_closes;
          Alcotest.test_case "mid-stream disconnect leaves others untouched"
            `Quick test_disconnect_mid_stream;
          Alcotest.test_case "slow-loris reclaimed by the idle timeout" `Quick
            test_slow_loris_timed_out;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload sheds explicitly with a retry hint"
            `Quick test_overload_sheds_explicitly;
        ] );
      ( "budget",
        [
          Alcotest.test_case "tiny budget degrades but answers" `Quick
            test_tiny_budget_degrades_but_answers;
        ] );
      ( "drain",
        [
          Alcotest.test_case "shutdown drains, snapshots, restarts warm"
            `Quick test_shutdown_drains_and_warm_restarts;
        ] );
      ( "obs",
        [
          Alcotest.test_case "stats verb moves by exact deltas" `Quick
            test_stats_exact_deltas;
          Alcotest.test_case "stats books balance under chaos" `Quick
            test_stats_books_balance_under_chaos;
          Alcotest.test_case "rid round-trips response and trace spans" `Quick
            test_rid_roundtrip;
          Alcotest.test_case "metrics verb: attribution, order, determinism"
            `Quick test_metrics_verb_prom;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "battery at seed 7" `Quick (chaos_battery 7L);
          Alcotest.test_case "battery at seed 1234" `Quick
            (chaos_battery 1234L);
        ] );
    ]
