(* Tests for the FORTRAN-77 and C front ends. *)

module F77 = Dlz_frontend.F77_parser
module C_parser = Dlz_frontend.C_parser
module C = Dlz_frontend.C_ast
module Diag = Dlz_frontend.Diag
module Ast = Dlz_ir.Ast
module Expr = Dlz_ir.Expr

let expr = Alcotest.testable Expr.pp Expr.equal

let parse_fails src =
  match F77.parse src with
  | exception Diag.Parse_error _ -> true
  | _ -> false

(* --- F77 expressions -------------------------------------------------------- *)

let f77_expr_units =
  [
    Alcotest.test_case "precedence" `Quick (fun () ->
        Alcotest.check expr "i+10*j"
          Expr.(Bin (Add, Var "I", Bin (Mul, Const 10, Var "J")))
          (F77.parse_expr "i+10*j");
        Alcotest.check expr "(i+10)*j"
          Expr.(Bin (Mul, Bin (Add, Var "I", Const 10), Var "J"))
          (F77.parse_expr "(i+10)*j");
        Alcotest.check expr "unary minus"
          Expr.(Bin (Add, Neg (Var "I"), Var "J"))
          (F77.parse_expr "-i+j"));
    Alcotest.test_case "power expansion" `Quick (fun () ->
        (* N**2 becomes N*N so subscripts stay polynomial. *)
        Alcotest.check expr "n**2"
          Expr.(Bin (Mul, Var "N", Var "N"))
          (F77.parse_expr "n**2");
        Alcotest.check expr "n**1" (Expr.Var "N") (F77.parse_expr "n**1");
        Alcotest.check expr "n**0" (Expr.Const 1) (F77.parse_expr "n**0"));
    Alcotest.test_case "calls and array refs" `Quick (fun () ->
        Alcotest.check expr "ifun(10)"
          (Expr.Call ("IFUN", [ Expr.Const 10 ]))
          (F77.parse_expr "ifun(10)");
        Alcotest.check expr "a(i,j)"
          (Expr.Call ("A", [ Expr.Var "I"; Expr.Var "J" ]))
          (F77.parse_expr "a(i,j)"));
    Alcotest.test_case "case insensitivity" `Quick (fun () ->
        Alcotest.check expr "same var" (F77.parse_expr "ib+1")
          (F77.parse_expr "IB+1"));
    Alcotest.test_case "real literals opaque" `Quick (fun () ->
        match F77.parse_expr "1.5" with
        | Expr.Call ("%REAL", _) -> ()
        | e -> Alcotest.failf "unexpected %s" (Expr.to_string e));
  ]

(* --- F77 programs ------------------------------------------------------------ *)

let count_assigns prog =
  let n = ref 0 in
  Ast.iter_assigns prog ~f:(fun ~loops:_ _ -> incr n);
  !n

let rec depth = function
  | Ast.Do d -> 1 + List.fold_left (fun m s -> max m (depth s)) 0 d.body
  | _ -> 0

let f77_program_units =
  [
    Alcotest.test_case "labeled DO with shared terminator" `Quick (fun () ->
        let prog =
          F77.parse
            "      REAL A(10)\n\
            \      DO 1 I = 1, 5\n\
            \      DO 1 J = 1, 5\n\
             1     A(I) = A(J)\n\
            \      END\n"
        in
        Alcotest.(check int) "one top-level stmt" 1 (List.length prog.Ast.body);
        Alcotest.(check int) "nesting depth 2" 2 (depth (List.hd prog.Ast.body));
        Alcotest.(check int) "one assignment" 1 (count_assigns prog));
    Alcotest.test_case "labeled CONTINUE terminators" `Quick (fun () ->
        let prog =
          F77.parse
            "      REAL A(10)\n\
            \      DO 10 I = 1, 5\n\
            \      A(I) = 0\n\
             10    CONTINUE\n\
            \      END\n"
        in
        match prog.Ast.body with
        | [ Ast.Do { body = [ Ast.Assign _; Ast.Continue 10 ]; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected structure");
    Alcotest.test_case "ENDDO and END DO" `Quick (fun () ->
        let prog =
          F77.parse
            "      DO I = 1, 5\n\
            \      X = I\n\
            \      ENDDO\n\
            \      DO J = 1, 5\n\
            \      X = J\n\
            \      END DO\n\
            \      END\n"
        in
        Alcotest.(check int) "two loops" 2 (List.length prog.Ast.body));
    Alcotest.test_case "declarations" `Quick (fun () ->
        let prog =
          F77.parse
            "      PROGRAM DEMO\n\
            \      REAL A(0:9,0:9), B(100)\n\
            \      INTEGER IB, N\n\
            \      DIMENSION W(5)\n\
            \      PARAMETER (M=10, L=20)\n\
            \      COMMON /BLK/ A, B\n\
            \      EQUIVALENCE (A, B), (W(1), B(2))\n\
            \      END\n"
        in
        Alcotest.(check string) "program name" "DEMO" prog.Ast.p_name;
        let arrays =
          List.filter_map
            (function Ast.Array a -> Some a.Ast.a_name | _ -> None)
            prog.Ast.decls
        in
        Alcotest.(check (list string)) "arrays" [ "A"; "B"; "W" ] arrays;
        let a = Option.get (Ast.find_array prog "A") in
        Alcotest.(check int) "A rank 2" 2 (List.length a.Ast.a_dims);
        (match a.Ast.a_dims with
        | [ d1; _ ] ->
            Alcotest.check expr "lo 0" (Expr.Const 0) d1.Ast.lo;
            Alcotest.check expr "hi 9" (Expr.Const 9) d1.Ast.hi
        | _ -> Alcotest.fail "dims");
        let b = Option.get (Ast.find_array prog "B") in
        (match b.Ast.a_dims with
        | [ d ] -> Alcotest.check expr "default lo 1" (Expr.Const 1) d.Ast.lo
        | _ -> Alcotest.fail "dims");
        Alcotest.(check int) "params folded later" 2
          (List.length
             (List.concat_map
                (function Ast.Parameter ps -> ps | _ -> [])
                prog.Ast.decls)));
    Alcotest.test_case "DO with step" `Quick (fun () ->
        let prog =
          F77.parse "      DO I = 0, 90, 10\n      X = I\n      ENDDO\n      END\n"
        in
        match prog.Ast.body with
        | [ Ast.Do { step = Expr.Const 10; _ } ] -> ()
        | _ -> Alcotest.fail "step not parsed");
    Alcotest.test_case "comments and blank lines" `Quick (fun () ->
        let prog =
          F77.parse
            "C full line comment\n\
             \n\
            \      X = 1 ! trailing comment\n\
             c another\n\
            \      END\n"
        in
        Alcotest.(check int) "one stmt" 1 (List.length prog.Ast.body));
    Alcotest.test_case "assignment vs keyword disambiguation" `Quick (fun () ->
        (* DO is a keyword, but DOX = 1 is an assignment. *)
        let prog = F77.parse "      DOX = 1\n      END\n" in
        match prog.Ast.body with
        | [ Ast.Assign { lhs = { name = "DOX"; _ }; _ } ] -> ()
        | _ -> Alcotest.fail "assignment to DOX mis-parsed");
    Alcotest.test_case "errors carry locations" `Quick (fun () ->
        Alcotest.(check bool) "unterminated DO" true
          (parse_fails "      DO I = 1, 5\n      X = I\n      END\n" = true
          || true);
        (match F77.parse "      DO I = 1, 5\n      X = I\n" with
        | exception Diag.Parse_error (_, msg) ->
            Alcotest.(check bool) "mentions DO" true
              (String.length msg > 0)
        | _ -> Alcotest.fail "expected parse error");
        (match F77.parse "      X = )\n" with
        | exception Diag.Parse_error (loc, _) ->
            Alcotest.(check int) "line 1" 1 loc.Diag.line
        | _ -> Alcotest.fail "expected parse error"));
    Alcotest.test_case "ENDDO without DO fails" `Quick (fun () ->
        Alcotest.(check bool) "fails" true (parse_fails "      ENDDO\n"));
    Alcotest.test_case "fragment without PROGRAM header" `Quick (fun () ->
        let prog = F77.parse "      X = 1\n" in
        Alcotest.(check string) "default name" "FRAGMENT" prog.Ast.p_name);
  ]

(* --- C ------------------------------------------------------------------------ *)

let c_units =
  [
    Alcotest.test_case "paper fragment structure" `Quick (fun () ->
        let p =
          C_parser.parse
            "float d[100];\n\
             float *i, *j;\n\
             for (j = d; j <= d + 90; j += 10)\n\
            \  for (i = j; i < j + 5; i++)\n\
            \    *i = *(i + 5);\n"
        in
        Alcotest.(check int) "three stmts" 3 (List.length p);
        match p with
        | [ C.Decl (C.Float, [ d ]); C.Decl (C.Float, ptrs); C.For f ] ->
            Alcotest.(check (list int)) "d[100]" [ 100 ] d.C.d_dims;
            Alcotest.(check int) "two pointers" 2 (List.length ptrs);
            Alcotest.(check bool) "both are pointers" true
              (List.for_all (fun (x : C.declarator) -> x.C.d_ptr) ptrs);
            Alcotest.(check int) "outer step 10" 10 f.step.C.s_delta
        | _ -> Alcotest.fail "unexpected structure");
    Alcotest.test_case "expression forms" `Quick (fun () ->
        (match C_parser.parse_expr "d[j*10+i]" with
        | C.EIndex (C.EVar "d", _) -> ()
        | _ -> Alcotest.fail "index");
        (match C_parser.parse_expr "*(i+5)" with
        | C.EDeref (C.EBin (`Add, C.EVar "i", C.EInt 5)) -> ()
        | _ -> Alcotest.fail "deref");
        match C_parser.parse_expr "f(1, x)" with
        | C.ECall ("f", [ C.EInt 1; C.EVar "x" ]) -> ()
        | _ -> Alcotest.fail "call");
    Alcotest.test_case "for with braces and decrement" `Quick (fun () ->
        let p =
          C_parser.parse
            "int i;\nfor (i = 9; i >= 0; i--) { d[i] = 0; d[i+1] = 1; }\n"
        in
        match p with
        | [ _; C.For f ] ->
            Alcotest.(check int) "delta -1" (-1) f.step.C.s_delta;
            Alcotest.(check int) "two body stmts" 2 (List.length f.body)
        | _ -> Alcotest.fail "structure");
    Alcotest.test_case "comments" `Quick (fun () ->
        let p = C_parser.parse "// hello\nint i;\ni = 1; // done\n" in
        Alcotest.(check int) "two stmts" 2 (List.length p));
    Alcotest.test_case "parse error" `Quick (fun () ->
        match C_parser.parse "for (;;)" with
        | exception Diag.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
  ]

(* --- C failure battery -------------------------------------------------- *)

(* Golden line:col assertions: every diagnostic must point at the
   offending token, not the statement start (the shadowing bug), and
   malformed input must never escape the Diag.Parse_error taxonomy. *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let c_fails_at name src line col =
  Alcotest.test_case name `Quick (fun () ->
      match C_parser.parse src with
      | exception Diag.Parse_error (loc, _) ->
          Alcotest.(check int) "line" line loc.Diag.line;
          Alcotest.(check int) "col" col loc.Diag.col
      | _ -> Alcotest.fail "expected a parse error")

let c_failure_units =
  [
    c_fails_at "loop condition diagnostic points at the offending token"
      "int i;\nfor (i = 0; i + 10; i++) i = 0;\n" 2 19;
    c_fails_at "step diagnostic points at the offending token"
      "int i;\nfor (i = 0; i < 5; i = 2) i = 0;\n" 2 22;
    c_fails_at "non-constant step points at the step expression"
      "for (i = 0; i < 5; i += j) i = 0;\n" 1 25;
    c_fails_at "oversized integer literal is a located parse error"
      "int x;\nx = 99999999999999999999;\n" 2 5;
    c_fails_at "macro redefinition points at the name"
      "#define N 4\n#define N 5\n" 2 9;
    c_fails_at "undefined macro in #define value"
      "#define N M\n" 1 11;
    c_fails_at "unterminated block comment located at its opening"
      "int x;\n/* never closed\nx = 1;\n" 2 1;
    Alcotest.test_case "oversized literal message is descriptive" `Quick
      (fun () ->
        match C_parser.parse "x = 99999999999999999999;\n" with
        | exception Diag.Parse_error (_, msg) ->
            Alcotest.(check bool) "mentions fit" true
              (contains ~sub:"does not fit" msg)
        | _ -> Alcotest.fail "expected a parse error");
    Alcotest.test_case "F77 oversized literal is a located parse error" `Quick
      (fun () ->
        match F77.parse "      X = 99999999999999999999\n      END\n" with
        | exception Diag.Parse_error (loc, _) ->
            Alcotest.(check int) "line" 1 loc.Diag.line;
            Alcotest.(check int) "col" 11 loc.Diag.col
        | _ -> Alcotest.fail "expected a parse error");
    Alcotest.test_case "line comment at EOF without newline is clean" `Quick
      (fun () ->
        let p = C_parser.parse "int x;\nx = 1; // trailing" in
        Alcotest.(check int) "two stmts" 2 (List.length p));
  ]

(* --- polybench-style C features ------------------------------------------ *)

let c_polybench_units =
  [
    Alcotest.test_case "block comments and macros" `Quick (fun () ->
        let p =
          C_parser.parse
            "/* header\n   comment */\n#define N 8\n#define M N\n#include \
             <stdio.h>\ndouble A[N][M];\nint i, j;\nfor (i = 0; i < N; i++)\n\
            \  for (j = 0; j < M; j++)\n    A[i][j] = A[i][j] + 1.5;\n"
        in
        match p with
        | [ C.Decl (C.Float, [ a ]); C.Decl (C.Int, ij); C.For _ ] ->
            Alcotest.(check (list int)) "A[8][8]" [ 8; 8 ] a.C.d_dims;
            Alcotest.(check int) "i, j" 2 (List.length ij)
        | _ -> Alcotest.fail "unexpected structure");
    Alcotest.test_case "parenthesized and negative macro values" `Quick
      (fun () ->
        match C_parser.parse "#define S (-3)\nint x;\nx = S;\n" with
        | [ _; C.Assign (_, C.EInt (-3)) ] -> ()
        | _ -> Alcotest.fail "macro value not substituted");
    Alcotest.test_case "kernel wrapper is transparent" `Quick (fun () ->
        let p =
          C_parser.parse
            "static void kernel_gemm(double alpha, double beta) {\n\
            \  int i;\n  i = 0;\n}\n"
        in
        match p with
        | [ C.Decl (C.Int, _); C.Assign _ ] -> ()
        | _ -> Alcotest.fail "wrapper body not inlined");
    Alcotest.test_case "compound assignment desugars" `Quick (fun () ->
        match C_parser.parse "x += y * 2;\nz -= 1;\n" with
        | [
         C.Assign (C.EVar "x", C.EBin (`Add, C.EVar "x", _));
         C.Assign (C.EVar "z", C.EBin (`Sub, C.EVar "z", C.EInt 1));
        ] -> ()
        | _ -> Alcotest.fail "compound assignment mis-desugared");
    Alcotest.test_case "3-d subscripts round-trip and lower to rank 3" `Quick
      (fun () ->
        let src =
          "float A[4][5][6];\nint i, j, k;\nfor (i = 0; i < 4; i++)\n\
          \  for (j = 0; j < 5; j++)\n    for (k = 0; k < 6; k++)\n\
          \      A[i][j][k] = A[i][j][k] + 1.0;\n"
        in
        let p1 = C_parser.parse src in
        let s1 = Format.asprintf "%a" C.pp p1 in
        let s2 = Format.asprintf "%a" C.pp (C_parser.parse s1) in
        Alcotest.(check string) "pp fixpoint" s1 s2;
        let prog = Dlz_passes.Pointers.lower p1 in
        let a =
          List.find_map
            (function Ast.Array a -> Some a | _ -> None)
            prog.Ast.decls
        in
        (match a with
        | Some a -> Alcotest.(check int) "rank 3" 3 (List.length a.Ast.a_dims)
        | None -> Alcotest.fail "array A not declared");
        let subs = ref (-1) in
        Ast.iter_assigns prog ~f:(fun ~loops:_ -> function
          | Ast.Assign { lhs; _ } -> subs := List.length lhs.Ast.subs
          | _ -> ());
        Alcotest.(check int) "3 subscripts" 3 !subs);
    Alcotest.test_case "partial subscripting of a rank-2 array rejected"
      `Quick (fun () ->
        let src = "double A[4][5];\nint i;\nfor (i = 0; i < 4; i++)\n  A[i] = 1.0;\n" in
        match Dlz_passes.Pointers.lower (C_parser.parse src) with
        | exception Dlz_passes.Pointers.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
  ]

(* --- vendored corpus determinism ----------------------------------------- *)

let corpus_units =
  [
    Alcotest.test_case "polybench bulk NDJSON identical at jobs 1/2/8" `Quick
      (fun () ->
        let dir = Filename.temp_file "dlz_polybench_test" "" in
        Sys.remove dir;
        Dlz_corpus.Polybench.write_dir dir;
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun (k : Dlz_corpus.Polybench.kernel) ->
                try Sys.remove (Filename.concat dir (k.k_name ^ ".c"))
                with Sys_error _ -> ())
              Dlz_corpus.Polybench.kernels;
            try Sys.rmdir dir with Sys_error _ -> ())
          (fun () ->
            let run jobs =
              Dlz_base.Pool.with_jobs ~jobs (fun pool ->
                  Dlz_driver.Bulk.run ?pool dir)
            in
            let r1 = run 1 in
            Alcotest.(check int) "21 kernels + summary" 22 (List.length r1);
            Alcotest.(check bool) "no ok:false rows" false
              (List.exists (contains ~sub:"\"ok\":false") r1);
            Alcotest.(check (list string)) "jobs 2 identical" r1 (run 2);
            Alcotest.(check (list string)) "jobs 8 identical" r1 (run 8)));
    Alcotest.test_case "bulk reports a malformed kernel as a row" `Quick
      (fun () ->
        (* An oversized literal must become an ok:false row (typed
           Parse_error), never kill the directory walk. *)
        let dir = Filename.temp_file "dlz_badkernel_test" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        let bad = Filename.concat dir "bad.c" in
        let good = Filename.concat dir "good.c" in
        let write path s =
          let oc = open_out_bin path in
          output_string oc s;
          close_out oc
        in
        write bad "int x;\nx = 99999999999999999999;\n";
        write good "float d[10];\nint i;\nfor (i = 0; i < 10; i++) d[i] = 0.5;\n";
        Fun.protect
          ~finally:(fun () ->
            Sys.remove bad;
            Sys.remove good;
            try Sys.rmdir dir with Sys_error _ -> ())
          (fun () ->
            let lines = Dlz_driver.Bulk.run dir in
            Alcotest.(check int) "two rows + summary" 3 (List.length lines);
            let bad_line = List.nth lines 0 in
            Alcotest.(check bool) "bad row flagged" true
              (contains ~sub:"\"ok\":false" bad_line
              && contains ~sub:"does not fit" bad_line);
            Alcotest.(check bool) "good row ok" true
              (contains ~sub:"\"ok\":true" (List.nth lines 1))));
  ]

(* Round-trip: pretty-printed F77 programs re-parse to the same tree. *)
let roundtrip_units =
  let roundtrip name src =
    Alcotest.test_case name `Quick (fun () ->
        let p1 = F77.parse src in
        let p2 = F77.parse (Ast.to_string p1) in
        Alcotest.(check string) "fixpoint" (Ast.to_string p1) (Ast.to_string p2))
  in
  [
    roundtrip "eq1 program" Dlz_driver.Fragments.eq1_program;
    roundtrip "fig3 program" Dlz_driver.Fragments.fig3_program;
    roundtrip "ib program" Dlz_driver.Fragments.ib_program;
    roundtrip "equivalence 2d" Dlz_driver.Fragments.equivalence_2d;
    roundtrip "equivalence 4d" Dlz_driver.Fragments.equivalence_4d;
    roundtrip "symbolic program" Dlz_driver.Fragments.symbolic_program;
    roundtrip "mhl program" Dlz_driver.Fragments.mhl_program;
  ]

let roundtrip_props =
  [
    QCheck.Test.make ~name:"generated programs pretty-print/parse fixpoint"
      ~count:200
      (QCheck.make QCheck.Gen.(int_range 0 1_000_000))
      (fun seed ->
        let prog =
          Dlz_driver.Progen.random (Dlz_base.Prng.create (Int64.of_int seed))
        in
        let s1 = Ast.to_string prog in
        let s2 = Ast.to_string (F77.parse s1) in
        String.equal s1 s2);
  ]

let () =
  Alcotest.run "dlz_frontend"
    [
      ("f77-expr", f77_expr_units);
      ("f77-program", f77_program_units);
      ("c", c_units);
      ("c-failures", c_failure_units);
      ("c-polybench", c_polybench_units);
      ("corpus", corpus_units);
      ("roundtrip", roundtrip_units);
      ("roundtrip-props", List.map QCheck_alcotest.to_alcotest roundtrip_props);
    ]
