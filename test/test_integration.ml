(* Integration tests: every experiment's headline result, checked
   end-to-end through parser -> passes -> analysis, against what the
   paper states. *)

module Experiments = Dlz_driver.Experiments
module Fragments = Dlz_driver.Fragments
module Workload = Dlz_driver.Workload
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Problem = Dlz_deptest.Problem
module Exact = Dlz_deptest.Exact
module Symeq = Dlz_deptest.Symeq
module Algo = Dlz_core.Algo
module Symalgo = Dlz_core.Symalgo
module Analyze = Dlz_engine.Analyze
module Reshape = Dlz_core.Reshape
module Access = Dlz_ir.Access
module Assume = Dlz_symbolic.Assume
module Poly = Dlz_symbolic.Poly
module F77 = Dlz_frontend.F77_parser
module Pipeline = Dlz_passes.Pipeline

let prepare src = Pipeline.prepare_program (F77.parse src)
let verdict = Alcotest.testable Verdict.pp Verdict.equal

(* --- E1 ------------------------------------------------------------------- *)

let e1_units =
  [
    Alcotest.test_case "verdict table matches the paper" `Quick (fun () ->
        let expected =
          [
            ("GCD test [AK87, Ban88]", Verdict.Dependent);
            ("Banerjee inequalities [AK87, WB87]", Verdict.Dependent);
            ("Single Variable Per Constraint [MHL91]", Verdict.Inapplicable);
            ("Acyclic test [MHL91]", Verdict.Dependent);
            ("Lambda-test [LYZ89]", Verdict.Dependent);
            ("Simple Loop Residue [MHL91, Sho81]", Verdict.Inapplicable);
            ("Fourier-Motzkin, real [DE73, MHL91]", Verdict.Dependent);
            ("Fourier-Motzkin + tightening [Pug91]", Verdict.Independent);
            ("Omega test [Pug91] (exact)", Verdict.Independent);
            ("Delinearization (this paper)", Verdict.Independent);
            ("Exact integer solver (ground truth)", Verdict.Independent);
          ]
        in
        let got = Experiments.e1_rows () in
        Alcotest.(check int) "row count" (List.length expected)
          (List.length got);
        List.iter2
          (fun (en, ev) (gn, gv) ->
            Alcotest.(check string) "technique" en gn;
            Alcotest.check verdict en ev gv)
          expected got);
  ]

(* --- E2 ------------------------------------------------------------------- *)

let e2_units =
  [
    Alcotest.test_case "report renders with all-yes column" `Quick (fun () ->
        let report = Experiments.e2 () in
        Alcotest.(check bool) "no failures flagged" false
          (String.length report = 0
          ||
          let lines = String.split_on_char '\n' report in
          List.exists
            (fun l -> String.length l > 2 && String.sub l (String.length l - 4) 2 = "NO")
            lines));
  ]

(* --- E3 ------------------------------------------------------------------- *)

let e3_units =
  [
    Alcotest.test_case "all six paper rows present" `Quick (fun () ->
        let rows = Experiments.e3_rows () in
        let expect pair dv ddv =
          if
            not
              (List.exists (fun (p, v, w) -> p = pair && v = dv && w = ddv) rows)
          then Alcotest.failf "missing row %s %s %s" pair dv ddv
        in
        expect "S2:B -> S2:B" "(*, =)" "(*, 0)";
        expect "S2:B -> S3:B" "(*, =)" "(*, 0)";
        expect "S3:A -> S3:A" "(*, =, =)" "(*, 0, 0)";
        expect "S3:A -> S2:A" "(*, <)" "(*, +1)";
        expect "S3:A -> S4:A" "(*, =)" "(*, 0)";
        expect "S4:Y -> S1:Y" "(<)" "(<)");
    Alcotest.test_case "only the known extra row beyond the paper" `Quick
      (fun () ->
        let rows = Experiments.e3_rows () in
        Alcotest.(check int) "seven rows" 7 (List.length rows);
        Alcotest.(check bool) "extra is S4 self" true
          (List.exists (fun (p, _, _) -> p = "S4:Y -> S4:Y") rows));
  ]

(* --- E4 ------------------------------------------------------------------- *)

let e4_units =
  [
    Alcotest.test_case "figure-5 trace reproduced" `Quick (fun () ->
        let r =
          Algo.run ~n_common:3 ~common_ubs:[| 8; 9; 8 |]
            (Fragments.fig5_equation ())
        in
        Alcotest.check verdict "dependent" Verdict.Dependent r.Algo.verdict;
        let piece_strings =
          List.map Dlz_deptest.Depeq.to_string r.Algo.pieces
        in
        Alcotest.(check int) "three pieces" 3 (List.length piece_strings);
        (* Exactly the paper's separated equations, in scan order. *)
        let constants =
          List.map (fun (p : Dlz_deptest.Depeq.t) -> p.Dlz_deptest.Depeq.c0)
            r.Algo.pieces
        in
        Alcotest.(check (list int)) "constants 0,-10,-100" [ 0; -10; -100 ]
          constants;
        (* Conjunction of pieces equisatisfiable with the original:
           solution counts multiply (Cartesian product). *)
        let count_eq = Exact.count_solutions [ Fragments.fig5_equation () ] in
        let product =
          List.fold_left
            (fun acc p -> acc * Exact.count_solutions [ p ])
            1 r.Algo.pieces
        in
        Alcotest.(check int) "product structure" count_eq product);
  ]

(* --- E5 ------------------------------------------------------------------- *)

let e5_units =
  [
    Alcotest.test_case "distance vector (2,0)" `Quick (fun () ->
        Alcotest.(check (list (pair int int)))
          "exact distances" [ (1, 2); (2, 0) ]
          (Experiments.e5_distances ()));
    Alcotest.test_case "exact solver confirms" `Quick (fun () ->
        let prog = prepare Fragments.mhl_program in
        let accs, _ = Access.of_program prog in
        match accs with
        | [ w; r ] -> (
            let p = Option.get (Problem.of_accesses w r) in
            match Problem.to_numeric p with
            | Some np ->
                Alcotest.(check (option (list int)))
                  "level 1 distances" (Some [ -2 ])
                  (Exact.distance_set ~level:1 np.Problem.eqs);
                Alcotest.(check (option (list int)))
                  "level 2 distances" (Some [ 0 ])
                  (Exact.distance_set ~level:2 np.Problem.eqs)
            | None -> Alcotest.fail "expected numeric problem")
        | _ -> Alcotest.fail "expected two accesses");
  ]

(* --- E6 ------------------------------------------------------------------- *)

let e6_problem () =
  let prog = prepare Fragments.symbolic_program in
  let accs, env = Access.of_program prog in
  match accs with
  | [ w; r ] -> (Option.get (Problem.of_accesses w r), env)
  | _ -> Alcotest.fail "expected two accesses"

let e6_units =
  [
    Alcotest.test_case "assumption N >= 2 derived from bounds" `Quick
      (fun () ->
        let _, env = e6_problem () in
        Alcotest.(check (option int)) "N >= 2" (Some 2)
          (Assume.lower_bound "N" env));
    Alcotest.test_case "three barriers drawn symbolically" `Quick (fun () ->
        let p, env = e6_problem () in
        let eq = List.hd p.Problem.equations in
        let r = Symalgo.run ~env ~n_common:3 eq in
        Alcotest.(check int) "three pieces" 3 (List.length r.Symalgo.pieces);
        Alcotest.check verdict "dependent" Verdict.Dependent r.Symalgo.verdict;
        (* k-level distance is -1 symbolically. *)
        Alcotest.(check bool) "distance k = -1" true
          (List.exists
             (fun (lvl, d) -> lvl = 3 && Poly.equal d (Poly.const (-1)))
             r.Symalgo.distances));
    Alcotest.test_case "gcds are 1, N, N^2" `Quick (fun () ->
        let p, env = e6_problem () in
        let eq = List.hd p.Problem.equations in
        let r = Symalgo.run ~env ~n_common:3 eq in
        let barrier_gs =
          List.filter_map
            (fun (s : Symalgo.step) ->
              if s.Symalgo.barrier && s.Symalgo.separated <> None then
                Some
                  (match s.Symalgo.gk with
                  | Some g -> Poly.to_string g
                  | None -> "inf")
              else None)
            r.Symalgo.steps
        in
        Alcotest.(check (list string)) "barrier moduli" [ "N"; "N^2"; "inf" ]
          barrier_gs);
    Alcotest.test_case "array reshape recovers A(N,N,N)" `Quick (fun () ->
        let prog = prepare Fragments.symbolic_program in
        let env = Assume.assume_ge "N" 2 Assume.empty in
        let prog', plans = Reshape.apply ~env prog in
        (match plans with
        | [ pl ] ->
            Alcotest.(check int) "3 dims" 3 (List.length pl.Reshape.extents);
            List.iter
              (fun e ->
                Alcotest.(check bool) "extent N" true
                  (Poly.equal e (Poly.sym "N")))
              pl.Reshape.extents
        | _ -> Alcotest.fail "expected one plan");
        let text = Dlz_ir.Ast.to_string prog' in
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          m = 0 || go 0
        in
        Alcotest.(check bool) "write is A(I,J,K)" true
          (contains text "A(I,J,K)");
        Alcotest.(check bool) "read is A(J,1+I,1+K)" true
          (contains text "A(J,1+I,1+K)"));
    Alcotest.test_case "symbolic sound for sampled N" `Quick (fun () ->
        let p, env = e6_problem () in
        let eq = List.hd p.Problem.equations in
        let r = Symalgo.run ~env ~n_common:3 eq in
        List.iter
          (fun n ->
            let neq = Symeq.instantiate (fun _ -> n) eq in
            let nv = Algo.test neq in
            (* symbolic Independent must imply numeric Independent *)
            if
              r.Symalgo.verdict = Verdict.Independent
              && nv <> Verdict.Independent
            then Alcotest.failf "unsound at N=%d" n)
          [ 2; 3; 4; 5; 7; 11 ]);
  ]

(* --- E7 ------------------------------------------------------------------- *)

let e7_units =
  [
    Alcotest.test_case "IB nest fully parallel after substitution" `Quick
      (fun () ->
        let prog = prepare Fragments.ib_program in
        let deps = Analyze.deps_of_program prog in
        let b_deps =
          List.filter
            (fun (d : Analyze.dep) -> d.Analyze.src.Access.array = "B")
            deps
        in
        (* Only the loop-independent (=,=,=) within-iteration flow. *)
        List.iter
          (fun (d : Analyze.dep) ->
            Alcotest.(check string) "(=,=,=)" "(=, =, =)"
              (Dirvec.to_string d.Analyze.dirvec))
          b_deps);
    Alcotest.test_case "2-D aliasing proves independence" `Quick (fun () ->
        Alcotest.(check int) "no deps" 0
          (List.length (Analyze.deps_of_program (prepare Fragments.equivalence_2d))));
    Alcotest.test_case "4-D aliasing keeps only the opaque self-output" `Quick
      (fun () ->
        let deps = Analyze.deps_of_program (prepare Fragments.equivalence_4d) in
        Alcotest.(check int) "one dep" 1 (List.length deps);
        match deps with
        | [ d ] ->
            Alcotest.(check bool) "write-write" true
              (d.Analyze.src.Access.rw = `Write
              && d.Analyze.dst.Access.rw = `Write)
        | _ -> Alcotest.fail "unexpected");
    Alcotest.test_case "C fragment independent end-to-end" `Quick (fun () ->
        let prog =
          Pipeline.prepare_program
            (Dlz_passes.Pointers.lower
               (Dlz_frontend.C_parser.parse Fragments.c_pointers))
        in
        Alcotest.(check int) "no deps" 0
          (List.length (Analyze.deps_of_program prog)));
  ]

(* --- paper section 2: distance-direction vector example ----------------------- *)

let section2_units =
  [
    Alcotest.test_case "A(i,j) = A(2i, j+1) combines direction and distance"
      `Quick (fun () ->
        (* Paper: "direction vector of the only dependence is (<=,>) and
           distance vector is (?,1)... distance-direction vector (<=,1)"
           — in the paper's sink-to-source orientation.  In ours
           (source = write, delta = sink - source) the same dependence
           reads (>=, >) with exact j-distance -1. *)
        let prog =
          prepare
            "      REAL A(0:10,0:9)\n\
            \      DO 1 I = 0, 5\n\
            \      DO 1 J = 0, 8\n\
             1     A(I,J) = A(2*I,J+1)\n\
            \      END\n"
        in
        match Analyze.deps_of_program prog with
        | [ d ] ->
            Alcotest.(check string) "direction" "(>=, >)"
              (Dirvec.to_string d.Analyze.dirvec);
            Alcotest.(check string) "distance-direction" "(>=, -1)"
              (Dlz_deptest.Ddvec.to_string d.Analyze.ddvec)
        | l -> Alcotest.failf "expected one row, got %d" (List.length l));
  ]

(* --- E8 / cross-cutting properties ------------------------------------------ *)

let algo_matches_paper_family =
  QCheck.Test.make ~name:"paper family: shifted independent, unshifted not"
    ~count:50
    (QCheck.pair (QCheck.int_range 1 5) (QCheck.oneofl [ 4; 6; 10 ]))
    (fun (depth, extent) ->
      let shifted = Workload.paper_family ~depth ~extent ~shifted:true in
      let unshifted = Workload.paper_family ~depth ~extent ~shifted:false in
      Algo.test shifted = Verdict.Independent
      && Algo.test unshifted = Verdict.Dependent)

let delin_as_sharp_as_exact_on_family =
  QCheck.Test.make ~name:"random linearized family: delin equals exact"
    ~count:200
    (QCheck.make QCheck.Gen.(int_range 0 100000))
    (fun seed ->
      let g = Dlz_base.Prng.create (Int64.of_int seed) in
      let eq = Workload.random_linearized g ~depth:3 in
      let d = Algo.test eq = Verdict.Independent in
      let e = Exact.test [ eq ] = Verdict.Independent in
      d = e)

let delin_matches_classic_on_unbreakable =
  QCheck.Test.make
    ~name:"inline verdict >= gcd+banerjee sharpness" ~count:300
    (QCheck.make QCheck.Gen.(int_range 0 100000))
    (fun seed ->
      let g = Dlz_base.Prng.create (Int64.of_int seed) in
      let eq =
        Workload.random g ~nvars:4 ~coeffs:[| -10; -3; -1; 1; 3; 10 |]
          ~max_ub:8
      in
      (* If GCD or Banerjee alone refute, the scan must refute too (the
         paper's "as exactly as GCD-test and Banerjee combined"). *)
      let classic =
        Verdict.both (Dlz_deptest.Gcd_test.test eq)
          (Dlz_deptest.Banerjee.test eq)
      in
      classic <> Verdict.Independent || Algo.test eq = Verdict.Independent)

let e8_props =
  [
    algo_matches_paper_family;
    delin_as_sharp_as_exact_on_family;
    delin_matches_classic_on_unbreakable;
  ]

let report_units =
  [
    Alcotest.test_case "every experiment renders" `Quick (fun () ->
        List.iter
          (fun id ->
            match Experiments.run id with
            | Some s ->
                if String.length s < 100 then
                  Alcotest.failf "%s suspiciously short" id
            | None -> Alcotest.failf "%s missing" id)
          [ "e1"; "e3"; "e4"; "e5"; "e6"; "e7" ]);
    Alcotest.test_case "unknown id rejected" `Quick (fun () ->
        Alcotest.(check bool) "none" true (Experiments.run "e99" = None));
  ]

let () =
  Alcotest.run "integration"
    [
      ("e1", e1_units);
      ("e2", e2_units);
      ("e3", e3_units);
      ("e4", e4_units);
      ("e5", e5_units);
      ("e6", e6_units);
      ("e7", e7_units);
      ("section2", section2_units);
      ("e8-props", List.map QCheck_alcotest.to_alcotest e8_props);
      ("reports", report_units);
    ]
