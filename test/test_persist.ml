(* Tests for the persistent cache snapshot layer (lib/engine/persist.ml)
   and the bulk-analysis mode (lib/driver/bulk.ml).

   The two load-bearing properties:

   - round-trip fidelity: a save → reset → load → re-query sequence
     yields byte-identical results to the cold run, and the re-queries
     are warm hits;
   - refusal safety: a truncated, corrupted, tag-mismatched, empty, or
     missing snapshot (or a chaos strike during the load) degrades to a
     cold start — an [Error] and a Stats reject counter, never an
     exception, never a partially-applied cache.

   Plus the bulk-mode determinism bar: the NDJSON report over a kernel
   tree is byte-identical for any job count, cold or warm.

   The suite honors DLZ_TEST_JOBS (default 4) like test_parallel, and
   runs under @cache-ci at width 2 and with DLZ_CHAOS set.  Tests that
   assert a load {e succeeds} switch injection off locally (a strike in
   persist.load is a legitimate refusal, which would fail those
   assertions by design, not by bug). *)

module Pool = Dlz_base.Pool
module Poly = Dlz_symbolic.Poly
module Verdict = Dlz_deptest.Verdict
module Dirvec = Dlz_deptest.Dirvec
module Access = Dlz_ir.Access
module F77 = Dlz_frontend.F77_parser
module Pipeline = Dlz_passes.Pipeline
module Workload = Dlz_driver.Workload
module Bulk = Dlz_driver.Bulk
module Engine = Dlz_engine.Engine
module Strategy = Dlz_engine.Strategy
module Query = Dlz_engine.Query
module Stats = Dlz_engine.Stats
module Persist = Dlz_engine.Persist
module Chaos = Dlz_engine.Chaos

let test_jobs =
  match Sys.getenv_opt "DLZ_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with Failure _ -> 4)
  | None -> 4

let without_chaos f () =
  let saved = Chaos.current () in
  Chaos.set_current None;
  Fun.protect ~finally:(fun () -> Chaos.set_current saved) f

let prepare src = Pipeline.prepare_program (F77.parse src)

let temp_dir () =
  let d = Filename.temp_file "dlz_persist" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let temp_snap () = Filename.temp_file "dlz_persist" ".snap"

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Statements with many distinct constant distances: plenty of
   distinct, numeric (cacheable) canonical forms. *)
let many_distances_src n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "      DIMENSION A(500)\n      DO I = 0, 99\n";
  for k = 1 to n do
    Buffer.add_string buf (Printf.sprintf "        A(I+%d) = A(I)\n" k)
  done;
  Buffer.add_string buf "      ENDDO\n";
  Buffer.contents buf

let workload_progs () =
  prepare (many_distances_src 24)
  :: List.map
       (fun (d, e) -> prepare (Workload.family_program ~depth:d ~extent:e))
       [ (1, 8); (2, 8); (3, 6); (2, 10) ]

let all_problems () =
  List.concat_map
    (fun prog ->
      let accs, env = Access.of_program prog in
      List.map
        (fun (pr : Engine.pair) -> (env, pr.Engine.problem))
        (Engine.pairs accs))
    (workload_progs ())

let query_all ps = List.map (fun (env, p) -> Engine.query ~env p) ps

let result_str (r : Strategy.result) =
  Printf.sprintf "%s|%s|%s|%s"
    (Verdict.to_string r.Strategy.verdict)
    r.Strategy.decided_by
    (String.concat ";" (List.map Dirvec.to_string r.Strategy.dirvecs))
    (String.concat ";"
       (List.map
          (fun (l, p) -> Printf.sprintf "%d:%s" l (Poly.to_string p))
          r.Strategy.distances))

let results_str rs = List.map result_str rs

let check_strings = Alcotest.(check (list string))

let save_exn ?stats ?cache path =
  match Persist.save ?stats ?cache path with
  | Ok n -> n
  | Error e -> Alcotest.fail ("save failed on a healthy disk: " ^ e)

(* Populate the global cache from a cold run and snapshot it.  Returns
   (problems, cold results, snapshot path, entries saved). *)
let populate_and_save () =
  Engine.reset_metrics ();
  let ps = all_problems () in
  let cold = query_all ps in
  let snap = temp_snap () in
  let saved = save_exn snap in
  (ps, cold, snap, saved)

(* --- round trip ----------------------------------------------------------- *)

let test_round_trip_identical =
  without_chaos @@ fun () ->
  let ps, cold, snap, saved = populate_and_save () in
  Alcotest.(check bool) "entries saved" true (saved > 0);
  Alcotest.(check int) "save counted" 1 (Stats.snapshot_saves Stats.global);
  Engine.reset_metrics ();
  Alcotest.(check int) "cache cleared" 0 (Query.size Query.global_cache);
  (match Persist.load snap with
  | Ok n -> Alcotest.(check int) "loaded = saved" saved n
  | Error e -> Alcotest.fail ("load refused a clean snapshot: " ^ e));
  Alcotest.(check int) "one load" 1 (Stats.snapshot_loads Stats.global);
  Alcotest.(check int) "loaded counter" saved
    (Stats.snapshot_loaded Stats.global);
  Alcotest.(check int) "no rejects" 0 (Stats.snapshot_rejects Stats.global);
  let warm = query_all ps in
  check_strings "warm results byte-identical to cold" (results_str cold)
    (results_str warm);
  Alcotest.(check bool) "warm hits recorded" true
    (Stats.warm_hits Stats.global > 0);
  Alcotest.(check int) "no misses on the warm run" 0
    (Stats.cache_misses Stats.global);
  Alcotest.(check int) "warm + cold hits = hits"
    (Stats.cache_hits Stats.global)
    (Stats.warm_hits Stats.global + Stats.cold_hits Stats.global);
  Alcotest.(check bool) "stats consistent" true (Stats.consistent Stats.global);
  Sys.remove snap

let test_save_deterministic =
  without_chaos @@ fun () ->
  let _, _, snap1, saved = populate_and_save () in
  let snap2 = temp_snap () in
  let saved2 = save_exn snap2 in
  Alcotest.(check int) "same entry count" saved saved2;
  Alcotest.(check string) "double save byte-identical" (read_file snap1)
    (read_file snap2);
  (* Save → reset → load → save: the cache contents round-trip, so the
     third file must equal the first two bytewise as well. *)
  Engine.reset_metrics ();
  (match Persist.load snap1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let snap3 = temp_snap () in
  ignore (save_exn snap3);
  Alcotest.(check string) "save-load-save byte-identical" (read_file snap1)
    (read_file snap3);
  List.iter Sys.remove [ snap1; snap2; snap3 ]

let test_parallel_load_matches_serial =
  without_chaos @@ fun () ->
  let _, _, snap, saved = populate_and_save () in
  let load_into pool =
    let cache = Query.create_cache () in
    (match Persist.load ~cache ?pool snap with
    | Ok n -> Alcotest.(check int) "all entries admitted" saved n
    | Error e -> Alcotest.fail e);
    List.map (fun (k, r) -> k ^ "=" ^ result_str r) (Query.dump cache)
  in
  let serial = load_into None in
  let parallel =
    Pool.with_pool ~domains:test_jobs (fun pool -> load_into (Some pool))
  in
  check_strings "parallel shard load = serial load" serial parallel;
  Sys.remove snap

let test_capacity_bounded_load =
  without_chaos @@ fun () ->
  let _, _, snap, saved = populate_and_save () in
  Alcotest.(check bool) "workload overflows the small cache" true (saved > 8);
  let cache = Query.create_cache ~capacity:8 ~shards:2 () in
  (match Persist.load ~cache snap with
  | Ok n ->
      Alcotest.(check bool) "admitted within capacity" true (n <= 8 && n > 0);
      Alcotest.(check int) "size = admitted" n (Query.size cache)
  | Error e -> Alcotest.fail e);
  Sys.remove snap

(* --- refusal paths --------------------------------------------------------- *)

(* Every corruption must produce [Error], bump the reject counter, touch
   nothing in the cache, and leave the engine able to answer queries. *)
let check_refused ~name path =
  let before_rejects = Stats.snapshot_rejects Stats.global in
  let before_size = Query.size Query.global_cache in
  (match Persist.load path with
  | Error _ -> ()
  | Ok n ->
      Alcotest.failf "%s: load accepted a corrupt snapshot (%d entries)" name
        n);
  Alcotest.(check int)
    (name ^ ": reject counted")
    (before_rejects + 1)
    (Stats.snapshot_rejects Stats.global);
  Alcotest.(check int)
    (name ^ ": cache untouched")
    before_size
    (Query.size Query.global_cache)

let test_corrupt_snapshots_refused =
  without_chaos @@ fun () ->
  let _, _, snap, _ = populate_and_save () in
  let bytes = read_file snap in
  Engine.reset_metrics ();
  let variant name mutate =
    let path = temp_snap () in
    write_file path (mutate bytes);
    check_refused ~name path;
    Sys.remove path
  in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
    Bytes.to_string b
  in
  variant "empty file" (fun _ -> "");
  variant "truncated header" (fun s -> String.sub s 0 10);
  variant "header only" (fun s -> String.sub s 0 40);
  variant "truncated payload" (fun s -> String.sub s 0 (String.length s - 1));
  variant "trailing garbage" (fun s -> s ^ "x");
  variant "bad magic" (fun s -> flip s 0);
  variant "wrong strategy-set hash" (fun s -> flip s 8);
  variant "flipped payload byte" (fun s -> flip s (String.length s - 1));
  variant "garbage" (fun _ -> String.make 200 '\xff');
  (* Missing file: same refusal contract, no exception. *)
  let missing = temp_snap () in
  Sys.remove missing;
  check_refused ~name:"missing file" missing;
  (* The engine still answers after nine refusals. *)
  let ps = all_problems () in
  Alcotest.(check bool) "queries fine after refusals" true
    (query_all ps <> []);
  Alcotest.(check bool) "stats consistent" true (Stats.consistent Stats.global);
  Sys.remove snap

let test_chaos_strike_during_load =
  without_chaos @@ fun () ->
  let _, _, snap, _ = populate_and_save () in
  Engine.reset_metrics ();
  (* Rate 1.0 guarantees the content-keyed gate fires on persist.load:
     the strike must surface as a refusal (cold start), not an
     exception. *)
  Chaos.set_current (Some (Chaos.make ~seed:7L ~rate:1.0));
  (match Persist.load snap with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "chaos strike did not refuse the load");
  Alcotest.(check int) "reject counted" 1
    (Stats.snapshot_rejects Stats.global);
  Alcotest.(check int) "cache cold" 0 (Query.size Query.global_cache);
  Chaos.set_current None;
  (* Injection off again: the same file loads fine. *)
  (match Persist.load snap with
  | Ok n -> Alcotest.(check bool) "loads after the strike" true (n > 0)
  | Error e -> Alcotest.fail e);
  Sys.remove snap

let test_reset_clears_snapshot_counters =
  without_chaos @@ fun () ->
  let _, _, snap, _ = populate_and_save () in
  Engine.reset_metrics ();
  (match Persist.load snap with Ok _ -> () | Error e -> Alcotest.fail e);
  check_refused ~name:"pre-reset reject"
    (let p = temp_snap () in
     write_file p "junk";
     p);
  ignore (query_all (all_problems ()));
  Alcotest.(check bool) "counters nonzero before reset" true
    (Stats.snapshot_loads Stats.global > 0
    && Stats.snapshot_loaded Stats.global > 0
    && Stats.snapshot_rejects Stats.global > 0
    && Stats.warm_hits Stats.global > 0);
  Engine.reset_metrics ();
  Alcotest.(check int) "loads cleared" 0 (Stats.snapshot_loads Stats.global);
  Alcotest.(check int) "loaded cleared" 0 (Stats.snapshot_loaded Stats.global);
  Alcotest.(check int) "rejects cleared" 0
    (Stats.snapshot_rejects Stats.global);
  Alcotest.(check int) "saves cleared" 0 (Stats.snapshot_saves Stats.global);
  Alcotest.(check int) "warm hits cleared" 0 (Stats.warm_hits Stats.global);
  Sys.remove snap

let test_tag_sensitivity =
  without_chaos @@ fun () ->
  (* The tag is a pure function of the registered strategy set, and the
     default path embeds it: two calls agree, and the magic embeds the
     format version. *)
  Alcotest.(check int) "tag stable" (Persist.tag ()) (Persist.tag ());
  let p = Persist.default_path () in
  Alcotest.(check bool) "default path embeds the tag" true
    (String.length p > 0
    && String.ends_with ~suffix:".snap" p
    &&
    let frag = Printf.sprintf "%x" (Persist.tag ()) in
    let rec contains i =
      i + String.length frag <= String.length p
      && (String.sub p i (String.length frag) = frag || contains (i + 1))
    in
    contains 0)

(* --- bulk mode ------------------------------------------------------------- *)

let make_kernel_tree () =
  let dir = temp_dir () in
  Sys.mkdir (Filename.concat dir "sub") 0o755;
  let n = ref 0 in
  List.iter
    (fun (depth, extent) ->
      incr n;
      let rel =
        if !n mod 2 = 0 then Printf.sprintf "sub/k%02d.f" !n
        else Printf.sprintf "k%02d.f" !n
      in
      write_file (Filename.concat dir rel)
        (Workload.family_program ~depth ~extent))
    (List.concat_map
       (fun depth -> List.map (fun e -> (depth, e)) [ 6; 8; 10; 12 ])
       [ 1; 2; 3; 4; 5 ]);
  write_file (Filename.concat dir "bad.f") "this is not fortran\n";
  dir

let test_bulk_deterministic_across_jobs () =
  let dir = make_kernel_tree () in
  Alcotest.(check bool) "tree has at least 20 kernels" true
    (List.length (Bulk.kernels dir) >= 20);
  Engine.reset_metrics ();
  let serial = Bulk.run dir in
  let at_jobs n =
    Pool.with_pool ~domains:n (fun pool -> Bulk.run ~pool dir)
  in
  check_strings "jobs 1 = serial rerun" serial (Bulk.run dir);
  check_strings
    (Printf.sprintf "jobs %d byte-identical" test_jobs)
    serial (at_jobs test_jobs);
  check_strings "jobs 8 byte-identical" serial (at_jobs 8);
  (* The parse failure is contained in its own line and counted once in
     the summary; every other kernel analyzed. *)
  Alcotest.(check int) "one error line" 1
    (List.length
       (List.filter
          (fun l ->
            String.length l >= 11
            && String.sub l 0 7 = "{\"file\""
            &&
            let rec has i =
              i + 11 <= String.length l
              && (String.sub l i 11 = "\"ok\":false," || has (i + 1))
            in
            has 0)
          serial));
  Alcotest.(check bool) "summary reports the error" true
    (match List.rev serial with
    | summary :: _ ->
        let frag = "\"errors\":1" in
        let rec has i =
          i + String.length frag <= String.length summary
          && (String.sub summary i (String.length frag) = frag || has (i + 1))
        in
        has 0
    | [] -> false)

let test_bulk_warm_equals_cold () =
  let dir = make_kernel_tree () in
  Engine.reset_metrics ();
  let cold = Bulk.run dir in
  let snap = temp_snap () in
  ignore (Persist.save snap);
  Engine.reset_metrics ();
  (* Whether the load succeeds or a chaos strike refuses it, the
     deterministic report fields must not move. *)
  ignore (Persist.load snap);
  let warm = Bulk.run dir in
  check_strings "warm report = cold report" cold warm;
  Sys.remove snap

(* --- save-path containment (full disk, chaos) ----------------------------- *)

(* A chaos strike inside [save] stands in for every mid-write fault
   (full disk, quota, yanked volume): the result must be an [Error], a
   counted failure, no partial file, and no [.tmp] litter — and a
   pre-existing snapshot at the path must survive untouched. *)
let test_save_chaos_no_partial_file =
  without_chaos @@ fun () ->
  Engine.reset_metrics ();
  ignore (query_all (all_problems ()));
  let snap = temp_snap () in
  let old = save_exn snap in
  Alcotest.(check bool) "seed snapshot non-empty" true (old > 0);
  let before = read_file snap in
  let saved = Chaos.current () in
  Chaos.set_current (Some (Chaos.make ~seed:7L ~rate:1.0));
  let r = Persist.save snap in
  Chaos.set_current saved;
  (match r with
  | Error _ -> ()
  | Ok n -> Alcotest.failf "save succeeded (%d entries) under rate-1 chaos" n);
  Alcotest.(check bool)
    "no .tmp litter" false
    (Sys.file_exists (snap ^ ".tmp"));
  Alcotest.(check string)
    "pre-existing snapshot untouched" before (read_file snap);
  Alcotest.(check int)
    "failure counted" 1
    (Stats.snapshot_save_fails Stats.global);
  Alcotest.(check int)
    "no save counted" 1
    (Stats.snapshot_saves Stats.global);
  Sys.remove snap

let test_save_unwritable_path_is_error =
  without_chaos @@ fun () ->
  Engine.reset_metrics ();
  ignore (query_all (all_problems ()));
  (* A regular file where a directory component should be: the open
     fails with ENOTDIR no matter who runs the test (a read-only
     directory would not stop root), standing in for any unwritable
     target. *)
  let blocker = Filename.temp_file "dlz_persist" ".notadir" in
  let path = Filename.concat blocker "sub/cache.snap" in
  (match Persist.save path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "save through a non-directory should fail");
  Alcotest.(check bool) "no file created" false (Sys.file_exists path);
  Alcotest.(check int)
    "failure counted" 1
    (Stats.snapshot_save_fails Stats.global);
  Sys.remove blocker

(* --- bulk edge cases ------------------------------------------------------ *)

let test_bulk_empty_dir () =
  let dir = temp_dir () in
  let lines = Bulk.run dir in
  (match lines with
  | [ summary ] ->
      Alcotest.(check bool)
        "summary reports zero files" true
        (let frag = "\"files\":0" in
         let rec has i =
           i + String.length frag <= String.length summary
           && (String.sub summary i (String.length frag) = frag || has (i + 1))
         in
         has 0)
  | _ ->
      Alcotest.failf "expected exactly one summary line, got %d"
        (List.length lines));
  check_strings "byte-identical across jobs" lines
    (Pool.with_pool ~domains:test_jobs (fun pool -> Bulk.run ~pool dir))

let test_bulk_unreadable_file () =
  let dir = make_kernel_tree () in
  (* A dangling symlink: the open fails at read time, not at walk
     time — the io fault must be contained in that kernel's own
     ok:false line, deterministically, at any width. *)
  Unix.symlink (Filename.concat dir "does-not-exist") (Filename.concat dir "aa_gone.f");
  Engine.reset_metrics ();
  let serial = Bulk.run dir in
  let io_lines =
    List.filter
      (fun l ->
        let frag = "\"error\":\"io: " in
        let rec has i =
          i + String.length frag <= String.length l
          && (String.sub l i (String.length frag) = frag || has (i + 1))
        in
        has 0)
      serial
  in
  Alcotest.(check int) "exactly one io error line" 1 (List.length io_lines);
  check_strings "byte-identical across jobs" serial
    (Pool.with_pool ~domains:test_jobs (fun pool -> Bulk.run ~pool dir));
  check_strings "byte-identical at width 8" serial
    (Pool.with_pool ~domains:8 (fun pool -> Bulk.run ~pool dir))

let test_bulk_timings_fields () =
  let dir = make_kernel_tree () in
  Engine.reset_metrics ();
  let lines = Bulk.run ~timings:true dir in
  let has_frag frag l =
    let rec go i =
      i + String.length frag <= String.length l
      && (String.sub l i (String.length frag) = frag || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "every line carries elapsed_ns" true
    (List.for_all (has_frag "\"elapsed_ns\":") lines);
  Alcotest.(check bool) "summary carries the cache disposition" true
    (match List.rev lines with
    | summary :: _ -> has_frag "\"warm_hits\":" summary
    | [] -> false)

let () =
  Alcotest.run "persist"
    [
      ( "round-trip",
        [
          Alcotest.test_case "save/load/query byte-identical" `Quick
            test_round_trip_identical;
          Alcotest.test_case "saves byte-deterministic" `Quick
            test_save_deterministic;
          Alcotest.test_case "parallel load = serial load" `Quick
            test_parallel_load_matches_serial;
          Alcotest.test_case "capacity-bounded load" `Quick
            test_capacity_bounded_load;
        ] );
      ( "refusal",
        [
          Alcotest.test_case "corrupt snapshots refused, never raise" `Quick
            test_corrupt_snapshots_refused;
          Alcotest.test_case "chaos strike during load = cold start" `Quick
            test_chaos_strike_during_load;
          Alcotest.test_case "reset_metrics clears snapshot counters" `Quick
            test_reset_clears_snapshot_counters;
          Alcotest.test_case "tag and default path" `Quick
            test_tag_sensitivity;
          Alcotest.test_case "chaos strike during save = no partial file"
            `Quick test_save_chaos_no_partial_file;
          Alcotest.test_case "unwritable save path = error, not a crash"
            `Quick test_save_unwritable_path_is_error;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "report byte-identical across jobs" `Quick
            test_bulk_deterministic_across_jobs;
          Alcotest.test_case "warm report = cold report" `Quick
            test_bulk_warm_equals_cold;
          Alcotest.test_case "timings fields" `Quick test_bulk_timings_fields;
          Alcotest.test_case "empty directory = clean zero summary" `Quick
            test_bulk_empty_dir;
          Alcotest.test_case "unreadable kernel contained in its line" `Quick
            test_bulk_unreadable_file;
        ] );
    ]
