(* Tests for the multicore analysis path: the domain pool itself
   (lib/base/pool.ml), streaming pair enumeration vs the legacy list,
   parallel determinism (any --jobs count must reproduce the serial
   output exactly), and the domain-safety of the sharded query cache
   and atomic stats under concurrent hammering.

   The parallelism width is taken from DLZ_TEST_JOBS (default 4); CI on
   constrained runners sets it to 2 via the @parallel-ci alias in
   test/dune.  The determinism properties are width-independent, so a
   smaller width only reduces scheduling variety, never coverage. *)

module Pool = Dlz_base.Pool
module Prng = Dlz_base.Prng
module Trace = Dlz_base.Trace
module Verdict = Dlz_deptest.Verdict
module Access = Dlz_ir.Access
module F77 = Dlz_frontend.F77_parser
module Pipeline = Dlz_passes.Pipeline
module Corpus = Dlz_corpus.Corpus
module Progen = Dlz_driver.Progen
module Workload = Dlz_driver.Workload
module Engine = Dlz_engine.Engine
module Strategy = Dlz_engine.Strategy
module Analyze = Dlz_engine.Analyze
module Query = Dlz_engine.Query
module Stats = Dlz_engine.Stats
module Depgraph = Dlz_vec.Depgraph
module Chaos = Dlz_engine.Chaos

(* The cache-accounting tests below assert that every distinct key gets
   inserted — but degraded results are deliberately never cached, so a
   @chaos-ci run (DLZ_CHAOS set) would violate the arithmetic.  Those
   tests check cache bookkeeping, not containment; run them with
   injection off and restore whatever was configured. *)
let without_chaos f () =
  let saved = Chaos.current () in
  Chaos.set_current None;
  Fun.protect ~finally:(fun () -> Chaos.set_current saved) f

let test_jobs =
  match Sys.getenv_opt "DLZ_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with Failure _ -> 4)
  | None -> 4

let prepare src = Pipeline.prepare_program (F77.parse src)

let sphot_prog =
  Pipeline.prepare_program
    (Corpus.generate (List.find (fun s -> s.Corpus.name = "SPHOT") Corpus.riceps))

(* n statements with n distinct dependence distances: every pair yields
   a numeric (cacheable) problem and the canonical forms are plentiful
   and mostly distinct — the workload for cache-capacity and hammering
   tests. *)
let many_distances_src n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "      DIMENSION A(500)\n      DO I = 0, 99\n";
  for k = 1 to n do
    Buffer.add_string buf (Printf.sprintf "        A(I+%d) = A(I)\n" k)
  done;
  Buffer.add_string buf "      ENDDO\n";
  Buffer.contents buf

let problems_of_prog prog =
  let accs, env = Access.of_program prog in
  (List.map (fun (pr : Engine.pair) -> pr.Engine.problem) (Engine.pairs accs),
   env)

(* --- Pool ----------------------------------------------------------------- *)

let test_pool_map_matches_array_map () =
  let arr = Array.init 101 (fun i -> i - 50) in
  let f x = (x * x) - (3 * x) + 7 in
  let expect = Array.map f arr in
  List.iter
    (fun domains ->
      List.iter
        (fun chunk ->
          let got =
            Pool.with_pool ~domains (fun p -> Pool.map p ~chunk f arr)
          in
          Alcotest.(check (array int))
            (Printf.sprintf "domains=%d chunk=%d" domains chunk)
            expect got)
        [ 1; 3; 16; 1000 ])
    [ 1; 2; test_jobs ]

let test_pool_empty_input () =
  Pool.with_pool ~domains:test_jobs (fun p ->
      Alcotest.(check (array int))
        "empty" [||]
        (Pool.map p ~chunk:4 (fun x -> x) [||]))

let test_pool_exception_propagates () =
  Pool.with_pool ~domains:test_jobs (fun p ->
      Alcotest.check_raises "worker exception reaches caller"
        (Failure "boom") (fun () ->
          ignore
            (Pool.map p ~chunk:1
               (fun x -> if x = 37 then failwith "boom" else x)
               (Array.init 100 Fun.id))))

let test_pool_exceptions_contained () =
  (* A mid-array failure must not prevent the remaining elements (even
     those sharing its chunk) from running, and with several failures
     the one surfaced must be the lowest-index one — what the
     sequential path would have hit first. *)
  let n = 100 in
  let attempted = Array.init n (fun _ -> Atomic.make false) in
  Pool.with_pool ~domains:test_jobs (fun p ->
      Alcotest.check_raises "lowest-index failure wins" (Failure "at 37")
        (fun () ->
          ignore
            (Pool.map p ~chunk:7
               (fun x ->
                 Atomic.set attempted.(x) true;
                 if x = 37 || x = 38 || x = 71 then
                   failwith (Printf.sprintf "at %d" x)
                 else x)
               (Array.init n Fun.id))));
  Array.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "element %d attempted despite failures" i)
        true (Atomic.get a))
    attempted

let test_pool_bad_chunk () =
  Pool.with_pool ~domains:1 (fun p ->
      Alcotest.check_raises "chunk 0"
        (Invalid_argument "Pool.map: chunk must be > 0") (fun () ->
          ignore (Pool.map p ~chunk:0 Fun.id [| 1 |])))

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~domains:2 in
  Pool.shutdown p;
  Pool.shutdown p;
  let s = Pool.create ~domains:1 in
  Pool.shutdown s;
  Pool.shutdown s

let test_pool_resolve_jobs () =
  Alcotest.(check int) "positive is itself" 3 (Pool.resolve_jobs 3);
  Alcotest.(check bool) "0 means recommended (>= 1)" true
    (Pool.resolve_jobs 0 >= 1);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pool.resolve_jobs: jobs must be >= 0") (fun () ->
      ignore (Pool.resolve_jobs (-1)))

let test_pool_with_jobs_policy () =
  Pool.with_jobs ~jobs:1 (fun p ->
      Alcotest.(check bool) "jobs 1 takes the serial path" true (p = None));
  Pool.with_jobs ~jobs:test_jobs (fun p ->
      match p with
      | None -> Alcotest.fail "expected a pool"
      | Some p ->
          Alcotest.(check int) "pool width" test_jobs (Pool.domains p));
  (* An explicit pool is passed through regardless of [jobs] and must
     survive the call (with_jobs does not own it). *)
  let mine = Pool.create ~domains:2 in
  Pool.with_jobs ~pool:mine ~jobs:8 (fun p ->
      match p with
      | None -> Alcotest.fail "explicit pool dropped"
      | Some p -> Alcotest.(check int) "same pool" 2 (Pool.domains p));
  Alcotest.(check (array int))
    "pool still alive after with_jobs" [| 2; 4 |]
    (Pool.map mine ~chunk:1 (fun x -> 2 * x) [| 1; 2 |]);
  Pool.shutdown mine

let test_pool_auto_chunk () =
  (* No explicit chunk: the auto-tuner picks one; the result must be
     the same.  Sequential pools answer n (one chunk = the whole
     array). *)
  let arr = Array.init 333 (fun i -> 7 * i) in
  let expect = Array.map succ arr in
  List.iter
    (fun domains ->
      let got = Pool.with_pool ~domains (fun p -> Pool.map p succ arr) in
      Alcotest.(check (array int))
        (Printf.sprintf "auto chunk, domains=%d" domains)
        expect got)
    [ 1; 2; test_jobs ];
  Pool.with_pool ~domains:1 (fun p ->
      Alcotest.(check int) "serial auto chunk = n" 5 (Pool.auto_chunk p 5));
  Pool.with_pool ~domains:test_jobs (fun p ->
      let c = Pool.auto_chunk p 1000 in
      Alcotest.(check bool) "parallel auto chunk positive and bounded" true
        (c >= 1 && c <= 1000))

let test_pool_steals_on_skewed_workload () =
  (* One heavy element among many light ones, dealt one element per
     chunk: the domain that hits the heavy chunk stalls with light
     chunks still in its deque, so the siblings (the caller included)
     finish by stealing.  Stealing is scheduling-dependent, so the run
     is retried a few times — but each run's result must equal the
     serial map regardless. *)
  let n = 400 in
  let work x =
    if x = 17 then begin
      let acc = ref 0 in
      for i = 1 to 3_000_000 do
        acc := (!acc + (i * i)) land 1023
      done;
      x + (!acc land 0)
    end
    else x
  in
  let expect = Array.map work (Array.init n Fun.id) in
  let rec attempt k =
    Pool.reset_metrics ();
    let got =
      Pool.with_pool ~domains:test_jobs (fun p ->
          Pool.map p ~chunk:1 work (Array.init n Fun.id))
    in
    Alcotest.(check (array int)) "skewed workload result" expect got;
    if Pool.steals () = 0 && k < 20 then attempt (k + 1)
  in
  attempt 1;
  Alcotest.(check bool) "work was stolen across deques" true
    (Pool.steals () > 0)

(* --- streaming enumeration ------------------------------------------------ *)

let triple (pr : Engine.pair) = (pr.Engine.src, pr.Engine.dst, pr.Engine.self)

let test_pairs_seq_matches_pairs () =
  List.iter
    (fun prog ->
      let accs, _env = Access.of_program prog in
      let legacy = List.map triple (Engine.pairs accs) in
      let streamed = List.of_seq (Seq.map triple (Engine.pairs_seq accs)) in
      let iterated =
        let out = ref [] in
        Engine.iter_pairs (fun pr -> out := triple pr :: !out) accs;
        List.rev !out
      in
      Alcotest.(check bool)
        "pairs_seq enumerates the legacy triples" true
        (legacy = streamed);
      Alcotest.(check bool)
        "iter_pairs enumerates the legacy triples" true
        (legacy = iterated);
      Alcotest.(check bool)
        "self pairs present" true
        (List.exists (fun (_, _, self) -> self) legacy
        || List.for_all (fun (_, _, self) -> not self) legacy))
    [ sphot_prog; prepare (many_distances_src 4) ]

(* --- parallel determinism ------------------------------------------------- *)

let render_deps deps =
  List.map (fun d -> Format.asprintf "%a" Analyze.pp_dep d) deps

let test_deps_deterministic_random_programs () =
  for seed = 0 to 14 do
    let prog = Progen.random (Prng.create (Int64.of_int seed)) in
    let serial = render_deps (Analyze.deps_of_program ~jobs:1 prog) in
    let par = render_deps (Analyze.deps_of_program ~jobs:test_jobs prog) in
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: jobs %d = jobs 1" seed test_jobs)
      serial par
  done

(* The whole corpus: the analyzer's row list (what `vic analyze`
   prints) must be identical at any job count, program by program. *)
let test_deps_deterministic_corpus_and_family () =
  let corpus = List.map (fun s -> Pipeline.prepare_program (Corpus.generate s)) Corpus.riceps in
  List.iter
    (fun prog ->
      let serial = render_deps (Analyze.deps_of_program ~jobs:1 prog) in
      let par = render_deps (Analyze.deps_of_program ~jobs:test_jobs prog) in
      Alcotest.(check (list string)) "parallel = serial" serial par;
      (* Same check through an explicit caller-owned pool. *)
      let pooled =
        Pool.with_pool ~domains:test_jobs (fun pool ->
            let accs, env = Access.of_program prog in
            render_deps (Analyze.deps_of_accesses ~pool ~env accs))
      in
      Alcotest.(check (list string)) "explicit pool = serial" serial pooled)
    (corpus
    @ [
        prepare (Workload.family_program ~depth:3 ~extent:6);
        prepare (many_distances_src 5);
      ])

let test_depgraph_deterministic () =
  List.iter
    (fun prog ->
      let serial = (Depgraph.build ~jobs:1 prog).Depgraph.edges in
      let par = (Depgraph.build ~jobs:test_jobs prog).Depgraph.edges in
      Alcotest.(check bool) "edge lists identical" true (serial = par))
    [ sphot_prog; prepare (many_distances_src 5) ]

(* The full corpus at the acceptance width: the rendered rows (the
   exact bytes `vic analyze` prints) at jobs=8 must equal the serial
   run, program by program. *)
let test_deps_jobs8_byte_identical_corpus () =
  List.iter
    (fun spec ->
      let prog = Pipeline.prepare_program (Corpus.generate spec) in
      let serial = render_deps (Analyze.deps_of_program ~jobs:1 prog) in
      let par8 = render_deps (Analyze.deps_of_program ~jobs:8 prog) in
      Alcotest.(check (list string))
        (spec.Corpus.name ^ ": jobs 8 = jobs 1 (rendered bytes)")
        serial par8)
    Corpus.riceps

let test_stats_consistent_after_parallel_run () =
  Engine.reset_metrics ();
  List.iter
    (fun prog -> ignore (Analyze.deps_of_program ~jobs:test_jobs prog))
    [ sphot_prog; prepare (many_distances_src 6) ];
  let st = Stats.global in
  Alcotest.(check bool) "queries issued" true (Stats.queries st > 0);
  Alcotest.(check bool)
    "queries = hits + misses + uncacheable" true (Stats.consistent st)

(* --- metrics scope and the allocation-free hit path ----------------------- *)

let test_reset_metrics_clears_everything () =
  let prog = prepare (many_distances_src 6) in
  let run () =
    ignore (Analyze.deps_of_program ~jobs:test_jobs ~chunk:1 prog)
  in
  Engine.reset_metrics ();
  run ();
  let q1 = Stats.queries Stats.global in
  Alcotest.(check bool) "first run issued queries" true (q1 > 0);
  Engine.reset_metrics ();
  Alcotest.(check int) "queries reset" 0 (Stats.queries Stats.global);
  Alcotest.(check int) "steal counter reset" 0 (Pool.steals ());
  Alcotest.(check int) "alloc counter reset" 0
    (Stats.alloc_words Stats.global);
  Alcotest.(check int) "queue-wait histogram reset" 0
    (Trace.Hist.count (Trace.hist "pool.queue_wait"));
  run ();
  Alcotest.(check int)
    "back-to-back runs do not accumulate" q1
    (Stats.queries Stats.global)

let test_hit_path_allocation_free () =
  let ps, env = problems_of_prog (prepare (many_distances_src 6)) in
  let cache = Query.create_cache () in
  (* Warm pass: populates the cache and the per-domain key buffers. *)
  let warm = Stats.create () in
  List.iter (fun p -> ignore (Engine.query ~stats:warm ~cache ~env p)) ps;
  Alcotest.(check int) "warm pass is all cacheable" 0
    (Stats.cache_uncacheable warm);
  let stats = Stats.create () in
  let reps = 50 in
  for _ = 1 to reps do
    List.iter (fun p -> ignore (Engine.query ~stats ~cache ~env p)) ps
  done;
  Alcotest.(check int) "warmed passes are all hits"
    (reps * List.length ps)
    (Stats.cache_hits stats);
  let per_hit = Stats.allocs_per_hit stats in
  Alcotest.(check bool)
    (Printf.sprintf "allocations per hit ~0 (got %.2f minor words)" per_hit)
    true (per_hit <= 8.0)

(* --- sharded cache under concurrency -------------------------------------- *)

let test_cache_hammering_from_domains () =
  let ps, env = problems_of_prog (prepare (many_distances_src 6)) in
  Alcotest.(check bool) "workload nonempty" true (ps <> []);
  (* Serial reference verdicts on a private cache. *)
  let reference =
    let stats = Stats.create () in
    let cache = Query.create_cache () in
    List.map (fun p -> (Engine.query ~stats ~cache ~env p).Strategy.verdict) ps
  in
  let stats = Stats.create () in
  let cache = Query.create_cache () in
  let reps = 50 in
  let hammer () =
    let first = ref [] in
    for rep = 1 to reps do
      let vs =
        List.map
          (fun p -> (Engine.query ~stats ~cache ~env p).Strategy.verdict)
          ps
      in
      if rep = 1 then first := vs
    done;
    !first
  in
  let domains = List.init test_jobs (fun _ -> Domain.spawn hammer) in
  let per_domain = List.map Domain.join domains in
  List.iteri
    (fun i vs ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d verdicts match serial reference" i)
        true
        (List.for_all2 Verdict.equal reference vs))
    per_domain;
  Alcotest.(check int)
    "every query counted exactly once"
    (test_jobs * reps * List.length ps)
    (Stats.queries stats);
  Alcotest.(check int) "all numeric, none uncacheable" 0
    (Stats.cache_uncacheable stats);
  Alcotest.(check bool) "hits + misses = queries" true (Stats.consistent stats);
  (* The cache must afterwards replay exactly the serial verdicts. *)
  let replay =
    List.map
      (fun p ->
        (Engine.query ~stats:(Stats.create ()) ~cache ~env p).Strategy.verdict)
      ps
  in
  Alcotest.(check bool)
    "cached entries correct" true
    (List.for_all2 Verdict.equal reference replay)

let test_capacity_one_per_shard_flushes () =
  let ps, env = problems_of_prog (prepare (many_distances_src 20)) in
  (* Dedup to distinct canonical keys so each insert is a fresh entry. *)
  let seen = Hashtbl.create 64 in
  let distinct =
    List.filter
      (fun p ->
        match Query.key_of ~cascade:"delin" p with
        | None -> false
        | Some k ->
            if Hashtbl.mem seen k then false
            else (
              Hashtbl.add seen k ();
              true))
      ps
  in
  let n = List.length distinct in
  Alcotest.(check bool) "more distinct keys than shards" true (n > 8);
  let stats = Stats.create () in
  let cache = Query.create_cache ~capacity:8 ~shards:8 () in
  Alcotest.(check int) "per-shard capacity is 1" 1 (Query.shard_capacity cache);
  List.iter (fun p -> ignore (Engine.query ~stats ~cache ~env p)) distinct;
  let sizes = Array.fold_left ( + ) 0 (Query.shard_sizes cache) in
  let flushes = Array.fold_left ( + ) 0 (Query.shard_flushes cache) in
  (* Capacity-1 shards: every overflow evicts exactly one entry, so
     survivors + flushes account for every distinct insertion. *)
  Alcotest.(check int) "survivors + flushes = distinct inserts" n
    (sizes + flushes);
  Alcotest.(check int) "stats agree with per-shard counters" flushes
    (Stats.cache_flushes stats);
  Array.iter
    (fun s -> Alcotest.(check bool) "shard bounded" true (s <= 1))
    (Query.shard_sizes cache);
  Alcotest.(check bool) "at least one shard overflowed" true (flushes > 0)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map = Array.map" `Quick
            test_pool_map_matches_array_map;
          Alcotest.test_case "empty input" `Quick test_pool_empty_input;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "exceptions contained per element" `Quick
            test_pool_exceptions_contained;
          Alcotest.test_case "chunk must be positive" `Quick
            test_pool_bad_chunk;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "resolve_jobs" `Quick test_pool_resolve_jobs;
          Alcotest.test_case "with_jobs policy" `Quick
            test_pool_with_jobs_policy;
          Alcotest.test_case "auto chunk" `Quick test_pool_auto_chunk;
          Alcotest.test_case "steals on skewed workload" `Quick
            test_pool_steals_on_skewed_workload;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "pairs_seq = legacy pairs" `Quick
            test_pairs_seq_matches_pairs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "random programs, jobs N = jobs 1" `Quick
            test_deps_deterministic_random_programs;
          Alcotest.test_case "corpus + paper family" `Quick
            test_deps_deterministic_corpus_and_family;
          Alcotest.test_case "depgraph edges" `Quick
            test_depgraph_deterministic;
          Alcotest.test_case "stats consistent after parallel run" `Quick
            test_stats_consistent_after_parallel_run;
          Alcotest.test_case "corpus at jobs 8, byte-identical" `Quick
            test_deps_jobs8_byte_identical_corpus;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "reset_metrics clears pool telemetry" `Quick
            test_reset_metrics_clears_everything;
          Alcotest.test_case "cache-hit path is allocation-free" `Quick
            (without_chaos test_hit_path_allocation_free);
        ] );
      ( "sharded-cache",
        [
          Alcotest.test_case "hammering from domains" `Quick
            (without_chaos test_cache_hammering_from_domains);
          Alcotest.test_case "capacity-1 shards flush correctly" `Quick
            (without_chaos test_capacity_one_per_shard_flushes);
        ] );
    ]
